// Package fast is the public API of the FAST reproduction: a full-stack
// accelerator search technique for domain-optimized deep learning
// inference accelerators (Zhang et al., ASPLOS 2022).
//
// The package re-exports the stable surface of the internal packages:
//
//   - workload graphs (BuildModel) and reference designs (TPUv3,
//     FASTLarge, FASTSmall),
//   - the architectural simulator (Simulate with Baseline/FAST software
//     stacks),
//   - the search framework (Study.Run) covering datapath, schedule, and
//     fusion co-optimization,
//   - the power/area and ROI models.
//
// # Searches
//
// A Study is executed with a context and functional options:
//
//	res, err := (&fast.Study{
//	    Workloads: []string{"efficientnet-b7"},
//	    Objective: fast.ObjectivePerfPerTDP,
//	    Algorithm: fast.AlgorithmLCS,
//	    Trials:    500,
//	    Seed:      1,
//	}).Run(ctx, fast.WithParallelism(8), fast.WithProgress(onTrial))
//
// Candidate evaluations run on a bounded worker pool and are memoized
// by hyperparameter vector; the search trajectory is deterministic for
// a fixed seed at any parallelism. Canceling the context stops the
// study promptly and returns the partial trial history.
//
// The optimizers underneath speak a batch ask/tell protocol
// (Optimizer, NewOptimizer) for callers that need custom evaluation
// loops — distributed workers, simulators other than Simulate, or
// early-stopping policies.
//
// # Multi-objective searches
//
// Setting Study.Objectives instead of Objective returns the whole
// Pareto front over several targets — the paper's trade-off curves
// (Perf/TDP under area and power budgets, Figure 12) from a single
// study:
//
//	res, err := (&fast.Study{
//	    Workloads:  []string{"efficientnet-b7"},
//	    Objectives: []fast.ObjectiveKind{fast.ObjectivePerfPerTDP, fast.ObjectiveArea},
//	    Trials:     500,
//	    Seed:       1,
//	}).Run(ctx, fast.WithBudget(fast.DefaultBudget()))
//	for _, p := range res.Front() {
//	    fmt.Println(p.Values, p.Design)
//	}
//
// The default optimizer is NSGA-II (AlgorithmNSGA2); TDP and area are
// minimized, the performance metrics maximized, and every objective of
// a trial is scored from the same simulation, so extra objectives cost
// no additional plan evaluations. Scalar studies are the 1-objective
// special case and keep their exact trajectories.
//
// See examples/ for runnable walkthroughs and cmd/fast-experiments for
// the paper's tables and figures.
package fast

import (
	"io"

	"fast/internal/arch"
	"fast/internal/core"
	"fast/internal/hlo"
	"fast/internal/models"
	"fast/internal/power"
	"fast/internal/roi"
	"fast/internal/search"
	"fast/internal/sim"
)

// Graph is an HLO-like workload graph.
type Graph = hlo.Graph

// Design is an accelerator datapath configuration (paper Table 3).
type Design = arch.Config

// SimOptions configures the simulator software stack.
type SimOptions = sim.Options

// SimResult is a full simulation outcome.
type SimResult = sim.Result

// Study is a FAST search experiment; StudyResult its outcome.
type Study = core.Study

// StudyResult is a completed search.
type StudyResult = core.StudyResult

// WorkloadResult pairs a workload name with its simulation.
type WorkloadResult = core.WorkloadResult

// PowerModel is the analytical area/TDP model.
type PowerModel = power.Model

// Budget is the search constraint envelope.
type Budget = power.Budget

// ROIParams is the return-on-investment model of §5.1.
type ROIParams = roi.Params

// ObjectiveKind is a Study optimization target.
type ObjectiveKind = core.ObjectiveKind

// Objective kinds for Study.
const (
	// ObjectivePerfPerTDP maximizes QPS per watt.
	ObjectivePerfPerTDP = core.PerfPerTDP
	// ObjectivePerf maximizes raw QPS within the budget.
	ObjectivePerf = core.Perf
	// ObjectiveTDP minimizes thermal design power (Study.Objectives
	// only).
	ObjectiveTDP = core.TDP
	// ObjectiveArea minimizes die area (Study.Objectives only).
	ObjectiveArea = core.Area
)

// ParseObjective resolves an objective name ("perf-per-tdp", "perf",
// "tdp", "area") to its kind.
func ParseObjective(name string) (ObjectiveKind, error) { return core.ParseObjective(name) }

// FrontPoint is one design on a multi-objective study's Pareto front
// (StudyResult.Front): its raw objective values in Study.Objectives
// order and its per-workload final simulations.
type FrontPoint = core.FrontPoint

// Search algorithms for Study (Figure 11 families, plus the
// multi-objective NSGA-II).
const (
	AlgorithmRandom   = search.AlgRandom
	AlgorithmLCS      = search.AlgLCS
	AlgorithmBayesian = search.AlgBayes
	AlgorithmNSGA2    = search.AlgNSGA2
)

// Algorithm names an optimizer family.
type Algorithm = search.Algorithm

// Trial is one evaluated candidate: its hyperparameter index vector,
// objective value, and feasibility.
type Trial = search.Trial

// SearchResult is a completed search: best trial plus full history
// (convergence curves, feasible rate).
type SearchResult = search.Result

// Optimizer is the batch ask/tell protocol the search families speak:
// Ask(n) proposes candidate index vectors, Tell reports evaluated
// trials back in ask order. Study.Run drives one internally; use
// NewOptimizer directly for custom evaluation loops.
type Optimizer = search.Optimizer

// NewOptimizer constructs a bare optimizer for custom ask/tell loops.
// budget is the expected total trial count (annealing/sizing hint);
// <= 0 selects family defaults.
func NewOptimizer(alg Algorithm, seed int64, budget int) Optimizer {
	return search.New(alg, seed, budget)
}

// Option configures one Study.Run invocation.
type Option = core.Option

// WithParallelism bounds concurrent design evaluations (n <= 0 uses one
// worker per CPU). The search trajectory is identical at any setting.
func WithParallelism(n int) Option { return core.WithParallelism(n) }

// WithBatchSize overrides the ask/tell batch width. Unlike parallelism
// this changes which designs the optimizer proposes.
func WithBatchSize(n int) Option { return core.WithBatchSize(n) }

// WithProgress registers a per-trial callback, invoked in deterministic
// order from the driving goroutine.
func WithProgress(f func(Trial)) Option { return core.WithProgress(f) }

// WithBudget overrides the study's area/TDP constraint envelope for one
// Run. Out-of-budget candidates are infeasible: scalar studies reject
// them, multi-objective studies keep them off the Pareto front.
func WithBudget(b Budget) Option { return core.WithBudget(b) }

// DispatchFunc interposes on a Run's batch evaluation — the remote
// worker-pool seam (see internal/dispatch). A dispatcher changes where
// evaluations execute, never what they return.
type DispatchFunc = core.DispatchFunc

// WithDispatch routes one Run's batch evaluation through f, keeping the
// in-process evaluator as the fallback. The transcript is bit-identical
// to an undispatched run at any worker count.
func WithDispatch(f DispatchFunc) Option { return core.WithDispatch(f) }

// Snapshot is a checkpoint of an optimizer's state: its constructor
// parameters plus the full ask/tell transcript. Optimizer state evolves
// only through that transcript, so the snapshot restores the search
// exactly (RestoreOptimizer), and JSON round-trips it bit-exactly —
// the durable format of the fast-serve daemon's checkpoints.
type Snapshot = search.Snapshot

// RestoreOptimizer rebuilds an optimizer in the snapshotted state by
// transcript replay, verifying the replayed proposals against the
// record. Optimizers built by NewOptimizer satisfy search.Snapshotter,
// whose Snapshot method produces these checkpoints.
func RestoreOptimizer(s Snapshot) (search.Snapshotter, error) { return search.Restore(s) }

// WithTranscript registers a checkpoint hook for one Study.Run: f
// observes every fully told ask batch, in transcript order, from the
// driving goroutine. Feeding the batches to (*Snapshot).Append captures
// everything needed to resume the study with WithResume.
func WithTranscript(f func(batch []Trial)) Option { return core.WithTranscript(f) }

// WithResume warm-starts a Study.Run from a checkpoint: prior trials
// seed the memoization cache and count toward Study.Trials, and the
// merged result is bit-identical to an uninterrupted run. Set
// Study.Trials above the snapshot's count to warm-continue with more
// trials. The snapshot must match the study's algorithm and seed.
func WithResume(snap Snapshot) Option { return core.WithResume(snap) }

// PlanCacheBudget bounds the process-wide compiled-plan cache by entry
// count and/or accounted bytes; zero fields are unbounded.
type PlanCacheBudget = core.PlanCacheBudget

// PlanCacheStats is a snapshot of the plan cache's size and
// hit/miss/eviction counters.
type PlanCacheStats = core.PlanCacheStats

// SetPlanCacheBudget bounds the shared plan cache (LRU eviction).
// Eviction never changes results — an evicted plan recompiles
// deterministically on next use. Long-lived multi-tenant servers should
// set both fields; fast-serve's -cache-entries/-cache-bytes flags do.
func SetPlanCacheBudget(b PlanCacheBudget) { core.SetPlanCacheBudget(b) }

// PlanCacheInfo reports the shared plan cache's current counters.
func PlanCacheInfo() PlanCacheStats { return core.PlanCacheInfo() }

// BuildModel constructs a workload graph by canonical name (e.g.
// "efficientnet-b7", "bert-1024", "resnet50", "ocr-rpn",
// "ocr-recognizer") at the given batch size.
func BuildModel(name string, batch int64) (*Graph, error) { return models.Build(name, batch) }

// ModelNames lists every canonical workload name.
func ModelNames() []string { return models.Names() }

// FullSuite returns the paper's complete benchmark list.
func FullSuite() []string { return models.FullSuite() }

// MultiWorkloadSuite returns the 5-workload multi-workload set.
func MultiWorkloadSuite() []string { return models.MultiWorkloadSuite() }

// TPUv3 returns the modeled TPU-v3 baseline design.
func TPUv3() *Design { return arch.TPUv3() }

// DieShrunkTPUv3 returns the TPU-v3 datapath on the sub-10nm process (the
// paper's Perf/TDP baseline).
func DieShrunkTPUv3() *Design { return arch.DieShrunkTPUv3() }

// FASTLarge returns the Table 5 FAST-Large design.
func FASTLarge() *Design { return arch.FASTLarge() }

// FASTSmall returns the Table 5 FAST-Small design.
func FASTSmall() *Design { return arch.FASTSmall() }

// FASTDecode returns the decode-tuned reference design (maximum Global
// Memory for KV-cache residency, native batch 1).
func FASTDecode() *Design { return arch.FASTDecode() }

// DesignByName resolves a named reference design (nil if unknown).
func DesignByName(name string) *Design { return arch.ByName(name) }

// LoadDesign reads and validates a design from a JSON file (the format
// fast-search -save writes).
func LoadDesign(path string) (*Design, error) { return arch.LoadFile(path) }

// BaselineOptions models the production TPU-v3 software stack (XLA
// fusion regions, classic schedules, no FAST fusion).
func BaselineOptions() SimOptions { return sim.BaselineOptions() }

// FASTOptions is the full FAST software stack (all mapping schemes, FAST
// fusion, automatic softmax selection).
func FASTOptions() SimOptions { return sim.FASTOptions() }

// Plan is a compiled simulation: every design-independent analysis of a
// (workload, options) pair — fusion-region partitioning, per-op
// shape/FLOPs/cost tables, fusion-candidate enumeration — done once by
// Compile. Plan.Evaluate then scores a candidate design running only the
// design-dependent work (schedule mapping, fusion placement, roll-up),
// with each stage memoized across trials by the sub-tuple of design
// parameters it reads, so sweeps over a few axes mostly hit warm stage
// caches. Plan.EvaluateBatch scores many designs at once, walking the
// batch in stage-key order for cache locality (bit-identical to
// per-design Evaluate, results in input order). Plans are safe for
// concurrent Evaluate/EvaluateBatch calls, so many search workers can
// share one.
type Plan = sim.Plan

// Compile precomputes a simulation plan for graph g under opts.
// Simulate(g, d, opts) ≡ Compile(g, opts).Evaluate(d), bit for bit; use
// Compile when evaluating one workload against many designs.
func Compile(g *Graph, opts SimOptions) (*Plan, error) {
	return sim.Compile(g, opts)
}

// Simulate runs the architectural simulator for a workload graph on a
// design. It is a thin Compile+Evaluate wrapper; Study.Run and
// EvaluateDesign share compiled plans via a process-wide cache keyed by
// (workload, batch, options fingerprint).
func Simulate(g *Graph, d *Design, opts SimOptions) (*SimResult, error) {
	return sim.Simulate(g, d, opts)
}

// EvaluateDesign simulates a fixed design across several workloads.
func EvaluateDesign(d *Design, workloads []string, opts SimOptions) ([]WorkloadResult, error) {
	return core.EvaluateDesign(d, workloads, opts)
}

// DefaultPowerModel returns the calibrated sub-10nm power/area model.
func DefaultPowerModel() *PowerModel { return power.Default() }

// DefaultBudget returns the search constraint envelope anchored to the
// die-shrunk TPU-v3 (Table 5 normalization).
func DefaultBudget() Budget { return power.DefaultBudget(power.Default()) }

// DefaultROI returns the §5.1 ROI constants.
func DefaultROI() ROIParams { return roi.Default() }

// EnergyCoeffs are the per-event dynamic-energy constants of the energy
// model (Joules-per-inference reporting, beyond the paper's TDP metric).
type EnergyCoeffs = power.EnergyCoeffs

// DefaultEnergyCoeffs returns the calibrated sub-10nm energy constants.
func DefaultEnergyCoeffs() EnergyCoeffs { return power.DefaultEnergy() }

// WriteGraphDOT renders a workload graph in Graphviz DOT format,
// clustered by XLA fusion region (pipe into `dot -Tsvg`).
func WriteGraphDOT(w io.Writer, g *Graph) error {
	return hlo.WriteDOT(w, g, hlo.PartitionXLA(g))
}

// GeoMean folds per-workload results with the geometric mean of f.
func GeoMean(results []WorkloadResult, f func(*SimResult) float64) float64 {
	return core.GeoMean(results, f)
}
