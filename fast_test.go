package fast

import (
	"context"
	"testing"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	// The README quickstart, as a test: simulate B0 on TPU-v3 and
	// FAST-Large, compare Perf/TDP.
	tpu := TPUv3()
	g, err := BuildModel("efficientnet-b0", tpu.NativeBatch)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Simulate(g, tpu, BaselineOptions())
	if err != nil {
		t.Fatal(err)
	}
	fl := FASTLarge()
	g2, err := BuildModel("efficientnet-b0", fl.NativeBatch)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Simulate(g2, fl, FASTOptions())
	if err != nil {
		t.Fatal(err)
	}
	if fast.PerfPerTDP <= base.PerfPerTDP {
		t.Errorf("FAST-Large Perf/TDP %.3g should beat TPU-v3 %.3g on EfficientNet",
			fast.PerfPerTDP, base.PerfPerTDP)
	}
}

func TestFacadeNamesAndDesigns(t *testing.T) {
	if len(ModelNames()) < 10 {
		t.Error("model registry too small")
	}
	if len(FullSuite()) != 13 || len(MultiWorkloadSuite()) != 5 {
		t.Error("suite sizes wrong")
	}
	for _, n := range []string{"tpu-v3", "fast-large", "fast-small"} {
		if DesignByName(n) == nil {
			t.Errorf("missing design %s", n)
		}
	}
	if DesignByName("bogus") != nil {
		t.Error("bogus design resolved")
	}
	if DieShrunkTPUv3().Name == TPUv3().Name {
		t.Error("die-shrunk baseline must be distinguishable")
	}
}

func TestFacadeStudy(t *testing.T) {
	res, err := (&Study{
		Workloads: []string{"efficientnet-b0"},
		Objective: ObjectivePerfPerTDP,
		Algorithm: AlgorithmRandom,
		Trials:    15,
		Seed:      1,
	}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no design found in 15 random trials")
	}
	wr, err := EvaluateDesign(res.Best, []string{"efficientnet-b0"}, FASTOptions())
	if err != nil {
		t.Fatal(err)
	}
	if GeoMean(wr, func(r *SimResult) float64 { return r.QPS }) <= 0 {
		t.Error("geomean must be positive")
	}
}

func TestFacadeStudyOptions(t *testing.T) {
	// The redesigned Run(ctx, ...Option) surface: parallelism and
	// progress compose, and parallelism never changes the outcome.
	run := func(par int) (*StudyResult, int) {
		trials := 0
		res, err := (&Study{
			Workloads: []string{"efficientnet-b0"},
			Objective: ObjectivePerfPerTDP,
			Algorithm: AlgorithmLCS,
			Trials:    24,
			Seed:      4,
		}).Run(context.Background(),
			WithParallelism(par),
			WithProgress(func(Trial) { trials++ }))
		if err != nil {
			t.Fatal(err)
		}
		return res, trials
	}
	serial, n1 := run(1)
	parallel, n4 := run(4)
	if n1 != 24 || n4 != 24 {
		t.Errorf("progress callbacks = %d / %d, want 24", n1, n4)
	}
	if serial.BestValue != parallel.BestValue {
		t.Errorf("parallelism changed the result: %v vs %v", serial.BestValue, parallel.BestValue)
	}
}

func TestFacadeOptimizerProtocol(t *testing.T) {
	// NewOptimizer exposes the raw ask/tell loop for custom drivers.
	opt := NewOptimizer(AlgorithmBayesian, 8, 32)
	for round := 0; round < 4; round++ {
		asks := opt.Ask(8)
		if len(asks) != 8 {
			t.Fatalf("Ask(8) returned %d proposals", len(asks))
		}
		trials := make([]Trial, len(asks))
		for i, idx := range asks {
			trials[i] = Trial{Index: idx}
			trials[i].Value, trials[i].Feasible = 1.0, true
		}
		opt.Tell(trials)
	}
}

func TestFacadeBudgetAndROI(t *testing.T) {
	b := DefaultBudget()
	pm := DefaultPowerModel()
	if !b.Within(pm, FASTLarge()) {
		t.Error("FAST-Large must fit the default budget")
	}
	p := DefaultROI()
	if p.BreakEvenVolume(3.9) > 3000 || p.BreakEvenVolume(3.9) < 1500 {
		t.Errorf("break-even volume = %.0f, want ~2.2k", p.BreakEvenVolume(3.9))
	}
}
