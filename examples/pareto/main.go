// Multi-objective (Pareto-front) search: instead of collapsing the
// design question to one scalar, search perf, TDP, and area at once and
// get the whole trade-off frontier from a single study — the curves the
// paper's budget-constrained comparisons and ROI analysis are built on
// (Figure 12, §5.1). One NSGA-II study replaces N independent scalar
// studies that could not share dominance information, and every
// objective of a trial is scored from the same simulation, so the extra
// objectives are free.
//
//	go run ./examples/pareto [-trials 300]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"fast"
)

func main() {
	trials := flag.Int("trials", 300, "search trial budget")
	parallel := flag.Int("parallel", 0, "concurrent evaluations (0 = one per CPU)")
	flag.Parse()

	// Three objectives: maximize raw throughput, minimize TDP, minimize
	// die area. The budget (Eq. 4) still applies — infeasible designs
	// rank behind every feasible one and never reach the front.
	st := &fast.Study{
		Workloads:  []string{"efficientnet-b0"},
		Objectives: []fast.ObjectiveKind{fast.ObjectivePerf, fast.ObjectiveTDP, fast.ObjectiveArea},
		Trials:     *trials,
		Seed:       7,
		FrontCap:   10,
	}
	fmt.Printf("searching the perf × TDP × area frontier on %s (%d trials, nsga2)\n\n",
		st.Workloads[0], *trials)
	res, err := st.Run(context.Background(), fast.WithParallelism(*parallel))
	if err != nil {
		log.Fatal(err)
	}
	front := res.Front()
	if len(front) == 0 {
		log.Fatal("no feasible design; raise -trials")
	}

	// Each point is one defensible answer to "which accelerator should
	// we build": pick by whatever envelope the deployment imposes.
	fmt.Printf("%4s %12s %10s %12s %12s\n", "#", "perf (QPS)", "TDP (W)", "area (mm²)", "Perf/TDP")
	for i, p := range front {
		r := p.PerWorkload[0].Result
		fmt.Printf("%4d %12.0f %10.1f %12.1f %12.4f\n", i, p.Values[0], p.Values[1], p.Values[2], r.PerfPerTDP)
	}

	// The extremes of the front are the classic design points: the
	// datacenter-class design (fastest) and the embedded-class one
	// (smallest). A scalar study would have returned only one of them.
	big, small := front[0], front[len(front)-1]
	fmt.Printf("\ndatacenter-class end: %s\n", big.Design)
	fmt.Printf("embedded-class end:   %s\n", small.Design)
	fmt.Printf("\nthe frontier spans %.0fx in throughput and %.1fx in area from one study;\n",
		big.Values[0]/small.Values[0], big.Values[2]/small.Values[2])
	fmt.Printf("re-run with fast.WithBudget to clamp it to a deployment envelope.\n")
}
