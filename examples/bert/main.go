// BERT sequence-length study: reproduce the §4.3 analysis — sweep the
// sequence length, watch softmax and self-attention take over the
// runtime, then evaluate the two-pass softmax trade-off (§5.6) and search
// for a BERT-optimized design.
//
//	go run ./examples/bert [-trials 200]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"fast"
	"fast/internal/sim"
)

func main() {
	trials := flag.Int("trials", 150, "search trial budget")
	parallel := flag.Int("parallel", 0, "concurrent evaluations (0 = one per CPU)")
	flag.Parse()

	// 1. Sequence-length sweep on the TPU-v3 baseline.
	tpu := fast.TPUv3().Clone("tpu-bert")
	tpu.NativeBatch = 8
	fmt.Println("BERT-Base on TPU-v3: runtime share by op class vs sequence length")
	fmt.Printf("  %-8s %8s %8s %8s %8s %8s\n", "seq", "QKV", "FFN", "attn", "softmax", "util")
	for _, seq := range []int64{128, 512, 1024, 2048} {
		g, err := fast.BuildModel(fmt.Sprintf("bert-%d", seq), tpu.NativeBatch)
		if err != nil {
			log.Fatal(err)
		}
		r, err := fast.Simulate(g, tpu, fast.BaselineOptions())
		if err != nil {
			log.Fatal(err)
		}
		share := map[string]float64{}
		for _, row := range r.ByClass(sim.ClassifyBERT) {
			share[row.Class] = row.RuntimeShare * 100
		}
		fmt.Printf("  %-8d %7.1f%% %7.1f%% %7.1f%% %7.1f%% %8.3f\n", seq,
			share["QKV projection"], share["Feed-forward"],
			share["Self-attention"], share["Softmax"], r.Utilization)
	}

	// 2. Two-pass softmax trade-off on a bandwidth-starved design.
	fmt.Println("\ntwo-pass softmax (§5.6) on a bandwidth-starved wide-VPU design:")
	starved := fast.FASTLarge().Clone("starved")
	starved.MemChannels = 1
	starved.VectorMult = 8
	starved.GlobalMiB = 1
	g, err := fast.BuildModel("bert-1024", starved.NativeBatch)
	if err != nil {
		log.Fatal(err)
	}
	for _, twoPass := range []bool{false, true} {
		opts := fast.FASTOptions()
		opts.AutoSoftmax = false
		opts.TwoPassSoftmax = twoPass
		r, err := fast.Simulate(g, starved, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s latency %.2f ms\n", r.SoftmaxAlgorithm, r.LatencySec*1e3)
	}

	// 3. Search a BERT-1024-optimized design.
	fmt.Printf("\nsearching %d designs for BERT-1024 (Perf/TDP)...\n", *trials)
	res, err := (&fast.Study{
		Workloads: []string{"bert-1024"},
		Objective: fast.ObjectivePerfPerTDP,
		Algorithm: fast.AlgorithmLCS,
		Trials:    *trials,
		Seed:      7,
	}).Run(context.Background(), fast.WithParallelism(*parallel))
	if err != nil {
		log.Fatal(err)
	}
	if res.Best == nil {
		log.Fatal("no feasible design; raise -trials")
	}
	base, err := fast.EvaluateDesign(fast.DieShrunkTPUv3(), []string{"bert-1024"}, fast.BaselineOptions())
	if err != nil {
		log.Fatal(err)
	}
	best := res.PerWorkload[0].Result
	fmt.Printf("best design: %s\n", res.Best)
	fmt.Printf("Perf/TDP vs TPU-v3: %.2fx (paper reports 2.7x for BERT)\n",
		best.PerfPerTDP/base[0].Result.PerfPerTDP)
	fmt.Printf("systolic array %dx%d — head-dim-64 friendly (§4.3); batch %d; GM %d MiB\n",
		res.Best.SAy, res.Best.SAx, res.Best.NativeBatch, res.Best.GlobalMiB)
}
