// Multi-workload search: optimize one accelerator for the paper's
// 5-workload serving suite (EfficientNet-B7, ResNet-50, OCR-RPN,
// OCR-Recognizer, BERT-1024) and compare the single design's geomean
// Perf/TDP against the TPU-v3 baseline — §6.2.1's "FAST search - multi
// workload" experiment, plus the ROI argument for why such a design may
// be the more profitable one (§6.2.2).
//
//	go run ./examples/multiworkload [-trials 250]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"

	"fast"
)

func main() {
	trials := flag.Int("trials", 200, "search trial budget")
	parallel := flag.Int("parallel", 0, "concurrent evaluations (0 = one per CPU)")
	flag.Parse()

	suite := fast.MultiWorkloadSuite()
	fmt.Printf("optimizing one design across: %v (%d trials)\n", suite, *trials)
	res, err := (&fast.Study{
		Workloads: suite,
		Objective: fast.ObjectivePerfPerTDP,
		Algorithm: fast.AlgorithmLCS,
		Trials:    *trials,
		Seed:      11,
	}).Run(context.Background(), fast.WithParallelism(*parallel))
	if err != nil {
		log.Fatal(err)
	}
	if res.Best == nil {
		log.Fatal("no feasible design; raise -trials")
	}
	fmt.Printf("\nmulti-workload design:\n  %s\n\n", res.Best)

	fmt.Printf("%-18s %12s %12s %10s\n", "workload", "Perf/TDP", "TPU-v3", "speedup")
	perWorkloadGain := make([]float64, 0, len(suite))
	for _, wr := range res.PerWorkload {
		base, err := fast.EvaluateDesign(fast.DieShrunkTPUv3(), []string{wr.Name}, fast.BaselineOptions())
		if err != nil {
			log.Fatal(err)
		}
		gain := wr.Result.PerfPerTDP / base[0].Result.PerfPerTDP
		perWorkloadGain = append(perWorkloadGain, gain)
		fmt.Printf("%-18s %12.4f %12.4f %9.2fx\n",
			wr.Name, wr.Result.PerfPerTDP, base[0].Result.PerfPerTDP, gain)
	}
	geo := 1.0
	for _, g := range perWorkloadGain {
		geo *= g
	}
	geo = math.Pow(geo, 1.0/float64(len(perWorkloadGain)))
	fmt.Printf("%-18s %37.2fx   (paper: 2.4x)\n", "GeoMean-5", geo)

	// §6.2.2: the multi-workload design serves more traffic, so it
	// reaches ROI targets at realistic volumes even with a lower speedup.
	p := fast.DefaultROI()
	fmt.Printf("\nROI: at %.2fx Perf/TCO the break-even volume is %.0f accelerators;\n",
		geo, p.BreakEvenVolume(geo))
	fmt.Printf("serving 5 workloads multiplies deployable volume, the §6.2.2 argument\n")
	fmt.Printf("for preferring multi-workload designs despite lower per-workload gains.\n")
}
