// EfficientNet search: run a single-workload FAST study for
// EfficientNet-B7 under the Perf/TDP objective, then inspect what the
// search discovered — smaller systolic arrays, a large Global Memory, and
// aggressive fusion, the §6.2.5 story.
//
//	go run ./examples/efficientnet [-trials 300]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"fast"
)

func main() {
	trials := flag.Int("trials", 200, "search trial budget")
	parallel := flag.Int("parallel", 0, "concurrent evaluations (0 = one per CPU)")
	flag.Parse()

	fmt.Printf("searching %d designs for EfficientNet-B7 (Perf/TDP objective)...\n", *trials)
	res, err := (&fast.Study{
		Workloads: []string{"efficientnet-b7"},
		Objective: fast.ObjectivePerfPerTDP,
		Algorithm: fast.AlgorithmLCS,
		Trials:    *trials,
		Seed:      42,
	}).Run(context.Background(), fast.WithParallelism(*parallel))
	if err != nil {
		log.Fatal(err)
	}
	if res.Best == nil {
		log.Fatal("no feasible design found; raise -trials")
	}

	best := res.PerWorkload[0].Result
	fmt.Printf("\ndiscovered design:\n  %s\n\n", res.Best)

	// Compare against the baselines and the paper's hand-published
	// FAST-Large point.
	fmt.Printf("%-22s %10s %8s %10s\n", "design", "QPS", "util", "Perf/TDP")
	print := func(name string, r *fast.SimResult) {
		fmt.Printf("%-22s %10.1f %8.3f %10.4f\n", name, r.QPS, r.Utilization, r.PerfPerTDP)
	}
	tpu := fast.DieShrunkTPUv3()
	g, err := fast.BuildModel("efficientnet-b7", tpu.NativeBatch)
	if err != nil {
		log.Fatal(err)
	}
	base, err := fast.Simulate(g, tpu, fast.BaselineOptions())
	if err != nil {
		log.Fatal(err)
	}
	flRes, err := fast.EvaluateDesign(fast.FASTLarge(), []string{"efficientnet-b7"}, fast.FASTOptions())
	if err != nil {
		log.Fatal(err)
	}
	print("TPU-v3 (die shrink)", base)
	print("FAST-Large (Table 5)", flRes[0].Result)
	print("searched design", best)

	fmt.Printf("\nsearched vs TPU-v3 Perf/TDP: %.2fx (paper reports ~6.4x for EfficientNets)\n",
		best.PerfPerTDP/base.PerfPerTDP)
	fmt.Printf("search explored %d trials, %.0f%% feasible\n",
		len(res.Search.History), res.Search.FeasibleRate()*100)

	// The §6.2.5 signature: did the search shrink the systolic arrays and
	// grow the Global Memory relative to the TPU?
	fmt.Printf("\ndesign signature (paper §6.2.5):\n")
	fmt.Printf("  systolic array %dx%d (TPU: 128x128) — smaller arrays lift depthwise utilization\n",
		res.Best.SAy, res.Best.SAx)
	fmt.Printf("  global memory %d MiB (TPU: 16 MiB/core) — fusion headroom\n", res.Best.GlobalMiB)
	fmt.Printf("  fusion efficiency %.0f%%, post-fusion op intensity %.0f vs ridgepoint %.0f\n",
		best.FusionEfficiency*100, best.OpIntensityPost, res.Best.Ridgepoint())
}
