// Quickstart: simulate EfficientNet-B0 inference on the TPU-v3 baseline
// and on the FAST-Large design, compare throughput, utilization and
// Perf/TDP, then search a better design with the concurrent study
// engine — the 30-second tour of the public API.
//
//	go run ./examples/quickstart [-trials 60] [-parallel 4]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"fast"
)

func main() {
	trials := flag.Int("trials", 60, "search trial budget for step 5")
	parallel := flag.Int("parallel", 0, "concurrent evaluations (0 = one per CPU)")
	flag.Parse()
	// 1. Pick a workload and a design. Workloads are HLO-like graphs
	//    built at the design's native batch size.
	tpu := fast.TPUv3()
	workload, err := fast.BuildModel("efficientnet-b0", tpu.NativeBatch)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Simulate with the production software stack (XLA fusion regions,
	//    classic schedules — the paper's baseline).
	baseline, err := fast.Simulate(workload, tpu, fast.BaselineOptions())
	if err != nil {
		log.Fatal(err)
	}

	// 3. Simulate the FAST-Large design with the full FAST stack
	//    (schedule search, FAST fusion, softmax selection).
	fl := fast.FASTLarge()
	workloadFL, err := fast.BuildModel("efficientnet-b0", fl.NativeBatch)
	if err != nil {
		log.Fatal(err)
	}
	optimized, err := fast.Simulate(workloadFL, fl, fast.FASTOptions())
	if err != nil {
		log.Fatal(err)
	}

	// 4. Compare.
	fmt.Println("EfficientNet-B0 inference:")
	fmt.Printf("  %-12s %10s %12s %8s %10s\n", "design", "QPS", "latency", "util", "Perf/TDP")
	for _, row := range []struct {
		name string
		r    *fast.SimResult
	}{{"TPU-v3", baseline}, {"FAST-Large", optimized}} {
		fmt.Printf("  %-12s %10.1f %10.2fms %8.3f %10.4f\n",
			row.name, row.r.QPS, row.r.LatencySec*1e3, row.r.Utilization, row.r.PerfPerTDP)
	}
	fmt.Printf("\nPerf/TDP improvement: %.2fx\n", optimized.PerfPerTDP/baseline.PerfPerTDP)
	fmt.Printf("FAST fusion removed %.0f%% of the memory stall (op intensity %.0f -> %.0f FLOPs/B)\n",
		optimized.FusionEfficiency*100, optimized.OpIntensityPre, optimized.OpIntensityPost)

	// 5. Search a design of our own with the concurrent study engine:
	//    candidate evaluations run on a worker pool, and the result is
	//    identical for a fixed seed at any -parallel setting.
	fmt.Printf("\nsearching %d candidate designs for EfficientNet-B0...\n", *trials)
	t0 := time.Now()
	res, err := (&fast.Study{
		Workloads: []string{"efficientnet-b0"},
		Objective: fast.ObjectivePerfPerTDP,
		Algorithm: fast.AlgorithmLCS,
		Trials:    *trials,
		Seed:      1,
	}).Run(context.Background(), fast.WithParallelism(*parallel))
	if err != nil {
		log.Fatal(err)
	}
	if res.Best == nil {
		log.Fatal("no feasible design; raise -trials")
	}
	elapsed := time.Since(t0)
	fmt.Printf("searched %d trials in %.1fs (%.1f trials/s)\n",
		len(res.Search.History), elapsed.Seconds(),
		float64(len(res.Search.History))/elapsed.Seconds())
	fmt.Printf("best design: %s\n", res.Best)
	fmt.Printf("searched vs TPU-v3 Perf/TDP: %.2fx\n",
		res.PerWorkload[0].Result.PerfPerTDP/baseline.PerfPerTDP)
}
