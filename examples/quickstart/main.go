// Quickstart: simulate EfficientNet-B0 inference on the TPU-v3 baseline
// and on the FAST-Large design, and compare throughput, utilization and
// Perf/TDP — the 30-second tour of the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fast"
)

func main() {
	// 1. Pick a workload and a design. Workloads are HLO-like graphs
	//    built at the design's native batch size.
	tpu := fast.TPUv3()
	workload, err := fast.BuildModel("efficientnet-b0", tpu.NativeBatch)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Simulate with the production software stack (XLA fusion regions,
	//    classic schedules — the paper's baseline).
	baseline, err := fast.Simulate(workload, tpu, fast.BaselineOptions())
	if err != nil {
		log.Fatal(err)
	}

	// 3. Simulate the FAST-Large design with the full FAST stack
	//    (schedule search, FAST fusion, softmax selection).
	fl := fast.FASTLarge()
	workloadFL, err := fast.BuildModel("efficientnet-b0", fl.NativeBatch)
	if err != nil {
		log.Fatal(err)
	}
	optimized, err := fast.Simulate(workloadFL, fl, fast.FASTOptions())
	if err != nil {
		log.Fatal(err)
	}

	// 4. Compare.
	fmt.Println("EfficientNet-B0 inference:")
	fmt.Printf("  %-12s %10s %12s %8s %10s\n", "design", "QPS", "latency", "util", "Perf/TDP")
	for _, row := range []struct {
		name string
		r    *fast.SimResult
	}{{"TPU-v3", baseline}, {"FAST-Large", optimized}} {
		fmt.Printf("  %-12s %10.1f %10.2fms %8.3f %10.4f\n",
			row.name, row.r.QPS, row.r.LatencySec*1e3, row.r.Utilization, row.r.PerfPerTDP)
	}
	fmt.Printf("\nPerf/TDP improvement: %.2fx\n", optimized.PerfPerTDP/baseline.PerfPerTDP)
	fmt.Printf("FAST fusion removed %.0f%% of the memory stall (op intensity %.0f -> %.0f FLOPs/B)\n",
		optimized.FusionEfficiency*100, optimized.OpIntensityPre, optimized.OpIntensityPost)
}
