package sim

import (
	"math"
	"math/rand"
	"testing"

	"fast/internal/arch"
	"fast/internal/models"
)

// TestSimInvariantsOnRandomDesigns drives the full pipeline with random
// feasible designs and checks structural invariants the analytical model
// must never violate.
func TestSimInvariantsOnRandomDesigns(t *testing.T) {
	s := arch.Space{}
	r := rand.New(rand.NewSource(31))
	workloads := []string{"efficientnet-b0", "resnet50", "bert-128", "mobilenetv2"}
	checked := 0
	for i := 0; i < 120 && checked < 40; i++ {
		cfg := s.Random(r, arch.FASTLarge())
		w := workloads[i%len(workloads)]
		g := models.MustBuild(w, cfg.NativeBatch)
		res, err := Simulate(g, cfg, FASTOptions())
		if err != nil {
			t.Fatal(err)
		}
		if res.ScheduleFailed {
			continue
		}
		checked++

		// QPS × latency ≡ cores × batch.
		if got := res.QPS * res.LatencySec; math.Abs(got-float64(cfg.Cores*cfg.NativeBatch)) > 1e-6*got {
			t.Fatalf("%s on %s: QPS·latency = %f, want %d", w, cfg.Name, got, cfg.Cores*cfg.NativeBatch)
		}
		// Utilization and stalls bounded.
		if res.Utilization <= 0 || res.Utilization > 1+1e-9 {
			t.Fatalf("%s: utilization %f out of (0,1]", w, res.Utilization)
		}
		for _, v := range []float64{res.MemStallPre, res.MemStallPost} {
			if v < -1e-9 || v > 1+1e-9 {
				t.Fatalf("%s: stall %f out of [0,1]", w, v)
			}
		}
		// Fusion respects GM capacity and never increases traffic.
		if res.Fusion.GMUsedPeak > cfg.GlobalBytes() {
			t.Fatalf("%s: fusion exceeded GM: %d > %d", w, res.Fusion.GMUsedPeak, cfg.GlobalBytes())
		}
		for ri, rs := range res.Regions {
			if rs.DRAMBytesPost > rs.DRAMBytesPre {
				t.Fatalf("%s region %d: post traffic %d > pre %d", w, ri, rs.DRAMBytesPost, rs.DRAMBytesPre)
			}
			if rs.SecPost > rs.SecPre+1e-12 {
				t.Fatalf("%s region %d: fusion slowed the region", w, ri)
			}
			if rs.SecPost < rs.ComputeSec-1e-12 {
				t.Fatalf("%s region %d: time below the compute floor", w, ri)
			}
		}
		// Intensity can only improve.
		if res.OpIntensityPost < res.OpIntensityPre-1e-9 {
			t.Fatalf("%s: fusion lowered op intensity", w)
		}
	}
	if checked < 20 {
		t.Fatalf("only %d feasible designs out of 120 random draws; feasibility too rare", checked)
	}
}

// TestMoreBandwidthNeverHurts checks roofline monotonicity: raising DRAM
// channels (all else fixed) must not increase latency.
func TestMoreBandwidthNeverHurts(t *testing.T) {
	base := arch.FASTLarge().Clone("bw")
	g := models.MustBuild("efficientnet-b7", base.NativeBatch)
	prev := math.Inf(1)
	for _, ch := range []int64{1, 2, 4, 8} {
		cfg := base.Clone("bw")
		cfg.MemChannels = ch
		r, err := Simulate(g, cfg, FASTOptions())
		if err != nil {
			t.Fatal(err)
		}
		if r.LatencySec > prev*(1+1e-9) {
			t.Fatalf("latency rose with bandwidth at %d channels", ch)
		}
		prev = r.LatencySec
	}
}

// TestMoreGlobalMemoryNeverHurtsLatency checks the fusion axis: a larger
// GM gives the solver a superset of placements.
func TestMoreGlobalMemoryNeverHurtsLatency(t *testing.T) {
	base := arch.FASTLarge().Clone("gm")
	g := models.MustBuild("efficientnet-b7", base.NativeBatch)
	prev := math.Inf(1)
	for _, gm := range []int64{0, 8, 32, 128, 256} {
		cfg := base.Clone("gm")
		cfg.GlobalMiB = gm
		r, err := Simulate(g, cfg, FASTOptions())
		if err != nil {
			t.Fatal(err)
		}
		if r.LatencySec > prev*(1+0.01) {
			t.Fatalf("latency rose >1%% when GM grew to %d MiB: %.4g > %.4g", gm, r.LatencySec, prev)
		}
		if r.LatencySec < prev {
			prev = r.LatencySec
		}
	}
}

// TestBiggerBatchAmortizes checks that per-query latency cost of batch is
// sublinear: doubling batch must not double latency on a throughput
// design (there is always some batch-parallel work).
func TestBiggerBatchAmortizes(t *testing.T) {
	cfg := arch.FASTSmall()
	for _, w := range []string{"resnet50", "bert-128"} {
		l := map[int64]float64{}
		for _, b := range []int64{1, 8, 64} {
			c := cfg.Clone("batch")
			c.NativeBatch = b
			g := models.MustBuild(w, b)
			r, err := Simulate(g, c, FASTOptions())
			if err != nil {
				t.Fatal(err)
			}
			l[b] = r.LatencySec
		}
		if l[64] >= 64*l[1] {
			t.Errorf("%s: batch 64 latency %.4g not sublinear vs batch 1 %.4g", w, l[64], l[1])
		}
		if l[8] <= l[1] {
			t.Errorf("%s: bigger batches must take longer per batch", w)
		}
	}
}

// TestDualCoreDoublesThroughput checks the multi-core model: cores
// replicate throughput at equal per-core latency.
func TestDualCoreDoublesThroughput(t *testing.T) {
	one := arch.FASTLarge().Clone("one")
	two := one.Clone("two")
	two.Cores = 2
	g := models.MustBuild("efficientnet-b0", one.NativeBatch)
	r1, err := Simulate(g, one, FASTOptions())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Simulate(g, two, FASTOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r2.QPS-2*r1.QPS) > 1e-6*r1.QPS {
		t.Errorf("dual core QPS %f, want %f", r2.QPS, 2*r1.QPS)
	}
	if math.Abs(r2.LatencySec-r1.LatencySec) > 1e-9 {
		t.Errorf("per-core latency changed with core count")
	}
	if r2.TDPWatts <= r1.TDPWatts {
		t.Errorf("second core is not free")
	}
}
