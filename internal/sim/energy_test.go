package sim

import (
	"testing"

	"fast/internal/arch"
	"fast/internal/models"
	"fast/internal/power"
)

func TestEnergyPositiveAndBelowTDP(t *testing.T) {
	// Sustained power implied by the energy model must sit below the
	// power-virus TDP on every reference design (TDP assumes 100%
	// simultaneous component activity; real workloads cannot exceed it).
	m := power.Default()
	e := power.DefaultEnergy()
	for _, pair := range []struct {
		cfg  *arch.Config
		opts Options
	}{
		{arch.TPUv3(), BaselineOptions()},
		{arch.FASTLarge(), FASTOptions()},
		{arch.FASTSmall(), FASTOptions()},
	} {
		for _, w := range []string{"efficientnet-b7", "resnet50", "bert-1024"} {
			g := models.MustBuild(w, pair.cfg.NativeBatch)
			r, err := Simulate(g, pair.cfg, pair.opts)
			if err != nil {
				t.Fatal(err)
			}
			ej := r.EnergyPerInference(m, e)
			if ej <= 0 {
				t.Fatalf("%s on %s: energy %f", w, pair.cfg.Name, ej)
			}
			avg := r.AveragePowerW(m, e)
			if avg <= 0 || avg > r.TDPWatts {
				t.Errorf("%s on %s: average power %.1f W outside (0, TDP=%.1f]",
					w, pair.cfg.Name, avg, r.TDPWatts)
			}
		}
	}
}

func TestFusionSavesEnergy(t *testing.T) {
	// Removing DRAM round trips must cut energy per inference.
	m := power.Default()
	e := power.DefaultEnergy()
	cfg := arch.FASTLarge()
	g := models.MustBuild("efficientnet-b7", cfg.NativeBatch)
	fused, err := Simulate(g, cfg, FASTOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := FASTOptions()
	opts.Fusion.Disable = true
	unfused, err := Simulate(g, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if fused.EnergyPerInference(m, e) >= unfused.EnergyPerInference(m, e) {
		t.Errorf("fusion must save energy: %.4g >= %.4g J",
			fused.EnergyPerInference(m, e), unfused.EnergyPerInference(m, e))
	}
}

func TestEnergyScalesWithModelSize(t *testing.T) {
	m := power.Default()
	e := power.DefaultEnergy()
	cfg := arch.FASTLarge()
	energy := func(w string) float64 {
		g := models.MustBuild(w, cfg.NativeBatch)
		r, err := Simulate(g, cfg, FASTOptions())
		if err != nil {
			t.Fatal(err)
		}
		return r.EnergyPerInference(m, e)
	}
	if energy("efficientnet-b7") <= energy("efficientnet-b0") {
		t.Error("B7 must cost more energy per inference than B0")
	}
}

func TestHBMEnergyAdvantage(t *testing.T) {
	// At similar bandwidth, HBM's pJ/byte advantage must show in the
	// activity-level DRAM energy.
	m := power.Default()
	e := power.DefaultEnergy()
	a := power.Activity{DRAMBytes: 1e9, Seconds: 1e-3}
	g := arch.FASTLarge()
	h := g.Clone("hbm")
	h.Mem = arch.HBM2
	h.MemChannels = 2
	gd := m.Energy(g, e, a) - e.StaticFraction*m.TDP(g)*a.Seconds
	hb := m.Energy(h, e, a) - e.StaticFraction*m.TDP(h)*a.Seconds
	if hb >= gd {
		t.Errorf("HBM dynamic DRAM energy %.4g should be below GDDR6 %.4g", hb, gd)
	}
}
