package sim

import (
	"sort"
	"strings"

	"fast/internal/hlo"
	"fast/internal/power"
)

// OpTime is an op's share of post-fusion execution time: its region's
// time distributed proportionally to intrinsic op costs.
type OpTime struct {
	Op  *hlo.Op
	Sec float64
}

// OpTimes attributes the simulated execution time to individual ops.
func (r *Result) OpTimes() []OpTime {
	var out []OpTime
	for _, rs := range r.Regions {
		var intrinsic float64
		for _, s := range rs.Shares {
			intrinsic += s.IntrinsicSec
		}
		for _, s := range rs.Shares {
			sec := 0.0
			switch {
			case intrinsic > 0:
				sec = rs.SecPost * s.IntrinsicSec / intrinsic
			case len(rs.Shares) > 0:
				sec = rs.SecPost / float64(len(rs.Shares))
			}
			out = append(out, OpTime{Op: s.Op, Sec: sec})
		}
	}
	return out
}

// ClassBreakdown aggregates runtime and FLOP shares by op class name
// (Table 2). Classes: "DepthwiseConv2dNative", "Conv2D", "Other" for
// CNNs; callers can use ClassifyBERT for the Figure 5 classes.
type ClassBreakdown struct {
	Class        string
	FLOPShare    float64
	RuntimeShare float64
}

// ByClass groups op time by classify(op) and returns rows sorted by
// runtime share (descending).
func (r *Result) ByClass(classify func(*hlo.Op) string) []ClassBreakdown {
	timeBy := map[string]float64{}
	flopBy := map[string]float64{}
	var totalT, totalF float64
	for _, ot := range r.OpTimes() {
		c := classify(ot.Op)
		timeBy[c] += ot.Sec
		flopBy[c] += float64(hlo.FLOPs(ot.Op))
		totalT += ot.Sec
		totalF += float64(hlo.FLOPs(ot.Op))
	}
	out := classRows(timeBy, flopBy, totalT, totalF)
	sort.Slice(out, func(i, j int) bool { return out[i].RuntimeShare > out[j].RuntimeShare })
	return out
}

// classRows materializes breakdown rows in sorted class order, so the
// result (including the relative order of runtime-share ties) does not
// depend on map iteration order.
func classRows(timeBy, flopBy map[string]float64, totalT, totalF float64) []ClassBreakdown {
	classes := make([]string, 0, len(timeBy))
	for c := range timeBy {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	out := make([]ClassBreakdown, 0, len(classes))
	for _, c := range classes {
		row := ClassBreakdown{Class: c}
		if totalT > 0 {
			row.RuntimeShare = timeBy[c] / totalT
		}
		if totalF > 0 {
			row.FLOPShare = flopBy[c] / totalF
		}
		out = append(out, row)
	}
	return out
}

// ClassifyCNN implements the Table 2 classes.
func ClassifyCNN(op *hlo.Op) string {
	switch op.Kind {
	case hlo.KDepthwiseConv2D:
		return "DepthwiseConv2dNative"
	case hlo.KConv2D:
		return "Conv2D"
	default:
		return "Other"
	}
}

// ClassifyBERT implements the Figure 5 classes by op-name substring:
// QKV projection, softmax, self-attention einsums, feed-forward, other.
func ClassifyBERT(op *hlo.Op) string {
	switch {
	case strings.Contains(op.Name, "qkv"):
		return "QKV projection"
	case strings.Contains(op.Name, "attn.softmax"):
		return "Softmax"
	case strings.Contains(op.Name, "attn.scores"), strings.Contains(op.Name, "attn.context"):
		return "Self-attention"
	case strings.Contains(op.Name, "ffn"):
		return "Feed-forward"
	default:
		return "Other"
	}
}

// BlockUtilization is a model block's fraction-of-peak-FLOPs (Figures 4
// and 14).
type BlockUtilization struct {
	Block string
	// Utilization is block FLOPs / (block time × per-core peak FLOPs).
	Utilization float64
	Sec         float64
	FLOPs       int64
}

// ByBlock aggregates utilization per model block in first-appearance
// order.
func (r *Result) ByBlock() []BlockUtilization {
	peak := r.Config.PeakFLOPs() / float64(r.Config.Cores)
	idx := map[string]int{}
	var out []BlockUtilization
	for _, ot := range r.OpTimes() {
		b := ot.Op.Block
		i, ok := idx[b]
		if !ok {
			i = len(out)
			idx[b] = i
			out = append(out, BlockUtilization{Block: b})
		}
		out[i].Sec += ot.Sec
		out[i].FLOPs += hlo.FLOPs(ot.Op)
	}
	for i := range out {
		if out[i].Sec > 0 && peak > 0 {
			out[i].Utilization = float64(out[i].FLOPs) / (out[i].Sec * peak)
		}
	}
	return out
}

// ByClassRegion groups runtime the way a production profiler does
// (Table 2): each region's overlapped time is attributed to the region's
// primary op (its matrix op, or the op with the largest intrinsic cost),
// while serialized reductions (softmax, layernorm) keep their own class.
func (r *Result) ByClassRegion(classify func(*hlo.Op) string) []ClassBreakdown {
	timeBy := map[string]float64{}
	flopBy := map[string]float64{}
	var totalT, totalF float64
	for _, rs := range r.Regions {
		var primary *hlo.Op
		var bestIntrinsic float64
		var serialT, intrinsicT float64
		for _, s := range rs.Shares {
			intrinsicT += s.IntrinsicSec
			if isSerialVec(s.Op.Kind) {
				serialT += s.IntrinsicSec
				continue
			}
			if s.Op.Kind.IsMatrix() && (primary == nil || !primary.Kind.IsMatrix()) {
				primary = s.Op
				bestIntrinsic = s.IntrinsicSec
			} else if (primary == nil || !primary.Kind.IsMatrix()) && s.IntrinsicSec >= bestIntrinsic {
				primary = s.Op
				bestIntrinsic = s.IntrinsicSec
			}
		}
		for _, s := range rs.Shares {
			flopBy[classify(s.Op)] += float64(hlo.FLOPs(s.Op))
			totalF += float64(hlo.FLOPs(s.Op))
		}
		if primary == nil && len(rs.Shares) > 0 {
			primary = rs.Shares[0].Op
		}
		if primary == nil {
			continue
		}
		serialShare := 0.0
		if intrinsicT > 0 {
			serialShare = serialT / intrinsicT
		}
		for _, s := range rs.Shares {
			if isSerialVec(s.Op.Kind) && serialT > 0 {
				timeBy[classify(s.Op)] += rs.SecPost * serialShare * s.IntrinsicSec / serialT
			}
		}
		timeBy[classify(primary)] += rs.SecPost * (1 - serialShare)
		totalT += rs.SecPost
	}
	out := classRows(timeBy, flopBy, totalT, totalF)
	sort.Slice(out, func(i, j int) bool { return out[i].RuntimeShare > out[j].RuntimeShare })
	return out
}

// ActivitySummary aggregates the run's activity counters for the energy
// model: MACs, vector ops (approximated as non-matrix FLOPs), post-fusion
// DRAM traffic, and an SRAM-traffic estimate (each DRAM byte is staged
// through the Global Memory once, and each MAC reads one operand pair
// amortized by the systolic reuse factor).
func (r *Result) ActivitySummary() power.Activity {
	var macs, vec, dram float64
	for _, rs := range r.Regions {
		for _, s := range rs.Shares {
			f := float64(hlo.FLOPs(s.Op))
			if s.Op.Kind.IsMatrix() {
				macs += f / 2
			} else {
				vec += f
			}
		}
		dram += float64(rs.DRAMBytesPost)
	}
	// Systolic arrays reuse a latched operand across the whole stream, so
	// SRAM operand traffic per MAC is far below 2 reads; approximate the
	// reuse with the array's smaller dimension.
	reuse := float64(r.Config.SAx)
	if float64(r.Config.SAy) < reuse {
		reuse = float64(r.Config.SAy)
	}
	if reuse < 1 {
		reuse = 1
	}
	elemBytes := 2.0
	sram := macs*2*elemBytes/reuse + 2*dram
	return power.Activity{
		MACs: macs, VectorOps: vec, DRAMBytes: dram, SRAMBytes: sram,
		Seconds: r.LatencySec,
	}
}

// EnergyPerInference estimates Joules per inference (dynamic + static)
// with the given coefficients; AveragePowerW is the implied sustained
// power draw.
func (r *Result) EnergyPerInference(m *power.Model, e power.EnergyCoeffs) float64 {
	if r.QPS <= 0 {
		return 0
	}
	batchEnergy := m.Energy(r.Config, e, r.ActivitySummary())
	return batchEnergy * float64(r.Config.Cores) / (r.QPS * r.LatencySec)
}

// AveragePowerW is the sustained power implied by the energy model; it
// should sit below the power-virus TDP for any real workload.
func (r *Result) AveragePowerW(m *power.Model, e power.EnergyCoeffs) float64 {
	return r.EnergyPerInference(m, e) * r.QPS
}
