package sim

// Full-ILP differential: the sparse revised-simplex fusion solve
// against the frozen dense-tableau reference across the fusion
// instances the reference suite's models × designs generate.
//
// The dense solver is only a sound oracle where it proves optimality
// without hitting its per-LP iteration cap, so the matrix below is the
// subset of reference instances where it does (measured; the excluded
// instances — efficientnet-b5..b7 and the OCR recognizer on the TPU
// datapaths among others — take the dense core minutes per solve or
// trip its cap, which silently weakens its bounds). On two further
// instances the dense tableau's absolute pivot tolerances can return a
// provably suboptimal "optimal" on fusion-scaled coefficients (costs
// ~1e-6 against byte columns ~1e8) — the ilp-level fusion-shaped suite
// pins that against brute force — so an assignment mismatch here is
// only a failure when the sparse total is *worse*.

import (
	"math"
	"sync"
	"testing"
	"time"

	"fast/internal/arch"
	"fast/internal/models"
)

func fullILPOptions(dense bool) Options {
	o := FASTOptions()
	o.Fusion.GreedyOnly = false
	o.Fusion.Deadline = 60 * time.Second
	o.Fusion.DenseILP = dense
	return o
}

func TestSparseILPMatchesDenseOnReferenceInstances(t *testing.T) {
	if testing.Short() {
		t.Skip("full-ILP differential sweep is not short")
	}
	all := planDesigns()
	fastOnly := []*arch.Config{arch.FASTLarge(), arch.FASTSmall()}
	suite := []struct {
		model string
		cfgs  []*arch.Config
	}{
		{"efficientnet-b0", all},
		{"efficientnet-b1", all},
		{"efficientnet-b2", all},
		{"efficientnet-b3", all},
		{"mobilenetv2", all},
		{"resnet50", all},
		{"bert-1024", fastOnly},
		{"bert-128", []*arch.Config{arch.FASTLarge()}},
		{"ocr-rpn", fastOnly},
	}
	for _, tc := range suite {
		for _, cfg := range tc.cfgs {
			label := tc.model + "/" + cfg.Name
			g := models.MustBuild(tc.model, cfg.NativeBatch)
			sparsePlan, err := Compile(g, fullILPOptions(false))
			if err != nil {
				t.Fatal(err)
			}
			densePlan, err := Compile(g, fullILPOptions(true))
			if err != nil {
				t.Fatal(err)
			}
			sp, err := sparsePlan.Evaluate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			de, err := densePlan.Evaluate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if sp.Fusion.Method != "ilp-optimal" {
				t.Fatalf("%s: sparse method %s, want proven optimality", label, sp.Fusion.Method)
			}
			if de.Fusion.Method != "ilp-optimal" {
				t.Fatalf("%s: dense method %s — instance no longer dense-sound, update the matrix", label, de.Fusion.Method)
			}
			same := true
			for i := range sp.Fusion.PinWeight {
				if sp.Fusion.PinWeight[i] != de.Fusion.PinWeight[i] ||
					sp.Fusion.EdgeOnChip[i] != de.Fusion.EdgeOnChip[i] {
					same = false
					break
				}
			}
			if same {
				// Identical assignment ⇒ identical roll-up arithmetic ⇒ the
				// whole timing pipeline must agree bit for bit.
				if sp.Fusion.Total != de.Fusion.Total || sp.LatencySec != de.LatencySec || sp.QPS != de.QPS {
					t.Errorf("%s: identical assignment, diverging results: total %x vs %x",
						label, sp.Fusion.Total, de.Fusion.Total)
				}
				continue
			}
			// Diverging assignments: both claim optimality, so the sparse
			// total may only be better (dense's absolute tolerances can lose
			// exactness on this scaling; see the ilp brute-force suite).
			if sp.Fusion.Total > de.Fusion.Total+1e-12*(1+math.Abs(de.Fusion.Total)) {
				t.Errorf("%s: sparse total %.15g worse than dense %.15g", label, sp.Fusion.Total, de.Fusion.Total)
			} else {
				t.Logf("%s: assignments differ; sparse total %.15g ≤ dense %.15g (dense tolerance artifact)",
					label, sp.Fusion.Total, de.Fusion.Total)
			}
		}
	}
}

// TestParallelFullILPEvaluateRace hammers the new parallel full-ILP
// paths on one shared plan: concurrent Evaluates with AutoSoftmax
// (each spawning the concurrent softmax-variant goroutine, each variant
// an exact ILP through the pooled revised-simplex state) across designs
// that alternate between sharing and missing the fusion stage cache.
// Run under -race in CI.
func TestParallelFullILPEvaluateRace(t *testing.T) {
	g := models.MustBuild("bert-128", arch.FASTLarge().NativeBatch)
	opts := fullILPOptions(false)
	opts.Fusion.Deadline = 5 * time.Second
	plan, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := make([]*arch.Config, 4)
	for i := range cfgs {
		c := arch.FASTLarge().Clone("race")
		c.ClockGHz += float64(i) * 0.001 // distinct fusion cache keys
		cfgs[i] = c
	}
	var wg sync.WaitGroup
	results := make([]*Result, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r, err := plan.Evaluate(cfgs[w%len(cfgs)])
			if err != nil {
				t.Error(err)
				return
			}
			results[w] = r
		}(w)
	}
	wg.Wait()
	for w, r := range results {
		if r == nil {
			continue
		}
		ref := results[w%len(cfgs)]
		if ref != nil && (r.LatencySec != ref.LatencySec || r.Fusion.Total != ref.Fusion.Total) {
			t.Errorf("worker %d diverged from worker %d on the same design", w, w%len(cfgs))
		}
	}
}
