package sim

// Compiled simulation plans.
//
// Every FAST search trial simulates the same (workload, options) pair on
// a different candidate datapath, but most of the simulator pipeline —
// graph traversal, fusion-region partitioning, per-op shape/FLOPs/byte
// analysis, fusion-candidate enumeration, softmax-variant pre-analysis —
// depends only on the workload and the software-stack options, never on
// the design. Compile hoists all of that out of the per-trial loop into
// an immutable Plan; Plan.Evaluate runs only the design-dependent part
// (schedule mapping, fusion placement, latency/power roll-up) with flat
// slices keyed by dense op/region/problem index and no map allocations.
//
// Simulate(g, cfg, opts) ≡ Compile(g, opts).Evaluate(cfg) bit-for-bit:
// the evaluate path performs the identical arithmetic in the identical
// order as the pre-split simulator (a differential property test in
// plan_test.go enforces this across every registry model, reference
// design, and option set).

import (
	"fmt"
	"sync/atomic"
	"unsafe"

	"fast/internal/arch"
	"fast/internal/fusion"
	"fast/internal/hlo"
	"fast/internal/mapping"
	"fast/internal/power"
	"fast/internal/vpu"
)

// evalCount counts design evaluations process-wide: every Evaluate call
// and every design in an EvaluateBatch adds one, regardless of how many
// memoized stages it hits. Tests use the delta to assert evaluation
// budgets (e.g. that a multi-objective study costs one evaluation per
// design, not one per objective); the single relaxed atomic add is
// noise next to the ~µs evaluate itself.
var evalCount atomic.Int64

// EvalCount returns the process-wide design-evaluation count.
func EvalCount() int64 { return evalCount.Load() }

// dwVPUEff derates VPU throughput for windowed depthwise access under
// the production lowering (see Options.DepthwiseOnVPU).
const dwVPUEff = 0.20

// opClass tells Evaluate which cost path an op takes; decided at compile
// time because it depends only on the op kind and the options.
type opClass uint8

const (
	// classVector ops run on the VPUs with precomputed per-variant costs.
	classVector opClass = iota
	// classMatrix ops run through the schedule mapper (problems table).
	classMatrix
	// classDWVPU is a depthwise conv lowered to the VPU (DepthwiseOnVPU).
	classDWVPU
)

// planOp is the design-independent record for one costed op.
type planOp struct {
	op    *hlo.Op
	class opClass
	// serial marks full reductions that cannot overlap systolic streaming.
	serial bool
	// overlappable marks ops whose time attribution is rescaled when
	// matrix and vector phases overlap.
	overlappable bool
	// problem indexes Plan.problems for classMatrix ops (-1 otherwise).
	problem int
	// gateOps is the LSTM gate VPU work accompanying the cell's matmul.
	gateOps float64
	// dwOps is the pre-derated VPU op count for classDWVPU.
	dwOps float64
	// softmaxBytes2 is 2× the output tensor size for softmax ops (the
	// on-chip residency threshold); 0 means the op always "fits".
	softmaxBytes2 int64
	// cost holds the VPU cost for classVector ops, indexed by
	// [softmax algorithm][fits-on-chip 0/1]. Non-softmax ops store the
	// same cost in all four slots.
	cost [2][2]vpu.Cost
}

// planRegion is the design-independent record for one fusion region.
type planRegion struct {
	region *hlo.Region
	// lo/hi bound the region's ops in Plan.ops.
	lo, hi int
	io     hlo.RegionIO
	// Primary-edge candidate for FAST fusion (see Partition.PrimaryEdge).
	edgeProducer int
	edgeBytes    int64
	edgeSole     bool
	// resident is the edge tensor's peak GM residency after inter-op
	// blocking (per-sample slice unless WholeTensorFusion).
	resident int64
}

// Plan is a compiled simulation: every design-independent analysis of one
// (workload graph, Options) pair, ready to be evaluated against any
// number of candidate datapaths. The compiled data is immutable after
// Compile; the stage caches (see stages.go) are internally synchronized,
// so a Plan is safe for concurrent Evaluate/EvaluateBatch calls from
// many goroutines.
type Plan struct {
	graph *hlo.Graph
	opts  Options
	part  *hlo.Partition

	regions []planRegion
	ops     []planOp
	// problems are the unique matrix problems in first-appearance order;
	// compulsory[i] is problems[i]'s compulsory DRAM byte count (the
	// design-independent term of the mapper's traffic floor).
	problems   []mapping.Problem
	compulsory []int64
	// usable is the fusion residency-window pre-analysis (shared
	// read-only by every Evaluate).
	usable []bool
	// hasSoftmax is the softmax-selection pre-analysis: the two §5.6
	// softmax variants produce identical results on a graph with no
	// softmax op, and the tie resolves to three-pass, so AutoSoftmax
	// evaluation can skip the second pass entirely.
	hasSoftmax bool
	// hasKV marks plans whose graph reads persistent KV-cache tensors
	// (decode workloads); encoder plans skip the KV-eligibility stage
	// entirely.
	hasKV bool

	// schemeKey fingerprints opts.Mapping's effective scheme set; it
	// participates in every mapping-stage cache key (see stages.go).
	schemeKey uint64
	// pm is the resolved power model (opts.PowerModel or power.Default),
	// hoisted out of the per-trial roll-up.
	pm *power.Model

	// Parameter-sliced stage caches, memoizing design-dependent work
	// across trials by the sub-tuple of config parameters each stage
	// reads (see stages.go).
	mapCache    stageCache[mapKey, []mapping.Mapping]
	floorCache  stageCache[int64, []int64]
	fusionCache stageCache[fusionKey, fusion.Assignment]
	powerCache  stageCache[powerKey, power.Breakdown]
	kvCache     stageCache[uint64, []bool]
}

// Graph returns the workload graph the plan was compiled from.
func (p *Plan) Graph() *hlo.Graph { return p.graph }

// Options returns the options the plan was compiled with.
func (p *Plan) Options() Options { return p.opts }

// SizeBytes estimates the plan's resident size: the immutable
// design-independent tables Compile builds (regions, per-op cost
// records, unique mapping problems, fusion pre-analysis). It is the
// accounting unit of core's LRU-bounded plan cache. Two resident costs
// are deliberately excluded: the workload graph, which is owned by the
// process-wide graph cache and shared across plans (counting it here
// would double-charge every plan of the same workload), and the
// parameter-sliced stage caches, which grow with use but are bounded
// per plan by their own shard capacity (stageShards × stageShardCap
// entries per stage).
func (p *Plan) SizeBytes() int64 {
	size := int64(unsafe.Sizeof(*p))
	size += int64(len(p.regions)) * int64(unsafe.Sizeof(planRegion{}))
	size += int64(len(p.ops)) * int64(unsafe.Sizeof(planOp{}))
	size += int64(len(p.problems)) * int64(unsafe.Sizeof(mapping.Problem{}))
	size += int64(len(p.compulsory)) * 8
	size += int64(len(p.usable))
	return size
}

// Compile runs every design-independent analysis for graph g under opts:
// fusion-region partitioning, per-region I/O and primary-edge
// enumeration, per-op cost pre-analysis (both softmax variants, both
// residency outcomes), unique-matrix-problem deduplication, and the
// fusion residency-window candidate set. The returned Plan evaluates any
// datapath with Plan.Evaluate; Simulate is Compile+Evaluate.
func Compile(g *hlo.Graph, opts Options) (*Plan, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	p := &Plan{graph: g, opts: opts, schemeKey: opts.Mapping.SchemeKey()}
	p.pm = opts.PowerModel
	if p.pm == nil {
		p.pm = power.Default()
	}
	if opts.PartitionNone {
		p.part = hlo.PartitionNone(g)
	} else {
		p.part = hlo.PartitionXLA(g)
	}

	nb := g.NativeBatch()
	probIdx := make(map[mapping.Problem]int)
	p.regions = make([]planRegion, 0, len(p.part.Regions))
	for _, r := range p.part.Regions {
		pr := planRegion{region: r, lo: len(p.ops), io: p.part.IO(r)}
		for _, op := range r.Ops {
			po := planOp{op: op, problem: -1}
			if opts.DepthwiseOnVPU && op.Kind == hlo.KDepthwiseConv2D {
				po.class = classDWVPU
				macs := float64(hlo.FLOPs(op)) / 2
				po.dwOps = macs / dwVPUEff
			} else if prob, ok := mapping.FromOp(op); ok {
				po.class = classMatrix
				pi, seen := probIdx[prob]
				if !seen {
					pi = len(p.problems)
					probIdx[prob] = pi
					p.problems = append(p.problems, prob)
					p.compulsory = append(p.compulsory,
						prob.ActivationBytes()+prob.StationaryBytes()+prob.OutputBytes())
				}
				po.problem = pi
				if op.Kind == hlo.KLSTMCell {
					po.gateOps = vpu.LSTMGateOps(op)
				}
			} else {
				po.class = classVector
				po.serial = isSerialVec(op.Kind)
				if op.Kind == hlo.KSoftmax {
					po.softmaxBytes2 = op.Output.Bytes() * 2
					p.hasSoftmax = true
				}
				for ai, alg := range [2]vpu.SoftmaxAlgorithm{vpu.ThreePass, vpu.TwoPass} {
					for fi, fits := range [2]bool{false, true} {
						po.cost[ai][fi] = vpu.OpCost(op, alg, fits)
					}
				}
			}
			po.overlappable = !op.Kind.IsMatrix() && !isSerialVec(op.Kind)
			p.ops = append(p.ops, po)
		}
		pr.hi = len(p.ops)
		pr.edgeProducer, pr.edgeBytes, pr.edgeSole = p.part.PrimaryEdge(r)
		if opts.Training {
			// Intermediates must persist for the backward pass: activation
			// edges cannot be kept on chip.
			pr.edgeProducer, pr.edgeBytes, pr.edgeSole = -1, 0, false
		}
		// Inter-op blocking: adjacent regions stream the edge tensor one
		// batch sample at a time, so GM residency is the per-sample slice.
		pr.resident = pr.edgeBytes
		if nb > 1 && pr.edgeBytes > 0 && !opts.WholeTensorFusion {
			pr.resident = pr.edgeBytes / nb
		}
		if pr.io.KVBytes > 0 {
			p.hasKV = true
		}
		p.regions = append(p.regions, pr)
	}

	producers := make([]int, len(p.regions))
	for i := range p.regions {
		producers[i] = p.regions[i].edgeProducer
	}
	p.usable = fusion.UsableEdges(producers, opts.Fusion.Window)
	return p, nil
}

// Evaluate runs the design-dependent half of the simulation: schedule
// mapping over the plan's unique matrix problems, fusion placement among
// the precompiled candidates, and the latency/power roll-up — each stage
// memoized across trials by the config sub-tuple it reads (stages.go).
// It is safe to call concurrently on one shared Plan, and produces
// bit-identical Results to Simulate(plan.Graph(), cfg, plan.Options()).
func (p *Plan) Evaluate(cfg *arch.Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return p.evaluateValidated(cfg), nil
}

// evaluateValidated fetches the memoized stages for cfg and runs the
// softmax-variant selection over them. One stage fetch serves both
// variant evaluations of an AutoSoftmax run: the mapper never depends on
// the softmax algorithm.
func (p *Plan) evaluateValidated(cfg *arch.Config) *Result {
	evalCount.Add(1)
	mapped := p.mappedFor(cfg)
	extras := p.floorFor(capacityBytes(cfg))
	if p.opts.AutoSoftmax {
		var a, b *Result
		if !p.hasSoftmax {
			// No softmax op: the two-pass variant would produce the
			// identical timeline, and the a/b tie resolves to a.
			return p.evaluate(cfg, vpu.ThreePass, mapped, extras)
		}
		if p.opts.Fusion.GreedyOnly || p.opts.Fusion.Disable {
			// Search-loop stack: the two variant evaluations are a few
			// microseconds each, not worth a goroutine.
			a = p.evaluate(cfg, vpu.ThreePass, mapped, extras)
			b = p.evaluate(cfg, vpu.TwoPass, mapped, extras)
		} else {
			// Full-ILP stack: each variant's fusion stage is an exact
			// branch-and-bound solve (they differ in vector times and DRAM
			// extras, hence in their cost tables and cache keys), so the
			// two instances run concurrently. Selection below is unchanged
			// and order-independent, so the result is bit-identical to the
			// serial path.
			done := make(chan struct{})
			go func() {
				defer close(done)
				b = p.evaluate(cfg, vpu.TwoPass, mapped, extras)
			}()
			a = p.evaluate(cfg, vpu.ThreePass, mapped, extras)
			<-done
		}
		if !b.ScheduleFailed && (a.ScheduleFailed || b.LatencySec < a.LatencySec) {
			return b
		}
		return a
	}
	alg := vpu.ThreePass
	if p.opts.TwoPassSoftmax {
		alg = vpu.TwoPass
	}
	return p.evaluate(cfg, alg, mapped, extras)
}

// evaluate is the per-design hot path. It mirrors the pre-split
// simulate() arithmetic exactly — same operations, same order — reading
// every design-independent quantity from the plan's flat tables and
// every memoized stage result (mapped, extras) from the stage caches.
func (p *Plan) evaluate(cfg *arch.Config, alg vpu.SoftmaxAlgorithm, mapped []mapping.Mapping, extras []int64) *Result {
	g, opts := p.graph, p.opts
	res := &Result{Graph: g, Config: cfg, SoftmaxAlgorithm: alg}

	perCoreBW := cfg.PeakBandwidthGBs() * 1e9 / float64(cfg.Cores)
	clock := cfg.ClockGHz * 1e9

	capBytes := capacityBytes(cfg)

	algIdx := 0
	if alg == vpu.TwoPass {
		algIdx = 1
	}

	scratch := scratchPool.Get().(*evalScratch)
	defer scratchPool.Put(scratch)
	costs := scratch.regionCosts(len(p.regions))
	var kvOK []bool
	if p.hasKV {
		kvOK = p.kvEligibleFor(cfg)
	}
	stats := make([]RegionStats, len(p.regions))
	// One backing array serves every region's op shares (they escape
	// into the Result, but as subslices of a single allocation).
	shareBacking := make([]OpShare, 0, len(p.ops))
	var totalFLOPs, matrixFLOPs int64

	for ri := range p.regions {
		pr := &p.regions[ri]
		io := pr.io
		// Matrix ops stream through the systolic arrays while the VPUs
		// post-process elementwise results in the same region, so those
		// phases overlap: compute = max(matrix, elementwise) + serial,
		// where full reductions (softmax, layernorm, global pooling)
		// cannot start until their producer finishes and are serialized.
		var matrixSec, vectorSec, serialSec float64
		var extraBytes int64
		pinnable := true
		shares := shareBacking[pr.lo:pr.lo:pr.hi]

		for oi := pr.lo; oi < pr.hi; oi++ {
			po := &p.ops[oi]
			var opSec float64
			var opExtra int64
			switch po.class {
			case classDWVPU:
				opSec = vpu.Time(po.dwOps, cfg)
				vectorSec += opSec
			case classMatrix:
				pi := po.problem
				m := mapped[pi]
				if m.Failed {
					res.ScheduleFailed = true
					res.FailReason = fmt.Sprintf("op %q: %s", po.op.Name, m.Reason)
					return res
				}
				opSec = m.Cycles / clock
				opExtra = extras[pi]
				if !p.problems[pi].WeightsStationary {
					pinnable = false
				}
				matrixSec += opSec
				if po.gateOps > 0 {
					gates := vpu.Time(po.gateOps, cfg)
					vectorSec += gates
					opSec += gates
				}
			default:
				fi := 1
				if po.softmaxBytes2 > capBytes {
					// A standalone softmax kernel round-trips its whole
					// tensor per pass unless the tensor itself stays on
					// chip between passes.
					fi = 0
				}
				c := po.cost[algIdx][fi]
				opSec = vpu.Time(c.VectorOps, cfg)
				opExtra = c.ExtraDRAMBytes
				if po.serial {
					serialSec += opSec
				} else {
					vectorSec += opSec
				}
			}
			extraBytes += opExtra
			shares = append(shares, OpShare{Op: po.op, IntrinsicSec: opSec + float64(opExtra)/perCoreBW})
		}
		if opts.Training {
			var trainBytes int64
			matrixSec, vectorSec, serialSec, trainBytes = trainingAdjust(matrixSec, vectorSec, serialSec, io, extraBytes)
			// Rebuild the IO view the fusion costs below will see.
			extraBytes = trainBytes - io.InputBytes - io.OutputBytes - io.WeightBytes
		}
		computeSec := maxf(matrixSec, vectorSec) + serialSec
		// Attribute overlapped elementwise time at its residual share so
		// per-op reports match what the timeline charges.
		if matrixSec > 0 && vectorSec > 0 {
			factor := 0.0
			if vectorSec > matrixSec {
				factor = (vectorSec - matrixSec) / vectorSec
			}
			for si := range shares {
				if p.ops[pr.lo+si].overlappable {
					shares[si].IntrinsicSec *= factor
				}
			}
		}
		if io.WeightBytes == 0 {
			pinnable = false
		}

		dramPre := io.InputBytes + io.OutputBytes + io.WeightBytes + io.KVBytes + extraBytes
		tMax := maxf(computeSec, float64(dramPre)/perCoreBW)
		// With every boundary tensor on chip the activation re-read
		// extras disappear too; the floor is pure compute.
		tMin := computeSec

		costs[ri] = fusion.RegionCost{
			TMin: tMin, TMax: tMax,
			TWeight: float64(io.WeightBytes) / perCoreBW,
			DWeight: io.WeightBytes, PinnableWeights: pinnable,
			EdgeProducer:      pr.edgeProducer,
			EdgeBytes:         pr.edgeBytes,
			EdgeResidentBytes: pr.resident,
			// The consumer-side read saving carries the mapper/softmax
			// extras (they are re-reads of the same activations).
			TEdgeRead: float64(pr.edgeBytes+extraBytes) / perCoreBW,
		}
		if pr.edgeSole {
			// The producer's DRAM write is saved too when this region is
			// the tensor's only external consumer.
			costs[ri].TEdgeWrite = float64(pr.edgeBytes) / perCoreBW
		}
		if kvOK != nil && kvOK[ri] {
			// The region's KV-cache slab fits in Global Memory: offer it to
			// the residency solver as a pin-like hold candidate.
			costs[ri].KVBytes = io.KVBytes
			costs[ri].TKVRead = float64(io.KVBytes) / perCoreBW
		}
		stats[ri] = RegionStats{
			Region: pr.region, ComputeSec: computeSec, Shares: shares,
			ExtraBytes:   extraBytes,
			DRAMBytesPre: dramPre, SecPre: tMax, FLOPs: io.FLOPs,
			KVBytes: io.KVBytes,
		}
		totalFLOPs += io.FLOPs
		matrixFLOPs += io.MatrixFLOPs
	}

	sol := p.fusionFor(cfg, algIdx, costs)
	res.Fusion = sol

	// Post-fusion DRAM traffic per region.
	for ri := range stats {
		b := stats[ri].DRAMBytesPre
		if sol.PinWeight[ri] {
			b -= costs[ri].DWeight
		}
		if sol.EdgeOnChip[ri] {
			b -= costs[ri].EdgeBytes + stats[ri].ExtraBytes
			if costs[ri].TEdgeWrite > 0 {
				pp := costs[ri].EdgeProducer
				stats[pp].DRAMBytesPost -= costs[ri].EdgeBytes
			}
		}
		if sol.KVOnChip != nil && sol.KVOnChip[ri] {
			b -= costs[ri].KVBytes
		}
		stats[ri].DRAMBytesPost += b
	}
	var latency, preLatency, computeTotal float64
	var bytesPre, bytesPost int64
	for ri := range stats {
		if stats[ri].DRAMBytesPost < 0 {
			stats[ri].DRAMBytesPost = 0
		}
		post := sol.Times[ri]
		stats[ri].SecPost = post
		latency += post
		preLatency += stats[ri].SecPre
		computeTotal += stats[ri].ComputeSec
		bytesPre += stats[ri].DRAMBytesPre
		bytesPost += stats[ri].DRAMBytesPost
	}
	res.Regions = stats
	res.LatencySec = latency
	if latency > 0 {
		res.QPS = float64(cfg.Cores) * float64(g.NativeBatch()) / latency
		// Fraction of peak FLOPS, measured against the systolic arrays
		// (the paper's metric): vector-unit work is excluded so the ratio
		// is bounded by 1 on any datapath.
		res.Utilization = float64(matrixFLOPs) / (latency * cfg.PeakFLOPs() / float64(cfg.Cores))
	}
	if bytesPre > 0 {
		res.OpIntensityPre = float64(totalFLOPs) / float64(bytesPre)
	}
	if bytesPost > 0 {
		res.OpIntensityPost = float64(totalFLOPs) / float64(bytesPost)
	}
	if preLatency > 0 {
		res.MemStallPre = (preLatency - computeTotal) / preLatency
	}
	if latency > 0 {
		res.MemStallPost = (latency - computeTotal) / latency
	}
	if stall := preLatency - computeTotal; stall > 0 {
		res.FusionEfficiency = (preLatency - latency) / stall
	}

	eval := p.powerFor(cfg)
	res.TDPWatts = eval.TotalPower()
	res.AreaMM2 = eval.TotalArea()
	if res.TDPWatts > 0 {
		res.PerfPerTDP = res.QPS / res.TDPWatts
	}
	return res
}
