package sim

// Factored evaluation: parameter-sliced stage memoization.
//
// FAST's search loop evaluates thousands of designs drawn from a
// Cartesian grid of discrete hyperparameters, so consecutive trials share
// most of their architecture parameters. Plan.Evaluate exploits that by
// splitting its design-dependent work into stages keyed by the sub-tuple
// of arch.Config parameters each stage actually reads, and memoizing the
// stages across trials in sharded per-Plan caches:
//
//   - mapping stage: the schedule mapper reads only the PE grid, the
//     systolic-array dims, and the L1 discipline/sizes (plus the plan's
//     mapping options, whose scheme restriction participates in the key
//     via mapping.Options.SchemeKey — a restricted-scheme search must
//     never hit a full-universe entry). Keyed by
//     arch.Config.SubKey(mappingParams) + the scheme key.
//
//   - residency stage: the mapper's DRAM-traffic floor beyond compulsory
//     bytes reads only the effective blocking capacity, so it is keyed by
//     that derived byte count directly — every memory-hierarchy shape
//     with the same capacity shares one entry.
//
//   - fusion stage: the placement assignment (which regions pin weights,
//     which keep their primary edge in Global Memory) is a deterministic
//     function of the per-region cost table, which in turn folds every
//     searched parameter except the native batch (the batch only selects
//     the plan), plus clock and memory technology. The assignment — the
//     expensive half: greedy selection, optionally the ILP — is memoized;
//     the cheap per-design roll-up (times, peak usage) is re-derived from
//     it via fusion.ResolvePlanned. This is what makes re-evaluating a
//     winning design with the full ILP solve (Study.Run's final pass,
//     EvaluateDesign harnesses) nearly free after the first solve.
//
//   - roll-up stage: the power/area roll-up reads sizes, widths and the
//     fixed platform attributes (cores, clock, memory technology), but
//     not the L1 sharing discipline or the native batch.
//
// Stage values are computed at most once per key (sync.Once entries), are
// immutable afterwards, and are shared read-only by every concurrent
// Evaluate — which also deduplicates work when EvaluateBatch fans a batch
// across Runner workers. Keys cover exactly the fields a stage reads, so
// a cache hit is bit-identical to recomputation (the differential and
// fuzz tests in plan_test.go enforce this against the frozen pre-split
// simulator).

import (
	"fmt"
	"sort"
	"sync"

	"fast/internal/arch"
	"fast/internal/fusion"
	"fast/internal/mapping"
	"fast/internal/power"
)

// mappingParams is the sub-tuple of searched hyperparameters the schedule
// mapper reads: tile geometry (systolic dims), PE-grid parallelism, and
// L1 feasibility (sharing discipline + scratchpad sizes). The mapper
// never sees L2, Global Memory, DRAM channels, the VPU width, or the
// native batch — nor any fixed platform attribute.
var mappingParams = arch.MaskOf(
	arch.PPEsX, arch.PPEsY, arch.PSAx, arch.PSAy,
	arch.PL1Config, arch.PL1Input, arch.PL1Weight, arch.PL1Output,
)

// powerParams is the sub-tuple the power/area roll-up reads: everything
// except the L1 sharing discipline (capacity matters, banking does not)
// and the native batch. The fixed platform attributes it also reads
// (cores, clock, memory technology) ride in powerKey beside the sub-key.
var powerParams = arch.AllParams &^ arch.MaskOf(arch.PL1Config, arch.PNativeBatch)

// mapKey identifies one mapping-stage cache entry.
type mapKey struct {
	sub uint64
	// schemes is the plan's mapping.Options.SchemeKey(): defensive
	// against any future sharing of stage caches across plans, and the
	// reason a restricted-scheme search can never alias a full-universe
	// entry.
	schemes uint64
}

// powerKey identifies one roll-up cache entry: the searched sub-tuple
// plus the fixed platform attributes the power model reads.
type powerKey struct {
	sub   uint64
	cores int64
	clock float64
	mem   arch.MemTech
}

// fusionParams is the sub-tuple the fusion stage depends on: the
// per-region cost table folds mapping cycles, VPU and DRAM times, and
// capacity decisions, touching every searched parameter except the
// native batch.
var fusionParams = arch.AllParams &^ arch.MaskOf(arch.PNativeBatch)

// kvParams is the sub-tuple the KV-eligibility stage reads: whether a
// region's persistent KV-cache slab fits in Global Memory depends only
// on the GM capacity. (The fusion stage that consumes the resulting cost
// entries already folds PGlobal via fusionParams, so the fusion cache
// key stays sound.)
var kvParams = arch.MaskOf(arch.PGlobal)

// fusionKey identifies one fusion-stage cache entry; alg distinguishes
// the softmax variant (it changes vector times and DRAM extras, and so
// the cost table).
type fusionKey struct {
	sub   uint64
	cores int64
	clock float64
	mem   arch.MemTech
	alg   uint8
}

const (
	// stageShards spreads cache entries over independently locked shards
	// so concurrent Evaluate calls rarely contend.
	stageShards = 16
	// stageShardCap bounds each shard; a full shard is dropped wholesale
	// (recomputation is deterministic, so eviction can never change a
	// result). Bounds per-plan cache memory in long-lived processes.
	stageShardCap = 256
)

// stageCache is a sharded once-per-key memo table. Entries are computed
// at most once and immutable afterwards; the shard lock covers only the
// map access, never the compute.
type stageCache[K comparable, V any] struct {
	shards [stageShards]struct {
		mu sync.Mutex
		m  map[K]*stageEntry[V]
	}
}

type stageEntry[V any] struct {
	once sync.Once
	v    V
}

// get returns the memoized value for key, computing it on first use.
// hash only picks the shard; the full key disambiguates within it.
func (c *stageCache[K, V]) get(hash uint64, key K, compute func() V) V {
	s := &c.shards[hash%stageShards]
	s.mu.Lock()
	e, ok := s.m[key]
	if !ok {
		if s.m == nil || len(s.m) >= stageShardCap {
			s.m = make(map[K]*stageEntry[V], 8)
		}
		e = new(stageEntry[V])
		s.m[key] = e
	}
	s.mu.Unlock()
	e.once.Do(func() { e.v = compute() })
	return e.v
}

// mix is a Fibonacci-style bit mixer for shard selection.
func mix(x uint64) uint64 {
	x *= 0x9E3779B97F4A7C15
	return x ^ x>>32
}

// capacityBytes is the effective blocking capacity for the mapper's
// traffic floor: the largest on-chip level available for working tiles.
func capacityBytes(cfg *arch.Config) int64 {
	capBytes := cfg.GlobalBytes()
	if capBytes == 0 {
		capBytes = cfg.NumPEs() * cfg.L2BytesPerPE()
	}
	if capBytes == 0 {
		capBytes = cfg.NumPEs() * cfg.L1BytesPerPE()
	}
	return capBytes
}

// mappedFor returns the mapping-stage results for cfg: the best schedule
// mapping of every unique matrix problem, in dense problem order. The
// slice is cache-owned and read-only.
//
//fast:stage mask=mappingParams
func (p *Plan) mappedFor(cfg *arch.Config) []mapping.Mapping {
	key := mapKey{sub: cfg.SubKey(mappingParams), schemes: p.schemeKey}
	return p.mapCache.get(mix(key.sub^key.schemes), key, func() []mapping.Mapping {
		out := make([]mapping.Mapping, len(p.problems))
		for i := range p.problems {
			out[i] = mapping.Best(p.problems[i], cfg, p.opts.Mapping)
		}
		return out
	})
}

// floorFor returns the residency-stage results for an effective blocking
// capacity: each unique problem's DRAM-traffic floor beyond its
// compulsory bytes. The slice is cache-owned and read-only. The cache
// key is the derived capacity itself, not a Config sub-tuple, so the
// declared mask is empty.
//
//fast:stage mask=0
func (p *Plan) floorFor(capBytes int64) []int64 {
	return p.floorCache.get(mix(uint64(capBytes)), capBytes, func() []int64 {
		out := make([]int64, len(p.problems))
		for i := range p.problems {
			out[i] = mapping.TrafficFloor(p.problems[i], capBytes) - p.compulsory[i]
		}
		return out
	})
}

// powerFor returns the roll-up stage for cfg: the power/area breakdown
// under the plan's power model.
//
//fast:stage mask=powerParams fixed=cores,clock,mem
func (p *Plan) powerFor(cfg *arch.Config) power.Breakdown {
	key := powerKey{
		sub:   cfg.SubKey(powerParams),
		cores: cfg.Cores,
		clock: cfg.ClockGHz,
		mem:   cfg.Mem,
	}
	h := mix(key.sub ^ uint64(key.cores)<<40 ^ uint64(key.mem)<<56)
	return p.powerCache.get(h, key, func() power.Breakdown {
		return p.pm.Evaluate(cfg)
	})
}

// kvEligibleFor returns the KV-eligibility stage for cfg: per region,
// whether its KV-cache slab is a viable Global-Memory hold candidate
// (non-zero and within GM capacity). The slice is cache-owned and
// read-only; plans without KV-cache reads never call this.
//
//fast:stage mask=kvParams
func (p *Plan) kvEligibleFor(cfg *arch.Config) []bool {
	key := cfg.SubKey(kvParams)
	return p.kvCache.get(mix(key), key, func() []bool {
		out := make([]bool, len(p.regions))
		gm := cfg.GlobalBytes()
		for i := range p.regions {
			kv := p.regions[i].io.KVBytes
			out[i] = kv > 0 && kv <= gm
		}
		return out
	})
}

// fusionFor returns the fusion Solution for cfg under the given softmax
// variant: the placement assignment comes from the stage cache (first
// caller pays the greedy/ILP solve), the per-design roll-up is re-derived
// fresh so every Result owns its Solution slices.
//
//fast:stage mask=fusionParams fixed=cores,clock,mem
func (p *Plan) fusionFor(cfg *arch.Config, algIdx int, costs []fusion.RegionCost) fusion.Solution {
	key := fusionKey{
		sub:   cfg.SubKey(fusionParams),
		cores: cfg.Cores,
		clock: cfg.ClockGHz,
		mem:   cfg.Mem,
		alg:   uint8(algIdx),
	}
	h := mix(key.sub ^ uint64(key.cores)<<40 ^ uint64(key.mem)<<56 ^ uint64(key.alg)<<60)
	asn := p.fusionCache.get(h, key, func() fusion.Assignment {
		return fusion.SolvePlanned(costs, p.usable, cfg.GlobalBytes(), p.opts.Fusion)
	})
	return fusion.ResolvePlanned(costs, cfg.GlobalBytes(), asn)
}

// evalScratch pools the per-evaluate working memory that does not escape
// into the Result: the fusion region-cost table. (Per-region stats and
// op shares are part of the returned Result and cannot be pooled.)
type evalScratch struct {
	costs []fusion.RegionCost
}

var scratchPool = sync.Pool{New: func() any { return new(evalScratch) }}

// regionCosts returns a zeroed region-cost buffer of length n; the
// owning evalScratch goes back via scratchPool.Put when the evaluation
// is done with the buffer.
func (s *evalScratch) regionCosts(n int) []fusion.RegionCost {
	if cap(s.costs) < n {
		s.costs = make([]fusion.RegionCost, n)
	}
	s.costs = s.costs[:n]
	for i := range s.costs {
		s.costs[i] = fusion.RegionCost{}
	}
	return s.costs
}

// EvaluateBatch evaluates many candidate datapaths against one compiled
// plan. Results are bit-identical to calling Evaluate per design — and
// positionally aligned with cfgs — but the batch is walked in
// mapping-sub-key order (capacity as the secondary key), so designs that
// share a stage land consecutively and hit the stage caches while they
// are hot. Ask/tell optimizer batches are exactly this shape:
// consecutive proposals perturb a few parameters around incumbents, so
// most of a sorted batch shares its mapping and residency stages.
//
// Every config is validated up front; an invalid design fails the whole
// batch (the search engine filters infeasible decodes before reaching
// the simulator). Safe for concurrent use on one shared Plan.
func (p *Plan) EvaluateBatch(cfgs []*arch.Config) ([]*Result, error) {
	for i, cfg := range cfgs {
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("sim: batch design %d: %w", i, err)
		}
	}
	type sortKey struct {
		sub uint64
		cap int64
	}
	keys := make([]sortKey, len(cfgs))
	order := make([]int, len(cfgs))
	for i, cfg := range cfgs {
		keys[i] = sortKey{sub: cfg.SubKey(mappingParams), cap: capacityBytes(cfg)}
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ka, kb := keys[order[a]], keys[order[b]]
		if ka.sub != kb.sub {
			return ka.sub < kb.sub
		}
		return ka.cap < kb.cap
	})
	results := make([]*Result, len(cfgs))
	for _, i := range order {
		results[i] = p.evaluateValidated(cfgs[i])
	}
	return results, nil
}
