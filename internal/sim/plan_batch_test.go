package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"fast/internal/arch"
	"fast/internal/models"
)

// TestEvaluateBatchMatchesEvaluate is the batched half of the
// differential property: for every registry model × option set,
// EvaluateBatch over the reference designs must return results
// bit-identical to per-design Evaluate AND to the frozen pre-split
// simulator, in input order, regardless of the internal sub-key sort.
func TestEvaluateBatchMatchesEvaluate(t *testing.T) {
	if testing.Short() {
		t.Skip("full differential sweep is not short")
	}
	for _, model := range models.Names() {
		if models.UsesKVCache(model) {
			// The frozen pre-split simulator predates KV-cache residency;
			// decode workloads get their own EvaluateBatch differential in
			// plan_kv_test.go.
			continue
		}
		g := models.MustBuild(model, 128)
		for optName, opts := range planOptionSets() {
			label := fmt.Sprintf("%s/%s", model, optName)
			plan, err := Compile(g, opts)
			if err != nil {
				t.Fatalf("%s: Compile: %v", label, err)
			}
			designs := planDesigns()
			batch, err := plan.EvaluateBatch(designs)
			if err != nil {
				t.Fatalf("%s: EvaluateBatch: %v", label, err)
			}
			if len(batch) != len(designs) {
				t.Fatalf("%s: batch returned %d results for %d designs", label, len(batch), len(designs))
			}
			for i, cfg := range designs {
				want, err := referenceSimulate(g, cfg, opts)
				if err != nil {
					t.Fatalf("%s/%s: referenceSimulate: %v", label, cfg.Name, err)
				}
				sameResult(t, label+"/"+cfg.Name+" (batch vs frozen reference)", want, batch[i])
				serial, err := plan.Evaluate(cfg)
				if err != nil {
					t.Fatalf("%s/%s: Evaluate: %v", label, cfg.Name, err)
				}
				sameResult(t, label+"/"+cfg.Name+" (batch vs serial)", serial, batch[i])
			}
		}
	}
}

// TestEvaluateBatchRejectsInvalid: any invalid design fails the whole
// batch with its position in the error.
func TestEvaluateBatchRejectsInvalid(t *testing.T) {
	g := models.MustBuild("efficientnet-b0", 8)
	plan, err := Compile(g, FASTOptions())
	if err != nil {
		t.Fatal(err)
	}
	bad := arch.FASTLarge().Clone("bad")
	bad.PEsX = 3 // not a power of two
	if _, err := plan.EvaluateBatch([]*arch.Config{arch.FASTLarge(), bad}); err == nil {
		t.Fatal("EvaluateBatch accepted an invalid design")
	}
}

// randomSweep draws n random designs from the Table 3 space around the
// FAST platform — the design distribution an optimizer batch feeds
// EvaluateBatch — with heavy parameter sharing between neighbours
// (each design mutates a few coordinates of the previous one), which is
// exactly the shape that exercises stage-cache reuse across sub-keys.
func randomSweep(rng *rand.Rand, n int) []*arch.Config {
	s := arch.Space{}
	base := arch.FASTLarge()
	dims := s.Dims()
	var idx [arch.NumParams]int
	for d, card := range dims {
		idx[d] = rng.Intn(card)
	}
	out := make([]*arch.Config, n)
	for i := range out {
		out[i] = s.Decode(idx, base)
		out[i].Name = fmt.Sprintf("sweep-%d", i)
		for m := 0; m < 1+rng.Intn(3); m++ {
			d := rng.Intn(arch.NumParams)
			idx[d] = rng.Intn(dims[d])
		}
	}
	return out
}

// TestEvaluateBatchFuzzSweeps fuzzes the factored/batched evaluator over
// random design sweeps: every result must stay bit-identical to the
// frozen pre-split simulator. This is the test that would catch a stage
// cache keyed too narrowly (a hit returning another design's stage).
func TestEvaluateBatchFuzzSweeps(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz sweep is not short")
	}
	rng := rand.New(rand.NewSource(29))
	workloads := []string{"efficientnet-b0", "bert-1024"}
	for _, w := range workloads {
		g := models.MustBuild(w, 8)
		for optName, opts := range planOptionSets() {
			plan, err := Compile(g, opts)
			if err != nil {
				t.Fatalf("%s/%s: Compile: %v", w, optName, err)
			}
			for round := 0; round < 4; round++ {
				sweep := randomSweep(rng, 24)
				batch, err := plan.EvaluateBatch(sweep)
				if err != nil {
					t.Fatalf("%s/%s: EvaluateBatch: %v", w, optName, err)
				}
				for i, cfg := range sweep {
					want, err := referenceSimulate(g, cfg, opts)
					if err != nil {
						t.Fatalf("%s/%s/%s: referenceSimulate: %v", w, optName, cfg.Name, err)
					}
					label := fmt.Sprintf("%s/%s round %d design %d", w, optName, round, i)
					sameResult(t, label, want, batch[i])
				}
			}
		}
	}
}

// TestEvaluateBatchConcurrent hammers one shared Plan with EvaluateBatch
// from many goroutines over overlapping design sweeps; under -race it
// proves the stage caches synchronize correctly, and every concurrent
// result must still be bit-identical to its serial Evaluate.
func TestEvaluateBatchConcurrent(t *testing.T) {
	g := models.MustBuild("efficientnet-b0", 128)
	plan, err := Compile(g, FASTOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	sweep := append(randomSweep(rng, 24), planDesigns()...)
	refs := make([]*Result, len(sweep))
	for i, cfg := range sweep {
		if refs[i], err = plan.Evaluate(cfg); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
	}

	const goroutines = 8
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker walks a rotated view of the sweep so batches
			// overlap but differ in order.
			local := make([]*arch.Config, len(sweep))
			want := make([]*Result, len(sweep))
			for i := range sweep {
				j := (i + w*3) % len(sweep)
				local[i], want[i] = sweep[j], refs[j]
			}
			for round := 0; round < rounds; round++ {
				got, err := plan.EvaluateBatch(local)
				if err != nil {
					errs <- fmt.Errorf("worker %d: %v", w, err)
					return
				}
				for i := range got {
					if !reflect.DeepEqual(want[i], got[i]) {
						errs <- fmt.Errorf("worker %d: concurrent batch result %d diverged", w, i)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
