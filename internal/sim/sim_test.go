package sim

import (
	"math"
	"testing"

	"fast/internal/arch"
	"fast/internal/fusion"
	"fast/internal/hlo"
	"fast/internal/models"
)

// simulateWorkload builds the workload at the design's native batch and
// simulates it (the way every experiment drives the simulator).
func simulateWorkload(t *testing.T, name string, cfg *arch.Config, opts Options) *Result {
	t.Helper()
	g := models.MustBuild(name, cfg.NativeBatch)
	r, err := Simulate(g, cfg, opts)
	if err != nil {
		t.Fatalf("%s on %s: %v", name, cfg.Name, err)
	}
	if r.ScheduleFailed {
		t.Fatalf("%s on %s: schedule failure: %s", name, cfg.Name, r.FailReason)
	}
	return r
}

func TestBasicSanity(t *testing.T) {
	r := simulateWorkload(t, "efficientnet-b0", arch.TPUv3(), BaselineOptions())
	if r.LatencySec <= 0 || r.QPS <= 0 {
		t.Fatalf("latency %.3g qps %.3g", r.LatencySec, r.QPS)
	}
	if r.Utilization <= 0 || r.Utilization > 1 {
		t.Errorf("utilization = %.3f", r.Utilization)
	}
	if r.TDPWatts <= 0 || r.AreaMM2 <= 0 || r.PerfPerTDP <= 0 {
		t.Errorf("power stats: %+v", r)
	}
	if r.OpIntensityPost < r.OpIntensityPre {
		t.Errorf("fusion reduced op intensity: %.1f → %.1f", r.OpIntensityPre, r.OpIntensityPost)
	}
}

func TestB7TPUUtilizationLow(t *testing.T) {
	// §4.2: overall TPU-v3 utilization on EfficientNet-B7 is ~14.8%.
	// Accept the 8-25% band (our simulator, like the paper's, is
	// optimistic in places).
	r := simulateWorkload(t, "efficientnet-b7", arch.TPUv3(), BaselineOptions())
	if r.Utilization < 0.05 || r.Utilization > 0.30 {
		t.Errorf("B7 utilization on TPU-v3 = %.3f, want ~0.148", r.Utilization)
	}
}

func TestDepthwiseDominatesB7Runtime(t *testing.T) {
	// Table 2: depthwise ~5% of FLOPs but the majority of runtime.
	r := simulateWorkload(t, "efficientnet-b7", arch.TPUv3(), BaselineOptions())
	rows := r.ByClassRegion(ClassifyCNN)
	shares := map[string]ClassBreakdown{}
	for _, row := range rows {
		shares[row.Class] = row
	}
	dw := shares["DepthwiseConv2dNative"]
	conv := shares["Conv2D"]
	if dw.FLOPShare > 0.10 {
		t.Errorf("depthwise FLOP share = %.3f, want ~0.05", dw.FLOPShare)
	}
	if dw.RuntimeShare < 0.35 {
		t.Errorf("depthwise runtime share = %.3f, want dominant (paper: 0.65)", dw.RuntimeShare)
	}
	if conv.FLOPShare < 0.85 {
		t.Errorf("conv FLOP share = %.3f, want ~0.95", conv.FLOPShare)
	}
	if dw.RuntimeShare <= conv.RuntimeShare {
		t.Errorf("depthwise (%.2f) must out-cost conv (%.2f) in runtime",
			dw.RuntimeShare, conv.RuntimeShare)
	}
}

func TestFASTLargeBeatsTPUOnB7(t *testing.T) {
	// Table 5: FAST-Large ≈3.5× the QPS at lower TDP → Perf/TDP ≈3.9×;
	// utilization 0.61 vs 0.14; latency 11ms vs 609ms (two cores, batch
	// 2×64).
	tpu := simulateWorkload(t, "efficientnet-b7", arch.DieShrunkTPUv3(), BaselineOptions())
	fl := simulateWorkload(t, "efficientnet-b7", arch.FASTLarge(), FASTOptions())
	if fl.QPS <= tpu.QPS {
		t.Errorf("FAST-Large QPS %.0f must beat TPU %.0f", fl.QPS, tpu.QPS)
	}
	gain := (fl.QPS / fl.TDPWatts) / (tpu.QPS / tpu.TDPWatts)
	if gain < 2.0 || gain > 8.0 {
		t.Errorf("Perf/TDP gain = %.2f, want ≈3.9 (2-8 band)", gain)
	}
	if fl.Utilization < 2*tpu.Utilization {
		t.Errorf("FAST-Large util %.2f should far exceed TPU %.2f", fl.Utilization, tpu.Utilization)
	}
	if fl.LatencySec >= tpu.LatencySec {
		t.Errorf("FAST-Large latency %.1fms should be far below TPU %.1fms",
			fl.LatencySec*1e3, tpu.LatencySec*1e3)
	}
}

func TestFusionRemovesMemoryStall(t *testing.T) {
	// Table 5: FAST-Large pre-fusion stall 63% → 9% post (85% fusion
	// efficiency) on B7.
	fl := simulateWorkload(t, "efficientnet-b7", arch.FASTLarge(), FASTOptions())
	if fl.MemStallPre < 0.3 {
		t.Errorf("pre-fusion stall = %.2f, want large (paper 0.63)", fl.MemStallPre)
	}
	if fl.MemStallPost > fl.MemStallPre/2 {
		t.Errorf("post-fusion stall %.2f should be well below pre %.2f", fl.MemStallPost, fl.MemStallPre)
	}
	if fl.FusionEfficiency < 0.5 || fl.FusionEfficiency > 1.0+1e-9 {
		t.Errorf("fusion efficiency = %.2f, want high (paper 0.85)", fl.FusionEfficiency)
	}
	// Disabled fusion: no improvement.
	off, err := Simulate(models.MustBuild("efficientnet-b7", 8), arch.FASTLarge(),
		Options{Fusion: fusion.Options{Disable: true}})
	if err != nil {
		t.Fatal(err)
	}
	if off.LatencySec <= fl.LatencySec {
		t.Error("disabling fusion must not be faster")
	}
	if off.FusionEfficiency != 0 {
		t.Errorf("disabled fusion efficiency = %.2f", off.FusionEfficiency)
	}
}

func TestFusionNeedsGlobalMemory(t *testing.T) {
	// §6.2.7: without GM there is nothing to fuse into.
	c := arch.FASTLarge().Clone("no-gm")
	c.GlobalMiB = 0
	r := simulateWorkload(t, "efficientnet-b0", c, FASTOptions())
	if r.FusionEfficiency != 0 {
		t.Errorf("fusion efficiency without GM = %.2f, want 0", r.FusionEfficiency)
	}
}

func TestOpIntensityImprovesWithGM(t *testing.T) {
	// Figure 13: post-fusion op intensity grows with Global Memory.
	prev := 0.0
	for _, gm := range []int64{8, 32, 128} {
		c := arch.FASTLarge().Clone("gm-sweep")
		c.GlobalMiB = gm
		r := simulateWorkload(t, "efficientnet-b7", c, FASTOptions())
		if r.OpIntensityPost < prev-1e-9 {
			t.Errorf("op intensity decreased at GM=%d: %.1f < %.1f", gm, r.OpIntensityPost, prev)
		}
		prev = r.OpIntensityPost
	}
}

func TestBERTSoftmaxDominatesAtLongSeq(t *testing.T) {
	// Figure 5: softmax+attention dominate at seq 1024+, QKV+FFN at 128.
	cfgShort := arch.TPUv3().Clone("b128")
	cfgShort.NativeBatch = 8
	short := simulateWorkload(t, "bert-128", cfgShort, BaselineOptions())
	long := simulateWorkload(t, "bert-1024", cfgShort, BaselineOptions())

	share := func(r *Result, classes ...string) float64 {
		var s float64
		for _, row := range r.ByClass(ClassifyBERT) {
			for _, c := range classes {
				if row.Class == c {
					s += row.RuntimeShare
				}
			}
		}
		return s
	}
	attnShort := share(short, "Softmax", "Self-attention")
	attnLong := share(long, "Softmax", "Self-attention")
	if attnLong <= attnShort {
		t.Errorf("attention share must grow with seq len: %.2f → %.2f", attnShort, attnLong)
	}
	if attnLong < 0.4 {
		t.Errorf("attention+softmax share at seq1024 = %.2f, want dominant", attnLong)
	}
	if lin := share(short, "QKV projection", "Feed-forward"); lin < 0.5 {
		t.Errorf("QKV+FFN share at seq128 = %.2f, want dominant", lin)
	}
}

func TestTwoPassSoftmaxTradeoff(t *testing.T) {
	// §5.6: "the benefit of the two-pass approach is dependent on the
	// accelerator's memory bandwidth and vector unit throughput". On a
	// bandwidth-starved design with a wide VPU, two-pass must win; the
	// auto mode must always pick the better variant.
	g := models.MustBuild("bert-1024", 8)
	starved := arch.FASTLarge().Clone("starved")
	starved.MemChannels = 1 // 56 GB/s
	starved.VectorMult = 8  // wide VPU
	starved.GlobalMiB = 1   // defeat on-chip softmax rows
	off := fusion.Options{Disable: true}
	three, _ := Simulate(g, starved, Options{Fusion: off})
	two, _ := Simulate(g, starved, Options{Fusion: off, TwoPassSoftmax: true})
	if two.LatencySec >= three.LatencySec {
		t.Errorf("two-pass must win when bandwidth-starved: %.4f vs %.4f",
			two.LatencySec, three.LatencySec)
	}
	// Auto picks the min on any design.
	for _, c := range []*arch.Config{starved, arch.TPUv3()} {
		a, _ := Simulate(g, c, Options{Fusion: off})
		b, _ := Simulate(g, c, Options{Fusion: off, TwoPassSoftmax: true})
		auto, _ := Simulate(g, c, Options{Fusion: off, AutoSoftmax: true})
		if auto.LatencySec > math.Min(a.LatencySec, b.LatencySec)+1e-12 {
			t.Errorf("%s: auto softmax must pick the better variant", c.Name)
		}
	}
}

func TestScheduleFailurePropagates(t *testing.T) {
	c := arch.FASTLarge().Clone("bad")
	c.SAx, c.SAy = 256, 256
	c.PEsX, c.PEsY = 1, 1
	c.L1Config = arch.Private
	c.L1InputKiB, c.L1WeightKiB, c.L1OutputKiB = 1, 1, 1
	g := models.MustBuild("efficientnet-b0", 1)
	r, err := Simulate(g, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.ScheduleFailed || r.FailReason == "" {
		t.Errorf("expected schedule failure, got %+v", r)
	}
}

func TestInvalidInputsError(t *testing.T) {
	g := models.MustBuild("efficientnet-b0", 1)
	bad := arch.FASTLarge().Clone("bad")
	bad.PEsX = 3
	if _, err := Simulate(g, bad, Options{}); err == nil {
		t.Error("invalid config must error")
	}
	gBad := hlo.NewGraph("broken")
	gBad.Ops = append(gBad.Ops, &hlo.Op{ID: 5})
	if _, err := Simulate(gBad, arch.FASTLarge(), Options{}); err == nil {
		t.Error("invalid graph must error")
	}
}

func TestOpTimesSumToLatency(t *testing.T) {
	r := simulateWorkload(t, "resnet50", arch.TPUv3(), BaselineOptions())
	var sum float64
	for _, ot := range r.OpTimes() {
		sum += ot.Sec
	}
	if math.Abs(sum-r.LatencySec) > 1e-9*math.Max(1, r.LatencySec) {
		t.Errorf("op times sum %.6g != latency %.6g", sum, r.LatencySec)
	}
}

func TestByBlockCoversGraph(t *testing.T) {
	r := simulateWorkload(t, "efficientnet-b0", arch.TPUv3(), BaselineOptions())
	blocks := r.ByBlock()
	if len(blocks) < 10 {
		t.Fatalf("blocks = %d, want one per MBConv stage-layer + stem + head", len(blocks))
	}
	var flops int64
	for _, b := range blocks {
		flops += b.FLOPs
		if b.Utilization < 0 || b.Utilization > 1.0+1e-9 {
			t.Errorf("block %s utilization = %.3f", b.Block, b.Utilization)
		}
	}
	if flops != hlo.GraphFLOPs(r.Graph) {
		t.Errorf("block FLOPs %d != graph %d", flops, hlo.GraphFLOPs(r.Graph))
	}
}

func TestEarlyLayersLowUtilization(t *testing.T) {
	// Figure 4: earlier EfficientNet layers have lower utilization than
	// the best later layers (fewer channels).
	r := simulateWorkload(t, "efficientnet-b7", arch.TPUv3(), BaselineOptions())
	blocks := r.ByBlock()
	early := blocks[1].Utilization // first MBConv block
	best := 0.0
	for _, b := range blocks[len(blocks)/2:] {
		if b.Utilization > best {
			best = b.Utilization
		}
	}
	if early >= best {
		t.Errorf("early block util %.3f should be below best late util %.3f", early, best)
	}
}

func TestOCRWorkloadsAlreadyEfficient(t *testing.T) {
	// §6.1: OCR workloads are the worst case for FAST because they
	// already run efficiently; their TPU utilization must far exceed
	// B7's.
	b7 := simulateWorkload(t, "efficientnet-b7", arch.TPUv3(), BaselineOptions())
	rpn := simulateWorkload(t, "ocr-rpn", arch.TPUv3(), BaselineOptions())
	if rpn.Utilization < 2*b7.Utilization {
		t.Errorf("OCR-RPN util %.3f should be ≫ B7 %.3f", rpn.Utilization, b7.Utilization)
	}
}
