package sim

// Training-mode extension.
//
// The paper's framework targets inference and names training support as
// future work (§7). This file adds the analytical training-step model the
// §4.1 discussion implies:
//
//   - every matrix op runs three times the forward work (forward, grad
//     w.r.t. inputs, grad w.r.t. weights) and vector ops twice;
//   - intermediate activations must be preserved for the backward pass,
//     so FAST fusion may no longer discard them: activation-edge
//     placements are disabled and every boundary tensor is written to and
//     re-read from DRAM (§4.1: "intermediate results must be preserved
//     for the backwards pass"); weight pinning remains legal;
//   - weights are read again by both backward passes and a gradient of
//     weight size is written per step.
//
// The returned Result reports training steps/s in QPS.

import (
	"fast/internal/arch"
	"fast/internal/hlo"
)

// trainingMatrixScale is the matrix-op work multiplier for one training
// step (forward + dX + dW).
const trainingMatrixScale = 3

// trainingVectorScale is the vector-op multiplier (forward + backward).
const trainingVectorScale = 2

// SimulateTraining estimates one training step of graph g on cfg. It
// reuses the inference pipeline for mapping and utilization, then applies
// the training work and traffic model above.
func SimulateTraining(g *hlo.Graph, cfg *arch.Config, opts Options) (*Result, error) {
	// Inference pass with activation-edge fusion disabled: the backward
	// pass needs every intermediate in DRAM, so only weight pinning is
	// negotiable. Window 0 keeps the default for the pinning decisions.
	opts.Training = true
	return Simulate(g, cfg, opts)
}

// trainingAdjust scales a region's compute and traffic from inference to
// one training step. Called by simulate() when opts.Training is set.
func trainingAdjust(matrixSec, vectorSec, serialSec float64, io hlo.RegionIO, extraBytes int64) (
	m, v, s float64, dramBytes int64) {
	m = matrixSec * trainingMatrixScale
	v = vectorSec * trainingVectorScale
	s = serialSec * trainingVectorScale
	// Forward: inputs+outputs+weights+extras. Backward: re-read inputs
	// and outputs (activations and incoming gradients), re-read weights
	// twice (dX and dW passes), write a weight-sized gradient.
	dramBytes = (io.InputBytes+io.OutputBytes)*2 + extraBytes +
		io.WeightBytes + 2*io.WeightBytes + io.WeightBytes
	return
}
