// Package sim is the architectural simulator: it maps an HLO graph onto a
// datapath configuration and reports execution time, throughput,
// utilization, operational intensity, memory stalls, and Perf/TDP.
//
// Per §6.1, the pipeline per fusion region is: tensor-padding pre-pass →
// schedule mapping (internal/mapping, the Timeloop equivalent) for matrix
// ops and VPU cost models for everything else → FAST fusion ILP over the
// per-region statistics → final roofline-with-overlap timing. Designs
// with any unmappable op are invalid (ScheduleFailures = 0 constraint).
package sim

import (
	"fmt"

	"fast/internal/arch"
	"fast/internal/fusion"
	"fast/internal/hlo"
	"fast/internal/mapping"
	"fast/internal/power"
	"fast/internal/vpu"
)

// Options configures a simulation.
type Options struct {
	// TwoPassSoftmax enables the §5.6 algorithm (searched as a FAST
	// hyperparameter). AutoSoftmax lets the simulator pick the faster
	// variant per graph.
	TwoPassSoftmax bool
	AutoSoftmax    bool
	// Fusion configures the FAST fusion pass (Disable for ablations).
	Fusion fusion.Options
	// Mapping configures the schedule mapper.
	Mapping mapping.Options
	// PartitionNone disables XLA fusion regions (every op its own
	// region) for ablation studies.
	PartitionNone bool
	// Training enables the training-step model (see training.go): 3x
	// matrix work, 2x vector work, activations preserved to DRAM for the
	// backward pass (no activation-edge fusion), gradient traffic added.
	Training bool
	// WholeTensorFusion reproduces the paper's conservative Fig. 8
	// assumption that entire tensors occupy Global Memory while resident
	// (§5.5). Default false: the scheduler applies inter-op blocking, so
	// an edge's residency is its per-sample slice.
	WholeTensorFusion bool
	// DepthwiseOnVPU models the production XLA-TPU lowering of depthwise
	// convolutions to the vector unit instead of the systolic array (the
	// baseline behaviour §3.2 describes as mapping poorly; FAST's
	// schedule search replaces it with the 1-D systolic mapping). The
	// 0.20 efficiency derating reproduces the effective ~1.1% of chip
	// peak that Table 2's FLOP/runtime shares imply for TPU-v3.
	DepthwiseOnVPU bool
	// PowerModel overrides the default power/area model.
	PowerModel *power.Model
}

// OpShare records one op's intrinsic (pre-overlap) cost inside its
// region, used to attribute region time to ops for per-op reports.
type OpShare struct {
	Op *hlo.Op
	// IntrinsicSec is the op's standalone compute time plus its share of
	// algorithm-mandated DRAM time.
	IntrinsicSec float64
}

// RegionStats carries per-region simulation results.
type RegionStats struct {
	Region     *hlo.Region
	ComputeSec float64
	Shares     []OpShare
	// ExtraBytes is mapper re-read + softmax-pass traffic beyond the
	// boundary tensors.
	ExtraBytes int64
	// DRAMBytesPre is the region's DRAM traffic before FAST fusion
	// (boundary tensors + weights + mapper re-read floor + softmax
	// passes).
	DRAMBytesPre int64
	// DRAMBytesPost is the traffic after fusion placements.
	DRAMBytesPost int64
	// SecPre/SecPost are the region times before/after fusion.
	SecPre, SecPost float64
	FLOPs           int64
}

// Result is a full simulation outcome.
type Result struct {
	Graph  *hlo.Graph
	Config *arch.Config

	Regions []RegionStats
	Fusion  fusion.Solution

	// LatencySec is the time for one batch through one core.
	LatencySec float64
	// QPS is aggregate inferences/s across cores.
	QPS float64
	// Utilization is model FLOPs / (latency × per-core peak FLOPs).
	Utilization float64
	// OpIntensityPre/Post are FLOPs per DRAM byte before/after fusion.
	OpIntensityPre, OpIntensityPost float64
	// MemStallPre/Post are the fractions of execution time stalled on
	// DRAM (§6.2.5 "Pre-fusion Mem Stall %").
	MemStallPre, MemStallPost float64
	// FusionEfficiency is the fraction of pre-fusion stall time removed
	// by fusion (Table 5 "Fusion Efficiency").
	FusionEfficiency float64

	// TDPWatts and AreaMM2 come from the analytical power model.
	TDPWatts float64
	AreaMM2  float64
	// PerfPerTDP is QPS per watt.
	PerfPerTDP float64

	// ScheduleFailed marks an invalid design (Eq. 5); FailReason explains.
	ScheduleFailed bool
	FailReason     string

	// SoftmaxAlgorithm records the variant used.
	SoftmaxAlgorithm vpu.SoftmaxAlgorithm
}

// BaselineOptions models the production TPU-v3 software stack the paper
// baselines against: XLA fusion regions but no FAST fusion, and only the
// classic weight-/output-stationary mapping schemes (no 1-D convolution
// column streaming — the schedule improvement FAST's Timeloop search
// discovers, Figure 15's "scheduling" component).
func BaselineOptions() Options {
	return Options{
		Fusion: fusion.Options{Disable: true},
		Mapping: mapping.Options{
			Schemes: []mapping.Scheme{mapping.WeightStationary, mapping.OutputStationary},
		},
		DepthwiseOnVPU: true,
	}
}

// FASTOptions is the full FAST software stack: all mapping schemes,
// fusion with a greedy-incumbent solve (suitable inside search loops),
// and automatic softmax-algorithm selection.
func FASTOptions() Options {
	return Options{
		AutoSoftmax: true,
		Fusion:      fusion.Options{GreedyOnly: true},
	}
}

// Simulate runs the full pipeline for graph g (built at any batch; it is
// rebatched to cfg.NativeBatch by the caller when desired) on cfg.
func Simulate(g *hlo.Graph, cfg *arch.Config, opts Options) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if opts.AutoSoftmax {
		a := simulate(g, cfg, opts, vpu.ThreePass)
		b := simulate(g, cfg, opts, vpu.TwoPass)
		if !b.ScheduleFailed && (a.ScheduleFailed || b.LatencySec < a.LatencySec) {
			return b, nil
		}
		return a, nil
	}
	alg := vpu.ThreePass
	if opts.TwoPassSoftmax {
		alg = vpu.TwoPass
	}
	return simulate(g, cfg, opts, alg), nil
}

func simulate(g *hlo.Graph, cfg *arch.Config, opts Options, alg vpu.SoftmaxAlgorithm) *Result {
	res := &Result{Graph: g, Config: cfg, SoftmaxAlgorithm: alg}

	var part *hlo.Partition
	if opts.PartitionNone {
		part = hlo.PartitionNone(g)
	} else {
		part = hlo.PartitionXLA(g)
	}

	perCoreBW := cfg.PeakBandwidthGBs() * 1e9 / float64(cfg.Cores)
	clock := cfg.ClockGHz * 1e9

	// Effective blocking capacity for the mapper's traffic floor: the
	// largest on-chip level available for working tiles.
	capBytes := cfg.GlobalBytes()
	if capBytes == 0 {
		capBytes = cfg.NumPEs() * cfg.L2BytesPerPE()
	}
	if capBytes == 0 {
		capBytes = cfg.NumPEs() * cfg.L1BytesPerPE()
	}

	mapCache := make(map[mapping.Problem]mapping.Mapping)

	regionOrder := part.Regions
	costs := make([]fusion.RegionCost, len(regionOrder))
	stats := make([]RegionStats, len(regionOrder))
	var totalFLOPs, matrixFLOPs int64

	for ri, r := range regionOrder {
		io := part.IO(r)
		// Matrix ops stream through the systolic arrays while the VPUs
		// post-process elementwise results in the same region, so those
		// phases overlap: compute = max(matrix, elementwise) + serial,
		// where full reductions (softmax, layernorm, global pooling)
		// cannot start until their producer finishes and are serialized.
		var matrixSec, vectorSec, serialSec float64
		var extraBytes int64
		pinnable := true
		shares := make([]OpShare, 0, len(r.Ops))

		for _, op := range r.Ops {
			var opSec float64
			var opExtra int64
			if opts.DepthwiseOnVPU && op.Kind == hlo.KDepthwiseConv2D {
				// One MAC per lane-cycle, derated for windowed access.
				const dwVPUEff = 0.20
				macs := float64(hlo.FLOPs(op)) / 2
				opSec = vpu.Time(macs/dwVPUEff, cfg)
				vectorSec += opSec
			} else if p, ok := mapping.FromOp(op); ok {
				m, hit := mapCache[p]
				if !hit {
					m = mapping.Best(p, cfg, opts.Mapping)
					mapCache[p] = m
				}
				if m.Failed {
					res.ScheduleFailed = true
					res.FailReason = fmt.Sprintf("op %q: %s", op.Name, m.Reason)
					return res
				}
				opSec = m.Cycles / clock
				opExtra = mapping.TrafficFloor(p, capBytes) -
					(p.ActivationBytes() + p.StationaryBytes() + p.OutputBytes())
				if !p.WeightsStationary {
					pinnable = false
				}
				matrixSec += opSec
				if op.Kind == hlo.KLSTMCell {
					gates := vpu.Time(vpu.LSTMGateOps(op), cfg)
					vectorSec += gates
					opSec += gates
				}
			} else {
				softmaxFits := true
				if op.Kind == hlo.KSoftmax {
					// A standalone softmax kernel round-trips its whole
					// tensor per pass unless the tensor itself stays on
					// chip between passes.
					softmaxFits = op.Output.Bytes()*2 <= capBytes
				}
				c := vpu.OpCost(op, alg, softmaxFits)
				opSec = vpu.Time(c.VectorOps, cfg)
				opExtra = c.ExtraDRAMBytes
				if isSerialVec(op.Kind) {
					serialSec += opSec
				} else {
					vectorSec += opSec
				}
			}
			extraBytes += opExtra
			shares = append(shares, OpShare{Op: op, IntrinsicSec: opSec + float64(opExtra)/perCoreBW})
		}
		if opts.Training {
			var trainBytes int64
			matrixSec, vectorSec, serialSec, trainBytes = trainingAdjust(matrixSec, vectorSec, serialSec, io, extraBytes)
			// Rebuild the IO view the fusion costs below will see.
			extraBytes = trainBytes - io.InputBytes - io.OutputBytes - io.WeightBytes
		}
		computeSec := maxf(matrixSec, vectorSec) + serialSec
		// Attribute overlapped elementwise time at its residual share so
		// per-op reports match what the timeline charges.
		if matrixSec > 0 && vectorSec > 0 {
			factor := 0.0
			if vectorSec > matrixSec {
				factor = (vectorSec - matrixSec) / vectorSec
			}
			for si := range shares {
				op := shares[si].Op
				if !op.Kind.IsMatrix() && !isSerialVec(op.Kind) {
					shares[si].IntrinsicSec *= factor
				}
			}
		}
		if io.WeightBytes == 0 {
			pinnable = false
		}

		dramPre := io.InputBytes + io.OutputBytes + io.WeightBytes + extraBytes
		tMax := maxf(computeSec, float64(dramPre)/perCoreBW)
		// With every boundary tensor on chip the activation re-read
		// extras disappear too; the floor is pure compute.
		tMin := computeSec

		edgeProducer, edgeBytes, edgeSole := primaryEdge(part, r)
		if opts.Training {
			// Intermediates must persist for the backward pass: activation
			// edges cannot be kept on chip.
			edgeProducer, edgeBytes, edgeSole = -1, 0, false
		}
		// Inter-op blocking: adjacent regions stream the edge tensor one
		// batch sample at a time, so GM residency is the per-sample slice.
		resident := edgeBytes
		if nb := g.NativeBatch(); nb > 1 && edgeBytes > 0 && !opts.WholeTensorFusion {
			resident = edgeBytes / nb
		}
		costs[ri] = fusion.RegionCost{
			TMin: tMin, TMax: tMax,
			TWeight: float64(io.WeightBytes) / perCoreBW,
			DWeight: io.WeightBytes, PinnableWeights: pinnable,
			EdgeProducer:      edgeProducer,
			EdgeBytes:         edgeBytes,
			EdgeResidentBytes: resident,
			// The consumer-side read saving carries the mapper/softmax
			// extras (they are re-reads of the same activations).
			TEdgeRead: float64(edgeBytes+extraBytes) / perCoreBW,
		}
		if edgeSole {
			// The producer's DRAM write is saved too when this region is
			// the tensor's only external consumer.
			costs[ri].TEdgeWrite = float64(edgeBytes) / perCoreBW
		}
		stats[ri] = RegionStats{
			Region: r, ComputeSec: computeSec, Shares: shares,
			ExtraBytes:   extraBytes,
			DRAMBytesPre: dramPre, SecPre: tMax, FLOPs: io.FLOPs,
		}
		totalFLOPs += io.FLOPs
		matrixFLOPs += io.MatrixFLOPs
	}

	sol := fusion.Optimize(costs, cfg.GlobalBytes(), opts.Fusion)
	res.Fusion = sol

	// Post-fusion DRAM traffic per region.
	for ri := range stats {
		b := stats[ri].DRAMBytesPre
		if sol.PinWeight[ri] {
			b -= costs[ri].DWeight
		}
		if sol.EdgeOnChip[ri] {
			b -= costs[ri].EdgeBytes + stats[ri].ExtraBytes
			if costs[ri].TEdgeWrite > 0 {
				p := costs[ri].EdgeProducer
				stats[p].DRAMBytesPost -= costs[ri].EdgeBytes
			}
		}
		stats[ri].DRAMBytesPost += b
	}
	var latency, preLatency, computeTotal float64
	var bytesPre, bytesPost int64
	for ri := range stats {
		if stats[ri].DRAMBytesPost < 0 {
			stats[ri].DRAMBytesPost = 0
		}
		post := sol.Times[ri]
		stats[ri].SecPost = post
		latency += post
		preLatency += stats[ri].SecPre
		computeTotal += stats[ri].ComputeSec
		bytesPre += stats[ri].DRAMBytesPre
		bytesPost += stats[ri].DRAMBytesPost
	}
	res.Regions = stats
	res.LatencySec = latency
	if latency > 0 {
		res.QPS = float64(cfg.Cores) * float64(g.NativeBatch()) / latency
		// Fraction of peak FLOPS, measured against the systolic arrays
		// (the paper's metric): vector-unit work is excluded so the ratio
		// is bounded by 1 on any datapath.
		res.Utilization = float64(matrixFLOPs) / (latency * cfg.PeakFLOPs() / float64(cfg.Cores))
	}
	if bytesPre > 0 {
		res.OpIntensityPre = float64(totalFLOPs) / float64(bytesPre)
	}
	if bytesPost > 0 {
		res.OpIntensityPost = float64(totalFLOPs) / float64(bytesPost)
	}
	if preLatency > 0 {
		res.MemStallPre = (preLatency - computeTotal) / preLatency
	}
	if latency > 0 {
		res.MemStallPost = (latency - computeTotal) / latency
	}
	if stall := preLatency - computeTotal; stall > 0 {
		res.FusionEfficiency = (preLatency - latency) / stall
	}

	pm := opts.PowerModel
	if pm == nil {
		pm = power.Default()
	}
	eval := pm.Evaluate(cfg)
	res.TDPWatts = eval.TotalPower()
	res.AreaMM2 = eval.TotalArea()
	if res.TDPWatts > 0 {
		res.PerfPerTDP = res.QPS / res.TDPWatts
	}
	return res
}

// primaryEdge finds region r's largest external activation input: the
// producing region, the tensor's bytes, and whether r is that tensor's
// only external consumer (so the producer's DRAM write is avoidable).
func primaryEdge(p *hlo.Partition, r *hlo.Region) (producer int, bytes int64, sole bool) {
	producer = -1
	var bestOp *hlo.Op
	for _, op := range r.Ops {
		for _, in := range op.Inputs {
			pr := p.RegionOf(in.ID)
			if pr >= 0 && pr != r.ID && in.Output.Bytes() > bytes {
				producer, bytes, bestOp = pr, in.Output.Bytes(), in
			}
		}
	}
	if bestOp == nil {
		return -1, 0, false
	}
	sole = true
	for _, cid := range p.Consumers()[bestOp.ID] {
		cr := p.RegionOf(cid)
		if cr != producer && cr != r.ID {
			sole = false
			break
		}
	}
	return producer, bytes, sole
}

// isSerialVec reports whether the op must wait for its full input before
// producing output (softmax needs the row max, layernorm the moments), so
// it cannot overlap with its producer's systolic streaming. Accumulating
// reductions (pooling, sums) stream with their producer and stay in the
// overlappable bucket.
func isSerialVec(k hlo.Kind) bool {
	return k == hlo.KSoftmax || k == hlo.KLayerNorm
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
