// Package sim is the architectural simulator: it maps an HLO graph onto a
// datapath configuration and reports execution time, throughput,
// utilization, operational intensity, memory stalls, and Perf/TDP.
//
// Per §6.1, the pipeline per fusion region is: tensor-padding pre-pass →
// schedule mapping (internal/mapping, the Timeloop equivalent) for matrix
// ops and VPU cost models for everything else → FAST fusion ILP over the
// per-region statistics → final roofline-with-overlap timing. Designs
// with any unmappable op are invalid (ScheduleFailures = 0 constraint).
package sim

import (
	"fmt"

	"fast/internal/arch"
	"fast/internal/fusion"
	"fast/internal/hlo"
	"fast/internal/mapping"
	"fast/internal/power"
	"fast/internal/vpu"
)

// Options configures a simulation.
type Options struct {
	// TwoPassSoftmax enables the §5.6 algorithm (searched as a FAST
	// hyperparameter). AutoSoftmax lets the simulator pick the faster
	// variant per graph.
	TwoPassSoftmax bool
	AutoSoftmax    bool
	// Fusion configures the FAST fusion pass (Disable for ablations).
	Fusion fusion.Options
	// Mapping configures the schedule mapper.
	Mapping mapping.Options
	// PartitionNone disables XLA fusion regions (every op its own
	// region) for ablation studies.
	PartitionNone bool
	// Training enables the training-step model (see training.go): 3x
	// matrix work, 2x vector work, activations preserved to DRAM for the
	// backward pass (no activation-edge fusion), gradient traffic added.
	Training bool
	// WholeTensorFusion reproduces the paper's conservative Fig. 8
	// assumption that entire tensors occupy Global Memory while resident
	// (§5.5). Default false: the scheduler applies inter-op blocking, so
	// an edge's residency is its per-sample slice.
	WholeTensorFusion bool
	// DepthwiseOnVPU models the production XLA-TPU lowering of depthwise
	// convolutions to the vector unit instead of the systolic array (the
	// baseline behaviour §3.2 describes as mapping poorly; FAST's
	// schedule search replaces it with the 1-D systolic mapping). The
	// 0.20 efficiency derating reproduces the effective ~1.1% of chip
	// peak that Table 2's FLOP/runtime shares imply for TPU-v3.
	DepthwiseOnVPU bool
	// PowerModel overrides the default power/area model.
	PowerModel *power.Model
}

// OpShare records one op's intrinsic (pre-overlap) cost inside its
// region, used to attribute region time to ops for per-op reports.
type OpShare struct {
	Op *hlo.Op
	// IntrinsicSec is the op's standalone compute time plus its share of
	// algorithm-mandated DRAM time.
	IntrinsicSec float64
}

// RegionStats carries per-region simulation results.
type RegionStats struct {
	Region     *hlo.Region
	ComputeSec float64
	Shares     []OpShare
	// ExtraBytes is mapper re-read + softmax-pass traffic beyond the
	// boundary tensors.
	ExtraBytes int64
	// DRAMBytesPre is the region's DRAM traffic before FAST fusion
	// (boundary tensors + weights + mapper re-read floor + softmax
	// passes).
	DRAMBytesPre int64
	// DRAMBytesPost is the traffic after fusion placements.
	DRAMBytesPost int64
	// KVBytes is the persistent KV-cache traffic the region reads per
	// decode step (zero for encoder workloads). Included in
	// DRAMBytesPre; removed from DRAMBytesPost when the fusion solution
	// holds the cache slab in Global Memory (Fusion.KVOnChip).
	KVBytes int64
	// SecPre/SecPost are the region times before/after fusion.
	SecPre, SecPost float64
	FLOPs           int64
}

// Result is a full simulation outcome.
type Result struct {
	Graph  *hlo.Graph
	Config *arch.Config

	Regions []RegionStats
	Fusion  fusion.Solution

	// LatencySec is the time for one batch through one core.
	LatencySec float64
	// QPS is aggregate inferences/s across cores.
	QPS float64
	// Utilization is model FLOPs / (latency × per-core peak FLOPs).
	Utilization float64
	// OpIntensityPre/Post are FLOPs per DRAM byte before/after fusion.
	OpIntensityPre, OpIntensityPost float64
	// MemStallPre/Post are the fractions of execution time stalled on
	// DRAM (§6.2.5 "Pre-fusion Mem Stall %").
	MemStallPre, MemStallPost float64
	// FusionEfficiency is the fraction of pre-fusion stall time removed
	// by fusion (Table 5 "Fusion Efficiency").
	FusionEfficiency float64

	// TDPWatts and AreaMM2 come from the analytical power model.
	TDPWatts float64
	AreaMM2  float64
	// PerfPerTDP is QPS per watt.
	PerfPerTDP float64

	// ScheduleFailed marks an invalid design (Eq. 5); FailReason explains.
	ScheduleFailed bool
	FailReason     string

	// SoftmaxAlgorithm records the variant used.
	SoftmaxAlgorithm vpu.SoftmaxAlgorithm
}

// BaselineOptions models the production TPU-v3 software stack the paper
// baselines against: XLA fusion regions but no FAST fusion, and only the
// classic weight-/output-stationary mapping schemes (no 1-D convolution
// column streaming — the schedule improvement FAST's Timeloop search
// discovers, Figure 15's "scheduling" component).
func BaselineOptions() Options {
	return Options{
		Fusion: fusion.Options{Disable: true},
		Mapping: mapping.Options{
			Schemes: []mapping.Scheme{mapping.WeightStationary, mapping.OutputStationary},
		},
		DepthwiseOnVPU: true,
	}
}

// FASTOptions is the full FAST software stack: all mapping schemes,
// fusion with a greedy-incumbent solve (suitable inside search loops),
// and automatic softmax-algorithm selection.
func FASTOptions() Options {
	return Options{
		AutoSoftmax: true,
		Fusion:      fusion.Options{GreedyOnly: true},
	}
}

// Fingerprint returns a deterministic key covering every Options field
// that can change simulation results, for caching compiled Plans by
// (workload, options) pair. The power model is rendered by value, so two
// equal models — including two separate power.Default() pointers — share
// a fingerprint.
func (o Options) Fingerprint() string {
	// Evaluate treats a nil PowerModel as power.Default(), so the key
	// must too: a study that pins the default model explicitly and a
	// caller passing nil share one compiled plan.
	pmv := o.PowerModel
	if pmv == nil {
		pmv = power.Default()
	}
	pm := fmt.Sprintf("%+v", *pmv)
	// Schemes must distinguish nil (all schemes) from a non-nil empty
	// slice (no schemes: every matrix op fails to schedule); %v renders
	// both as "[]".
	schemes := "all"
	if o.Mapping.Schemes != nil {
		schemes = fmt.Sprintf("%v", o.Mapping.Schemes)
	}
	return fmt.Sprintf("sm2p=%t auto=%t fus=%+v pad=%t schemes=%s pnone=%t train=%t wtf=%t dwvpu=%t pm=%s",
		o.TwoPassSoftmax, o.AutoSoftmax, o.Fusion, o.Mapping.DisablePadding, schemes,
		o.PartitionNone, o.Training, o.WholeTensorFusion, o.DepthwiseOnVPU, pm)
}

// Simulate runs the full pipeline for graph g (built at any batch; it is
// rebatched to cfg.NativeBatch by the caller when desired) on cfg.
//
// It is a thin Compile+Evaluate wrapper (see plan.go): callers that
// evaluate one workload against many candidate designs should Compile
// once and share the Plan.
func Simulate(g *hlo.Graph, cfg *arch.Config, opts Options) (*Result, error) {
	// Check cfg before paying for Compile (and to keep the historical
	// cfg-before-graph error precedence); Evaluate re-validates for
	// direct Plan callers, which costs only a few field checks.
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	plan, err := Compile(g, opts)
	if err != nil {
		return nil, err
	}
	return plan.Evaluate(cfg)
}

// isSerialVec reports whether the op must wait for its full input before
// producing output (softmax needs the row max, layernorm the moments), so
// it cannot overlap with its producer's systolic streaming. Accumulating
// reductions (pooling, sums) stream with their producer and stay in the
// overlappable bucket.
func isSerialVec(k hlo.Kind) bool {
	return k == hlo.KSoftmax || k == hlo.KLayerNorm
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
