package sim

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"fast/internal/arch"
	"fast/internal/hlo"
	"fast/internal/models"
)

// kvModels are the registry decode workloads (the ones the frozen
// pre-split differential skips — see plan_test.go).
func kvModels() []string {
	out := []string{}
	for _, name := range models.Names() {
		if models.UsesKVCache(name) {
			out = append(out, name)
		}
	}
	return out
}

// TestDecodeGoldenResults pins the decode workloads' simulated latency
// and QPS bit-for-bit on the reference designs, the decoder analogue of
// the encoder suite's frozen-reference differential: KV-cache residency
// has no frozen oracle, so these hex pins are the regression surface.
func TestDecodeGoldenResults(t *testing.T) {
	pins := []struct {
		model, design string
		lat, qps      uint64
		held          int
	}{
		{"gpt2-decode-1024", "fast-decode", 0x3f31321e79810ea1, 0x40adc6561b39c682, 2},
		{"gpt2-decode-1024", "fast-large", 0x3f414eca255f5436, 0x409d950396b03a0f, 2},
		{"gpt2-decode-1024", "tpu-v3", 0x3f4d4354491e8abf, 0x40a17f1a418c575f, 0},
		{"gpt2-local-decode-1024", "fast-decode", 0x3f2a021392523f76, 0x40b3afa89791b459, 0},
		{"gpt2-local-decode-1024", "fast-large", 0x3f3e7af3dca08130, 0x40a0cc38f376724f, 2},
		{"gpt2-local-decode-1024", "tpu-v3", 0x3f496198e93c2fcc, 0x40a42c211353453b, 0},
	}
	for _, pin := range pins {
		g := models.MustBuild(pin.model, 1)
		res, err := Simulate(g, arch.ByName(pin.design), FASTOptions())
		if err != nil {
			t.Fatalf("%s/%s: %v", pin.model, pin.design, err)
		}
		if got := math.Float64bits(res.LatencySec); got != pin.lat {
			t.Errorf("%s/%s: latency bits %#x, want %#x (%.6e vs %.6e)",
				pin.model, pin.design, got, pin.lat, res.LatencySec, math.Float64frombits(pin.lat))
		}
		if got := math.Float64bits(res.QPS); got != pin.qps {
			t.Errorf("%s/%s: QPS bits %#x, want %#x", pin.model, pin.design, got, pin.qps)
		}
		var held int
		for ri := range res.Regions {
			if res.Fusion.KVOnChip[ri] {
				held++
			}
		}
		if held != pin.held {
			t.Errorf("%s/%s: %d cache slabs held, want %d", pin.model, pin.design, held, pin.held)
		}
	}
}

// TestDecodeKVAccounting checks the KV traffic invariants on every
// decode workload × reference design: cache bytes appear in the
// pre-fusion traffic, held slabs vanish from the post-fusion traffic,
// and the graph's total cache footprint is conserved across regions.
func TestDecodeKVAccounting(t *testing.T) {
	for _, model := range kvModels() {
		g := models.MustBuild(model, 1)
		wantKV := hlo.Stats(g).KVBytes
		for _, cfg := range append(planDesigns(), arch.FASTDecode()) {
			res, err := Simulate(g, cfg, FASTOptions())
			if err != nil {
				t.Fatalf("%s/%s: %v", model, cfg.Name, err)
			}
			var totalKV int64
			for ri, rs := range res.Regions {
				totalKV += rs.KVBytes
				if rs.DRAMBytesPre < rs.KVBytes {
					t.Errorf("%s/%s region %d: pre-fusion traffic %d below its KV bytes %d",
						model, cfg.Name, ri, rs.DRAMBytesPre, rs.KVBytes)
				}
				if res.Fusion.KVOnChip[ri] {
					if rs.KVBytes == 0 {
						t.Errorf("%s/%s region %d: held a zero-byte cache", model, cfg.Name, ri)
					}
					if rs.DRAMBytesPost > rs.DRAMBytesPre-rs.KVBytes {
						t.Errorf("%s/%s region %d: held cache still in post-fusion traffic (%d > %d-%d)",
							model, cfg.Name, ri, rs.DRAMBytesPost, rs.DRAMBytesPre, rs.KVBytes)
					}
				}
			}
			if totalKV != wantKV {
				t.Errorf("%s/%s: regions carry %d KV bytes, graph has %d", model, cfg.Name, totalKV, wantKV)
			}
		}
	}
}

// TestDecodeKVCapacityGate: a design whose Global Memory cannot fit a
// single cache slab must never hold one (the kvEligibleFor stage), and
// disabling fusion holds nothing anywhere.
func TestDecodeKVCapacityGate(t *testing.T) {
	g := models.MustBuild("gpt2-decode-1024", 1)
	tiny := arch.FASTDecode().Clone("fast-decode-tinygm")
	tiny.GlobalMiB = 1 // below the 1.5 MiB per-layer slab
	res, err := Simulate(g, tiny, FASTOptions())
	if err != nil {
		t.Fatal(err)
	}
	for ri := range res.Regions {
		if res.Fusion.KVOnChip[ri] {
			t.Fatalf("region %d holds a %d-byte slab in a 1 MiB GM", ri, res.Regions[ri].KVBytes)
		}
	}
	opts := FASTOptions()
	opts.Fusion.Disable = true
	off, err := Simulate(g, arch.FASTDecode(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for ri := range off.Regions {
		if off.Fusion.KVOnChip[ri] {
			t.Fatalf("region %d holds its cache with fusion disabled", ri)
		}
	}
	if off.LatencySec < res.LatencySec {
		t.Errorf("fusion-off latency %.3e beat the tiny-GM fused run %.3e", off.LatencySec, res.LatencySec)
	}
}

// TestDecodeEvaluateBatchMatchesEvaluate is the decode counterpart of
// the frozen-suite batch differential: EvaluateBatch over the reference
// designs plus a seeded random sweep must be bit-identical to per-design
// Evaluate, in input order, on one shared plan.
func TestDecodeEvaluateBatchMatchesEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(1009))
	for _, model := range kvModels() {
		g := models.MustBuild(model, 1)
		plan, err := Compile(g, FASTOptions())
		if err != nil {
			t.Fatalf("%s: Compile: %v", model, err)
		}
		designs := append(planDesigns(), arch.FASTDecode())
		designs = append(designs, randomSweep(rng, 20)...)
		batch, err := plan.EvaluateBatch(designs)
		if err != nil {
			t.Fatalf("%s: EvaluateBatch: %v", model, err)
		}
		for i, cfg := range designs {
			serial, err := plan.Evaluate(cfg)
			if err != nil {
				t.Fatalf("%s/%s: Evaluate: %v", model, cfg.Name, err)
			}
			if !reflect.DeepEqual(serial, batch[i]) {
				t.Errorf("%s design %d (%s): batch result diverged from serial Evaluate", model, i, cfg.Name)
			}
		}
	}
}
