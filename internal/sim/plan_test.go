package sim

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"fast/internal/arch"
	"fast/internal/mapping"
	"fast/internal/models"
	"fast/internal/power"
)

// planDesigns are the reference designs the differential suite sweeps.
func planDesigns() []*arch.Config {
	return []*arch.Config{
		arch.TPUv3(), arch.DieShrunkTPUv3(), arch.FASTLarge(), arch.FASTSmall(),
	}
}

// planOptionSets are the software stacks the differential suite sweeps.
func planOptionSets() map[string]Options {
	training := FASTOptions()
	training.Training = true
	return map[string]Options{
		"baseline": BaselineOptions(),
		"fast":     FASTOptions(),
		"training": training,
	}
}

// sameResult asserts bit-identical Results (float fields compared
// exactly; DeepEqual never tolerates ULP drift).
func sameResult(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		t.Errorf("%s: Compile+Evaluate diverged from Simulate", label)
		if want.LatencySec != got.LatencySec || want.QPS != got.QPS {
			t.Errorf("%s: latency %x vs %x, qps %x vs %x",
				label, want.LatencySec, got.LatencySec, want.QPS, got.QPS)
		}
	}
}

// TestCompileEvaluateMatchesSimulate is the differential property test
// the plan split is held to: for every registry model × reference design
// × option set, Compile(g, opts).Evaluate(d) must produce a bit-identical
// Result to the frozen pre-split simulator (reference_test.go) —
// including per-region statistics, the fusion solution, and failure
// annotations. Simulate is itself Compile+Evaluate now, so the oracle is
// the frozen copy, not Simulate: a shared arithmetic regression in the
// hot path cannot cancel out of the comparison. A second Evaluate of the
// same plan must also match, proving Evaluate leaves no state behind.
func TestCompileEvaluateMatchesSimulate(t *testing.T) {
	if testing.Short() {
		t.Skip("full differential sweep is not short")
	}
	for _, model := range models.Names() {
		if models.UsesKVCache(model) {
			// The frozen pre-split simulator predates KV-cache residency;
			// decode workloads are pinned by their own golden results and
			// the decode-vs-prefill differential in the models package.
			continue
		}
		for _, cfg := range planDesigns() {
			g := models.MustBuild(model, cfg.NativeBatch)
			for optName, opts := range planOptionSets() {
				label := fmt.Sprintf("%s/%s/%s", model, cfg.Name, optName)
				want, err := referenceSimulate(g, cfg, opts)
				if err != nil {
					t.Fatalf("%s: referenceSimulate: %v", label, err)
				}
				plan, err := Compile(g, opts)
				if err != nil {
					t.Fatalf("%s: Compile: %v", label, err)
				}
				got, err := plan.Evaluate(cfg)
				if err != nil {
					t.Fatalf("%s: Evaluate: %v", label, err)
				}
				sameResult(t, label, want, got)
				again, err := plan.Evaluate(cfg)
				if err != nil {
					t.Fatalf("%s: second Evaluate: %v", label, err)
				}
				sameResult(t, label+" (re-evaluate)", want, again)
			}
		}
	}
}

// TestPlanSharedAcrossDesigns evaluates one compiled plan against every
// reference design and checks each against the frozen pre-split
// simulator — the pattern the search loop relies on (one plan, many
// candidates).
func TestPlanSharedAcrossDesigns(t *testing.T) {
	g := models.MustBuild("efficientnet-b0", 128)
	plan, err := Compile(g, FASTOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range planDesigns() {
		got, err := plan.Evaluate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		want, err := referenceSimulate(g, cfg, FASTOptions())
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, cfg.Name, want, got)
	}
}

// TestPlanConcurrentEvaluate hammers one shared Plan from many
// goroutines across several designs; run under -race it proves Evaluate
// never mutates plan state, and every concurrent result must still be
// bit-identical to its serial reference.
func TestPlanConcurrentEvaluate(t *testing.T) {
	g := models.MustBuild("efficientnet-b0", 128)
	opts := FASTOptions()
	plan, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	designs := planDesigns()
	refs := make([]*Result, len(designs))
	for i, cfg := range designs {
		if refs[i], err = plan.Evaluate(cfg); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
	}

	const goroutines = 8
	const rounds = 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds*len(designs))
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				for i, cfg := range designs {
					r, err := plan.Evaluate(cfg)
					if err != nil {
						errs <- fmt.Errorf("worker %d %s: %v", w, cfg.Name, err)
						return
					}
					if !reflect.DeepEqual(refs[i], r) {
						errs <- fmt.Errorf("worker %d %s: concurrent result diverged", w, cfg.Name)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestOptionsFingerprint checks the plan-cache key discriminates every
// result-changing option and identifies equal option sets (including
// separately allocated but equal power models).
func TestOptionsFingerprint(t *testing.T) {
	if got, want := FASTOptions().Fingerprint(), FASTOptions().Fingerprint(); got != want {
		t.Errorf("equal options disagree: %q vs %q", got, want)
	}
	base := FASTOptions()
	variants := map[string]func(*Options){
		"two-pass":   func(o *Options) { o.TwoPassSoftmax = true },
		"auto-off":   func(o *Options) { o.AutoSoftmax = false },
		"fusion-off": func(o *Options) { o.Fusion.Disable = true },
		"window":     func(o *Options) { o.Fusion.Window = 2 },
		"no-padding": func(o *Options) { o.Mapping.DisablePadding = true },
		// nil means "all schemes", a non-nil empty slice means "none":
		// the fingerprint must keep them apart.
		"no-schemes":   func(o *Options) { o.Mapping.Schemes = []mapping.Scheme{} },
		"ws-only":      func(o *Options) { o.Mapping.Schemes = []mapping.Scheme{mapping.WeightStationary} },
		"partition":    func(o *Options) { o.PartitionNone = true },
		"training":     func(o *Options) { o.Training = true },
		"whole-tensor": func(o *Options) { o.WholeTensorFusion = true },
		"dw-vpu":       func(o *Options) { o.DepthwiseOnVPU = true },
	}
	seen := map[string]string{base.Fingerprint(): "base"}
	for name, mutate := range variants {
		o := base
		mutate(&o)
		fp := o.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("variant %q collides with %q: %s", name, prev, fp)
		}
		seen[fp] = name
	}
	// Two equal-by-value power models must share a fingerprint even
	// though the pointers differ.
	a, b := BaselineOptions(), BaselineOptions()
	a.PowerModel, b.PowerModel = power.Default(), power.Default()
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("equal power models produced different fingerprints")
	}
	// nil means "use power.Default()" at Evaluate time, so nil and an
	// explicit default model must share one plan-cache key.
	b.PowerModel = nil
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("nil power model must fingerprint like power.Default()")
	}
}
