package sim

// referenceSimulate is a frozen, verbatim copy of the monolithic
// pre-split simulator (the simulate() that Simulate wrapped before the
// Compile/Evaluate refactor). It exists only as the independent oracle
// for the differential property test: Simulate is now itself implemented
// as Compile+Evaluate, so comparing the two against each other alone
// would let a shared arithmetic regression slip through. Any change to
// the evaluate hot path must still reproduce THIS code bit for bit; do
// not "improve" it.

import (
	"fmt"

	"fast/internal/arch"
	"fast/internal/fusion"
	"fast/internal/hlo"
	"fast/internal/mapping"
	"fast/internal/power"
	"fast/internal/vpu"
)

func referenceSimulate(g *hlo.Graph, cfg *arch.Config, opts Options) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if opts.AutoSoftmax {
		a := referenceSimulateAlg(g, cfg, opts, vpu.ThreePass)
		b := referenceSimulateAlg(g, cfg, opts, vpu.TwoPass)
		if !b.ScheduleFailed && (a.ScheduleFailed || b.LatencySec < a.LatencySec) {
			return b, nil
		}
		return a, nil
	}
	alg := vpu.ThreePass
	if opts.TwoPassSoftmax {
		alg = vpu.TwoPass
	}
	return referenceSimulateAlg(g, cfg, opts, alg), nil
}

func referenceSimulateAlg(g *hlo.Graph, cfg *arch.Config, opts Options, alg vpu.SoftmaxAlgorithm) *Result {
	res := &Result{Graph: g, Config: cfg, SoftmaxAlgorithm: alg}

	var part *hlo.Partition
	if opts.PartitionNone {
		part = hlo.PartitionNone(g)
	} else {
		part = hlo.PartitionXLA(g)
	}

	perCoreBW := cfg.PeakBandwidthGBs() * 1e9 / float64(cfg.Cores)
	clock := cfg.ClockGHz * 1e9

	capBytes := cfg.GlobalBytes()
	if capBytes == 0 {
		capBytes = cfg.NumPEs() * cfg.L2BytesPerPE()
	}
	if capBytes == 0 {
		capBytes = cfg.NumPEs() * cfg.L1BytesPerPE()
	}

	mapCache := make(map[mapping.Problem]mapping.Mapping)

	regionOrder := part.Regions
	costs := make([]fusion.RegionCost, len(regionOrder))
	stats := make([]RegionStats, len(regionOrder))
	var totalFLOPs, matrixFLOPs int64

	for ri, r := range regionOrder {
		io := part.IO(r)
		var matrixSec, vectorSec, serialSec float64
		var extraBytes int64
		pinnable := true
		shares := make([]OpShare, 0, len(r.Ops))

		for _, op := range r.Ops {
			var opSec float64
			var opExtra int64
			if opts.DepthwiseOnVPU && op.Kind == hlo.KDepthwiseConv2D {
				macs := float64(hlo.FLOPs(op)) / 2
				opSec = vpu.Time(macs/dwVPUEff, cfg)
				vectorSec += opSec
			} else if p, ok := mapping.FromOp(op); ok {
				m, hit := mapCache[p]
				if !hit {
					m = mapping.Best(p, cfg, opts.Mapping)
					mapCache[p] = m
				}
				if m.Failed {
					res.ScheduleFailed = true
					res.FailReason = fmt.Sprintf("op %q: %s", op.Name, m.Reason)
					return res
				}
				opSec = m.Cycles / clock
				opExtra = mapping.TrafficFloor(p, capBytes) -
					(p.ActivationBytes() + p.StationaryBytes() + p.OutputBytes())
				if !p.WeightsStationary {
					pinnable = false
				}
				matrixSec += opSec
				if op.Kind == hlo.KLSTMCell {
					gates := vpu.Time(vpu.LSTMGateOps(op), cfg)
					vectorSec += gates
					opSec += gates
				}
			} else {
				softmaxFits := true
				if op.Kind == hlo.KSoftmax {
					softmaxFits = op.Output.Bytes()*2 <= capBytes
				}
				c := vpu.OpCost(op, alg, softmaxFits)
				opSec = vpu.Time(c.VectorOps, cfg)
				opExtra = c.ExtraDRAMBytes
				if isSerialVec(op.Kind) {
					serialSec += opSec
				} else {
					vectorSec += opSec
				}
			}
			extraBytes += opExtra
			shares = append(shares, OpShare{Op: op, IntrinsicSec: opSec + float64(opExtra)/perCoreBW})
		}
		if opts.Training {
			var trainBytes int64
			matrixSec, vectorSec, serialSec, trainBytes = trainingAdjust(matrixSec, vectorSec, serialSec, io, extraBytes)
			extraBytes = trainBytes - io.InputBytes - io.OutputBytes - io.WeightBytes
		}
		computeSec := maxf(matrixSec, vectorSec) + serialSec
		if matrixSec > 0 && vectorSec > 0 {
			factor := 0.0
			if vectorSec > matrixSec {
				factor = (vectorSec - matrixSec) / vectorSec
			}
			for si := range shares {
				op := shares[si].Op
				if !op.Kind.IsMatrix() && !isSerialVec(op.Kind) {
					shares[si].IntrinsicSec *= factor
				}
			}
		}
		if io.WeightBytes == 0 {
			pinnable = false
		}

		dramPre := io.InputBytes + io.OutputBytes + io.WeightBytes + extraBytes
		tMax := maxf(computeSec, float64(dramPre)/perCoreBW)
		tMin := computeSec

		edgeProducer, edgeBytes, edgeSole := part.PrimaryEdge(r)
		if opts.Training {
			edgeProducer, edgeBytes, edgeSole = -1, 0, false
		}
		resident := edgeBytes
		if nb := g.NativeBatch(); nb > 1 && edgeBytes > 0 && !opts.WholeTensorFusion {
			resident = edgeBytes / nb
		}
		costs[ri] = fusion.RegionCost{
			TMin: tMin, TMax: tMax,
			TWeight: float64(io.WeightBytes) / perCoreBW,
			DWeight: io.WeightBytes, PinnableWeights: pinnable,
			EdgeProducer:      edgeProducer,
			EdgeBytes:         edgeBytes,
			EdgeResidentBytes: resident,
			TEdgeRead:         float64(edgeBytes+extraBytes) / perCoreBW,
		}
		if edgeSole {
			costs[ri].TEdgeWrite = float64(edgeBytes) / perCoreBW
		}
		stats[ri] = RegionStats{
			Region: r, ComputeSec: computeSec, Shares: shares,
			ExtraBytes:   extraBytes,
			DRAMBytesPre: dramPre, SecPre: tMax, FLOPs: io.FLOPs,
		}
		totalFLOPs += io.FLOPs
		matrixFLOPs += io.MatrixFLOPs
	}

	sol := fusion.Optimize(costs, cfg.GlobalBytes(), opts.Fusion)
	res.Fusion = sol

	for ri := range stats {
		b := stats[ri].DRAMBytesPre
		if sol.PinWeight[ri] {
			b -= costs[ri].DWeight
		}
		if sol.EdgeOnChip[ri] {
			b -= costs[ri].EdgeBytes + stats[ri].ExtraBytes
			if costs[ri].TEdgeWrite > 0 {
				p := costs[ri].EdgeProducer
				stats[p].DRAMBytesPost -= costs[ri].EdgeBytes
			}
		}
		stats[ri].DRAMBytesPost += b
	}
	var latency, preLatency, computeTotal float64
	var bytesPre, bytesPost int64
	for ri := range stats {
		if stats[ri].DRAMBytesPost < 0 {
			stats[ri].DRAMBytesPost = 0
		}
		post := sol.Times[ri]
		stats[ri].SecPost = post
		latency += post
		preLatency += stats[ri].SecPre
		computeTotal += stats[ri].ComputeSec
		bytesPre += stats[ri].DRAMBytesPre
		bytesPost += stats[ri].DRAMBytesPost
	}
	res.Regions = stats
	res.LatencySec = latency
	if latency > 0 {
		res.QPS = float64(cfg.Cores) * float64(g.NativeBatch()) / latency
		res.Utilization = float64(matrixFLOPs) / (latency * cfg.PeakFLOPs() / float64(cfg.Cores))
	}
	if bytesPre > 0 {
		res.OpIntensityPre = float64(totalFLOPs) / float64(bytesPre)
	}
	if bytesPost > 0 {
		res.OpIntensityPost = float64(totalFLOPs) / float64(bytesPost)
	}
	if preLatency > 0 {
		res.MemStallPre = (preLatency - computeTotal) / preLatency
	}
	if latency > 0 {
		res.MemStallPost = (latency - computeTotal) / latency
	}
	if stall := preLatency - computeTotal; stall > 0 {
		res.FusionEfficiency = (preLatency - latency) / stall
	}

	pm := opts.PowerModel
	if pm == nil {
		pm = power.Default()
	}
	eval := pm.Evaluate(cfg)
	res.TDPWatts = eval.TotalPower()
	res.AreaMM2 = eval.TotalArea()
	if res.TDPWatts > 0 {
		res.PerfPerTDP = res.QPS / res.TDPWatts
	}
	return res
}
