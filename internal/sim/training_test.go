package sim

import (
	"testing"

	"fast/internal/arch"
	"fast/internal/models"
)

func TestTrainingSlowerThanInference(t *testing.T) {
	cfg := arch.FASTLarge()
	g := models.MustBuild("efficientnet-b0", cfg.NativeBatch)
	inf, err := Simulate(g, cfg, FASTOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := SimulateTraining(g, cfg, FASTOptions())
	if err != nil {
		t.Fatal(err)
	}
	if tr.ScheduleFailed || inf.ScheduleFailed {
		t.Fatal("schedule failure")
	}
	// A training step does ≥3x the matrix work plus extra traffic; it
	// must cost at least ~2.5x the inference latency.
	if tr.LatencySec < inf.LatencySec*2.5 {
		t.Errorf("training step %.3fms vs inference %.3fms: ratio %.2f, want ≥2.5",
			tr.LatencySec*1e3, inf.LatencySec*1e3, tr.LatencySec/inf.LatencySec)
	}
}

func TestTrainingDisablesActivationFusion(t *testing.T) {
	// §4.1: intermediates must be preserved for the backward pass, so no
	// activation edge may stay on chip; weight pinning is still allowed.
	cfg := arch.FASTLarge()
	g := models.MustBuild("efficientnet-b0", cfg.NativeBatch)
	tr, err := SimulateTraining(g, cfg, FASTOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range tr.Fusion.EdgeOnChip {
		if e {
			t.Fatalf("training run kept activation edge %d on chip", i)
		}
	}
	pins := 0
	for _, p := range tr.Fusion.PinWeight {
		if p {
			pins++
		}
	}
	if pins == 0 {
		t.Error("weight pinning should remain legal in training mode")
	}
}

func TestTrainingFusionBenefitSmaller(t *testing.T) {
	// The fusion upside shrinks in training (only weights move on-chip),
	// matching why the paper's fusion work targets inference.
	cfg := arch.FASTLarge()
	g := models.MustBuild("efficientnet-b7", cfg.NativeBatch)
	inf, err := Simulate(g, cfg, FASTOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := SimulateTraining(g, cfg, FASTOptions())
	if err != nil {
		t.Fatal(err)
	}
	if tr.FusionEfficiency >= inf.FusionEfficiency {
		t.Errorf("training fusion efficiency %.2f should be below inference %.2f",
			tr.FusionEfficiency, inf.FusionEfficiency)
	}
}

func TestTrainingMoreMemoryBound(t *testing.T) {
	// Activation round trips make training more bandwidth-hungry: on the
	// same design, post-fusion memory stall must not decrease.
	cfg := arch.FASTLarge()
	g := models.MustBuild("efficientnet-b0", cfg.NativeBatch)
	inf, _ := Simulate(g, cfg, FASTOptions())
	tr, _ := SimulateTraining(g, cfg, FASTOptions())
	if tr.MemStallPost < inf.MemStallPost-1e-9 {
		t.Errorf("training stall %.3f below inference %.3f", tr.MemStallPost, inf.MemStallPost)
	}
}
