package arch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNamedDesignsValidate(t *testing.T) {
	for _, name := range DesignNames() {
		c := ByName(name)
		if c == nil {
			t.Fatalf("ByName(%q) = nil", name)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if ByName("nope") != nil {
		t.Error("unknown design should be nil")
	}
}

func TestTPUv3Peaks(t *testing.T) {
	c := TPUv3()
	// §4.1: 123 TFLOP/s bf16 and 900 GB/s.
	if got := c.PeakFLOPs() / 1e12; math.Abs(got-123) > 1 {
		t.Errorf("TPU-v3 peak = %.1f TFLOP/s, want ≈123", got)
	}
	if got := c.PeakBandwidthGBs(); got != 900 {
		t.Errorf("TPU-v3 bandwidth = %.0f GB/s, want 900", got)
	}
	// §4.1: ridgepoint 137 FLOPs/B.
	if got := c.Ridgepoint(); math.Abs(got-137) > 2 {
		t.Errorf("TPU-v3 ridgepoint = %.1f, want ≈137", got)
	}
	// Table 5: per-core vector width 1024 (512 per PE × 2 PEs).
	if c.VPUWidth() != 512 {
		t.Errorf("TPU-v3 VPU width/PE = %d, want 512", c.VPUWidth())
	}
}

func TestFASTDesignPeaks(t *testing.T) {
	// Table 5: FAST-Large 131 TFLOP/s, 448 GB/s, ridgepoint 292;
	// FAST-Small 32 TFLOP/s, 448 GB/s, ridgepoint 73.
	fl := FASTLarge()
	if got := fl.PeakFLOPs() / 1e12; math.Abs(got-131) > 1 {
		t.Errorf("FAST-Large peak = %.1f TFLOP/s, want ≈131", got)
	}
	if got := fl.PeakBandwidthGBs(); got != 448 {
		t.Errorf("FAST-Large bandwidth = %.0f, want 448", got)
	}
	if got := fl.Ridgepoint(); math.Abs(got-292) > 3 {
		t.Errorf("FAST-Large ridgepoint = %.1f, want ≈292", got)
	}
	fs := FASTSmall()
	if got := fs.PeakFLOPs() / 1e12; math.Abs(got-32.8) > 1 {
		t.Errorf("FAST-Small peak = %.1f TFLOP/s, want ≈33", got)
	}
	if got := fs.Ridgepoint(); math.Abs(got-73) > 2 {
		t.Errorf("FAST-Small ridgepoint = %.1f, want ≈73", got)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := func(mut func(*Config)) *Config {
		c := FASTLarge()
		mut(c)
		return c
	}
	cases := map[string]*Config{
		"non-pow2 PEs":   bad(func(c *Config) { c.PEsX = 3 }),
		"PEs too big":    bad(func(c *Config) { c.PEsX = 512 }),
		"zero SA":        bad(func(c *Config) { c.SAy = 0 }),
		"vector mult 32": bad(func(c *Config) { c.VectorMult = 32 }),
		"L1 2MiB":        bad(func(c *Config) { c.L1InputKiB = 2048 }),
		"L1 disabled":    bad(func(c *Config) { c.L1Config = Disabled }),
		"bad L2 mult":    bad(func(c *Config) { c.L2Config = Private; c.L2InputMult = 0 }),
		"global 512":     bad(func(c *Config) { c.GlobalMiB = 512 }),
		"channels 16":    bad(func(c *Config) { c.MemChannels = 16 }),
		"batch 3":        bad(func(c *Config) { c.NativeBatch = 3 }),
		"no cores":       bad(func(c *Config) { c.Cores = 0 }),
		"zero clock":     bad(func(c *Config) { c.ClockGHz = 0 }),
	}
	for name, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestSpaceSize(t *testing.T) {
	// §5.3 estimates the datapath space at ~10^13.
	size := Space{}.Size()
	if size < 1e12 || size > 1e14 {
		t.Errorf("space size = %.2e, want ~1e13", size)
	}
}

func TestSpaceDecodeValidates(t *testing.T) {
	// Every decodable point must pass Validate.
	s := Space{}
	r := rand.New(rand.NewSource(1))
	base := FASTLarge()
	for i := 0; i < 2000; i++ {
		c := s.Random(r, base)
		if err := c.Validate(); err != nil {
			t.Fatalf("random point invalid: %v\n%s", err, c)
		}
	}
}

func TestSpaceRoundTrip(t *testing.T) {
	// Property: Decode(Encode(c)) == c for in-domain configs.
	s := Space{}
	r := rand.New(rand.NewSource(2))
	base := FASTLarge()
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		c := s.Random(rr, base)
		idx := s.Encode(c)
		c2 := s.Decode(idx, base)
		return *c == *c2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: r}); err != nil {
		t.Error(err)
	}
}

func TestEncodeClampsOutOfDomain(t *testing.T) {
	c := FASTLarge()
	c.PEsX = 1024 // out of domain
	idx := Space{}.Encode(c)
	if idx[PPEsX] != 8 {
		t.Errorf("clamp: idx = %d, want 8", idx[PPEsX])
	}
	c.GlobalMiB = 0
	if (Space{}).Encode(c)[PGlobal] != 0 {
		t.Error("global 0 must encode to index 0")
	}
}

func TestDecodePanicsOnBadIndex(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var idx [NumParams]int
	idx[PPEsX] = 99
	Space{}.Decode(idx, FASTLarge())
}

func TestOnChipBytes(t *testing.T) {
	fl := FASTLarge()
	// 64 PEs × 24 KiB L1 + 128 MiB GM.
	want := int64(64*24<<10 + 128<<20)
	if got := fl.OnChipBytes(); got != want {
		t.Errorf("on-chip bytes = %d, want %d", got, want)
	}
	// L2 enabled adds capacity.
	c := fl.Clone("l2")
	c.L2Config = Shared
	c.L2InputMult, c.L2WeightMult, c.L2OutputMult = 4, 4, 4
	if c.OnChipBytes() <= fl.OnChipBytes() {
		t.Error("enabling L2 must add on-chip capacity")
	}
}

func TestScalarAndVectorPEDegenerations(t *testing.T) {
	// §5.4: scalar PEs (Eyeriss) = 1×1 arrays; vector PEs (Simba) = X
	// dim 1. Both must be expressible and valid.
	c := FASTLarge().Clone("scalar-pe")
	c.SAx, c.SAy = 1, 1
	c.L1Config = Private
	if err := c.Validate(); err != nil {
		t.Errorf("scalar PE config invalid: %v", err)
	}
	if c.MACsPerPE() != 1 {
		t.Errorf("scalar PE MACs = %d", c.MACsPerPE())
	}
	v := FASTLarge().Clone("vector-pe")
	v.SAx = 1
	v.SAy = 16
	if err := v.Validate(); err != nil {
		t.Errorf("vector PE config invalid: %v", err)
	}
}

func TestBufferConfigString(t *testing.T) {
	if Disabled.String() != "disabled" || Private.String() != "private" || Shared.String() != "shared" {
		t.Error("buffer config names wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FASTLarge()
	b := a.Clone("b")
	b.PEsX = 1
	if a.PEsX == 1 {
		t.Error("Clone shares state")
	}
	if b.Name != "b" {
		t.Error("Clone must rename")
	}
}
