package arch

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	for _, name := range DesignNames() {
		orig := ByName(name)
		data, err := json.Marshal(orig)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := new(Config)
		if err := json.Unmarshal(data, got); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if *got != *orig {
			t.Errorf("%s: round trip mismatch:\n got %+v\nwant %+v", name, got, orig)
		}
	}
}

func TestJSONRoundTripRandom(t *testing.T) {
	s := Space{}
	r := rand.New(rand.NewSource(21))
	for i := 0; i < 200; i++ {
		orig := s.Random(r, FASTLarge())
		data, err := json.Marshal(orig)
		if err != nil {
			t.Fatal(err)
		}
		got := new(Config)
		if err := json.Unmarshal(data, got); err != nil {
			t.Fatalf("unmarshal: %v\n%s", err, data)
		}
		if *got != *orig {
			t.Fatalf("round trip mismatch")
		}
	}
}

func TestJSONFieldNamesMatchTable3(t *testing.T) {
	data, err := json.Marshal(TPUv3())
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		"pes_x_dim", "systolic_array_x", "vector_unit_multiplier",
		"l1_buffer_config", "l2_buffer_config", "l3_global_buffer_size_mib",
		"native_batch_size",
	} {
		if !strings.Contains(string(data), field) {
			t.Errorf("JSON missing Table 3 field %q", field)
		}
	}
}

func TestUnmarshalRejectsInvalid(t *testing.T) {
	cases := map[string]string{
		"bad buffer config": `{"l1_buffer_config":"wide-open","l2_buffer_config":"disabled","memory_technology":"gddr6"}`,
		"bad mem tech":      `{"l1_buffer_config":"shared","l2_buffer_config":"disabled","memory_technology":"ddr3"}`,
		"bad json":          `{`,
		"out-of-domain":     `{"name":"x","pes_x_dim":3,"pes_y_dim":1,"systolic_array_x":32,"systolic_array_y":32,"vector_unit_multiplier":1,"l1_buffer_config":"shared","l1_input_buffer_size_kib":8,"l1_weight_buffer_size_kib":8,"l1_output_buffer_size_kib":8,"l2_buffer_config":"disabled","l3_global_buffer_size_mib":128,"memory_channels":8,"memory_technology":"gddr6","native_batch_size":8,"cores":1,"clock_ghz":1}`,
	}
	for name, data := range cases {
		c := new(Config)
		if err := json.Unmarshal([]byte(data), c); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "design.json")
	orig := FASTLarge()
	if err := orig.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *orig {
		t.Error("file round trip mismatch")
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file must error")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(bad); err == nil {
		t.Error("invalid design must error")
	}
}
