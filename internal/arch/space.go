package arch

import (
	"fmt"
	"math/rand"
)

// Space is the Table 3 datapath search space: 16 hyperparameters, each an
// index into a small ordinal domain. Optimizers manipulate index vectors;
// Decode turns a vector into a Config (inheriting fixed platform
// attributes from a base config).
type Space struct{}

// Parameter indices into the hyperparameter vector.
const (
	PPEsX = iota
	PPEsY
	PSAx
	PSAy
	PVectorMult
	PL1Config
	PL1Input
	PL1Weight
	PL1Output
	PL2Config
	PL2InputMult
	PL2WeightMult
	PL2OutputMult
	PGlobal
	PChannels
	PNativeBatch
	NumParams
)

// ParamNames mirrors Table 3's parameter names, indexed by the P*
// constants.
var ParamNames = [NumParams]string{
	"PEs_x_dim", "PEs_y_dim", "Systolic_array_x", "Systolic_array_y",
	"Vector_unit_multiplier", "L1_buffer_config", "L1_input_buffer_size",
	"L1_weight_buffer_size", "L1_output_buffer_size", "L2_buffer_config",
	"L2_input_buffer_multiplier", "L2_weight_buffer_multiplier",
	"L2_output_buffer_multiplier", "L3_global_buffer_size",
	"GDDR6_channels", "Native_batch_size",
}

// Dims returns the cardinality of each parameter's domain.
func (Space) Dims() [NumParams]int {
	return [NumParams]int{
		9,  // PEs x: 1..256 pow2
		9,  // PEs y
		9,  // SA x
		9,  // SA y
		5,  // vector mult: 1..16 pow2
		2,  // L1 config: private, shared
		11, // L1 input KiB: 1..1024 pow2
		11, // L1 weight KiB
		11, // L1 output KiB
		3,  // L2 config: disabled, private, shared
		8,  // L2 input mult: 1..128 pow2
		8,  // L2 weight mult
		8,  // L2 output mult
		10, // global MiB: 0, 1..256 pow2
		4,  // channels: 1..8 pow2
		9,  // native batch: 1..256 pow2
	}
}

// Size returns the cardinality of the full datapath space (~10^13,
// matching §5.3).
func (s Space) Size() float64 {
	size := 1.0
	for _, d := range s.Dims() {
		size *= float64(d)
	}
	return size
}

// Decode materializes a Config from an index vector, inheriting Name,
// Cores, ClockGHz and Mem from base. It panics on out-of-range indices
// (optimizers must respect Dims).
func (s Space) Decode(idx [NumParams]int, base *Config) *Config {
	dims := s.Dims()
	for i, v := range idx {
		if v < 0 || v >= dims[i] {
			panic(fmt.Sprintf("arch: index %d for %s outside [0,%d)", v, ParamNames[i], dims[i]))
		}
	}
	c := *base
	c.PEsX = 1 << idx[PPEsX]
	c.PEsY = 1 << idx[PPEsY]
	c.SAx = 1 << idx[PSAx]
	c.SAy = 1 << idx[PSAy]
	c.VectorMult = 1 << idx[PVectorMult]
	c.L1Config = BufferConfig(idx[PL1Config] + 1) // 0→Private, 1→Shared
	c.L1InputKiB = 1 << idx[PL1Input]
	c.L1WeightKiB = 1 << idx[PL1Weight]
	c.L1OutputKiB = 1 << idx[PL1Output]
	c.L2Config = BufferConfig(idx[PL2Config]) // 0→Disabled, 1→Private, 2→Shared
	c.L2InputMult = 1 << idx[PL2InputMult]
	c.L2WeightMult = 1 << idx[PL2WeightMult]
	c.L2OutputMult = 1 << idx[PL2OutputMult]
	if idx[PGlobal] == 0 {
		c.GlobalMiB = 0
	} else {
		c.GlobalMiB = 1 << (idx[PGlobal] - 1)
	}
	c.MemChannels = 1 << idx[PChannels]
	c.NativeBatch = 1 << idx[PNativeBatch]
	return &c
}

// Encode converts a Config back into its index vector. Values outside the
// Table 3 domain are clamped to the nearest member, which lets reference
// designs seed the search.
func (s Space) Encode(c *Config) [NumParams]int {
	var idx [NumParams]int
	clampLog := func(v int64, maxIdx int) int {
		if v < 1 {
			return 0
		}
		l := log2(v)
		if l > maxIdx {
			return maxIdx
		}
		return l
	}
	idx[PPEsX] = clampLog(c.PEsX, 8)
	idx[PPEsY] = clampLog(c.PEsY, 8)
	idx[PSAx] = clampLog(c.SAx, 8)
	idx[PSAy] = clampLog(c.SAy, 8)
	idx[PVectorMult] = clampLog(c.VectorMult, 4)
	if c.L1Config == Shared {
		idx[PL1Config] = 1
	}
	idx[PL1Input] = clampLog(c.L1InputKiB, 10)
	idx[PL1Weight] = clampLog(c.L1WeightKiB, 10)
	idx[PL1Output] = clampLog(c.L1OutputKiB, 10)
	idx[PL2Config] = int(c.L2Config)
	idx[PL2InputMult] = clampLog(c.L2InputMult, 7)
	idx[PL2WeightMult] = clampLog(c.L2WeightMult, 7)
	idx[PL2OutputMult] = clampLog(c.L2OutputMult, 7)
	if c.GlobalMiB > 0 {
		idx[PGlobal] = clampLog(c.GlobalMiB, 8) + 1
	}
	idx[PChannels] = clampLog(c.MemChannels, 3)
	idx[PNativeBatch] = clampLog(c.NativeBatch, 8)
	return idx
}

// Random samples a uniform point from the space.
func (s Space) Random(r *rand.Rand, base *Config) *Config {
	var idx [NumParams]int
	for i, d := range s.Dims() {
		idx[i] = r.Intn(d)
	}
	return s.Decode(idx, base)
}
