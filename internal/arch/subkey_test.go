package arch

import (
	"math/rand"
	"testing"
)

// TestSubKeyDistinguishesEveryMaskedParam walks every parameter: two
// configs differing only in that parameter must have different SubKeys
// when the mask covers it, and identical SubKeys when it does not
// (except where the differing values are semantically dead — disabled-L2
// multipliers and the GlobalMiB=0 slot — which must collapse).
func TestSubKeyDistinguishesEveryMaskedParam(t *testing.T) {
	s := Space{}
	dims := s.Dims()
	base := FASTLarge()
	for p := 0; p < NumParams; p++ {
		for v := 1; v < dims[p]; v++ {
			var a, b [NumParams]int
			// Enable L2 so the multiplier slots are live unless the walk
			// itself is over PL2Config.
			if p != PL2Config {
				a[PL2Config], b[PL2Config] = 1, 1
			}
			b[p] = v
			ca, cb := s.Decode(a, base), s.Decode(b, base)
			if err := ca.Validate(); err != nil {
				t.Fatalf("decoded config invalid: %v", err)
			}
			full := AllParams
			if ca.SubKey(full) == cb.SubKey(full) {
				t.Errorf("param %s value %d: SubKey(AllParams) collides", ParamNames[p], v)
			}
			without := full &^ MaskOf(p)
			if ca.SubKey(without) != cb.SubKey(without) {
				t.Errorf("param %s value %d: SubKey without the param still differs", ParamNames[p], v)
			}
		}
	}
}

// TestSubKeyCanonicalizesDeadParams: L2 multipliers with L2 disabled, and
// nothing else, are dead — configs differing only there must share a key.
func TestSubKeyCanonicalizesDeadParams(t *testing.T) {
	s := Space{}
	base := FASTLarge()
	var a, b [NumParams]int
	a[PL2Config], b[PL2Config] = 0, 0 // disabled
	a[PL2InputMult], b[PL2InputMult] = 0, 7
	a[PL2WeightMult], b[PL2WeightMult] = 3, 5
	if k1, k2 := s.Decode(a, base).SubKey(AllParams), s.Decode(b, base).SubKey(AllParams); k1 != k2 {
		t.Errorf("disabled-L2 multiplier variants must share a SubKey: %x vs %x", k1, k2)
	}
	// Reference designs carry zero-valued multipliers with L2 disabled;
	// SubKey must accept them (no log2(0) aliasing with real values).
	for _, name := range DesignNames() {
		c := ByName(name)
		_ = c.SubKey(AllParams)
	}
}

// TestSubKeyRandomInjective cross-checks random config pairs: equal
// SubKey(AllParams) implies equal live parameters.
func TestSubKeyRandomInjective(t *testing.T) {
	s := Space{}
	base := FASTLarge()
	rng := rand.New(rand.NewSource(3))
	type seenCfg struct {
		idx [NumParams]int
	}
	seen := map[uint64]seenCfg{}
	live := func(idx [NumParams]int) [NumParams]int {
		if idx[PL2Config] == 0 {
			idx[PL2InputMult], idx[PL2WeightMult], idx[PL2OutputMult] = 0, 0, 0
		}
		return idx
	}
	for i := 0; i < 5000; i++ {
		var idx [NumParams]int
		for d, card := range s.Dims() {
			idx[d] = rng.Intn(card)
		}
		k := s.Decode(idx, base).SubKey(AllParams)
		if prev, ok := seen[k]; ok && live(prev.idx) != live(idx) {
			t.Fatalf("SubKey collision: %v vs %v → %x", prev.idx, idx, k)
		}
		seen[k] = seenCfg{idx: idx}
	}
}

// TestMaskOf sanity-checks the mask helpers.
func TestMaskOf(t *testing.T) {
	m := MaskOf(PPEsX, PSAy, PNativeBatch)
	for p := 0; p < NumParams; p++ {
		want := p == PPEsX || p == PSAy || p == PNativeBatch
		if m.Has(p) != want {
			t.Errorf("MaskOf.Has(%s) = %v, want %v", ParamNames[p], m.Has(p), want)
		}
	}
	if !AllParams.Has(PNativeBatch) || AllParams.Has(NumParams) {
		t.Error("AllParams bounds wrong")
	}
}
