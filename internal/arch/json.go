package arch

import (
	"encoding/json"
	"fmt"
	"os"
)

// configJSON is the stable on-disk schema for a Config. Field names
// follow the paper's Table 3 spelling so dumped designs read like the
// paper's hyperparameter listings.
type configJSON struct {
	Name                     string  `json:"name"`
	PEsXDim                  int64   `json:"pes_x_dim"`
	PEsYDim                  int64   `json:"pes_y_dim"`
	SystolicArrayX           int64   `json:"systolic_array_x"`
	SystolicArrayY           int64   `json:"systolic_array_y"`
	VectorUnitMultiplier     int64   `json:"vector_unit_multiplier"`
	L1BufferConfig           string  `json:"l1_buffer_config"`
	L1InputBufferKiB         int64   `json:"l1_input_buffer_size_kib"`
	L1WeightBufferKiB        int64   `json:"l1_weight_buffer_size_kib"`
	L1OutputBufferKiB        int64   `json:"l1_output_buffer_size_kib"`
	L2BufferConfig           string  `json:"l2_buffer_config"`
	L2InputBufferMultiplier  int64   `json:"l2_input_buffer_multiplier"`
	L2WeightBufferMultiplier int64   `json:"l2_weight_buffer_multiplier"`
	L2OutputBufferMultiplier int64   `json:"l2_output_buffer_multiplier"`
	L3GlobalBufferMiB        int64   `json:"l3_global_buffer_size_mib"`
	MemChannels              int64   `json:"memory_channels"`
	MemTech                  string  `json:"memory_technology"`
	NativeBatchSize          int64   `json:"native_batch_size"`
	Cores                    int64   `json:"cores"`
	ClockGHz                 float64 `json:"clock_ghz"`
}

func bufferConfigName(b BufferConfig) string { return b.String() }

func parseBufferConfig(s string) (BufferConfig, error) {
	switch s {
	case "disabled":
		return Disabled, nil
	case "private":
		return Private, nil
	case "shared":
		return Shared, nil
	}
	return 0, fmt.Errorf("arch: unknown buffer config %q", s)
}

func parseMemTech(s string) (MemTech, error) {
	switch s {
	case "gddr6":
		return GDDR6, nil
	case "hbm2":
		return HBM2, nil
	}
	return 0, fmt.Errorf("arch: unknown memory technology %q", s)
}

// MarshalJSON implements json.Marshaler.
func (c *Config) MarshalJSON() ([]byte, error) {
	return json.MarshalIndent(configJSON{
		Name:    c.Name,
		PEsXDim: c.PEsX, PEsYDim: c.PEsY,
		SystolicArrayX: c.SAx, SystolicArrayY: c.SAy,
		VectorUnitMultiplier:     c.VectorMult,
		L1BufferConfig:           bufferConfigName(c.L1Config),
		L1InputBufferKiB:         c.L1InputKiB,
		L1WeightBufferKiB:        c.L1WeightKiB,
		L1OutputBufferKiB:        c.L1OutputKiB,
		L2BufferConfig:           bufferConfigName(c.L2Config),
		L2InputBufferMultiplier:  c.L2InputMult,
		L2WeightBufferMultiplier: c.L2WeightMult,
		L2OutputBufferMultiplier: c.L2OutputMult,
		L3GlobalBufferMiB:        c.GlobalMiB,
		MemChannels:              c.MemChannels,
		MemTech:                  c.Mem.String(),
		NativeBatchSize:          c.NativeBatch,
		Cores:                    c.Cores,
		ClockGHz:                 c.ClockGHz,
	}, "", "  ")
}

// UnmarshalJSON implements json.Unmarshaler; the decoded config is
// validated.
func (c *Config) UnmarshalJSON(data []byte) error {
	var j configJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	l1, err := parseBufferConfig(j.L1BufferConfig)
	if err != nil {
		return err
	}
	l2, err := parseBufferConfig(j.L2BufferConfig)
	if err != nil {
		return err
	}
	mem, err := parseMemTech(j.MemTech)
	if err != nil {
		return err
	}
	*c = Config{
		Name: j.Name,
		PEsX: j.PEsXDim, PEsY: j.PEsYDim,
		SAx: j.SystolicArrayX, SAy: j.SystolicArrayY,
		VectorMult: j.VectorUnitMultiplier,
		L1Config:   l1,
		L1InputKiB: j.L1InputBufferKiB, L1WeightKiB: j.L1WeightBufferKiB, L1OutputKiB: j.L1OutputBufferKiB,
		L2Config:    l2,
		L2InputMult: j.L2InputBufferMultiplier, L2WeightMult: j.L2WeightBufferMultiplier, L2OutputMult: j.L2OutputBufferMultiplier,
		GlobalMiB:   j.L3GlobalBufferMiB,
		MemChannels: j.MemChannels,
		Mem:         mem,
		NativeBatch: j.NativeBatchSize,
		Cores:       j.Cores,
		ClockGHz:    j.ClockGHz,
	}
	return c.Validate()
}

// SaveFile writes the design to path as JSON.
func (c *Config) SaveFile(path string) error {
	data, err := c.MarshalJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadFile reads and validates a design from a JSON file.
func LoadFile(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	c := new(Config)
	if err := c.UnmarshalJSON(data); err != nil {
		return nil, fmt.Errorf("arch: %s: %w", path, err)
	}
	return c, nil
}
