// Package arch defines the FAST accelerator datapath template (paper
// Table 3 / Figure 7): a grid of processing elements, each containing a
// systolic array and a vector processing unit, under a configurable
// memory hierarchy (per-PE L1 buffers, optional L2, optional shared
// Global Memory) fed by a configurable DRAM interface.
//
// The template is an approximate superset of published accelerator
// families: scalar-PE designs (Eyeriss) set the systolic dims to 1×1 with
// private L1s; vector-PE designs (Simba, EdgeTPU) set the X dim to 1;
// TPU-like designs use few PEs with large arrays, shared L1, no L2.
package arch

import (
	"fmt"
	"math/bits"
)

// BufferConfig selects the sharing discipline of a buffer level.
type BufferConfig int

const (
	// Disabled removes the level (valid only for L2).
	Disabled BufferConfig = iota
	// Private gives each PE its own buffer; data needed by several PEs is
	// duplicated into each.
	Private
	// Shared lets all PEs read one another's banks over the NoC, so
	// broadcast data is stored once.
	Shared
)

// String implements fmt.Stringer.
func (b BufferConfig) String() string {
	switch b {
	case Disabled:
		return "disabled"
	case Private:
		return "private"
	case Shared:
		return "shared"
	}
	return fmt.Sprintf("bufcfg(%d)", int(b))
}

// MemTech selects the DRAM technology. Table 3 searches over GDDR6
// channel counts; HBM2 is provided to model the TPU-v3 baseline.
type MemTech int

const (
	// GDDR6 provides 56 GB/s per channel (32-bit @ 14 Gb/s).
	GDDR6 MemTech = iota
	// HBM2 provides 225 GB/s per stack-channel (TPU-v3 has 4 → 900 GB/s).
	HBM2
)

// BandwidthPerChannelGBs returns the per-channel bandwidth of the
// technology in GB/s.
func (m MemTech) BandwidthPerChannelGBs() float64 {
	switch m {
	case GDDR6:
		return 56
	case HBM2:
		return 225
	}
	panic(fmt.Sprintf("arch: unknown memory technology %d", int(m)))
}

// String implements fmt.Stringer.
func (m MemTech) String() string {
	if m == GDDR6 {
		return "gddr6"
	}
	return "hbm2"
}

// Config is one point in the datapath search space (Table 3), plus the
// fixed platform attributes (cores, clock, memory technology) that the
// search does not mutate.
type Config struct {
	Name string

	// --- Searched hyperparameters (Table 3) ---

	// PEsX, PEsY define the PE grid (1..256, powers of 2).
	PEsX, PEsY int64
	// SAx, SAy are the per-PE systolic array dimensions (1..256, powers
	// of 2). A matrix-vector product of SAy rows × SAx cols issues each
	// cycle.
	SAx, SAy int64
	// VectorMult scales the per-PE VPU width as a multiple of SAx
	// (1..16, powers of 2).
	VectorMult int64
	// L1Config is Private or Shared.
	L1Config BufferConfig
	// L1InputKiB, L1WeightKiB, L1OutputKiB size the three per-PE L1
	// scratchpads (1..1024 KiB, powers of 2).
	L1InputKiB, L1WeightKiB, L1OutputKiB int64
	// L2Config is Disabled, Private or Shared.
	L2Config BufferConfig
	// L2InputMult, L2WeightMult, L2OutputMult size L2 as multiples of the
	// corresponding L1 buffer (1..128, powers of 2).
	L2InputMult, L2WeightMult, L2OutputMult int64
	// GlobalMiB sizes the shared Global Memory (0..256 MiB, powers of 2;
	// 0 disables it).
	GlobalMiB int64
	// MemChannels is the DRAM channel count (1..8, powers of 2).
	MemChannels int64
	// NativeBatch is the batch size the design serves (1..256, powers
	// of 2).
	NativeBatch int64

	// --- Fixed platform attributes ---

	// Cores replicates the whole datapath; aggregate throughput
	// multiplies, per-core resources do not (TPU-v3 is dual-core).
	Cores int64
	// ClockGHz is the core clock.
	ClockGHz float64
	// Mem selects DRAM technology.
	Mem MemTech
}

// NumPEs returns the per-core PE count.
func (c *Config) NumPEs() int64 { return c.PEsX * c.PEsY }

// MACsPerPE returns the per-PE multiply-accumulate units.
func (c *Config) MACsPerPE() int64 { return c.SAx * c.SAy }

// TotalMACs returns MACs across all cores.
func (c *Config) TotalMACs() int64 { return c.Cores * c.NumPEs() * c.MACsPerPE() }

// VPUWidth returns the per-PE vector unit lane count.
func (c *Config) VPUWidth() int64 { return c.VectorMult * c.SAx }

// TotalVPULanes returns VPU lanes across all cores.
func (c *Config) TotalVPULanes() int64 { return c.Cores * c.NumPEs() * c.VPUWidth() }

// PeakFLOPs returns peak FLOP/s across all cores (2 FLOPs per MAC per
// cycle).
func (c *Config) PeakFLOPs() float64 {
	return 2 * float64(c.TotalMACs()) * c.ClockGHz * 1e9
}

// PeakVectorOps returns peak VPU element ops/s across all cores.
func (c *Config) PeakVectorOps() float64 {
	return float64(c.TotalVPULanes()) * c.ClockGHz * 1e9
}

// PeakBandwidthGBs returns aggregate DRAM bandwidth in GB/s across all
// cores.
func (c *Config) PeakBandwidthGBs() float64 {
	return float64(c.Cores*c.MemChannels) * c.Mem.BandwidthPerChannelGBs()
}

// L1BytesPerPE returns the combined size of the three L1 buffers.
func (c *Config) L1BytesPerPE() int64 {
	return (c.L1InputKiB + c.L1WeightKiB + c.L1OutputKiB) << 10
}

// L2BytesPerPE returns the combined L2 size attributable to one PE (0 if
// disabled).
func (c *Config) L2BytesPerPE() int64 {
	if c.L2Config == Disabled {
		return 0
	}
	return (c.L1InputKiB*c.L2InputMult + c.L1WeightKiB*c.L2WeightMult +
		c.L1OutputKiB*c.L2OutputMult) << 10
}

// GlobalBytes returns the per-core Global Memory capacity in bytes.
func (c *Config) GlobalBytes() int64 { return c.GlobalMiB << 20 }

// OnChipBytes returns total per-core on-chip storage.
func (c *Config) OnChipBytes() int64 {
	return c.NumPEs()*(c.L1BytesPerPE()+c.L2BytesPerPE()) + c.GlobalBytes()
}

// Ridgepoint returns the operational intensity (FLOPs/byte) above which
// the design is compute- rather than bandwidth-bound (§4.1).
func (c *Config) Ridgepoint() float64 {
	bw := c.PeakBandwidthGBs() * 1e9
	if bw == 0 {
		return 0
	}
	return c.PeakFLOPs() / bw
}

func isPow2(v int64) bool { return v > 0 && v&(v-1) == 0 }

func pow2InRange(v, lo, hi int64) bool { return isPow2(v) && v >= lo && v <= hi }

// Validate checks every hyperparameter against the Table 3 domain.
func (c *Config) Validate() error {
	type rng struct {
		name   string
		v      int64
		lo, hi int64
	}
	checks := []rng{
		{"PEs_x_dim", c.PEsX, 1, 256},
		{"PEs_y_dim", c.PEsY, 1, 256},
		{"Systolic_array_x", c.SAx, 1, 256},
		{"Systolic_array_y", c.SAy, 1, 256},
		{"Vector_unit_multiplier", c.VectorMult, 1, 16},
		{"L1_input_buffer_size", c.L1InputKiB, 1, 1024},
		{"L1_weight_buffer_size", c.L1WeightKiB, 1, 1024},
		{"L1_output_buffer_size", c.L1OutputKiB, 1, 1024},
		{"GDDR6_channels", c.MemChannels, 1, 8},
		{"Native_batch_size", c.NativeBatch, 1, 256},
	}
	for _, ch := range checks {
		if !pow2InRange(ch.v, ch.lo, ch.hi) {
			return fmt.Errorf("arch(%s): %s = %d outside power-of-2 range [%d,%d]",
				c.Name, ch.name, ch.v, ch.lo, ch.hi)
		}
	}
	if c.L1Config != Private && c.L1Config != Shared {
		return fmt.Errorf("arch(%s): L1_buffer_config must be private or shared", c.Name)
	}
	switch c.L2Config {
	case Disabled:
	case Private, Shared:
		for _, m := range []int64{c.L2InputMult, c.L2WeightMult, c.L2OutputMult} {
			if !pow2InRange(m, 1, 128) {
				return fmt.Errorf("arch(%s): L2 multiplier %d outside power-of-2 range [1,128]", c.Name, m)
			}
		}
	default:
		return fmt.Errorf("arch(%s): bad L2_buffer_config", c.Name)
	}
	if c.GlobalMiB != 0 && !pow2InRange(c.GlobalMiB, 1, 256) {
		return fmt.Errorf("arch(%s): L3_global_buffer_size = %d MiB outside {0} ∪ power-of-2 [1,256]",
			c.Name, c.GlobalMiB)
	}
	if c.Cores < 1 {
		return fmt.Errorf("arch(%s): cores must be >= 1", c.Name)
	}
	if c.ClockGHz <= 0 {
		return fmt.Errorf("arch(%s): clock must be positive", c.Name)
	}
	return nil
}

// Clone returns a copy of the config with a new name.
func (c *Config) Clone(name string) *Config {
	out := *c
	out.Name = name
	return &out
}

// String summarizes the datapath.
func (c *Config) String() string {
	return fmt.Sprintf("%s: %dx%d PEs × SA %dx%d, VPU %d, L1 %d/%d/%d KiB (%s), L2 %s, GM %d MiB, %d ch %s, batch %d, %d core(s) @ %.2f GHz",
		c.Name, c.PEsX, c.PEsY, c.SAx, c.SAy, c.VPUWidth(),
		c.L1InputKiB, c.L1WeightKiB, c.L1OutputKiB, c.L1Config,
		c.L2Config, c.GlobalMiB, c.MemChannels, c.Mem, c.NativeBatch,
		c.Cores, c.ClockGHz)
}

// log2 returns floor(log2(v)) for v >= 1.
func log2(v int64) int { return 63 - bits.LeadingZeros64(uint64(v)) }
