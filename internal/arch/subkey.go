package arch

// Parameter-sliced config fingerprints.
//
// The factored evaluator in internal/sim memoizes per-design work across
// search trials by the sub-tuple of searched hyperparameters each stage
// actually reads: the schedule mapper sees only the PE grid, the systolic
// arrays, and the L1 scratchpads; the power roll-up sees sizes and widths
// but not the L1 sharing discipline; nothing design-dependent sees the
// native batch at all. SubKey packs such a sub-tuple into one comparable
// uint64 so a stage cache can be keyed exactly by what the stage reads —
// no more (a stale hit would be silently wrong) and no less (a too-wide
// key only costs hit rate).

// ParamMask selects a subset of the searched hyperparameters (the P*
// constants) for SubKey. Bit i selects parameter i.
type ParamMask uint32

// MaskOf builds a ParamMask from parameter indices.
func MaskOf(params ...int) ParamMask {
	var m ParamMask
	for _, p := range params {
		m |= 1 << p
	}
	return m
}

// Has reports whether the mask selects parameter p.
func (m ParamMask) Has(p int) bool { return m&(1<<p) != 0 }

// AllParams selects every searched hyperparameter.
const AllParams = ParamMask(1<<NumParams - 1)

// SubKey returns a compact fingerprint of the masked hyperparameters:
// each of the 16 searched parameters owns a fixed 4-bit slot (the Table 3
// domains are all ≤ 11 ordinal values), unmasked slots stay zero. Two
// validated configs agree on a SubKey if and only if they agree on every
// masked parameter, so the key is safe to memoize design-dependent work
// under — provided the mask covers every field the work reads.
//
// The encoding canonicalizes dead parameters: with L2 disabled the three
// L2 multipliers are not stored (they cannot affect any result, and
// reference designs leave them zero), and GlobalMiB 0 packs as slot
// value 0. The config must have passed Validate; out-of-domain values
// would alias.
func (c *Config) SubKey(mask ParamMask) uint64 {
	var k uint64
	put := func(p int, v uint64) {
		if mask.Has(p) {
			k |= v << (4 * p)
		}
	}
	put(PPEsX, uint64(log2(c.PEsX)))
	put(PPEsY, uint64(log2(c.PEsY)))
	put(PSAx, uint64(log2(c.SAx)))
	put(PSAy, uint64(log2(c.SAy)))
	put(PVectorMult, uint64(log2(c.VectorMult)))
	put(PL1Config, uint64(c.L1Config))
	put(PL1Input, uint64(log2(c.L1InputKiB)))
	put(PL1Weight, uint64(log2(c.L1WeightKiB)))
	put(PL1Output, uint64(log2(c.L1OutputKiB)))
	put(PL2Config, uint64(c.L2Config))
	if c.L2Config != Disabled {
		put(PL2InputMult, uint64(log2(c.L2InputMult)))
		put(PL2WeightMult, uint64(log2(c.L2WeightMult)))
		put(PL2OutputMult, uint64(log2(c.L2OutputMult)))
	}
	if c.GlobalMiB > 0 {
		put(PGlobal, uint64(log2(c.GlobalMiB))+1)
	}
	put(PChannels, uint64(log2(c.MemChannels)))
	put(PNativeBatch, uint64(log2(c.NativeBatch)))
	return k
}
