package arch

// Named reference designs.
//
// TPUv3 models the paper's baseline: a dual-core chip where each core
// carries two 128×128 systolic arrays (modeled as two PEs), a 1024-wide
// vector unit (512 lanes per PE), 64 KiB L1 buffers, a 16 MiB per-core
// global buffer, and 450 GB/s of HBM per core. Peak: 123 TFLOP/s bf16 and
// 900 GB/s aggregate, matching §4.1.
//
// FASTLarge and FASTSmall are the two EfficientNet-B7-optimized designs
// of Table 5. DieShrunkTPUv3 is the same datapath evaluated on the
// sub-10nm process (identical architecture; the power model applies the
// process scaling).

// TPUv3 returns the modeled TPU-v3 baseline.
func TPUv3() *Config {
	return &Config{
		Name: "tpu-v3",
		PEsX: 2, PEsY: 1,
		SAx: 128, SAy: 128,
		VectorMult: 4, // 512 lanes/PE → 1024-wide per core
		L1Config:   Shared,
		L1InputKiB: 64, L1WeightKiB: 64, L1OutputKiB: 64,
		L2Config:  Disabled,
		GlobalMiB: 16,
		// 2 HBM2 channels per core × 225 GB/s × 2 cores = 900 GB/s.
		MemChannels: 2, Mem: HBM2,
		NativeBatch: 64,
		Cores:       2,
		ClockGHz:    0.94,
	}
}

// DieShrunkTPUv3 returns the TPU-v3 datapath normalized to the same
// sub-10nm process as FAST designs (the Figure 10 / Table 5 baseline).
func DieShrunkTPUv3() *Config {
	c := TPUv3().Clone("tpu-v3-dieshrink")
	return c
}

// FASTLarge returns the FAST-Large design of Table 5: 64 PEs with 32×32
// systolic arrays (131 TFLOP/s peak), tiny 8 KiB L1s, a 128 MiB Global
// Memory, 448 GB/s GDDR6, and native batch 8.
func FASTLarge() *Config {
	return &Config{
		Name: "fast-large",
		PEsX: 8, PEsY: 8,
		SAx: 32, SAy: 32,
		VectorMult: 1, // 32 lanes/PE
		L1Config:   Shared,
		L1InputKiB: 8, L1WeightKiB: 8, L1OutputKiB: 8,
		L2Config:    Disabled,
		GlobalMiB:   128,
		MemChannels: 8, Mem: GDDR6, // 448 GB/s
		NativeBatch: 8,
		Cores:       1,
		ClockGHz:    1.0,
	}
}

// FASTSmall returns the FAST-Small design of Table 5: 8 PEs with 64×32
// arrays (33 TFLOP/s peak), 8 KiB L1s, an 8 MiB Global Memory, 448 GB/s
// GDDR6, and native batch 64. It avoids fusion entirely and instead
// balances compute against bandwidth (ridgepoint 73).
func FASTSmall() *Config {
	return &Config{
		Name: "fast-small",
		PEsX: 8, PEsY: 1,
		SAx: 64, SAy: 32,
		VectorMult: 1, // 64 lanes/PE
		L1Config:   Shared,
		L1InputKiB: 8, L1WeightKiB: 8, L1OutputKiB: 8,
		L2Config:    Disabled,
		GlobalMiB:   8,
		MemChannels: 8, Mem: GDDR6,
		NativeBatch: 64,
		Cores:       1,
		ClockGHz:    1.0,
	}
}

// FASTDecode returns a decode-tuned design for autoregressive serving:
// FAST-Large's datapath with the Global Memory grown to the 256 MiB
// ceiling of the Table 3 space — decode steps are dominated by reading
// per-layer KV-cache slabs, so capacity for held slabs buys more than
// extra compute — and native batch 1 (one token per request per step).
func FASTDecode() *Config {
	return &Config{
		Name: "fast-decode",
		PEsX: 8, PEsY: 8,
		SAx: 32, SAy: 32,
		VectorMult: 1,
		L1Config:   Shared,
		L1InputKiB: 8, L1WeightKiB: 8, L1OutputKiB: 8,
		L2Config:    Disabled,
		GlobalMiB:   256,
		MemChannels: 8, Mem: GDDR6,
		NativeBatch: 1,
		Cores:       1,
		ClockGHz:    1.0,
	}
}

// ByName returns a named design or nil.
func ByName(name string) *Config {
	switch name {
	case "tpu-v3":
		return TPUv3()
	case "tpu-v3-dieshrink":
		return DieShrunkTPUv3()
	case "fast-large":
		return FASTLarge()
	case "fast-small":
		return FASTSmall()
	case "fast-decode":
		return FASTDecode()
	}
	return nil
}

// DesignNames lists the named reference designs.
func DesignNames() []string {
	return []string{"tpu-v3", "tpu-v3-dieshrink", "fast-large", "fast-small", "fast-decode"}
}
