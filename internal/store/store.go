// Package store is the durability layer of the FAST serving stack: a
// crash-safe, append-only on-disk record of every study a daemon runs,
// from which an interrupted study resumes bit-identically in a fresh
// process.
//
// A study's search state is exactly its ask/tell transcript (see
// internal/search/snapshot.go), so the store persists three files per
// study under <root>/<tenant>/<id>/:
//
//	spec.json        the immutable study definition, written once at
//	                 creation (atomic tmp+rename)
//	transcript.jsonl one header line (format/version/algorithm/seed/
//	                 budget) then one JSON line per told batch,
//	                 fsync'd per append — the checkpoint itself
//	status.json      the mutable lifecycle record (state, progress,
//	                 best-so-far), atomically replaced on update
//
// Crash safety follows from the line discipline: an append either lands
// whole (the fsync returned) or is a torn final line, which Snapshot
// detects and drops, reporting the study as truncated at the last
// durable batch — exactly the batches the optimizer can replay.
// Corruption anywhere before the final line is not survivable silently
// and is reported as ErrCorrupt; a format version beyond this package's
// writer is ErrVersionMismatch (operators roll the binary forward, not
// the data back). docs/OPERATIONS.md walks through both recoveries.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"fast/internal/fault"
	"fast/internal/search"
)

// FormatVersion is the on-disk format written by this package. Readers
// accept exactly this version: the format is an internal contract, not
// a migration surface, so a mismatch means the binary and data are from
// different releases.
const FormatVersion = 1

// Sentinel errors. Callers branch on these with errors.Is; every error
// carries the study path for the operator.
var (
	ErrExists          = errors.New("study already exists")
	ErrNotFound        = errors.New("study not found")
	ErrCorrupt         = errors.New("checkpoint corrupt")
	ErrVersionMismatch = errors.New("checkpoint format version mismatch")
)

// Spec is the immutable definition of a stored study — everything
// needed to reconstruct the core.Study in a fresh process. It is
// written once at creation and never rewritten; mutable progress lives
// in Status.
type Spec struct {
	FormatVersion int    `json:"format_version"`
	Tenant        string `json:"tenant"`
	ID            string `json:"id"`

	Workloads []string `json:"workloads"`
	// Objective names core.ObjectiveKind by name for scalar studies;
	// Objectives replaces it for multi-objective (Pareto) studies.
	Objective       string   `json:"objective,omitempty"`
	Objectives      []string `json:"objectives,omitempty"`
	Algorithm       string   `json:"algorithm,omitempty"`
	Trials          int      `json:"trials"`
	Seed            int64    `json:"seed"`
	BatchSize       int      `json:"batch_size,omitempty"`
	FrontCap        int      `json:"front_cap,omitempty"`
	LatencyBoundSec float64  `json:"latency_bound_sec,omitempty"`
	// DeadlineSec bounds one run's wall-clock time: the serving layer
	// derives the run context's deadline from it, so a study whose
	// client stopped caring cannot burn workers forever. Purely a
	// scheduling bound — it never reaches evaluation semantics, so a
	// deadlined study resumes bit-identically.
	DeadlineSec float64 `json:"deadline_sec,omitempty"`
	// ILPDeadlineSec overrides the exact-ILP fusion solve deadline used
	// by the final report's full re-simulations (the CLI's
	// -ilp-deadline). Part of the spec, not derived from remaining
	// wall-clock, so every run of the study solves under the same bound.
	ILPDeadlineSec float64 `json:"ilp_deadline_sec,omitempty"`

	// Created is an RFC 3339 timestamp stamped by the caller (the store
	// itself never reads the clock).
	Created string `json:"created,omitempty"`
}

// Study lifecycle states recorded in Status.State. The store does not
// enforce the state machine — internal/serve owns transitions — but
// the names are part of the on-disk contract.
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateCanceled    = "canceled"
	StateInterrupted = "interrupted" // found "running" after a restart
)

// Status is the mutable lifecycle record of a study, atomically
// replaced on every update.
type Status struct {
	State string `json:"state"`
	// TrialsDone counts durably checkpointed trials; TrialsTarget is
	// the current trial budget (it can exceed Spec.Trials after a
	// resume that extends the study).
	TrialsDone   int `json:"trials_done"`
	TrialsTarget int `json:"trials_target"`
	// BestValue/BestFeasible mirror the search's best-so-far.
	BestValue    float64 `json:"best_value"`
	BestFeasible bool    `json:"best_feasible"`
	// Error records why State became failed.
	Error string `json:"error,omitempty"`
	// Updated is an RFC 3339 timestamp stamped by the caller.
	Updated string `json:"updated,omitempty"`
}

const (
	specFile       = "spec.json"
	statusFile     = "status.json"
	transcriptFile = "transcript.jsonl"
)

// FaultOp names one durability-critical filesystem operation the fault
// seam can observe.
type FaultOp string

// The operations the seam intercepts, in the order a durable write
// performs them.
const (
	OpWrite  FaultOp = "write"
	OpSync   FaultOp = "sync"
	OpClose  FaultOp = "close"
	OpRename FaultOp = "rename"
)

// FaultHook intercepts durability-critical filesystem operations before
// they execute. Returning a non-nil error aborts the operation with
// that error (it surfaces through the caller classified retryable);
// sleeping inside the hook injects latency without failing. The hook
// runs on whatever goroutine performs the write, so a slow hook is a
// slow disk, exactly as the chaos harness wants.
type FaultHook func(op FaultOp, path string) error

// Store is a root directory holding studies as <root>/<tenant>/<id>/.
type Store struct {
	root string
	hook FaultHook
}

// SetFaultHook installs h as the store's filesystem fault seam (nil
// removes it). Test/chaos instrumentation only: call before handing the
// store to concurrent users.
func (st *Store) SetFaultHook(h FaultHook) { st.hook = h }

// fsOp runs the fault hook, if any, for op on path.
func (st *Store) fsOp(op FaultOp, path string) error {
	if st == nil || st.hook == nil {
		return nil
	}
	if err := st.hook(op, path); err != nil {
		return fmt.Errorf("store: injected %s fault on %s: %w", op, filepath.Base(path), err)
	}
	return nil
}

// Open creates the root directory if needed and returns the store.
func Open(root string) (*Store, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", root, err)
	}
	return &Store{root: root}, nil
}

// Root returns the store's root directory.
func (st *Store) Root() string { return st.root }

// validName reports whether s is safe as a path component. The
// whitelist is deliberate: tenant and study IDs come from HTTP clients
// and become directory names, so anything outside [A-Za-z0-9_-] (dots,
// separators, empty) is rejected rather than escaped.
func validName(s string) bool {
	if s == "" || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

func (st *Store) dir(tenant, id string) (string, error) {
	if !validName(tenant) {
		return "", fmt.Errorf("store: invalid tenant %q (want [A-Za-z0-9_-]{1,64})", tenant)
	}
	if !validName(id) {
		return "", fmt.Errorf("store: invalid study id %q (want [A-Za-z0-9_-]{1,64})", id)
	}
	return filepath.Join(st.root, tenant, id), nil
}

// Create allocates the study directory and durably writes its spec and
// an initial queued status. ErrExists if the (tenant, id) pair is
// taken.
func (st *Store) Create(sp Spec) (*Study, error) {
	dir, err := st.dir(sp.Tenant, sp.ID)
	if err != nil {
		return nil, err
	}
	sp.FormatVersion = FormatVersion
	if _, err := os.Stat(filepath.Join(dir, specFile)); err == nil {
		return nil, fmt.Errorf("store: %s/%s: %w", sp.Tenant, sp.ID, ErrExists)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", dir, err)
	}
	s := &Study{store: st, spec: sp, dir: dir}
	if err := st.writeFileAtomic(filepath.Join(dir, specFile), mustJSON(sp)); err != nil {
		return nil, err
	}
	if err := s.SetStatus(Status{State: StateQueued, TrialsTarget: sp.Trials}); err != nil {
		return nil, err
	}
	return s, nil
}

// Get opens an existing study. ErrNotFound if it does not exist,
// ErrVersionMismatch if its spec was written by a newer format.
func (st *Store) Get(tenant, id string) (*Study, error) {
	dir, err := st.dir(tenant, id)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(dir, specFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("store: %s/%s: %w", tenant, id, ErrNotFound)
	}
	if err != nil {
		return nil, fmt.Errorf("store: read spec %s/%s: %w", tenant, id, err)
	}
	var sp Spec
	if err := json.Unmarshal(data, &sp); err != nil {
		return nil, fmt.Errorf("store: spec %s/%s: %w: %v", tenant, id, ErrCorrupt, err)
	}
	if sp.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("store: spec %s/%s has format version %d, this binary writes %d: %w",
			tenant, id, sp.FormatVersion, FormatVersion, ErrVersionMismatch)
	}
	return &Study{store: st, spec: sp, dir: dir}, nil
}

// List opens every study in the store, sorted by (tenant, id). Studies
// that fail to open (corrupt or version-mismatched specs) are skipped
// and reported in the returned error alongside the successfully opened
// rest, so one bad directory cannot take restart recovery down.
func (st *Store) List() ([]*Study, error) {
	tenants, err := os.ReadDir(st.root)
	if err != nil {
		return nil, fmt.Errorf("store: list %s: %w", st.root, err)
	}
	var out []*Study
	var errs []error
	for _, td := range tenants {
		if !td.IsDir() || !validName(td.Name()) {
			continue
		}
		ids, err := os.ReadDir(filepath.Join(st.root, td.Name()))
		if err != nil {
			errs = append(errs, err)
			continue
		}
		for _, id := range ids {
			if !id.IsDir() || !validName(id.Name()) {
				continue
			}
			s, err := st.Get(td.Name(), id.Name())
			if err != nil {
				errs = append(errs, err)
				continue
			}
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].spec.Tenant != out[j].spec.Tenant {
			return out[i].spec.Tenant < out[j].spec.Tenant
		}
		return out[i].spec.ID < out[j].spec.ID
	})
	return out, errors.Join(errs...)
}

// mustJSON marshals v, panicking on failure — the store's types are
// all marshalable by construction.
func mustJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("store: marshal %T: %v", v, err))
	}
	return data
}

// writeFileAtomic durably replaces path with data: write a temp file in
// the same directory, fsync it, rename over the target, fsync the
// directory. Readers see the old or the new content, never a torn mix.
// Failures are classified retryable — the data is intact on disk, only
// this replacement did not land.
func (st *Store) writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fault.Retryable("store.write", fmt.Errorf("store: %w", err))
	}
	defer os.Remove(tmp.Name())
	err = st.fsOp(OpWrite, path)
	if err == nil {
		_, err = tmp.Write(data)
	}
	if err != nil {
		tmp.Close()
		return fault.Retryable("store.write", fmt.Errorf("store: write %s: %w", path, err))
	}
	err = st.fsOp(OpSync, path)
	if err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		return fault.Retryable("store.sync", fmt.Errorf("store: sync %s: %w", path, err))
	}
	err = st.fsOp(OpClose, path)
	if err == nil {
		err = tmp.Close()
	}
	if err != nil {
		return fault.Retryable("store.close", fmt.Errorf("store: close %s: %w", path, err))
	}
	err = st.fsOp(OpRename, path)
	if err == nil {
		err = os.Rename(tmp.Name(), path)
	}
	if err != nil {
		return fault.Retryable("store.rename", fmt.Errorf("store: rename %s: %w", path, err))
	}
	return st.syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed or just-created entry
// survives a crash.
func (st *Store) syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fault.Retryable("store.sync", fmt.Errorf("store: %w", err))
	}
	defer d.Close()
	if err := st.fsOp(OpSync, dir); err == nil {
		err = d.Sync()
	}
	if err != nil {
		return fault.Retryable("store.sync", fmt.Errorf("store: sync dir %s: %w", dir, err))
	}
	return nil
}

// Study is an open handle on one stored study. The handle itself is
// not goroutine-safe: internal/serve drives each study from a single
// goroutine (its run loop), which matches the checkpoint hook's
// single-threaded delivery.
type Study struct {
	store *Store
	spec  Spec
	dir   string

	transcript *os.File // lazily opened append handle
}

// Spec returns the study's immutable definition.
func (s *Study) Spec() Spec { return s.spec }

// Dir returns the study's directory.
func (s *Study) Dir() string { return s.dir }

// TranscriptSize reports the durable transcript's current size in
// bytes (0 when no transcript exists yet). Serve uses it to seed
// checkpoint-byte quota accounting across restarts.
func (s *Study) TranscriptSize() int64 {
	fi, err := os.Stat(filepath.Join(s.dir, transcriptFile))
	if err != nil {
		return 0
	}
	return fi.Size()
}

// Status reads the current lifecycle record.
func (s *Study) Status() (Status, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, statusFile))
	if err != nil {
		return Status{}, fmt.Errorf("store: read status %s: %w", s.dir, err)
	}
	var out Status
	if err := json.Unmarshal(data, &out); err != nil {
		return Status{}, fmt.Errorf("store: status %s: %w: %v", s.dir, ErrCorrupt, err)
	}
	return out, nil
}

// SetStatus durably replaces the lifecycle record.
func (s *Study) SetStatus(v Status) error {
	return s.store.writeFileAtomic(filepath.Join(s.dir, statusFile), mustJSON(v))
}

// transcriptHeader is the first line of transcript.jsonl: the snapshot
// constructor parameters, so the batch lines alone rebuild a
// search.Snapshot.
type transcriptHeader struct {
	Format    string           `json:"format"`
	Version   int              `json:"version"`
	Algorithm search.Algorithm `json:"algorithm"`
	Seed      int64            `json:"seed"`
	Budget    int              `json:"budget"`
}

// transcriptBatch is one appended line: one fully told ask batch.
type transcriptBatch struct {
	Trials []search.Trial `json:"trials"`
}

const transcriptFormat = "fast-transcript"

// BeginTranscript opens the study's transcript for appending, writing
// the header line if the file is new. alg, seed and budget are the
// snapshot constructor parameters (see search.Snapshot); they must
// match the existing header when the transcript already has one (the
// resume case appends to it).
func (s *Study) BeginTranscript(alg search.Algorithm, seed int64, budget int) error {
	if s.transcript != nil {
		return nil
	}
	path := filepath.Join(s.dir, transcriptFile)
	existing, err := os.ReadFile(path)
	isNew := errors.Is(err, os.ErrNotExist) || (err == nil && len(existing) == 0)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("store: read transcript %s: %w", s.dir, err)
	}
	if !isNew {
		hdr, _, _, err := parseTranscript(existing)
		if err != nil {
			return fmt.Errorf("store: transcript %s: %w", s.dir, err)
		}
		if hdr.Algorithm != alg || hdr.Seed != seed || hdr.Budget != budget {
			return fmt.Errorf("store: transcript %s header (%s/%d/%d) does not match study (%s/%d/%d)",
				s.dir, hdr.Algorithm, hdr.Seed, hdr.Budget, alg, seed, budget)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: open transcript %s: %w", s.dir, err)
	}
	if isNew {
		hdr := transcriptHeader{Format: transcriptFormat, Version: FormatVersion, Algorithm: alg, Seed: seed, Budget: budget}
		if err := s.appendLine(f, mustJSON(hdr)); err != nil {
			f.Close()
			return fmt.Errorf("store: write transcript header %s: %w", s.dir, err)
		}
		if err := s.store.syncDir(s.dir); err != nil {
			f.Close()
			return err
		}
	}
	s.transcript = f
	return nil
}

// AppendBatch durably appends one told batch to the transcript: the
// line is written and fsync'd before AppendBatch returns, so a batch
// the caller has seen acknowledged is never lost to a crash. It
// returns the number of bytes appended (for write-volume metrics).
// BeginTranscript must have been called. Write and fsync failures come
// back classified retryable (fault.IsRetryable): the transcript up to
// the last acknowledged append is still durable, so stopping the study
// and resuming later is always safe.
func (s *Study) AppendBatch(batch []search.Trial) (int, error) {
	if s.transcript == nil {
		return 0, fault.Terminal("store.append", fmt.Errorf("store: AppendBatch %s before BeginTranscript", s.dir))
	}
	line := mustJSON(transcriptBatch{Trials: batch})
	if err := s.appendLine(s.transcript, line); err != nil {
		return 0, fault.Retryable("store.append", fmt.Errorf("store: append batch %s: %w", s.dir, err))
	}
	return len(line) + 1, nil
}

// appendLine writes data plus newline and fsyncs, with the fault seam
// interposed before the write and before the fsync.
func (s *Study) appendLine(f *os.File, data []byte) error {
	if err := s.store.fsOp(OpWrite, f.Name()); err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		return err
	}
	if err := s.store.fsOp(OpSync, f.Name()); err != nil {
		return err
	}
	return f.Sync()
}

// CloseTranscript releases the append handle (idempotent). The data is
// already durable — every append fsync'd — so Close has no flush role;
// a close failure is still reported (classified retryable) because a
// handle the OS refuses to release is an operator signal, not noise.
func (s *Study) CloseTranscript() error {
	if s.transcript == nil {
		return nil
	}
	f := s.transcript
	s.transcript = nil
	err := s.store.fsOp(OpClose, f.Name())
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fault.Retryable("store.close", fmt.Errorf("store: close transcript %s: %w", s.dir, err))
	}
	return nil
}

// Snapshot loads the durable transcript as a search.Snapshot ready for
// search.Restore / core.WithResume. truncated reports that a torn final
// line (a crash mid-append) was dropped; the snapshot then holds every
// batch that was durably acknowledged. A study with no transcript yet
// returns an empty snapshot (zero batches) and no error only if spec
// defaults allow; callers treat len(Trials)==0 as "start fresh".
func (s *Study) Snapshot() (snap search.Snapshot, truncated bool, err error) {
	data, err := os.ReadFile(filepath.Join(s.dir, transcriptFile))
	if errors.Is(err, os.ErrNotExist) {
		return search.Snapshot{}, false, nil
	}
	if err != nil {
		return search.Snapshot{}, false, fmt.Errorf("store: read transcript %s: %w", s.dir, err)
	}
	hdr, batches, truncated, err := parseTranscript(data)
	if err != nil {
		// Corruption and version skew are terminal: re-reading the same
		// bytes can never start succeeding.
		return search.Snapshot{}, false, fault.Terminal("store.snapshot", fmt.Errorf("store: transcript %s: %w", s.dir, err))
	}
	snap = search.Snapshot{Algorithm: hdr.Algorithm, Seed: hdr.Seed, Budget: hdr.Budget}
	for _, b := range batches {
		snap.Append(b.Trials)
	}
	if err := snap.Validate(); err != nil {
		return search.Snapshot{}, false, fmt.Errorf("store: transcript %s: %w: %v", s.dir, ErrCorrupt, err)
	}
	return snap, truncated, nil
}

// parseTranscript splits the transcript into header and batches.
// Only the final line may be torn (unparsable or missing its newline):
// that is the crash-mid-append signature, dropped and reported via
// truncated. An unparsable line anywhere earlier is ErrCorrupt.
func parseTranscript(data []byte) (hdr transcriptHeader, batches []transcriptBatch, truncated bool, err error) {
	if len(data) == 0 {
		return hdr, nil, false, fmt.Errorf("%w: empty transcript", ErrCorrupt)
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	complete := bytes.HasSuffix(data, []byte("\n"))

	var lines [][]byte
	for sc.Scan() {
		line := make([]byte, len(sc.Bytes()))
		copy(line, sc.Bytes())
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		return hdr, nil, false, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if len(lines) == 0 {
		return hdr, nil, false, fmt.Errorf("%w: empty transcript", ErrCorrupt)
	}

	if err := json.Unmarshal(lines[0], &hdr); err != nil {
		if len(lines) == 1 && !complete {
			return hdr, nil, false, fmt.Errorf("%w: torn transcript header", ErrCorrupt)
		}
		return hdr, nil, false, fmt.Errorf("%w: bad transcript header: %v", ErrCorrupt, err)
	}
	if hdr.Format != transcriptFormat {
		return hdr, nil, false, fmt.Errorf("%w: transcript format %q", ErrCorrupt, hdr.Format)
	}
	if hdr.Version != FormatVersion {
		return hdr, nil, false, fmt.Errorf("transcript version %d, this binary reads %d: %w",
			hdr.Version, FormatVersion, ErrVersionMismatch)
	}

	for i, line := range lines[1:] {
		if i == len(lines)-2 && !complete {
			// A missing final newline means the last append never
			// finished (each append is one write of line+newline, acked
			// by fsync). Drop it even if the bytes happen to parse: the
			// batch was never acknowledged, and the resumed run will
			// re-evaluate it identically.
			return hdr, batches, true, nil
		}
		var b transcriptBatch
		if json.Unmarshal(line, &b) != nil || len(b.Trials) == 0 {
			return hdr, nil, false, fmt.Errorf("%w: bad batch at line %d", ErrCorrupt, i+2)
		}
		batches = append(batches, b)
	}
	return hdr, batches, false, nil
}
