package store_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"fast/internal/core"
	"fast/internal/search"
	"fast/internal/store"
)

// The torn-write recovery contract: a crash can tear the transcript's
// final AppendBatch line at ANY byte — the write and its fsync are not
// atomic from the filesystem's point of view — and recovery must drop
// exactly that unacknowledged line, keep every acknowledged batch, and
// resume to a bit-identical study. This test proves it exhaustively:
// one truncation per byte offset of the final line.

// tornStudy runs a real checkpointed study and returns the reference
// result, the transcript bytes, and the number of trials per batch.
func tornStudy(t *testing.T) (*core.StudyResult, []byte, *store.Spec) {
	t.Helper()
	sp := &store.Spec{
		FormatVersion: store.FormatVersion,
		Tenant:        "t", ID: "torn",
		Workloads: []string{"mobilenetv2"},
		Objective: "perf-per-tdp",
		Algorithm: string(search.AlgLCS),
		Trials:    24,
		Seed:      11,
		BatchSize: 8,
	}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	study, err := st.Create(*sp)
	if err != nil {
		t.Fatal(err)
	}
	if err := study.BeginTranscript(search.AlgLCS, sp.Seed, sp.Trials); err != nil {
		t.Fatal(err)
	}
	cs := &core.Study{
		Workloads: sp.Workloads,
		Objective: core.PerfPerTDP,
		Algorithm: search.AlgLCS,
		Trials:    sp.Trials,
		Seed:      sp.Seed,
	}
	ref, err := cs.Run(context.Background(),
		core.WithBatchSize(sp.BatchSize), core.WithParallelism(2),
		core.WithTranscript(func(batch []search.Trial) {
			if _, err := study.AppendBatch(batch); err != nil {
				t.Fatal(err)
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if err := study.CloseTranscript(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(study.Dir(), "transcript.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	return ref, data, sp
}

// snapshotOfTruncated writes the first cut bytes of transcript into a
// fresh study directory and loads its snapshot.
func snapshotOfTruncated(t *testing.T, sp store.Spec, transcript []byte, cut int) (search.Snapshot, bool) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	study, err := st.Create(sp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(study.Dir(), "transcript.jsonl"), transcript[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	snap, truncated, err := study.Snapshot()
	if err != nil {
		t.Fatalf("cut %d/%d: Snapshot: %v", cut, len(transcript), err)
	}
	return snap, truncated
}

// TestTornFinalLineEveryOffset truncates the transcript at every byte
// offset of the final AppendBatch line. At every cut, Snapshot must
// succeed, report exactly the acknowledged batches (all but the torn
// final one), and flag truncation precisely when partial bytes of the
// torn line remain on disk.
func TestTornFinalLineEveryOffset(t *testing.T) {
	_, data, sp := tornStudy(t)

	// Locate the final line: bytes after the second-to-last newline.
	if !bytes.HasSuffix(data, []byte("\n")) {
		t.Fatal("transcript does not end in a newline")
	}
	body := data[:len(data)-1]
	lastStart := bytes.LastIndexByte(body, '\n') + 1
	if lastStart <= 0 {
		t.Fatal("transcript has no batch lines")
	}
	wantTrials := sp.Trials - sp.BatchSize // every batch but the torn last one

	for cut := lastStart; cut < len(data); cut++ {
		snap, truncated := snapshotOfTruncated(t, *sp, data, cut)
		if got := len(snap.Trials); got != wantTrials {
			t.Fatalf("cut %d/%d: snapshot has %d trials, want %d", cut, len(data), got, wantTrials)
		}
		wantTruncated := cut > lastStart // zero bytes of the line = clean shorter transcript
		if truncated != wantTruncated {
			t.Fatalf("cut %d/%d: truncated=%v, want %v", cut, len(data), truncated, wantTruncated)
		}
		if snap.Algorithm != search.AlgLCS || snap.Seed != sp.Seed || snap.Budget != sp.Trials {
			t.Fatalf("cut %d: snapshot header %s/%d/%d mangled", cut, snap.Algorithm, snap.Seed, snap.Budget)
		}
	}
}

// TestTornLineResumesBitIdentically resumes from a mid-line truncation
// — the worst crash point: partial batch bytes on disk — and requires
// the resumed study to replay the dropped batch and finish with a
// history bit-identical to the uninterrupted reference.
func TestTornLineResumesBitIdentically(t *testing.T) {
	ref, data, sp := tornStudy(t)

	body := data[:len(data)-1]
	lastStart := bytes.LastIndexByte(body, '\n') + 1
	cut := lastStart + (len(data)-lastStart)/2 // half the final line survives
	snap, truncated := snapshotOfTruncated(t, *sp, data, cut)
	if !truncated {
		t.Fatal("mid-line cut not reported as truncated")
	}

	cs := &core.Study{
		Workloads: sp.Workloads,
		Objective: core.PerfPerTDP,
		Algorithm: search.AlgLCS,
		Trials:    sp.Trials,
		Seed:      sp.Seed,
	}
	res, err := cs.Run(context.Background(),
		core.WithBatchSize(sp.BatchSize), core.WithParallelism(2), core.WithResume(snap))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Search.History) != len(ref.Search.History) {
		t.Fatalf("resumed history has %d trials, want %d", len(res.Search.History), len(ref.Search.History))
	}
	for i := range ref.Search.History {
		if !ref.Search.History[i].Equal(res.Search.History[i]) {
			t.Fatalf("trial %d differs after torn-line resume:\n  want %+v\n  got  %+v",
				i, ref.Search.History[i], res.Search.History[i])
		}
	}
	if !ref.Search.Best.Equal(res.Search.Best) {
		t.Fatal("best trial differs after torn-line resume")
	}
}
