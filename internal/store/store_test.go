package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fast/internal/arch"
	"fast/internal/search"
)

func testSpec(tenant, id string) Spec {
	return Spec{
		Tenant:    tenant,
		ID:        id,
		Workloads: []string{"efficientnet-b0"},
		Objective: "perf-per-tdp",
		Algorithm: "lcs",
		Trials:    24,
		Seed:      7,
		Created:   "2026-08-07T00:00:00Z",
	}
}

// trial fabricates a deterministic trial for transcript tests.
func trial(i int) search.Trial {
	var idx [arch.NumParams]int
	idx[0] = i
	idx[3] = 2 * i
	return search.Trial{
		Index: idx,
		Evaluation: search.Evaluation{
			Value:    float64(i) + 0.0625,
			Feasible: i%3 != 0,
		},
	}
}

func TestCreateGetRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sp := testSpec("acme", "run-001")
	s, err := st.Create(sp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Create(sp); !errors.Is(err, ErrExists) {
		t.Fatalf("second Create = %v, want ErrExists", err)
	}

	got, err := st.Get("acme", "run-001")
	if err != nil {
		t.Fatal(err)
	}
	gs := got.Spec()
	if gs.Tenant != "acme" || gs.ID != "run-001" || gs.Trials != 24 || gs.Seed != 7 ||
		gs.Objective != "perf-per-tdp" || gs.FormatVersion != FormatVersion {
		t.Errorf("round-tripped spec = %+v", gs)
	}
	if _, err := st.Get("acme", "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing = %v, want ErrNotFound", err)
	}

	status, err := s.Status()
	if err != nil {
		t.Fatal(err)
	}
	if status.State != StateQueued || status.TrialsTarget != 24 {
		t.Errorf("initial status = %+v, want queued with target 24", status)
	}
	status.State = StateRunning
	status.TrialsDone = 8
	status.Updated = "2026-08-07T00:01:00Z"
	if err := s.SetStatus(status); err != nil {
		t.Fatal(err)
	}
	re, err := got.Status()
	if err != nil {
		t.Fatal(err)
	}
	if re != status {
		t.Errorf("status round trip: %+v != %+v", re, status)
	}
}

func TestNamesAreSanitized(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "..", "../escape", "a/b", "a.b", "x y", strings.Repeat("a", 65)} {
		if _, err := st.Create(testSpec(bad, "ok")); err == nil {
			t.Errorf("tenant %q accepted", bad)
		}
		if _, err := st.Create(testSpec("ok", bad)); err == nil {
			t.Errorf("id %q accepted", bad)
		}
		if _, err := st.Get(bad, "ok"); err == nil || errors.Is(err, ErrNotFound) {
			t.Errorf("Get with tenant %q must fail validation, got %v", bad, err)
		}
	}
}

func TestTranscriptRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := st.Create(testSpec("acme", "tr"))
	if err != nil {
		t.Fatal(err)
	}

	want := search.Snapshot{Algorithm: search.AlgLCS, Seed: 7, Budget: 24}
	if err := s.BeginTranscript(search.AlgLCS, 7, 24); err != nil {
		t.Fatal(err)
	}
	for _, batch := range [][]search.Trial{
		{trial(1), trial(2), trial(3)},
		{trial(4), trial(5)},
	} {
		want.Append(batch)
		if _, err := s.AppendBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.CloseTranscript(); err != nil {
		t.Fatal(err)
	}

	// A fresh handle (fresh process) sees the identical snapshot.
	re, err := st.Get("acme", "tr")
	if err != nil {
		t.Fatal(err)
	}
	snap, truncated, err := re.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if truncated {
		t.Error("clean transcript reported truncated")
	}
	if snap.Algorithm != want.Algorithm || snap.Seed != want.Seed || snap.Budget != want.Budget {
		t.Fatalf("snapshot header = %s/%d/%d", snap.Algorithm, snap.Seed, snap.Budget)
	}
	if len(snap.AskSizes) != 2 || snap.AskSizes[0] != 3 || snap.AskSizes[1] != 2 {
		t.Fatalf("ask sizes = %v", snap.AskSizes)
	}
	for i := range want.Trials {
		if !snap.Trials[i].Equal(want.Trials[i]) {
			t.Fatalf("trial %d differs after round trip", i)
		}
	}

	// Resume appends: reopen with matching header and extend.
	if err := re.BeginTranscript(search.AlgLCS, 7, 24); err != nil {
		t.Fatal(err)
	}
	if _, err := re.AppendBatch([]search.Trial{trial(6)}); err != nil {
		t.Fatal(err)
	}
	re.CloseTranscript()
	snap2, _, err := re.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap2.Trials) != 6 || len(snap2.AskSizes) != 3 {
		t.Fatalf("extended transcript has %d trials in %d batches", len(snap2.Trials), len(snap2.AskSizes))
	}

	// A mismatched header (different study parameters) must refuse.
	if err := re.BeginTranscript(search.AlgLCS, 8, 24); err == nil {
		t.Error("BeginTranscript with mismatched seed must fail")
	}
}

func TestEmptyTranscript(t *testing.T) {
	st, _ := Open(t.TempDir())
	s, err := st.Create(testSpec("acme", "fresh"))
	if err != nil {
		t.Fatal(err)
	}
	snap, truncated, err := s.Snapshot()
	if err != nil || truncated {
		t.Fatalf("fresh study Snapshot = %v, truncated %v", err, truncated)
	}
	if len(snap.Trials) != 0 {
		t.Errorf("fresh study has %d trials", len(snap.Trials))
	}
}

func TestTornTailIsDropped(t *testing.T) {
	st, _ := Open(t.TempDir())
	s, err := st.Create(testSpec("acme", "torn"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.BeginTranscript(search.AlgRandom, 7, 24); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendBatch([]search.Trial{trial(1), trial(2)}); err != nil {
		t.Fatal(err)
	}
	s.CloseTranscript()

	path := filepath.Join(s.Dir(), "transcript.jsonl")
	for _, tail := range []string{
		`{"trials":[{"index":[3`,       // torn mid-JSON
		`{"trials":[{"index":[3,0,0,0`, // torn elsewhere
		`{"trials":[]}`,                // complete-looking but no newline
	} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, tail...), 0o644); err != nil {
			t.Fatal(err)
		}
		snap, truncated, err := s.Snapshot()
		if err != nil {
			t.Fatalf("tail %q: %v", tail, err)
		}
		if !truncated {
			t.Errorf("tail %q: not reported truncated", tail)
		}
		if len(snap.Trials) != 2 {
			t.Errorf("tail %q: snapshot has %d trials, want the 2 durable ones", tail, len(snap.Trials))
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMidFileCorruptionIsFatal(t *testing.T) {
	st, _ := Open(t.TempDir())
	s, err := st.Create(testSpec("acme", "corrupt"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.BeginTranscript(search.AlgRandom, 7, 24); err != nil {
		t.Fatal(err)
	}
	s.AppendBatch([]search.Trial{trial(1)})
	s.AppendBatch([]search.Trial{trial(2)})
	s.CloseTranscript()

	path := filepath.Join(s.Dir(), "transcript.jsonl")
	data, _ := os.ReadFile(path)
	mangled := strings.Replace(string(data), `"trials"`, `"trails"`, 1) // first batch line
	if err := os.WriteFile(path, []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Snapshot(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-file corruption: %v, want ErrCorrupt", err)
	}
}

func TestVersionMismatch(t *testing.T) {
	st, _ := Open(t.TempDir())
	s, err := st.Create(testSpec("acme", "ver"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.BeginTranscript(search.AlgRandom, 7, 24); err != nil {
		t.Fatal(err)
	}
	s.AppendBatch([]search.Trial{trial(1)})
	s.CloseTranscript()

	// Future transcript version.
	tpath := filepath.Join(s.Dir(), "transcript.jsonl")
	data, _ := os.ReadFile(tpath)
	future := strings.Replace(string(data), `"version":1`, `"version":99`, 1)
	os.WriteFile(tpath, []byte(future), 0o644)
	if _, _, err := s.Snapshot(); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("future transcript: %v, want ErrVersionMismatch", err)
	}

	// Future spec version.
	spath := filepath.Join(s.Dir(), "spec.json")
	sdata, _ := os.ReadFile(spath)
	sfuture := strings.Replace(string(sdata), `"format_version":1`, `"format_version":99`, 1)
	os.WriteFile(spath, []byte(sfuture), 0o644)
	if _, err := st.Get("acme", "ver"); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("future spec: %v, want ErrVersionMismatch", err)
	}
}

func TestListSortedAndResilient(t *testing.T) {
	st, _ := Open(t.TempDir())
	for _, pair := range [][2]string{{"zeta", "a"}, {"acme", "b"}, {"acme", "a"}} {
		if _, err := st.Create(testSpec(pair[0], pair[1])); err != nil {
			t.Fatal(err)
		}
	}
	// One broken study must not hide the others.
	bad := filepath.Join(st.Root(), "acme", "broken")
	os.MkdirAll(bad, 0o755)
	os.WriteFile(filepath.Join(bad, "spec.json"), []byte("not json"), 0o644)

	studies, err := st.List()
	if err == nil {
		t.Error("List with a corrupt study must report it")
	}
	var got []string
	for _, s := range studies {
		got = append(got, s.Spec().Tenant+"/"+s.Spec().ID)
	}
	want := []string{"acme/a", "acme/b", "zeta/a"}
	if len(got) != len(want) {
		t.Fatalf("List = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("List = %v, want %v", got, want)
		}
	}
}

// TestSnapshotRestores closes the loop with the search layer: a stored
// transcript of a real optimizer restores into a working optimizer.
func TestSnapshotRestores(t *testing.T) {
	st, _ := Open(t.TempDir())
	s, err := st.Create(testSpec("acme", "restore"))
	if err != nil {
		t.Fatal(err)
	}
	opt := search.New(search.AlgLCS, 7, 24)
	if err := s.BeginTranscript(search.AlgLCS, 7, 24); err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 3; b++ {
		asked := opt.Ask(8)
		batch := make([]search.Trial, len(asked))
		for i, idx := range asked {
			batch[i] = search.Trial{Index: idx, Evaluation: search.Evaluation{Value: float64(i), Feasible: true}}
		}
		opt.Tell(batch)
		if _, err := s.AppendBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	s.CloseTranscript()

	snap, _, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := search.Restore(snap)
	if err != nil {
		t.Fatalf("stored transcript does not restore: %v", err)
	}
	a, b := opt.(search.Snapshotter).Snapshot(), restored.Snapshot()
	if len(a.Trials) != len(b.Trials) {
		t.Fatal("restored transcript length differs")
	}
	next, orig := restored.Ask(8), opt.Ask(8)
	for i := range next {
		if next[i] != orig[i] {
			t.Fatalf("restored optimizer diverges at proposal %d", i)
		}
	}
}
