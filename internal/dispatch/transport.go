package dispatch

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"
)

// Transport is one framed connection to a worker. Send writes one frame
// line (appending the newline); Recv returns the next frame line
// (newline stripped). Both may be called concurrently with each other;
// Send may be called from multiple goroutines. Close tears the
// connection down (killing the worker process for subprocess
// transports) and unblocks a pending Recv with an error.
type Transport interface {
	Send(line []byte) error
	Recv() ([]byte, error)
	Close() error
}

// Dialer establishes a worker connection for a pool slot. attempt
// counts dials of that slot from 0 (respawns re-dial with increasing
// attempt), which fault-injection wrappers use to derive deterministic
// per-connection fault streams.
type Dialer func(slot, attempt int) (Transport, error)

// pidder is implemented by transports backed by a local process.
type pidder interface{ Pid() int }

// rwTransport frames an arbitrary read/write pair. closer tears down
// the underlying resources (and must unblock the reader).
type rwTransport struct {
	r      *bufio.Reader
	wmu    sync.Mutex
	w      io.Writer
	closer func() error

	closeOnce sync.Once
	closeErr  error
}

func newRWTransport(r io.Reader, w io.Writer, closer func() error) *rwTransport {
	return &rwTransport{r: bufio.NewReaderSize(r, 64<<10), w: w, closer: closer}
}

func (t *rwTransport) Send(line []byte) error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	buf := make([]byte, 0, len(line)+1)
	buf = append(buf, line...)
	buf = append(buf, '\n')
	// One Write call per frame: interleaving-safe on pipes and sockets.
	_, err := t.w.Write(buf)
	return err
}

func (t *rwTransport) Recv() ([]byte, error) {
	line, err := t.r.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	return line[:len(line)-1], nil
}

func (t *rwTransport) Close() error {
	t.closeOnce.Do(func() { t.closeErr = t.closer() })
	return t.closeErr
}

// procTransport runs a worker as a local subprocess and speaks the
// protocol over its stdin/stdout. stderr passes through to this
// process's stderr so worker logs land in the operator's terminal.
type procTransport struct {
	*rwTransport
	cmd *exec.Cmd
}

func (t *procTransport) Pid() int { return t.cmd.Process.Pid }

// CommandDialer spawns one worker subprocess per dial, running argv
// (typically a fast-worker binary). Close kills the process.
func CommandDialer(argv []string) Dialer {
	return func(slot, attempt int) (Transport, error) {
		if len(argv) == 0 {
			return nil, fmt.Errorf("dispatch: empty worker command")
		}
		cmd := exec.Command(argv[0], argv[1:]...)
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return nil, err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return nil, err
		}
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		closer := func() error {
			stdin.Close()      //nolint:errcheck // best-effort EOF first
			cmd.Process.Kill() //nolint:errcheck // may already be gone
			return cmd.Wait()  //nolint:errcheck // reap; error expected after Kill
		}
		return &procTransport{rwTransport: newRWTransport(stdout, stdin, closer), cmd: cmd}, nil
	}
}

// ResolveWorkerBin locates the fast-worker binary for subprocess
// pools: an explicit path wins, then a fast-worker next to the current
// executable (the common install layout), then $PATH.
func ResolveWorkerBin(explicit string) (string, error) {
	if explicit != "" {
		return explicit, nil
	}
	if exe, err := os.Executable(); err == nil {
		cand := filepath.Join(filepath.Dir(exe), "fast-worker")
		if st, err := os.Stat(cand); err == nil && !st.IsDir() {
			return cand, nil
		}
	}
	if p, err := exec.LookPath("fast-worker"); err == nil {
		return p, nil
	}
	return "", fmt.Errorf("dispatch: fast-worker binary not found (pass -worker-bin, or install fast-worker next to this binary or on PATH)")
}

// tcpDialTimeout bounds one connection attempt to a remote worker.
const tcpDialTimeout = 5 * time.Second

// TCPDialer connects to a fast-worker listening on addr
// (fast-worker -listen host:port).
func TCPDialer(addr string) Dialer {
	return func(slot, attempt int) (Transport, error) {
		conn, err := net.DialTimeout("tcp", addr, tcpDialTimeout)
		if err != nil {
			return nil, err
		}
		return newRWTransport(conn, conn, conn.Close), nil
	}
}

// LoopbackDialer serves each dial with an in-process worker over a
// synchronous pipe — the degenerate "remote" evaluator. The tests use
// it to exercise every dispatcher path (routing, retries, hedging,
// chaos) without process or socket overhead; results are identical to
// real workers because both sides run the same ServeConn loop.
func LoopbackDialer() Dialer {
	return func(slot, attempt int) (Transport, error) {
		local, remote := net.Pipe()
		go func() {
			defer remote.Close()
			ServeConn(remote, remote, nil) //nolint:errcheck // worker loop ends with the pipe
		}()
		return newRWTransport(local, local, local.Close), nil
	}
}
