package dispatch_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"fast/internal/dispatch"
	"fast/internal/dispatch/chaos"
)

// workerBin builds cmd/fast-worker once per test process and returns
// the binary path. Subprocess tests are skipped in -short mode.
var workerBinOnce struct {
	sync.Once
	path string
	err  error
}

func workerBin(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("subprocess worker tests skipped in -short mode")
	}
	workerBinOnce.Do(func() {
		dir, err := os.MkdirTemp("", "fast-worker-bin")
		if err != nil {
			workerBinOnce.err = err
			return
		}
		bin := filepath.Join(dir, "fast-worker")
		cmd := exec.Command("go", "build", "-o", bin, "fast/cmd/fast-worker")
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			workerBinOnce.err = err
			os.RemoveAll(dir)
			workerBinOnce.path = string(out)
			return
		}
		workerBinOnce.path = bin
	})
	if workerBinOnce.err != nil {
		t.Fatalf("building fast-worker: %v\n%s", workerBinOnce.err, workerBinOnce.path)
	}
	return workerBinOnce.path
}

// TestSubprocessWorkersDifferential runs the differential against real
// fast-worker subprocesses over stdin/stdout: same transcript, all
// points evaluated out of process.
func TestSubprocessWorkersDifferential(t *testing.T) {
	bin := workerBin(t)
	for _, tc := range studyCases() {
		want := reference(t, tc)
		t.Run(tc.name, func(t *testing.T) {
			opts := fastOpts(2)
			opts.Dialer = nil
			opts.WorkerCmd = []string{bin}
			opts.ChunkTimeout = 60 * time.Second // real processes pay plan-compile time
			p, err := dispatch.New(opts)
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			got := runDispatched(t, tc, p)
			sameResult(t, tc.name, want, got)
			st := p.Stats()
			if st.RemotePoints == 0 || st.DegradedChunks != 0 {
				t.Fatalf("expected fully remote evaluation: %+v", st)
			}
		})
	}
}

// TestSubprocessKillRespawn SIGKILLs a live worker process mid-study:
// the dispatcher must detect the death, respawn the worker within its
// budget, re-dispatch the lost chunk, and still produce the
// bit-identical result.
func TestSubprocessKillRespawn(t *testing.T) {
	bin := workerBin(t)
	tc := studyCases()[0]
	want := reference(t, tc)

	opts := fastOpts(2)
	opts.Dialer = nil
	opts.WorkerCmd = []string{bin}
	opts.ChunkTimeout = 60 * time.Second
	p, err := dispatch.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Assassin: as soon as a worker has done remote work, kill it.
	killed := make(chan int, 1)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
			}
			st := p.Stats()
			if st.RemoteChunks == 0 {
				continue
			}
			for _, w := range st.PerWorker {
				if w.Live && w.Pid > 0 {
					syscall.Kill(w.Pid, syscall.SIGKILL) //nolint:errcheck // the kill is the test
					select {
					case killed <- w.Pid:
					default:
					}
					return
				}
			}
		}
	}()

	got := runDispatched(t, tc, p)
	sameResult(t, "kill-respawn", want, got)
	select {
	case pid := <-killed:
		t.Logf("killed worker pid %d mid-study", pid)
	default:
		t.Fatal("assassin never found a live worker to kill")
	}
	// The death must have been noticed: either the worker respawned, or
	// the remaining worker absorbed the rest of the study.
	st := p.Stats()
	t.Logf("kill-respawn stats: %+v", st)
	if st.Respawns == 0 && st.LiveWorkers == len(st.PerWorker) {
		t.Fatalf("worker kill left no trace in the pool: %+v", st)
	}
}

// TestSubprocessChaosMatrix is the full chaos matrix against real
// subprocess workers — expensive, so it only runs when the CI chaos job
// (or a developer) opts in via FAST_DISPATCH_SUBPROC=1.
func TestSubprocessChaosMatrix(t *testing.T) {
	if os.Getenv("FAST_DISPATCH_SUBPROC") == "" {
		t.Skip("set FAST_DISPATCH_SUBPROC=1 to run the subprocess chaos matrix")
	}
	bin := workerBin(t)
	tc := studyCases()[0]
	want := reference(t, tc)
	for _, plan := range chaos.Plans() {
		plan := plan
		t.Run(plan.Name, func(t *testing.T) {
			opts := fastOpts(2)
			opts.Dialer = nil
			opts.WorkerCmd = []string{bin}
			opts.ChunkTimeout = 60 * time.Second
			opts.WrapDialer = plan.Wrap
			p, err := dispatch.New(opts)
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			got := runDispatched(t, tc, p)
			sameResult(t, plan.Name, want, got)
			t.Logf("plan %s: %+v", plan.Name, p.Stats())
		})
	}
}
