package dispatch

import (
	"encoding/json"

	"fast/internal/arch"
	"fast/internal/search"
)

// The wire protocol is newline-delimited JSON, one frame per line, both
// directions (the uPIMulator-style cosim idiom: a subprocess or socket
// peer that is just a read-line / write-line loop). Frames are tiny —
// a chunk is at most maxObjectiveChunk index vectors, a reply the same
// number of Evaluations — so there is no framing beyond the newline.
//
// Dispatcher → worker:
//
//	{"type":"spec","spec_fp":h,"spec":{...}}   register an eval spec
//	{"type":"eval","id":n,"spec_fp":h,"idxs":[[...],...]}
//	{"type":"ping","id":n}                     liveness probe
//
// Worker → dispatcher:
//
//	{"type":"result","id":n,"evals":[{...},...]}
//	{"type":"error","id":n,"err":"..."}        id 0 = connection-level
//	{"type":"pong","id":n}
//
// Bit-identity over this wire needs no quantization care: Evaluation
// carries float64s, and encoding/json's shortest-representation float
// encoding round-trips every finite float64 exactly.
const (
	frameSpec   = "spec"
	frameEval   = "eval"
	framePing   = "ping"
	frameResult = "result"
	frameError  = "error"
	framePong   = "pong"
)

// frame is one protocol message; unused fields stay empty on the wire.
type frame struct {
	Type string `json:"type"`
	// ID correlates an eval/ping with its reply. IDs are unique per
	// dispatcher process; replies carrying an ID the dispatcher no
	// longer waits on (hedged duplicates, post-timeout stragglers) are
	// discarded by the routing layer.
	ID uint64 `json:"id,omitempty"`
	// SpecFP identifies the eval spec (core.FingerprintSpec of Spec).
	SpecFP string `json:"spec_fp,omitempty"`
	// Spec is the marshaled core.EvalSpec of a spec frame, verbatim, so
	// the worker can verify SpecFP over the exact received bytes.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Idxs are the chunk's hyperparameter index vectors.
	Idxs [][arch.NumParams]int `json:"idxs,omitempty"`
	// Evals is the result vector, positionally aligned with Idxs.
	Evals []search.Evaluation `json:"evals,omitempty"`
	// Err describes a worker-side failure of this request.
	Err string `json:"err,omitempty"`
}

// marshalFrame renders a frame as one line (no trailing newline; the
// transport appends it).
func marshalFrame(f frame) ([]byte, error) { return json.Marshal(f) }

// parseReply decodes one received frame line.
func parseReply(line []byte) (frame, error) {
	var f frame
	err := json.Unmarshal(line, &f)
	return f, err
}
