package dispatch

import (
	"fmt"

	"fast/internal/obsv"
)

// Stats is a point-in-time snapshot of the pool's dispatch counters.
type Stats struct {
	// Workers is the slot count; LiveWorkers how many are currently
	// connected and not retired.
	Workers     int `json:"workers"`
	LiveWorkers int `json:"live_workers"`
	// RemoteChunks / RemotePoints count work completed remotely.
	RemoteChunks int64 `json:"remote_chunks"`
	RemotePoints int64 `json:"remote_points"`
	// Retries counts dispatch rounds after the first; Hedges speculative
	// re-dispatches; Duplicates discarded late/duplicate replies;
	// Timeouts chunk-deadline expiries.
	Retries    int64 `json:"retries"`
	Hedges     int64 `json:"hedges"`
	Duplicates int64 `json:"duplicates"`
	Timeouts   int64 `json:"timeouts"`
	// Respawns counts successful worker re-dials; DialFails failed dial
	// attempts; Corrupt replies that did not parse (each kills its
	// connection).
	Respawns  int64 `json:"respawns"`
	DialFails int64 `json:"dial_fails"`
	Corrupt   int64 `json:"corrupt"`
	// DegradedChunks counts chunks that fell back to in-process
	// evaluation (pool exhausted or out of attempts). Nonzero means the
	// study completed in degraded mode.
	DegradedChunks int64 `json:"degraded_chunks"`
	// InFlight is the number of chunks currently being dispatched.
	InFlight int64 `json:"in_flight"`
	// PerWorker breaks activity down by slot.
	PerWorker []WorkerStats `json:"per_worker"`
}

// WorkerStats is one slot's activity snapshot.
type WorkerStats struct {
	Slot int `json:"slot"`
	// Pid is the worker's process ID (0 for TCP/loopback workers or
	// while disconnected).
	Pid int `json:"pid,omitempty"`
	// Live reports whether the slot currently holds a connection.
	Live bool `json:"live"`
	// Trials is the number of points this slot evaluated.
	Trials int64 `json:"trials"`
	// Respawns is how many times this slot's worker was re-dialed.
	Respawns int64 `json:"respawns"`
}

// Stats snapshots the pool's counters.
func (p *Pool) Stats() Stats {
	st := Stats{
		Workers:        len(p.slots),
		RemoteChunks:   p.mRemoteChunks.Load(),
		RemotePoints:   p.mRemotePoints.Load(),
		Retries:        p.mRetries.Load(),
		Hedges:         p.mHedges.Load(),
		Duplicates:     p.mDuplicates.Load(),
		Timeouts:       p.mTimeouts.Load(),
		Respawns:       p.mRespawns.Load(),
		DialFails:      p.mDialFails.Load(),
		Corrupt:        p.mCorrupt.Load(),
		DegradedChunks: p.mDegraded.Load(),
		InFlight:       p.mInFlight.Load(),
	}
	for _, s := range p.slots {
		s.mu.Lock()
		ws := WorkerStats{
			Slot:     s.id,
			Pid:      s.pid,
			Live:     s.tr != nil && !s.retired,
			Trials:   s.trials.Load(),
			Respawns: s.respawns.Load(),
		}
		s.mu.Unlock()
		if ws.Live {
			st.LiveWorkers++
		}
		st.PerWorker = append(st.PerWorker, ws)
	}
	return st
}

// RegisterMetrics exposes the pool's counters on r (surfaced at
// /debug/vars by fast-serve). Names are stable monitoring API:
//
//	fast_dispatch_workers            slot count (gauge)
//	fast_dispatch_live_workers       connected slots (gauge)
//	fast_dispatch_remote_chunks      chunks completed remotely
//	fast_dispatch_remote_points      points evaluated remotely
//	fast_dispatch_retries            dispatch rounds after the first
//	fast_dispatch_hedges             speculative re-dispatches
//	fast_dispatch_duplicates         late/duplicate replies discarded
//	fast_dispatch_timeouts           chunk-deadline expiries
//	fast_dispatch_respawns           worker re-dials that succeeded
//	fast_dispatch_dial_fails         worker dial attempts that failed
//	fast_dispatch_corrupt_replies    unparsable replies (connection-fatal)
//	fast_dispatch_degraded_chunks    chunks evaluated in-process as fallback
//	fast_dispatch_in_flight          chunks currently dispatching (gauge)
//	fast_dispatch_worker_trials{N}   points evaluated by slot N
func (p *Pool) RegisterMetrics(r *obsv.Registry) {
	gauge := func(name, help string, f func() float64) { r.NewFunc(name, help, f) }
	gauge("fast_dispatch_workers", "dispatch worker slot count", func() float64 { return float64(len(p.slots)) })
	gauge("fast_dispatch_live_workers", "dispatch worker slots currently connected", func() float64 {
		n := 0
		for _, s := range p.slots {
			s.mu.Lock()
			if s.tr != nil && !s.retired {
				n++
			}
			s.mu.Unlock()
		}
		return float64(n)
	})
	gauge("fast_dispatch_remote_chunks", "evaluation chunks completed remotely", func() float64 { return float64(p.mRemoteChunks.Load()) })
	gauge("fast_dispatch_remote_points", "design points evaluated remotely", func() float64 { return float64(p.mRemotePoints.Load()) })
	gauge("fast_dispatch_retries", "chunk dispatch rounds after the first", func() float64 { return float64(p.mRetries.Load()) })
	gauge("fast_dispatch_hedges", "speculative straggler re-dispatches", func() float64 { return float64(p.mHedges.Load()) })
	gauge("fast_dispatch_duplicates", "late or duplicate worker replies discarded", func() float64 { return float64(p.mDuplicates.Load()) })
	gauge("fast_dispatch_timeouts", "chunk deadline expiries", func() float64 { return float64(p.mTimeouts.Load()) })
	gauge("fast_dispatch_respawns", "worker respawns after connection loss", func() float64 { return float64(p.mRespawns.Load()) })
	gauge("fast_dispatch_dial_fails", "failed worker dial attempts", func() float64 { return float64(p.mDialFails.Load()) })
	gauge("fast_dispatch_corrupt_replies", "unparsable worker replies (connection-fatal)", func() float64 { return float64(p.mCorrupt.Load()) })
	gauge("fast_dispatch_degraded_chunks", "chunks that fell back to in-process evaluation", func() float64 { return float64(p.mDegraded.Load()) })
	gauge("fast_dispatch_in_flight", "chunks currently being dispatched", func() float64 { return float64(p.mInFlight.Load()) })
	for _, s := range p.slots {
		s := s
		gauge(fmt.Sprintf("fast_dispatch_worker_trials{slot=%d}", s.id),
			fmt.Sprintf("design points evaluated by worker slot %d", s.id),
			func() float64 { return float64(s.trials.Load()) })
	}
}
