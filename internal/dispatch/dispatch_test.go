package dispatch_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"fast/internal/core"
	"fast/internal/dispatch"
	"fast/internal/dispatch/chaos"
	"fast/internal/search"
)

// The differential contract under test: a study dispatched to remote
// workers — any count, any fault plan — produces a StudyResult
// bit-identical to the in-process run. History, best design, and
// Pareto front all come from the optimizer transcript, so if any fault
// leaked into evaluation or fold order, these comparisons break.

type studyCase struct {
	name  string
	study func() *core.Study
}

func studyCases() []studyCase {
	return []studyCase{
		{"scalar-lcs", func() *core.Study {
			return &core.Study{
				Workloads: []string{"mobilenetv2"},
				Objective: core.PerfPerTDP,
				Algorithm: search.AlgLCS,
				Trials:    32,
				Seed:      7,
			}
		}},
		{"multi-nsga2", func() *core.Study {
			return &core.Study{
				Workloads:  []string{"mobilenetv2"},
				Objectives: []core.ObjectiveKind{core.PerfPerTDP, core.Area},
				Algorithm:  search.AlgNSGA2,
				Trials:     32,
				Seed:       7,
				FrontCap:   8,
			}
		}},
	}
}

// refMu guards refResults: one in-process reference run per study
// shape, shared by every differential subtest.
var (
	refMu      sync.Mutex
	refResults = map[string]*core.StudyResult{}
)

func reference(t *testing.T, tc studyCase) *core.StudyResult {
	t.Helper()
	refMu.Lock()
	defer refMu.Unlock()
	if r, ok := refResults[tc.name]; ok {
		return r
	}
	r, err := tc.study().Run(context.Background(), core.WithParallelism(4), core.WithBatchSize(16))
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	refResults[tc.name] = r
	return r
}

func runDispatched(t *testing.T, tc studyCase, p *dispatch.Pool) *core.StudyResult {
	t.Helper()
	got, err := tc.study().Run(context.Background(),
		core.WithParallelism(4), core.WithBatchSize(16), core.WithDispatch(p.Dispatch()))
	if err != nil {
		t.Fatalf("dispatched run: %v", err)
	}
	return got
}

// sameResult asserts bit-identity of everything deterministic in a
// study result: the full trial history in tell order, the best trial
// and decoded design, and the Pareto front's indices and values.
func sameResult(t *testing.T, label string, want, got *core.StudyResult) {
	t.Helper()
	if len(want.Search.History) != len(got.Search.History) {
		t.Fatalf("%s: history length %d, want %d", label, len(got.Search.History), len(want.Search.History))
	}
	for i := range want.Search.History {
		if !want.Search.History[i].Equal(got.Search.History[i]) {
			t.Fatalf("%s: trial %d differs:\n  want %+v\n  got  %+v",
				label, i, want.Search.History[i], got.Search.History[i])
		}
	}
	if !want.Search.Best.Equal(got.Search.Best) {
		t.Fatalf("%s: best trial differs", label)
	}
	if want.BestValue != got.BestValue {
		t.Fatalf("%s: best value %v, want %v", label, got.BestValue, want.BestValue)
	}
	if (want.Best == nil) != (got.Best == nil) {
		t.Fatalf("%s: best design presence differs", label)
	}
	if want.Best != nil && *want.Best != *got.Best {
		t.Fatalf("%s: best design differs", label)
	}
	wf, gf := want.Front(), got.Front()
	if len(wf) != len(gf) {
		t.Fatalf("%s: front size %d, want %d", label, len(gf), len(wf))
	}
	for i := range wf {
		if wf[i].Index != gf[i].Index {
			t.Fatalf("%s: front point %d index differs: %v vs %v", label, i, gf[i].Index, wf[i].Index)
		}
		for k := range wf[i].Values {
			if wf[i].Values[k] != gf[i].Values[k] {
				t.Fatalf("%s: front point %d value %d differs: %v vs %v",
					label, i, k, gf[i].Values[k], wf[i].Values[k])
			}
		}
	}
}

// fastOpts returns pool options tuned for test speed: quick hedges,
// short deadlines, generous respawn budget (chaos kills a lot).
func fastOpts(workers int) dispatch.Options {
	return dispatch.Options{
		Workers:        workers,
		Dialer:         dispatch.LoopbackDialer(),
		ChunkTimeout:   2 * time.Second,
		HedgeAfter:     100 * time.Millisecond,
		RetryBaseDelay: 10 * time.Millisecond,
		RetryMaxDelay:  50 * time.Millisecond,
		MaxAttempts:    6,
		HeartbeatEvery: 50 * time.Millisecond,
		HeartbeatMiss:  500 * time.Millisecond,
		RespawnBudget:  200,
		Seed:           1,
	}
}

// TestDifferentialWorkerCounts proves the headline invariant on clean
// connections: 1, 2, and 4 workers all reproduce the in-process study
// bit-for-bit, for scalar and multi-objective optimizers, with every
// chunk actually evaluated remotely.
func TestDifferentialWorkerCounts(t *testing.T) {
	for _, tc := range studyCases() {
		want := reference(t, tc)
		for _, workers := range []int{1, 2, 4} {
			t.Run(tc.name+"/workers"+string(rune('0'+workers)), func(t *testing.T) {
				p, err := dispatch.New(fastOpts(workers))
				if err != nil {
					t.Fatal(err)
				}
				defer p.Close()
				got := runDispatched(t, tc, p)
				sameResult(t, tc.name, want, got)
				st := p.Stats()
				if st.RemoteChunks == 0 || st.RemotePoints == 0 {
					t.Fatalf("no remote evaluation happened: %+v", st)
				}
				if st.DegradedChunks != 0 {
					t.Fatalf("clean pool degraded %d chunks: %+v", st.DegradedChunks, st)
				}
			})
		}
	}
}

// TestDifferentialChaos is the fault-plan differential: every chaos
// plan — delays, drops, duplicates, corruption, mid-send kills, connect
// refusals, and all of them at once — perturbs scheduling, retries,
// hedging, and respawns, and the study result must not move a bit.
func TestDifferentialChaos(t *testing.T) {
	for _, tc := range studyCases() {
		want := reference(t, tc)
		for _, plan := range chaos.Plans() {
			plan := plan
			t.Run(tc.name+"/"+plan.Name, func(t *testing.T) {
				opts := fastOpts(2)
				opts.WrapDialer = plan.Wrap
				p, err := dispatch.New(opts)
				if err != nil {
					t.Fatal(err)
				}
				defer p.Close()
				got := runDispatched(t, tc, p)
				sameResult(t, tc.name+"/"+plan.Name, want, got)
				st := p.Stats()
				t.Logf("plan %s: %+v", plan.Name, st)
				if plan.ConnectRefusals > 0 && st.DialFails < int64(plan.ConnectRefusals) {
					t.Fatalf("refusal plan saw %d dial failures, want >= %d", st.DialFails, plan.ConnectRefusals)
				}
				if plan.CorruptProb >= 0.05 && st.Corrupt == 0 {
					t.Fatalf("corrupt plan injected no observed corruption: %+v", st)
				}
			})
		}
	}
}

// dieAfterDialer wraps the loopback so each connection dies after n
// received frames, with a cap on total successful dials — the pool
// loses every worker mid-study and must degrade to in-process
// evaluation rather than stall or fail.
type countingTransport struct {
	dispatch.Transport
	left int
}

func (t *countingTransport) Recv() ([]byte, error) {
	if t.left <= 0 {
		t.Transport.Close() //nolint:errcheck // simulated death
		return nil, errors.New("test: connection expired")
	}
	t.left--
	return t.Transport.Recv()
}

// TestTotalPoolLossDegrades kills every connection after a few frames
// with no respawn budget: the pool dies mid-study, and the study must
// complete bit-identically via the in-process fallback, reporting
// degraded chunks.
func TestTotalPoolLossDegrades(t *testing.T) {
	tc := studyCases()[0]
	want := reference(t, tc)

	inner := dispatch.LoopbackDialer()
	opts := fastOpts(2)
	opts.RespawnBudget = -1 // no respawns: first death retires the slot
	opts.WrapDialer = func(d dispatch.Dialer) dispatch.Dialer {
		return func(slot, attempt int) (dispatch.Transport, error) {
			tr, err := inner(slot, attempt)
			if err != nil {
				return nil, err
			}
			return &countingTransport{Transport: tr, left: 3}, nil
		}
	}
	p, err := dispatch.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	got := runDispatched(t, tc, p)
	sameResult(t, "total-pool-loss", want, got)
	st := p.Stats()
	t.Logf("total-pool-loss: %+v", st)
	if st.DegradedChunks == 0 {
		t.Fatalf("expected degraded chunks after total pool loss: %+v", st)
	}
	if st.LiveWorkers != 0 {
		t.Fatalf("expected all workers retired, got %d live", st.LiveWorkers)
	}
}

// silentTransport connects but never replies; Send succeeds, Recv
// blocks until Close.
type silentTransport struct {
	done chan struct{}
	once sync.Once
}

func (s *silentTransport) Send([]byte) error { return nil }
func (s *silentTransport) Recv() ([]byte, error) {
	<-s.done
	return nil, errors.New("test: closed")
}
func (s *silentTransport) Close() error {
	s.once.Do(func() { close(s.done) })
	return nil
}

// TestHeartbeatReapsSilentWorker connects a worker that never answers:
// the idle-probe heartbeat must detect the silence and kill the
// connection without any study traffic.
func TestHeartbeatReapsSilentWorker(t *testing.T) {
	opts := dispatch.Options{
		Workers: 1,
		Dialer: func(slot, attempt int) (dispatch.Transport, error) {
			return &silentTransport{done: make(chan struct{})}, nil
		},
		HeartbeatEvery: 10 * time.Millisecond,
		HeartbeatMiss:  50 * time.Millisecond,
		RespawnBudget:  -1,
	}
	p, err := dispatch.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st := p.Stats(); st.LiveWorkers == 0 {
			return // reaped and retired via the heartbeat path
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("heartbeat never reaped the silent worker: %+v", p.Stats())
}
