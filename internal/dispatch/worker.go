package dispatch

import (
	"encoding/json"
	"fmt"
	"io"

	"fast/internal/core"
	"fast/internal/search"
)

// ServeConn runs the worker side of the protocol over one connection
// (cmd/fast-worker's stdin/stdout, one TCP connection, or a test pipe)
// until EOF. It is a strictly serial request loop: read a frame,
// execute it, write the reply — so replies never interleave and the
// peer's per-connection capacity is exactly one outstanding evaluation
// (pings excepted, which only arrive while the worker is idle).
//
// Evaluators compile lazily from spec frames and are cached per
// fingerprint for the life of the connection, each backed by the
// process-wide compiled-plan cache — a worker serving many chunks of
// one study pays graph build + plan compile once per (workload, batch).
//
// A cleanly torn final line (the dispatcher died mid-write) ends the
// loop without error, mirroring internal/store's torn-tail semantics;
// any parsable-but-wrong frame earns an error reply instead of killing
// the connection, so one corrupt request cannot take the worker down.
func ServeConn(r io.Reader, w io.Writer, logf func(format string, args ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	tr := newRWTransport(r, w, func() error { return nil })
	evaluators := map[string]search.BatchObjective{}
	reply := func(f frame) error {
		line, err := marshalFrame(f)
		if err != nil {
			return err
		}
		return tr.Send(line)
	}
	for {
		line, err := tr.Recv()
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		var f frame
		if err := json.Unmarshal(line, &f); err != nil {
			logf("level=warn msg=\"bad frame\" err=%q", err)
			if rerr := reply(frame{Type: frameError, Err: fmt.Sprintf("bad frame: %v", err)}); rerr != nil {
				return rerr
			}
			continue
		}
		switch f.Type {
		case frameSpec:
			// Verify the fingerprint over the exact received bytes: a
			// frame that parsed but was corrupted in flight must not
			// poison the evaluator cache under the true spec's key.
			if got := core.FingerprintSpec(f.Spec); got != f.SpecFP {
				if err := reply(frame{Type: frameError, Err: fmt.Sprintf("spec fingerprint mismatch: got %s want %s", got, f.SpecFP)}); err != nil {
					return err
				}
				continue
			}
			if _, ok := evaluators[f.SpecFP]; ok {
				continue
			}
			var sp core.EvalSpec
			if err := json.Unmarshal(f.Spec, &sp); err != nil {
				if rerr := reply(frame{Type: frameError, Err: fmt.Sprintf("bad spec: %v", err)}); rerr != nil {
					return rerr
				}
				continue
			}
			obj, err := core.BuildBatchEvaluator(sp)
			if err != nil {
				if rerr := reply(frame{Type: frameError, Err: fmt.Sprintf("spec rejected: %v", err)}); rerr != nil {
					return rerr
				}
				continue
			}
			evaluators[f.SpecFP] = obj
			logf("level=info msg=\"spec registered\" fp=%.12s workloads=%d", f.SpecFP, len(sp.Workloads))
		case frameEval:
			obj, ok := evaluators[f.SpecFP]
			if !ok {
				// The dispatcher resends specs after a respawn; an
				// unknown fingerprint means this connection never got
				// one (or the spec frame was faulted away) — an
				// addressed error lets it retry elsewhere.
				if err := reply(frame{Type: frameError, ID: f.ID, Err: fmt.Sprintf("unknown spec %.12s", f.SpecFP)}); err != nil {
					return err
				}
				continue
			}
			evals := obj(f.Idxs)
			if err := reply(frame{Type: frameResult, ID: f.ID, Evals: evals}); err != nil {
				return err
			}
		case framePing:
			if err := reply(frame{Type: framePong, ID: f.ID}); err != nil {
				return err
			}
		default:
			if err := reply(frame{Type: frameError, ID: f.ID, Err: fmt.Sprintf("unknown frame type %q", f.Type)}); err != nil {
				return err
			}
		}
	}
}
