// Package dispatch shards trial evaluation across worker processes: the
// Runner's ask-batch chunks (see core.Runner) are shipped to fast-worker
// peers as JSON lines — eval spec fingerprint plus config index vectors
// — evaluated remotely against each worker's own compiled-plan cache,
// and folded back positionally, so the optimizer transcript is
// bit-identical to the in-process path at any worker count, under any
// reply interleaving.
//
// The package is built robustness-first, because remote evaluation
// turns worker crashes, stragglers, torn connections, and duplicate
// replies into everyday events rather than theory:
//
//   - per-chunk attempt deadlines, with capped exponential backoff and
//     seeded-jitter retries on other workers;
//   - hedged re-dispatch of straggler chunks (first reply wins; late
//     and duplicate replies are discarded by ID);
//   - worker health via idle-probe heartbeats plus broken-pipe / exit
//     detection on every read and write;
//   - bounded per-slot respawn budgets, so a crash-looping worker
//     retires instead of flapping forever;
//   - graceful degradation: when the pool is exhausted — every slot
//     retired, or one chunk out of attempts — evaluation falls back to
//     the in-process objective. The study always completes; degraded
//     runs just say so in the stats and logs.
//
// None of this machinery can reach the search trajectory: evaluations
// are deterministic per index vector, replies are folded by position,
// and a retried or hedged chunk re-evaluates to bit-identical values
// wherever it lands. The chaos differential suite (chaos_test.go)
// proves exactly that under every fault plan.
package dispatch

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"fast/internal/arch"
	"fast/internal/core"
	"fast/internal/search"
)

// Options configures a Pool. Exactly one of Workers (+WorkerCmd),
// Connect, or Dialer selects the worker source.
type Options struct {
	// Workers is the subprocess worker count (with WorkerCmd), or the
	// slot count when Dialer is set (default 1).
	Workers int
	// WorkerCmd is the argv spawning one subprocess worker (typically
	// {"/path/to/fast-worker"}).
	WorkerCmd []string
	// Connect lists TCP worker addresses; one slot per address.
	Connect []string
	// Dialer overrides the worker source entirely (tests, loopback).
	Dialer Dialer
	// WrapDialer decorates every slot's dialer (the fault-injection
	// seam; see the chaos subpackage).
	WrapDialer func(Dialer) Dialer

	// ChunkTimeout is the per-attempt deadline: a chunk unanswered this
	// long kills the attempt's workers (presumed wedged) and retries.
	// Default 2m.
	ChunkTimeout time.Duration
	// HedgeAfter is the straggler threshold: a chunk unanswered this
	// long is speculatively re-dispatched to a free worker, first reply
	// wins. 0 defaults to 15s; negative disables hedging.
	HedgeAfter time.Duration
	// RetryBaseDelay / RetryMaxDelay shape the capped exponential
	// backoff between attempts (defaults 100ms / 3s); each delay is
	// jittered by the seeded generator.
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// MaxAttempts bounds dispatch rounds per chunk before the chunk
	// degrades to in-process evaluation. Default 4.
	MaxAttempts int
	// HeartbeatEvery is the idle-probe period (default 10s);
	// HeartbeatMiss is the silence threshold after which an unanswered
	// probe kills the connection (default 30s).
	HeartbeatEvery time.Duration
	HeartbeatMiss  time.Duration
	// RespawnBudget is the per-slot re-dial allowance (failed or
	// successful) after the initial connection; a slot that exhausts it
	// retires. Default 5.
	RespawnBudget int
	// Seed drives the backoff jitter deterministically. Default 1.
	Seed int64
	// Logf receives structured worker lifecycle and degradation lines.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.ChunkTimeout <= 0 {
		o.ChunkTimeout = 2 * time.Minute
	}
	if o.HedgeAfter == 0 {
		o.HedgeAfter = 15 * time.Second
	}
	if o.RetryBaseDelay <= 0 {
		o.RetryBaseDelay = 100 * time.Millisecond
	}
	if o.RetryMaxDelay <= 0 {
		o.RetryMaxDelay = 3 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = 10 * time.Second
	}
	if o.HeartbeatMiss <= 0 {
		o.HeartbeatMiss = 30 * time.Second
	}
	if o.RespawnBudget < 0 {
		o.RespawnBudget = 0
	} else if o.RespawnBudget == 0 {
		o.RespawnBudget = 5
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// outcome is one attempt's terminal report back to its chunk.
type outcome struct {
	id    uint64
	evals []search.Evaluation
	err   error
}

// chunkState is the rendezvous for one chunk's attempts: every reply or
// failure addressed to one of the chunk's request IDs lands on ch;
// done marks the chunk completed so stragglers can be counted as
// discarded duplicates.
type chunkState struct {
	ch   chan outcome
	done atomic.Bool
}

func (ck *chunkState) deliver(o outcome) {
	select {
	case ck.ch <- o:
	default: // chunk gave up long ago; drop
	}
}

// slot is one worker seat: a dialer, the current connection (nil while
// down), and the single outstanding request the protocol allows.
type slot struct {
	id   int
	dial Dialer

	mu       sync.Mutex
	tr       Transport
	pid      int
	specs    map[string]bool // spec fingerprints sent on this connection
	leased   bool
	cur      uint64      // outstanding request ID (0 = none)
	chunk    *chunkState // nil for pings
	pinging  bool
	pingSent time.Time
	lastSeen time.Time
	retired  bool

	trials   atomic.Int64
	respawns atomic.Int64
}

// Pool dispatches evaluation chunks across a set of worker slots. It is
// safe for concurrent use by any number of Runner goroutines.
type Pool struct {
	opts Options

	slots   []*slot
	free    chan *slot
	dead    chan struct{} // closed when every slot has retired
	closing chan struct{} // closed by Close
	live    atomic.Int64
	closed  atomic.Bool
	wg      sync.WaitGroup

	reqID atomic.Uint64

	specMu sync.RWMutex
	specs  map[string][]byte // fp -> marshaled EvalSpec

	jmu    sync.Mutex
	jitter *rand.Rand

	degradedOnce sync.Once

	mRemoteChunks atomic.Int64
	mRemotePoints atomic.Int64
	mRetries      atomic.Int64
	mHedges       atomic.Int64
	mDuplicates   atomic.Int64
	mTimeouts     atomic.Int64
	mRespawns     atomic.Int64
	mDialFails    atomic.Int64
	mCorrupt      atomic.Int64
	mDegraded     atomic.Int64
	mInFlight     atomic.Int64
}

// New starts a pool: every slot dials its worker asynchronously (a slow
// or refusing worker delays nothing but itself) and the heartbeat
// prober begins. Always pair with Close.
func New(opts Options) (*Pool, error) {
	o := opts.withDefaults()
	var dialers []Dialer
	switch {
	case opts.Dialer != nil:
		for i := 0; i < o.Workers; i++ {
			dialers = append(dialers, opts.Dialer)
		}
	case len(opts.Connect) > 0:
		for _, addr := range opts.Connect {
			dialers = append(dialers, TCPDialer(addr))
		}
	case len(opts.WorkerCmd) > 0:
		d := CommandDialer(opts.WorkerCmd)
		for i := 0; i < o.Workers; i++ {
			dialers = append(dialers, d)
		}
	default:
		return nil, fmt.Errorf("dispatch: Options needs a worker source (WorkerCmd, Connect, or Dialer)")
	}
	if o.WrapDialer != nil {
		for i := range dialers {
			dialers[i] = o.WrapDialer(dialers[i])
		}
	}

	p := &Pool{
		opts:    o,
		free:    make(chan *slot, 2*len(dialers)),
		dead:    make(chan struct{}),
		closing: make(chan struct{}),
		specs:   map[string][]byte{},
		jitter:  rand.New(rand.NewSource(o.Seed)),
	}
	for i, d := range dialers {
		p.slots = append(p.slots, &slot{id: i, dial: d})
	}
	p.live.Store(int64(len(p.slots)))
	p.wg.Add(len(p.slots) + 1)
	for _, s := range p.slots {
		go p.manage(s)
	}
	go p.heartbeatLoop()
	return p, nil
}

// Size returns the pool's slot count.
func (p *Pool) Size() int { return len(p.slots) }

// Close tears the pool down: kills every worker connection, stops the
// heartbeat, and waits for slot managers to exit. Chunks dispatched
// concurrently with Close fail over to their in-process fallback.
func (p *Pool) Close() {
	if !p.closed.CompareAndSwap(false, true) {
		return
	}
	close(p.closing)
	for _, s := range p.slots {
		p.killSlot(s, "pool closing")
	}
	p.wg.Wait()
}

// Dispatch adapts the pool to core.WithDispatch: it registers the
// study's eval spec under its content fingerprint and returns a batch
// objective that ships chunks to the pool, keeping the in-process
// objective as the degradation fallback. The Run's context rides along
// into every chunk: per-attempt deadlines are clamped to the context's
// remaining time, and a canceled context stops remote work immediately
// (the Runner abandons the batch, so the placeholder evaluations a
// canceled chunk returns are never told to the optimizer).
func (p *Pool) Dispatch() core.DispatchFunc {
	return func(ctx context.Context, spec core.EvalSpec, local search.BatchObjective) search.BatchObjective {
		raw, err := spec.Marshal()
		if err != nil {
			// An unserializable spec cannot leave the process; evaluate
			// in-process (bit-identical by definition).
			p.opts.Logf("level=error msg=\"eval spec not serializable; dispatch disabled for study\" err=%q", err)
			return local
		}
		fp := core.FingerprintSpec(raw)
		p.specMu.Lock()
		p.specs[fp] = raw
		p.specMu.Unlock()
		return func(idxs [][arch.NumParams]int) []search.Evaluation {
			return p.Do(ctx, fp, idxs, local)
		}
	}
}

// abandoned returns placeholder evaluations for a chunk whose context
// ended. Safe by construction: context doneness is monotone, so the
// Runner — which re-checks ctx after the worker pool drains — discards
// the whole batch untold and the placeholders never reach the
// transcript.
func abandoned(n int) []search.Evaluation {
	return make([]search.Evaluation, n)
}

// attemptTimeout clamps the per-attempt chunk deadline to ctx's
// remaining time; ok=false means the context is already over budget.
func (p *Pool) attemptTimeout(ctx context.Context) (time.Duration, bool) {
	timeout := p.opts.ChunkTimeout
	if dl, ok := ctx.Deadline(); ok {
		// The study deadline bounds scheduling only; evaluations carry no
		// timestamps, so clamping attempts cannot reach the transcript.
		//fast:allow nondetsource study-deadline clamp gates retry scheduling, never evaluation values
		rem := time.Until(dl)
		if rem <= 0 {
			return 0, false
		}
		if rem < timeout {
			timeout = rem
		}
	}
	return timeout, true
}

// Do evaluates one chunk remotely, retrying/hedging across workers, and
// returns exactly one Evaluation per index vector. It never fails: out
// of attempts or out of workers, it falls back to local. A done ctx is
// the one exception — the chunk returns placeholder evaluations that
// the Runner's own cancellation check discards (see abandoned).
func (p *Pool) Do(ctx context.Context, fp string, idxs [][arch.NumParams]int, local search.BatchObjective) []search.Evaluation {
	if len(idxs) == 0 {
		return nil
	}
	if ctx.Err() != nil {
		return abandoned(len(idxs))
	}
	if p.closed.Load() {
		return local(idxs)
	}
	p.mInFlight.Add(1)
	defer p.mInFlight.Add(-1)

	ck := &chunkState{ch: make(chan outcome, 4*p.opts.MaxAttempts+8)}
	defer ck.done.Store(true)
	live := map[uint64]*slot{} // request ID -> slot holding that attempt
	outstanding := 0

	for round := 1; round <= p.opts.MaxAttempts; round++ {
		if round > 1 {
			p.mRetries.Add(1)
			if !p.sleepCtx(ctx, p.backoff(round-1)) {
				if ctx.Err() != nil {
					return abandoned(len(idxs))
				}
				break // pool closing
			}
		}
		timeout, ok := p.attemptTimeout(ctx)
		if !ok {
			return abandoned(len(idxs))
		}
		s := p.acquire()
		if s == nil {
			// Every slot retired (or the pool is closing): the study
			// must still complete, so evaluate in-process from here on.
			p.degradedOnce.Do(func() {
				p.opts.Logf("level=warn msg=\"worker pool exhausted; degrading to in-process evaluation\"")
			})
			p.mDegraded.Add(1)
			return local(idxs)
		}
		id, err := p.sendAttempt(s, ck, fp, idxs)
		if err != nil {
			continue
		}
		live[id] = s
		outstanding++

		hedge := newHedgeTimer(p.opts.HedgeAfter)
		deadline := time.NewTimer(timeout)
		waiting := true
		for waiting {
			// The four-way race below — first reply wins against the
			// hedge and deadline timers and the study's own context — is
			// the robustness mechanism itself. It cannot reach the
			// transcript: whichever attempt answers carries the same
			// deterministic evaluations, and a context win abandons the
			// batch entirely.
			//fast:allow nondetsource first-reply-wins race among attempts of one chunk; all replies carry identical evaluations
			select {
			case <-ctx.Done():
				// Client gone or study deadline passed: stop burning
				// workers on a batch nobody will consume.
				hedge.Stop()
				deadline.Stop()
				return abandoned(len(idxs))
			case o := <-ck.ch:
				if _, mine := live[o.id]; !mine {
					continue // stale attempt from an earlier round
				}
				delete(live, o.id)
				outstanding--
				if o.err == nil && len(o.evals) != len(idxs) {
					o.err = fmt.Errorf("dispatch: short reply: %d evals for %d points", len(o.evals), len(idxs))
				}
				if o.err == nil {
					hedge.Stop()
					deadline.Stop()
					ck.done.Store(true)
					p.mRemoteChunks.Add(1)
					p.mRemotePoints.Add(int64(len(idxs)))
					return o.evals
				}
				if outstanding == 0 {
					waiting = false // every attempt in flight failed; retry now
				}
			case <-hedge.C:
				hedge.fired()
				if s2 := p.tryAcquire(); s2 != nil {
					if id2, err := p.sendAttempt(s2, ck, fp, idxs); err == nil {
						live[id2] = s2
						outstanding++
						p.mHedges.Add(1)
					}
				}
			case <-deadline.C:
				// Past the deadline every outstanding attempt is
				// presumed wedged (or its reply lost): kill those
				// connections — their managers respawn them — and
				// retry on a fresh worker.
				p.mTimeouts.Add(1)
				for _, sl := range live {
					p.killSlot(sl, "chunk deadline")
				}
				waiting = false
			}
		}
		hedge.Stop()
		deadline.Stop()
	}
	p.mDegraded.Add(1)
	p.opts.Logf("level=warn msg=\"chunk degraded to in-process evaluation\" attempts=%d points=%d", p.opts.MaxAttempts, len(idxs))
	return local(idxs)
}

// hedgeTimer wraps the optional speculative-re-dispatch timer; a
// non-positive threshold never fires, and the timer fires at most once
// per round.
type hedgeTimer struct {
	C <-chan time.Time
	t *time.Timer
}

func newHedgeTimer(after time.Duration) *hedgeTimer {
	if after <= 0 {
		return &hedgeTimer{C: nil}
	}
	t := time.NewTimer(after)
	return &hedgeTimer{C: t.C, t: t}
}

func (h *hedgeTimer) fired() { h.C = nil }
func (h *hedgeTimer) Stop() {
	if h.t != nil {
		h.t.Stop()
	}
}

// acquire leases a connected, idle slot, blocking until one frees up;
// nil means the pool is dead (every slot retired) or closing.
func (p *Pool) acquire() *slot {
	for {
		// Blocking on whichever of (free slot, pool death, shutdown)
		// happens first is inherently racy and deliberately so; slot
		// identity never influences evaluation results.
		//fast:allow nondetsource worker availability race; any leased worker returns identical evaluations
		select {
		case s := <-p.free:
			if s.tryLease() {
				return s
			}
		case <-p.dead:
			return nil
		case <-p.closing:
			return nil
		}
	}
}

// tryAcquire leases a free slot without blocking (the hedge path).
func (p *Pool) tryAcquire() *slot {
	for {
		select {
		case s := <-p.free:
			if s.tryLease() {
				return s
			}
		default:
			return nil
		}
	}
}

func (s *slot) tryLease() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.retired || s.tr == nil || s.leased {
		return false
	}
	s.leased = true
	return true
}

// enqueue returns a slot to the free queue (never blocks: the queue is
// sized for duplicate entries, which tryLease filters out).
func (p *Pool) enqueue(s *slot) {
	select {
	case p.free <- s:
	default:
	}
}

// sendAttempt ships one chunk to a leased slot, prefixed by the spec
// frame the first time this connection sees the study. A send failure
// kills the connection (its manager respawns it) and reports the
// attempt failed without consuming a request ID registration.
func (p *Pool) sendAttempt(s *slot, ck *chunkState, fp string, idxs [][arch.NumParams]int) (uint64, error) {
	id := p.reqID.Add(1)
	s.mu.Lock()
	tr := s.tr
	if tr == nil || s.retired {
		s.leased = false
		s.mu.Unlock()
		return 0, errors.New("dispatch: slot connection lost")
	}
	needSpec := !s.specs[fp]
	if needSpec {
		s.specs[fp] = true
	}
	s.cur, s.chunk, s.pinging = id, ck, false
	s.mu.Unlock()

	if needSpec {
		p.specMu.RLock()
		raw := p.specs[fp]
		p.specMu.RUnlock()
		if raw == nil {
			p.clearAttempt(s)
			return 0, fmt.Errorf("dispatch: unregistered spec %.12s", fp)
		}
		line, err := marshalFrame(frame{Type: frameSpec, SpecFP: fp, Spec: raw})
		if err != nil {
			p.clearAttempt(s)
			return 0, err
		}
		if err := tr.Send(line); err != nil {
			p.killSlot(s, "spec send failed")
			return 0, err
		}
	}
	line, err := marshalFrame(frame{Type: frameEval, ID: id, SpecFP: fp, Idxs: idxs})
	if err != nil {
		p.clearAttempt(s)
		return 0, err
	}
	if err := tr.Send(line); err != nil {
		p.killSlot(s, "eval send failed")
		return 0, err
	}
	return id, nil
}

// clearAttempt rolls back a lease after a local (non-transport) send
// failure, returning the slot to the free queue.
func (p *Pool) clearAttempt(s *slot) {
	s.mu.Lock()
	s.cur, s.chunk, s.leased = 0, nil, false
	s.mu.Unlock()
	p.enqueue(s)
}

// killSlot tears down a slot's connection; the slot's manager observes
// the dead transport, fails the in-flight attempt over, and respawns
// within the slot's budget.
func (p *Pool) killSlot(s *slot, why string) {
	s.mu.Lock()
	tr := s.tr
	s.mu.Unlock()
	if tr != nil {
		if !p.closed.Load() {
			p.opts.Logf("level=warn msg=\"killing worker connection\" slot=%d reason=%q", s.id, why)
		}
		tr.Close() //nolint:errcheck // best-effort teardown
	}
}

// manage owns one slot's lifecycle: dial, serve reads until the
// connection dies, fail over the in-flight attempt, respawn within
// budget, retire when the budget is gone or the pool closes.
func (p *Pool) manage(s *slot) {
	defer p.wg.Done()
	budget := p.opts.RespawnBudget
	for attempt := 0; ; attempt++ {
		if p.closed.Load() {
			p.retire(s)
			return
		}
		if attempt > 0 {
			if budget <= 0 {
				p.opts.Logf("level=warn msg=\"worker slot retired\" slot=%d reason=\"respawn budget exhausted\"", s.id)
				p.retire(s)
				return
			}
			budget--
			if !p.sleep(p.backoff(attempt)) {
				p.retire(s)
				return
			}
		}
		tr, err := s.dial(s.id, attempt)
		if err != nil {
			p.mDialFails.Add(1)
			p.opts.Logf("level=warn msg=\"worker dial failed\" slot=%d attempt=%d err=%q", s.id, attempt, err)
			continue
		}
		if attempt > 0 {
			p.mRespawns.Add(1)
			s.respawns.Add(1)
		}
		s.install(tr)
		p.opts.Logf("level=info msg=\"worker up\" slot=%d pid=%d attempt=%d", s.id, s.pidLocked(), attempt)
		p.enqueue(s)
		rerr := p.readLoop(s, tr)
		p.teardown(s, rerr)
		if !p.closed.Load() {
			p.opts.Logf("level=warn msg=\"worker connection lost\" slot=%d err=%q", s.id, rerr)
		}
	}
}

// install publishes a fresh connection on the slot.
func (s *slot) install(tr Transport) {
	s.mu.Lock()
	s.tr = tr
	s.specs = map[string]bool{}
	s.leased, s.cur, s.chunk, s.pinging = false, 0, nil, false
	s.pid = 0
	if pp, ok := tr.(pidder); ok {
		s.pid = pp.Pid()
	}
	//fast:allow nondetsource worker-liveness bookkeeping; timestamps gate respawns, never evaluations
	s.lastSeen = time.Now()
	s.mu.Unlock()
}

func (s *slot) pidLocked() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pid
}

// teardown clears a dead connection and fails the in-flight attempt
// over to its chunk.
func (p *Pool) teardown(s *slot, err error) {
	s.mu.Lock()
	tr := s.tr
	s.tr = nil
	id, ck := s.cur, s.chunk
	s.cur, s.chunk, s.pinging, s.leased = 0, nil, false, false
	s.specs = nil
	s.mu.Unlock()
	if tr != nil {
		tr.Close() //nolint:errcheck // already dead
	}
	if ck != nil && id != 0 {
		ck.deliver(outcome{id: id, err: fmt.Errorf("dispatch: worker died: %w", err)})
	}
}

// retire permanently removes a slot; when the last slot retires the
// pool is dead and acquire unblocks into degradation.
func (p *Pool) retire(s *slot) {
	s.mu.Lock()
	already := s.retired
	s.retired = true
	s.mu.Unlock()
	if already {
		return
	}
	if p.live.Add(-1) == 0 {
		close(p.dead)
	}
}

// readLoop routes one connection's replies until it dies. Every frame
// refreshes the slot's liveness; a frame that does not parse kills the
// connection (line framing can no longer be trusted).
func (p *Pool) readLoop(s *slot, tr Transport) error {
	for {
		line, err := tr.Recv()
		if err != nil {
			return err
		}
		s.touch()
		f, err := parseReply(line)
		if err != nil {
			p.mCorrupt.Add(1)
			return fmt.Errorf("dispatch: corrupt reply: %w", err)
		}
		switch f.Type {
		case framePong:
			s.mu.Lock()
			if s.pinging && f.ID == s.cur {
				s.pinging, s.cur, s.leased = false, 0, false
				s.mu.Unlock()
				p.enqueue(s)
			} else {
				s.mu.Unlock()
			}
		case frameResult, frameError:
			s.mu.Lock()
			if f.ID != 0 && f.ID == s.cur && s.chunk != nil {
				ck := s.chunk
				s.cur, s.chunk, s.leased = 0, nil, false
				s.mu.Unlock()
				o := outcome{id: f.ID}
				if f.Type == frameError {
					o.err = errors.New(f.Err)
				} else {
					o.evals = f.Evals
					s.trials.Add(int64(len(f.Evals)))
				}
				if ck.done.Load() {
					// The chunk completed on another worker first;
					// this straggler's reply only frees the slot.
					p.mDuplicates.Add(1)
				}
				ck.deliver(o)
				p.enqueue(s)
			} else {
				s.mu.Unlock()
				if f.ID != 0 {
					p.mDuplicates.Add(1) // duplicated or long-retired reply
				} else if f.Type == frameError {
					p.opts.Logf("level=warn msg=\"worker error\" slot=%d err=%q", s.id, f.Err)
				}
			}
		default:
			// Unknown reply type: tolerated for forward compatibility.
			p.opts.Logf("level=warn msg=\"unknown reply type\" slot=%d type=%q", s.id, f.Type)
		}
	}
}

// touch refreshes the slot's last-heard-from stamp.
func (s *slot) touch() {
	s.mu.Lock()
	//fast:allow nondetsource worker-liveness bookkeeping; timestamps gate respawns, never evaluations
	s.lastSeen = time.Now()
	s.mu.Unlock()
}

// heartbeatLoop probes idle workers: an idle slot gets a ping each
// period; a ping unanswered past HeartbeatMiss kills the connection so
// the manager can respawn it. Busy slots are reaped by chunk deadlines
// instead — their liveness signal is the reply itself.
func (p *Pool) heartbeatLoop() {
	defer p.wg.Done()
	tick := time.NewTicker(p.opts.HeartbeatEvery)
	defer tick.Stop()
	for {
		//fast:allow nondetsource heartbeat scheduling race; probes only gate worker respawns
		select {
		case <-tick.C:
			p.probe()
		case <-p.closing:
			return
		}
	}
}

// probe sends one liveness ping to every idle slot and reaps slots
// whose previous ping went unanswered.
func (p *Pool) probe() {
	//fast:allow nondetsource worker-liveness probe deadline; never reaches evaluation paths
	now := time.Now()
	for _, s := range p.slots {
		s.mu.Lock()
		switch {
		case s.retired || s.tr == nil:
			s.mu.Unlock()
		case s.pinging && now.Sub(s.pingSent) > p.opts.HeartbeatMiss:
			s.mu.Unlock()
			p.killSlot(s, "heartbeat missed")
		case s.leased && s.cur != 0 && !s.pinging && now.Sub(s.lastSeen) > p.opts.ChunkTimeout+p.opts.HeartbeatMiss:
			// A leased slot silent past the chunk deadline belongs to an
			// attempt nobody waits on anymore (its chunk completed
			// elsewhere and this reply was lost): reap it, or the lease
			// leaks forever.
			s.mu.Unlock()
			p.killSlot(s, "stale lease")
		case !s.leased:
			id := p.reqID.Add(1)
			s.leased, s.pinging, s.pingSent = true, true, now
			s.cur, s.chunk = id, nil
			tr := s.tr
			s.mu.Unlock()
			line, err := marshalFrame(frame{Type: framePing, ID: id})
			if err == nil {
				err = tr.Send(line)
			}
			if err != nil {
				p.killSlot(s, "ping send failed")
			}
		default:
			s.mu.Unlock()
		}
	}
}

// backoff returns the jittered, capped exponential delay for the n-th
// retry (n >= 1). Jitter comes from the pool's seeded generator, so a
// fixed Options.Seed reproduces the retry schedule.
func (p *Pool) backoff(n int) time.Duration {
	d := p.opts.RetryBaseDelay << uint(n-1)
	if d <= 0 || d > p.opts.RetryMaxDelay {
		d = p.opts.RetryMaxDelay
	}
	p.jmu.Lock()
	f := 0.5 + p.jitter.Float64()
	p.jmu.Unlock()
	return time.Duration(float64(d) * f)
}

// sleep pauses for d, returning false if the pool began closing.
func (p *Pool) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	//fast:allow nondetsource retry backoff timer; delays scheduling only, never evaluation values
	select {
	case <-t.C:
		return true
	case <-p.closing:
		return false
	}
}

// sleepCtx is sleep that additionally wakes when ctx ends (the chunk's
// study was canceled or deadlined mid-backoff).
func (p *Pool) sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	//fast:allow nondetsource retry backoff timer; delays scheduling only, never evaluation values
	select {
	case <-t.C:
		return true
	case <-p.closing:
		return false
	case <-ctx.Done():
		return false
	}
}
