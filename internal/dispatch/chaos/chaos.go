// Package chaos injects seeded faults into dispatch worker connections.
//
// A Plan wraps a dispatch.Dialer so that every connection misbehaves on
// a deterministic schedule derived from (plan seed, slot, dial attempt):
// replies get delayed, dropped, or duplicated; requests get torn
// mid-write with the connection killed; reply bytes get corrupted into
// unparsable JSON; dials get refused. The same plan against the same
// dispatch sequence replays the same faults, which is what lets the
// differential suite assert bit-identical study results under every
// plan — the faults perturb timing, routing, retries, and respawns, and
// none of that may reach the transcript.
//
// Faults are injected on the dispatcher's side of the wire, so they
// compose with any worker transport: loopback in-process workers,
// subprocesses, or TCP peers.
package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"fast/internal/dispatch"
)

// Plan is one deterministic fault schedule. Probabilities are per
// event in [0,1]; zero fields inject nothing.
type Plan struct {
	// Name labels the plan in test output and bench reports.
	Name string `json:"name"`
	// Seed drives every random draw of the plan.
	Seed int64 `json:"seed"`

	// DelayProb delays a received reply by up to MaxDelay (straggler
	// simulation — the hedging trigger).
	DelayProb float64       `json:"delay_prob,omitempty"`
	MaxDelay  time.Duration `json:"max_delay,omitempty"`
	// DropReplyProb silently discards a received reply (the dispatcher
	// sees silence and must deadline + retry).
	DropReplyProb float64 `json:"drop_reply_prob,omitempty"`
	// DupReplyProb delivers a received reply twice (the dispatcher must
	// discard the second by ID).
	DupReplyProb float64 `json:"dup_reply_prob,omitempty"`
	// CorruptProb mangles a reply into unparsable JSON (the dispatcher
	// must kill the connection: framing is untrustworthy after that).
	CorruptProb float64 `json:"corrupt_prob,omitempty"`
	// KillSendProb tears a request mid-write and kills the connection
	// (worker dies mid-message; for subprocess workers the process is
	// killed too, exercising the respawn path).
	KillSendProb float64 `json:"kill_send_prob,omitempty"`
	// ConnectRefusals makes the first N dials of every slot fail
	// (worker slow to come up; pool must back off and re-dial).
	ConnectRefusals int `json:"connect_refusals,omitempty"`
}

// Wrap decorates d with the plan's faults. Each (slot, attempt)
// connection draws from its own rand stream seeded by
// (Plan.Seed, slot, attempt), so fault schedules do not depend on
// goroutine interleaving.
func (p Plan) Wrap(d dispatch.Dialer) dispatch.Dialer {
	return func(slot, attempt int) (dispatch.Transport, error) {
		if attempt < p.ConnectRefusals {
			return nil, fmt.Errorf("chaos[%s]: connection refused (slot %d attempt %d)", p.Name, slot, attempt)
		}
		tr, err := d(slot, attempt)
		if err != nil {
			return nil, err
		}
		seed := p.Seed*1_000_003 + int64(slot)*9_176 + int64(attempt)
		return &faultTransport{
			Transport: tr,
			plan:      p,
			rng:       rand.New(rand.NewSource(seed)),
		}, nil
	}
}

// faultTransport injects the plan's faults around a real transport.
type faultTransport struct {
	dispatch.Transport
	plan Plan

	mu      sync.Mutex // guards rng and pending
	rng     *rand.Rand
	pending [][]byte // duplicated replies awaiting redelivery
}

// Send occasionally writes a torn prefix of the frame and kills the
// connection, simulating a worker dying mid-message.
func (t *faultTransport) Send(line []byte) error {
	t.mu.Lock()
	kill := t.plan.KillSendProb > 0 && t.rng.Float64() < t.plan.KillSendProb
	t.mu.Unlock()
	if kill {
		if len(line) > 1 {
			t.Transport.Send(line[:len(line)/2]) //nolint:errcheck // torn write, best effort
		}
		t.Transport.Close() //nolint:errcheck // the fault is the point
		return fmt.Errorf("chaos[%s]: connection killed mid-send", t.plan.Name)
	}
	return t.Transport.Send(line)
}

// Recv applies reply faults: redeliver a stashed duplicate, then per
// received frame — drop (read the next one instead), corrupt (mangle
// into unparsable bytes), duplicate (stash a copy), delay.
func (t *faultTransport) Recv() ([]byte, error) {
	t.mu.Lock()
	if len(t.pending) > 0 {
		line := t.pending[0]
		t.pending = t.pending[1:]
		t.mu.Unlock()
		return line, nil
	}
	t.mu.Unlock()
	for {
		line, err := t.Transport.Recv()
		if err != nil {
			return nil, err
		}
		t.mu.Lock()
		switch {
		case t.plan.DropReplyProb > 0 && t.rng.Float64() < t.plan.DropReplyProb:
			t.mu.Unlock()
			continue // swallowed; the dispatcher sees silence
		case t.plan.CorruptProb > 0 && t.rng.Float64() < t.plan.CorruptProb:
			t.mu.Unlock()
			// Guaranteed-unparsable corruption: JSON frames start with
			// '{'; a mangled first byte always fails the parse, which is
			// the contract the dispatcher's corrupt-reply path needs.
			bad := append([]byte("\x01corrupt\x01"), line...)
			return bad, nil
		case t.plan.DupReplyProb > 0 && t.rng.Float64() < t.plan.DupReplyProb:
			dup := append([]byte(nil), line...)
			t.pending = append(t.pending, dup)
		}
		var delay time.Duration
		if t.plan.DelayProb > 0 && t.rng.Float64() < t.plan.DelayProb && t.plan.MaxDelay > 0 {
			delay = time.Duration(t.rng.Int63n(int64(t.plan.MaxDelay)))
		}
		t.mu.Unlock()
		if delay > 0 {
			time.Sleep(delay)
		}
		return line, nil
	}
}

// Plans is the differential suite: every fault class alone, then all of
// them together. Probabilities are high enough that a ~50-trial study
// hits each fault many times.
func Plans() []Plan {
	return []Plan{
		{Name: "delays", Seed: 11, DelayProb: 0.5, MaxDelay: 50 * time.Millisecond},
		{Name: "drops", Seed: 12, DropReplyProb: 0.15},
		{Name: "dups", Seed: 13, DupReplyProb: 0.4},
		{Name: "corrupt", Seed: 14, CorruptProb: 0.3},
		{Name: "kill-send", Seed: 15, KillSendProb: 0.06},
		{Name: "refusals", Seed: 16, ConnectRefusals: 2},
		{
			Name: "everything", Seed: 17,
			DelayProb: 0.25, MaxDelay: 30 * time.Millisecond,
			DropReplyProb: 0.08, DupReplyProb: 0.15,
			CorruptProb: 0.04, KillSendProb: 0.03,
			ConnectRefusals: 1,
		},
	}
}

// Standard is the benchmark fault plan: a moderate mix of every fault,
// used by scripts/bench.sh to measure faulted throughput.
func Standard() Plan {
	return Plan{
		Name: "standard", Seed: 42,
		DelayProb: 0.2, MaxDelay: 20 * time.Millisecond,
		DropReplyProb: 0.05, DupReplyProb: 0.1,
		CorruptProb: 0.02, KillSendProb: 0.02,
	}
}
