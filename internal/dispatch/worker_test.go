package dispatch

import (
	"bufio"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"fast/internal/arch"
	"fast/internal/core"
	"fast/internal/power"
	"fast/internal/sim"
)

// testSpec builds a minimal valid EvalSpec (scalar perf-per-tdp on
// mobilenetv2 against the default platform).
func testSpec(t *testing.T) (raw []byte, fp string) {
	t.Helper()
	pm := power.Default()
	simOpts := sim.FASTOptions()
	simOpts.PowerModel = pm
	sp := core.EvalSpec{
		Workloads:  []string{"mobilenetv2"},
		Objective:  "perf-per-tdp",
		Base:       core.DefaultPlatform(),
		Budget:     power.DefaultBudget(pm),
		SimOptions: simOpts,
	}
	raw, err := sp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return raw, core.FingerprintSpec(raw)
}

// runWorker drives ServeConn with a scripted request stream and returns
// the reply frames.
func runWorker(t *testing.T, lines []string) []frame {
	t.Helper()
	in := strings.NewReader(strings.Join(lines, "\n") + "\n")
	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		err := ServeConn(in, pw, nil)
		pw.Close()
		done <- err
	}()
	var replies []frame
	sc := bufio.NewScanner(pr)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var f frame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatalf("unparsable reply %q: %v", sc.Text(), err)
		}
		replies = append(replies, f)
	}
	if err := <-done; err != nil {
		t.Fatalf("ServeConn: %v", err)
	}
	return replies
}

func mustLine(t *testing.T, f frame) string {
	t.Helper()
	b, err := marshalFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestWorkerProtocol scripts one connection through the happy path and
// every defended failure: ping/pong, spec registration, evaluation,
// eval against an unknown spec, a corrupted spec frame, malformed JSON,
// and an unknown frame type — none of which may kill the connection.
func TestWorkerProtocol(t *testing.T) {
	raw, fp := testSpec(t)
	idxs := [][arch.NumParams]int{{}, {}}
	// Corrupt a digit: still valid JSON, no longer matching fp.
	corrupt := append([]byte(nil), raw...)
	for i, b := range corrupt {
		if b >= '0' && b <= '8' {
			corrupt[i] = b + 1
			break
		}
	}

	replies := runWorker(t, []string{
		mustLine(t, frame{Type: framePing, ID: 1}),
		mustLine(t, frame{Type: frameEval, ID: 2, SpecFP: fp, Idxs: idxs}), // before spec: addressed error
		mustLine(t, frame{Type: frameSpec, SpecFP: fp, Spec: corrupt}),     // fingerprint mismatch: error
		mustLine(t, frame{Type: frameSpec, SpecFP: fp, Spec: raw}),         // registers (no reply)
		mustLine(t, frame{Type: frameEval, ID: 3, SpecFP: fp, Idxs: idxs}),
		`{"type":"eval","id":4,`, // malformed JSON: error reply, connection survives
		mustLine(t, frame{Type: "mystery", ID: 5}),
		mustLine(t, frame{Type: frameEval, ID: 6, SpecFP: fp, Idxs: idxs[:1]}),
	})

	want := []struct {
		typ string
		id  uint64
	}{
		{framePong, 1},
		{frameError, 2},
		{frameError, 0},
		{frameResult, 3},
		{frameError, 0},
		{frameError, 5},
		{frameResult, 6},
	}
	if len(replies) != len(want) {
		t.Fatalf("got %d replies, want %d: %+v", len(replies), len(want), replies)
	}
	for i, w := range want {
		if replies[i].Type != w.typ || replies[i].ID != w.id {
			t.Fatalf("reply %d = (%s, %d), want (%s, %d); err=%q",
				i, replies[i].Type, replies[i].ID, w.typ, w.id, replies[i].Err)
		}
	}
	if n := len(replies[3].Evals); n != 2 {
		t.Fatalf("eval reply carries %d evals, want 2", n)
	}
	if n := len(replies[6].Evals); n != 1 {
		t.Fatalf("eval reply carries %d evals, want 1", n)
	}
	// Same point evaluated twice on one connection must agree exactly.
	if !replies[3].Evals[0].Equal(replies[6].Evals[0]) {
		t.Fatalf("repeat evaluation of the same point diverged: %+v vs %+v",
			replies[3].Evals[0], replies[6].Evals[0])
	}
}

// TestWorkerRoundTripsFloatsExactly pins the wire-format contract the
// whole design rests on: an Evaluation's float64s survive a JSON
// round-trip bit-exactly.
func TestWorkerRoundTripsFloatsExactly(t *testing.T) {
	raw, fp := testSpec(t)
	var sp core.EvalSpec
	if err := json.Unmarshal(raw, &sp); err != nil {
		t.Fatal(err)
	}
	local, err := core.BuildBatchEvaluator(sp)
	if err != nil {
		t.Fatal(err)
	}
	pts := [][arch.NumParams]int{{}}
	want := local(pts)

	replies := runWorker(t, []string{
		mustLine(t, frame{Type: frameSpec, SpecFP: fp, Spec: raw}),
		mustLine(t, frame{Type: frameEval, ID: 1, SpecFP: fp, Idxs: pts}),
	})
	if len(replies) != 1 || replies[0].Type != frameResult {
		t.Fatalf("unexpected replies: %+v", replies)
	}
	if len(replies[0].Evals) != len(want) {
		t.Fatalf("got %d evals, want %d", len(replies[0].Evals), len(want))
	}
	for i := range want {
		if !replies[0].Evals[i].Equal(want[i]) {
			t.Fatalf("eval %d differs after wire round-trip:\n  local %+v\n  wire  %+v",
				i, want[i], replies[0].Evals[i])
		}
	}
}
