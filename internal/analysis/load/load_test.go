package load

import (
	"go/types"
	"testing"
)

// TestLoadModulePackage loads one real module package from source and
// checks the function-declaration index.
func TestLoadModulePackage(t *testing.T) {
	prog, err := Load(".", "fast/internal/analysis/load")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	pkg := prog.ByPath["fast/internal/analysis/load"]
	if pkg == nil {
		t.Fatalf("loaded paths %v do not include this package", keys(prog.ByPath))
	}
	fn, ok := pkg.Types.Scope().Lookup("Load").(*types.Func)
	if !ok {
		t.Fatal("Load is not a function in the typechecked package")
	}
	if prog.FuncDecl(fn) == nil {
		t.Error("FuncDecl(Load) = nil, want its declaration")
	}
	if len(pkg.Files) == 0 || pkg.Info == nil {
		t.Errorf("package missing files or info: %d files", len(pkg.Files))
	}
}

// TestLoadDirs loads the GOPATH-style testdata layout: a package with a
// std import and a dependent package importing it.
func TestLoadDirs(t *testing.T) {
	prog, err := LoadDirs("testdata/src", "tiny", "tiny2")
	if err != nil {
		t.Fatalf("LoadDirs: %v", err)
	}
	tiny, tiny2 := prog.ByPath["tiny"], prog.ByPath["tiny2"]
	if tiny == nil || tiny2 == nil {
		t.Fatalf("loaded paths %v, want tiny and tiny2", keys(prog.ByPath))
	}
	if tiny2.Types.Scope().Lookup("Shout") == nil {
		t.Error("tiny2.Shout missing from typechecked scope")
	}
	// Object identity across the loaded set: tiny2's import of tiny must
	// be the same *types.Package we typechecked, not a re-import.
	for _, imp := range tiny2.Types.Imports() {
		if imp.Path() == "tiny" && imp != tiny.Types {
			t.Error("tiny2 imports a different tiny package object")
		}
	}
}

func keys(m map[string]*Package) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
