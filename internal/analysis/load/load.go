// Package load builds a typechecked view of this module's packages for
// the fastlint analyzers (internal/analysis) using only the standard
// library: package metadata comes from `go list -deps -export -json`,
// module packages are parsed and typechecked from source in dependency
// order (so analyzers can trace call graphs across package boundaries),
// and standard-library dependencies are imported from the compiled
// export data the go command already maintains in its build cache.
//
// This is a deliberately small, offline replacement for
// golang.org/x/tools/go/packages: the module has no third-party
// dependencies, so the only imports a source-typechecked package can
// reach are (a) other module packages — which we typecheck from source
// first, sharing one *types* universe so object identity holds across
// packages — and (b) the standard library, for which export data is
// authoritative and cheap.
package load

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one typechecked module package.
type Package struct {
	// Path is the import path (e.g. "fast/internal/sim").
	Path string
	// Dir is the directory holding the package sources.
	Dir string
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types is the typechecked package.
	Types *types.Package
	// Info holds the typechecker results for Files.
	Info *types.Info
}

// Program is the typechecked closure of the requested module packages.
type Program struct {
	Fset *token.FileSet
	// Pkgs holds the module packages in dependency order (dependencies
	// before dependents, as reported by go list -deps).
	Pkgs []*Package
	// ByPath indexes Pkgs by import path.
	ByPath map[string]*Package

	// funcDecls maps every function/method object defined in a module
	// package to its declaration, so interprocedural analyzers can walk
	// bodies across package boundaries.
	funcDecls map[*types.Func]*ast.FuncDecl
}

// FuncDecl returns the declaration of fn if it is defined in a loaded
// module package, or nil (e.g. standard-library functions, interface
// methods, func-typed values).
func (p *Program) FuncDecl(fn *types.Func) *ast.FuncDecl { return p.funcDecls[fn] }

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	Export     string
	GoFiles    []string
	Module     *struct{ Path string }
}

// NewInfo returns a types.Info with every map the analyzers consume.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Load typechecks the module packages matched by patterns (plus their
// module dependencies) rooted at dir. Patterns default to ./... when
// empty. The go command must be on PATH; no network access is needed.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,Standard,Export,GoFiles,Module"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return nil, fmt.Errorf("go list: %v: %s", err, ee.Stderr)
		}
		return nil, fmt.Errorf("go list: %v", err)
	}

	prog := &Program{
		Fset:      token.NewFileSet(),
		ByPath:    map[string]*Package{},
		funcDecls: map[*types.Func]*ast.FuncDecl{},
	}
	exports := map[string]string{} // import path -> export data file (non-module deps)

	dec := json.NewDecoder(strings.NewReader(string(out)))
	var mods []listPackage
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if lp.Module == nil || lp.Standard {
			exports[lp.ImportPath] = lp.Export
			continue
		}
		mods = append(mods, lp)
	}

	imp := newChainImporter(prog, exports)
	for _, lp := range mods {
		pkg, err := typecheck(prog, imp, lp)
		if err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, pkg)
		prog.ByPath[pkg.Path] = pkg
	}
	return prog, nil
}

// LoadDirs typechecks GOPATH-style package directories (as used by the
// analysistest testdata layout): each entry of dirs is loaded as the
// package whose import path is its path relative to root. Imports
// resolve first against the loaded set, then against standard-library
// export data. Directories must be listed so that dependencies precede
// dependents.
func LoadDirs(root string, dirs ...string) (*Program, error) {
	prog := &Program{
		Fset:      token.NewFileSet(),
		ByPath:    map[string]*Package{},
		funcDecls: map[*types.Func]*ast.FuncDecl{},
	}

	// Collect the standard-library imports of every testdata file up
	// front so one `go list` run resolves all export data.
	var lps []listPackage
	stdSet := map[string]bool{}
	for _, d := range dirs {
		abs := filepath.Join(root, d)
		ents, err := os.ReadDir(abs)
		if err != nil {
			return nil, err
		}
		lp := listPackage{ImportPath: filepath.ToSlash(d), Dir: abs}
		for _, e := range ents {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			lp.GoFiles = append(lp.GoFiles, name)
			f, err := parser.ParseFile(token.NewFileSet(), filepath.Join(abs, name), nil, parser.ImportsOnly)
			if err != nil {
				return nil, err
			}
			for _, im := range f.Imports {
				path := strings.Trim(im.Path.Value, `"`)
				if !strings.Contains(path, ".") { // std packages have no dot in the first element
					stdSet[path] = true
				}
			}
		}
		sort.Strings(lp.GoFiles)
		lps = append(lps, lp)
	}
	exports, err := stdExports(root, stdSet)
	if err != nil {
		return nil, err
	}

	imp := newChainImporter(prog, exports)
	for _, lp := range lps {
		// Drop local (loaded-set) imports from the std set: they were
		// conservatively collected above when dot-free.
		pkg, err := typecheck(prog, imp, lp)
		if err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, pkg)
		prog.ByPath[pkg.Path] = pkg
	}
	return prog, nil
}

// stdExports resolves export-data files for the given standard-library
// import paths (unknown paths are skipped — they may be loaded-set
// package names that happen to be dot-free).
func stdExports(dir string, paths map[string]bool) (map[string]string, error) {
	var list []string
	for p := range paths {
		list = append(list, p)
	}
	sort.Strings(list)
	exports := map[string]string{}
	if len(list) == 0 {
		return exports, nil
	}
	args := append([]string{"list", "-e", "-deps", "-export", "-json=ImportPath,Export"}, list...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return nil, fmt.Errorf("go list (std exports): %v: %s", err, ee.Stderr)
		}
		return nil, fmt.Errorf("go list (std exports): %v", err)
	}
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var lp struct{ ImportPath, Export string }
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	return exports, nil
}

// typecheck parses and checks one package, registering its function
// declarations in the program index.
func typecheck(prog *Program, imp types.Importer, lp listPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(prog.Fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, prog.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", lp.ImportPath, err)
	}
	pkg := &Package{Path: lp.ImportPath, Dir: lp.Dir, Files: files, Types: tpkg, Info: info}
	for id, obj := range info.Defs {
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		for _, f := range files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Name == id {
					prog.funcDecls[fn] = fd
				}
			}
		}
	}
	return pkg, nil
}

// chainImporter resolves module packages from the program's
// already-typechecked set and everything else from gc export data.
type chainImporter struct {
	prog    *Program
	gc      types.Importer
	exports map[string]string
}

func newChainImporter(prog *Program, exports map[string]string) types.Importer {
	gc := importer.ForCompiler(prog.Fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return &chainImporter{prog: prog, gc: gc, exports: exports}
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.prog.ByPath[path]; ok {
		return p.Types, nil
	}
	return c.gc.Import(path)
}
