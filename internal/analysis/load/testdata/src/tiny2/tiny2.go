// Package tiny2 exercises cross-package loading: it imports a sibling
// testdata package, which must resolve from the loaded set.
package tiny2

import "tiny"

// Shout upcases with emphasis.
func Shout(s string) string { return tiny.Upper(s) + "!" }
