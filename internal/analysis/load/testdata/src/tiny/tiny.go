// Package tiny exercises the testdata loader: one standard-library
// import resolved through export data.
package tiny

import "strings"

// Upper wraps strings.ToUpper.
func Upper(s string) string { return strings.ToUpper(s) }
