// Package pe exercises the poolescape analyzer: pooled values that
// stay inside the Get/Put window and ones that escape it.
package pe

import "sync"

type scratch struct{ buf []float64 }

var pool = sync.Pool{New: func() any { return new(scratch) }}

var sink *scratch

// clean follows the Get / defer Put discipline.
func clean() float64 {
	s := pool.Get().(*scratch)
	defer pool.Put(s)
	s.buf = append(s.buf[:0], 1)
	return s.buf[0]
}

// deferredRelease puts the value back from a closure; returning a
// scalar copied out of the scratch is not an escape.
func deferredRelease() float64 {
	s := pool.Get().(*scratch)
	defer func() { pool.Put(s) }()
	s.buf = append(s.buf[:0], 2)
	return s.buf[0]
}

// leakReturn hands the pooled value to the caller.
func leakReturn() *scratch {
	s := pool.Get().(*scratch)
	return s // want `pooled value s escapes the Get/Put window via return`
}

// leakGlobal parks the pooled value in package state.
func leakGlobal() {
	s := pool.Get().(*scratch)
	sink = s // want `pooled value s escapes the Get/Put window via store to package-level sink`
	pool.Put(s)
}

// leakClosure captures the pooled value in a literal that outlives Put.
func leakClosure() func() {
	s := pool.Get().(*scratch)
	pool.Put(s)
	f := func() { // want `pooled value s captured by a function literal outside the Get/Put window`
		s.buf = nil
	}
	return f
}

// neverPut forgets the release entirely.
func neverPut() {
	s := pool.Get().(*scratch) // want `pooled value s is never Put back in this function`
	s.buf = s.buf[:0]
}

// handoff intentionally transfers ownership; the allow documents the
// protocol.
func handoff() *scratch {
	s := pool.Get().(*scratch)
	//fast:allow poolescape caller must return the scratch to the pool
	return s
}
