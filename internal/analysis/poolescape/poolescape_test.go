package poolescape

import (
	"testing"

	"fast/internal/analysis/analysistest"
)

func TestPoolescape(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "pe")
}
