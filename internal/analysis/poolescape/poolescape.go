// Package poolescape checks the pooled-scratch discipline around
// sync.Pool: a value obtained from Pool.Get must stay inside the
// Get/Put window of the function that fetched it. A pooled value that
// is returned, stored into longer-lived state, or captured by a
// non-Put function literal can be recycled by Put while still
// referenced — silent data corruption under concurrency, the exact
// failure mode the engine's pooled evaluate/greedy/solver scratch is
// one refactor away from. A Get with no Put at all in the same
// function is reported too (either a leak or a hidden escape).
//
// The analysis is intraprocedural and tracks simple aliases
// (y := x). Functions that intentionally hand pooled memory across a
// boundary must carry a //fast:allow poolescape directive explaining
// why the lifetime is safe.
package poolescape

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"fast/internal/analysis"
)

// Analyzer is the poolescape pass. It runs on every package — pool
// misuse is unsound anywhere.
var Analyzer = &analysis.Analyzer{
	Name: "poolescape",
	Doc:  "flag sync.Pool Get results escaping the Get/Put window",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

// tracked is one pooled value obtained in the function.
type tracked struct {
	getPos token.Pos
	name   string
	put    bool
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	vals := map[types.Object]*tracked{}

	// Pass 1: find Get results and aliases, and Put calls.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil {
					continue
				}
				if pos, ok := poolGet(info, rhs); ok {
					vals[obj] = &tracked{getPos: pos, name: id.Name}
				} else if src, ok := aliasOf(info, vals, rhs); ok {
					vals[obj] = src
				}
			}
		case *ast.CallExpr:
			if obj, ok := poolPutArg(info, vals, n); ok {
				obj.put = true
			}
		}
		return true
	})
	if len(vals) == 0 {
		return
	}

	// Pass 2: escapes.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if tr, ok := refersTo(info, vals, res); ok && carriesRef(info, res) {
					pass.Report(analysis.Diagnostic{Pos: n.Pos(), Message: fmt.Sprintf(
						"pooled value %s escapes the Get/Put window via return", tr.name)})
					tr.put = true // the escape diagnostic subsumes the missing-Put one
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				tr, ok := refersTo(info, vals, rhs)
				if !ok || !carriesRef(info, rhs) {
					continue
				}
				if escapee, bad := heapLHS(info, vals, n.Lhs[i]); bad {
					pass.Report(analysis.Diagnostic{Pos: n.Pos(), Message: fmt.Sprintf(
						"pooled value %s escapes the Get/Put window via store to %s", tr.name, escapee)})
					tr.put = true
				}
			}
		case *ast.FuncLit:
			// A literal that exists to Put the value back is the idiomatic
			// deferred release; anything else capturing the value may run
			// after Put.
			if containsPut(info, vals, n) {
				return false
			}
			for obj, tr := range vals {
				if usesObject(info, n, obj) {
					pass.Report(analysis.Diagnostic{Pos: n.Pos(), Message: fmt.Sprintf(
						"pooled value %s captured by a function literal outside the Get/Put window", tr.name)})
					tr.put = true
				}
			}
			return false
		}
		return true
	})

	for _, tr := range vals {
		if !tr.put {
			pass.Report(analysis.Diagnostic{Pos: tr.getPos, Message: fmt.Sprintf(
				"pooled value %s is never Put back in this function (leak or hidden escape)", tr.name)})
		}
	}
}

// poolGet matches sync.Pool Get calls, optionally behind a type
// assertion: pool.Get(), pool.Get().(*T).
func poolGet(info *types.Info, e ast.Expr) (token.Pos, bool) {
	if ta, ok := ast.Unparen(e).(*ast.TypeAssertExpr); ok {
		e = ta.X
	}
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return token.NoPos, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return token.NoPos, false
	}
	s := info.Selections[sel]
	if s == nil || s.Obj().Name() != "Get" || !isSyncPool(s.Recv()) {
		return token.NoPos, false
	}
	return call.Pos(), true
}

// poolPutArg matches pool.Put(x) where x is tracked (possibly deferred).
func poolPutArg(info *types.Info, vals map[types.Object]*tracked, call *ast.CallExpr) (*tracked, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	s := info.Selections[sel]
	if s == nil || s.Obj().Name() != "Put" || !isSyncPool(s.Recv()) {
		return nil, false
	}
	for _, arg := range call.Args {
		if tr, ok := refersTo(info, vals, arg); ok {
			return tr, true
		}
	}
	return nil, false
}

// aliasOf resolves `y := x` where x is tracked.
func aliasOf(info *types.Info, vals map[types.Object]*tracked, e ast.Expr) (*tracked, bool) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil, false
	}
	tr, ok := vals[info.Uses[id]]
	return tr, ok
}

// carriesRef reports whether e's type can carry a reference into
// pooled memory. A plain scalar (s.buf[0], len(s.buf)) is a copy and
// cannot alias the pooled value after Put.
func carriesRef(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return true // unknown type: stay conservative
	}
	_, basic := tv.Type.Underlying().(*types.Basic)
	return !basic
}

// refersTo reports whether e mentions a tracked object directly
// (identifier, field/index/paren/star/unary chains off it).
func refersTo(info *types.Info, vals map[types.Object]*tracked, e ast.Expr) (*tracked, bool) {
	var found *tracked
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && found == nil {
			if tr, ok := vals[info.Uses[id]]; ok {
				found = tr
			}
		}
		return found == nil
	})
	return found, found != nil
}

// heapLHS reports whether an assignment target outlives the function's
// locals: a package-level variable, or a store through a selector,
// index, or dereference whose base is not itself a tracked pooled
// value (writing a field *of* the scratch is its normal use).
func heapLHS(info *types.Info, vals map[types.Object]*tracked, lhs ast.Expr) (string, bool) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj := info.Defs[l]
		if obj == nil {
			obj = info.Uses[l]
		}
		if v, ok := obj.(*types.Var); ok && v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return "package-level " + l.Name, true
		}
		return "", false
	case *ast.SelectorExpr:
		if base := rootIdent(l.X); base != nil {
			if _, pooled := vals[info.Uses[base]]; pooled {
				return "", false
			}
			return base.Name + "." + l.Sel.Name, true
		}
		return l.Sel.Name, true
	case *ast.IndexExpr:
		if base := rootIdent(l.X); base != nil {
			if _, pooled := vals[info.Uses[base]]; pooled {
				return "", false
			}
			return base.Name + "[...]", true
		}
		return "indexed location", true
	case *ast.StarExpr:
		return "dereferenced pointer", true
	}
	return "", false
}

func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// containsPut reports whether the function literal's body Puts a
// tracked value back (the deferred-release idiom).
func containsPut(info *types.Info, vals map[types.Object]*tracked, fl *ast.FuncLit) bool {
	found := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && !found {
			if tr, ok := poolPutArg(info, vals, call); ok {
				tr.put = true
				found = true
			}
		}
		return !found
	})
	return found
}

// usesObject reports whether node mentions obj.
func usesObject(info *types.Info, node ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// isSyncPool matches (a pointer to) sync.Pool.
func isSyncPool(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Pool"
}
