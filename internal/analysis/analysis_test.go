package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"fast/internal/analysis/load"
)

// loadSrc typechecks one import-free source file into a load.Program,
// so the directive machinery can be tested without touching the disk.
func loadSrc(t *testing.T, src string) (*load.Program, *load.Package) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := load.NewInfo()
	conf := types.Config{}
	tpkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	pkg := &load.Package{Path: "p", Files: []*ast.File{f}, Types: tpkg, Info: info}
	prog := &load.Program{
		Fset:   fset,
		Pkgs:   []*load.Package{pkg},
		ByPath: map[string]*load.Package{"p": pkg},
	}
	return prog, pkg
}

// TestRunSuppression drives Run end to end: a toy analyzer that reports
// every function declaration, filtered through good, unknown-name, and
// reason-less //fast:allow directives.
func TestRunSuppression(t *testing.T) {
	prog, _ := loadSrc(t, `package p

func a() {}

//fast:allow toy intentional fixture
func b() {}

//fast:allow nosuch xyz
func c() {}

//fast:allow toy
func d() {}
`)
	toy := &Analyzer{
		Name: "toy",
		Doc:  "reports every function declaration",
		Run: func(pass *Pass) error {
			for _, f := range pass.Pkg.Files {
				for _, decl := range f.Decls {
					if fd, ok := decl.(*ast.FuncDecl); ok {
						pass.Report(Diagnostic{Pos: fd.Pos(), Message: "func " + fd.Name.Name})
					}
				}
			}
			return nil
		},
	}
	diags, err := Run(prog, prog.Pkgs, []*Analyzer{toy})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer+": "+d.Message)
	}
	want := []string{
		"toy: func a", // no allow
		"directive: fast:allow needs a known analyzer name (maskcheck, detrange, nondetsource, poolescape)", // nosuch
		"toy: func c", // unknown-name allow does not suppress
		"directive: fast:allow toy needs a reason",
		"toy: func d", // reason-less allow does not suppress
	}
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics %q, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diag[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	// Sorted by position: a before c before d.
	for i := 1; i < len(diags); i++ {
		if diags[i-1].Pos > diags[i].Pos {
			t.Errorf("diagnostics not position-sorted at %d", i)
		}
	}
}

func TestParseStageDirective(t *testing.T) {
	group := func(lines ...string) *ast.CommentGroup {
		cg := &ast.CommentGroup{}
		for _, l := range lines {
			cg.List = append(cg.List, &ast.Comment{Text: l})
		}
		return cg
	}
	cases := []struct {
		name    string
		doc     *ast.CommentGroup
		mask    string
		fixed   []string
		errPart string
		none    bool
	}{
		{name: "nil doc", doc: nil, none: true},
		{name: "no directive", doc: group("// just a comment"), none: true},
		{name: "mask only", doc: group("// doc", "//fast:stage mask=gridParams"), mask: "gridParams"},
		{name: "mask and fixed", doc: group("//fast:stage mask=m&^n fixed=cores,clock"), mask: "m&^n", fixed: []string{"cores", "clock"}},
		{name: "unknown field", doc: group("//fast:stage cover=all"), errPart: `unknown field "cover=all"`},
		{name: "missing mask", doc: group("//fast:stage fixed=cores"), errPart: "needs mask="},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := ParseStageDirective(tc.doc)
			if tc.errPart != "" {
				if err == nil || !strings.Contains(err.Error(), tc.errPart) {
					t.Fatalf("err = %v, want containing %q", err, tc.errPart)
				}
				return
			}
			if err != nil {
				t.Fatalf("err = %v", err)
			}
			if tc.none {
				if d != nil {
					t.Fatalf("directive = %+v, want none", d)
				}
				return
			}
			if d == nil || d.MaskExpr != tc.mask {
				t.Fatalf("directive = %+v, want mask %q", d, tc.mask)
			}
			if len(d.Fixed) != len(tc.fixed) {
				t.Fatalf("fixed = %v, want %v", d.Fixed, tc.fixed)
			}
			for i := range tc.fixed {
				if d.Fixed[i] != tc.fixed[i] {
					t.Errorf("fixed[%d] = %q, want %q", i, d.Fixed[i], tc.fixed[i])
				}
			}
		})
	}
}
