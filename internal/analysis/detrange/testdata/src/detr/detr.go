// Package detr exercises the detrange analyzer: map ranges whose
// iteration order does and does not reach results.
package detr

import (
	"fmt"
	"sort"
)

// appendsInOrder leaks map order into a result slice.
func appendsInOrder(m map[string]int) []string {
	var out []string
	for k := range m { // want `appends to out \(slice order follows map order\)`
		out = append(out, k+"!")
	}
	return out
}

// collectedUnsorted collects keys but never sorts them.
func collectedUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map keys collected into keys but never sorted`
		keys = append(keys, k)
	}
	return keys
}

// sortedKeys is the canonical sorted-keys idiom: clean.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sumFloat accumulates floating point in map order.
func sumFloat(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want `accumulates floating point into total`
		total += v
	}
	return total
}

// countInt is order-insensitive integer accumulation: clean.
func countInt(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// invert builds another map: order-insensitive per distinct key, clean.
func invert(m map[string]int) map[int]string {
	inv := make(map[int]string, len(m))
	for k, v := range m {
		inv[v] = k
	}
	return inv
}

// printAll writes output in map order.
func printAll(m map[string]int) {
	for k, v := range m { // want `writes output via fmt.Printf in map order`
		fmt.Printf("%s=%d\n", k, v)
	}
}

// anyKey returns an arbitrary element.
func anyKey(m map[string]int) string {
	for k := range m { // want `returns from inside the iteration`
		return k
	}
	return ""
}

// mutateByPointer hands outer state to a callee per iteration.
func mutateByPointer(m map[string]int) int {
	total := 0
	for _, v := range m { // want `passes &total to a callee`
		addTo(&total, v)
	}
	return total
}

func addTo(dst *int, v int) { *dst += v }

// allowed documents an intentional exception.
func allowed(m map[string]int) []string {
	var out []string
	//fast:allow detrange the caller treats this slice as a set
	for k := range m {
		out = append(out, k+"?")
	}
	return out
}

// badAllow names an analyzer that does not exist.
func badAllow(m map[string]int) int {
	//fast:allow bogus not a real pass — want `fast:allow needs a known analyzer name`
	return len(m)
}
