package detrange

import (
	"testing"

	"fast/internal/analysis/analysistest"
)

func TestDetrange(t *testing.T) {
	old := Scope
	Scope = []string{"detr"}
	defer func() { Scope = old }()
	analysistest.Run(t, "testdata", Analyzer, "detr")
}
