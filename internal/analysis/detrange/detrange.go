// Package detrange flags map iteration in the engine's deterministic
// paths whose order can leak into results: Go randomizes map iteration
// order per run, so a `range` over a map that appends to a slice,
// accumulates floating point, writes output, or otherwise leaves an
// order-dependent trace breaks the bit-identical-results guarantee the
// differential suites pin (and the parallelism-invariant transcript
// rides on).
//
// Order-insensitive map loops are fine and not reported: building
// another map, integer counting (x++, integer +=), and the sorted-keys
// idiom (collect the keys, sort them, range the sorted slice). A loop
// that only collects keys into a slice is accepted exactly when the
// enclosing function visibly sorts that slice afterwards.
package detrange

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"fast/internal/analysis"
)

// Scope lists the import paths (exact, or prefix of sub-packages)
// whose map ranges are checked — the paths where iteration order can
// reach simulation results, optimizer transcripts, or reports.
var Scope = []string{
	"fast/internal/sim",
	"fast/internal/search",
	"fast/internal/core",
	"fast/internal/ilp",
	"fast/internal/fusion",
	"fast/internal/experiments",
	// dispatch folds worker replies back into positional result slots;
	// map iteration there must never decide anything observable.
	"fast/internal/dispatch",
	// serve fans studies and events out of maps; iteration order must
	// never reach listings, transcripts, or event payloads unaudited.
	"fast/internal/serve",
	// chaoshttp compares faulted transcripts byte-for-byte; any
	// order-sensitive fold there would fake (or mask) divergence.
	"fast/internal/chaoshttp",
}

// Analyzer is the detrange pass.
var Analyzer = &analysis.Analyzer{
	Name: "detrange",
	Doc:  "flag map iteration whose order can reach results in deterministic paths",
	Run:  run,
}

func inScope(path string) bool {
	for _, s := range Scope {
		if path == s || strings.HasPrefix(path, s+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path) {
		return nil
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pass.Pkg.Info.Types[rs.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				checkMapRange(pass, fd, rs)
				return true
			})
		}
	}
	return nil
}

// checkMapRange reports the first order-sensitive sink found in a
// map-range body.
func checkMapRange(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	info := pass.Pkg.Info
	c := &checker{
		pass: pass,
		info: info,
		body: rs.Body,
		key:  declObj(info, rs.Key),
		val:  declObj(info, rs.Value),
	}
	// Sorted-keys idiom first: a loop that only collects keys is fine
	// exactly when the function visibly sorts the collected slice.
	if dest := c.keyCollection(); dest != nil {
		if !sortedLater(info, fd, rs, dest) {
			pass.Report(analysis.Diagnostic{Pos: rs.Pos(), Message: fmt.Sprintf(
				"map keys collected into %s but never sorted in this function", dest.Name())})
		}
		return
	}
	if sink := c.firstSink(); sink != "" {
		pass.Report(analysis.Diagnostic{Pos: rs.Pos(), Message: fmt.Sprintf(
			"map iteration order reaches results: %s — iterate sorted keys instead", sink)})
	}
}

type checker struct {
	pass     *analysis.Pass
	info     *types.Info
	body     *ast.BlockStmt
	key, val types.Object
}

// declObj resolves the object a range key/value identifier declares or
// assigns.
func declObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

// outer reports whether the identifier's object is declared outside
// the range body — mutations of such state are ordered across
// iterations.
func (c *checker) outer(id *ast.Ident) bool {
	obj := c.info.Uses[id]
	if obj == nil {
		obj = c.info.Defs[id]
	}
	if obj == nil || obj.Pos() == token.NoPos {
		return false
	}
	return obj.Pos() < c.body.Pos() || obj.Pos() > c.body.End()
}

// baseIdent walks an lvalue to its base identifier (x, x.f, x[i], *x).
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// usesLoopVars reports whether the expression reads the range key or
// value variables (directly; derived locals are not tracked).
func (c *checker) usesLoopVars(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			obj := c.info.Uses[id]
			if obj != nil && (obj == c.key || obj == c.val) {
				found = true
			}
		}
		return !found
	})
	return found
}

// firstSink scans the loop body for the first order-sensitive effect.
// Function literals are scanned too (they run per-iteration when
// called in the loop), except that return statements inside them
// belong to the literal, not the loop.
func (c *checker) firstSink() string {
	var sink string
	var stack []ast.Node
	ast.Inspect(c.body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.AssignStmt:
			sink = c.assignSink(n)
		case *ast.SendStmt:
			sink = "sends on a channel"
		case *ast.ReturnStmt:
			if !insideFuncLit(stack) {
				sink = "returns from inside the iteration (selects an arbitrary element)"
			}
		case *ast.CallExpr:
			sink = c.callSink(n)
		}
		return sink == ""
	})
	return sink
}

func insideFuncLit(stack []ast.Node) bool {
	for _, n := range stack[:len(stack)-1] {
		if _, ok := n.(*ast.FuncLit); ok {
			return true
		}
	}
	return false
}

// assignSink classifies one assignment inside the loop body.
func (c *checker) assignSink(as *ast.AssignStmt) string {
	for i, lhs := range as.Lhs {
		base := baseIdent(lhs)
		if base == nil || !c.outer(base) {
			continue
		}
		var rhs ast.Expr
		if i < len(as.Rhs) {
			rhs = as.Rhs[i]
		} else if len(as.Rhs) == 1 {
			rhs = as.Rhs[0]
		}

		// append into state that outlives the loop.
		if call, ok := unparenCall(rhs); ok && isAppend(c.info, call) {
			return fmt.Sprintf("appends to %s (slice order follows map order)", base.Name)
		}

		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if isFloat(c.info, lhs) {
				return fmt.Sprintf("accumulates floating point into %s (rounding depends on order)", base.Name)
			}
		case token.ASSIGN:
			switch lhs := lhs.(type) {
			case *ast.IndexExpr:
				if tv, ok := c.info.Types[lhs.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						continue // building a map is order-insensitive per distinct key
					}
				}
				return fmt.Sprintf("writes through %s by index (write order follows map order)", base.Name)
			case *ast.StarExpr:
				return fmt.Sprintf("writes through pointer %s", base.Name)
			default:
				if c.usesLoopVars(rhs) {
					return fmt.Sprintf("assigns a loop-dependent value to %s (last write wins nondeterministically)", base.Name)
				}
			}
		}
	}
	return ""
}

// callSink classifies calls with ordered external effects: writing
// output, or handing a pointer into outer state to a callee.
func (c *checker) callSink(call *ast.CallExpr) string {
	if name, ok := outputCall(c.info, call); ok {
		return fmt.Sprintf("writes output via %s in map order", name)
	}
	for _, arg := range call.Args {
		if un, ok := arg.(*ast.UnaryExpr); ok && un.Op == token.AND {
			if base := baseIdent(un.X); base != nil && c.outer(base) {
				return fmt.Sprintf("passes &%s to a callee (order-dependent mutation)", base.Name)
			}
		}
	}
	return ""
}

// keyCollection reports the destination slice when the loop body is
// exactly `dest = append(dest, key)`.
func (c *checker) keyCollection() types.Object {
	if len(c.body.List) != 1 || c.key == nil {
		return nil
	}
	as, ok := c.body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	call, ok := unparenCall(as.Rhs[0])
	if !ok || !isAppend(c.info, call) || len(call.Args) != 2 {
		return nil
	}
	arg, ok := call.Args[1].(*ast.Ident)
	if !ok || c.info.Uses[arg] != c.key {
		return nil
	}
	dest, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	if o := c.info.Uses[dest]; o != nil {
		return o
	}
	return c.info.Defs[dest]
}

// sortedLater reports whether dest is passed to a sort.* or slices.*
// call after the range statement in the same function.
func sortedLater(info *types.Info, fd *ast.FuncDecl, rs *ast.RangeStmt, dest types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || found {
			return !found
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.Uses[id] == dest {
				found = true
			}
		}
		return !found
	})
	return found
}

func unparenCall(e ast.Expr) (*ast.CallExpr, bool) {
	if e == nil {
		return nil, false
	}
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	return call, ok
}

func isAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// outputCall matches fmt print functions and Write-family methods on
// writers/builders/buffers.
func outputCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if s := info.Selections[sel]; s != nil {
		fn, ok := s.Obj().(*types.Func)
		if !ok {
			return "", false
		}
		if strings.HasPrefix(fn.Name(), "Write") {
			if named := recvNamed(s.Recv()); named != "" {
				switch named {
				case "strings.Builder", "bytes.Buffer", "bufio.Writer", "io.Writer", "os.File":
					return named + "." + fn.Name(), true
				}
			}
		}
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return "", false
	}
	if strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint") {
		return "fmt." + fn.Name(), true
	}
	return "", false
}

func recvNamed(t types.Type) string {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Named:
			if u.Obj().Pkg() == nil {
				return u.Obj().Name()
			}
			return u.Obj().Pkg().Path() + "." + u.Obj().Name()
		case *types.Interface:
			return "io.Writer" // any interface Write method counts
		default:
			return ""
		}
	}
}
