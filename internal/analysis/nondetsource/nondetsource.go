// Package nondetsource forbids sources of run-to-run nondeterminism in
// the engine's evaluation and transcript paths: wall-clock reads
// (time.Now and friends), the globally seeded math/rand generator, and
// select statements that choose among multiple ready channels. The
// ask/tell transcript is provably parallelism-invariant and the
// simulator bit-identical across runs only as long as no such source
// leaks into those paths.
//
// Wall-clock time is legal in exactly one place — the ILP deadline
// seam, where a solver checks its budget — and those sites carry
// auditable //fast:allow nondetsource directives. Seeded *rand.Rand
// instances (rand.New(rand.NewSource(seed))) are deterministic and not
// reported; only the package-level generator is.
package nondetsource

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"fast/internal/analysis"
)

// Scope lists the import paths (exact, or prefix of sub-packages)
// treated as evaluation/transcript paths.
var Scope = []string{
	"fast/internal/sim",
	"fast/internal/search",
	"fast/internal/core",
	"fast/internal/ilp",
	"fast/internal/fusion",
	"fast/internal/mapping",
	"fast/internal/vpu",
	"fast/internal/power",
	"fast/internal/hlo",
	"fast/internal/tensor",
	"fast/internal/arch",
	// dispatch ships evaluation chunks to remote workers; its timer and
	// liveness seams are real nondeterminism sources, so every one must
	// carry an audited //fast:allow directive explaining why it cannot
	// reach the transcript.
	"fast/internal/dispatch",
	// serve drives studies whose transcripts must be bit-identical
	// across restarts and rate limits; its clocks (request logging,
	// status stamps, pacing, watchdog) and select races are audited the
	// same way.
	"fast/internal/serve",
	// chaoshttp is the whole-system fault harness; its fault schedules
	// must come from seeded plans, never the wall clock.
	"fast/internal/chaoshttp",
}

// Analyzer is the nondetsource pass.
var Analyzer = &analysis.Analyzer{
	Name: "nondetsource",
	Doc:  "forbid wall-clock, global math/rand, and multi-way select in deterministic paths",
	Run:  run,
}

// clockFuncs are the time package functions that read the wall clock.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// globalRand are the package-level math/rand (and v2) functions backed
// by the shared, non-reproducibly seeded generator. Constructors (New,
// NewSource, NewPCG, …) are deterministic and excluded.
var globalRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 spellings.
	"N": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "UintN": true, "Uint": true,
	"Uint32N": true, "Uint64N": true,
}

func inScope(path string) bool {
	for _, s := range Scope {
		if path == s || strings.HasPrefix(path, s+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path) {
		return nil
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, info, n)
			case *ast.SelectStmt:
				checkSelect(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, info *types.Info, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if info.Selections[sel] != nil {
		return // a method call (e.g. on a seeded *rand.Rand) is fine
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if clockFuncs[fn.Name()] {
			pass.Report(analysis.Diagnostic{Pos: call.Pos(), Message: fmt.Sprintf(
				"time.%s reads the wall clock in a deterministic path (only the ILP deadline seam may, behind //fast:allow)", fn.Name())})
		}
	case "math/rand", "math/rand/v2":
		if globalRand[fn.Name()] {
			pass.Report(analysis.Diagnostic{Pos: call.Pos(), Message: fmt.Sprintf(
				"%s.%s uses the global generator — thread a seeded *rand.Rand instead", fn.Pkg().Name(), fn.Name())})
		}
	}
}

func checkSelect(pass *analysis.Pass, sel *ast.SelectStmt) {
	ready := 0
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
			ready++
		}
	}
	if ready >= 2 {
		pass.Report(analysis.Diagnostic{Pos: sel.Pos(), Message: fmt.Sprintf(
			"select over %d channels chooses nondeterministically when several are ready", ready)})
	}
}
