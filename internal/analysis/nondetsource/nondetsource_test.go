package nondetsource

import (
	"testing"

	"fast/internal/analysis/analysistest"
)

func TestNondetsource(t *testing.T) {
	old := Scope
	Scope = []string{"nds"}
	defer func() { Scope = old }()
	analysistest.Run(t, "testdata", Analyzer, "nds")
}
