// Package nds exercises the nondetsource analyzer: wall-clock reads,
// the global math/rand generator, and multi-way selects.
package nds

import (
	"math/rand"
	"time"
)

// stamp reads the wall clock.
func stamp() int64 {
	return time.Now().UnixNano() // want `time.Now reads the wall clock in a deterministic path`
}

// elapsed reads the wall clock through Since.
func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since reads the wall clock in a deterministic path`
}

// roll uses the globally seeded generator.
func roll() int {
	return rand.Intn(6) // want `rand.Intn uses the global generator`
}

// seeded draws from an explicitly seeded generator: clean.
func seeded(r *rand.Rand) int {
	return r.Intn(6)
}

// pick chooses nondeterministically among ready channels.
func pick(a, b chan int) int {
	select { // want `select over 2 channels chooses nondeterministically`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// tryRecv is a single-channel select with default: clean.
func tryRecv(a chan int) (int, bool) {
	select {
	case v := <-a:
		return v, true
	default:
		return 0, false
	}
}

// deadline is the audited exception pattern.
func deadline() time.Time {
	//fast:allow nondetsource solver budget seam fixture
	return time.Now()
}
