// Package stages exercises the maskcheck analyzer: memoized stage
// functions with sound, unsound, missing, malformed, and suppressed
// //fast:stage directives.
package stages

import (
	"fmt"

	"archfake"
	"stagehelp"
)

// stageCache is a miniature of the sim stage cache the analyzer keys
// on (a get method on a type whose name contains "stageCache").
type stageCache struct {
	m map[uint64]float64
}

func (c *stageCache) get(key uint64, compute func() float64) float64 {
	if v, ok := c.m[key]; ok {
		return v
	}
	v := compute()
	c.m[key] = v
	return v
}

// gridParams covers the PE grid parameters.
var gridParams = archfake.MaskOf(archfake.PPEsX, archfake.PPEsY)

// goodStage reads exactly the fields its mask declares.
//
//fast:stage mask=gridParams
func goodStage(c *stageCache, cfg *archfake.Config) float64 {
	return c.get(cfg.SubKey(gridParams), func() float64 {
		return float64(cfg.PEsX * cfg.PEsY)
	})
}

// inlineMask declares its mask as a directive-local expression rather
// than a package-level variable.
//
//fast:stage mask=archfake.AllParams&^archfake.MaskOf(archfake.PPEsY)
func inlineMask(c *stageCache, cfg *archfake.Config) float64 {
	return c.get(cfg.SubKey(archfake.AllParams&^archfake.MaskOf(archfake.PPEsY)), func() float64 {
		return float64(cfg.PEsX * cfg.NativeBatch)
	})
}

// missingMask reads NativeBatch outside its declared grid mask.
//
//fast:stage mask=gridParams
func missingMask(c *stageCache, cfg *archfake.Config) float64 { // want `missingMask reads Config.NativeBatch \(PNativeBatch\) outside its declared mask gridParams`
	return c.get(cfg.SubKey(gridParams), func() float64 {
		return float64(cfg.PEsX * cfg.NativeBatch)
	})
}

// interStage reads NativeBatch through a helper defined in another
// package — the trace must cross the package boundary to see it.
//
//fast:stage mask=gridParams
func interStage(c *stageCache, cfg *archfake.Config) float64 { // want `interStage reads Config.NativeBatch .* via stagehelp.BatchFactor`
	return c.get(cfg.SubKey(gridParams), func() float64 {
		return float64(cfg.PEsX * stagehelp.BatchFactor(cfg))
	})
}

// powerish reads the fixed Cores attribute and declares it.
//
//fast:stage mask=gridParams fixed=cores
func powerish(c *stageCache, cfg *archfake.Config) float64 {
	return c.get(cfg.SubKey(gridParams), func() float64 {
		return float64(cfg.PEsX*cfg.PEsY) * float64(cfg.Cores)
	})
}

// undeclaredFixed reads ClockGHz without declaring fixed=clock.
//
//fast:stage mask=gridParams
func undeclaredFixed(c *stageCache, cfg *archfake.Config) float64 { // want `undeclaredFixed reads fixed attribute Config.ClockGHz but the directive does not declare fixed=clock`
	return c.get(cfg.SubKey(gridParams), func() float64 {
		return float64(cfg.PEsX) * cfg.ClockGHz
	})
}

// readsName reads identity metadata no cache key covers.
//
//fast:stage mask=gridParams
func readsName(c *stageCache, cfg *archfake.Config) float64 { // want `readsName reads Config.Name, which no stage cache key covers`
	if cfg.Name == "" {
		return 0
	}
	return c.get(cfg.SubKey(gridParams), func() float64 { return float64(cfg.PEsX) })
}

// leaky hands the whole Config to fmt.Sprintf, whose read set is
// invisible to the tracer.
//
//fast:stage mask=gridParams
func leaky(c *stageCache, cfg *archfake.Config) float64 { // want `leaky passes arch.Config to fmt.Sprintf`
	_ = fmt.Sprintf("%v", *cfg)
	return c.get(cfg.SubKey(gridParams), func() float64 { return float64(cfg.PEsY) })
}

// noDirective memoizes without declaring a mask at all.
func noDirective(c *stageCache, cfg *archfake.Config) float64 { // want `noDirective memoizes through a stage cache .* but has no //fast:stage mask directive`
	return c.get(uint64(cfg.PEsX), func() float64 { return 1 })
}

// badDirective has a malformed directive.
//
//fast:stage cover=everything
func badDirective(c *stageCache, cfg *archfake.Config) float64 { // want `unknown field "cover=everything"`
	return c.get(uint64(cfg.PEsY), func() float64 { return 3 })
}

// suppressed memoizes through the cache with a precomputed key; the
// allow documents why the missing directive is intentional.
//
//fast:allow maskcheck key is a precomputed hash, not a Config sub-tuple
func suppressed(c *stageCache, key uint64) float64 {
	return c.get(key, func() float64 { return 2 })
}
