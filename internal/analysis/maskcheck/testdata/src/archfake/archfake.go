// Package archfake mirrors the shape of internal/arch that maskcheck
// keys on: a struct named Config declared in a package that also
// declares ParamMask, searched-parameter constants, and the
// MaskOf/SubKey primitives. Field names follow the real arch package
// so the analyzer's field→parameter table applies unchanged.
package archfake

// ParamMask selects a subset of the searched parameters.
type ParamMask uint32

// Searched-parameter indices (a subset of the real space).
const (
	PPEsX = iota
	PPEsY
	PNativeBatch
	NumParams
)

// AllParams covers every searched parameter.
const AllParams = ParamMask(1<<NumParams - 1)

// MaskOf builds the mask with the given parameter bits set.
func MaskOf(params ...int) ParamMask {
	var m ParamMask
	for _, p := range params {
		m |= 1 << p
	}
	return m
}

// Config is the fixture architecture configuration: searched
// parameters, fixed platform attributes, and identity metadata.
type Config struct {
	Name string

	PEsX, PEsY  int
	NativeBatch int

	Cores    int
	ClockGHz float64
	Mem      string
}

// SubKey packs the masked parameters into a cache key.
func (c *Config) SubKey(mask ParamMask) uint64 {
	var k uint64
	if mask&MaskOf(PPEsX) != 0 {
		k = k<<8 | uint64(c.PEsX)
	}
	if mask&MaskOf(PPEsY) != 0 {
		k = k<<8 | uint64(c.PEsY)
	}
	if mask&MaskOf(PNativeBatch) != 0 {
		k = k<<8 | uint64(c.NativeBatch)
	}
	return k
}
