// Package stagehelp holds a cross-package helper for the maskcheck
// interprocedural fixtures: a Config field read hidden one package
// away from the annotated stage.
package stagehelp

import "archfake"

// BatchFactor reads the native batch parameter.
func BatchFactor(c *archfake.Config) int {
	return c.NativeBatch
}
