package maskcheck

import (
	"go/constant"
	"go/types"
	"reflect"
	"testing"

	"fast/internal/analysis/analysistest"
	"fast/internal/analysis/load"
	"fast/internal/arch"
)

func TestMaskcheck(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "archfake", "stagehelp", "stages")
}

// TestParamOfMatchesArch pins the hardcoded field→parameter table
// against the real arch package: perturbing exactly the Space
// dimension a paramOf entry names must change exactly the Config field
// it is keyed by. The constant values come from typechecking
// internal/arch, so a renumbered or renamed parameter fails here
// before it can mislead the analyzer.
func TestParamOfMatchesArch(t *testing.T) {
	prog, err := load.Load(".", "fast/internal/arch")
	if err != nil {
		t.Fatalf("load internal/arch: %v", err)
	}
	archPkg := prog.ByPath["fast/internal/arch"]
	if archPkg == nil {
		t.Fatal("internal/arch not in loaded program")
	}
	scope := archPkg.Types.Scope()

	var s arch.Space
	base := &arch.Config{}
	ref := s.Decode([arch.NumParams]int{}, base)

	seen := map[int]bool{}
	for field, constName := range paramOf {
		c, ok := scope.Lookup(constName).(*types.Const)
		if !ok {
			t.Errorf("paramOf[%q] = %q: not a constant in internal/arch", field, constName)
			continue
		}
		idx64, ok := constant.Int64Val(constant.ToInt(c.Val()))
		if !ok || idx64 < 0 || idx64 >= arch.NumParams {
			t.Errorf("paramOf[%q] = %q: value %v outside the parameter space", field, constName, c.Val())
			continue
		}
		idx := int(idx64)
		if seen[idx] {
			t.Errorf("paramOf maps two fields to parameter %s", constName)
		}
		seen[idx] = true

		var vec [arch.NumParams]int
		vec[idx] = 1
		changed := diffFields(ref, s.Decode(vec, base))
		if len(changed) != 1 || changed[0] != field {
			t.Errorf("perturbing %s changed fields %v, want [%s]", constName, changed, field)
		}
	}
	if len(seen) != arch.NumParams {
		t.Errorf("paramOf covers %d of %d searched parameters", len(seen), arch.NumParams)
	}

	// Completeness: every Config field is a searched parameter, a fixed
	// platform attribute, or identity metadata — anything else would be
	// invisible to the mask soundness argument.
	ct := reflect.TypeOf(arch.Config{})
	for i := 0; i < ct.NumField(); i++ {
		name := ct.Field(i).Name
		if name == "Name" {
			continue
		}
		if _, ok := paramOf[name]; ok {
			continue
		}
		if _, ok := fixedOf[name]; ok {
			continue
		}
		t.Errorf("arch.Config field %s is in neither paramOf nor fixedOf — maskcheck cannot classify it", name)
	}
}

func diffFields(a, b *arch.Config) []string {
	av, bv := reflect.ValueOf(*a), reflect.ValueOf(*b)
	var out []string
	for i := 0; i < av.NumField(); i++ {
		if !reflect.DeepEqual(av.Field(i).Interface(), bv.Field(i).Interface()) {
			out = append(out, av.Type().Field(i).Name)
		}
	}
	return out
}
