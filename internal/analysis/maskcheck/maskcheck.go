// Package maskcheck statically proves the soundness of the
// parameter-sliced stage memoization in internal/sim: a stage cache
// keyed by arch.Config.SubKey(mask) is only sound if the mask covers
// every searched hyperparameter the stage can read — one missed bit
// and two different designs silently alias the same cache entry.
//
// A memoized stage declares its key coverage with a directive on the
// stage function:
//
//	//fast:stage mask=<ParamMask expr> [fixed=<attr,attr,...>]
//
// where <ParamMask expr> names a package-level arch.ParamMask value
// (e.g. mappingParams, or arch.AllParams&^arch.MaskOf(arch.PNativeBatch);
// the expression must contain no spaces) and fixed= lists the fixed
// platform attributes — cores, clock, mem — the cache key carries
// beside the masked sub-tuple. maskcheck then traces every arch.Config
// field read reachable from the stage function body, across function
// and package boundaries, and reports:
//
//   - a searched-hyperparameter field read whose parameter bit is not
//     in the declared mask;
//   - a fixed platform attribute (Cores, ClockGHz, Mem) read but not
//     listed in fixed=;
//   - a read of Config.Name (identity metadata no cache key covers);
//   - a Config value passed to a function whose body the analyzer
//     cannot see (the read set would be unknowable);
//   - a function that uses the sim stage cache (stageCache.get) but
//     carries no //fast:stage directive at all.
//
// Calls to Config.SubKey are exempt from the trace: SubKey is the
// keying primitive itself and reads every field by design.
package maskcheck

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"fast/internal/analysis"
	"fast/internal/analysis/load"
)

// Analyzer is the maskcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "maskcheck",
	Doc:  "verify //fast:stage mask directives cover every arch.Config field a memoized stage reads",
	Run:  run,
}

// paramOf maps each searched-hyperparameter Config field to the arch
// parameter constant that owns its SubKey slot. The pairing is pinned
// against the real arch package by TestParamOfMatchesArch.
var paramOf = map[string]string{
	"PEsX": "PPEsX", "PEsY": "PPEsY",
	"SAx": "PSAx", "SAy": "PSAy",
	"VectorMult": "PVectorMult",
	"L1Config":   "PL1Config",
	"L1InputKiB": "PL1Input", "L1WeightKiB": "PL1Weight", "L1OutputKiB": "PL1Output",
	"L2Config":     "PL2Config",
	"L2InputMult":  "PL2InputMult",
	"L2WeightMult": "PL2WeightMult",
	"L2OutputMult": "PL2OutputMult",
	"GlobalMiB":    "PGlobal",
	"MemChannels":  "PChannels",
	"NativeBatch":  "PNativeBatch",
}

// fixedOf maps the fixed platform-attribute Config fields to their
// fixed= directive tokens.
var fixedOf = map[string]string{
	"Cores":    "cores",
	"ClockGHz": "clock",
	"Mem":      "mem",
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			dir, err := analysis.ParseStageDirective(fd.Doc)
			if err != nil {
				pass.Report(analysis.Diagnostic{Pos: fd.Pos(), Message: err.Error()})
				continue
			}
			if dir == nil {
				if pos, ok := usesStageCache(pass.Pkg, fd.Body); ok {
					pass.Report(analysis.Diagnostic{Pos: fd.Pos(), Message: fmt.Sprintf(
						"%s memoizes through a stage cache (at %s) but has no //fast:stage mask directive",
						fd.Name.Name, pass.Fset.Position(pos))})
				}
				continue
			}
			checkStage(pass, file, fd, dir)
		}
	}
	return nil
}

// usesStageCache reports whether body calls the get method of the sim
// stage-cache type (a method named "get" or "Get" on a receiver whose
// named type contains "stageCache").
func usesStageCache(pkg *load.Package, body ast.Node) (token.Pos, bool) {
	var pos token.Pos
	var found bool
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || found {
			return !found
		}
		s := pkg.Info.Selections[sel]
		if s == nil || s.Kind() != types.MethodVal {
			return true
		}
		if name := s.Obj().Name(); name != "get" && name != "Get" {
			return true
		}
		if named := namedOf(s.Recv()); named != nil && strings.Contains(named.Obj().Name(), "stageCache") {
			pos, found = sel.Pos(), true
		}
		return !found
	})
	return pos, found
}

// checkStage verifies one annotated stage function against its directive.
func checkStage(pass *analysis.Pass, file *ast.File, fd *ast.FuncDecl, dir *analysis.StageDirective) {
	mask, err := evalMaskExpr(pass.Prog, pass.Pkg, file, dir.MaskExpr)
	if err != nil {
		pass.Report(analysis.Diagnostic{Pos: dir.Pos, Message: fmt.Sprintf(
			"fast:stage mask=%s: %v", dir.MaskExpr, err)})
		return
	}
	fixed := map[string]bool{}
	for _, f := range dir.Fixed {
		if !validFixed(f) {
			pass.Report(analysis.Diagnostic{Pos: dir.Pos, Message: fmt.Sprintf(
				"fast:stage fixed=%s: unknown attribute %q (want cores, clock, mem)", strings.Join(dir.Fixed, ","), f)})
			return
		}
		fixed[f] = true
	}

	tr := &tracer{prog: pass.Prog, visited: map[*types.Func]bool{}, reads: map[string]readSite{}}
	tr.walk(pass.Pkg, fd.Body, "")

	var fields []string
	for f := range tr.reads {
		fields = append(fields, f)
	}
	sort.Strings(fields)
	for _, f := range fields {
		site := tr.reads[f]
		where := pass.Fset.Position(site.pos).String()
		if site.chain != "" {
			where += " via " + site.chain
		}
		switch {
		case paramOf[f] != "":
			bit, err := paramBit(site.cfg, paramOf[f])
			if err != nil {
				pass.Report(analysis.Diagnostic{Pos: fd.Pos(), Message: fmt.Sprintf(
					"%s: cannot resolve parameter %s for Config.%s: %v", fd.Name.Name, paramOf[f], f, err)})
				continue
			}
			if mask&bit == 0 {
				pass.Report(analysis.Diagnostic{Pos: fd.Pos(), Message: fmt.Sprintf(
					"%s reads Config.%s (%s) outside its declared mask %s — stale cache aliasing (read at %s)",
					fd.Name.Name, f, paramOf[f], dir.MaskExpr, where)})
			}
		case fixedOf[f] != "":
			if !fixed[fixedOf[f]] {
				pass.Report(analysis.Diagnostic{Pos: fd.Pos(), Message: fmt.Sprintf(
					"%s reads fixed attribute Config.%s but the directive does not declare fixed=%s (read at %s)",
					fd.Name.Name, f, fixedOf[f], where)})
			}
		default:
			pass.Report(analysis.Diagnostic{Pos: fd.Pos(), Message: fmt.Sprintf(
				"%s reads Config.%s, which no stage cache key covers (read at %s)", fd.Name.Name, f, where)})
		}
	}

	var escapes []string
	for e := range tr.escapes {
		escapes = append(escapes, e)
	}
	sort.Strings(escapes)
	for _, e := range escapes {
		site := tr.escapes[e]
		pass.Report(analysis.Diagnostic{Pos: fd.Pos(), Message: fmt.Sprintf(
			"%s passes arch.Config to %s, whose body maskcheck cannot analyze (at %s)",
			fd.Name.Name, e, pass.Fset.Position(site))})
	}
}

func validFixed(tok string) bool {
	for _, v := range fixedOf {
		if v == tok {
			return true
		}
	}
	return false
}

// readSite records where a Config field read was first observed.
type readSite struct {
	pos   token.Pos
	chain string
	// cfg is the Config named type the read was observed on; its
	// package resolves the parameter constants.
	cfg *types.Named
}

// tracer walks a stage function's reachable call graph collecting
// arch.Config field reads.
type tracer struct {
	prog    *load.Program
	visited map[*types.Func]bool
	reads   map[string]readSite
	escapes map[string]token.Pos
}

// walk records Config field reads in body (a node of pkg) and recurses
// into every statically resolvable callee defined in the module.
func (t *tracer) walk(pkg *load.Package, body ast.Node, chain string) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			t.selector(pkg, n, chain)
		case *ast.CallExpr:
			t.call(pkg, n, chain)
		}
		return true
	})
}

// selector records a Config field read, and traces method values and
// method expressions (on any receiver type) like calls — Config reads
// hide behind helpers like NumPEs or a power model's Evaluate.
func (t *tracer) selector(pkg *load.Package, sel *ast.SelectorExpr, chain string) {
	s := pkg.Info.Selections[sel]
	if s == nil {
		return
	}
	switch s.Kind() {
	case types.FieldVal:
		if named := namedOf(s.Recv()); named != nil && isConfigType(named) {
			name := s.Obj().Name()
			if _, seen := t.reads[name]; !seen {
				t.reads[name] = readSite{pos: sel.Sel.Pos(), chain: chain, cfg: named}
			}
		}
	case types.MethodVal, types.MethodExpr:
		fn, ok := s.Obj().(*types.Func)
		if !ok || isSubKey(fn, s.Recv()) {
			return
		}
		t.descend(fn, sel.Sel.Pos(), chain, pkg)
	}
}

// isSubKey matches the Config.SubKey keying primitive, which reads
// every field by design and is exempt from the trace.
func isSubKey(fn *types.Func, recv types.Type) bool {
	if fn.Name() != "SubKey" {
		return false
	}
	named := namedOf(recv)
	return named != nil && isConfigType(named)
}

// call resolves the callee of one call expression. Package-level
// functions and methods defined in the module are descended into
// (selector already handles methods; descend dedups); calls out of the
// analyzable world are an escape when a Config value flows into them.
func (t *tracer) call(pkg *load.Package, call *ast.CallExpr, chain string) {
	var fn *types.Func
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = pkg.Info.Uses[f].(*types.Func)
	case *ast.SelectorExpr:
		if s := pkg.Info.Selections[f]; s != nil {
			fn, _ = s.Obj().(*types.Func)
			if fn != nil && isSubKey(fn, s.Recv()) {
				return
			}
		} else {
			// Qualified call through a package name (pkg.Func).
			fn, _ = pkg.Info.Uses[f.Sel].(*types.Func)
		}
	default:
		// A call through a function value (e.g. the memoized compute
		// closure): its body, if a literal, is walked in place.
	}
	if fn == nil {
		return
	}
	if !t.descend(fn, call.Pos(), chain, pkg) {
		t.checkEscape(pkg, call, fn, chain)
	}
}

// descend recurses into fn's declaration if the module defines it.
// Reports whether a body was found.
func (t *tracer) descend(fn *types.Func, pos token.Pos, chain string, from *load.Package) bool {
	decl := t.prog.FuncDecl(fn)
	if decl == nil || decl.Body == nil {
		return false
	}
	if t.visited[fn] {
		return true
	}
	t.visited[fn] = true
	callee := t.prog.ByPath[fn.Pkg().Path()]
	if callee == nil {
		return false
	}
	name := fn.Name()
	if fn.Pkg() != from.Types {
		name = fn.Pkg().Name() + "." + name
	}
	next := name
	if chain != "" {
		next = chain + " → " + name
	}
	t.walk(callee, decl.Body, next)
	return true
}

// checkEscape reports a Config-typed value flowing into a function the
// analyzer has no body for (standard library, interface method, …).
func (t *tracer) checkEscape(pkg *load.Package, call *ast.CallExpr, fn *types.Func, chain string) {
	for _, arg := range call.Args {
		tv, ok := pkg.Info.Types[arg]
		if !ok {
			continue
		}
		if named := namedOf(tv.Type); named != nil && isConfigType(named) {
			if t.escapes == nil {
				t.escapes = map[string]token.Pos{}
			}
			name := fn.FullName()
			if chain != "" {
				name += " (via " + chain + ")"
			}
			if _, seen := t.escapes[name]; !seen {
				t.escapes[name] = call.Pos()
			}
		}
	}
}

// isConfigType reports whether named is the architecture Config type:
// a struct named Config whose package also declares ParamMask (this
// identifies internal/arch without hardcoding its import path, so the
// analyzer tests can use a fixture package).
func isConfigType(named *types.Named) bool {
	if named.Obj().Name() != "Config" || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Scope().Lookup("ParamMask") != nil
}

// namedOf unwraps pointers and aliases down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// paramBit returns 1<<value of the named parameter constant in the
// package that declares the Config type the read was observed on.
func paramBit(cfg *types.Named, constName string) (uint64, error) {
	obj := cfg.Obj().Pkg().Scope().Lookup(constName)
	c, ok := obj.(*types.Const)
	if !ok {
		return 0, fmt.Errorf("%s is not a constant in package %s", constName, cfg.Obj().Pkg().Path())
	}
	v, err := constUint64(c)
	if err != nil {
		return 0, err
	}
	return 1 << v, nil
}

// --- mask expression evaluation ---

// evalMaskExpr evaluates a //fast:stage mask expression in the context
// of the file it annotates: identifiers resolve to package-level
// constants and variables (variables through their initializer
// expressions), pkg.Name selectors resolve through the file's imports,
// MaskOf calls fold to their bit-or, and |, &, ^, &^ combine masks.
func evalMaskExpr(prog *load.Program, pkg *load.Package, file *ast.File, expr string) (uint64, error) {
	e, err := parser.ParseExpr(expr)
	if err != nil {
		return 0, fmt.Errorf("parse: %v", err)
	}
	return evalUntyped(prog, pkg, file, e)
}

// evalUntyped evaluates a freshly parsed (untypechecked) expression.
func evalUntyped(prog *load.Program, pkg *load.Package, file *ast.File, e ast.Expr) (uint64, error) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return evalUntyped(prog, pkg, file, e.X)
	case *ast.BasicLit:
		var v uint64
		if _, err := fmt.Sscanf(e.Value, "%v", &v); err != nil {
			return 0, fmt.Errorf("bad literal %s", e.Value)
		}
		return v, nil
	case *ast.Ident:
		return evalObject(prog, pkg.Types.Scope().Lookup(e.Name), e.Name)
	case *ast.SelectorExpr:
		x, ok := e.X.(*ast.Ident)
		if !ok {
			return 0, fmt.Errorf("unsupported selector base in mask expression")
		}
		dep, err := importedPackage(prog, pkg, file, x.Name)
		if err != nil {
			return 0, err
		}
		return evalObject(prog, dep.Types.Scope().Lookup(e.Sel.Name), x.Name+"."+e.Sel.Name)
	case *ast.BinaryExpr:
		lhs, err := evalUntyped(prog, pkg, file, e.X)
		if err != nil {
			return 0, err
		}
		rhs, err := evalUntyped(prog, pkg, file, e.Y)
		if err != nil {
			return 0, err
		}
		return applyOp(e.Op, lhs, rhs)
	case *ast.CallExpr:
		return foldMaskOf(e, func(arg ast.Expr) (uint64, error) {
			return evalUntyped(prog, pkg, file, arg)
		})
	}
	return 0, fmt.Errorf("unsupported mask expression form %T", e)
}

// evalTyped evaluates an expression that was typechecked as part of
// pkg (a package-level variable initializer).
func evalTyped(prog *load.Program, pkg *load.Package, e ast.Expr) (uint64, error) {
	if tv, ok := pkg.Info.Types[e]; ok && tv.Value != nil {
		return constValUint64(tv.Value, "expression")
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return evalTyped(prog, pkg, e.X)
	case *ast.Ident:
		return evalObject(prog, pkg.Info.Uses[e], e.Name)
	case *ast.SelectorExpr:
		return evalObject(prog, pkg.Info.Uses[e.Sel], e.Sel.Name)
	case *ast.BinaryExpr:
		lhs, err := evalTyped(prog, pkg, e.X)
		if err != nil {
			return 0, err
		}
		rhs, err := evalTyped(prog, pkg, e.Y)
		if err != nil {
			return 0, err
		}
		return applyOp(e.Op, lhs, rhs)
	case *ast.CallExpr:
		return foldMaskOf(e, func(arg ast.Expr) (uint64, error) {
			return evalTyped(prog, pkg, arg)
		})
	}
	return 0, fmt.Errorf("unsupported mask initializer form %T", e)
}

// foldMaskOf folds a MaskOf(p...) call into its bit-or; the callee is
// matched syntactically (MaskOf or pkg.MaskOf) so the same fold serves
// typechecked initializers and raw directive expressions.
func foldMaskOf(call *ast.CallExpr, evalArg func(ast.Expr) (uint64, error)) (uint64, error) {
	name := ""
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = f.Name
	case *ast.SelectorExpr:
		name = f.Sel.Name
	}
	if name != "MaskOf" {
		return 0, fmt.Errorf("unsupported call %s in mask expression (only MaskOf)", name)
	}
	var mask uint64
	for _, arg := range call.Args {
		p, err := evalArg(arg)
		if err != nil {
			return 0, err
		}
		mask |= 1 << p
	}
	return mask, nil
}

// evalObject evaluates a package-level constant or variable object: a
// constant yields its value, a variable its (recursively evaluated)
// initializer from the defining package's source.
func evalObject(prog *load.Program, obj types.Object, name string) (uint64, error) {
	switch obj := obj.(type) {
	case *types.Const:
		return constUint64(obj)
	case *types.Var:
		defPkg := prog.ByPath[obj.Pkg().Path()]
		if defPkg == nil {
			return 0, fmt.Errorf("%s: defining package %s not loaded from source", name, obj.Pkg().Path())
		}
		init := varInit(defPkg, obj)
		if init == nil {
			return 0, fmt.Errorf("%s has no package-level initializer", name)
		}
		return evalTyped(prog, defPkg, init)
	case nil:
		return 0, fmt.Errorf("unknown identifier %s", name)
	}
	return 0, fmt.Errorf("%s is neither a constant nor a variable", name)
}

// varInit finds the package-level initializer expression of v.
func varInit(pkg *load.Package, v *types.Var) ast.Expr {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs := spec.(*ast.ValueSpec)
				for i, name := range vs.Names {
					if pkg.Info.Defs[name] == v && i < len(vs.Values) {
						return vs.Values[i]
					}
				}
			}
		}
	}
	return nil
}

// importedPackage resolves a file's import by local name or base path
// element to a source-loaded module package.
func importedPackage(prog *load.Program, pkg *load.Package, file *ast.File, name string) (*load.Package, error) {
	for _, im := range file.Imports {
		path := strings.Trim(im.Path.Value, `"`)
		local := ""
		if im.Name != nil {
			local = im.Name.Name
		} else if i := strings.LastIndex(path, "/"); i >= 0 {
			local = path[i+1:]
		} else {
			local = path
		}
		if local != name {
			continue
		}
		dep := prog.ByPath[path]
		if dep == nil {
			return nil, fmt.Errorf("package %s (%s) not loaded from source", name, path)
		}
		return dep, nil
	}
	return nil, fmt.Errorf("no import named %s in %s", name, pkg.Path)
}

// applyOp folds one binary operator over mask values.
func applyOp(op token.Token, lhs, rhs uint64) (uint64, error) {
	switch op {
	case token.OR:
		return lhs | rhs, nil
	case token.AND:
		return lhs & rhs, nil
	case token.AND_NOT:
		return lhs &^ rhs, nil
	case token.XOR:
		return lhs ^ rhs, nil
	case token.SHL:
		return lhs << rhs, nil
	case token.ADD:
		return lhs + rhs, nil
	case token.SUB:
		return lhs - rhs, nil
	}
	return 0, fmt.Errorf("unsupported operator %s in mask expression", op)
}

// constUint64 extracts a uint64 from a typed constant object.
func constUint64(c *types.Const) (uint64, error) {
	return constValUint64(c.Val(), c.Name())
}

func constValUint64(v constant.Value, name string) (uint64, error) {
	u, ok := constant.Uint64Val(constant.ToInt(v))
	if !ok {
		return 0, fmt.Errorf("%s is not an integer constant", name)
	}
	return u, nil
}
