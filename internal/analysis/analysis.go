// Package analysis is a minimal, dependency-free analogue of
// golang.org/x/tools/go/analysis for the fastlint suite (cmd/fastlint):
// enough framework to write typechecked AST analyzers with positioned
// diagnostics, golden tests (internal/analysis/analysistest), and an
// auditable suppression mechanism.
//
// Two comment directives tie the suite to the engine's invariants:
//
//	//fast:stage mask=<ParamMask expr> [fixed=<attr,attr,...>]
//
// declares, on a memoized stage function, the exact arch.Config
// sub-tuple its cache key covers (verified by the maskcheck analyzer),
// and
//
//	//fast:allow <analyzer> <reason>
//
// suppresses one diagnostic of the named analyzer on the directive's
// line (or the first code line below it), making every intentional
// exception visible and greppable. A reason is mandatory: an allow
// without one is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"fast/internal/analysis/load"
)

// An Analyzer describes one fastlint pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //fast:allow
	// directives.
	Name string
	// Doc is a one-paragraph description of the invariant checked.
	Doc string
	// Run analyzes one package and reports diagnostics via pass.Report.
	Run func(pass *Pass) error
}

// A Pass connects an Analyzer to one package of the loaded program.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *load.Package
	// Prog is the whole loaded program, for interprocedural analyzers
	// (maskcheck traces field reads across package boundaries).
	Prog   *load.Program
	Report func(Diagnostic)
}

// A Diagnostic is one finding, positioned at Pos.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Run applies analyzers to the given packages of prog, filters
// //fast:allow-suppressed findings, and returns the survivors sorted by
// position. Malformed directives (unknown analyzer names, missing
// reasons) are reported as diagnostics of the pseudo-analyzer
// "directive".
func Run(prog *load.Program, pkgs []*load.Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, pkg := range pkgs {
		allows, bad := collectAllows(prog.Fset, pkg, known)
		diags = append(diags, bad...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     prog.Fset,
				Pkg:      pkg,
				Prog:     prog,
				Report: func(d Diagnostic) {
					d.Analyzer = a.Name
					if !allows.suppresses(prog.Fset, d) {
						diags = append(diags, d)
					}
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := prog.Fset.Position(diags[i].Pos), prog.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// allowIndex records, per file, the set of (line, analyzer) pairs an
// //fast:allow directive covers.
type allowIndex map[string]map[int]map[string]bool

func (ai allowIndex) add(file string, line int, analyzer string) {
	if ai[file] == nil {
		ai[file] = map[int]map[string]bool{}
	}
	if ai[file][line] == nil {
		ai[file][line] = map[string]bool{}
	}
	ai[file][line][analyzer] = true
}

func (ai allowIndex) suppresses(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	return ai[pos.Filename][pos.Line][d.Analyzer]
}

// collectAllows parses every //fast:allow directive in pkg. Each
// directive covers its own source line and the first non-comment line
// after its comment group (so an allow inside a doc comment covers the
// declaration it documents).
func collectAllows(fset *token.FileSet, pkg *load.Package, known map[string]bool) (allowIndex, []Diagnostic) {
	idx := allowIndex{}
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//fast:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				pos := fset.Position(c.Pos())
				if len(fields) == 0 || !known[fields[0]] {
					bad = append(bad, Diagnostic{
						Pos: c.Pos(), Analyzer: "directive",
						Message: "fast:allow needs a known analyzer name (maskcheck, detrange, nondetsource, poolescape)",
					})
					continue
				}
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos: c.Pos(), Analyzer: "directive",
						Message: fmt.Sprintf("fast:allow %s needs a reason", fields[0]),
					})
					continue
				}
				idx.add(pos.Filename, pos.Line, fields[0])
				// Cover the first code line after the comment group: the
				// group's end is the last comment line, so the next line
				// holds the suppressed declaration or statement.
				end := fset.Position(cg.End())
				idx.add(end.Filename, end.Line+1, fields[0])
			}
		}
	}
	return idx, bad
}

// StageDirective is a parsed //fast:stage declaration.
type StageDirective struct {
	// MaskExpr is the declared ParamMask expression, verbatim.
	MaskExpr string
	// Fixed lists the fixed platform attributes (lower-case tokens:
	// "cores", "clock", "mem") the stage's cache key carries beside the
	// masked sub-tuple.
	Fixed []string
	// Pos locates the directive comment.
	Pos token.Pos
}

// ParseStageDirective extracts the //fast:stage directive from a
// function's doc comment, if any. A malformed directive returns an
// error describing the expected grammar.
func ParseStageDirective(doc *ast.CommentGroup) (*StageDirective, error) {
	if doc == nil {
		return nil, nil
	}
	for _, c := range doc.List {
		text, ok := strings.CutPrefix(c.Text, "//fast:stage")
		if !ok {
			continue
		}
		d := &StageDirective{Pos: c.Pos()}
		for _, field := range strings.Fields(text) {
			switch {
			case strings.HasPrefix(field, "mask="):
				d.MaskExpr = strings.TrimPrefix(field, "mask=")
			case strings.HasPrefix(field, "fixed="):
				for _, tok := range strings.Split(strings.TrimPrefix(field, "fixed="), ",") {
					if tok != "" {
						d.Fixed = append(d.Fixed, tok)
					}
				}
			default:
				return nil, fmt.Errorf("fast:stage: unknown field %q (want mask=<expr> [fixed=<attr,...>])", field)
			}
		}
		if d.MaskExpr == "" {
			return nil, fmt.Errorf("fast:stage needs mask=<ParamMask expr>")
		}
		return d, nil
	}
	return nil, nil
}
