package analysistest

import (
	"go/ast"
	"strings"
	"testing"

	"fast/internal/analysis"
)

// toy reports every function whose name starts with "bad", so the
// harness's want-matching and //fast:allow filtering can be checked
// against a known fixture.
var toy = &analysis.Analyzer{
	Name: "toy",
	Doc:  "reports functions named bad*",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && strings.HasPrefix(fd.Name.Name, "bad") {
					pass.Report(analysis.Diagnostic{Pos: fd.Pos(), Message: "function named " + fd.Name.Name})
				}
			}
		}
		return nil
	},
}

func TestRunMatchesWants(t *testing.T) {
	Run(t, "testdata", toy, "att")
}
