// Package analysistest runs fastlint analyzers over GOPATH-style
// testdata packages and checks their diagnostics against `// want`
// expectations, mirroring golang.org/x/tools/go/analysis/analysistest
// with only the standard library.
//
// Layout: <testdata>/src/<pkg>/*.go, loaded in the order given (list
// dependency packages first). Each expectation is a comment on the
// line the diagnostic is reported at:
//
//	m := map[string]int{} // no diagnostic
//	for k := range m {    // want `map iteration order`
//
// The quoted text is a regular expression matched against the
// diagnostic message; several quoted patterns in one comment expect
// several diagnostics on that line. Lines carrying a //fast:allow
// directive and no want comment assert the suppression path: the
// analyzer must report nothing there.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"testing"

	"fast/internal/analysis"
	"fast/internal/analysis/load"
)

var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// Run loads the listed packages from testdata/src and checks a's
// diagnostics (after //fast:allow filtering) against the // want
// comments in their sources.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	root := filepath.Join(testdata, "src")
	prog, err := load.LoadDirs(root, pkgs...)
	if err != nil {
		t.Fatalf("load %v: %v", pkgs, err)
	}
	diags, err := analysis.Run(prog, prog.Pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	type expectation struct {
		rx      *regexp.Regexp
		raw     string
		matched bool
	}
	want := map[string][]*expectation{} // "file:line" -> expectations
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pos := prog.Fset.Position(c.Pos())
					text := c.Text
					idx := indexWant(text)
					if idx < 0 {
						continue
					}
					for _, m := range wantRE.FindAllStringSubmatch(text[idx:], -1) {
						raw := m[1]
						if raw == "" {
							raw = m[2]
						}
						rx, err := regexp.Compile(raw)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, raw, err)
						}
						key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
						want[key] = append(want[key], &expectation{rx: rx, raw: raw})
					}
				}
			}
		}
	}

	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		var match *expectation
		for _, e := range want[key] {
			if !e.matched && e.rx.MatchString(d.Message) {
				match = e
				break
			}
		}
		if match == nil {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", pos, d.Analyzer, d.Message)
			continue
		}
		match.matched = true
	}
	for key, exps := range want {
		for _, e := range exps {
			if !e.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, e.raw)
			}
		}
	}
}

// indexWant finds the start of a "// want" marker in a comment.
func indexWant(text string) int {
	for i := 0; i+6 <= len(text); i++ {
		if text[i:i+6] == " want " || text[i:i+6] == "\twant " {
			return i + 6
		}
	}
	return -1
}
