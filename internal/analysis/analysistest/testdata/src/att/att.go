// Package att is the self-test fixture for the analysistest harness.
package att

func badOne() {} // want `function named badOne`

func good() {}

//fast:allow toy fixture for the suppression path
func badTwo() {}
