package serve

// Tests for the resource-governance layer: admission shedding with
// Retry-After, the memory watchdog, study deadlines, checkpoint-byte
// quotas, panic quarantine, trial-rate pacing, and SSE behaviour under
// client disconnects and concurrent cancels.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fast/internal/store"
)

// leakCheck fails the test if goroutines spawned during it are still
// alive once every deferred shutdown has run. Register it first so its
// cleanup runs last (after the deferred ts.stop()).
func leakCheck(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:n])
	})
}

// postJSON performs one POST and returns the raw response plus the
// decoded body, so callers can assert on headers (Retry-After).
func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out) //nolint:errcheck // some replies have empty bodies
	return resp, out
}

// waitTerminal polls until the study reaches any terminal state
// (waitFor fatals on "failed", which several governance tests expect).
func waitTerminal(t *testing.T, base, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		sum := doJSON(t, "GET", base+"/v1/studies/"+id, nil, http.StatusOK)
		switch sum["state"] {
		case store.StateDone, store.StateFailed, store.StateCanceled, store.StateInterrupted:
			return sum
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for a terminal state on study %s", id)
	return nil
}

func metricValue(t *testing.T, base, name string) float64 {
	t.Helper()
	vars := doJSON(t, "GET", base+"/debug/vars", nil, http.StatusOK)
	v, _ := vars[name].(float64)
	return v
}

func smallSpec(id string, trials, batch int) map[string]any {
	return map[string]any{
		"id": id, "workloads": []string{"mobilenetv2"},
		"algorithm": "lcs", "trials": trials, "seed": 5, "batch_size": batch,
	}
}

// TestShedQueueFull: submissions beyond the per-tenant queue bound are
// shed 429 with a Retry-After hint while in-quota studies keep running.
func TestShedQueueFull(t *testing.T) {
	release := make(chan struct{})
	ts := newTestServer(t, t.TempDir(), func(c *Config) {
		c.MaxStudiesPerTenant = 10
		c.MaxActivePerTenant = 1
		c.MaxQueuedPerTenant = 1
		c.RetryAfter = 7 * time.Second
		c.batchHook = func(tenant, _ string) {
			if tenant == "default" {
				<-release
			}
		}
	})
	defer ts.stop()
	released := false
	defer func() {
		if !released {
			close(release)
		}
	}()
	base := ts.http.URL

	doJSON(t, "POST", base+"/v1/studies", smallSpec("g1", 600, 8), http.StatusCreated)
	waitFor(t, base, "g1", "g1 running", stateIs(store.StateRunning))
	doJSON(t, "POST", base+"/v1/studies", smallSpec("g2", 600, 8), http.StatusCreated)

	resp, body := postJSON(t, base+"/v1/studies", smallSpec("g3", 600, 8))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-queue submit = %d, want 429 (body %v)", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q, want %q", got, "7")
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "queue full") {
		t.Errorf("shed body = %v, want queue-full error", body)
	}
	if n := metricValue(t, base, "fastserve_shed_queue_total"); n < 1 {
		t.Errorf("fastserve_shed_queue_total = %v, want >= 1", n)
	}
	if n := metricValue(t, base, "fastserve_shed_total"); n < 1 {
		t.Errorf("fastserve_shed_total = %v, want >= 1", n)
	}

	// The shed did not disturb the in-quota studies.
	close(release)
	released = true
	waitFor(t, base, "g1", "g1 done", stateIs(store.StateDone))
	waitFor(t, base, "g2", "g2 done", stateIs(store.StateDone))
}

// TestWatchdogPausesAdmission: above the memory limit creates and
// resumes shed 503 + Retry-After; below 80% of the limit admission
// reopens. The memUsage seam drives the policy deterministically.
func TestWatchdogPausesAdmission(t *testing.T) {
	var mem atomic.Uint64
	mem.Store(50)
	ts := newTestServer(t, t.TempDir(), func(c *Config) {
		c.MemoryLimitBytes = 100
		c.watchdogEvery = time.Hour // driven manually via checkMemory
		c.memUsage = func() uint64 { return mem.Load() }
	})
	defer ts.stop()
	base := ts.http.URL

	doJSON(t, "POST", base+"/v1/studies", smallSpec("w1", 8, 4), http.StatusCreated)
	waitTerminal(t, base, "w1")

	mem.Store(200)
	ts.srv.checkMemory()
	resp, body := postJSON(t, base+"/v1/studies", smallSpec("w2", 8, 4))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("paused submit = %d, want 503 (body %v)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("paused submit missing Retry-After")
	}
	if code := rawStatus(t, "POST", base+"/v1/studies/w1/resume", nil); code != http.StatusServiceUnavailable {
		t.Errorf("paused resume = %d, want 503", code)
	}
	if v := metricValue(t, base, "fastserve_watchdog_paused"); v != 1 {
		t.Errorf("fastserve_watchdog_paused = %v, want 1", v)
	}
	if n := metricValue(t, base, "fastserve_shed_overload_total"); n < 2 {
		t.Errorf("fastserve_shed_overload_total = %v, want >= 2", n)
	}

	// 85 is inside the hysteresis band: still paused.
	mem.Store(85)
	ts.srv.checkMemory()
	if code := rawStatus(t, "POST", base+"/v1/studies", smallSpec("w3", 8, 4)); code != http.StatusServiceUnavailable {
		t.Errorf("in-band submit = %d, want 503 (hysteresis)", code)
	}

	mem.Store(50)
	ts.srv.checkMemory()
	doJSON(t, "POST", base+"/v1/studies", smallSpec("w4", 8, 4), http.StatusCreated)
	waitTerminal(t, base, "w4")
	if v := metricValue(t, base, "fastserve_watchdog_paused"); v != 0 {
		t.Errorf("fastserve_watchdog_paused = %v after recovery, want 0", v)
	}
}

// TestStudyDeadline: a study whose wall-clock deadline fires mid-run
// fails with a retryable deadline error and keeps its durable prefix.
func TestStudyDeadline(t *testing.T) {
	ts := newTestServer(t, t.TempDir(), func(c *Config) {
		// Pace batches so the 100ms deadline lands mid-study.
		c.batchHook = func(string, string) { time.Sleep(20 * time.Millisecond) }
	})
	defer ts.stop()
	base := ts.http.URL

	spec := smallSpec("dl", 600, 8)
	spec["deadline_sec"] = 0.1
	doJSON(t, "POST", base+"/v1/studies", spec, http.StatusCreated)
	sum := waitTerminal(t, base, "dl")
	if sum["state"] != store.StateFailed {
		t.Fatalf("state = %v, want failed", sum["state"])
	}
	if msg, _ := sum["error"].(string); !strings.Contains(msg, "deadline exceeded") {
		t.Errorf("error = %q, want deadline message", msg)
	}
	if cls, _ := sum["error_class"].(string); cls != "retryable" {
		t.Errorf("error_class = %q, want retryable", cls)
	}
	if n := metricValue(t, base, "fastserve_deadline_expired_total"); n < 1 {
		t.Errorf("fastserve_deadline_expired_total = %v, want >= 1", n)
	}
	if done, _ := sum["trials_done"].(float64); done < 8 {
		t.Errorf("trials_done = %v, want the durable prefix (>= 8)", done)
	}
}

// TestCheckpointQuota: a study that exceeds its transcript byte quota
// fails terminally with the batch that crossed the line still durable,
// and resumes to completion under a raised limit after a restart.
func TestCheckpointQuota(t *testing.T) {
	dir := t.TempDir()
	ts := newTestServer(t, dir, func(c *Config) { c.MaxCheckpointBytes = 1 })
	base := ts.http.URL

	doJSON(t, "POST", base+"/v1/studies", smallSpec("cq", 8, 4), http.StatusCreated)
	sum := waitTerminal(t, base, "cq")
	if sum["state"] != store.StateFailed {
		t.Fatalf("state = %v, want failed", sum["state"])
	}
	if msg, _ := sum["error"].(string); !strings.Contains(msg, "checkpoint quota exceeded") {
		t.Errorf("error = %q, want checkpoint-quota message", msg)
	}
	if cls, _ := sum["error_class"].(string); cls != "terminal" {
		t.Errorf("error_class = %q, want terminal", cls)
	}
	if n := metricValue(t, base, "fastserve_checkpoint_quota_total"); n != 1 {
		t.Errorf("fastserve_checkpoint_quota_total = %v, want 1", n)
	}
	if done, _ := sum["trials_done"].(float64); done < 4 {
		t.Errorf("trials_done = %v, want the crossing batch durable (>= 4)", done)
	}
	doJSON(t, "GET", base+"/healthz", nil, http.StatusOK)
	ts.stop()

	// Restart with the quota raised: the durable prefix resumes.
	ts2 := newTestServer(t, dir, nil)
	defer ts2.stop()
	doJSON(t, "POST", ts2.http.URL+"/v1/studies/cq/resume", nil, http.StatusAccepted)
	final := waitTerminal(t, ts2.http.URL, "cq")
	if final["state"] != store.StateDone {
		t.Fatalf("resumed state = %v (err %v), want done", final["state"], final["error"])
	}
	if done, _ := final["trials_done"].(float64); int(done) != 8 {
		t.Errorf("resumed trials_done = %v, want 8", done)
	}
}

// TestPanicQuarantine: a panic inside one study's drive fails that
// study terminally and leaves the daemon serving other studies.
func TestPanicQuarantine(t *testing.T) {
	ts := newTestServer(t, t.TempDir(), func(c *Config) {
		c.batchHook = func(_, id string) {
			if id == "boom" {
				panic("objective exploded")
			}
		}
	})
	defer ts.stop()
	base := ts.http.URL

	doJSON(t, "POST", base+"/v1/studies", smallSpec("boom", 8, 4), http.StatusCreated)
	sum := waitTerminal(t, base, "boom")
	if sum["state"] != store.StateFailed {
		t.Fatalf("state = %v, want failed", sum["state"])
	}
	if msg, _ := sum["error"].(string); !strings.Contains(msg, "panic") {
		t.Errorf("error = %q, want panic message", msg)
	}
	if cls, _ := sum["error_class"].(string); cls != "terminal" {
		t.Errorf("error_class = %q, want terminal", cls)
	}
	if n := metricValue(t, base, "fastserve_studies_quarantined_total"); n != 1 {
		t.Errorf("fastserve_studies_quarantined_total = %v, want 1", n)
	}

	// The daemon survived and other studies still run to completion.
	doJSON(t, "GET", base+"/healthz", nil, http.StatusOK)
	doJSON(t, "POST", base+"/v1/studies", smallSpec("fine", 8, 4), http.StatusCreated)
	waitFor(t, base, "fine", "fine done", stateIs(store.StateDone))
}

// TestThrottleDeterminism: the per-tenant trial-rate limit delays
// checkpoints without changing them — a throttled run's transcript is
// byte-identical to an unthrottled run's.
func TestThrottleDeterminism(t *testing.T) {
	spec := smallSpec("tr", 16, 8)

	dirA := t.TempDir()
	a := newTestServer(t, dirA, nil)
	doJSON(t, "POST", a.http.URL+"/v1/studies", spec, http.StatusCreated)
	waitFor(t, a.http.URL, "tr", "unthrottled done", stateIs(store.StateDone))
	a.stop()

	dirB := t.TempDir()
	b := newTestServer(t, dirB, func(c *Config) { c.MaxTrialsPerSec = 50 })
	defer b.stop()
	doJSON(t, "POST", b.http.URL+"/v1/studies", spec, http.StatusCreated)
	waitFor(t, b.http.URL, "tr", "throttled done", stateIs(store.StateDone))
	if n := metricValue(t, b.http.URL, "fastserve_throttle_waits_total"); n < 1 {
		t.Errorf("fastserve_throttle_waits_total = %v, want >= 1", n)
	}

	read := func(dir string) string {
		t.Helper()
		data, err := os.ReadFile(filepath.Join(dir, "default", "tr", "transcript.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	if ta, tb := read(dirA), read(dirB); ta != tb {
		t.Errorf("throttled transcript differs from unthrottled:\n--- unthrottled\n%s\n--- throttled\n%s", ta, tb)
	}
}

// TestSSEDisconnectAndConcurrentCancel: an abrupt client disconnect
// mid-stream leaks nothing, and a cancel racing a live subscriber
// still delivers the terminal frame.
func TestSSEDisconnectAndConcurrentCancel(t *testing.T) {
	leakCheck(t)
	hold := make(chan struct{})
	ts := newTestServer(t, t.TempDir(), func(c *Config) {
		c.batchHook = func(_, id string) {
			if id == "sse2" {
				<-hold
			}
		}
	})
	defer ts.stop()
	held := true
	defer func() {
		if held {
			close(hold)
		}
	}()
	base := ts.http.URL

	doJSON(t, "POST", base+"/v1/studies", smallSpec("sse2", 600, 8), http.StatusCreated)
	waitFor(t, base, "sse2", "sse2 running", stateIs(store.StateRunning))

	// Two subscribers; both see the opening state frame.
	openStream := func() (*http.Response, *bufio.Reader) {
		t.Helper()
		resp, err := http.Get(base + "/v1/studies/sse2/events")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("events = %d, want 200", resp.StatusCode)
		}
		rd := bufio.NewReader(resp.Body)
		line, err := rd.ReadString('\n')
		if err != nil || !strings.HasPrefix(line, "event: state") {
			t.Fatalf("opening frame = %q (err %v), want state event", line, err)
		}
		return resp, rd
	}
	respA, _ := openStream()
	respB, rdB := openStream()

	// A disconnects abruptly mid-stream; its handler must exit via the
	// request context without disturbing the hub or the study.
	respA.Body.Close()

	// Cancel while B is still subscribed, then release the parked batch
	// so the run goroutine can observe the cancellation.
	if code := rawStatus(t, "POST", base+"/v1/studies/sse2/cancel", nil); code != http.StatusAccepted {
		t.Fatalf("cancel = %d, want 202", code)
	}
	close(hold)
	held = false

	// B receives the terminal "done" frame for the canceled study.
	sawDone := false
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		line, err := rdB.ReadString('\n')
		if err != nil {
			break
		}
		if strings.HasPrefix(line, "event: done") {
			sawDone = true
			break
		}
	}
	respB.Body.Close()
	if !sawDone {
		t.Error("subscriber B never saw the terminal done frame")
	}
	waitFor(t, base, "sse2", "canceled", stateIs(store.StateCanceled))
	doJSON(t, "GET", base+"/healthz", nil, http.StatusOK)
}
