package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// eventHub fans a study's progress out to its SSE subscribers. Delivery
// is best-effort by design: a subscriber that cannot drain its buffer
// loses intermediate events (never the stream itself), because a slow
// reader must not be able to stall the study's run goroutine — the
// durable record is the transcript in internal/store, not the event
// stream.
type eventHub struct {
	mu     sync.Mutex
	subs   map[chan event]struct{}
	closed bool
	// terminal names the stream's closing SSE frame: "done" for a study
	// reaching a terminal state, "shutdown" when the server is going
	// away with the study checkpointed-and-paused — clients use the
	// difference to decide between "render the result" and "reconnect
	// and resume later".
	terminal string
}

// event is one SSE frame: a name and a JSON-marshalable payload.
type event struct {
	name string
	data any
}

func newEventHub() *eventHub {
	return &eventHub{subs: map[chan event]struct{}{}}
}

// subscribe registers a buffered subscriber channel. The returned
// cancel is idempotent and safe after close.
func (h *eventHub) subscribe() (<-chan event, func()) {
	ch := make(chan event, 64)
	h.mu.Lock()
	if h.closed {
		close(ch)
		h.mu.Unlock()
		return ch, func() {}
	}
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	var once sync.Once
	return ch, func() {
		once.Do(func() {
			h.mu.Lock()
			if _, ok := h.subs[ch]; ok {
				delete(h.subs, ch)
				close(ch)
			}
			h.mu.Unlock()
		})
	}
}

// publish delivers e to every subscriber that has buffer room.
func (h *eventHub) publish(e event) {
	h.mu.Lock()
	//fast:allow detrange subscribers are independent sinks; delivery order between them is unobservable
	for ch := range h.subs {
		select {
		case ch <- e:
		default: // slow subscriber: drop this event for them
		}
	}
	h.mu.Unlock()
}

// close ends every subscription; the SSE handlers see their channels
// close and finish their responses with a "done" frame. Terminal
// states close the hub.
func (h *eventHub) close() { h.closeWith("done") }

// closeWith is close with an explicit closing-frame name. The first
// close wins; later calls (including plain close) are no-ops.
func (h *eventHub) closeWith(terminal string) {
	h.mu.Lock()
	if !h.closed {
		h.closed = true
		h.terminal = terminal
		for ch := range h.subs {
			delete(h.subs, ch)
			close(ch)
		}
	}
	h.mu.Unlock()
}

// terminalName reports the closing-frame name ("done" until the hub is
// closed with something else).
func (h *eventHub) terminalName() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed && h.terminal != "" {
		return h.terminal
	}
	return "done"
}

// sseHeartbeat keeps idle streams alive through proxies.
const sseHeartbeat = 15 * time.Second

// serveSSE streams a study's events until the stream ends (terminal
// study state), the client disconnects, or the server closes.
func (s *Server) serveSSE(w http.ResponseWriter, r *http.Request, st *study) {
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	hub := s.hubOf(st)
	ch, cancel := hub.subscribe()
	defer cancel()
	s.metrics.sseClients.Add(1)
	defer s.metrics.sseClients.Add(-1)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	// Opening frame: the current state, so a late subscriber is not
	// blind until the next batch.
	writeSSE(w, event{name: "state", data: s.summary(st)})
	fl.Flush()

	hb := time.NewTicker(sseHeartbeat)
	defer hb.Stop()
	for {
		//fast:allow nondetsource SSE delivery races heartbeats and disconnects; the durable record is the transcript
		select {
		case e, open := <-ch:
			if !open {
				// Closing frame: "done" for a study that ended,
				// "shutdown" when the server is draining — either way
				// the hub close is what ends this handler, so
				// Server.Close (which closes every hub) never leaves an
				// SSE response holding http.Server.Shutdown open.
				writeSSE(w, event{name: hub.terminalName(), data: s.summary(st)})
				fl.Flush()
				return
			}
			writeSSE(w, e)
			fl.Flush()
		case <-hb.C:
			fmt.Fprint(w, ": heartbeat\n\n")
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE renders one text/event-stream frame.
func writeSSE(w http.ResponseWriter, e event) {
	data, err := json.Marshal(e.data)
	if err != nil {
		data = []byte(fmt.Sprintf("%q", err.Error()))
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.name, data)
}
