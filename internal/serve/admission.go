package serve

// Admission control and overload protection: the daemon sheds load it
// cannot absorb instead of degrading everyone. Three mechanisms
// compose here (docs/OPERATIONS.md, "Overload & quotas"):
//
//   - Queue bounds: each tenant gets MaxQueuedPerTenant studies
//     waiting for a slot; submissions beyond that are shed 429 with a
//     Retry-After hint rather than growing an unbounded backlog.
//   - Trial-rate pacing: MaxTrialsPerSec throttles each tenant's
//     checkpointed trial rate with a reservation clock. Pacing delays
//     when a batch checkpoint lands, never what it contains, so
//     throttled transcripts are bit-identical to unthrottled ones.
//   - Memory watchdog: above MemoryLimitBytes the daemon pauses
//     admission (503 + Retry-After) and halves the plan-cache budget,
//     resuming once usage falls below 80% of the limit. Running
//     studies are never killed — pressure is relieved by shedding new
//     load and shrinking caches, not by dropping work that is already
//     checkpointing durably.

import (
	"context"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"fast/internal/core"
	"fast/internal/store"
)

// shed writes one overload response: the uniform error body plus a
// Retry-After hint so well-behaved clients back off instead of
// hammering a daemon that already told them no.
func (s *Server) shed(w http.ResponseWriter, code int, format string, args ...any) {
	secs := int(math.Ceil(s.cfg.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	s.metrics.shedTotal.Inc()
	httpError(w, code, format, args...)
}

// queuedLocked counts the tenant's studies waiting for a concurrency
// slot. Caller holds s.mu.
func (s *Server) queuedLocked(tenant string) int {
	n := 0
	for _, st := range s.studies {
		if st.tenant == tenant && st.state == store.StateQueued {
			n++
		}
	}
	return n
}

// rateLimiter paces one tenant's checkpointed trial rate with a
// reservation clock: each batch books len(batch)/rate seconds of
// budget and reports how long its caller must wait for the
// reservation to start.
type rateLimiter struct {
	mu   sync.Mutex
	rate float64   // trials per second
	next time.Time // when the next reservation may start
}

// reserve books n trials and returns the wait before they may land.
func (l *rateLimiter) reserve(n int) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	//fast:allow nondetsource pacing clock delays checkpoint timing, never checkpoint contents
	now := time.Now()
	if l.next.Before(now) {
		l.next = now
	}
	wait := l.next.Sub(now)
	l.next = l.next.Add(time.Duration(float64(n) / l.rate * float64(time.Second)))
	return wait
}

// throttle blocks until the tenant's trial-rate reservation for n
// trials starts (no-op when MaxTrialsPerSec is unset). It returns
// early on ctx cancellation — the pending batch still checkpoints, so
// the durable transcript stays a prefix of the unfaulted run's.
func (s *Server) throttle(ctx context.Context, tenant string, n int) {
	if s.cfg.MaxTrialsPerSec <= 0 {
		return
	}
	s.mu.Lock()
	l := s.limiters[tenant]
	if l == nil {
		l = &rateLimiter{rate: s.cfg.MaxTrialsPerSec}
		s.limiters[tenant] = l
	}
	s.mu.Unlock()
	wait := l.reserve(n)
	if wait <= 0 {
		return
	}
	s.metrics.throttleWaits.Inc()
	t := time.NewTimer(wait)
	defer t.Stop()
	//fast:allow nondetsource pacing sleep races only cancellation; both arms checkpoint the same batch
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// watchdog samples the daemon's heap every watchdogEvery and applies
// the memory-pressure policy. Runs only when MemoryLimitBytes > 0.
func (s *Server) watchdog(ctx context.Context) {
	defer s.wg.Done()
	tick := time.NewTicker(s.cfg.watchdogEvery)
	defer tick.Stop()
	for {
		//fast:allow nondetsource watchdog timing gates admission, never search results
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			s.checkMemory()
		}
	}
}

// checkMemory takes one watchdog sample (split out so tests can drive
// the policy deterministically through the memUsage seam). Above the
// limit: pause admission, halve the plan-cache budget. Below 80% of
// the limit: resume admission. The 20% hysteresis band keeps the
// daemon from flapping between paused and open at the boundary.
func (s *Server) checkMemory() {
	used := s.cfg.memUsage()
	limit := uint64(s.cfg.MemoryLimitBytes)
	switch {
	case used > limit:
		if s.paused.CompareAndSwap(false, true) {
			s.metrics.watchdogPaused.Set(1)
			s.cfg.Logf("level=warn msg=\"memory pressure: admission paused\" used=%d limit=%d", used, limit)
		}
		if info := core.PlanCacheInfo(); info.Entries > 1 {
			core.SetPlanCacheBudget(core.PlanCacheBudget{
				MaxEntries: (info.Entries + 1) / 2,
				MaxBytes:   (info.Bytes + 1) / 2,
			})
			s.metrics.watchdogShrinks.Inc()
		}
	case used <= limit-limit/5:
		if s.paused.CompareAndSwap(true, false) {
			s.metrics.watchdogPaused.Set(0)
			s.cfg.Logf("level=info msg=\"memory pressure cleared: admission resumed\" used=%d limit=%d", used, limit)
		}
	}
}
