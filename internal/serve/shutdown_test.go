package serve

import (
	"bufio"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestShutdownDrain pins the graceful-shutdown contract: Server.Close
// returns only after every in-flight study is durably checkpointed and
// marked interrupted, and every SSE subscriber has received a terminal
// "shutdown" frame (not "done" — clients must be able to tell a server
// going away from a study finishing). The HTTP listener is still up
// when Close returns, mirroring cmd/fast-serve's drain-then-Shutdown
// order.
func TestShutdownDrain(t *testing.T) {
	var midRun sync.Once
	running := make(chan struct{})
	ts := newTestServer(t, t.TempDir(), func(c *Config) {
		c.batchHook = func(string, string) {
			midRun.Do(func() { close(running) })
			time.Sleep(2 * time.Millisecond) // keep the study in flight
		}
	})
	defer ts.http.Close()
	base := ts.http.URL

	doJSON(t, "POST", base+"/v1/studies", map[string]any{
		"id": "drain", "workloads": []string{"mobilenetv2"},
		"algorithm": "lcs", "trials": 2000, "seed": 9, "batch_size": 8,
	}, http.StatusCreated)

	resp, err := http.Get(base + "/v1/studies/drain/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Drain the stream concurrently, remembering the final event name.
	type streamEnd struct {
		last string
		seen map[string]int
	}
	endCh := make(chan streamEnd, 1)
	go func() {
		end := streamEnd{seen: map[string]int{}}
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if name, ok := strings.CutPrefix(sc.Text(), "event: "); ok {
				end.seen[name]++
				end.last = name
			}
		}
		endCh <- end
	}()

	select {
	case <-running:
	case <-time.After(60 * time.Second):
		t.Fatal("study never started running")
	}

	// Drain. When Close returns the study must already be terminal.
	ts.srv.Close()

	// The HTTP server is untouched: status must be queryable and show
	// the study checkpointed-and-paused, not running.
	status := doJSON(t, "GET", base+"/v1/studies/drain", nil, http.StatusOK)
	if got := status["state"]; got != "interrupted" {
		t.Fatalf("state after Close = %v, want interrupted", got)
	}
	if done, ok := status["trials_done"].(float64); !ok || done <= 0 {
		t.Fatalf("no checkpointed trials recorded: %v", status["trials_done"])
	}

	// The SSE stream must have ended with the shutdown frame.
	select {
	case end := <-endCh:
		if end.last != "shutdown" {
			t.Fatalf("stream ended with %q (events %v), want shutdown", end.last, end.seen)
		}
		if end.seen["done"] != 0 {
			t.Fatalf("shutdown stream carried a done frame: %v", end.seen)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("SSE stream did not end after Server.Close")
	}
}
