package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"

	"fast/internal/arch"
	"fast/internal/models"
	"fast/internal/search"
	"fast/internal/sim"
	"fast/internal/store"
)

func (s *Server) buildMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/studies", s.handleCreate)
	mux.HandleFunc("GET /v1/studies", s.handleList)
	mux.HandleFunc("GET /v1/studies/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/studies/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/studies/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /v1/studies/{id}/cancel", s.handleCancel)
	mux.HandleFunc("POST /v1/studies/{id}/resume", s.handleResume)
	mux.Handle("GET /debug/vars", s.cfg.Metrics.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	s.mux = mux
}

// httpError writes the uniform error body.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	// Marshal before committing the status line: an encoding failure must
	// surface as a 500, not a truncated 2xx body.
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, "{\"error\": %q}\n", "response encoding failed: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	w.Write(data) //nolint:errcheck // response already committed
	w.Write([]byte("\n"))
}

// tenantOf resolves the request's tenant: the ?tenant= query parameter,
// defaulting to "default".
func tenantOf(r *http.Request) string {
	if t := r.URL.Query().Get("tenant"); t != "" {
		return t
	}
	return "default"
}

// summaryJSON is the study representation every listing/status endpoint
// returns.
type summaryJSON struct {
	Tenant       string   `json:"tenant"`
	ID           string   `json:"id"`
	State        string   `json:"state"`
	Workloads    []string `json:"workloads"`
	Objective    string   `json:"objective,omitempty"`
	Objectives   []string `json:"objectives,omitempty"`
	Algorithm    string   `json:"algorithm"`
	Seed         int64    `json:"seed"`
	TrialsDone   int      `json:"trials_done"`
	TrialsTarget int      `json:"trials_target"`
	BestValue    float64  `json:"best_value"`
	BestFeasible bool     `json:"best_feasible"`
	Error        string   `json:"error,omitempty"`
	// ErrorClass carries the fault taxonomy of Error: "retryable"
	// (resubmitting/resuming can succeed), "terminal" (it cannot), or
	// "unknown" (unclassified; treat as terminal).
	ErrorClass string `json:"error_class,omitempty"`
}

func (s *Server) summaryLocked(st *study) summaryJSON {
	return summaryJSON{
		Tenant:       st.tenant,
		ID:           st.id,
		State:        st.state,
		Workloads:    st.spec.Workloads,
		Objective:    st.spec.Objective,
		Objectives:   st.spec.Objectives,
		Algorithm:    string(resolveAlgorithm(st.spec)),
		Seed:         st.spec.Seed,
		TrialsDone:   st.trialsDone,
		TrialsTarget: st.trialsTarget,
		BestValue:    st.bestValue,
		BestFeasible: st.bestFeasible,
		Error:        st.errMsg,
		ErrorClass:   st.errClass,
	}
}

func (s *Server) summary(st *study) summaryJSON {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.summaryLocked(st)
}

// lookup resolves {id} + tenant to the in-memory study.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *study {
	tenant, id := tenantOf(r), r.PathValue("id")
	s.mu.Lock()
	st := s.studies[tenant+"/"+id]
	s.mu.Unlock()
	if st == nil {
		httpError(w, http.StatusNotFound, "study %s/%s not found", tenant, id)
		return nil
	}
	return st
}

// createRequest is the POST /v1/studies body.
type createRequest struct {
	Tenant          string   `json:"tenant"`
	ID              string   `json:"id"`
	Workloads       []string `json:"workloads"`
	Objective       string   `json:"objective"`
	Objectives      []string `json:"objectives"`
	Algorithm       string   `json:"algorithm"`
	Trials          int      `json:"trials"`
	Seed            int64    `json:"seed"`
	BatchSize       int      `json:"batch_size"`
	FrontCap        int      `json:"front_cap"`
	LatencyBoundSec float64  `json:"latency_bound_sec"`
	// DeadlineSec bounds the study's wall-clock run time (0 = none).
	// A study that hits it fails with a retryable "deadline exceeded"
	// error; the durable prefix stays resumable.
	DeadlineSec float64 `json:"deadline_sec"`
	// ILPDeadlineSec bounds each final-report exact-ILP fusion solve
	// (0 = simulator default). Spec-fixed so resumes solve under the
	// same deadline the original run would have.
	ILPDeadlineSec float64 `json:"ilp_deadline_sec"`
}

var validAlgorithms = map[string]bool{
	"": true, string(search.AlgRandom): true, string(search.AlgLCS): true,
	string(search.AlgBayes): true, string(search.AlgNSGA2): true,
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	// The body's tenant wins; fall back to ?tenant= so creation addresses
	// tenants the same way every read endpoint does.
	if req.Tenant == "" {
		req.Tenant = tenantOf(r)
	}
	if len(req.Workloads) == 0 {
		httpError(w, http.StatusBadRequest, "workloads must be non-empty")
		return
	}
	for _, wl := range req.Workloads {
		if err := models.Validate(wl); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	if req.Trials <= 0 || req.Trials > s.cfg.MaxTrialsPerStudy {
		httpError(w, http.StatusBadRequest, "trials must be in 1..%d", s.cfg.MaxTrialsPerStudy)
		return
	}
	if !validAlgorithms[req.Algorithm] {
		httpError(w, http.StatusBadRequest, "unknown algorithm %q", req.Algorithm)
		return
	}
	if req.DeadlineSec < 0 || req.ILPDeadlineSec < 0 {
		httpError(w, http.StatusBadRequest, "deadline_sec and ilp_deadline_sec must be >= 0")
		return
	}
	sp := store.Spec{
		Tenant:          req.Tenant,
		ID:              req.ID,
		Workloads:       req.Workloads,
		Objective:       req.Objective,
		Objectives:      req.Objectives,
		Algorithm:       req.Algorithm,
		Trials:          req.Trials,
		Seed:            req.Seed,
		BatchSize:       req.BatchSize,
		FrontCap:        req.FrontCap,
		LatencyBoundSec: req.LatencyBoundSec,
		DeadlineSec:     req.DeadlineSec,
		ILPDeadlineSec:  req.ILPDeadlineSec,
		Created:         s.now(),
	}
	// Parse objectives now so an unknown name is a 400, not a failed
	// study later.
	if _, err := coreStudy(sp, sp.Trials); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	if s.paused.Load() {
		s.mu.Unlock()
		s.metrics.shedOverload.Inc()
		s.shed(w, http.StatusServiceUnavailable, "daemon under memory pressure; admission paused")
		return
	}
	owned := 0
	for _, st := range s.studies {
		if st.tenant == sp.Tenant {
			owned++
		}
	}
	if owned >= s.cfg.MaxStudiesPerTenant {
		s.mu.Unlock()
		s.metrics.shedStudyQuota.Inc()
		s.shed(w, http.StatusTooManyRequests, "tenant %s at its study quota (%d)", sp.Tenant, s.cfg.MaxStudiesPerTenant)
		return
	}
	if s.queuedLocked(sp.Tenant) >= s.cfg.MaxQueuedPerTenant {
		s.mu.Unlock()
		s.metrics.shedQueue.Inc()
		s.shed(w, http.StatusTooManyRequests, "tenant %s queue full (%d studies waiting)", sp.Tenant, s.cfg.MaxQueuedPerTenant)
		return
	}
	if sp.ID == "" {
		s.seq++
		sp.ID = fmt.Sprintf("study-%04d", s.seq)
		for s.studies[sp.Tenant+"/"+sp.ID] != nil {
			s.seq++
			sp.ID = fmt.Sprintf("study-%04d", s.seq)
		}
	} else if s.studies[sp.Tenant+"/"+sp.ID] != nil {
		s.mu.Unlock()
		httpError(w, http.StatusConflict, "study %s/%s already exists", sp.Tenant, sp.ID)
		return
	}

	stored, err := s.cfg.Store.Create(sp)
	if err != nil {
		s.mu.Unlock()
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	st := &study{
		tenant:       sp.Tenant,
		id:           sp.ID,
		spec:         sp,
		stored:       stored,
		state:        store.StateQueued,
		trialsTarget: sp.Trials,
		hub:          newEventHub(),
	}
	s.studies[st.key()] = st
	s.launchLocked(st, nil, sp.Trials)
	out := s.summaryLocked(st)
	s.mu.Unlock()

	s.metrics.studiesCreated.Inc()
	s.cfg.Logf("level=info msg=created tenant=%s id=%s trials=%d", sp.Tenant, sp.ID, sp.Trials)
	writeJSON(w, http.StatusCreated, out)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	tenant := tenantOf(r)
	s.mu.Lock()
	var out []summaryJSON
	//fast:allow detrange listing is sorted by ID immediately below
	for _, st := range s.studies {
		if st.tenant == tenant {
			out = append(out, s.summaryLocked(st))
		}
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, map[string]any{"studies": out})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	if st := s.lookup(w, r); st != nil {
		writeJSON(w, http.StatusOK, s.summary(st))
	}
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if st := s.lookup(w, r); st != nil {
		s.serveSSE(w, r, st)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st := s.lookup(w, r)
	if st == nil {
		return
	}
	s.mu.Lock()
	cancel := st.cancel
	state := st.state
	s.mu.Unlock()
	if cancel == nil {
		httpError(w, http.StatusConflict, "study is %s, nothing to cancel", state)
		return
	}
	cancel()
	writeJSON(w, http.StatusAccepted, map[string]string{"state": "canceling"})
}

// resumeRequest is the POST .../resume body. Trials, when positive,
// becomes the study's new total trial target (it may exceed the
// original spec to warm-continue a finished study).
type resumeRequest struct {
	Trials int `json:"trials"`
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	st := s.lookup(w, r)
	if st == nil {
		return
	}
	var req resumeRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
	}
	if req.Trials > s.cfg.MaxTrialsPerStudy {
		httpError(w, http.StatusBadRequest, "trials must be at most %d", s.cfg.MaxTrialsPerStudy)
		return
	}

	// Load the durable transcript before committing to the resume; a
	// corrupt or future-format checkpoint is an operator problem, not a
	// silent restart from scratch (docs/OPERATIONS.md, "Recovery").
	snap, truncated, err := st.stored.Snapshot()
	if err != nil {
		httpError(w, http.StatusConflict, "checkpoint unusable: %v", err)
		return
	}
	if truncated {
		s.cfg.Logf("level=warn msg=\"dropped torn checkpoint tail\" tenant=%s id=%s durable_trials=%d",
			st.tenant, st.id, len(snap.Trials))
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	if s.paused.Load() {
		s.mu.Unlock()
		s.metrics.shedOverload.Inc()
		s.shed(w, http.StatusServiceUnavailable, "daemon under memory pressure; admission paused")
		return
	}
	switch st.state {
	case store.StateQueued, store.StateRunning:
		state := st.state
		s.mu.Unlock()
		httpError(w, http.StatusConflict, "study is %s", state)
		return
	}
	if s.queuedLocked(st.tenant) >= s.cfg.MaxQueuedPerTenant {
		s.mu.Unlock()
		s.metrics.shedQueue.Inc()
		s.shed(w, http.StatusTooManyRequests, "tenant %s queue full (%d studies waiting)", st.tenant, s.cfg.MaxQueuedPerTenant)
		return
	}
	target := st.trialsTarget
	if req.Trials > 0 {
		target = req.Trials
	}
	st.state = store.StateQueued
	st.errMsg = ""
	st.errClass = ""
	st.trialsDone = len(snap.Trials)
	st.trialsTarget = target
	st.hub = newEventHub() // prior hub was closed at the terminal state
	var snapPtr *search.Snapshot
	if len(snap.Trials) > 0 {
		snapPtr = &snap
	}
	s.launchLocked(st, snapPtr, target)
	out := s.summaryLocked(st)
	s.mu.Unlock()

	s.metrics.studiesResumed.Inc()
	s.cfg.Logf("level=info msg=resumed tenant=%s id=%s durable_trials=%d target=%d",
		st.tenant, st.id, len(snap.Trials), target)
	writeJSON(w, http.StatusAccepted, out)
}

// resultJSON is the GET .../result payload.
type resultJSON struct {
	Tenant       string         `json:"tenant"`
	ID           string         `json:"id"`
	BestValue    float64        `json:"best_value"`
	BestFeasible bool           `json:"best_feasible"`
	Best         *arch.Config   `json:"best,omitempty"`
	PerWorkload  []workloadJSON `json:"per_workload,omitempty"`
	Front        []frontJSON    `json:"front,omitempty"`
}

type workloadJSON struct {
	Name         string  `json:"name"`
	QPS          float64 `json:"qps"`
	LatencySec   float64 `json:"latency_sec"`
	PerfPerTDP   float64 `json:"perf_per_tdp"`
	TDPWatts     float64 `json:"tdp_w"`
	AreaMM2      float64 `json:"area_mm2"`
	FusionMethod string  `json:"fusion_method"`
	FusionGap    float64 `json:"fusion_gap,omitempty"`
}

type frontJSON struct {
	Index       [arch.NumParams]int `json:"index"`
	Values      []float64           `json:"values"`
	Design      *arch.Config        `json:"design,omitempty"`
	PerWorkload []workloadJSON      `json:"per_workload,omitempty"`
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	st := s.lookup(w, r)
	if st == nil {
		return
	}
	s.mu.Lock()
	state, res := st.state, st.result
	s.mu.Unlock()
	if state != store.StateDone {
		httpError(w, http.StatusConflict, "study is %s; the result exists once it is done", state)
		return
	}
	if res == nil {
		// Done in a previous process: the transcript is durable but the
		// final report was never re-materialized here.
		httpError(w, http.StatusConflict,
			"result not materialized in this process; POST /v1/studies/%s/resume re-derives it from the checkpoint", st.id)
		return
	}
	out := resultJSON{
		Tenant:       st.tenant,
		ID:           st.id,
		BestValue:    res.BestValue,
		BestFeasible: res.Search.Best.Feasible,
		Best:         res.Best,
	}
	for _, wr := range res.PerWorkload {
		out.PerWorkload = append(out.PerWorkload, workloadJSONOf(wr.Name, wr.Result))
	}
	for _, pt := range res.Front() {
		fj := frontJSON{Index: pt.Index, Values: pt.Values, Design: pt.Design}
		for _, wr := range pt.PerWorkload {
			fj.PerWorkload = append(fj.PerWorkload, workloadJSONOf(wr.Name, wr.Result))
		}
		out.Front = append(out.Front, fj)
	}
	writeJSON(w, http.StatusOK, out)
}

func workloadJSONOf(name string, r *sim.Result) workloadJSON {
	out := workloadJSON{
		Name:         name,
		QPS:          r.QPS,
		LatencySec:   r.LatencySec,
		PerfPerTDP:   r.PerfPerTDP,
		TDPWatts:     r.TDPWatts,
		AreaMM2:      r.AreaMM2,
		FusionMethod: r.Fusion.Method,
	}
	// A deadline-hit incumbent with no proven bound carries an infinite
	// gap, which JSON cannot represent; omit the field and let
	// fusion_method ("ilp-incumbent") carry the unproven-optimality
	// signal.
	if !math.IsInf(r.Fusion.Gap, 0) && !math.IsNaN(r.Fusion.Gap) {
		out.FusionGap = r.Fusion.Gap
	}
	return out
}
