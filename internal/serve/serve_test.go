package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"fast/internal/store"
)

// testServer wires a daemon onto an httptest listener over a store
// directory.
type testServer struct {
	srv  *Server
	http *httptest.Server
}

func newTestServer(t *testing.T, dir string, mutate func(*Config)) *testServer {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Store: st, Parallelism: 2}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	return &testServer{srv: srv, http: hs}
}

// stop shuts the daemon down like a process exit: running studies
// become interrupted.
func (ts *testServer) stop() {
	ts.http.Close()
	ts.srv.Close()
}

func doJSON(t *testing.T, method, url string, body any, wantCode int) map[string]any {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	dec := json.NewDecoder(resp.Body)
	dec.Decode(&out) //nolint:errcheck // some replies have empty bodies
	if resp.StatusCode != wantCode {
		t.Fatalf("%s %s = %d, want %d (body %v)", method, url, resp.StatusCode, wantCode, out)
	}
	return out
}

// waitFor polls the study summary until pred is satisfied.
func waitFor(t *testing.T, base, id string, what string, pred func(map[string]any) bool) map[string]any {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		sum := doJSON(t, "GET", base+"/v1/studies/"+id, nil, http.StatusOK)
		if pred(sum) {
			return sum
		}
		if sum["state"] == store.StateFailed {
			t.Fatalf("study %s failed: %v", id, sum["error"])
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s on study %s", what, id)
	return nil
}

func stateIs(states ...string) func(map[string]any) bool {
	return func(sum map[string]any) bool {
		for _, s := range states {
			if sum["state"] == s {
				return true
			}
		}
		return false
	}
}

func trialsAtLeast(n int) func(map[string]any) bool {
	return func(sum map[string]any) bool {
		done, _ := sum["trials_done"].(float64)
		return int(done) >= n
	}
}

// TestSubmitRunResult drives the happy path end to end: submit, watch
// it finish, fetch the report, scrape the metrics.
func TestSubmitRunResult(t *testing.T) {
	ts := newTestServer(t, t.TempDir(), nil)
	defer ts.stop()
	base := ts.http.URL

	created := doJSON(t, "POST", base+"/v1/studies", map[string]any{
		"id": "happy", "workloads": []string{"mobilenetv2"},
		"algorithm": "random", "trials": 24, "seed": 5, "batch_size": 8,
	}, http.StatusCreated)
	if created["state"] != store.StateQueued && created["state"] != store.StateRunning {
		t.Fatalf("created state = %v", created["state"])
	}

	sum := waitFor(t, base, "happy", "done", stateIs(store.StateDone))
	if done, _ := sum["trials_done"].(float64); int(done) != 24 {
		t.Errorf("trials_done = %v, want 24", sum["trials_done"])
	}
	if sum["best_feasible"] != true {
		t.Errorf("best_feasible = %v", sum["best_feasible"])
	}

	res := doJSON(t, "GET", base+"/v1/studies/happy/result", nil, http.StatusOK)
	if res["best"] == nil || res["per_workload"] == nil {
		t.Errorf("result missing best design or per-workload report: %v", res)
	}

	vars := doJSON(t, "GET", base+"/debug/vars", nil, http.StatusOK)
	if trials, _ := vars["fastserve_trials_total"].(float64); int(trials) < 24 {
		t.Errorf("fastserve_trials_total = %v, want >= 24", vars["fastserve_trials_total"])
	}
	if vars["fastserve_checkpoint_writes_total"].(float64) < 3 {
		t.Errorf("checkpoint writes = %v, want >= 3", vars["fastserve_checkpoint_writes_total"])
	}
	if _, ok := vars["fast_plan_cache_entries"]; !ok {
		t.Error("plan cache metrics missing from /debug/vars")
	}
	doJSON(t, "GET", base+"/healthz", nil, http.StatusOK)

	// The durable record exists and matches.
	status := doJSON(t, "GET", base+"/v1/studies/happy", nil, http.StatusOK)
	if status["state"] != store.StateDone {
		t.Errorf("state = %v after completion", status["state"])
	}
	if _, err := os.Stat(filepath.Join(ts.srv.cfg.Store.Root(), "default", "happy", "transcript.jsonl")); err != nil {
		t.Errorf("transcript missing: %v", err)
	}
}

// TestRestartResumeDifferential is the daemon-level durability
// acceptance test: a study interrupted by a process shutdown and
// resumed by a fresh process on the same data directory continues on
// the bit-identical transcript an uninterrupted daemon produces — at
// parallelism 1 and 4.
func TestRestartResumeDifferential(t *testing.T) {
	spec := map[string]any{
		"id": "diff", "workloads": []string{"mobilenetv2"},
		"algorithm": "lcs", "trials": 600, "seed": 11, "batch_size": 8,
	}
	const compare = 96 // trials to compare; both runs are canceled past this point

	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("par%d", par), func(t *testing.T) {
			// Pace batches: with warm plan caches a 600-trial study can
			// finish in milliseconds, leaving no window to interrupt it.
			mutate := func(c *Config) {
				c.Parallelism = par
				c.batchHook = func(string, string) { time.Sleep(2 * time.Millisecond) }
			}

			// Interrupted daemon: kill the process after ≥2 batches.
			dirA := t.TempDir()
			a1 := newTestServer(t, dirA, mutate)
			doJSON(t, "POST", a1.http.URL+"/v1/studies", spec, http.StatusCreated)
			waitFor(t, a1.http.URL, "diff", "first checkpoints", trialsAtLeast(16))
			a1.stop() // shutdown == crash for durability purposes

			// Fresh process on the same directory: the study must come
			// back interrupted, then resume to past the comparison
			// horizon.
			a2 := newTestServer(t, dirA, mutate)
			defer a2.stop()
			sum := doJSON(t, "GET", a2.http.URL+"/v1/studies/diff", nil, http.StatusOK)
			if sum["state"] != store.StateInterrupted {
				t.Fatalf("state after restart = %v, want interrupted", sum["state"])
			}
			resumed := doJSON(t, "POST", a2.http.URL+"/v1/studies/diff/resume", nil, http.StatusAccepted)
			if got, _ := resumed["trials_done"].(float64); int(got) < 16 {
				t.Fatalf("resume lost checkpointed trials: %v", resumed["trials_done"])
			}
			waitFor(t, a2.http.URL, "diff", "resumed progress", trialsAtLeast(compare))
			cancelStudy(t, a2.http.URL, "diff")

			// Uninterrupted daemon on a second directory.
			dirB := t.TempDir()
			b := newTestServer(t, dirB, mutate)
			defer b.stop()
			doJSON(t, "POST", b.http.URL+"/v1/studies", spec, http.StatusCreated)
			waitFor(t, b.http.URL, "diff", "reference progress", trialsAtLeast(compare))
			cancelStudy(t, b.http.URL, "diff")

			// The transcripts must agree line for line (header + every
			// complete batch) up to the shorter one — and both cover the
			// comparison horizon.
			linesA := transcriptLines(t, dirA)
			linesB := transcriptLines(t, dirB)
			n := len(linesA)
			if len(linesB) < n {
				n = len(linesB)
			}
			if wantLines := 1 + compare/8; n < wantLines {
				t.Fatalf("only %d transcript lines to compare, want >= %d", n, wantLines)
			}
			for i := 0; i < n; i++ {
				if linesA[i] != linesB[i] {
					t.Fatalf("transcript line %d differs across restart:\n  interrupted: %s\n  reference:   %s",
						i, linesA[i], linesB[i])
				}
			}
		})
	}
}

// cancelStudy stops a study and waits for a terminal state, tolerating
// the race where the study finishes on its own first.
func cancelStudy(t *testing.T, base, id string) {
	t.Helper()
	if code := rawStatus(t, "POST", base+"/v1/studies/"+id+"/cancel", nil); code != http.StatusAccepted && code != http.StatusConflict {
		t.Fatalf("cancel %s = %d", id, code)
	}
	waitFor(t, base, id, "terminal", stateIs(store.StateCanceled, store.StateDone))
}

func transcriptLines(t *testing.T, dir string) []string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, "default", "diff", "transcript.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	return lines
}

// TestResumeExtendsAndRematerializes: resuming a done study with a
// higher trial target warm-continues it; resuming with the same target
// re-derives the final report after a restart.
func TestResumeExtendsAndRematerializes(t *testing.T) {
	dir := t.TempDir()
	ts := newTestServer(t, dir, nil)
	doJSON(t, "POST", ts.http.URL+"/v1/studies", map[string]any{
		"id": "ext", "workloads": []string{"mobilenetv2"},
		"algorithm": "random", "trials": 16, "seed": 3, "batch_size": 8,
	}, http.StatusCreated)
	waitFor(t, ts.http.URL, "ext", "done", stateIs(store.StateDone))
	res1 := doJSON(t, "GET", ts.http.URL+"/v1/studies/ext/result", nil, http.StatusOK)
	ts.stop()

	// Fresh process: done studies stay done, but the in-memory report is
	// gone until a resume re-derives it.
	ts2 := newTestServer(t, dir, nil)
	defer ts2.stop()
	doJSON(t, "GET", ts2.http.URL+"/v1/studies/ext/result", nil, http.StatusConflict)
	doJSON(t, "POST", ts2.http.URL+"/v1/studies/ext/resume", nil, http.StatusAccepted)
	waitFor(t, ts2.http.URL, "ext", "rematerialized", stateIs(store.StateDone))
	res2 := doJSON(t, "GET", ts2.http.URL+"/v1/studies/ext/result", nil, http.StatusOK)
	if res1["best_value"] != res2["best_value"] {
		t.Errorf("re-materialized best value %v != original %v", res2["best_value"], res1["best_value"])
	}

	// Extend the budget: 16 → 32 trials, warm-continuing the search.
	doJSON(t, "POST", ts2.http.URL+"/v1/studies/ext/resume", map[string]any{"trials": 32}, http.StatusAccepted)
	sum := waitFor(t, ts2.http.URL, "ext", "extended done", func(m map[string]any) bool {
		return m["state"] == store.StateDone && m["trials_done"].(float64) >= 32
	})
	if sum["trials_done"].(float64) != 32 {
		t.Errorf("extended trials_done = %v, want 32", sum["trials_done"])
	}
}

// TestMultiObjectiveStudy: Pareto studies surface their front in the
// result payload and stream front events.
func TestMultiObjectiveStudy(t *testing.T) {
	ts := newTestServer(t, t.TempDir(), nil)
	defer ts.stop()
	doJSON(t, "POST", ts.http.URL+"/v1/studies", map[string]any{
		"id": "pareto", "workloads": []string{"mobilenetv2"},
		"objectives": []string{"perf", "tdp"}, "trials": 32, "seed": 2,
		"batch_size": 8, "front_cap": 4,
	}, http.StatusCreated)
	waitFor(t, ts.http.URL, "pareto", "done", stateIs(store.StateDone))
	res := doJSON(t, "GET", ts.http.URL+"/v1/studies/pareto/result", nil, http.StatusOK)
	front, _ := res["front"].([]any)
	if len(front) == 0 || len(front) > 4 {
		t.Fatalf("front size = %d, want 1..4", len(front))
	}
	pt := front[0].(map[string]any)
	if pt["values"] == nil || pt["per_workload"] == nil {
		t.Errorf("front point missing values or per-workload report: %v", pt)
	}
}

// TestQuotas: per-tenant study and concurrency limits hold, and other
// tenants are unaffected. The batch hook holds the first study mid-run
// so the concurrency assertions are deterministic, not timing-based.
func TestQuotas(t *testing.T) {
	release := make(chan struct{})
	ts := newTestServer(t, t.TempDir(), func(c *Config) {
		c.MaxStudiesPerTenant = 2
		c.MaxActivePerTenant = 1
		c.batchHook = func(tenant, _ string) {
			if tenant == "default" {
				<-release
			}
		}
	})
	defer ts.stop()
	// Registered after ts.stop so it runs first: stop() waits for run
	// goroutines, which can be parked in the hook.
	released := false
	defer func() {
		if !released {
			close(release)
		}
	}()
	base := ts.http.URL

	long := func(id string) map[string]any {
		return map[string]any{
			"id": id, "workloads": []string{"mobilenetv2"},
			"algorithm": "lcs", "trials": 600, "seed": 1, "batch_size": 8,
		}
	}
	doJSON(t, "POST", base+"/v1/studies", long("q1"), http.StatusCreated)
	// q1 holds the tenant's single slot (parked in the batch hook) before
	// q2 is submitted, so q2 must queue behind it.
	waitFor(t, base, "q1", "q1 running", stateIs(store.StateRunning))
	doJSON(t, "POST", base+"/v1/studies", long("q2"), http.StatusCreated)
	doJSON(t, "POST", base+"/v1/studies", long("q3"), http.StatusTooManyRequests)

	// Another tenant is not affected by the first tenant's quota or its
	// parked slot.
	other := map[string]any{
		"id": "b1", "workloads": []string{"mobilenetv2"},
		"algorithm": "random", "trials": 16, "seed": 1, "batch_size": 8,
	}
	doJSON(t, "POST", base+"/v1/studies?tenant=tenant-b", other, http.StatusCreated)
	waitFor(t, base, "b1?tenant=tenant-b", "tenant-b done", stateIs(store.StateDone))

	// q2 queued behind q1's held slot — still queued after tenant-b's
	// whole study ran to completion.
	sum := doJSON(t, "GET", base+"/v1/studies/q2", nil, http.StatusOK)
	if sum["state"] != store.StateQueued {
		t.Errorf("q2 state = %v while q1 holds the slot, want queued (MaxActivePerTenant=1)", sum["state"])
	}

	// Canceling q1 and releasing the hook frees the slot; q2 proceeds.
	doJSON(t, "POST", base+"/v1/studies/q1/cancel", nil, http.StatusAccepted)
	close(release)
	released = true
	waitFor(t, base, "q1", "q1 canceled", stateIs(store.StateCanceled))
	waitFor(t, base, "q2", "q2 terminal", stateIs(store.StateDone, store.StateCanceled))
}

// TestValidation: malformed submissions are rejected with 4xx before
// anything is stored.
func TestValidation(t *testing.T) {
	ts := newTestServer(t, t.TempDir(), nil)
	defer ts.stop()
	base := ts.http.URL
	ok := map[string]any{"workloads": []string{"mobilenetv2"}, "trials": 8}

	cases := []map[string]any{
		{"trials": 8}, // no workloads
		{"workloads": []string{"no-such-net"}, "trials": 8},
		{"workloads": []string{"mobilenetv2"}}, // no trials
		{"workloads": []string{"mobilenetv2"}, "trials": 999999},
		{"workloads": []string{"mobilenetv2"}, "trials": 8, "algorithm": "gradient-descent"},
		{"workloads": []string{"mobilenetv2"}, "trials": 8, "objective": "qps-per-dollar"},
		{"workloads": []string{"mobilenetv2"}, "trials": 8, "id": "../escape"},
		{"workloads": []string{"mobilenetv2"}, "trials": 8, "tenant": "a/b"},
	}
	for _, c := range cases {
		if code := rawStatus(t, "POST", base+"/v1/studies", c); code < 400 || code >= 500 {
			t.Errorf("submission %v = %d, want 4xx", c, code)
		}
	}

	doJSON(t, "GET", base+"/v1/studies/missing", nil, http.StatusNotFound)
	doJSON(t, "POST", base+"/v1/studies/missing/cancel", nil, http.StatusNotFound)
	doJSON(t, "POST", base+"/v1/studies/missing/resume", nil, http.StatusNotFound)

	created := doJSON(t, "POST", base+"/v1/studies", ok, http.StatusCreated)
	id := created["id"].(string)
	if !strings.HasPrefix(id, "study-") {
		t.Errorf("generated id = %q", id)
	}
	waitFor(t, base, id, "done", stateIs(store.StateDone))
	// Terminal studies reject cancel and double resume rejects while queued/running.
	doJSON(t, "POST", base+"/v1/studies/"+id+"/cancel", nil, http.StatusConflict)
}

func rawStatus(t *testing.T, method, url string, body any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(method, url, bytes.NewReader(data))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestEventStream: the SSE endpoint delivers state, progress, and done
// frames for a study. The batch hook parks the study until the stream
// is attached so progress frames cannot race the subscription.
func TestEventStream(t *testing.T) {
	attached := make(chan struct{})
	var gate sync.Once
	ts := newTestServer(t, t.TempDir(), func(c *Config) {
		c.batchHook = func(string, string) { <-attached }
	})
	defer func() {
		gate.Do(func() { close(attached) })
		ts.stop()
	}()
	base := ts.http.URL

	doJSON(t, "POST", base+"/v1/studies", map[string]any{
		"id": "sse", "workloads": []string{"mobilenetv2"},
		"algorithm": "lcs", "trials": 48, "seed": 9, "batch_size": 8,
	}, http.StatusCreated)

	resp, err := http.Get(base + "/v1/studies/sse/events")
	if err != nil {
		t.Fatal(err)
	}
	gate.Do(func() { close(attached) })
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("Content-Type = %q", ct)
	}

	events := map[string]int{}
	sc := bufio.NewScanner(resp.Body)
	deadline := time.After(120 * time.Second)
	lineCh := make(chan string)
	go func() {
		for sc.Scan() {
			lineCh <- sc.Text()
		}
		close(lineCh)
	}()
read:
	for {
		select {
		case line, open := <-lineCh:
			if !open {
				break read
			}
			if name, ok := strings.CutPrefix(line, "event: "); ok {
				events[name]++
				if name == "done" {
					break read
				}
			}
		case <-deadline:
			t.Fatalf("no done event; saw %v", events)
		}
	}
	if events["state"] == 0 || events["done"] == 0 {
		t.Errorf("missing lifecycle frames: %v", events)
	}
	if events["progress"] == 0 {
		t.Errorf("no progress frames: %v", events)
	}
}
