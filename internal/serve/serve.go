// Package serve is the FAST study daemon: a multi-tenant HTTP/JSON
// service (cmd/fast-serve) that runs many accelerator-search studies
// concurrently on one simulator process, checkpointing every study
// durably enough to survive a crash and resume bit-identically.
//
// The layering is strict: serve owns the HTTP surface, the study
// lifecycle state machine, per-tenant admission control, and event
// fan-out; internal/core runs the studies; internal/store persists
// them; internal/obsv counts everything. Nothing here influences
// search results — a study run through the daemon produces the exact
// transcript the same core.Study produces in a unit test, which is what
// makes the restart-resume differential in serve_test.go possible.
//
// Lifecycle: a study is queued on POST /v1/studies, runs when its
// tenant has a free concurrency slot, and ends done, failed, or
// canceled. A study found in state "running" at start-up was orphaned
// by a crash or restart and becomes "interrupted"; POST .../resume
// restores it from its durable transcript and continues exactly where
// the last fsync'd batch left off. Events stream per study over SSE at
// GET /v1/studies/{id}/events; metrics aggregate process-wide at
// GET /debug/vars.
package serve

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fast/internal/core"
	"fast/internal/obsv"
	"fast/internal/search"
	"fast/internal/sim"
	"fast/internal/store"
)

// Config assembles a Server. Store is required; everything else
// defaults.
type Config struct {
	// Store is the durability root for specs, transcripts, and status.
	Store *store.Store
	// Metrics receives the daemon's instruments; nil creates a private
	// registry (exposed at /debug/vars either way).
	Metrics *obsv.Registry

	// MaxStudiesPerTenant caps stored studies per tenant (default 64);
	// submissions beyond it are rejected 429 until studies are deleted
	// from the store out of band.
	MaxStudiesPerTenant int
	// MaxActivePerTenant caps concurrently running studies per tenant
	// (default 2); excess studies queue in submission order.
	MaxActivePerTenant int
	// MaxTrialsPerStudy caps the trial budget of one study (default
	// 2000).
	MaxTrialsPerStudy int
	// Parallelism is the evaluation worker count per running study
	// (default: core's default, one per CPU).
	Parallelism int

	// MaxQueuedPerTenant caps studies waiting for a concurrency slot
	// per tenant (default 8); submissions and resumes beyond it are
	// shed 429 with a Retry-After hint instead of growing the queue
	// without bound.
	MaxQueuedPerTenant int
	// MaxTrialsPerSec throttles each tenant's checkpointed trial rate
	// (0 = unthrottled). Pacing only: the throttle delays when a batch
	// checkpoint lands, never what it contains, so throttled
	// transcripts are bit-identical to unthrottled ones.
	MaxTrialsPerSec float64
	// MaxCheckpointBytes caps one study's transcript size (0 =
	// unbounded). A study exceeding it fails with a terminal quota
	// error; its durable prefix stays resumable under a raised limit.
	MaxCheckpointBytes int64
	// MemoryLimitBytes arms the memory-pressure watchdog (0 = off):
	// above the limit the daemon pauses admission (503 + Retry-After)
	// and halves the plan-cache budget, resuming once usage falls below
	// 80% of the limit. Running studies are never killed — pressure is
	// relieved by shedding new load and shrinking caches.
	MemoryLimitBytes int64
	// RetryAfter is the back-off hint sent with every shed response
	// (default 5s), rounded up to whole seconds on the wire.
	RetryAfter time.Duration

	// Dispatch, when set, routes every study's batch evaluation through
	// a dispatcher (internal/dispatch's worker pool). Dispatch changes
	// where evaluations run, never their results, so checkpoints,
	// resume, and the restart differential are unaffected.
	Dispatch core.DispatchFunc

	// Logf, when set, receives one structured line per request and per
	// study state transition.
	Logf func(format string, args ...any)

	// batchHook, when set, runs at the top of every checkpoint append
	// (before the batch is written). Test seam only: with warm plan
	// caches whole studies finish in milliseconds, so lifecycle tests
	// use it to hold a study mid-run deterministically instead of
	// racing the clock.
	batchHook func(tenant, id string)
	// watchdogEvery is the memory watchdog's sampling period (default
	// 2s). Test seam.
	watchdogEvery time.Duration
	// memUsage reads the daemon's live heap bytes (default
	// runtime.ReadMemStats HeapAlloc). Test seam.
	memUsage func() uint64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MaxStudiesPerTenant <= 0 {
		out.MaxStudiesPerTenant = 64
	}
	if out.MaxActivePerTenant <= 0 {
		out.MaxActivePerTenant = 2
	}
	if out.MaxTrialsPerStudy <= 0 {
		out.MaxTrialsPerStudy = 2000
	}
	if out.MaxQueuedPerTenant <= 0 {
		out.MaxQueuedPerTenant = 8
	}
	if out.RetryAfter <= 0 {
		out.RetryAfter = 5 * time.Second
	}
	if out.watchdogEvery <= 0 {
		out.watchdogEvery = 2 * time.Second
	}
	if out.memUsage == nil {
		out.memUsage = func() uint64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return ms.HeapAlloc
		}
	}
	if out.Metrics == nil {
		out.Metrics = obsv.NewRegistry()
	}
	if out.Logf == nil {
		out.Logf = func(string, ...any) {}
	}
	return out
}

// Server is the daemon. Create with New, mount via Handler, stop with
// Close.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	metrics *metrics

	baseCtx   context.Context
	cancelAll context.CancelFunc
	wg        sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	studies  map[string]*study        // key: tenant + "/" + id
	slots    map[string]chan struct{} // per-tenant concurrency semaphores
	limiters map[string]*rateLimiter  // per-tenant trial-rate pacers
	seq      int                      // id allocator for unnamed studies

	// paused flags admission paused by the memory watchdog: creates and
	// resumes shed 503 + Retry-After until pressure clears.
	paused atomic.Bool
}

// study is the in-memory face of one stored study. state and the
// progress fields are guarded by the server mutex; the store handle is
// touched only by the single run goroutine (or, between runs, by
// handlers holding the server mutex).
type study struct {
	tenant, id string
	spec       store.Spec
	stored     *store.Study

	state        string
	trialsDone   int
	trialsTarget int
	bestValue    float64
	bestFeasible bool
	errMsg       string
	errClass     string // fault class of errMsg ("retryable"/"terminal"/"unknown")
	ckptBytes    int64  // durable transcript size, for the checkpoint quota

	cancel context.CancelFunc // non-nil while queued or running
	result *core.StudyResult  // materialized in-process when done
	hub    *eventHub
}

func (st *study) key() string { return st.tenant + "/" + st.id }

// New builds the daemon around a store, recovering restart state:
// studies the previous process left "running" are marked
// "interrupted" (resumable), everything else keeps its stored state.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("serve: Config.Store is required")
	}
	c := cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       c,
		baseCtx:   ctx,
		cancelAll: cancel,
		studies:   map[string]*study{},
		slots:     map[string]chan struct{}{},
		limiters:  map[string]*rateLimiter{},
	}
	s.metrics = newMetrics(c.Metrics)
	s.buildMux()

	stored, err := c.Store.List()
	if err != nil && len(s.studies) == 0 && stored == nil {
		cancel()
		return nil, err
	}
	for _, sd := range stored {
		sp := sd.Spec()
		status, serr := sd.Status()
		if serr != nil {
			c.Logf("level=warn msg=\"skipping study with unreadable status\" tenant=%s id=%s err=%q",
				sp.Tenant, sp.ID, serr)
			continue
		}
		if status.State == store.StateRunning || status.State == store.StateQueued {
			// Orphaned by the previous process: no run goroutine exists
			// anymore, so the durable transcript is the whole truth.
			status.State = store.StateInterrupted
			if err := sd.SetStatus(status); err != nil {
				cancel()
				return nil, err
			}
			s.metrics.studiesInterrupted.Inc()
		}
		st := &study{
			tenant:       sp.Tenant,
			id:           sp.ID,
			spec:         sp,
			stored:       sd,
			state:        status.State,
			trialsDone:   status.TrialsDone,
			trialsTarget: status.TrialsTarget,
			bestValue:    status.BestValue,
			bestFeasible: status.BestFeasible,
			errMsg:       status.Error,
			ckptBytes:    sd.TranscriptSize(),
			hub:          newEventHub(),
		}
		s.studies[st.key()] = st
	}
	if err != nil {
		c.Logf("level=warn msg=\"store recovery skipped broken studies\" err=%q", err)
	}
	if c.MemoryLimitBytes > 0 {
		s.wg.Add(1)
		go s.watchdog(ctx)
	}
	return s, nil
}

// Handler returns the daemon's HTTP handler (request-logging and
// metrics middleware included).
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.metrics.httpRequests.Inc()
		//fast:allow nondetsource request latency is log metadata, never search state
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		s.mux.ServeHTTP(sw, r)
		//fast:allow nondetsource request latency is log metadata, never search state
		dur := time.Since(t0).Round(time.Millisecond)
		s.cfg.Logf("level=info method=%s path=%s status=%d dur=%s",
			r.Method, r.URL.Path, sw.code, dur)
	})
}

type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards flushing to the underlying writer so SSE streaming
// works through the middleware.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Close stops the daemon: cancels every running study (their last
// durable checkpoints stand; they restart as "interrupted") and waits
// for run goroutines to drain.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cancelAll()
	s.wg.Wait()
	// Every run goroutine has finished: in-flight studies are now
	// durably checkpointed and marked interrupted. Close the remaining
	// hubs (idle, queued-never-started, or pre-restart studies) with the
	// shutdown frame so no SSE subscriber is left waiting — after this
	// returns, http.Server.Shutdown has no streams to drain.
	s.mu.Lock()
	hubs := make([]*eventHub, 0, len(s.studies))
	//fast:allow detrange hub close order is irrelevant; closeWith is idempotent per hub
	for _, st := range s.studies {
		if st.hub != nil {
			hubs = append(hubs, st.hub)
		}
	}
	s.mu.Unlock()
	for _, h := range hubs {
		h.closeWith("shutdown")
	}
}

// slot returns the tenant's concurrency semaphore.
func (s *Server) slot(tenant string) chan struct{} {
	if ch, ok := s.slots[tenant]; ok {
		return ch
	}
	ch := make(chan struct{}, s.cfg.MaxActivePerTenant)
	s.slots[tenant] = ch
	return ch
}

// resolveAlgorithm maps a spec to the algorithm core will actually run,
// which is what the transcript header and resume must use.
func resolveAlgorithm(sp store.Spec) search.Algorithm {
	if sp.Algorithm != "" {
		return search.Algorithm(sp.Algorithm)
	}
	if len(sp.Objectives) > 0 {
		return search.AlgNSGA2
	}
	return search.AlgLCS
}

// coreStudy maps a stored spec onto a core.Study with the given trial
// target.
func coreStudy(sp store.Spec, trials int) (*core.Study, error) {
	cs := &core.Study{
		Workloads:       sp.Workloads,
		Algorithm:       search.Algorithm(sp.Algorithm),
		Trials:          trials,
		Seed:            sp.Seed,
		FrontCap:        sp.FrontCap,
		LatencyBoundSec: sp.LatencyBoundSec,
	}
	if len(sp.Objectives) > 0 {
		for _, name := range sp.Objectives {
			o, err := core.ParseObjective(name)
			if err != nil {
				return nil, err
			}
			cs.Objectives = append(cs.Objectives, o)
		}
	} else {
		name := sp.Objective
		if name == "" {
			name = "perf-per-tdp"
		}
		o, err := core.ParseObjective(name)
		if err != nil {
			return nil, err
		}
		cs.Objective = o
	}
	if sp.ILPDeadlineSec > 0 {
		// The exact-ILP deadline comes from the spec, never from the
		// remaining wall clock: it is algorithmic state (it can change
		// the final report's fusion solutions), so a resumed study must
		// solve under the same deadline the original run would have.
		so := sim.FASTOptions()
		so.Fusion.Deadline = time.Duration(sp.ILPDeadlineSec * float64(time.Second))
		cs.SimOptions = &so
	}
	return cs, nil
}
