package serve

import (
	"time"

	"fast/internal/core"
	"fast/internal/obsv"
)

// metrics is the daemon's instrument bundle. Every name, kind, and help
// string here is surfaced by obsv.Registry.Catalog and documented in
// docs/OPERATIONS.md — keep the three in sync.
type metrics struct {
	httpRequests *obsv.Counter

	studiesCreated     *obsv.Counter
	studiesResumed     *obsv.Counter
	studiesCompleted   *obsv.Counter
	studiesFailed      *obsv.Counter
	studiesCanceled    *obsv.Counter
	studiesInterrupted *obsv.Counter
	studiesActive      *obsv.Gauge
	studiesQueued      *obsv.Gauge

	sseClients *obsv.Gauge

	trialsTotal *obsv.Counter
	trialsRate  *obsv.Meter

	checkpointWrites *obsv.Counter
	checkpointBytes  *obsv.Counter

	ilpDeadlineHits *obsv.Counter

	shedTotal      *obsv.Counter
	shedQueue      *obsv.Counter
	shedStudyQuota *obsv.Counter
	shedOverload   *obsv.Counter

	throttleWaits   *obsv.Counter
	checkpointQuota *obsv.Counter
	deadlineExpired *obsv.Counter
	quarantined     *obsv.Counter

	watchdogPaused  *obsv.Gauge
	watchdogShrinks *obsv.Counter
}

func newMetrics(r *obsv.Registry) *metrics {
	m := &metrics{
		httpRequests: r.NewCounter("fastserve_http_requests_total",
			"HTTP requests served, all endpoints."),

		studiesCreated: r.NewCounter("fastserve_studies_created_total",
			"Studies accepted by POST /v1/studies."),
		studiesResumed: r.NewCounter("fastserve_studies_resumed_total",
			"Resume requests accepted (restart recovery and trial extensions)."),
		studiesCompleted: r.NewCounter("fastserve_studies_completed_total",
			"Studies that reached state done."),
		studiesFailed: r.NewCounter("fastserve_studies_failed_total",
			"Studies that reached state failed (evaluation or checkpoint error)."),
		studiesCanceled: r.NewCounter("fastserve_studies_canceled_total",
			"Studies canceled by POST .../cancel."),
		studiesInterrupted: r.NewCounter("fastserve_studies_interrupted_total",
			"Studies found running at start-up and marked interrupted."),
		studiesActive: r.NewGauge("fastserve_studies_active",
			"Studies currently evaluating trials."),
		studiesQueued: r.NewGauge("fastserve_studies_queued",
			"Studies waiting for a tenant concurrency slot."),

		sseClients: r.NewGauge("fastserve_sse_clients",
			"Connected event-stream subscribers."),

		trialsTotal: r.NewCounter("fastserve_trials_total",
			"Design evaluations checkpointed across all studies."),
		trialsRate: r.NewMeter("fastserve_trials_per_sec",
			"Design evaluations per second, trailing 30s window.", 30*time.Second),

		checkpointWrites: r.NewCounter("fastserve_checkpoint_writes_total",
			"Durable (fsync'd) transcript batch appends."),
		checkpointBytes: r.NewCounter("fastserve_checkpoint_bytes_total",
			"Bytes of transcript appended, before fsync."),

		ilpDeadlineHits: r.NewCounter("fastserve_ilp_deadline_hits_total",
			"Final-report fusion solves that returned an incumbent at the ILP deadline instead of a proven optimum."),

		shedTotal: r.NewCounter("fastserve_shed_total",
			"Requests shed with Retry-After, all overload reasons."),
		shedQueue: r.NewCounter("fastserve_shed_queue_total",
			"Submissions/resumes shed 429 because the tenant's study queue was full."),
		shedStudyQuota: r.NewCounter("fastserve_shed_study_quota_total",
			"Submissions shed 429 because the tenant was at its stored-study quota."),
		shedOverload: r.NewCounter("fastserve_shed_overload_total",
			"Submissions/resumes shed 503 while the memory watchdog had admission paused."),

		throttleWaits: r.NewCounter("fastserve_throttle_waits_total",
			"Checkpoint batches delayed by the per-tenant trial-rate limit."),
		checkpointQuota: r.NewCounter("fastserve_checkpoint_quota_total",
			"Studies failed terminally for exceeding their checkpoint-byte quota."),
		deadlineExpired: r.NewCounter("fastserve_deadline_expired_total",
			"Studies stopped at their wall-clock deadline (durable prefix retained)."),
		quarantined: r.NewCounter("fastserve_studies_quarantined_total",
			"Studies failed terminally by a panicking objective; the daemon survived."),

		watchdogPaused: r.NewGauge("fastserve_watchdog_paused",
			"1 while the memory watchdog has admission paused, else 0."),
		watchdogShrinks: r.NewCounter("fastserve_watchdog_shrinks_total",
			"Plan-cache budget halvings applied under memory pressure."),
	}

	// The plan cache lives in internal/core and is shared by every
	// study; export its counters through read-time func gauges.
	r.NewFunc("fast_plan_cache_hits_total",
		"Plan cache lookups that found their compiled plan.",
		func() float64 { return float64(core.PlanCacheInfo().Hits) })
	r.NewFunc("fast_plan_cache_misses_total",
		"Plan cache lookups that compiled a new plan.",
		func() float64 { return float64(core.PlanCacheInfo().Misses) })
	r.NewFunc("fast_plan_cache_evictions_total",
		"Compiled plans evicted by the cache budget.",
		func() float64 { return float64(core.PlanCacheInfo().Evictions) })
	r.NewFunc("fast_plan_cache_entries",
		"Compiled plans currently cached.",
		func() float64 { return float64(core.PlanCacheInfo().Entries) })
	r.NewFunc("fast_plan_cache_bytes",
		"Accounted resident size of the plan cache.",
		func() float64 { return float64(core.PlanCacheInfo().Bytes) })
	return m
}
