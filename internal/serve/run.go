package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"fast/internal/core"
	"fast/internal/fault"
	"fast/internal/search"
	"fast/internal/store"
)

// now stamps status records; the store itself never reads the clock.
func (s *Server) now() string {
	//fast:allow nondetsource status timestamps are operator metadata, never search state
	return time.Now().UTC().Format(time.RFC3339)
}

// launchLocked queues one run of st (fresh or resumed). Caller holds
// s.mu and has already set st.state = queued and the trial fields; this
// installs the cancel handle and starts the goroutine.
func (s *Server) launchLocked(st *study, snap *search.Snapshot, target int) {
	// The spec's wall-clock deadline rides the run context end-to-end:
	// core abandons the in-flight batch when it fires (durable prefix
	// intact) and dispatch clamps chunk timeouts to the remaining
	// budget, so a deadlined study stops burning workers too.
	var ctx context.Context
	var cancel context.CancelFunc
	if d := st.spec.DeadlineSec; d > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, time.Duration(d*float64(time.Second)))
	} else {
		ctx, cancel = context.WithCancel(s.baseCtx)
	}
	st.cancel = cancel
	s.wg.Add(1)
	go s.run(ctx, cancel, st, snap, target)
}

// run drives one study from queued to a terminal state. It is the only
// goroutine touching st.stored while it lives.
func (s *Server) run(ctx context.Context, cancel context.CancelFunc, st *study, snap *search.Snapshot, target int) {
	defer s.wg.Done()
	// The hub is fixed for the lifetime of this run (resume installs a
	// fresh one before relaunching); capture it so handler-side hub
	// replacement can never race this goroutine.
	hub := s.hubOf(st)

	// Admission: one tenant cannot occupy the simulator beyond its
	// concurrency slots; studies past the limit wait here in state
	// queued, in submission order.
	s.mu.Lock()
	slot := s.slot(st.tenant)
	s.mu.Unlock()
	s.persistStatus(st)
	s.metrics.studiesQueued.Add(1)
	//fast:allow nondetsource slot-vs-cancel race gates scheduling only; the transcript is parallelism-invariant
	select {
	case slot <- struct{}{}:
		s.metrics.studiesQueued.Add(-1)
	case <-ctx.Done():
		s.metrics.studiesQueued.Add(-1)
		s.finish(st, hub, nil, ctx.Err())
		return
	}
	defer func() { <-slot }()

	s.setState(st, hub, store.StateRunning)
	s.metrics.studiesActive.Add(1)
	defer s.metrics.studiesActive.Add(-1)
	s.cfg.Logf("level=info msg=running tenant=%s id=%s target=%d", st.tenant, st.id, target)

	alg := resolveAlgorithm(st.spec)
	cs, err := coreStudy(st.spec, target)
	if err != nil {
		s.finish(st, hub, nil, err)
		return
	}
	if err := st.stored.BeginTranscript(alg, st.spec.Seed, st.spec.Trials); err != nil {
		s.finish(st, hub, nil, err)
		return
	}

	// Multi-objective studies maintain the Pareto archive incrementally
	// so front events stream as the frontier moves; it is the same fold
	// core applies to the final history, so the streamed front always
	// matches the eventual result.
	var archive *search.ParetoArchive
	if len(cs.Objectives) > 0 {
		frontCap := cs.FrontCap
		if frontCap == 0 {
			frontCap = core.DefaultFrontCap
		}
		archive = search.NewParetoArchive(frontCap)
		if snap != nil {
			for _, t := range snap.Trials {
				archive.Add(t)
			}
		}
	}

	var checkpointErr error
	onBatch := func(batch []search.Trial) {
		if s.cfg.batchHook != nil {
			s.cfg.batchHook(st.tenant, st.id)
		}
		// Pace before the append: the throttle delays when this batch
		// becomes durable, never whether or what — transcripts are
		// bit-identical at any rate limit.
		s.throttle(ctx, st.tenant, len(batch))
		n, err := st.stored.AppendBatch(batch)
		if err != nil {
			// A checkpoint that cannot be written voids the durability
			// contract; stop the study rather than run uncheckpointed.
			checkpointErr = err
			cancel()
			return
		}
		s.metrics.checkpointWrites.Inc()
		s.metrics.checkpointBytes.Add(int64(n))
		s.metrics.trialsTotal.Add(int64(len(batch)))
		s.metrics.trialsRate.Mark(int64(len(batch)))

		s.mu.Lock()
		st.ckptBytes += int64(n)
		overQuota := s.cfg.MaxCheckpointBytes > 0 && st.ckptBytes > s.cfg.MaxCheckpointBytes
		ckptBytes := st.ckptBytes
		st.trialsDone += len(batch)
		for _, t := range batch {
			if t.Feasible && (!st.bestFeasible || t.Value > st.bestValue) {
				st.bestFeasible, st.bestValue = true, t.Value
			}
		}
		sum := s.summaryLocked(st)
		s.mu.Unlock()
		s.persistStatus(st)
		hub.publish(event{name: "progress", data: sum})

		if overQuota && checkpointErr == nil {
			// The batch that crossed the line is already durable (the
			// transcript stays a clean prefix); the study stops here
			// with a terminal quota error, resumable under a raised
			// MaxCheckpointBytes.
			checkpointErr = fault.Terminal("serve.quota", fmt.Errorf(
				"serve: study %s/%s checkpoint quota exceeded (%d > %d bytes)",
				st.tenant, st.id, ckptBytes, s.cfg.MaxCheckpointBytes))
			s.metrics.checkpointQuota.Inc()
			cancel()
			return
		}

		if archive != nil {
			moved := false
			for _, t := range batch {
				moved = archive.Add(t) || moved
			}
			if moved {
				hub.publish(event{name: "front", data: frontEvent(archive.Front())})
			}
		}
	}

	opts := []core.Option{core.WithTranscript(onBatch)}
	if s.cfg.Parallelism > 0 {
		opts = append(opts, core.WithParallelism(s.cfg.Parallelism))
	}
	if st.spec.BatchSize > 0 {
		opts = append(opts, core.WithBatchSize(st.spec.BatchSize))
	}
	if snap != nil {
		opts = append(opts, core.WithResume(*snap))
	}
	if s.cfg.Dispatch != nil {
		opts = append(opts, core.WithDispatch(s.cfg.Dispatch))
	}

	// Quarantine: a panic anywhere in the study drive (optimizer
	// ask/tell, result assembly — worker-side objective panics are
	// already converted by core.Runner) fails this study terminally
	// with its durable prefix intact instead of killing the daemon.
	res, runErr := func() (res *core.StudyResult, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fault.FromPanic("serve.study", r)
			}
		}()
		return cs.Run(ctx, opts...)
	}()
	if cerr := st.stored.CloseTranscript(); cerr != nil {
		s.cfg.Logf("level=warn msg=\"transcript close failed\" tenant=%s id=%s err=%q", st.tenant, st.id, cerr)
		if runErr == nil && checkpointErr == nil {
			checkpointErr = cerr
		}
	}
	if checkpointErr != nil {
		runErr = checkpointErr
	}
	s.finish(st, hub, res, runErr)
}

// hubOf reads a study's current event hub under the server mutex.
func (s *Server) hubOf(st *study) *eventHub {
	s.mu.Lock()
	defer s.mu.Unlock()
	return st.hub
}

// frontEvent compresses a front for the event stream: indices and
// objective values only (full designs come from GET .../result).
func frontEvent(front []search.Trial) []map[string]any {
	out := make([]map[string]any, len(front))
	for i, t := range front {
		out[i] = map[string]any{"index": t.Index, "values": t.Values}
	}
	return out
}

// setState transitions st and persists + publishes the change.
func (s *Server) setState(st *study, hub *eventHub, state string) {
	s.mu.Lock()
	st.state = state
	sum := s.summaryLocked(st)
	s.mu.Unlock()
	s.persistStatus(st)
	hub.publish(event{name: "state", data: sum})
}

// persistStatus writes the study's current progress durably.
func (s *Server) persistStatus(st *study) {
	s.mu.Lock()
	status := store.Status{
		State:        st.state,
		TrialsDone:   st.trialsDone,
		TrialsTarget: st.trialsTarget,
		BestValue:    st.bestValue,
		BestFeasible: st.bestFeasible,
		Error:        st.errMsg,
		Updated:      s.now(),
	}
	stored := st.stored
	s.mu.Unlock()
	if err := stored.SetStatus(status); err != nil {
		s.cfg.Logf("level=error msg=\"status write failed\" tenant=%s id=%s err=%q", st.tenant, st.id, err)
	}
}

// finish lands st in a terminal state, closes its event stream, and
// accounts the outcome.
func (s *Server) finish(st *study, hub *eventHub, res *core.StudyResult, runErr error) {
	state := store.StateDone
	switch {
	case runErr == nil:
	case errors.Is(runErr, context.Canceled):
		s.mu.Lock()
		closing := s.closed
		s.mu.Unlock()
		if closing {
			// Shutdown, not a user cancel: leave the study resumable,
			// exactly as a crash would (the transcript is durable).
			state = store.StateInterrupted
		} else {
			state = store.StateCanceled
			s.metrics.studiesCanceled.Inc()
		}
	case errors.Is(runErr, context.DeadlineExceeded):
		// The study's wall-clock deadline fired: failed, but
		// retryable — the durable prefix resumes under a later
		// deadline.
		state = store.StateFailed
		s.metrics.studiesFailed.Inc()
		s.metrics.deadlineExpired.Inc()
	default:
		state = store.StateFailed
		s.metrics.studiesFailed.Inc()
		if fault.IsPanic(runErr) {
			s.metrics.quarantined.Inc()
		}
	}

	s.mu.Lock()
	st.cancel = nil
	st.state = state
	if state == store.StateFailed && runErr != nil {
		st.errMsg = runErr.Error()
		if errors.Is(runErr, context.DeadlineExceeded) {
			st.errMsg = "study deadline exceeded; durable prefix retained (resume with a later deadline)"
			st.errClass = fault.ClassRetryable.String()
		} else {
			st.errClass = fault.ClassOf(runErr).String()
		}
	}
	if state == store.StateDone && res != nil {
		st.result = res
		st.bestFeasible = res.Search.Best.Feasible
		if res.Search.Best.Feasible {
			st.bestValue = res.Search.Best.Value
		}
	}
	sum := s.summaryLocked(st)
	s.mu.Unlock()
	s.persistStatus(st)

	if state == store.StateDone {
		s.metrics.studiesCompleted.Inc()
		s.countDeadlineHits(res)
	}
	s.cfg.Logf("level=info msg=%s tenant=%s id=%s trials_done=%d err=%q",
		state, st.tenant, st.id, sum.TrialsDone, sum.Error)
	hub.publish(event{name: "state", data: sum})
	if state == store.StateInterrupted {
		// Server shutdown: the study is checkpointed and paused, not
		// finished — the closing SSE frame says so.
		hub.closeWith("shutdown")
	} else {
		hub.close()
	}
}

// countDeadlineHits scans the final report's full-ILP re-simulations
// for fusion solves that hit the ILP deadline (incumbent returned,
// optimality unproven) — the operator's signal to raise the deadline or
// accept the reported gap.
func (s *Server) countDeadlineHits(res *core.StudyResult) {
	if res == nil {
		return
	}
	for _, wr := range res.PerWorkload {
		if wr.Result != nil && wr.Result.Fusion.Method == "ilp-incumbent" {
			s.metrics.ilpDeadlineHits.Inc()
		}
	}
	for _, pt := range res.Front() {
		for _, wr := range pt.PerWorkload {
			if wr.Result != nil && wr.Result.Fusion.Method == "ilp-incumbent" {
				s.metrics.ilpDeadlineHits.Inc()
			}
		}
	}
}
