// Package vpu is the vector-processing-unit cost model: every non-matrix
// op (softmax, layernorm, elementwise math, pooling, reductions, data
// movement) executes on the per-PE VPUs (§5.4). It also implements the
// cost difference between the 3-pass numerically-stable softmax
// (Algorithm 1) and the two-pass online-normalizer softmax (Algorithm 2,
// §5.6): the two-pass variant saves one full DRAM round trip of the
// input at the price of up to 2N extra exponentials.
package vpu

import (
	"fast/internal/arch"
	"fast/internal/hlo"
)

// ExpCost is the vector-op cost of one exponential on the VPU (lookup
// table + Taylor refinement, per [67] in the paper).
const ExpCost = 8

// vpuEfficiency derates peak VPU throughput for real kernels (issue
// bubbles, alignment); calibrated so softmax lands at the paper's "<1% of
// peak chip FLOPs" on TPU-v3.
const vpuEfficiency = 0.85

// lanesOpsPerCycle: each VPU lane executes one fused multiply-add per
// cycle (2 element ops), matching the TPU-v3 vector unit.
const lanesOpsPerCycle = 2

// Cost is the VPU work and mandatory DRAM traffic of a vector op.
type Cost struct {
	// VectorOps is the total element operations executed on VPU lanes.
	VectorOps float64
	// ExtraDRAMBytes is algorithm-mandated DRAM traffic beyond the op's
	// fusion-region boundary traffic (e.g. the spilled temp vector of
	// 3-pass softmax when the row does not fit on chip). Zero for ops
	// whose traffic is fully described by region I/O.
	ExtraDRAMBytes int64
}

// SoftmaxAlgorithm selects the §5.6 variant.
type SoftmaxAlgorithm int

const (
	// ThreePass is Algorithm 1: max pass, exp+sum pass (materializing the
	// temp vector), divide pass.
	ThreePass SoftmaxAlgorithm = iota
	// TwoPass is Algorithm 2: fused online max+sum pass, then output
	// pass; recomputes exponentials instead of materializing them.
	TwoPass
)

// String implements fmt.Stringer.
func (a SoftmaxAlgorithm) String() string {
	if a == TwoPass {
		return "two-pass"
	}
	return "three-pass"
}

// SoftmaxCost returns the VPU cost of softmax over `rows` rows of length
// rowLen. fitsOnChip reports whether one row's working set stays in
// on-chip memory between passes; when it does not, each extra pass costs
// DRAM traffic (§5.6: "these 3 passes usually involve reading and
// writing the values to and from DRAM").
func SoftmaxCost(rows, rowLen int64, alg SoftmaxAlgorithm, fitsOnChip bool, elemBytes int64) Cost {
	n := float64(rows * rowLen)
	var c Cost
	switch alg {
	case TwoPass:
		// Pass 1: running max (1) + rescale exp (ExpCost) + elem exp
		// (ExpCost) + multiply-add (2) per element.
		// Pass 2: exp (ExpCost) + divide (1).
		c.VectorOps = n * (1 + 2*ExpCost + 2 + ExpCost + 1)
		if !fitsOnChip {
			// Reads V twice, writes out once — but the fusion-region
			// traffic already covers one read and one write, so one extra
			// read remains.
			c.ExtraDRAMBytes = int64(n) * elemBytes
		}
	default:
		// Pass 1: max (1). Pass 2: subtract (1) + exp (ExpCost) + add
		// (1), writing tempVec. Pass 3: divide (1).
		c.VectorOps = n * (1 + 1 + ExpCost + 1 + 1)
		if !fitsOnChip {
			// Reads V twice and round-trips the temp vector beyond the
			// region's one read + one write: extra = 1 read of V + 1
			// write + 1 read of tempVec = 3N elements.
			c.ExtraDRAMBytes = 3 * int64(n) * elemBytes
		}
	}
	return c
}

// OpCost returns the VPU cost of a non-matrix op. Softmax uses the
// algorithm and on-chip residency the simulator determined. Matrix ops
// and free ops return zero cost.
func OpCost(op *hlo.Op, alg SoftmaxAlgorithm, softmaxFitsOnChip bool) Cost {
	if op.Kind.IsMatrix() || op.Kind.IsFree() {
		return Cost{}
	}
	if op.Kind == hlo.KSoftmax {
		rowLen := op.Output.Dim(op.Output.Rank() - 1)
		rows := op.Output.Elems() / rowLen
		return SoftmaxCost(rows, rowLen, alg, softmaxFitsOnChip, op.Output.Type.Size())
	}
	per := op.VecOpsPerElem
	if per == 0 {
		per = 1
	}
	return Cost{VectorOps: per * float64(op.Output.Elems())}
}

// Time converts vector ops into seconds on the config's VPUs.
func Time(vectorOps float64, c *arch.Config) float64 {
	peak := c.PeakVectorOps() / float64(c.Cores) * vpuEfficiency * lanesOpsPerCycle
	if peak <= 0 {
		return 0
	}
	return vectorOps / peak
}

// LSTMGateOps returns the VPU-side work of a fused LSTM cell (the gate
// nonlinearities and state update that accompany its matmul).
func LSTMGateOps(op *hlo.Op) float64 {
	if op.Kind != hlo.KLSTMCell {
		return 0
	}
	return op.VecOpsPerElem * float64(op.Output.Elems())
}
