package vpu

import (
	"testing"

	"fast/internal/arch"
	"fast/internal/hlo"
	"fast/internal/tensor"
)

func TestSoftmaxTwoPassTradesComputeForTraffic(t *testing.T) {
	// §5.6: two-pass eliminates memory passes but up to 2N extra exps.
	three := SoftmaxCost(1024, 1024, ThreePass, false, 2)
	two := SoftmaxCost(1024, 1024, TwoPass, false, 2)
	if two.ExtraDRAMBytes >= three.ExtraDRAMBytes {
		t.Errorf("two-pass DRAM %d must be < three-pass %d", two.ExtraDRAMBytes, three.ExtraDRAMBytes)
	}
	if two.VectorOps <= three.VectorOps {
		t.Errorf("two-pass vector ops %.0f must exceed three-pass %.0f", two.VectorOps, three.VectorOps)
	}
	// Extra exps bounded by ~2N·ExpCost plus bookkeeping.
	n := float64(1024 * 1024)
	if two.VectorOps-three.VectorOps > n*(2*ExpCost+3) {
		t.Error("two-pass overhead exceeds the 2N-exponential bound")
	}
}

func TestSoftmaxOnChipHasNoExtraTraffic(t *testing.T) {
	for _, alg := range []SoftmaxAlgorithm{ThreePass, TwoPass} {
		c := SoftmaxCost(128, 128, alg, true, 2)
		if c.ExtraDRAMBytes != 0 {
			t.Errorf("%v: on-chip softmax should add no DRAM traffic", alg)
		}
	}
}

func TestSoftmaxUtilizationTiny(t *testing.T) {
	// §4.3: softmax runs at <1% of peak chip FLOPs on TPU-v3. A BERT
	// seq-1024 softmax (12 heads): time on VPU vs the chip's peak
	// implies compute utilization ≈ vectorOps/time/peakFLOPs < 1%.
	tpu := arch.TPUv3()
	cost := SoftmaxCost(12*1024, 1024, ThreePass, false, 2)
	secs := Time(cost.VectorOps, tpu)
	elems := float64(12 * 1024 * 1024)
	util := (elems * 5) / (secs * tpu.PeakFLOPs() / float64(tpu.Cores))
	if util > 0.02 {
		t.Errorf("softmax pseudo-utilization = %.4f, want ≪ peak (paper: <1%%)", util)
	}
}

func TestOpCost(t *testing.T) {
	g := hlo.NewGraph("t")
	x := g.Input("x", tensor.NewShape(tensor.BF16, 4, 128, 768))
	sm := g.Softmax("sm", x)
	mm := g.MatMul("mm", x, 64)
	re := g.Reshape("re", x, tensor.NewShape(tensor.BF16, 4*128, 768))
	act := g.Activation("act", x, 4)

	if c := OpCost(mm, ThreePass, true); c.VectorOps != 0 {
		t.Error("matrix op must have zero VPU cost")
	}
	if c := OpCost(re, ThreePass, true); c.VectorOps != 0 {
		t.Error("reshape must be free")
	}
	if c := OpCost(act, ThreePass, true); c.VectorOps != 4*float64(x.Output.Elems()) {
		t.Errorf("activation cost = %f", c.VectorOps)
	}
	smCost := OpCost(sm, ThreePass, false)
	if smCost.VectorOps <= 0 || smCost.ExtraDRAMBytes <= 0 {
		t.Errorf("softmax cost = %+v", smCost)
	}
}

func TestTimeScalesWithVPUWidth(t *testing.T) {
	small := arch.FASTLarge()
	wide := small.Clone("wide")
	wide.VectorMult = 4
	ops := 1e9
	if Time(ops, wide) >= Time(ops, small) {
		t.Error("wider VPU must be faster")
	}
	ratio := Time(ops, small) / Time(ops, wide)
	if ratio < 3.9 || ratio > 4.1 {
		t.Errorf("4x lanes should give ~4x speedup, got %.2f", ratio)
	}
}

func TestLSTMGateOps(t *testing.T) {
	g := hlo.NewGraph("t")
	x := g.Input("x", tensor.NewShape(tensor.BF16, 4, 256))
	cell := g.LSTMCell("c", x, 512)
	if LSTMGateOps(cell) != cell.VecOpsPerElem*float64(cell.Output.Elems()) {
		t.Error("gate ops mismatch")
	}
	if LSTMGateOps(x) != 0 {
		t.Error("non-LSTM op must have zero gate ops")
	}
}

func TestAlgorithmString(t *testing.T) {
	if ThreePass.String() != "three-pass" || TwoPass.String() != "two-pass" {
		t.Error("algorithm names wrong")
	}
}
