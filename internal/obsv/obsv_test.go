package obsv

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeFunc(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("requests_total", "HTTP requests served.")
	g := r.NewGauge("active", "Active studies.")
	r.NewFunc("cache_bytes", "Plan cache residency.", func() float64 { return 42 })

	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g.Set(3)
	g.Add(-1.5)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", g.Value())
	}

	snap := r.Snapshot()
	if snap["requests_total"] != int64(5) {
		t.Errorf("snapshot counter = %v (%T), want int64(5)", snap["requests_total"], snap["requests_total"])
	}
	if snap["active"] != 1.5 {
		t.Errorf("snapshot gauge = %v, want 1.5", snap["active"])
	}
	if snap["cache_bytes"] != 42.0 {
		t.Errorf("snapshot func = %v, want 42", snap["cache_bytes"])
	}
}

func TestRegistryRejectsDuplicatesAndDecrements(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("x_total", "")
	mustPanic(t, "duplicate name", func() { r.NewGauge("x_total", "") })
	mustPanic(t, "empty name", func() { r.NewCounter("", "") })
	mustPanic(t, "counter decrement", func() { c.Add(-1) })
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", what)
		}
	}()
	f()
}

func TestCatalogSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.NewGauge("zz", "last")
	r.NewCounter("aa_total", "first")
	r.NewMeter("mm_rate", "middle", time.Second)
	cat := r.Catalog()
	if len(cat) != 3 {
		t.Fatalf("catalog has %d entries, want 3", len(cat))
	}
	wantNames := []string{"aa_total", "mm_rate", "zz"}
	wantKinds := []string{"counter", "meter", "gauge"}
	for i := range cat {
		if cat[i].Name != wantNames[i] || cat[i].Kind != wantKinds[i] {
			t.Errorf("catalog[%d] = %+v, want %s/%s", i, cat[i], wantNames[i], wantKinds[i])
		}
	}
}

func TestHandlerServesSortedJSON(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("b_total", "").Add(2)
	r.NewGauge("a", "").Set(1)
	r.NewFunc("nan", "", func() float64 { return 0.0 / zero })

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("Content-Type = %q", ct)
	}
	var got map[string]float64
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("response is not JSON: %v\n%s", err, rec.Body.String())
	}
	if got["b_total"] != 2 || got["a"] != 1 {
		t.Errorf("scrape = %v", got)
	}
	if got["nan"] != 0 {
		t.Errorf("non-finite func value must be clamped to 0, got %v", got["nan"])
	}
	if a, b := strings.Index(rec.Body.String(), `"a"`), strings.Index(rec.Body.String(), `"b_total"`); a > b {
		t.Error("scrape keys are not sorted")
	}
}

// zero defeats the compiler's constant-division-by-zero error while
// still producing NaN at run time.
var zero = 0.0

func TestMeterTrailingWindow(t *testing.T) {
	r := NewRegistry()
	m := r.NewMeter("trials_rate", "Trials per second.", 10*time.Second)
	now := time.Unix(1000, 0)
	m.now = func() time.Time { return now }

	m.Mark(30)
	if got := m.Rate(); got != 3 {
		t.Fatalf("rate = %v, want 3 (30 events / 10s window)", got)
	}
	now = now.Add(5 * time.Second)
	m.Mark(10)
	if got := m.Rate(); got != 4 {
		t.Fatalf("rate = %v, want 4 (40 events in window)", got)
	}
	now = now.Add(6 * time.Second) // first sample ages out
	if got := m.Rate(); got != 1 {
		t.Fatalf("rate = %v, want 1 (only the second sample remains)", got)
	}
	now = now.Add(time.Minute) // everything ages out
	if got := m.Rate(); got != 0 {
		t.Fatalf("rate = %v, want 0 after the window drains", got)
	}
	m.Mark(0) // no-op
	m.Mark(-5)
	if got := m.Rate(); got != 0 {
		t.Fatalf("rate = %v, non-positive marks must be ignored", got)
	}
}

func TestInstrumentsRaceFree(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "")
	g := r.NewGauge("g", "")
	m := r.NewMeter("m_rate", "", time.Second)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				m.Mark(1)
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Errorf("gauge = %v, want 8000", g.Value())
	}
}
