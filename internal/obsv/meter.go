package obsv

import (
	"sync"
	"time"
)

// Meter measures an event rate over a trailing window — the trials/s
// figure operators watch to size parallelism and spot stalls. Mark
// records events as they happen; the exported value is events per
// second over the last window, decaying to zero when events stop
// (unlike a lifetime counter/uptime average, which flattens stalls
// away).
type Meter struct {
	meta   Info
	window time.Duration
	now    func() time.Time // injectable for tests

	mu      sync.Mutex
	samples []meterSample // time-ordered; pruned to the window on access
}

type meterSample struct {
	t time.Time
	n int64
}

// NewMeter registers and returns a meter over the given trailing
// window (e.g. 30*time.Second). window must be positive.
func (r *Registry) NewMeter(name, help string, window time.Duration) *Meter {
	if window <= 0 {
		panic("obsv: meter window must be positive")
	}
	m := &Meter{
		meta:   Info{Name: name, Kind: "meter", Help: help},
		window: window,
		now:    time.Now,
	}
	r.register(m)
	return m
}

// Mark records n events now.
func (m *Meter) Mark(n int64) {
	if n <= 0 {
		return
	}
	m.mu.Lock()
	t := m.now() // under the lock, so samples stay time-ordered
	m.pruneLocked(t)
	m.samples = append(m.samples, meterSample{t: t, n: n})
	m.mu.Unlock()
}

// Rate returns events per second over the trailing window.
func (m *Meter) Rate() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pruneLocked(m.now())
	var sum int64
	for _, s := range m.samples {
		sum += s.n
	}
	return float64(sum) / m.window.Seconds()
}

// pruneLocked drops samples older than the window. Samples are
// time-ordered (Mark timestamps under one lock), so the live suffix is
// contiguous.
func (m *Meter) pruneLocked(now time.Time) {
	cut := now.Add(-m.window)
	i := 0
	for i < len(m.samples) && !m.samples[i].t.After(cut) {
		i++
	}
	if i > 0 {
		m.samples = append(m.samples[:0], m.samples[i:]...)
	}
}

func (m *Meter) info() Info { return m.meta }
func (m *Meter) read() any  { return m.Rate() }
