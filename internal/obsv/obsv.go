// Package obsv is the observability layer of the FAST serving stack: a
// small, dependency-free metrics registry in the expvar idiom, exported
// as flat JSON at GET /debug/vars by internal/serve.
//
// Four instrument kinds cover the daemon's needs: Counter (monotonic
// totals: trials evaluated, checkpoint writes, cache evictions), Gauge
// (set-point values: active studies, queue depth), Func (values
// computed on read from another subsystem: plan-cache residency from
// core.PlanCacheInfo), and Meter (trailing-window rates: trials/s).
// Every instrument registers under a unique name with a help string;
// Catalog lists them for the operations runbook, and Snapshot/Handler
// render current values with deterministic (sorted) key order so
// scrapes diff cleanly.
//
// The package deliberately stays out of the fastlint determinism scope:
// rates need wall-clock time, which the search/simulator layers ban.
// Nothing here feeds back into search results — it is strictly
// reporting.
package obsv

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Info describes one registered instrument for the metrics catalog.
type Info struct {
	// Name is the registry-unique metric name (by convention
	// snake_case with a subsystem prefix, e.g. fastserve_trials_total).
	Name string `json:"name"`
	// Kind is "counter", "gauge", "func", or "meter".
	Kind string `json:"kind"`
	// Help is a one-line description, surfaced in docs/OPERATIONS.md.
	Help string `json:"help"`
}

// instrument is the internal read interface every kind implements.
type instrument interface {
	info() Info
	read() any // int64 for counters, float64 for the rest
}

// Registry holds a set of uniquely named instruments. The zero value is
// not usable; construct with NewRegistry. Registration is expected at
// daemon start-up; reads and updates are safe from any goroutine.
type Registry struct {
	mu sync.Mutex
	m  map[string]instrument
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{m: map[string]instrument{}}
}

// register adds inst under its name, panicking on a duplicate: two
// subsystems claiming one name is a wiring bug that must fail loudly at
// start-up, not silently shadow a metric.
func (r *Registry) register(inst instrument) {
	name := inst.info().Name
	if name == "" {
		panic("obsv: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.m[name]; dup {
		panic(fmt.Sprintf("obsv: duplicate metric %q", name))
	}
	r.m[name] = inst
}

// Catalog returns every registered instrument's description, sorted by
// name.
func (r *Registry) Catalog() []Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Info, 0, len(r.m))
	for _, inst := range r.m {
		out = append(out, inst.info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Snapshot returns the current value of every instrument, keyed by
// name. Counter values are int64; gauge, func, and meter values are
// float64 (non-finite values are clamped to 0 so the snapshot always
// marshals).
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	insts := make([]instrument, 0, len(r.m))
	for _, inst := range r.m {
		insts = append(insts, inst)
	}
	r.mu.Unlock()

	out := make(map[string]any, len(insts))
	for _, inst := range insts {
		v := inst.read()
		if f, ok := v.(float64); ok && (math.IsNaN(f) || math.IsInf(f, 0)) {
			v = 0.0
		}
		out[inst.info().Name] = v
	}
	return out
}

// Handler serves the registry as flat JSON with sorted keys — the
// GET /debug/vars endpoint. encoding/json sorts map keys, so repeated
// scrapes diff line-for-line.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot()) //nolint:errcheck // best-effort scrape
	})
}

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	meta Info
	v    atomic.Int64
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{meta: Info{Name: name, Kind: "counter", Help: help}}
	r.register(c)
	return c
}

// Add increments the counter by n (n must be >= 0; Add panics
// otherwise, since a decreasing "total" corrupts every rate derived
// from it).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("obsv: counter %s decremented by %d", c.meta.Name, n))
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current total.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) info() Info { return c.meta }
func (c *Counter) read() any  { return c.v.Load() }

// Gauge is a float64 metric that can move both ways.
type Gauge struct {
	meta Info
	bits atomic.Uint64
}

// NewGauge registers and returns a gauge (initially 0).
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{meta: Info{Name: name, Kind: "gauge", Help: help}}
	r.register(g)
	return g
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (atomic compare-and-swap loop).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) info() Info { return g.meta }
func (g *Gauge) read() any  { return g.Value() }

// funcGauge computes its value on every read — the bridge to state
// owned elsewhere (plan-cache residency, queue lengths).
type funcGauge struct {
	meta Info
	f    func() float64
}

// NewFunc registers a gauge whose value is f(), evaluated at snapshot
// time. f must be safe to call from any goroutine.
func (r *Registry) NewFunc(name, help string, f func() float64) {
	r.register(&funcGauge{meta: Info{Name: name, Kind: "func", Help: help}, f: f})
}

func (fg *funcGauge) info() Info { return fg.meta }
func (fg *funcGauge) read() any  { return fg.f() }
