package hlo

import (
	"testing"

	"fast/internal/tensor"
)

// tinyCNN builds input→conv→bn→act→dwconv→bn→act→conv1x1→add(residual).
func tinyCNN() *Graph {
	g := NewGraph("tiny")
	g.InBlock("stem")
	in := g.Input("x", tensor.NewShape(tensor.BF16, 1, 8, 8, 16))
	c := g.Conv2D("conv1", in, 32, 3, 3, 1, true)
	c = g.BatchNorm("bn1", c)
	c = g.Activation("act1", c, 4)
	g.InBlock("block1")
	d := g.DepthwiseConv2D("dw1", c, 3, 3, 1, true)
	d = g.BatchNorm("bn2", d)
	d = g.Activation("act2", d, 4)
	p := g.Conv2D("pw1", d, 32, 1, 1, 1, true)
	s := g.Add("res", p, c)
	g.Output(s)
	return g
}

func TestGraphValidate(t *testing.T) {
	g := tinyCNN()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConvShapes(t *testing.T) {
	g := NewGraph("shapes")
	in := g.Input("x", tensor.NewShape(tensor.BF16, 2, 224, 224, 3))
	c := g.Conv2D("conv", in, 32, 3, 3, 2, true)
	want := tensor.NewShape(tensor.BF16, 2, 112, 112, 32)
	if !c.Output.Equal(want) {
		t.Errorf("conv output = %s, want %s", c.Output, want)
	}
	v := g.Conv2D("valid", in, 8, 7, 7, 1, false)
	if v.Output.Dim(1) != 218 || v.Output.Dim(2) != 218 {
		t.Errorf("VALID conv output = %s", v.Output)
	}
}

func TestConvWeightsIncludeBias(t *testing.T) {
	g := NewGraph("w")
	in := g.Input("x", tensor.NewShape(tensor.BF16, 1, 8, 8, 16))
	c := g.Conv2D("conv", in, 32, 3, 3, 1, true)
	want := int64(3*3*16*32+32) * 2
	if c.WeightBytes() != want {
		t.Errorf("conv weight bytes = %d, want %d", c.WeightBytes(), want)
	}
}

func TestConvFLOPs(t *testing.T) {
	g := NewGraph("flops")
	in := g.Input("x", tensor.NewShape(tensor.BF16, 1, 8, 8, 16))
	c := g.Conv2D("conv", in, 32, 3, 3, 1, true)
	want := int64(2 * 1 * 8 * 8 * 32 * 3 * 3 * 16)
	if got := FLOPs(c); got != want {
		t.Errorf("conv FLOPs = %d, want %d", got, want)
	}
	d := g.DepthwiseConv2D("dw", c, 3, 3, 1, true)
	wantDW := int64(2 * 1 * 8 * 8 * 32 * 3 * 3)
	if got := FLOPs(d); got != wantDW {
		t.Errorf("dwconv FLOPs = %d, want %d", got, wantDW)
	}
	// Depthwise separable vs full conv: the paper cites 8-9× FLOP savings
	// for 3x3 kernels. For C→C channels the ratio is 9C/(9+C); check at
	// C=128 where it should be ≈8.4.
	g2 := NewGraph("ratio")
	x := g2.Input("x", tensor.NewShape(tensor.BF16, 1, 14, 14, 128))
	full := float64(FLOPs(g2.Conv2D("full", x, 128, 3, 3, 1, true)))
	dw := g2.DepthwiseConv2D("dw", x, 3, 3, 1, true)
	sep := float64(FLOPs(dw) + FLOPs(g2.Conv2D("pw", dw, 128, 1, 1, 1, true)))
	if ratio := full / sep; ratio < 8 || ratio > 9 {
		t.Errorf("conv/dsconv FLOP ratio = %.2f, want ~8-9", ratio)
	}
}

func TestMatMulFLOPs(t *testing.T) {
	g := NewGraph("mm")
	in := g.Input("x", tensor.NewShape(tensor.BF16, 4, 128, 768))
	m := g.MatMul("proj", in, 3072)
	if m.Einsum.M != 4*128 || m.Einsum.K != 768 || m.Einsum.N != 3072 {
		t.Errorf("matmul einsum = %+v", m.Einsum)
	}
	want := int64(2 * 4 * 128 * 768 * 3072)
	if got := FLOPs(m); got != want {
		t.Errorf("matmul FLOPs = %d, want %d", got, want)
	}
}

func TestEinsumActAct(t *testing.T) {
	g := NewGraph("attn")
	q := g.Input("q", tensor.NewShape(tensor.BF16, 12, 128, 64))
	k := g.Input("k", tensor.NewShape(tensor.BF16, 12, 64, 128))
	s := g.Einsum("qk", q, k, 12, 128, 128, 64)
	if !s.Einsum.ActAct {
		t.Error("einsum should be act×act")
	}
	if s.Output.Dim(0) != 12 || s.Output.Dim(1) != 128 || s.Output.Dim(2) != 128 {
		t.Errorf("einsum output = %s", s.Output)
	}
	if s.HasWeights() {
		t.Error("act×act einsum must not carry weights")
	}
}

func TestBuilderPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on rank-2 conv input")
		}
	}()
	g := NewGraph("bad")
	in := g.Input("x", tensor.NewShape(tensor.BF16, 2, 3))
	g.Conv2D("conv", in, 8, 3, 3, 1, true)
}

func TestWorkingSet(t *testing.T) {
	g := tinyCNN()
	// Largest working set is the residual add: two 8×8×32 inputs plus one
	// 8×8×32 output, all bf16.
	ws := MaxWorkingSetBytes(g)
	want := int64(3 * 8 * 8 * 32 * 2)
	if ws != want {
		t.Errorf("max working set = %d, want %d", ws, want)
	}
}

func TestStats(t *testing.T) {
	g := tinyCNN()
	s := Stats(g)
	if s.MatrixOps != 3 {
		t.Errorf("matrix ops = %d, want 3", s.MatrixOps)
	}
	if s.FLOPs <= 0 || s.WeightBytes <= 0 {
		t.Errorf("stats: %+v", s)
	}
	if s.InputBytes != 8*8*16*2 {
		t.Errorf("input bytes = %d", s.InputBytes)
	}
	if s.DepthwiseFLOPs == 0 || s.Conv2DFLOPs == 0 {
		t.Error("expected both conv and dwconv FLOPs")
	}
	if s.FLOPs != s.DepthwiseFLOPs+s.Conv2DFLOPs+s.VectorFLOPs {
		t.Error("FLOP partition does not sum to total")
	}
}

func TestWithBatch(t *testing.T) {
	g := tinyCNN()
	g8 := g.WithBatch(8)
	if g8.NativeBatch() != 8 {
		t.Fatalf("native batch = %d", g8.NativeBatch())
	}
	if err := g8.Validate(); err != nil {
		t.Fatal(err)
	}
	// FLOPs scale linearly with batch; weights do not.
	if GraphFLOPs(g8) != 8*GraphFLOPs(g) {
		t.Errorf("FLOPs: got %d, want %d", GraphFLOPs(g8), 8*GraphFLOPs(g))
	}
	if WeightBytes(g8) != WeightBytes(g) {
		t.Error("weights must not scale with batch")
	}
	// Original graph untouched.
	if g.NativeBatch() != 1 {
		t.Error("WithBatch mutated the source graph")
	}
	// Same-batch call returns the identical graph.
	if g.WithBatch(1) != g {
		t.Error("WithBatch(native) should return the receiver")
	}
}

func TestPartitionNone(t *testing.T) {
	g := tinyCNN()
	p := PartitionNone(g)
	costed := 0
	for _, op := range g.Ops {
		if !skipRegion(op) {
			costed++
		}
	}
	if len(p.Regions) != costed {
		t.Errorf("regions = %d, want %d", len(p.Regions), costed)
	}
}

func TestPartitionXLA(t *testing.T) {
	g := tinyCNN()
	p := PartitionXLA(g)
	// conv1+bn1+act1 | dw1+bn2+act2 | pw1+res → 3 regions.
	if len(p.Regions) != 3 {
		t.Fatalf("XLA regions = %d, want 3", len(p.Regions))
	}
	for _, r := range p.Regions {
		matrix := 0
		for _, op := range r.Ops {
			if op.Kind.IsMatrix() {
				matrix++
			}
		}
		if matrix > 1 {
			t.Errorf("region %d has %d matrix ops", r.ID, matrix)
		}
	}
}

func TestPartitionDSConv(t *testing.T) {
	g := tinyCNN()
	p := PartitionDSConv(g)
	// dw region merges with pointwise region → 2 regions.
	if len(p.Regions) != 2 {
		t.Fatalf("DSConv regions = %d, want 2", len(p.Regions))
	}
}

func TestPartitionMBConv(t *testing.T) {
	g := tinyCNN()
	p := PartitionMBConv(g)
	// One region per block: stem, block1.
	if len(p.Regions) != 2 {
		t.Fatalf("MBConv regions = %d, want 2", len(p.Regions))
	}
}

func TestOpIntensityOrdering(t *testing.T) {
	// Fusion must monotonically improve (or preserve) op intensity:
	// none <= XLA <= DSConv <= MBConv <= ideal.
	g := tinyCNN()
	none := PartitionNone(g).OpIntensity()
	xla := PartitionXLA(g).OpIntensity()
	ds := PartitionDSConv(g).OpIntensity()
	mb := PartitionMBConv(g).OpIntensity()
	ideal := IdealOpIntensity(g)
	if !(none <= xla+1e-9 && xla <= ds+1e-9 && ds <= mb+1e-9 && mb <= ideal+1e-9) {
		t.Errorf("intensity not monotone: none=%.2f xla=%.2f ds=%.2f mb=%.2f ideal=%.2f",
			none, xla, ds, mb, ideal)
	}
	if none <= 0 {
		t.Error("op intensity must be positive")
	}
}

func TestRegionIOConservation(t *testing.T) {
	// Under PartitionNone, total region FLOPs equals graph FLOPs and every
	// non-free op's weights are accounted exactly once.
	g := tinyCNN()
	p := PartitionNone(g)
	var flops, weights int64
	for _, r := range p.Regions {
		io := p.IO(r)
		flops += io.FLOPs
		weights += io.WeightBytes
	}
	if flops != GraphFLOPs(g) {
		t.Errorf("region FLOPs %d != graph FLOPs %d", flops, GraphFLOPs(g))
	}
	if weights != WeightBytes(g) {
		t.Errorf("region weights %d != graph weights %d", weights, WeightBytes(g))
	}
}

func TestConsumers(t *testing.T) {
	g := tinyCNN()
	cons := g.Consumers()
	// act1 output feeds dw1 and the residual add.
	var act1 *Op
	for _, op := range g.Ops {
		if op.Name == "act1" {
			act1 = op
		}
	}
	if act1 == nil {
		t.Fatal("act1 not found")
	}
	if len(cons[act1.ID]) != 2 {
		t.Errorf("act1 consumers = %d, want 2", len(cons[act1.ID]))
	}
}

func TestLSTMCell(t *testing.T) {
	g := NewGraph("lstm")
	x := g.Input("x", tensor.NewShape(tensor.BF16, 4, 256))
	c := g.LSTMCell("cell", x, 512)
	if c.Output.Dim(1) != 512 {
		t.Errorf("lstm output = %s", c.Output)
	}
	wantW := int64((256+512)*4*512+4*512) * 2
	if c.WeightBytes() != wantW {
		t.Errorf("lstm weights = %d, want %d", c.WeightBytes(), wantW)
	}
	if FLOPs(c) <= 2*4*(256+512)*4*512 {
		t.Error("lstm FLOPs must include gate math beyond the matmul")
	}
}

func TestKindString(t *testing.T) {
	if KConv2D.String() != "conv2d" || Kind(99).String() != "kind(99)" {
		t.Error("kind names wrong")
	}
}

func TestValidateCatchesBadIDs(t *testing.T) {
	g := tinyCNN()
	g.Ops[2].ID = 99
	if err := g.Validate(); err == nil {
		t.Error("expected validation error for bad ID")
	}
}
