package hlo

// FLOPs returns the floating-point operation count of an op, counting one
// multiply-accumulate as 2 FLOPs (the convention the paper and MLPerf
// use). Vector ops count VecOpsPerElem per output element.
func FLOPs(op *Op) int64 {
	switch op.Kind {
	case KConv2D:
		// 2 · B·OH·OW·OF · KH·KW·IF
		b, oh, ow, of := op.Output.Dim(0), op.Output.Dim(1), op.Output.Dim(2), op.Output.Dim(3)
		ifc := op.Inputs[0].Output.Dim(3)
		return 2 * b * oh * ow * of * op.Conv.KH * op.Conv.KW * ifc
	case KDepthwiseConv2D:
		// 2 · B·OH·OW·C · KH·KW (filter depth is 1 — the §3.2 compute
		// reduction that also destroys systolic-array utilization).
		return 2 * op.Output.Elems() * op.Conv.KH * op.Conv.KW
	case KMatMul, KEinsum, KLSTMCell:
		e := op.Einsum
		flops := 2 * e.Batch * e.M * e.N * e.K
		if op.Kind == KLSTMCell {
			flops += int64(op.VecOpsPerElem) * op.Output.Elems()
		}
		return flops
	case KInput, KConst, KOutput, KReshape, KKVCache:
		return 0
	default:
		per := op.VecOpsPerElem
		if per == 0 {
			per = 1
		}
		return int64(per * float64(op.Output.Elems()))
	}
}

// GraphFLOPs sums FLOPs over the graph.
func GraphFLOPs(g *Graph) int64 {
	var n int64
	for _, op := range g.Ops {
		n += FLOPs(op)
	}
	return n
}

// WeightBytes sums the unique parameter footprint of the graph,
// counting shared weight tensors (same WeightKey) once.
func WeightBytes(g *Graph) int64 {
	var n int64
	seen := make(map[string]bool)
	for _, op := range g.Ops {
		if !op.HasWeights() {
			continue
		}
		k := op.SharedWeightKey()
		if seen[k] {
			continue
		}
		seen[k] = true
		n += op.WeightBytes()
	}
	return n
}

// MaxWorkingSetBytes returns the working-set size of the op with the
// largest memory footprint (inputs+outputs) — the paper's Table 1 metric.
// Free ops are skipped.
func MaxWorkingSetBytes(g *Graph) int64 {
	var m int64
	for _, op := range g.Ops {
		if op.Kind.IsFree() {
			continue
		}
		if ws := op.WorkingSetBytes(); ws > m {
			m = ws
		}
	}
	return m
}

// GraphStats aggregates whole-graph accounting used by reports.
type GraphStats struct {
	Ops            int
	MatrixOps      int
	FLOPs          int64
	WeightBytes    int64
	MaxWorkingSet  int64
	InputBytes     int64 // graph inputs fetched from DRAM
	OutputBytes    int64 // graph results written to DRAM
	KVBytes        int64 // persistent KV-cache bytes read per decode step
	DepthwiseFLOPs int64
	Conv2DFLOPs    int64
	VectorFLOPs    int64
}

// Stats computes GraphStats for g.
func Stats(g *Graph) GraphStats {
	s := GraphStats{Ops: len(g.Ops)}
	seenW := make(map[string]bool)
	for _, op := range g.Ops {
		f := FLOPs(op)
		s.FLOPs += f
		if op.HasWeights() {
			if k := op.SharedWeightKey(); !seenW[k] {
				seenW[k] = true
				s.WeightBytes += op.WeightBytes()
			}
		}
		switch {
		case op.Kind == KConv2D:
			s.Conv2DFLOPs += f
			s.MatrixOps++
		case op.Kind == KDepthwiseConv2D:
			s.DepthwiseFLOPs += f
			s.MatrixOps++
		case op.Kind.IsMatrix():
			s.Conv2DFLOPs += f
			s.MatrixOps++
		default:
			s.VectorFLOPs += f
		}
		if op.Kind == KInput {
			s.InputBytes += op.Output.Bytes()
		}
		if op.Kind == KOutput {
			s.OutputBytes += op.Output.Bytes()
		}
		if op.Kind == KKVCache {
			s.KVBytes += op.Output.Bytes()
		}
	}
	s.MaxWorkingSet = MaxWorkingSetBytes(g)
	return s
}
