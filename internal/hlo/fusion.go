package hlo

// Fusion-region partitioning.
//
// The paper's compiler substrate is XLA, whose fusion pass groups ops into
// fusion regions containing at most one matrix operation each; FAST fusion
// (internal/fusion) is then a secondary pass over those regions. This file
// implements that partitioning plus the Figure 3 comparison templates:
//
//	PartitionNone    — every costed op is its own region (no fusion)
//	PartitionXLA     — greedy XLA-style regions (≤1 matrix op each)
//	PartitionDSConv  — XLA + merge depthwise→pointwise pairs
//	PartitionMBConv  — XLA + merge all regions within a model block
//	IdealOpIntensity — all weights pinned; only graph I/O touches DRAM

// Region is a fusion region: a set of ops executed as one kernel. Only
// the region's boundary tensors (external inputs, outputs consumed
// elsewhere) and weights touch DRAM.
type Region struct {
	ID  int
	Ops []*Op
	// Block is the model block of the region's first op.
	Block string
}

// Partition is a complete assignment of costed ops to regions, in
// execution order (regions are ordered by their first op ID).
type Partition struct {
	Graph    *Graph
	Regions  []*Region
	regionOf []int // op ID -> region index, -1 for sources/markers

	consumers [][]int // lazily cached Graph.Consumers()
}

// Consumers returns the cached consumer adjacency of the graph.
func (p *Partition) Consumers() [][]int {
	if p.consumers == nil {
		p.consumers = p.Graph.Consumers()
	}
	return p.consumers
}

// RegionOf returns the region index of op id, or -1 for ops outside any
// region (inputs, constants, output markers).
func (p *Partition) RegionOf(id int) int { return p.regionOf[id] }

// skipRegion reports whether the op never belongs to a region.
func skipRegion(op *Op) bool {
	return op.Kind == KInput || op.Kind == KConst || op.Kind == KOutput || op.Kind == KKVCache
}

func newPartition(g *Graph) *Partition {
	p := &Partition{Graph: g, regionOf: make([]int, len(g.Ops))}
	for i := range p.regionOf {
		p.regionOf[i] = -1
	}
	return p
}

func (p *Partition) newRegion(op *Op) int {
	r := &Region{ID: len(p.Regions), Block: op.Block}
	r.Ops = append(r.Ops, op)
	p.Regions = append(p.Regions, r)
	p.regionOf[op.ID] = r.ID
	return r.ID
}

func (p *Partition) join(op *Op, region int) {
	r := p.Regions[region]
	r.Ops = append(r.Ops, op)
	p.regionOf[op.ID] = region
}

// PartitionNone puts every costed op in its own region.
func PartitionNone(g *Graph) *Partition {
	p := newPartition(g)
	for _, op := range g.Ops {
		if skipRegion(op) {
			continue
		}
		p.newRegion(op)
	}
	return p
}

// PartitionXLA approximates XLA's fusion pass: a matrix op always opens a
// new region; a non-matrix op joins the region of its most recent
// non-source producer (reading any other operands as region parameters),
// and opens a new region if it has no producer region. Each region holds
// at most one matrix op by construction.
func PartitionXLA(g *Graph) *Partition {
	p := newPartition(g)
	for _, op := range g.Ops {
		if skipRegion(op) {
			continue
		}
		if op.Kind.IsMatrix() {
			p.newRegion(op)
			continue
		}
		best := -1
		for _, in := range op.Inputs {
			if r := p.regionOf[in.ID]; r > best {
				best = r
			}
		}
		if best < 0 {
			p.newRegion(op)
		} else {
			p.join(op, best)
		}
	}
	return p
}

// mergeRegions rebuilds a Partition given a union-find style mapping from
// old region index to merged group leader.
func mergeRegions(p *Partition, leader []int) *Partition {
	out := newPartition(p.Graph)
	groupTo := make(map[int]int)
	for _, op := range p.Graph.Ops {
		r := p.regionOf[op.ID]
		if r < 0 {
			continue
		}
		l := leader[r]
		if g, ok := groupTo[l]; ok {
			out.join(op, g)
		} else {
			groupTo[l] = out.newRegion(op)
		}
	}
	return out
}

func find(leader []int, i int) int {
	for leader[i] != i {
		leader[i] = leader[leader[i]]
		i = leader[i]
	}
	return i
}

// PartitionDSConv starts from the XLA partition and additionally merges
// each depthwise-convolution region with the region of its 1×1 pointwise
// consumer — the hypothetical depthwise-separable fusion template of §4.1.
func PartitionDSConv(g *Graph) *Partition {
	p := PartitionXLA(g)
	leader := make([]int, len(p.Regions))
	for i := range leader {
		leader[i] = i
	}
	consumers := g.Consumers()
	for _, op := range g.Ops {
		if op.Kind != KDepthwiseConv2D {
			continue
		}
		// Find the pointwise conv that (transitively, through elementwise
		// ops in other regions) consumes this op within the same block.
		dwRegion := p.regionOf[op.ID]
		frontier := append([]int(nil), consumers[op.ID]...)
		for i := 0; i < len(frontier) && len(frontier) < 64; i++ {
			cid := frontier[i]
			c := g.Ops[cid]
			if c.Kind == KConv2D && c.Conv.KH == 1 && c.Conv.KW == 1 {
				a, b := find(leader, dwRegion), find(leader, p.regionOf[cid])
				leader[a] = b
			} else if !c.Kind.IsMatrix() && p.regionOf[cid] >= 0 {
				frontier = append(frontier, consumers[cid]...)
			}
		}
	}
	return mergeRegions(p, normalizeLeaders(leader))
}

// PartitionMBConv starts from the XLA partition and merges every region
// belonging to the same model block into one — the hypothetical MBConv
// block-fusion template of §4.1.
func PartitionMBConv(g *Graph) *Partition {
	p := PartitionXLA(g)
	leader := make([]int, len(p.Regions))
	byBlock := make(map[string]int)
	for i, r := range p.Regions {
		leader[i] = i
		if r.Block == "" {
			continue
		}
		if first, ok := byBlock[r.Block]; ok {
			leader[i] = first
		} else {
			byBlock[r.Block] = i
		}
	}
	return mergeRegions(p, normalizeLeaders(leader))
}

func normalizeLeaders(leader []int) []int {
	out := make([]int, len(leader))
	for i := range leader {
		out[i] = find(leader, i)
	}
	return out
}

// RegionIO describes a region's DRAM-visible traffic assuming no
// cross-region on-chip residency (the pre-FAST-fusion state).
type RegionIO struct {
	// InputBytes is the activation bytes read from outside the region
	// (deduplicated by producer).
	InputBytes int64
	// OutputBytes is the bytes of tensors produced in-region and consumed
	// outside it (or being graph results).
	OutputBytes int64
	// WeightBytes is the parameter bytes the region reads.
	WeightBytes int64
	// KVBytes is the persistent key/value-cache bytes the region reads
	// (KKVCache sources, deduplicated). Kept separate from InputBytes
	// because the tensor persists across decode steps: the residency
	// solver may hold it on chip, which no ordinary activation input
	// allows.
	KVBytes int64
	// FLOPs is the region's compute.
	FLOPs int64
	// MatrixFLOPs is the systolic-array share of FLOPs.
	MatrixFLOPs int64
}

// IO computes RegionIO for region r under partition p.
func (p *Partition) IO(r *Region) RegionIO {
	var io RegionIO
	seen := make(map[int]bool)
	seenW := make(map[string]bool)
	consumers := p.Consumers()
	for _, op := range r.Ops {
		io.FLOPs += FLOPs(op)
		if op.Kind.IsMatrix() {
			io.MatrixFLOPs += FLOPs(op)
		}
		if op.HasWeights() {
			if k := op.SharedWeightKey(); !seenW[k] {
				seenW[k] = true
				io.WeightBytes += op.WeightBytes()
			}
		}
		for _, in := range op.Inputs {
			if p.regionOf[in.ID] != r.ID && !seen[in.ID] {
				seen[in.ID] = true
				if in.Kind == KConst {
					continue // already counted as weights by the const op
				}
				if in.Kind == KKVCache {
					io.KVBytes += in.Output.Bytes()
					continue
				}
				io.InputBytes += in.Output.Bytes()
			}
		}
		// Does anything outside the region consume this op?
		external := false
		for _, cid := range consumers[op.ID] {
			if p.regionOf[cid] != r.ID {
				external = true
				break
			}
		}
		if external {
			io.OutputBytes += op.Output.Bytes()
		}
	}
	return io
}

// PrimaryEdge finds region r's largest external activation input: the
// producing region, the tensor's bytes, and whether r is that tensor's
// only external consumer (so the producer's DRAM write is avoidable).
// This is the per-region edge candidate FAST fusion decides over; it
// depends only on the partition, never on the datapath.
func (p *Partition) PrimaryEdge(r *Region) (producer int, bytes int64, sole bool) {
	producer = -1
	var bestOp *Op
	for _, op := range r.Ops {
		for _, in := range op.Inputs {
			pr := p.RegionOf(in.ID)
			if pr >= 0 && pr != r.ID && in.Output.Bytes() > bytes {
				producer, bytes, bestOp = pr, in.Output.Bytes(), in
			}
		}
	}
	if bestOp == nil {
		return -1, 0, false
	}
	sole = true
	for _, cid := range p.Consumers()[bestOp.ID] {
		cr := p.RegionOf(cid)
		if cr != producer && cr != r.ID {
			sole = false
			break
		}
	}
	return producer, bytes, sole
}

// OpIntensity returns the graph's operational intensity (FLOPs per DRAM
// byte) under this partition, assuming every region boundary tensor and
// all weights are DRAM traffic — the paper's Figure 3 metric.
func (p *Partition) OpIntensity() float64 {
	var flops, bytes int64
	for _, r := range p.Regions {
		io := p.IO(r)
		flops += io.FLOPs
		bytes += io.InputBytes + io.OutputBytes + io.WeightBytes + io.KVBytes
	}
	if bytes == 0 {
		return 0
	}
	return float64(flops) / float64(bytes)
}

// IdealOpIntensity is the Figure 3 "ideal" bound: all weights pinned
// on-chip, so only the graph input and final output touch DRAM.
func IdealOpIntensity(g *Graph) float64 {
	s := Stats(g)
	bytes := s.InputBytes + s.OutputBytes
	if bytes == 0 {
		return 0
	}
	return float64(s.FLOPs) / float64(bytes)
}
