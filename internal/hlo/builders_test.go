package hlo

import (
	"strings"
	"testing"

	"fast/internal/tensor"
)

func TestBuilderShapes(t *testing.T) {
	g := NewGraph("builders")
	x := g.Input("x", tensor.NewShape(tensor.BF16, 2, 8, 8, 16))
	y := g.Input("y", tensor.NewShape(tensor.BF16, 2, 8, 8, 16))

	mul := g.Mul("mul", x, y)
	if !mul.Output.Equal(x.Output) || mul.VecOpsPerElem != 1 {
		t.Errorf("mul: %s", mul)
	}

	sm := g.Softmax("sm", x)
	if sm.Kind != KSoftmax || !sm.Output.Equal(x.Output) {
		t.Errorf("softmax: %s", sm)
	}

	ln := g.LayerNorm("ln", x)
	if ln.Kind != KLayerNorm {
		t.Errorf("layernorm kind: %s", ln.Kind)
	}
	if ln.WeightBytes() != 2*16*2 {
		t.Errorf("layernorm params = %d, want gamma+beta", ln.WeightBytes())
	}

	pool := g.Pool("pool", x, 2, 2, true)
	if pool.Output.Dim(1) != 4 || pool.Output.Dim(2) != 4 || pool.Output.Dim(3) != 16 {
		t.Errorf("pool: %s", pool.Output)
	}
	if pool.VecOpsPerElem != 4 {
		t.Errorf("pool cost = %f, want window size 4", pool.VecOpsPerElem)
	}

	gp := g.GlobalPool("gp", x)
	if gp.Output.Dim(1) != 1 || gp.Output.Dim(2) != 1 || gp.Output.Dim(3) != 16 {
		t.Errorf("global pool: %s", gp.Output)
	}
	if gp.VecOpsPerElem != 64 {
		t.Errorf("global pool cost = %f, want H·W = 64", gp.VecOpsPerElem)
	}

	re := g.Reshape("re", x, tensor.NewShape(tensor.BF16, 2, 64, 16))
	if FLOPs(re) != 0 {
		t.Error("reshape must be free")
	}

	tr := g.Transpose("tr", x, tensor.NewShape(tensor.BF16, 2, 16, 8, 8))
	if tr.Kind != KTranspose || FLOPs(tr) != tr.Output.Elems() {
		t.Errorf("transpose cost = %d", FLOPs(tr))
	}

	cc := g.Concat("cc", 3, x, y)
	if cc.Output.Dim(3) != 32 {
		t.Errorf("concat channels = %d, want 32", cc.Output.Dim(3))
	}

	seq := g.Reshape("seq", x, tensor.NewShape(tensor.BF16, 2, 64, 16))
	step := g.SliceStep("step", seq, 3)
	if step.Output.Rank() != 2 || step.Output.Dim(0) != 2 || step.Output.Dim(1) != 16 {
		t.Errorf("slice step: %s", step.Output)
	}

	ids := g.Input("ids", tensor.NewShape(tensor.INT8, 2, 10, 1))
	emb := g.Gather("emb", ids, 1000, 64)
	if emb.Output.Dim(2) != 64 || emb.Output.Type != tensor.BF16 {
		t.Errorf("gather: %s", emb.Output)
	}
	if emb.WeightBytes() != 1000*64*2 {
		t.Errorf("gather table bytes = %d", emb.WeightBytes())
	}

	c := g.Const("table", tensor.NewShape(tensor.BF16, 100))
	if !c.HasWeights() || c.WeightBytes() != 200 {
		t.Errorf("const weights = %d", c.WeightBytes())
	}

	out := g.Output(emb)
	if len(g.Outputs()) != 1 || g.Outputs()[0] != out {
		t.Error("outputs not tracked")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	g := NewGraph("p")
	x := g.Input("x", tensor.NewShape(tensor.BF16, 2, 8, 8, 16))
	expectPanic("bad reshape", func() {
		g.Reshape("r", x, tensor.NewShape(tensor.BF16, 3, 3))
	})
	expectPanic("bad transpose", func() {
		g.Transpose("t", x, tensor.NewShape(tensor.BF16, 7))
	})
	expectPanic("slice on rank-4", func() {
		g.SliceStep("s", x, 0)
	})
	expectPanic("slice out of range", func() {
		seq := g.Reshape("seq", x, tensor.NewShape(tensor.BF16, 2, 64, 16))
		g.SliceStep("s", seq, 64)
	})
	expectPanic("mismatched add", func() {
		y := g.Input("y", tensor.NewShape(tensor.BF16, 2, 8, 8, 32))
		g.Add("a", x, y)
	})
	expectPanic("bad einsum lhs", func() {
		a := g.Input("a", tensor.NewShape(tensor.BF16, 2, 4, 8))
		b := g.Input("b", tensor.NewShape(tensor.BF16, 2, 8, 4))
		g.Einsum("e", a, b, 2, 5, 4, 8)
	})
	expectPanic("invalid input shape", func() {
		g.Input("bad", tensor.NewShape(tensor.BF16, 0, 2))
	})
}

func TestOpString(t *testing.T) {
	g := NewGraph("s")
	x := g.Input("x", tensor.NewShape(tensor.BF16, 1, 4))
	s := x.String()
	for _, want := range []string{"%0", "input", "bf16[1,4]", `"x"`} {
		if !strings.Contains(s, want) {
			t.Errorf("op string %q missing %q", s, want)
		}
	}
}

func TestSharedWeightKeyDefaults(t *testing.T) {
	g := NewGraph("k")
	x := g.Input("x", tensor.NewShape(tensor.BF16, 1, 8))
	a := g.MatMul("a", x, 8)
	b := g.MatMul("b", x, 8)
	if a.SharedWeightKey() == b.SharedWeightKey() {
		t.Error("distinct ops must default to distinct weight keys")
	}
	a.WeightKey = "shared"
	b.WeightKey = "shared"
	if WeightBytes(g) != a.WeightBytes() {
		t.Error("shared key must dedup footprint")
	}
}

func TestValidateCatchesForwardReference(t *testing.T) {
	g := NewGraph("fw")
	x := g.Input("x", tensor.NewShape(tensor.BF16, 1, 4))
	y := g.Activation("y", x, 1)
	// Corrupt: make x depend on y.
	x.Inputs = []*Op{y}
	if err := g.Validate(); err == nil {
		t.Error("forward reference must fail validation")
	}
}

func TestValidateCatchesMissingEinsum(t *testing.T) {
	g := NewGraph("me")
	x := g.Input("x", tensor.NewShape(tensor.BF16, 4, 8))
	m := g.MatMul("m", x, 8)
	m.Einsum = nil
	if err := g.Validate(); err == nil {
		t.Error("matrix op without einsum params must fail validation")
	}
}
