package hlo

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT format. When part is
// non-nil, ops are clustered by fusion region, which makes the
// XLA-partition structure (and therefore the FAST-fusion decision
// surface) visible. Free ops are drawn dashed.
func WriteDOT(w io.Writer, g *Graph, part *Partition) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n", g.Name)

	nodeAttrs := func(op *Op) string {
		label := fmt.Sprintf("%s\\n%s %s", op.Name, op.Kind, op.Output)
		style := ""
		switch {
		case op.Kind.IsMatrix():
			style = ", style=filled, fillcolor=lightblue"
		case op.Kind.IsFree():
			style = ", style=dashed"
		}
		return fmt.Sprintf("[label=%q%s]", label, style)
	}

	if part != nil {
		byRegion := map[int][]*Op{}
		var loose []*Op
		for _, op := range g.Ops {
			if r := part.RegionOf(op.ID); r >= 0 {
				byRegion[r] = append(byRegion[r], op)
			} else {
				loose = append(loose, op)
			}
		}
		for _, r := range part.Regions {
			fmt.Fprintf(&b, "  subgraph cluster_r%d {\n    label=\"region %d\";\n    color=gray;\n", r.ID, r.ID)
			for _, op := range byRegion[r.ID] {
				fmt.Fprintf(&b, "    n%d %s;\n", op.ID, nodeAttrs(op))
			}
			fmt.Fprintf(&b, "  }\n")
		}
		for _, op := range loose {
			fmt.Fprintf(&b, "  n%d %s;\n", op.ID, nodeAttrs(op))
		}
	} else {
		for _, op := range g.Ops {
			fmt.Fprintf(&b, "  n%d %s;\n", op.ID, nodeAttrs(op))
		}
	}
	for _, op := range g.Ops {
		for _, in := range op.Inputs {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", in.ID, op.ID)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
