package hlo

import (
	"fmt"

	"fast/internal/tensor"
)

// Graph is a DAG of Ops in topological (construction) order. Builder
// methods panic on shape errors: model builders are compile-time-like
// code, so a malformed model is a programming bug, not a runtime
// condition (the same contract XLA's graph builders use).
type Graph struct {
	Name string
	Ops  []*Op

	outputs []*Op
	block   string
}

// InBlock sets the block label applied to subsequently added ops; it
// returns the graph for chaining. Model builders call this at each layer
// boundary.
func (g *Graph) InBlock(name string) *Graph {
	g.block = name
	return g
}

// NewGraph returns an empty graph.
func NewGraph(name string) *Graph { return &Graph{Name: name} }

func (g *Graph) add(op *Op) *Op {
	op.ID = len(g.Ops)
	op.Block = g.block
	g.Ops = append(g.Ops, op)
	return op
}

func (g *Graph) check(cond bool, format string, args ...any) {
	if !cond {
		panic(fmt.Sprintf("hlo(%s): %s", g.Name, fmt.Sprintf(format, args...)))
	}
}

// Input adds a graph parameter.
func (g *Graph) Input(name string, shape tensor.Shape) *Op {
	g.check(shape.Valid(), "input %s has invalid shape %s", name, shape)
	return g.add(&Op{Name: name, Kind: KInput, Output: shape})
}

// Const adds a constant tensor (counted as weights: it must be fetched
// from DRAM like any parameter).
func (g *Graph) Const(name string, shape tensor.Shape) *Op {
	return g.add(&Op{Name: name, Kind: KConst, Output: shape, Weights: shape})
}

// Output marks op as a graph result and returns the marker op.
func (g *Graph) Output(op *Op) *Op {
	out := g.add(&Op{Name: op.Name + ".out", Kind: KOutput, Inputs: []*Op{op}, Output: op.Output})
	g.outputs = append(g.outputs, out)
	return out
}

// Outputs returns the graph result markers.
func (g *Graph) Outputs() []*Op { return g.outputs }

// KVCache adds a persistent key/value-cache source read by a decode
// step. Like Input it carries no compute or weights, but its bytes are
// a distinct traffic class: the tensor survives across decode steps, so
// the residency solver may hold it in global memory instead of
// re-streaming it from DRAM every step. Shape convention is
// [B·heads, ...] — dim 0 carries the batch factor so WithBatch scales
// the cache with the activations.
func (g *Graph) KVCache(name string, shape tensor.Shape) *Op {
	g.check(shape.Valid(), "kv-cache %s has invalid shape %s", name, shape)
	return g.add(&Op{Name: name, Kind: KKVCache, Output: shape})
}

func convOut(in, k, stride int64, same bool) int64 {
	if same {
		return tensor.CeilDiv(in, stride)
	}
	return (in-k)/stride + 1
}

// Conv2D adds a standard convolution: x is NHWC, of is the output feature
// count. Bias is folded into the weight footprint.
func (g *Graph) Conv2D(name string, x *Op, of, kh, kw, stride int64, same bool) *Op {
	g.check(x.Output.Rank() == 4, "conv2d %s input must be rank 4, got %s", name, x.Output)
	b, h, w, ifc := x.Output.Dim(0), x.Output.Dim(1), x.Output.Dim(2), x.Output.Dim(3)
	oh := convOut(h, kh, stride, same)
	ow := convOut(w, kw, stride, same)
	g.check(oh > 0 && ow > 0, "conv2d %s output collapsed: %s k=%dx%d s=%d", name, x.Output, kh, kw, stride)
	// Bias is folded into the parameter footprint.
	wshape := tensor.NewShape(x.Output.Type, kh*kw*ifc*of+of)
	wshape.Name = name + ".w"
	return g.add(&Op{
		Name: name, Kind: KConv2D, Inputs: []*Op{x},
		Output:  tensor.NewShape(x.Output.Type, b, oh, ow, of),
		Weights: wshape,
		Conv:    &ConvParams{KH: kh, KW: kw, StrideH: stride, StrideW: stride, SamePad: same},
	})
}

// DepthwiseConv2D adds a depthwise convolution (channel multiplier 1).
func (g *Graph) DepthwiseConv2D(name string, x *Op, kh, kw, stride int64, same bool) *Op {
	g.check(x.Output.Rank() == 4, "dwconv %s input must be rank 4, got %s", name, x.Output)
	b, h, w, c := x.Output.Dim(0), x.Output.Dim(1), x.Output.Dim(2), x.Output.Dim(3)
	oh := convOut(h, kh, stride, same)
	ow := convOut(w, kw, stride, same)
	g.check(oh > 0 && ow > 0, "dwconv %s output collapsed", name)
	wshape := tensor.NewShape(x.Output.Type, kh*kw*c+c)
	wshape.Name = name + ".w"
	return g.add(&Op{
		Name: name, Kind: KDepthwiseConv2D, Inputs: []*Op{x},
		Output:  tensor.NewShape(x.Output.Type, b, oh, ow, c),
		Weights: wshape,
		Conv:    &ConvParams{KH: kh, KW: kw, StrideH: stride, StrideW: stride, SamePad: same},
	})
}

// MatMul adds x·W with W a learned [k,n] weight. x may be [..., k]; the
// leading dims form the effective row count.
func (g *Graph) MatMul(name string, x *Op, n int64) *Op {
	r := x.Output.Rank()
	g.check(r >= 1, "matmul %s needs rank>=1 input", name)
	k := x.Output.Dim(r - 1)
	m := x.Output.Elems() / k
	out := x.Output.Clone()
	out.Dims[r-1] = n
	wshape := tensor.NewShape(x.Output.Type, k*n+n)
	wshape.Name = name + ".w"
	return g.add(&Op{
		Name: name, Kind: KMatMul, Inputs: []*Op{x},
		Output:  out,
		Weights: wshape,
		Einsum:  &EinsumParams{Batch: 1, M: m, N: n, K: k},
	})
}

// Einsum adds an activation×activation batched matmul
// C[batch,m,n] = A[batch,m,k] · B[batch,k,n]. Used for attention scores
// and attention-weighted values.
func (g *Graph) Einsum(name string, a, b *Op, batch, m, n, k int64) *Op {
	g.check(a.Output.Elems() == batch*m*k, "einsum %s lhs elems %d != %d", name, a.Output.Elems(), batch*m*k)
	g.check(b.Output.Elems() == batch*k*n, "einsum %s rhs elems %d != %d", name, b.Output.Elems(), batch*k*n)
	return g.add(&Op{
		Name: name, Kind: KEinsum, Inputs: []*Op{a, b},
		Output: tensor.NewShape(a.Output.Type, batch, m, n),
		Einsum: &EinsumParams{Batch: batch, M: m, N: n, K: k, ActAct: true},
	})
}

func (g *Graph) elementwise(name string, kind Kind, opsPerElem float64, ins ...*Op) *Op {
	g.check(len(ins) >= 1, "%s %s needs inputs", kind, name)
	for _, in := range ins[1:] {
		// Operands must match elementwise or be broadcastable: same
		// trailing (feature) dimension and an element count dividing the
		// primary operand's (e.g. a [B,1,1,C] SE gate over [B,H,W,C]).
		sameElems := in.Output.Elems() == ins[0].Output.Elems()
		broadcast := ins[0].Output.Elems()%in.Output.Elems() == 0 &&
			in.Output.Dim(in.Output.Rank()-1) == ins[0].Output.Dim(ins[0].Output.Rank()-1)
		g.check(sameElems || broadcast,
			"%s %s operand mismatch %s vs %s", kind, name, ins[0].Output, in.Output)
	}
	return g.add(&Op{
		Name: name, Kind: kind, Inputs: ins,
		Output:        ins[0].Output.Clone(),
		VecOpsPerElem: opsPerElem,
	})
}

// Add adds elementwise addition (residual/bias).
func (g *Graph) Add(name string, a, b *Op) *Op { return g.elementwise(name, KAdd, 1, a, b) }

// Mul adds elementwise multiplication.
func (g *Graph) Mul(name string, a, b *Op) *Op { return g.elementwise(name, KMul, 1, a, b) }

// Activation adds a pointwise nonlinearity; opsPerElem approximates its
// VPU cost (relu=1, sigmoid≈3, swish≈4, gelu≈6).
func (g *Graph) Activation(name string, x *Op, opsPerElem float64) *Op {
	return g.elementwise(name, KActivation, opsPerElem, x)
}

// BatchNorm adds inference-mode batch normalization: a single fused
// scale-and-shift FMA per element (the moments are folded at compile
// time); the per-channel scale/shift parameters are counted as weights.
func (g *Graph) BatchNorm(name string, x *Op) *Op {
	c := x.Output.Dim(x.Output.Rank() - 1)
	op := g.elementwise(name, KBatchNorm, 1, x)
	op.Weights = tensor.NewShape(x.Output.Type, 2*c)
	op.Weights.Name = name + ".scale_shift"
	return op
}

// LayerNorm adds layer normalization over the trailing dimension.
func (g *Graph) LayerNorm(name string, x *Op) *Op {
	c := x.Output.Dim(x.Output.Rank() - 1)
	op := g.elementwise(name, KLayerNorm, 6, x)
	op.Kind = KLayerNorm
	op.Weights = tensor.NewShape(x.Output.Type, 2*c)
	op.Weights.Name = name + ".gamma_beta"
	return op
}

// Softmax adds a row softmax over the trailing dimension.
func (g *Graph) Softmax(name string, x *Op) *Op {
	// ~5 vector ops per element for the 3-pass algorithm (max, sub, exp,
	// sum, div); the VPU model refines this per algorithm variant.
	return g.elementwise(name, KSoftmax, 5, x)
}

// Pool adds spatial pooling with the given window and stride.
func (g *Graph) Pool(name string, x *Op, k, stride int64, same bool) *Op {
	b, h, w, c := x.Output.Dim(0), x.Output.Dim(1), x.Output.Dim(2), x.Output.Dim(3)
	oh := convOut(h, k, stride, same)
	ow := convOut(w, k, stride, same)
	return g.add(&Op{
		Name: name, Kind: KPool, Inputs: []*Op{x},
		Output:        tensor.NewShape(x.Output.Type, b, oh, ow, c),
		Conv:          &ConvParams{KH: k, KW: k, StrideH: stride, StrideW: stride, SamePad: same},
		VecOpsPerElem: float64(k * k),
	})
}

// GlobalPool adds global average pooling to [B,1,1,C].
func (g *Graph) GlobalPool(name string, x *Op) *Op {
	b, h, w, c := x.Output.Dim(0), x.Output.Dim(1), x.Output.Dim(2), x.Output.Dim(3)
	return g.add(&Op{
		Name: name, Kind: KGlobalPool, Inputs: []*Op{x},
		Output:        tensor.NewShape(x.Output.Type, b, 1, 1, c),
		VecOpsPerElem: float64(h * w),
	})
}

// Reshape adds a free layout change to the given shape (element counts
// must match).
func (g *Graph) Reshape(name string, x *Op, shape tensor.Shape) *Op {
	g.check(shape.Elems() == x.Output.Elems(), "reshape %s elems %d != %d", name, shape.Elems(), x.Output.Elems())
	return g.add(&Op{Name: name, Kind: KReshape, Inputs: []*Op{x}, Output: shape})
}

// Transpose adds a data movement op producing the given shape.
func (g *Graph) Transpose(name string, x *Op, shape tensor.Shape) *Op {
	g.check(shape.Elems() == x.Output.Elems(), "transpose %s elems mismatch", name)
	return g.add(&Op{Name: name, Kind: KTranspose, Inputs: []*Op{x}, Output: shape, VecOpsPerElem: 1})
}

// Concat concatenates inputs along axis (shapes must agree elsewhere).
func (g *Graph) Concat(name string, axis int, ins ...*Op) *Op {
	g.check(len(ins) >= 2, "concat %s needs >=2 inputs", name)
	out := ins[0].Output.Clone()
	var total int64
	for _, in := range ins {
		total += in.Output.Dim(axis)
	}
	out.Dims[axis] = total
	return g.add(&Op{Name: name, Kind: KConcat, Inputs: ins, Output: out, VecOpsPerElem: 1})
}

// SliceStep extracts time step t from a [B, T, F] sequence, producing
// [B, F]. Costed as a copy of the slice.
func (g *Graph) SliceStep(name string, x *Op, t int64) *Op {
	g.check(x.Output.Rank() == 3, "slice %s input must be rank 3, got %s", name, x.Output)
	g.check(t >= 0 && t < x.Output.Dim(1), "slice %s step %d out of range", name, t)
	return g.add(&Op{
		Name: name, Kind: KSlice, Inputs: []*Op{x},
		Output:        tensor.NewShape(x.Output.Type, x.Output.Dim(0), x.Output.Dim(2)),
		VecOpsPerElem: 1,
	})
}

// Gather adds an embedding lookup: ids is [..., n] integer indices into a
// learned [vocab, hidden] table; the output is bf16 [..., hidden] (the
// trailing ids dim is consumed). The table is counted as weights.
func (g *Graph) Gather(name string, ids *Op, vocab, hidden int64) *Op {
	out := ids.Output.Clone()
	out.Type = tensor.BF16
	out.Dims[len(out.Dims)-1] = hidden
	wshape := tensor.NewShape(tensor.BF16, vocab*hidden)
	wshape.Name = name + ".table"
	return g.add(&Op{
		Name: name, Kind: KGather, Inputs: []*Op{ids},
		Output: out, Weights: wshape, VecOpsPerElem: 1,
	})
}

// LSTMCell adds a fused LSTM step: input [B, in], hidden size h. The gate
// matmuls dominate; the cost model decomposes it into a [B, in+h]×[in+h,
// 4h] matmul plus pointwise gate math.
func (g *Graph) LSTMCell(name string, x *Op, hidden int64) *Op {
	b := x.Output.Dim(0)
	in := x.Output.Dim(x.Output.Rank() - 1)
	wshape := tensor.NewShape(x.Output.Type, (in+hidden)*4*hidden+4*hidden)
	wshape.Name = name + ".w"
	return g.add(&Op{
		Name: name, Kind: KLSTMCell, Inputs: []*Op{x},
		Output:        tensor.NewShape(x.Output.Type, b, hidden),
		Weights:       wshape,
		Einsum:        &EinsumParams{Batch: 1, M: b, N: 4 * hidden, K: in + hidden},
		VecOpsPerElem: 24, // 4 gates: activation (~4 ops) + combine math
	})
}

// Validate checks structural invariants: IDs match positions, inputs
// precede users, shapes are valid.
func (g *Graph) Validate() error {
	for i, op := range g.Ops {
		if op.ID != i {
			return fmt.Errorf("hlo(%s): op %q has ID %d at position %d", g.Name, op.Name, op.ID, i)
		}
		if !op.Output.Valid() {
			return fmt.Errorf("hlo(%s): op %q has invalid output %s", g.Name, op.Name, op.Output)
		}
		for _, in := range op.Inputs {
			if in.ID >= i {
				return fmt.Errorf("hlo(%s): op %q uses input %q that does not precede it", g.Name, op.Name, in.Name)
			}
		}
		if op.Kind.IsMatrix() && op.Kind != KConv2D && op.Kind != KDepthwiseConv2D && op.Einsum == nil {
			return fmt.Errorf("hlo(%s): matrix op %q missing einsum params", g.Name, op.Name)
		}
	}
	return nil
}

// Consumers returns, for each op ID, the IDs of ops that read its output.
func (g *Graph) Consumers() [][]int {
	out := make([][]int, len(g.Ops))
	for _, op := range g.Ops {
		for _, in := range op.Inputs {
			out[in.ID] = append(out[in.ID], op.ID)
		}
	}
	return out
}

// WithBatch returns a structural copy of the graph with every activation
// batch dimension scaled from the graph's native batch (dim 0 of the first
// input) to b. Weight shapes are unchanged.
func (g *Graph) WithBatch(b int64) *Graph {
	if len(g.Ops) == 0 {
		return g
	}
	native := int64(1)
	for _, op := range g.Ops {
		if op.Kind == KInput {
			native = op.Output.Dim(0)
			break
		}
	}
	if native == b {
		return g
	}
	out := &Graph{Name: g.Name}
	clones := make([]*Op, len(g.Ops))
	for i, op := range g.Ops {
		c := *op
		c.Output = op.Output.Clone()
		switch {
		case op.Kind == KKVCache && op.Output.Rank() > 0 && op.Output.Dim(0)%native == 0:
			// KV caches carry dim 0 = B·heads, a multiple of the native
			// batch rather than the batch itself; scale proportionally.
			c.Output.Dims[0] = op.Output.Dim(0) / native * b
		case op.Kind != KConst && op.Output.Rank() > 0 && op.Output.Dim(0) == native:
			c.Output.Dims[0] = b
		}
		if op.Einsum != nil {
			e := *op.Einsum
			// Batched contractions scale either the contraction batch
			// (attention heads × batch) or M (token/row count).
			if e.ActAct {
				e.Batch = e.Batch / native * b
			} else {
				e.M = e.M / native * b
			}
			c.Einsum = &e
		}
		c.Inputs = make([]*Op, len(op.Inputs))
		for j, in := range op.Inputs {
			c.Inputs[j] = clones[in.ID]
		}
		clones[i] = &c
		out.Ops = append(out.Ops, &c)
		if op.Kind == KOutput {
			out.outputs = append(out.outputs, &c)
		}
	}
	return out
}

// NativeBatch returns the batch dimension of the first input op (1 if the
// graph has no inputs).
func (g *Graph) NativeBatch() int64 {
	for _, op := range g.Ops {
		if op.Kind == KInput {
			return op.Output.Dim(0)
		}
	}
	return 1
}
