// Package hlo implements an XLA-HLO-like operation graph IR.
//
// The paper's simulator consumes "unmodified XLA HLO graphs"; this package
// is the equivalent substrate. A Graph is a DAG of Ops. Each Op carries its
// output shape, optional weight (parameter) shape, and enough attributes
// for the cost models: convolution geometry, einsum contraction dims, and
// a vector-op class for everything that runs on the VPU.
//
// The package also implements the XLA-style fusion-region pass (at most
// one matrix op per region) plus the hypothetical DSConv/MBConv fusion
// templates and ideal weight pinning used in the paper's Figure 3
// operational-intensity study.
package hlo

import (
	"fmt"

	"fast/internal/tensor"
)

// Kind classifies an operation. The matrix kinds (Conv2D, DepthwiseConv2D,
// MatMul, Einsum) are scheduled on the systolic arrays by the mapper;
// everything else runs on the VPU (or is free, for layout-only ops).
type Kind int

const (
	// KInput is a graph parameter (model input activation).
	KInput Kind = iota
	// KConst is a constant tensor (e.g. position embeddings).
	KConst
	// KConv2D is a standard 2-D convolution.
	KConv2D
	// KDepthwiseConv2D is a depthwise 2-D convolution (filter depth 1).
	KDepthwiseConv2D
	// KMatMul is a dense matrix multiplication (optionally batched).
	KMatMul
	// KEinsum is a general contraction; the paper's BERT self-attention
	// activation×activation products are einsums.
	KEinsum
	// KAdd is elementwise addition (residual connections, bias add).
	KAdd
	// KMul is elementwise multiplication (gating, SE-block excite).
	KMul
	// KActivation is a pointwise nonlinearity (ReLU, swish, GELU, sigmoid,
	// tanh); the specific function only changes the per-element op count.
	KActivation
	// KSoftmax is a row softmax (3-pass numerically stable by default; the
	// two-pass variant of §5.6 is a simulator option).
	KSoftmax
	// KLayerNorm is layer normalization over the feature dimension.
	KLayerNorm
	// KBatchNorm is inference-mode batch norm (scale+shift).
	KBatchNorm
	// KPool is spatial average/max pooling.
	KPool
	// KGlobalPool is global average pooling (squeeze in SE blocks, final
	// pooling in CNNs).
	KGlobalPool
	// KReduce is a general reduction (sums, means).
	KReduce
	// KReshape is a layout-only op; free in the cost model.
	KReshape
	// KTranspose is a data-movement-only op; costed as a copy.
	KTranspose
	// KConcat concatenates along a dimension; costed as a copy.
	KConcat
	// KSlice extracts a sub-tensor; costed as a copy.
	KSlice
	// KGather is an embedding lookup.
	KGather
	// KLSTMCell is a fused LSTM cell step (OCR-Recognizer); its matrix
	// parts are accounted as matmuls by the cost model.
	KLSTMCell
	// KOutput marks a graph result.
	KOutput
	// KKVCache is a persistent attention key/value cache read by a decode
	// step. Like KInput it is a source (no compute, no weights), but its
	// bytes are neither activations nor weights: the tensor persists
	// across decode steps, so the residency solver may hold it in global
	// memory for the whole step instead of re-reading it from DRAM.
	KKVCache
)

var kindNames = map[Kind]string{
	KInput: "input", KConst: "const", KConv2D: "conv2d",
	KDepthwiseConv2D: "depthwise-conv2d", KMatMul: "matmul",
	KEinsum: "einsum", KAdd: "add", KMul: "multiply",
	KActivation: "activation", KSoftmax: "softmax", KLayerNorm: "layernorm",
	KBatchNorm: "batchnorm", KPool: "pool", KGlobalPool: "global-pool",
	KReduce: "reduce", KReshape: "reshape", KTranspose: "transpose",
	KConcat: "concat", KSlice: "slice", KGather: "gather",
	KLSTMCell: "lstm-cell", KOutput: "output", KKVCache: "kv-cache",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// IsMatrix reports whether the op is scheduled on the systolic array.
func (k Kind) IsMatrix() bool {
	switch k {
	case KConv2D, KDepthwiseConv2D, KMatMul, KEinsum, KLSTMCell:
		return true
	}
	return false
}

// IsFree reports whether the op is layout-only and costless.
func (k Kind) IsFree() bool {
	return k == KReshape || k == KInput || k == KConst || k == KOutput || k == KKVCache
}

// ConvParams carries convolution geometry. Layout is NHWC activations and
// HWIO filters.
type ConvParams struct {
	KH, KW           int64 // kernel height/width
	StrideH, StrideW int64
	// SamePad selects TensorFlow SAME padding; otherwise VALID.
	SamePad bool
}

// EinsumParams describes a contraction C[batch,m,n] = A[batch,m,k] ×
// B[batch,k,n]. BERT's QK^T and PV products and every matmul reduce to
// this triple.
type EinsumParams struct {
	Batch, M, N, K int64
	// ActAct marks an activation×activation product (both operands are
	// produced at inference time, so neither can be latched and amortized
	// across the batch like weights can — §4.3).
	ActAct bool
}

// Op is one node of the graph. Ops are created through Graph builder
// methods and are immutable afterwards.
type Op struct {
	ID   int
	Name string
	Kind Kind

	// Inputs are activation operands (producers in the graph).
	Inputs []*Op

	// Output is the result shape.
	Output tensor.Shape

	// Weights is the parameter tensor read by the op (zero-elem shape if
	// none). Bias vectors are folded into Weights for accounting.
	Weights tensor.Shape

	// Conv is set for KConv2D/KDepthwiseConv2D/KPool.
	Conv *ConvParams

	// Einsum is set for KMatMul/KEinsum (and derived for KLSTMCell).
	Einsum *EinsumParams

	// VecOpsPerElem is the per-output-element vector-op count for VPU
	// kinds; the model zoo sets it where the default is wrong (e.g.
	// swish = 4: sigmoid≈3 + multiply).
	VecOpsPerElem float64

	// Block labels the model block/layer the op belongs to (e.g.
	// "mbconv3_2"). Per-layer reports (Figures 4 and 14) and the MBConv
	// fusion template group by this label.
	Block string

	// WeightKey identifies the parameter tensor for footprint accounting.
	// Ops that share weights (e.g. an unrolled LSTM reusing one cell's
	// parameters every time step) carry the same key so the model's
	// weight footprint and weight pinning count the tensor once. Empty
	// means the op's weights are unshared.
	WeightKey string
}

// SharedWeightKey returns the op's dedup key for weight accounting: the
// explicit WeightKey if set, else a per-op unique key.
func (o *Op) SharedWeightKey() string {
	if o.WeightKey != "" {
		return o.WeightKey
	}
	return fmt.Sprintf("op%d", o.ID)
}

// HasWeights reports whether the op reads parameters.
func (o *Op) HasWeights() bool { return len(o.Weights.Dims) > 0 && o.Weights.Elems() > 0 }

// WeightBytes returns the parameter footprint in bytes.
func (o *Op) WeightBytes() int64 {
	if !o.HasWeights() {
		return 0
	}
	return o.Weights.Bytes()
}

// InputBytes returns the total activation-input footprint in bytes.
func (o *Op) InputBytes() int64 {
	var n int64
	for _, in := range o.Inputs {
		n += in.Output.Bytes()
	}
	return n
}

// OutputBytes returns the output footprint in bytes.
func (o *Op) OutputBytes() int64 { return o.Output.Bytes() }

// WorkingSetBytes is the op's working set: inputs + outputs (the paper's
// definition in §4.1; weights are tracked separately).
func (o *Op) WorkingSetBytes() int64 { return o.InputBytes() + o.OutputBytes() }

func (o *Op) String() string {
	return fmt.Sprintf("%%%d = %s %s %q", o.ID, o.Output, o.Kind, o.Name)
}
