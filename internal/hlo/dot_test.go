package hlo

import (
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g := tinyCNN()
	var b strings.Builder
	if err := WriteDOT(&b, g, nil); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "digraph") || !strings.HasSuffix(out, "}\n") {
		t.Error("not a DOT document")
	}
	// Every op appears as a node; every edge appears.
	edges := 0
	for _, op := range g.Ops {
		if !strings.Contains(out, op.Name) {
			t.Errorf("missing node for %s", op.Name)
		}
		edges += len(op.Inputs)
	}
	if got := strings.Count(out, "->"); got != edges {
		t.Errorf("edges = %d, want %d", got, edges)
	}
}

func TestWriteDOTWithPartition(t *testing.T) {
	g := tinyCNN()
	p := PartitionXLA(g)
	var b strings.Builder
	if err := WriteDOT(&b, g, p); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if got := strings.Count(out, "subgraph cluster_"); got != len(p.Regions) {
		t.Errorf("clusters = %d, want %d regions", got, len(p.Regions))
	}
	// Matrix ops are highlighted, free ops dashed.
	if !strings.Contains(out, "fillcolor=lightblue") {
		t.Error("matrix ops not highlighted")
	}
	if !strings.Contains(out, "style=dashed") {
		t.Error("free ops not dashed")
	}
}
