package core

// The remote-evaluation seam.
//
// A Study's evaluation behaviour — which Evaluation every index vector
// maps to — is fully determined by a handful of resolved values:
// workloads, objective kinds, the latency bound, the base platform, the
// budget envelope, and the simulator options (power model included).
// EvalSpec captures exactly those values in a JSON-serializable form, so
// a separate process can rebuild the *same* batch evaluator with
// BuildBatchEvaluator and return bit-identical Evaluations: float64
// round-trips exactly through encoding/json's shortest-representation
// encoding, and the evaluator itself is deterministic per index vector.
// That is the whole correctness contract of internal/dispatch — the
// dispatcher ships (spec, index vectors) out, folds result vectors back
// positionally, and the Runner's transcript cannot tell the difference.
//
// WithDispatch installs a dispatcher into one Run: after Run resolves
// its defaults and builds the in-process closures, the DispatchFunc may
// wrap the batch objective (keeping the in-process one as its fallback).
// Nothing else in the engine changes, so every determinism property of
// the Runner (ask order, tell order, memoization) is inherited as-is.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"fast/internal/arch"
	"fast/internal/models"
	"fast/internal/power"
	"fast/internal/search"
	"fast/internal/sim"
)

// EvalSpec is the wire-serializable description of one study's
// evaluation semantics: everything a remote evaluator needs to map
// index vectors to Evaluations, and nothing about the optimizer (the
// ask/tell transcript never leaves the dispatching process).
type EvalSpec struct {
	// Workloads are the canonical model names (geomean-folded).
	Workloads []string `json:"workloads"`
	// Objective names the scalar target; empty when Objectives is set.
	Objective string `json:"objective,omitempty"`
	// Objectives names the multi-objective targets, in order.
	Objectives []string `json:"objectives,omitempty"`
	// LatencyBoundSec is the optional per-batch latency bound.
	LatencyBoundSec float64 `json:"latency_bound_sec,omitempty"`
	// Base is the resolved platform configuration.
	Base *arch.Config `json:"base"`
	// Budget is the resolved constraint envelope.
	Budget power.Budget `json:"budget"`
	// SimOptions are the resolved simulator options, power model
	// included (Run sets SimOptions.PowerModel before dispatching).
	SimOptions sim.Options `json:"sim_options"`
}

// evalSpec assembles the study's EvalSpec from Run's resolved values.
func (s *Study) evalSpec(base *arch.Config, budget power.Budget, simOpts sim.Options) EvalSpec {
	sp := EvalSpec{
		Workloads:       s.Workloads,
		LatencyBoundSec: s.LatencyBoundSec,
		Base:            base,
		Budget:          budget,
		SimOptions:      simOpts,
	}
	if len(s.Objectives) > 0 {
		for _, o := range s.Objectives {
			sp.Objectives = append(sp.Objectives, o.String())
		}
	} else {
		sp.Objective = s.Objective.String()
	}
	return sp
}

// Marshal renders the spec as canonical JSON (the wire and fingerprint
// form; encoding/json field order is fixed, so equal specs render equal
// bytes).
func (sp EvalSpec) Marshal() ([]byte, error) { return json.Marshal(sp) }

// FingerprintSpec names a marshaled spec by content: remote evaluators
// cache compiled evaluators under this key, and verify it against the
// bytes they received before trusting a frame.
func FingerprintSpec(raw []byte) string {
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// BuildBatchEvaluator compiles a spec into the study's batch objective —
// the same closure Run builds in-process, from the same constructors, so
// the two cannot diverge. The returned evaluator is safe for concurrent
// use and deterministic per index vector; compiled plans go through the
// process-wide plan cache.
func BuildBatchEvaluator(sp EvalSpec) (search.BatchObjective, error) {
	if len(sp.Workloads) == 0 {
		return nil, fmt.Errorf("core: eval spec needs at least one workload")
	}
	for _, w := range sp.Workloads {
		if err := models.Validate(w); err != nil {
			return nil, err
		}
	}
	if sp.Base == nil {
		return nil, fmt.Errorf("core: eval spec needs a base platform")
	}
	st := &Study{Workloads: sp.Workloads, LatencyBoundSec: sp.LatencyBoundSec}
	if len(sp.Objectives) > 0 {
		seen := map[ObjectiveKind]bool{}
		for _, name := range sp.Objectives {
			o, err := ParseObjective(name)
			if err != nil {
				return nil, err
			}
			if seen[o] {
				return nil, fmt.Errorf("core: duplicate objective %s", o)
			}
			seen[o] = true
			st.Objectives = append(st.Objectives, o)
		}
	} else {
		o, err := ParseObjective(sp.Objective)
		if err != nil {
			return nil, err
		}
		if !o.Maximize() {
			return nil, fmt.Errorf("core: scalar studies maximize perf or perf-per-tdp; got %s", o)
		}
		st.Objective = o
	}

	simOpts := sp.SimOptions
	pm := simOpts.PowerModel
	if pm == nil {
		pm = power.Default()
		simOpts.PowerModel = pm
	}
	budget := sp.Budget
	if budget.MaxTDPW == 0 {
		budget = power.DefaultBudget(pm)
	}
	if len(st.Objectives) > 0 {
		_, batch := st.makeMultiObjectives(sp.Base, pm, budget, simOpts, simOpts.Fingerprint())
		return batch, nil
	}
	_, batch := st.makeObjectives(sp.Base, pm, budget, simOpts, simOpts.Fingerprint())
	return batch, nil
}

// DispatchFunc lets a dispatcher interpose on a Run's batch evaluation:
// it receives the Run's context, the study's resolved EvalSpec, and the
// in-process batch objective (the semantic ground truth and the
// degradation fallback) and returns the batch objective the Runner will
// call. Implementations must preserve the BatchObjective contract —
// exactly one Evaluation per index vector, positionally aligned, equal
// to what the local objective would have returned — with one carve-out:
// once ctx is done, the Runner abandons the in-flight batch untold, so
// a dispatcher that observes cancellation may return placeholder
// evaluations (still one per point) instead of finishing remote work.
// ctx carries the Run's deadline, letting dispatchers clamp per-chunk
// timeouts so a canceled or deadlined study stops burning workers.
type DispatchFunc func(ctx context.Context, spec EvalSpec, local search.BatchObjective) search.BatchObjective

// WithDispatch routes one Run's batch evaluation through f (see
// internal/dispatch for the worker-pool implementation). Dispatch is
// pure mechanism: it changes where evaluations execute, never what they
// return, so transcripts stay bit-identical to in-process runs.
func WithDispatch(f DispatchFunc) Option {
	return func(c *runConfig) { c.dispatch = f }
}
