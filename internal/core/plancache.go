package core

// The process-wide compiled-plan cache.
//
// All design-independent simulator analysis for a (workload, batch,
// options) triple is done once per process by sim.Compile and shared —
// by every trial of a study, across studies, and across tenants in a
// long-lived server — so per-trial work reduces to Plan.Evaluate. Under
// multi-tenancy the cache is shared cross-tenant state, so it is
// LRU-bounded: SetPlanCacheBudget caps it by entry count and/or by
// accounted bytes (sim.Plan.SizeBytes), eviction drops the least
// recently used plan, and PlanCacheInfo exports hit/miss/eviction
// counters for the metrics endpoint. Eviction can never change a
// result — plans recompile deterministically — it only costs the next
// requester one Compile (~100µs).

import (
	"container/list"
	"sync"

	"fast/internal/sim"
)

// planKey identifies one compiled simulation plan: a workload graph at a
// specific batch under a specific simulator-options fingerprint.
type planKey struct {
	model string
	batch int64
	fp    string
}

// PlanCacheBudget bounds the process-wide plan cache. Zero fields are
// unbounded (the default: search workloads are a handful of plans);
// servers admitting many tenants should set both.
type PlanCacheBudget struct {
	// MaxEntries caps the number of cached plans; <= 0 is unbounded.
	MaxEntries int
	// MaxBytes caps the accounted resident size (the sum of
	// sim.Plan.SizeBytes over cached plans); <= 0 is unbounded. A
	// single plan larger than the whole budget is kept anyway — a cache
	// that cannot hold the plan it was just asked for would thrash —
	// so the bound holds whenever the cache has more than one entry.
	MaxBytes int64
}

// PlanCacheStats is a point-in-time snapshot of the plan cache's
// counters, exported at /debug/vars by internal/serve.
type PlanCacheStats struct {
	// Hits and Misses count get requests that found / did not find
	// their key cached; Evictions counts plans dropped by the budget.
	Hits, Misses, Evictions uint64
	// Entries and Bytes are the current cached plan count and their
	// accounted resident size.
	Entries int
	Bytes   int64
}

// planCache is an LRU-bounded once-per-key compile cache. The global
// lock covers only map/recency bookkeeping, never a compile: each entry
// compiles at most once (sync.Once), with concurrent requesters for the
// same key waiting on that compile while other keys proceed. Plans are
// immutable, so Runner workers evaluate one shared Plan concurrently
// without synchronization, and an evicted plan stays valid for every
// caller still holding it.
type planCache struct {
	mu     sync.Mutex
	m      map[planKey]*planEntry
	lru    list.List // of *planEntry; front = most recently used
	budget PlanCacheBudget
	bytes  int64

	hits, misses, evictions uint64
}

type planEntry struct {
	key  planKey
	elem *list.Element

	once sync.Once
	p    *sim.Plan
	err  error

	// Accounting state, guarded by the cache mutex. bytes is accounted
	// once, by the creating requester, after the compile finishes;
	// evicted entries that were never accounted contribute nothing.
	bytes     int64
	accounted bool
	evicted   bool
}

// get returns the compiled plan for (name, batch, opts). fp must be
// opts.Fingerprint(), hoisted out so per-trial callers don't re-render
// it (it is constant across a study).
func (pc *planCache) get(name string, batch int64, fp string, opts sim.Options) (*sim.Plan, error) {
	key := planKey{model: name, batch: batch, fp: fp}
	pc.mu.Lock()
	if pc.m == nil {
		pc.m = map[planKey]*planEntry{}
	}
	e, ok := pc.m[key]
	created := false
	if ok {
		pc.hits++
		pc.lru.MoveToFront(e.elem)
	} else {
		pc.misses++
		e = &planEntry{key: key}
		e.elem = pc.lru.PushFront(e)
		pc.m[key] = e
		created = true
	}
	pc.mu.Unlock()

	e.once.Do(func() {
		g, err := graphs.get(name, batch)
		if err != nil {
			e.err = err
			return
		}
		e.p, e.err = sim.Compile(g, opts)
	})

	if created {
		pc.mu.Lock()
		if !e.accounted && !e.evicted {
			e.accounted = true
			if e.p != nil {
				e.bytes = e.p.SizeBytes()
			}
			pc.bytes += e.bytes
			pc.evictOverLocked(e)
		}
		pc.mu.Unlock()
	}
	return e.p, e.err
}

// evictOverLocked drops least-recently-used entries until the budget
// holds. keep, when non-nil, is never evicted (the entry just inserted:
// evicting it would make the current request thrash).
func (pc *planCache) evictOverLocked(keep *planEntry) {
	over := func() bool {
		if pc.budget.MaxEntries > 0 && pc.lru.Len() > pc.budget.MaxEntries {
			return true
		}
		if pc.budget.MaxBytes > 0 && pc.bytes > pc.budget.MaxBytes {
			return true
		}
		return false
	}
	for over() {
		el := pc.lru.Back()
		if el == nil {
			return
		}
		victim := el.Value.(*planEntry)
		if victim == keep {
			return // the newest entry alone exceeds the budget
		}
		pc.lru.Remove(el)
		delete(pc.m, victim.key)
		if victim.accounted {
			pc.bytes -= victim.bytes
		}
		victim.evicted = true
		pc.evictions++
	}
}

// setBudget installs a budget and immediately evicts down to it.
func (pc *planCache) setBudget(b PlanCacheBudget) {
	pc.mu.Lock()
	pc.budget = b
	pc.evictOverLocked(nil)
	pc.mu.Unlock()
}

// stats snapshots the cache counters.
func (pc *planCache) stats() PlanCacheStats {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return PlanCacheStats{
		Hits:      pc.hits,
		Misses:    pc.misses,
		Evictions: pc.evictions,
		Entries:   pc.lru.Len(),
		Bytes:     pc.bytes,
	}
}

// plans is the process-wide plan cache shared by Study.Run and
// EvaluateDesign.
var plans = &planCache{}

// SetPlanCacheBudget bounds the process-wide compiled-plan cache shared
// by every study and evaluation. The zero budget (the default) is
// unbounded; long-lived multi-tenant servers should bound both entries
// and bytes (fast-serve's -cache-entries/-cache-bytes flags do).
// Shrinking the budget evicts immediately.
func SetPlanCacheBudget(b PlanCacheBudget) { plans.setBudget(b) }

// PlanCacheInfo returns a snapshot of the process-wide plan cache's
// size and hit/miss/eviction counters.
func PlanCacheInfo() PlanCacheStats { return plans.stats() }
