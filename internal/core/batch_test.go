package core

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"

	"fast/internal/arch"
	"fast/internal/power"
	"fast/internal/search"
	"fast/internal/sim"
)

// TestRunnerBatchObjectiveTranscript: with a BatchObjective installed the
// Runner must reproduce the per-point transcript exactly — same history,
// same best — at any parallelism, while actually routing evaluations
// through the batch path.
func TestRunnerBatchObjectiveTranscript(t *testing.T) {
	for _, alg := range []search.Algorithm{search.AlgRandom, search.AlgLCS, search.AlgBayes} {
		run := func(batch bool, par int) (search.Result, int64) {
			var batchCalls atomic.Int64
			rn := &Runner{
				Optimizer:   search.New(alg, 5, 120),
				Objective:   smooth,
				Trials:      120,
				Parallelism: par,
			}
			if batch {
				rn.BatchObjective = func(idxs [][arch.NumParams]int) []search.Evaluation {
					batchCalls.Add(1)
					out := make([]search.Evaluation, len(idxs))
					for i, idx := range idxs {
						out[i] = smooth(idx)
					}
					return out
				}
			}
			res, err := rn.Run(context.Background())
			if err != nil {
				t.Fatalf("%s: %v", alg, err)
			}
			return res, batchCalls.Load()
		}
		serial, _ := run(false, 1)
		for _, par := range []int{1, 4} {
			batched, calls := run(true, par)
			if calls == 0 {
				t.Fatalf("%s par %d: BatchObjective never invoked", alg, par)
			}
			if len(serial.History) != len(batched.History) {
				t.Fatalf("%s par %d: history lengths %d vs %d", alg, par, len(serial.History), len(batched.History))
			}
			for i := range serial.History {
				if !serial.History[i].Equal(batched.History[i]) {
					t.Fatalf("%s par %d: trial %d differs between per-point and batched paths: %+v vs %+v",
						alg, par, i, serial.History[i], batched.History[i])
				}
			}
			if !serial.Best.Equal(batched.Best) {
				t.Errorf("%s par %d: best differs between per-point and batched paths", alg, par)
			}
		}
	}
}

// TestStudyObjectivesAgree: the per-point and batched study objectives
// must return bit-identical Evaluations for every index vector — the
// guarantee that lets Study.Run switch to the batch path without moving
// the search trajectory. Exercised over random vectors (mostly
// infeasible) and mutation chains around a known-good design (mostly
// feasible), for single- and multi-workload studies.
func TestStudyObjectivesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	space := arch.Space{}
	dims := space.Dims()
	for _, workloads := range [][]string{
		{"efficientnet-b0"},
		{"efficientnet-b0", "ocr-rpn"},
	} {
		s := &Study{
			Workloads: workloads,
			Objective: PerfPerTDP,
			Algorithm: search.AlgLCS,
			Trials:    1,
			Seed:      1,
		}
		base := DefaultPlatform()
		pm := power.Default()
		budget := power.DefaultBudget(pm)
		simOpts := sim.FASTOptions()
		simOpts.PowerModel = pm
		objective, batchObjective := s.makeObjectives(base, pm, budget, simOpts, simOpts.Fingerprint())

		var idxs [][arch.NumParams]int
		for i := 0; i < 24; i++ {
			var idx [arch.NumParams]int
			for d, card := range dims {
				idx[d] = rng.Intn(card)
			}
			idxs = append(idxs, idx)
		}
		seed := space.Encode(arch.FASTLarge())
		for i := 0; i < 24; i++ {
			d := rng.Intn(arch.NumParams)
			seed[d] = rng.Intn(dims[d])
			idxs = append(idxs, seed)
		}

		batched := batchObjective(idxs)
		if len(batched) != len(idxs) {
			t.Fatalf("%v: batch returned %d evaluations for %d points", workloads, len(batched), len(idxs))
		}
		feasible := 0
		for i, idx := range idxs {
			want := objective(idx)
			if !want.Equal(batched[i]) {
				t.Errorf("%v: point %d: per-point %+v vs batched %+v", workloads, i, want, batched[i])
			}
			if want.Feasible {
				feasible++
			}
		}
		if feasible == 0 {
			t.Errorf("%v: no feasible point in the probe set — agreement test is vacuous", workloads)
		}
	}
}
