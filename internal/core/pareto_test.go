package core

import (
	"context"
	"testing"

	"fast/internal/power"
	"fast/internal/search"
	"fast/internal/sim"
)

// TestMultiObjectiveFrontParallelismInvariance is the acceptance
// criterion for Pareto studies: same seed ⇒ same front, at any
// parallelism.
func TestMultiObjectiveFrontParallelismInvariance(t *testing.T) {
	run := func(par int) *StudyResult {
		res, err := (&Study{
			Workloads:  []string{"efficientnet-b0"},
			Objectives: []ObjectiveKind{Perf, TDP},
			Trials:     96,
			Seed:       17,
			// A tight cap exercises crowding-distance pruning, which must
			// be as parallelism-invariant as the archive itself (and keeps
			// the per-point ILP re-simulations cheap).
			FrontCap: 5,
		}).Run(context.Background(), WithParallelism(par))
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		return res
	}
	serial, parallel := run(1), run(8)
	for i := range serial.Search.History {
		if !serial.Search.History[i].Equal(parallel.Search.History[i]) {
			t.Fatalf("trial %d differs between parallelism 1 and 8", i)
		}
	}
	fs, fp := serial.Front(), parallel.Front()
	if len(fs) == 0 {
		t.Fatal("empty front")
	}
	if len(fs) != len(fp) {
		t.Fatalf("front sizes differ: %d vs %d", len(fs), len(fp))
	}
	for i := range fs {
		if fs[i].Index != fp[i].Index {
			t.Fatalf("front point %d differs: %v vs %v", i, fs[i].Index, fp[i].Index)
		}
		for k := range fs[i].Values {
			if fs[i].Values[k] != fp[i].Values[k] {
				t.Fatalf("front point %d value %d differs", i, k)
			}
		}
	}
}

// TestSingleObjectiveStudyMatchesScalar pins the degenerate case: a
// 1-element Objectives study follows the bit-identical trajectory of
// the equivalent scalar study, for every scalar algorithm.
func TestSingleObjectiveStudyMatchesScalar(t *testing.T) {
	for _, alg := range []search.Algorithm{search.AlgRandom, search.AlgLCS, search.AlgBayes} {
		scalar, err := (&Study{
			Workloads: []string{"efficientnet-b0"},
			Objective: PerfPerTDP,
			Algorithm: alg,
			Trials:    48,
			Seed:      5,
		}).Run(context.Background())
		if err != nil {
			t.Fatalf("%s scalar: %v", alg, err)
		}
		multi, err := (&Study{
			Workloads:  []string{"efficientnet-b0"},
			Objectives: []ObjectiveKind{PerfPerTDP},
			Algorithm:  alg,
			Trials:     48,
			Seed:       5,
		}).Run(context.Background())
		if err != nil {
			t.Fatalf("%s multi: %v", alg, err)
		}
		if len(scalar.Search.History) != len(multi.Search.History) {
			t.Fatalf("%s: history lengths differ: %d vs %d", alg,
				len(scalar.Search.History), len(multi.Search.History))
		}
		for i := range scalar.Search.History {
			a, b := scalar.Search.History[i], multi.Search.History[i]
			if a.Index != b.Index || a.Value != b.Value || a.Feasible != b.Feasible {
				t.Fatalf("%s: trial %d diverges: %+v vs %+v", alg, i, a, b)
			}
		}
		if scalar.BestValue != multi.BestValue {
			t.Errorf("%s: best value differs: %v vs %v", alg, scalar.BestValue, multi.BestValue)
		}
		if scalar.Best != nil && multi.Best != nil && *scalar.Best != *multi.Best {
			// Name differs by construction; compare the datapath.
			a, b := *scalar.Best, *multi.Best
			a.Name, b.Name = "", ""
			if a != b {
				t.Errorf("%s: best design differs", alg)
			}
		}
	}
}

// TestDuplicateObjectivesRejected: a repeated objective would
// double-weight itself in dominance and collapse in keyed outputs, so
// the study refuses it up front.
func TestDuplicateObjectivesRejected(t *testing.T) {
	_, err := (&Study{
		Workloads:  []string{"efficientnet-b0"},
		Objectives: []ObjectiveKind{Perf, TDP, Perf},
		Trials:     5,
	}).Run(context.Background())
	if err == nil {
		t.Fatal("duplicate objectives must error")
	}
}

// TestMultiObjectiveSharesEvaluations is the cost acceptance criterion:
// a 3-objective study performs at most 1.1× the plan evaluations of a
// 1-objective study with the same trial budget. AlgRandom proposes the
// identical design sequence regardless of objective count, so the two
// runs differ only in how each simulation is scored.
func TestMultiObjectiveSharesEvaluations(t *testing.T) {
	run := func(objs []ObjectiveKind) int64 {
		before := sim.EvalCount()
		_, err := (&Study{
			Workloads:  []string{"efficientnet-b0"},
			Objectives: objs,
			Algorithm:  search.AlgRandom,
			Trials:     400,
			Seed:       23,
		}).Run(context.Background(), WithParallelism(2))
		if err != nil {
			t.Fatal(err)
		}
		return sim.EvalCount() - before
	}
	one := run([]ObjectiveKind{PerfPerTDP})
	three := run([]ObjectiveKind{PerfPerTDP, TDP, Area})
	if one == 0 {
		t.Fatal("counter recorded no evaluations")
	}
	if float64(three) > 1.1*float64(one) {
		t.Errorf("3-objective study cost %d evaluations vs %d for 1 objective (> 1.1×)", three, one)
	}
}

// TestFrontShape checks the front's semantic contract: mutually
// non-dominated points, budget compliance, per-point workload results,
// and raw-unit values (TDP/area positive, not the negated search form).
func TestFrontShape(t *testing.T) {
	pm := power.Default()
	budget := power.DefaultBudget(pm)
	res, err := (&Study{
		Workloads:  []string{"efficientnet-b0"},
		Objectives: []ObjectiveKind{PerfPerTDP, TDP, Area},
		Trials:     128,
		Seed:       4,
		FrontCap:   6,
	}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	front := res.Front()
	if len(front) == 0 {
		t.Fatal("empty front")
	}
	if res.Best == nil {
		t.Fatal("multi-objective study must still report a primary-objective best")
	}
	for i, p := range front {
		if len(p.Values) != 3 {
			t.Fatalf("point %d has %d values", i, len(p.Values))
		}
		if p.Values[1] <= 0 || p.Values[2] <= 0 {
			t.Errorf("point %d: TDP/area must be raw positive units: %v", i, p.Values)
		}
		if !budget.Within(pm, p.Design) {
			t.Errorf("point %d violates the budget", i)
		}
		if len(p.PerWorkload) != 1 || p.PerWorkload[0].Result.ScheduleFailed {
			t.Errorf("point %d lacks a final workload re-simulation", i)
		}
		// Mutual non-domination in maximize orientation.
		for j, q := range front {
			if i == j {
				continue
			}
			a := []float64{p.Values[0], -p.Values[1], -p.Values[2]}
			b := []float64{q.Values[0], -q.Values[1], -q.Values[2]}
			if search.Dominates(a, b) && front[j].Index == q.Index {
				// q is dominated by p — the front is not a front.
				t.Errorf("front point %d dominates front point %d", i, j)
			}
		}
	}
	// Presentation order: descending primary objective.
	for i := 1; i < len(front); i++ {
		if front[i].Values[0] > front[i-1].Values[0] {
			t.Errorf("front not sorted by primary objective at %d", i)
		}
	}
}

// TestWithBudgetConstrainsFront: halving the envelope keeps every front
// point inside the tighter budget without touching the Study definition.
func TestWithBudgetConstrainsFront(t *testing.T) {
	pm := power.Default()
	full := power.DefaultBudget(pm)
	tight := power.Budget{MaxTDPW: full.MaxTDPW / 2, MaxAreaMM2: full.MaxAreaMM2 / 2}
	st := &Study{
		Workloads:  []string{"efficientnet-b0"},
		Objectives: []ObjectiveKind{Perf, Area},
		Trials:     96,
		Seed:       8,
		FrontCap:   4,
	}
	res, err := st.Run(context.Background(), WithBudget(tight))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front()) == 0 {
		t.Fatal("no feasible design under the tight budget")
	}
	for i, p := range res.Front() {
		if !tight.Within(pm, p.Design) {
			t.Errorf("front point %d violates the WithBudget envelope", i)
		}
	}
}
