package core

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"fast/internal/arch"
	"fast/internal/search"
)

// smooth is a cheap synthetic objective with its optimum at the center
// of every dimension and an infeasible slab on the first coordinate.
func smooth(idx [arch.NumParams]int) search.Evaluation {
	dims := arch.Space{}.Dims()
	if idx[0] == dims[0]-1 {
		return search.Evaluation{}
	}
	v := 0.0
	for d, card := range dims {
		x := float64(idx[d]) / float64(card-1)
		v -= (x - 0.5) * (x - 0.5)
	}
	return search.Evaluation{Value: 100 + v, Feasible: true}
}

// TestRunnerParallelismInvariance is the engine's core guarantee: for a
// fixed seed the full trial history — not just the best — is identical
// at parallelism 1 and 4.
func TestRunnerParallelismInvariance(t *testing.T) {
	for _, alg := range []search.Algorithm{search.AlgRandom, search.AlgLCS, search.AlgBayes} {
		run := func(par int) search.Result {
			rn := &Runner{
				Optimizer:   search.New(alg, 11, 200),
				Objective:   smooth,
				Trials:      200,
				Parallelism: par,
			}
			res, err := rn.Run(context.Background())
			if err != nil {
				t.Fatalf("%s: %v", alg, err)
			}
			return res
		}
		serial, parallel := run(1), run(4)
		if len(serial.History) != 200 || len(parallel.History) != 200 {
			t.Fatalf("%s: history lengths %d / %d", alg, len(serial.History), len(parallel.History))
		}
		for i := range serial.History {
			if !serial.History[i].Equal(parallel.History[i]) {
				t.Fatalf("%s: trial %d differs between parallelism 1 and 4: %+v vs %+v",
					alg, i, serial.History[i], parallel.History[i])
			}
		}
		if !serial.Best.Equal(parallel.Best) {
			t.Errorf("%s: best differs between parallelism 1 and 4", alg)
		}
	}
}

// repeatOptimizer always proposes the same point — the memoization
// worst case.
type repeatOptimizer struct{ idx [arch.NumParams]int }

func (o *repeatOptimizer) Ask(n int) [][arch.NumParams]int {
	out := make([][arch.NumParams]int, n)
	for i := range out {
		out[i] = o.idx
	}
	return out
}

func (o *repeatOptimizer) Tell([]search.Trial) {}

// TestRunnerMemoizes: revisited points are evaluated once, replayed for
// every later trial, and still counted in the history.
func TestRunnerMemoizes(t *testing.T) {
	var calls atomic.Int64
	rn := &Runner{
		Optimizer: &repeatOptimizer{idx: [arch.NumParams]int{1, 1, 1}},
		Objective: func(idx [arch.NumParams]int) search.Evaluation {
			calls.Add(1)
			return smooth(idx)
		},
		Trials:      48,
		Parallelism: 4,
	}
	res, err := rn.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("objective called %d times for 48 identical trials, want 1", got)
	}
	if len(res.History) != 48 {
		t.Errorf("history = %d, want 48 (memoized trials still count)", len(res.History))
	}
	for i := 1; i < len(res.History); i++ {
		if !res.History[i].Equal(res.History[0]) {
			t.Fatalf("memoized trial %d differs from the original evaluation", i)
		}
	}
}

// TestRunnerCancellation: a canceled context stops the engine promptly
// and hands back the partial history with ctx.Err().
func TestRunnerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	told := 0
	rn := &Runner{
		Optimizer: search.New(search.AlgRandom, 1, 100000),
		Objective: func(idx [arch.NumParams]int) search.Evaluation {
			time.Sleep(time.Millisecond)
			return smooth(idx)
		},
		Trials:      100000,
		Parallelism: 2,
		OnTrial: func(search.Trial) {
			told++
			if told == DefaultBatchSize {
				cancel()
			}
		},
	}
	t0 := time.Now()
	res, err := rn.Run(ctx)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if took := time.Since(t0); took > 5*time.Second {
		t.Errorf("cancellation took %v, want prompt return", took)
	}
	if len(res.History) == 0 || len(res.History) >= 100000 {
		t.Errorf("partial history = %d trials, want some but not all", len(res.History))
	}
}

// TestStudyParallelismInvariance runs the real study end to end: same
// seed, parallelism 1 vs 4, identical best design per algorithm.
func TestStudyParallelismInvariance(t *testing.T) {
	for _, alg := range []search.Algorithm{search.AlgRandom, search.AlgLCS, search.AlgBayes} {
		run := func(par int) *StudyResult {
			res, err := (&Study{
				Workloads: []string{"efficientnet-b0"},
				Objective: PerfPerTDP,
				Algorithm: alg,
				Trials:    32,
				Seed:      6,
			}).Run(context.Background(), WithParallelism(par))
			if err != nil {
				t.Fatalf("%s: %v", alg, err)
			}
			return res
		}
		serial, parallel := run(1), run(4)
		if serial.BestValue != parallel.BestValue {
			t.Errorf("%s: best value differs: %v vs %v", alg, serial.BestValue, parallel.BestValue)
		}
		if (serial.Best == nil) != (parallel.Best == nil) {
			t.Fatalf("%s: feasibility differs between parallelism 1 and 4", alg)
		}
		if serial.Best != nil && *serial.Best != *parallel.Best {
			t.Errorf("%s: best design differs:\n  p=1: %s\n  p=4: %s", alg, serial.Best, parallel.Best)
		}
	}
}

// TestStudyCancelReturnsPartial: canceling mid-study returns the
// history so far and the best-so-far design without the final
// re-simulation.
func TestStudyCancelReturnsPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	told := 0
	res, err := (&Study{
		Workloads: []string{"efficientnet-b0"},
		Objective: PerfPerTDP,
		Algorithm: search.AlgRandom,
		Trials:    5000,
		Seed:      2,
	}).Run(ctx, WithParallelism(2), WithProgress(func(search.Trial) {
		told++
		if told == 2*DefaultBatchSize {
			cancel()
		}
	}))
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	n := len(res.Search.History)
	if n == 0 || n >= 5000 {
		t.Errorf("partial history = %d trials, want some but not all", n)
	}
	if res.Best != nil && len(res.PerWorkload) != 0 {
		t.Error("canceled study must skip the final per-workload re-simulation")
	}
	if res.Search.Best.Feasible && res.Best == nil {
		t.Error("canceled study must still decode the best-so-far design")
	}
}

// TestStudyProgressOrder: the progress callback observes every trial in
// deterministic history order even when evaluations run concurrently.
func TestStudyProgressOrder(t *testing.T) {
	var seen []search.Trial
	res, err := (&Study{
		Workloads: []string{"efficientnet-b0"},
		Objective: PerfPerTDP,
		Algorithm: search.AlgLCS,
		Trials:    24,
		Seed:      3,
	}).Run(context.Background(), WithParallelism(4), WithProgress(func(tr search.Trial) {
		seen = append(seen, tr)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(res.Search.History) {
		t.Fatalf("progress saw %d trials, history has %d", len(seen), len(res.Search.History))
	}
	for i := range seen {
		if !seen[i].Equal(res.Search.History[i]) {
			t.Fatalf("progress order diverges from history at trial %d", i)
		}
	}
}
