package core

import (
	"context"
	"encoding/json"
	"testing"

	"fast/internal/search"
)

// resumeCase is one study shape for the kill-restart-resume
// differential: the three scalar algorithms on a scalar study and
// NSGA-II on a multi-objective one, so every optimizer's snapshot path
// is pinned.
type resumeCase struct {
	name  string
	alg   search.Algorithm
	study func() *Study
}

func resumeCases() []resumeCase {
	scalar := func(alg search.Algorithm) func() *Study {
		return func() *Study {
			return &Study{
				Workloads: []string{"efficientnet-b0"},
				Objective: PerfPerTDP,
				Algorithm: alg,
				Trials:    24,
				Seed:      9,
			}
		}
	}
	return []resumeCase{
		{"random", search.AlgRandom, scalar(search.AlgRandom)},
		{"lcs", search.AlgLCS, scalar(search.AlgLCS)},
		{"bayes", search.AlgBayes, scalar(search.AlgBayes)},
		{"nsga2", search.AlgNSGA2, func() *Study {
			return &Study{
				Workloads:  []string{"efficientnet-b0"},
				Objectives: []ObjectiveKind{Perf, TDP},
				Algorithm:  search.AlgNSGA2,
				Trials:     32,
				Seed:       9,
				FrontCap:   4,
			}
		}},
	}
}

// sameStudyResult asserts two study results are bit-identical in every
// deterministic output: full history, best, and (for multi-objective
// studies) the Pareto front with its per-workload re-simulations.
func sameStudyResult(t *testing.T, label string, want, got *StudyResult) {
	t.Helper()
	if len(want.Search.History) != len(got.Search.History) {
		t.Fatalf("%s: history length %d, want %d", label, len(got.Search.History), len(want.Search.History))
	}
	for i := range want.Search.History {
		if !want.Search.History[i].Equal(got.Search.History[i]) {
			t.Fatalf("%s: trial %d differs:\n  want %+v\n  got  %+v",
				label, i, want.Search.History[i], got.Search.History[i])
		}
	}
	if !want.Search.Best.Equal(got.Search.Best) {
		t.Fatalf("%s: best trial differs", label)
	}
	if want.BestValue != got.BestValue {
		t.Fatalf("%s: best value %v, want %v", label, got.BestValue, want.BestValue)
	}
	if (want.Best == nil) != (got.Best == nil) {
		t.Fatalf("%s: best design presence differs", label)
	}
	if want.Best != nil && *want.Best != *got.Best {
		t.Fatalf("%s: best design differs", label)
	}
	wf, gf := want.Front(), got.Front()
	if len(wf) != len(gf) {
		t.Fatalf("%s: front size %d, want %d", label, len(gf), len(wf))
	}
	for i := range wf {
		if wf[i].Index != gf[i].Index {
			t.Fatalf("%s: front point %d differs: %v vs %v", label, i, wf[i].Index, gf[i].Index)
		}
		for k := range wf[i].Values {
			if wf[i].Values[k] != gf[i].Values[k] {
				t.Fatalf("%s: front point %d value %d differs", label, i, k)
			}
		}
		if len(wf[i].PerWorkload) != len(gf[i].PerWorkload) {
			t.Fatalf("%s: front point %d per-workload length differs", label, i)
		}
		for k := range wf[i].PerWorkload {
			wr, gr := wf[i].PerWorkload[k].Result, gf[i].PerWorkload[k].Result
			if wr.QPS != gr.QPS || wr.LatencySec != gr.LatencySec ||
				wr.PerfPerTDP != gr.PerfPerTDP || wr.TDPWatts != gr.TDPWatts ||
				wr.Fusion.Total != gr.Fusion.Total || wr.Fusion.Method != gr.Fusion.Method {
				t.Fatalf("%s: front point %d workload %d re-simulation differs", label, i, k)
			}
		}
	}
}

// TestKillRestartResumeDifferential is the durability acceptance test:
// per algorithm, at parallelism 1 and 4, a study canceled mid-run with
// its transcript checkpointed, then resumed from the JSON round-tripped
// snapshot (simulating a fresh process reading the checkpoint back from
// disk), yields a history, best design, and Pareto front bit-identical
// to an uninterrupted run.
func TestKillRestartResumeDifferential(t *testing.T) {
	for _, tc := range resumeCases() {
		for _, par := range []int{1, 4} {
			t.Run(tc.name+"/par"+string(rune('0'+par)), func(t *testing.T) {
				st := tc.study()
				ref, err := st.Run(context.Background(), WithParallelism(par), WithBatchSize(8))
				if err != nil {
					t.Fatal(err)
				}

				// Interrupted run: checkpoint every told batch, kill
				// (cancel) once a third of the budget is recorded.
				snap := search.Snapshot{Algorithm: tc.alg, Seed: st.Seed, Budget: st.Trials}
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				st2 := tc.study()
				_, err = st2.Run(ctx, WithParallelism(par), WithBatchSize(8),
					WithTranscript(func(batch []search.Trial) {
						snap.Append(batch)
						if len(snap.Trials) >= st2.Trials/3 {
							cancel()
						}
					}))
				if err != context.Canceled {
					t.Fatalf("interrupted run: err = %v, want context.Canceled", err)
				}
				if n := len(snap.Trials); n == 0 || n >= st2.Trials {
					t.Fatalf("checkpoint captured %d trials, want a strict mid-run prefix", n)
				}
				if err := snap.Validate(); err != nil {
					t.Fatalf("checkpoint snapshot invalid: %v", err)
				}

				// Fresh process: the snapshot only exists as serialized
				// bytes. JSON must round-trip it bit-exactly.
				data, err := json.Marshal(snap)
				if err != nil {
					t.Fatal(err)
				}
				var loaded search.Snapshot
				if err := json.Unmarshal(data, &loaded); err != nil {
					t.Fatal(err)
				}

				var tail int
				res, err := tc.study().Run(context.Background(),
					WithParallelism(par), WithBatchSize(8), WithResume(loaded),
					WithTranscript(func(batch []search.Trial) { tail += len(batch) }))
				if err != nil {
					t.Fatalf("resumed run: %v", err)
				}
				if want := st2.Trials - len(loaded.Trials); tail != want {
					t.Errorf("resume hook saw %d new trials, want %d (prior batches must not replay)", tail, want)
				}
				sameStudyResult(t, tc.name, ref, res)
			})
		}
	}
}

// TestResumeCompletedStudy: resuming with Trials at the snapshot's
// count evaluates nothing new and re-derives the full report (including
// the final full-ILP re-simulations) — how a restarted process
// re-materializes a finished study from its checkpoint.
func TestResumeCompletedStudy(t *testing.T) {
	st := &Study{
		Workloads: []string{"efficientnet-b0"},
		Objective: PerfPerTDP,
		Algorithm: search.AlgLCS,
		Trials:    16,
		Seed:      4,
	}
	snap := search.Snapshot{Algorithm: st.Algorithm, Seed: st.Seed, Budget: st.Trials}
	ref, err := st.Run(context.Background(), WithParallelism(2), WithBatchSize(8),
		WithTranscript(func(batch []search.Trial) { snap.Append(batch) }))
	if err != nil {
		t.Fatal(err)
	}
	var tail int
	res, err := (&Study{
		Workloads: st.Workloads,
		Objective: st.Objective,
		Algorithm: st.Algorithm,
		Trials:    st.Trials,
		Seed:      st.Seed,
	}).Run(context.Background(), WithParallelism(2), WithBatchSize(8), WithResume(snap),
		WithTranscript(func(batch []search.Trial) { tail += len(batch) }))
	if err != nil {
		t.Fatal(err)
	}
	if tail != 0 {
		t.Errorf("re-materializing a finished study evaluated %d new trials, want 0", tail)
	}
	sameStudyResult(t, "completed", ref, res)
	if ref.Best != nil && len(res.PerWorkload) != len(ref.PerWorkload) {
		t.Errorf("re-materialized report has %d per-workload results, want %d",
			len(res.PerWorkload), len(ref.PerWorkload))
	}
}

// TestResumeRejectsMismatchedStudy: a snapshot from a different seed or
// algorithm must fail the run rather than silently forking the search.
func TestResumeRejectsMismatchedStudy(t *testing.T) {
	st := &Study{
		Workloads: []string{"efficientnet-b0"},
		Objective: PerfPerTDP,
		Algorithm: search.AlgRandom,
		Trials:    8,
		Seed:      1,
	}
	snap := search.Snapshot{Algorithm: search.AlgRandom, Seed: st.Seed, Budget: st.Trials}
	if _, err := st.Run(context.Background(), WithTranscript(func(b []search.Trial) { snap.Append(b) })); err != nil {
		t.Fatal(err)
	}

	wrongSeed := snap
	wrongSeed.Seed = 99
	if _, err := st.Run(context.Background(), WithResume(wrongSeed)); err == nil {
		t.Error("resume with mismatched seed must fail")
	}
	wrongAlg := snap
	wrongAlg.Algorithm = search.AlgLCS
	if _, err := st.Run(context.Background(), WithResume(wrongAlg)); err == nil {
		t.Error("resume with mismatched algorithm must fail")
	}
}
