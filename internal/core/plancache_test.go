package core

import (
	"sync"
	"testing"

	"fast/internal/arch"
	"fast/internal/sim"
)

// checkCacheInvariants asserts the cache's internal accounting is
// consistent: every resident entry is accounted, the byte counter
// equals the sum over resident entries, and map and LRU list agree.
func checkCacheInvariants(t *testing.T, pc *planCache) {
	t.Helper()
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if len(pc.m) != pc.lru.Len() {
		t.Fatalf("map has %d entries, LRU list %d", len(pc.m), pc.lru.Len())
	}
	var sum int64
	for el := pc.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*planEntry)
		if pc.m[e.key] != e {
			t.Fatalf("LRU entry %v not in map", e.key)
		}
		if e.evicted {
			t.Fatalf("evicted entry %v still resident", e.key)
		}
		if e.accounted {
			sum += e.bytes
		}
	}
	if sum != pc.bytes {
		t.Fatalf("accounted bytes %d, counter says %d", sum, pc.bytes)
	}
}

// TestPlanCacheEntryBudget: a MaxEntries budget evicts in LRU order —
// touching an entry protects it, the coldest key goes first, and a
// re-request of an evicted key recompiles (a fresh miss).
func TestPlanCacheEntryBudget(t *testing.T) {
	opts := sim.FASTOptions()
	fp := opts.Fingerprint()
	pc := &planCache{}
	pc.setBudget(PlanCacheBudget{MaxEntries: 2})

	get := func(batch int64) *sim.Plan {
		t.Helper()
		p, err := pc.get("mobilenetv2", batch, fp, opts)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a := get(8)  // [a]
	get(16)      // [b a]
	a2 := get(8) // [a b] — touch a so b is coldest
	if a2 != a {
		t.Fatal("hit returned a different plan")
	}
	get(24) // [c a], b evicted

	st := pc.stats()
	if st.Entries != 2 || st.Evictions != 1 || st.Misses != 3 || st.Hits != 1 {
		t.Fatalf("stats after LRU eviction = %+v, want 2 entries, 1 eviction, 3 misses, 1 hit", st)
	}
	checkCacheInvariants(t, pc)

	get(16) // b again: must recompile, a (the new coldest) evicted
	st = pc.stats()
	if st.Misses != 4 || st.Evictions != 2 || st.Entries != 2 {
		t.Fatalf("stats after re-request of evicted key = %+v, want 4 misses, 2 evictions, 2 entries", st)
	}
	checkCacheInvariants(t, pc)
}

// TestPlanCacheByteBudget: a MaxBytes budget holds whenever more than
// one plan is resident, and a single plan larger than the whole budget
// is kept anyway (the documented anti-thrash exception).
func TestPlanCacheByteBudget(t *testing.T) {
	opts := sim.FASTOptions()
	fp := opts.Fingerprint()
	pc := &planCache{}
	if _, err := pc.get("mobilenetv2", 8, fp, opts); err != nil {
		t.Fatal(err)
	}
	one := pc.stats().Bytes
	if one <= 0 {
		t.Fatalf("single plan accounted %d bytes, want > 0", one)
	}

	// Room for one plan but not two: the second insert evicts the first.
	pc.setBudget(PlanCacheBudget{MaxBytes: one + one/2})
	if _, err := pc.get("mobilenetv2", 16, fp, opts); err != nil {
		t.Fatal(err)
	}
	st := pc.stats()
	if st.Entries != 1 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want the first plan evicted for the second", st)
	}
	if st.Bytes > one+one/2 {
		t.Fatalf("cache holds %d bytes, budget %d", st.Bytes, one+one/2)
	}
	checkCacheInvariants(t, pc)

	// An impossible budget: the newest plan is kept over-budget rather
	// than thrashing, so the cache degrades to capacity one.
	pc.setBudget(PlanCacheBudget{MaxBytes: 1})
	if _, err := pc.get("mobilenetv2", 24, fp, opts); err != nil {
		t.Fatal(err)
	}
	st = pc.stats()
	if st.Entries != 1 {
		t.Fatalf("over-budget cache holds %d entries, want exactly the newest plan", st.Entries)
	}
	checkCacheInvariants(t, pc)
}

// TestPlanCacheEvictionPreservesResults: eviction never changes a
// result — a recompiled plan evaluates bit-identically, and a caller
// still holding the evicted plan keeps getting the same answers.
func TestPlanCacheEvictionPreservesResults(t *testing.T) {
	opts := sim.FASTOptions()
	fp := opts.Fingerprint()
	cfg := arch.TPUv3()
	pc := &planCache{}
	pc.setBudget(PlanCacheBudget{MaxEntries: 1})

	old, err := pc.get("mobilenetv2", int64(cfg.NativeBatch), fp, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := old.Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pc.get("mobilenetv2", 8, fp, opts); err != nil { // evicts old
		t.Fatal(err)
	}
	held, err := old.Evaluate(cfg) // evicted plan stays valid for holders
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := pc.get("mobilenetv2", int64(cfg.NativeBatch), fp, opts) // recompiles
	if err != nil {
		t.Fatal(err)
	}
	if fresh == old {
		t.Fatal("re-request after eviction returned the evicted plan object")
	}
	re, err := fresh.Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, got := range []*sim.Result{held, re} {
		if got.QPS != want.QPS || got.LatencySec != want.LatencySec ||
			got.PerfPerTDP != want.PerfPerTDP || got.Fusion.Total != want.Fusion.Total {
			t.Fatal("evaluation changed across eviction/recompile")
		}
	}
}

// TestPlanCacheBudgetSoak hammers a budgeted cache from concurrent
// tenants requesting more distinct plans than the budget admits — the
// multi-tenant server's steady state. Run under -race in CI, it pins
// that every request is served, the byte bound holds afterwards, and
// the accounting stays exact through concurrent evict/insert races.
func TestPlanCacheBudgetSoak(t *testing.T) {
	opts := sim.FASTOptions()
	fp := opts.Fingerprint()
	batches := []int64{8, 16, 24, 32, 40}

	pc := &planCache{}
	if _, err := pc.get("mobilenetv2", batches[0], fp, opts); err != nil {
		t.Fatal(err)
	}
	one := pc.stats().Bytes
	budget := PlanCacheBudget{MaxEntries: 3, MaxBytes: 3 * one}
	pc.setBudget(budget)

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				b := batches[(w+i)%len(batches)]
				p, err := pc.get("mobilenetv2", b, fp, opts)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if p == nil {
					t.Errorf("worker %d: nil plan", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	st := pc.stats()
	if st.Entries > budget.MaxEntries {
		t.Errorf("soak left %d entries, budget %d", st.Entries, budget.MaxEntries)
	}
	if st.Entries > 1 && st.Bytes > budget.MaxBytes {
		t.Errorf("soak left %d bytes, budget %d", st.Bytes, budget.MaxBytes)
	}
	if st.Evictions == 0 {
		t.Error("soak over budget recorded no evictions")
	}
	// workers×20 soak requests plus the one calibration request.
	if want := uint64(workers*20 + 1); st.Hits+st.Misses != want {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, want)
	}
	checkCacheInvariants(t, pc)
}
