// Package core is the FAST framework itself (§5, Figure 1): it wires the
// datapath search space, the architectural simulator (schedule mapping +
// FAST fusion + power/area models), the constraint set (Eq. 3-5), and a
// black-box optimizer into a Study that designs an accelerator for one or
// several workloads.
package core

import (
	"fmt"
	"math"
	"sync"

	"fast/internal/arch"
	"fast/internal/hlo"
	"fast/internal/models"
	"fast/internal/power"
	"fast/internal/search"
	"fast/internal/sim"
)

// ObjectiveKind selects the optimization target f(h,w) (Eq. 3).
type ObjectiveKind int

const (
	// PerfPerTDP maximizes QPS per watt (the paper's headline metric).
	PerfPerTDP ObjectiveKind = iota
	// Perf maximizes raw QPS subject to the budget (the Figure 9 "pure
	// performance" objective).
	Perf
)

// String implements fmt.Stringer.
func (o ObjectiveKind) String() string {
	if o == Perf {
		return "perf"
	}
	return "perf-per-tdp"
}

// Study describes one FAST search experiment.
type Study struct {
	// Workloads are canonical model names (see models.Build). Multiple
	// names optimize the geometric mean across them (§6.2.1).
	Workloads []string
	// Objective is the optimization target.
	Objective ObjectiveKind
	// Algorithm selects the optimizer (random / lcs / bayesian).
	Algorithm search.Algorithm
	// Trials bounds the evaluation count (the paper runs 5000; these
	// simulations are ~10^4× faster than the paper's, so a few hundred
	// reach comparable convergence).
	Trials int
	// Seed makes the study deterministic.
	Seed int64
	// Base supplies the fixed platform attributes (cores, clock, memory
	// technology) inherited by every candidate. Nil uses DefaultPlatform.
	Base *arch.Config
	// Budget is the area/TDP constraint envelope (Eq. 4). Zero value uses
	// power.DefaultBudget.
	Budget power.Budget
	// PowerModel overrides the analytical power model.
	PowerModel *power.Model
	// SimOptions configures the simulator; zero value uses
	// sim.FASTOptions().
	SimOptions *sim.Options
	// LatencyBoundSec optionally rejects designs whose batch latency
	// exceeds the bound on any workload (e.g. the MLPerf 15 ms image
	// classification limit discussed in §6.2.5).
	LatencyBoundSec float64
}

// WorkloadResult pairs a workload with its simulation on a design.
type WorkloadResult struct {
	Name   string
	Result *sim.Result
}

// StudyResult is a completed search.
type StudyResult struct {
	// Best is the winning design (nil if no feasible design was found).
	Best *arch.Config
	// BestValue is the winning objective value.
	BestValue float64
	// Search holds the full trial history (convergence curves, Fig. 11).
	Search search.Result
	// PerWorkload re-simulates the winning design on each workload with
	// the full (ILP-backed) fusion solve.
	PerWorkload []WorkloadResult
}

// DefaultPlatform returns the fixed attributes FAST candidates inherit: a
// single core at 1 GHz on GDDR6 (the paper's new-process, single-chip
// inference platform).
func DefaultPlatform() *arch.Config {
	c := arch.FASTLarge().Clone("fast-candidate")
	return c
}

// graphCache builds workload graphs lazily per (name, batch), shared
// across trials; NativeBatch is a searched hyperparameter so each batch
// size materializes its own graph.
type graphCache struct {
	mu sync.Mutex
	m  map[string]*hlo.Graph
}

func (gc *graphCache) get(name string, batch int64) (*hlo.Graph, error) {
	key := fmt.Sprintf("%s@%d", name, batch)
	gc.mu.Lock()
	defer gc.mu.Unlock()
	if g, ok := gc.m[key]; ok {
		return g, nil
	}
	g, err := models.Build(name, batch)
	if err != nil {
		return nil, err
	}
	if gc.m == nil {
		gc.m = map[string]*hlo.Graph{}
	}
	gc.m[key] = g
	return g, nil
}

// Run executes the study.
func (s *Study) Run() (*StudyResult, error) {
	if len(s.Workloads) == 0 {
		return nil, fmt.Errorf("core: study needs at least one workload")
	}
	if s.Trials <= 0 {
		return nil, fmt.Errorf("core: trials must be positive")
	}
	for _, w := range s.Workloads {
		if _, err := models.Build(w, 1); err != nil {
			return nil, err
		}
	}
	base := s.Base
	if base == nil {
		base = DefaultPlatform()
	}
	pm := s.PowerModel
	if pm == nil {
		pm = power.Default()
	}
	budget := s.Budget
	if budget.MaxTDPW == 0 {
		budget = power.DefaultBudget(pm)
	}
	simOpts := sim.FASTOptions()
	if s.SimOptions != nil {
		simOpts = *s.SimOptions
	}
	simOpts.PowerModel = pm

	gc := &graphCache{}
	space := arch.Space{}

	objective := func(idx [arch.NumParams]int) search.Evaluation {
		cfg := space.Decode(idx, base)
		if err := cfg.Validate(); err != nil {
			return search.Evaluation{}
		}
		eval := pm.Evaluate(cfg)
		if eval.TotalPower() > budget.MaxTDPW || eval.TotalArea() > budget.MaxAreaMM2 {
			return search.Evaluation{}
		}
		logSum := 0.0
		for _, w := range s.Workloads {
			g, err := gc.get(w, cfg.NativeBatch)
			if err != nil {
				return search.Evaluation{}
			}
			r, err := sim.Simulate(g, cfg, simOpts)
			if err != nil || r.ScheduleFailed || r.QPS <= 0 {
				return search.Evaluation{} // Eq. 5
			}
			if s.LatencyBoundSec > 0 && r.LatencySec > s.LatencyBoundSec {
				return search.Evaluation{}
			}
			v := r.QPS
			if s.Objective == PerfPerTDP {
				v = r.PerfPerTDP
			}
			if v <= 0 {
				return search.Evaluation{}
			}
			logSum += math.Log(v)
		}
		return search.Evaluation{
			Value:    math.Exp(logSum / float64(len(s.Workloads))),
			Feasible: true,
		}
	}

	alg := s.Algorithm
	if alg == "" {
		alg = search.AlgLCS
	}
	sr := search.Run(alg, objective, s.Trials, s.Seed)

	out := &StudyResult{Search: sr}
	if !sr.Best.Feasible {
		return out, nil
	}
	out.BestValue = sr.Best.Value
	out.Best = space.Decode(sr.Best.Index, base)
	out.Best.Name = fmt.Sprintf("fast-%s-%s", s.Objective, shortName(s.Workloads))

	// Final evaluation with the full ILP fusion solve.
	finalOpts := simOpts
	finalOpts.Fusion.GreedyOnly = false
	for _, w := range s.Workloads {
		g, err := gc.get(w, out.Best.NativeBatch)
		if err != nil {
			return nil, err
		}
		r, err := sim.Simulate(g, out.Best, finalOpts)
		if err != nil {
			return nil, err
		}
		out.PerWorkload = append(out.PerWorkload, WorkloadResult{Name: w, Result: r})
	}
	return out, nil
}

func shortName(ws []string) string {
	if len(ws) == 1 {
		return ws[0]
	}
	return fmt.Sprintf("multi%d", len(ws))
}

// EvaluateDesign simulates a fixed design across workloads with the given
// options (used by the Table 5/6 and Figure 9/10 harnesses).
func EvaluateDesign(cfg *arch.Config, workloads []string, opts sim.Options) ([]WorkloadResult, error) {
	var out []WorkloadResult
	for _, w := range workloads {
		g, err := models.Build(w, cfg.NativeBatch)
		if err != nil {
			return nil, err
		}
		r, err := sim.Simulate(g, cfg, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, WorkloadResult{Name: w, Result: r})
	}
	return out, nil
}

// GeoMean returns the geometric mean of f over the results.
func GeoMean(results []WorkloadResult, f func(*sim.Result) float64) float64 {
	if len(results) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range results {
		v := f(r.Result)
		if v <= 0 {
			return 0
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(results)))
}
