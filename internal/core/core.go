// Package core is the FAST framework itself (§5, Figure 1): it wires the
// datapath search space, the architectural simulator (schedule mapping +
// FAST fusion + power/area models), the constraint set (Eq. 3-5), and a
// black-box optimizer into a Study that designs an accelerator for one or
// several workloads.
package core

import (
	"context"
	"fmt"
	"math"
	"slices"
	"sync"

	"fast/internal/arch"
	"fast/internal/hlo"
	"fast/internal/models"
	"fast/internal/power"
	"fast/internal/search"
	"fast/internal/sim"
)

// ObjectiveKind selects an optimization target f(h,w) (Eq. 3). Scalar
// studies (Study.Objective) accept the two maximization targets the
// paper searches with; multi-objective studies (Study.Objectives) also
// accept the budget metrics TDP and Area as minimization targets, which
// turns the budget-constrained search into a trade-off frontier.
type ObjectiveKind int

const (
	// PerfPerTDP maximizes QPS per watt (the paper's headline metric).
	PerfPerTDP ObjectiveKind = iota
	// Perf maximizes raw QPS subject to the budget (the Figure 9 "pure
	// performance" objective).
	Perf
	// TDP minimizes the power-virus thermal design power (watts).
	// Multi-objective studies only.
	TDP
	// Area minimizes the die area (mm²). Multi-objective studies only.
	Area
)

// String implements fmt.Stringer.
func (o ObjectiveKind) String() string {
	switch o {
	case Perf:
		return "perf"
	case TDP:
		return "tdp"
	case Area:
		return "area"
	}
	return "perf-per-tdp"
}

// Maximize reports the objective's direction: true for the performance
// metrics, false for the cost metrics (TDP, area).
func (o ObjectiveKind) Maximize() bool { return o == Perf || o == PerfPerTDP }

// ParseObjective resolves an objective name as accepted by the CLIs:
// "perf-per-tdp" (or "perf/tdp"), "perf", "tdp", "area".
func ParseObjective(name string) (ObjectiveKind, error) {
	switch name {
	case "perf-per-tdp", "perf/tdp":
		return PerfPerTDP, nil
	case "perf":
		return Perf, nil
	case "tdp":
		return TDP, nil
	case "area":
		return Area, nil
	}
	return 0, fmt.Errorf("core: unknown objective %q (want perf-per-tdp, perf, tdp, or area)", name)
}

// Study describes one FAST search experiment.
type Study struct {
	// Workloads are canonical model names (see models.Build). Multiple
	// names optimize the geometric mean across them (§6.2.1).
	Workloads []string
	// Objective is the optimization target of a scalar study. Ignored
	// when Objectives is set.
	Objective ObjectiveKind
	// Objectives, when non-empty, makes the study multi-objective: the
	// search returns the Pareto front over these targets instead of a
	// single best design (StudyResult.Front). Per-workload metrics are
	// geomean-folded exactly like a scalar study; all objectives of a
	// trial are derived from one simulation per (design, workload), so
	// extra objectives are essentially free. A 1-element Objectives is
	// the degenerate case and follows the identical trajectory as the
	// equivalent scalar study.
	Objectives []ObjectiveKind
	// FrontCap bounds the returned Pareto front; overflow is pruned by
	// crowding distance (most-crowded point evicted first). 0 uses
	// DefaultFrontCap; negative is unbounded.
	FrontCap int
	// Algorithm selects the optimizer (random / lcs / bayesian).
	Algorithm search.Algorithm
	// Trials bounds the evaluation count (the paper runs 5000; these
	// simulations are ~10^4× faster than the paper's, so a few hundred
	// reach comparable convergence).
	Trials int
	// Seed makes the study deterministic.
	Seed int64
	// Base supplies the fixed platform attributes (cores, clock, memory
	// technology) inherited by every candidate. Nil uses DefaultPlatform.
	Base *arch.Config
	// Budget is the area/TDP constraint envelope (Eq. 4). Zero value uses
	// power.DefaultBudget.
	Budget power.Budget
	// PowerModel overrides the analytical power model.
	PowerModel *power.Model
	// SimOptions configures the simulator; zero value uses
	// sim.FASTOptions().
	SimOptions *sim.Options
	// LatencyBoundSec optionally rejects designs whose batch latency
	// exceeds the bound on any workload (e.g. the MLPerf 15 ms image
	// classification limit discussed in §6.2.5).
	LatencyBoundSec float64
}

// WorkloadResult pairs a workload with its simulation on a design.
type WorkloadResult struct {
	Name   string
	Result *sim.Result
}

// StudyResult is a completed search.
type StudyResult struct {
	// Best is the winning design (nil if no feasible design was found).
	// For a multi-objective study this is the front point that is best
	// on the first objective.
	Best *arch.Config
	// BestValue is the winning objective value (the raw first-objective
	// value for a multi-objective study, natural units).
	BestValue float64
	// Search holds the full trial history (convergence curves, Fig. 11).
	Search search.Result
	// PerWorkload re-simulates the winning design on each workload with
	// the full (ILP-backed) fusion solve. Scalar studies only; a
	// multi-objective study carries per-point results on Front()
	// instead.
	PerWorkload []WorkloadResult

	// front is the Pareto front of a multi-objective study (Front()).
	front []FrontPoint
}

// DefaultPlatform returns the fixed attributes FAST candidates inherit: a
// single core at 1 GHz on GDDR6 (the paper's new-process, single-chip
// inference platform).
func DefaultPlatform() *arch.Config {
	c := arch.FASTLarge().Clone("fast-candidate")
	return c
}

// graphCache builds workload graphs lazily per (name, batch);
// NativeBatch is a searched hyperparameter so each batch size
// materializes its own graph. Graphs are immutable after construction,
// so one cache is shared process-wide by every study and evaluation
// (the working set is small: a handful of workloads × batch points).
type graphCache struct {
	mu sync.Mutex
	m  map[string]*graphEntry
}

// graphEntry builds its graph at most once; concurrent requesters for
// the same key wait on the build, while other keys proceed — the global
// lock is held only for the map lookup, never across models.Build.
type graphEntry struct {
	once sync.Once
	g    *hlo.Graph
	err  error
}

func (gc *graphCache) get(name string, batch int64) (*hlo.Graph, error) {
	key := fmt.Sprintf("%s@%d", name, batch)
	gc.mu.Lock()
	if gc.m == nil {
		gc.m = map[string]*graphEntry{}
	}
	e, ok := gc.m[key]
	if !ok {
		e = &graphEntry{}
		gc.m[key] = e
	}
	gc.mu.Unlock()
	e.once.Do(func() { e.g, e.err = models.Build(name, batch) })
	return e.g, e.err
}

// graphs is the process-wide workload graph cache shared by Study.Run
// and EvaluateDesign.
var graphs = &graphCache{}

// Option configures one Study.Run invocation (concurrency and
// observability knobs, as opposed to the Study fields that define the
// experiment itself).
type Option func(*runConfig)

type runConfig struct {
	parallelism int
	batchSize   int
	progress    func(search.Trial)
	budget      *power.Budget
	onBatch     func([]search.Trial)
	resume      *search.Snapshot
	dispatch    DispatchFunc
}

// WithParallelism bounds concurrent design evaluations. n <= 0 (the
// default) uses one worker per available CPU. Parallelism never changes
// the search trajectory: a study with a fixed seed returns the same
// result at any setting.
func WithParallelism(n int) Option {
	return func(c *runConfig) { c.parallelism = n }
}

// WithBatchSize overrides the ask/tell batch width (default
// DefaultBatchSize). Unlike parallelism this is algorithmic state:
// changing it changes which designs the optimizer proposes.
func WithBatchSize(n int) Option {
	return func(c *runConfig) { c.batchSize = n }
}

// WithProgress registers a callback invoked for every completed trial,
// in deterministic order, from the driving goroutine (no locking
// needed). Useful for live convergence reporting and for deciding when
// to cancel the context.
func WithProgress(f func(search.Trial)) Option {
	return func(c *runConfig) { c.progress = f }
}

// WithBudget overrides the study's constraint envelope (Eq. 4) for one
// Run. Candidates beyond the budget are infeasible: scalar studies
// reject them, multi-objective studies rank them behind every feasible
// point ("dominated last") and keep them off the front. Sweeping the
// budget across Runs of one Study is how the paper's different
// deployment classes (embedded vs datacenter envelopes) reuse a single
// experiment definition.
func WithBudget(b power.Budget) Option {
	return func(c *runConfig) { c.budget = &b }
}

// Run executes the study until the trial budget is exhausted or ctx is
// canceled. Cancellation is graceful: in-flight evaluations finish, and
// the partial trial history — with Best/BestValue populated from it —
// is returned together with ctx.Err(); the per-workload final
// re-simulation is skipped.
func (s *Study) Run(ctx context.Context, opts ...Option) (*StudyResult, error) {
	var rc runConfig
	for _, o := range opts {
		o(&rc)
	}
	if len(s.Workloads) == 0 {
		return nil, fmt.Errorf("core: study needs at least one workload")
	}
	if s.Trials <= 0 {
		return nil, fmt.Errorf("core: trials must be positive")
	}
	for _, w := range s.Workloads {
		if err := models.Validate(w); err != nil {
			return nil, err
		}
	}
	base := s.Base
	if base == nil {
		base = DefaultPlatform()
	}
	pm := s.PowerModel
	if pm == nil {
		pm = power.Default()
	}
	budget := s.Budget
	if budget.MaxTDPW == 0 {
		budget = power.DefaultBudget(pm)
	}
	if rc.budget != nil {
		budget = *rc.budget
	}
	simOpts := sim.FASTOptions()
	if s.SimOptions != nil {
		simOpts = *s.SimOptions
	}
	simOpts.PowerModel = pm

	if len(s.Objectives) > 0 {
		return s.runMulti(ctx, rc, base, pm, budget, simOpts)
	}
	if !s.Objective.Maximize() {
		return nil, fmt.Errorf("core: scalar studies maximize perf or perf-per-tdp; use Objectives for %s", s.Objective)
	}

	// The options fingerprint is constant across the study; render it
	// once so the per-trial hot path only does a map lookup.
	objective, batchObjective := s.makeObjectives(base, pm, budget, simOpts, simOpts.Fingerprint())
	if rc.dispatch != nil {
		batchObjective = rc.dispatch(ctx, s.evalSpec(base, budget, simOpts), batchObjective)
	}

	alg := s.Algorithm
	if alg == "" {
		alg = search.AlgLCS
	}
	runner, prior, err := s.buildRunner(rc, alg, objective, batchObjective)
	if err != nil {
		return nil, err
	}
	sr, runErr := runner.Run(ctx)
	sr = mergePrior(prior, sr)

	out := &StudyResult{Search: sr}
	if !sr.Best.Feasible {
		return out, runErr
	}
	out.BestValue = sr.Best.Value
	out.Best = arch.Space{}.Decode(sr.Best.Index, base)
	out.Best.Name = fmt.Sprintf("fast-%s-%s", s.Objective, shortName(s.Workloads))
	if runErr != nil {
		// Canceled: hand back the partial history and best-so-far design
		// without the (potentially slow) final re-simulation.
		return out, runErr
	}

	// Final evaluation with the full ILP fusion solve, through the
	// process-wide plan cache: the compiled plan (and its memoized
	// mapping/fusion stages) is shared with later re-evaluations of the
	// same winner — EvaluateDesign, repeated studies — so only the first
	// pass pays the ILP. The per-workload solves are independent exact
	// ILPs, so they fan out across the Run's worker-pool bound.
	finalOpts := simOpts
	finalOpts.Fusion.GreedyOnly = false
	pw, err := evaluateParallel(rc.parallelism, s.Workloads, out.Best, finalOpts)
	if err != nil {
		return nil, err
	}
	out.PerWorkload = pw
	return out, nil
}

// evaluateParallel simulates one design on every workload with opts,
// fanning the independent (workload) jobs — full-ILP fusion solves on
// the re-simulation paths — across a ForEach pool. Results keep
// workload order regardless of parallelism.
func evaluateParallel(parallelism int, workloads []string, cfg *arch.Config, opts sim.Options) ([]WorkloadResult, error) {
	fp := opts.Fingerprint()
	results := make([]WorkloadResult, len(workloads))
	errs := make([]error, len(workloads))
	ForEach(parallelism, len(workloads), func(i int) {
		w := workloads[i]
		plan, err := plans.get(w, cfg.NativeBatch, fp, opts)
		if err != nil {
			errs[i] = err
			return
		}
		r, err := plan.Evaluate(cfg)
		if err != nil {
			errs[i] = err
			return
		}
		results[i] = WorkloadResult{Name: w, Result: r}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// makeObjectives builds the Runner's evaluation closures: the per-point
// objective (Eq. 3 value under the Eq. 4-5 constraints) and its batched
// twin. Both apply the identical decode → budget → per-workload simulate
// → geomean pipeline and return identical Evaluations for every index
// vector; the batched form routes simulation through Plan.EvaluateBatch
// so an ask-batch of near-identical proposals shares memoized mapping /
// residency / roll-up stages, and drops a design from later workloads as
// soon as an earlier one proves it infeasible (mirroring the per-point
// short-circuit).
func (s *Study) makeObjectives(base *arch.Config, pm *power.Model, budget power.Budget,
	simOpts sim.Options, simFP string) (search.Objective, search.BatchObjective) {

	space := arch.Space{}

	// prep decodes and applies the workload-independent constraints;
	// ok=false means infeasible (zero Evaluation).
	prep := func(idx [arch.NumParams]int) (*arch.Config, bool) {
		cfg := space.Decode(idx, base)
		if err := cfg.Validate(); err != nil {
			return nil, false
		}
		eval := pm.Evaluate(cfg)
		if eval.TotalPower() > budget.MaxTDPW || eval.TotalArea() > budget.MaxAreaMM2 {
			return nil, false
		}
		return cfg, true
	}
	// score folds one workload result into the running log-sum; ok=false
	// means the design failed Eq. 5 or the latency bound on this workload.
	score := func(r *sim.Result) (float64, bool) {
		if r.ScheduleFailed || r.QPS <= 0 {
			return 0, false
		}
		if s.LatencyBoundSec > 0 && r.LatencySec > s.LatencyBoundSec {
			return 0, false
		}
		v := r.QPS
		if s.Objective == PerfPerTDP {
			v = r.PerfPerTDP
		}
		if v <= 0 {
			return 0, false
		}
		return math.Log(v), true
	}

	prepS := func(idx [arch.NumParams]int) (*arch.Config, float64, bool) {
		cfg, ok := prep(idx)
		return cfg, 0, ok
	}
	fold := func(r *sim.Result, logSum *float64) bool {
		v, ok := score(r)
		if !ok {
			return false // Eq. 5
		}
		*logSum += v
		return true
	}
	finish := func(logSum float64) search.Evaluation {
		return search.Evaluation{
			Value:    math.Exp(logSum / float64(len(s.Workloads))),
			Feasible: true,
		}
	}
	return objectiveOver(s.Workloads, simFP, simOpts, prepS, fold, finish),
		batchObjectiveOver(s.Workloads, simFP, simOpts, prepS, fold, finish)
}

// objectiveOver builds a per-point search.Objective from the three
// study-specific hooks: prep decodes and applies the
// workload-independent constraints (returning the fold's initial
// state), fold scores one workload result into the state (false =
// infeasible, Eq. 5), finish turns the folded state into the trial's
// Evaluation. The scalar and multi-objective studies differ only in
// these hooks; the decode → per-workload simulate pipeline is shared
// here, and its batched twin in batchObjectiveOver.
func objectiveOver[S any](workloads []string, simFP string, simOpts sim.Options,
	prep func(idx [arch.NumParams]int) (*arch.Config, S, bool),
	fold func(*sim.Result, *S) bool,
	finish func(S) search.Evaluation) search.Objective {

	return func(idx [arch.NumParams]int) search.Evaluation {
		cfg, st, ok := prep(idx)
		if !ok {
			return search.Evaluation{}
		}
		for _, w := range workloads {
			plan, err := plans.get(w, cfg.NativeBatch, simFP, simOpts)
			if err != nil {
				return search.Evaluation{}
			}
			r, err := plan.Evaluate(cfg)
			if err != nil {
				return search.Evaluation{}
			}
			if !fold(r, &st) {
				return search.Evaluation{}
			}
		}
		return finish(st)
	}
}

// batchObjectiveOver is objectiveOver's batched twin, built from the
// same hooks so both paths cannot diverge: designs surviving prep are
// grouped by NativeBatch (a searched hyperparameter that selects the
// compiled plan) and routed through Plan.EvaluateBatch one workload at
// a time, dropping a design from later workloads as soon as an earlier
// one proves it infeasible — mirroring the per-point short-circuit.
// Transcript equality with the per-point path is asserted by the
// per-algorithm batch differential tests.
func batchObjectiveOver[S any](workloads []string, simFP string, simOpts sim.Options,
	prep func(idx [arch.NumParams]int) (*arch.Config, S, bool),
	fold func(*sim.Result, *S) bool,
	finish func(S) search.Evaluation) search.BatchObjective {

	return func(idxs [][arch.NumParams]int) []search.Evaluation {
		evals := make([]search.Evaluation, len(idxs))
		type live struct {
			pos int
			cfg *arch.Config
			st  S
		}
		alive := make([]live, 0, len(idxs))
		for i, idx := range idxs {
			if cfg, st, ok := prep(idx); ok {
				alive = append(alive, live{pos: i, cfg: cfg, st: st})
			}
		}
		for _, w := range workloads {
			if len(alive) == 0 {
				break
			}
			groups := make(map[int64][]int)
			for ai := range alive {
				nb := alive[ai].cfg.NativeBatch
				groups[nb] = append(groups[nb], ai)
			}
			nbs := make([]int64, 0, len(groups))
			for nb := range groups {
				nbs = append(nbs, nb)
			}
			slices.Sort(nbs)
			dead := make(map[int]bool)
			for _, nb := range nbs {
				ais := groups[nb]
				plan, err := plans.get(w, nb, simFP, simOpts)
				if err != nil {
					for _, ai := range ais {
						dead[ai] = true
					}
					continue
				}
				cfgs := make([]*arch.Config, len(ais))
				for k, ai := range ais {
					cfgs[k] = alive[ai].cfg
				}
				results, err := plan.EvaluateBatch(cfgs)
				if err != nil {
					for _, ai := range ais {
						dead[ai] = true
					}
					continue
				}
				for k, ai := range ais {
					if !fold(results[k], &alive[ai].st) {
						dead[ai] = true
					}
				}
			}
			next := alive[:0]
			for ai := range alive {
				if !dead[ai] {
					next = append(next, alive[ai])
				}
			}
			alive = next
		}
		for _, l := range alive {
			evals[l.pos] = finish(l.st)
		}
		return evals
	}
}

func shortName(ws []string) string {
	if len(ws) == 1 {
		return ws[0]
	}
	return fmt.Sprintf("multi%d", len(ws))
}

// EvaluateDesign simulates a fixed design across workloads with the given
// options (used by the Table 5/6 and Figure 9/10 harnesses). Compiled
// plans come from the process-wide cache shared with Study.Run, so
// re-evaluating a design after a search recompiles nothing; the
// per-workload evaluations (full exact-ILP fusion solves when opts asks
// for them) run concurrently, one worker per CPU.
func EvaluateDesign(cfg *arch.Config, workloads []string, opts sim.Options) ([]WorkloadResult, error) {
	return evaluateParallel(0, workloads, cfg, opts)
}

// GeoMean returns the geometric mean of f over the results.
func GeoMean(results []WorkloadResult, f func(*sim.Result) float64) float64 {
	if len(results) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range results {
		v := f(r.Result)
		if v <= 0 {
			return 0
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(results)))
}
