package core

// Multi-objective (Pareto-front) studies.
//
// The paper's headline results are trade-off curves, not single points:
// designs are compared by Perf/TDP under area and power budgets, and
// whole frontiers feed the ROI/TCO analysis (§5.1, Figure 12). A study
// with Objectives set searches all of its targets at once — the
// NSGA-II optimizer keeps a diverse non-dominated population, and the
// Pareto front of the full trial history is returned with per-point
// workload results. All objectives of a trial derive from the same
// simulation per (design, workload), so a 3-objective study costs the
// same plan evaluations as a 1-objective one.

import (
	"context"
	"fmt"
	"math"
	"sort"

	"fast/internal/arch"
	"fast/internal/power"
	"fast/internal/search"
	"fast/internal/sim"
)

// DefaultFrontCap is the default bound on a study's returned Pareto
// front (crowding-distance pruning keeps the most spread-out points).
const DefaultFrontCap = 32

// FrontPoint is one design on a multi-objective study's Pareto front.
type FrontPoint struct {
	// Index is the design's hyperparameter vector.
	Index [arch.NumParams]int
	// Design is the decoded configuration.
	Design *arch.Config
	// Values are the raw objective values in Study.Objectives order and
	// natural units (QPS, QPS/W, watts, mm²; geomean across workloads
	// for the per-workload metrics), as scored by the search's software
	// stack — these are the values dominance was decided on.
	Values []float64
	// PerWorkload re-simulates the design on each workload with the
	// full (ILP-backed) fusion solve. Empty when the run was canceled.
	PerWorkload []WorkloadResult
}

// Front returns the study's Pareto front, sorted by descending first
// objective (raw-value order for minimization targets follows suit:
// best first). Empty for scalar studies and when no feasible design
// was found.
func (r *StudyResult) Front() []FrontPoint { return r.front }

// rawValue converts a maximize-oriented search value back to the
// objective's natural units.
func rawValue(o ObjectiveKind, v float64) float64 {
	if o.Maximize() {
		return v
	}
	return -v
}

// runMulti executes the multi-objective arm of Study.Run. rc, base, pm,
// budget and simOpts carry Run's resolved defaults.
func (s *Study) runMulti(ctx context.Context, rc runConfig, base *arch.Config, pm *power.Model,
	budget power.Budget, simOpts sim.Options) (*StudyResult, error) {

	seen := map[ObjectiveKind]bool{}
	for _, o := range s.Objectives {
		if o < PerfPerTDP || o > Area {
			return nil, fmt.Errorf("core: unknown objective kind %d", o)
		}
		if seen[o] {
			// A repeated objective would double-weight itself in
			// dominance and collapse in keyed outputs.
			return nil, fmt.Errorf("core: duplicate objective %s", o)
		}
		seen[o] = true
	}

	objective, batchObjective := s.makeMultiObjectives(base, pm, budget, simOpts, simOpts.Fingerprint())
	if rc.dispatch != nil {
		batchObjective = rc.dispatch(ctx, s.evalSpec(base, budget, simOpts), batchObjective)
	}

	alg := s.Algorithm
	if alg == "" {
		alg = search.AlgNSGA2
	}
	runner, prior, err := s.buildRunner(rc, alg, objective, batchObjective)
	if err != nil {
		return nil, err
	}
	sr, runErr := runner.Run(ctx)
	sr = mergePrior(prior, sr)

	// The front is the non-dominated subset of the full history — not
	// of the optimizer's final population — folded in deterministic
	// tell order, so it is identical at any parallelism and no early
	// discovery is lost to population churn.
	frontCap := s.FrontCap
	if frontCap == 0 {
		frontCap = DefaultFrontCap
	}
	archive := search.NewParetoArchive(frontCap)
	for _, tr := range sr.History {
		archive.Add(tr)
	}

	out := &StudyResult{Search: sr}
	space := arch.Space{}
	front := archive.Front()
	sort.SliceStable(front, func(a, b int) bool { return front[a].Values[0] > front[b].Values[0] })
	for i, tr := range front {
		raw := make([]float64, len(tr.Values))
		for k, v := range tr.Values {
			raw[k] = rawValue(s.Objectives[k], v)
		}
		cfg := space.Decode(tr.Index, base)
		cfg.Name = fmt.Sprintf("fast-front%02d-%s", i, shortName(s.Workloads))
		out.front = append(out.front, FrontPoint{Index: tr.Index, Design: cfg, Values: raw})
	}
	if sr.Best.Feasible {
		out.BestValue = rawValue(s.Objectives[0], sr.Best.Value)
		out.Best = space.Decode(sr.Best.Index, base)
		out.Best.Name = fmt.Sprintf("fast-%s-%s", s.Objectives[0], shortName(s.Workloads))
	}
	if runErr != nil {
		// Canceled: hand back the front of the partial history without
		// the final re-simulations.
		return out, runErr
	}

	// Final evaluation of every front point with the full ILP fusion
	// solve, through the process-wide plan cache (one compile per
	// (workload, batch); fusion placements memoized across points that
	// share the relevant parameter sub-tuple). The (point, workload)
	// pairs are independent exact ILPs, so the whole cross product fans
	// out across one ForEach pool; results land in index-addressed slots,
	// keeping the front identical at any parallelism.
	finalOpts := simOpts
	finalOpts.Fusion.GreedyOnly = false
	finalFP := finalOpts.Fingerprint()
	nw := len(s.Workloads)
	for i := range out.front {
		out.front[i].PerWorkload = make([]WorkloadResult, nw)
	}
	errs := make([]error, len(out.front)*nw)
	ForEach(rc.parallelism, len(out.front)*nw, func(k int) {
		pt, w := &out.front[k/nw], s.Workloads[k%nw]
		plan, err := plans.get(w, pt.Design.NativeBatch, finalFP, finalOpts)
		if err != nil {
			errs[k] = err
			return
		}
		r, err := plan.Evaluate(pt.Design)
		if err != nil {
			errs[k] = err
			return
		}
		pt.PerWorkload[k%nw] = WorkloadResult{Name: w, Result: r}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// makeMultiObjectives builds the vector-objective evaluation closures.
// They follow the scalar makeObjectives pipeline exactly — decode →
// budget → per-workload simulate → geomean — but score every objective
// of s.Objectives from the one simulation each (design, workload) pair
// already needs: the performance metrics fold per-workload results into
// per-objective log-sums, while TDP and area read the power breakdown
// computed during the budget check. Values are maximize-oriented
// (minimization targets negated) per the search.Evaluation convention,
// and Value mirrors Values[0] so scalar drivers (Result.Best, the
// convergence curve) track the first objective. With a single
// performance objective the arithmetic is operation-for-operation the
// scalar closure's, which keeps 1-element studies on bit-identical
// trajectories.
func (s *Study) makeMultiObjectives(base *arch.Config, pm *power.Model, budget power.Budget,
	simOpts sim.Options, simFP string) (search.Objective, search.BatchObjective) {

	objs := s.Objectives
	space := arch.Space{}

	// multiState is the per-design fold state: the power breakdown from
	// the budget check (feeding the cost objectives for free) plus one
	// running log-sum per performance objective.
	type multiState struct {
		bd     power.Breakdown
		logSum []float64
	}

	// prep decodes and applies the workload-independent constraints,
	// keeping the power breakdown for the cost objectives.
	prep := func(idx [arch.NumParams]int) (*arch.Config, multiState, bool) {
		cfg := space.Decode(idx, base)
		if err := cfg.Validate(); err != nil {
			return nil, multiState{}, false
		}
		eval := pm.Evaluate(cfg)
		if eval.TotalPower() > budget.MaxTDPW || eval.TotalArea() > budget.MaxAreaMM2 {
			return nil, multiState{}, false
		}
		return cfg, multiState{bd: eval, logSum: make([]float64, len(objs))}, true
	}
	// fold scores one workload result into the per-objective running
	// log-sums; false means the design failed Eq. 5 or the latency
	// bound on this workload.
	fold := func(r *sim.Result, st *multiState) bool {
		if r.ScheduleFailed || r.QPS <= 0 {
			return false
		}
		if s.LatencyBoundSec > 0 && r.LatencySec > s.LatencyBoundSec {
			return false
		}
		for k, o := range objs {
			var v float64
			switch o {
			case Perf:
				v = r.QPS
			case PerfPerTDP:
				v = r.PerfPerTDP
			default:
				continue // design-level objective, no per-workload term
			}
			if v <= 0 {
				return false
			}
			st.logSum[k] += math.Log(v)
		}
		return true
	}
	// finish assembles the maximize-oriented objective vector.
	finish := func(st multiState) search.Evaluation {
		vals := make([]float64, len(objs))
		for k, o := range objs {
			switch o {
			case TDP:
				vals[k] = -st.bd.TotalPower()
			case Area:
				vals[k] = -st.bd.TotalArea()
			default:
				vals[k] = math.Exp(st.logSum[k] / float64(len(s.Workloads)))
			}
		}
		return search.Evaluation{Value: vals[0], Values: vals, Feasible: true}
	}

	return objectiveOver(s.Workloads, simFP, simOpts, prep, fold, finish),
		batchObjectiveOver(s.Workloads, simFP, simOpts, prep, fold, finish)
}
