package core

import (
	"context"
	"sync"
	"testing"

	"fast/internal/arch"
	"fast/internal/power"
	"fast/internal/search"
	"fast/internal/sim"
)

func TestStudyValidation(t *testing.T) {
	if _, err := (&Study{Trials: 10}).Run(context.Background()); err == nil {
		t.Error("empty workloads must error")
	}
	if _, err := (&Study{Workloads: []string{"efficientnet-b0"}}).Run(context.Background()); err == nil {
		t.Error("zero trials must error")
	}
	if _, err := (&Study{Workloads: []string{"nope"}, Trials: 5}).Run(context.Background()); err == nil {
		t.Error("unknown workload must error")
	}
}

func TestSingleWorkloadSearchBeatsTPUBaseline(t *testing.T) {
	// The core claim (Fig. 10): a modest-budget search finds a design with
	// higher Perf/TDP than the die-shrunk TPU-v3 on EfficientNet-B0.
	st := &Study{
		Workloads: []string{"efficientnet-b0"},
		Objective: PerfPerTDP,
		Algorithm: search.AlgLCS,
		Trials:    60,
		Seed:      1,
	}
	res, err := st.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no feasible design found")
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatalf("best design invalid: %v", err)
	}
	base, err := EvaluateDesign(arch.DieShrunkTPUv3(), []string{"efficientnet-b0"}, sim.BaselineOptions())
	if err != nil {
		t.Fatal(err)
	}
	gain := res.PerWorkload[0].Result.PerfPerTDP / base[0].Result.PerfPerTDP
	if gain < 1.5 {
		t.Errorf("searched design Perf/TDP gain = %.2fx, want > 1.5x (paper: ~6x for EfficientNets)", gain)
	}
	// Constraint check (Eq. 4).
	pm := power.Default()
	b := power.DefaultBudget(pm)
	if !b.Within(pm, res.Best) {
		t.Error("best design violates the budget")
	}
}

func TestMultiWorkloadGeoMeanObjective(t *testing.T) {
	st := &Study{
		Workloads: []string{"efficientnet-b0", "resnet50"},
		Objective: PerfPerTDP,
		Algorithm: search.AlgRandom,
		Trials:    40,
		Seed:      2,
	}
	res, err := st.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no feasible design")
	}
	if len(res.PerWorkload) != 2 {
		t.Fatalf("per-workload results = %d", len(res.PerWorkload))
	}
	// The study value must equal the geomean of per-trial metrics within
	// greedy-vs-ILP slack.
	gm := GeoMean(res.PerWorkload, func(r *sim.Result) float64 { return r.PerfPerTDP })
	if gm < res.BestValue*0.9 {
		t.Errorf("final geomean %.3g far below search value %.3g", gm, res.BestValue)
	}
}

func TestLatencyBound(t *testing.T) {
	// A very tight latency bound must constrain the chosen design (all
	// results obey it), or make the study infeasible.
	st := &Study{
		Workloads:       []string{"efficientnet-b0"},
		Objective:       Perf,
		Algorithm:       search.AlgRandom,
		Trials:          40,
		Seed:            3,
		LatencyBoundSec: 0.015,
	}
	res, err := st.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != nil {
		for _, wr := range res.PerWorkload {
			if wr.Result.LatencySec > 0.015*1.05 {
				t.Errorf("latency bound violated: %.1fms", wr.Result.LatencySec*1e3)
			}
		}
	}
}

func TestPerfObjectiveFillsBudget(t *testing.T) {
	// §6.2.1: "when provided with pure performance as the objective, FAST
	// successfully finds large designs that come close to our maximum
	// area and TDP constraints". Perf-optimal designs should sit much
	// closer to the budget than Perf/TDP-optimal ones.
	run := func(obj ObjectiveKind) *arch.Config {
		res, err := (&Study{
			Workloads: []string{"efficientnet-b0"},
			Objective: obj,
			Algorithm: search.AlgLCS,
			Trials:    80,
			Seed:      4,
		}).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.Best == nil {
			t.Fatal("no design")
		}
		return res.Best
	}
	pm := power.Default()
	b := power.DefaultBudget(pm)
	perf := pm.TDP(run(Perf)) / b.MaxTDPW
	eff := pm.TDP(run(PerfPerTDP)) / b.MaxTDPW
	if perf < eff {
		t.Errorf("perf-optimal TDP share %.2f should be >= perf/TDP-optimal %.2f", perf, eff)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() float64 {
		res, err := (&Study{
			Workloads: []string{"efficientnet-b0"},
			Objective: PerfPerTDP,
			Algorithm: search.AlgBayes,
			Trials:    25,
			Seed:      5,
		}).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res.BestValue
	}
	if run() != run() {
		t.Error("study not deterministic at fixed seed")
	}
}

func TestGeoMean(t *testing.T) {
	id := func(r *sim.Result) float64 { return r.QPS }
	if GeoMean(nil, id) != 0 {
		t.Error("empty geomean must be 0")
	}
	rs := []WorkloadResult{
		{Name: "a", Result: &sim.Result{QPS: 4}},
		{Name: "b", Result: &sim.Result{QPS: 16}},
	}
	if g := GeoMean(rs, id); g < 7.99 || g > 8.01 {
		t.Errorf("geomean = %f, want 8", g)
	}
	rs[1].Result.QPS = 0
	if GeoMean(rs, id) != 0 {
		t.Error("non-positive values must zero the geomean")
	}
}

func TestPlanCacheSharing(t *testing.T) {
	fast := sim.FASTOptions()
	fp := fast.Fingerprint()
	p1, err := plans.get("efficientnet-b0", 128, fp, fast)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := plans.get("efficientnet-b0", 128, fp, fast)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("same (workload, batch, fingerprint) must share one compiled plan")
	}
	base := sim.BaselineOptions()
	p3, err := plans.get("efficientnet-b0", 128, base.Fingerprint(), base)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Error("different option fingerprints must compile distinct plans")
	}
	p4, err := plans.get("efficientnet-b0", 64, fp, fast)
	if err != nil {
		t.Fatal(err)
	}
	if p4 == p1 {
		t.Error("different batches must compile distinct plans")
	}
	if _, err := plans.get("no-such-model", 128, fp, fast); err == nil {
		t.Error("unknown workload must error")
	}
}

func TestPlanCacheConcurrent(t *testing.T) {
	// Many goroutines requesting the same fresh key must all receive the
	// single compiled plan (compile-once under -race).
	fast := sim.FASTOptions()
	fast.Fusion.Window = 3 // unique options → fresh cache entry
	fp := fast.Fingerprint()
	const workers = 8
	got := make([]*sim.Plan, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p, err := plans.get("resnet50", 128, fp, fast)
			if err != nil {
				t.Error(err)
				return
			}
			got[w] = p
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if got[w] != got[0] {
			t.Fatalf("worker %d received a different plan", w)
		}
	}
}
