package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"fast/internal/arch"
	"fast/internal/fault"
	"fast/internal/search"
)

// sortIndexVectors orders hyperparameter vectors lexicographically, so
// near-identical proposals (adaptive optimizers mutate a few coordinates
// around incumbents) become neighbours before the batch is chunked.
func sortIndexVectors(work [][arch.NumParams]int) {
	sort.Slice(work, func(a, b int) bool {
		for d := 0; d < arch.NumParams; d++ {
			if work[a][d] != work[b][d] {
				return work[a][d] < work[b][d]
			}
		}
		return false
	})
}

// DefaultBatchSize is the Runner's ask/tell batch width. It matches the
// LCS swarm, so one batch is one swarm generation.
const DefaultBatchSize = 16

// maxObjectiveChunk bounds how many points one BatchObjective call may
// receive, so context cancellation is honoured at chunk rather than
// whole-batch granularity even under very large custom batch sizes.
const maxObjectiveChunk = 64

// Runner pumps a search.Optimizer with a bounded worker pool. It is the
// concurrency substrate of Study.Run, usable directly for custom
// objectives.
//
// Determinism: the optimizer transcript depends only on BatchSize —
// batches are asked whole, evaluated (possibly concurrently), and told
// back in ask order. Parallelism changes wall-clock time, never the
// transcript, so a run with a fixed seed yields bit-identical results at
// any worker count.
//
// Memoization: objective evaluations are cached by hyperparameter index
// vector for the lifetime of one Run. Adaptive optimizers (LCS, Bayes)
// revisit points constantly late in a search; revisits replay the cached
// evaluation instead of re-simulating, while still counting as trials
// and being told to the optimizer.
type Runner struct {
	// Optimizer proposes candidates; required.
	Optimizer search.Optimizer
	// Objective evaluates one candidate; required. It must be safe for
	// concurrent calls when Parallelism > 1, and deterministic per index
	// vector (memoization replays the first evaluation of a point).
	Objective search.Objective
	// BatchObjective, if non-nil, evaluates whole ask-batches instead of
	// per-point Objective calls: the Runner sorts each batch's unique
	// points lexicographically (grouping near-identical proposals so a
	// stage-memoizing evaluator hits warm caches) and fans contiguous
	// chunks across the worker pool. It must agree with Objective on
	// every point — the transcript, and therefore the search trajectory,
	// is identical with or without it.
	BatchObjective search.BatchObjective
	// Trials bounds the total evaluation count.
	Trials int
	// Parallelism bounds concurrent Objective calls; <= 0 uses
	// runtime.GOMAXPROCS(0).
	Parallelism int
	// BatchSize is the ask/tell batch width; <= 0 uses DefaultBatchSize.
	// Unlike Parallelism it is algorithmic state: changing it changes
	// the optimizer transcript (and therefore the search trajectory).
	BatchSize int
	// OnTrial, if non-nil, observes every trial in deterministic tell
	// order from the driving goroutine.
	OnTrial func(search.Trial)
	// OnBatch, if non-nil, observes every fully told ask batch, in
	// transcript order, from the driving goroutine, immediately after
	// the optimizer's Tell and before the per-trial OnTrial calls. It is
	// the checkpoint seam: a batch handed to OnBatch is durable search
	// state — the optimizer has consumed it, and replaying the batches
	// seen so far (search.Restore) reproduces the optimizer exactly.
	OnBatch func(batch []search.Trial)
	// Completed is the number of trials a resumed run has already
	// evaluated (through an earlier Run whose batches were
	// checkpointed). The Runner performs Trials-Completed further
	// evaluations, and — because the ask-batch schedule depends only on
	// the running done-count — asks them in the exact sizes the
	// uninterrupted run would have used, which is what makes
	// kill-restart-resume transcripts bit-identical.
	Completed int
	// Warm seeds the memoization cache with previously evaluated trials
	// (a resumed run's prior history), so revisits of old points replay
	// the recorded evaluation instead of re-simulating. Purely a
	// performance hint: the objective is deterministic per index vector,
	// so omitting Warm changes wall-clock time, never the transcript.
	Warm []search.Trial
}

// runChunk evaluates one chunk, converting a panicking objective into
// an error (classified terminal: re-evaluating the same points panics
// again) instead of letting it unwind the worker goroutine and kill the
// whole process.
func runChunk(batchObj search.BatchObjective, idxs [][arch.NumParams]int) (evs []search.Evaluation, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fault.FromPanic("core.objective", r)
		}
	}()
	return batchObj(idxs), nil
}

// Run executes up to r.Trials evaluations. On context cancellation it
// stops promptly — in-flight evaluations finish, the unfinished batch is
// abandoned untold — and returns the partial history together with
// ctx.Err(). A panicking Objective/BatchObjective does not crash the
// process: the panic surfaces as Run's returned error (terminal under
// the fault taxonomy) with the already-told batches intact.
func (r *Runner) Run(ctx context.Context) (search.Result, error) {
	var res search.Result
	if r.Optimizer == nil || r.Objective == nil {
		return res, fmt.Errorf("core: Runner needs an Optimizer and an Objective")
	}
	par := r.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	batch := r.BatchSize
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	cache := make(map[[arch.NumParams]int]search.Evaluation)
	for _, t := range r.Warm {
		// First observation wins, matching the cache's own discipline
		// (duplicates in a history carry identical evaluations anyway).
		if _, ok := cache[t.Index]; !ok {
			cache[t.Index] = t.Evaluation
		}
	}

	for done := r.Completed; done < r.Trials; {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		n := batch
		if rem := r.Trials - done; n > rem {
			n = rem
		}
		asks := r.Optimizer.Ask(n)
		if len(asks) == 0 {
			// Exhausted optimizer (e.g. a finite grid): a normal early
			// end, mirroring search.Drive.
			return res, nil
		}

		// Collapse the batch to unique uncached points: slots[i] holds
		// the evaluation for asks[i]; work lists the points to compute.
		evals := make([]search.Evaluation, len(asks))
		fill := make(map[[arch.NumParams]int][]int)
		var work [][arch.NumParams]int
		for i, idx := range asks {
			if ev, ok := cache[idx]; ok {
				evals[i] = ev
				continue
			}
			if _, seen := fill[idx]; !seen {
				work = append(work, idx)
			}
			fill[idx] = append(fill[idx], i)
		}

		if len(work) > 0 {
			outs := make([]search.Evaluation, len(work))
			workers := par
			if workers > len(work) {
				workers = len(work)
			}
			// One worker-pool shape serves both evaluation modes: workers
			// pull contiguous chunks off an atomic cursor, checking
			// cancellation between chunks. A per-point Objective is just a
			// BatchObjective with chunk size 1; a real BatchObjective gets
			// the unique points sorted so proposals that share parameter
			// sub-tuples become neighbours, in chunks bounded by
			// maxObjectiveChunk so large custom BatchSizes still stop
			// promptly on cancellation. Results are keyed by index
			// vector, so neither sorting nor chunking reaches the
			// transcript.
			batchObj := r.BatchObjective
			chunk := 1
			if batchObj != nil {
				sortIndexVectors(work)
				chunk = (len(work) + workers - 1) / workers
				if chunk > maxObjectiveChunk {
					chunk = maxObjectiveChunk
				}
			} else {
				batchObj = func(idxs [][arch.NumParams]int) []search.Evaluation {
					evs := make([]search.Evaluation, len(idxs))
					for i, idx := range idxs {
						evs[i] = r.Objective(idx)
					}
					return evs
				}
			}
			nChunks := (len(work) + chunk - 1) / chunk
			var next atomic.Int64
			next.Store(-1)
			// A panicking objective must not kill the process: the worker
			// converts the panic to an error, the remaining workers drain
			// via the quarantine context, and Run returns the error so the
			// caller can fail just this study. The batch is abandoned
			// untold, exactly as on cancellation, so the durable
			// transcript stays a prefix of the unfaulted run's.
			workCtx, stopWork := context.WithCancel(ctx)
			var panicOnce sync.Once
			var panicErr error
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						ci := int(next.Add(1))
						if ci >= nChunks || workCtx.Err() != nil {
							return
						}
						lo := ci * chunk
						hi := lo + chunk
						if hi > len(work) {
							hi = len(work)
						}
						got, err := runChunk(batchObj, work[lo:hi])
						if err == nil && len(got) != hi-lo {
							err = fmt.Errorf("core: BatchObjective returned %d evaluations for %d points", len(got), hi-lo)
						}
						if err != nil {
							panicOnce.Do(func() {
								panicErr = err
								stopWork()
							})
							return
						}
						copy(outs[lo:hi], got)
					}
				}()
			}
			wg.Wait()
			stopWork()
			if panicErr != nil {
				return res, panicErr
			}
			if err := ctx.Err(); err != nil {
				// Abandon the batch: some points may be unevaluated, and
				// telling a partial batch would make the transcript
				// depend on timing.
				return res, err
			}
			for j, idx := range work {
				cache[idx] = outs[j]
				for _, slot := range fill[idx] {
					evals[slot] = outs[j]
				}
			}
		}

		trials := make([]search.Trial, len(asks))
		for i, idx := range asks {
			trials[i] = search.Trial{Index: idx, Evaluation: evals[i]}
		}
		r.Optimizer.Tell(trials)
		if r.OnBatch != nil {
			r.OnBatch(trials)
		}
		for _, t := range trials {
			res.Observe(t)
			if r.OnTrial != nil {
				r.OnTrial(t)
			}
		}
		done += len(asks)
	}
	return res, nil
}
