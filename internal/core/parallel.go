package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(0) … fn(n-1) across a bounded worker pool and waits
// for all of them. parallelism <= 0 uses one worker per available CPU
// (the same convention as Runner.Parallelism, whose worker-pool shape
// this reuses: workers pull indices off an atomic cursor, so uneven job
// costs balance without chunking).
//
// It exists for the full-ILP reporting fan-outs — Study.Run's final
// winner re-simulation, StudyResult.Front()'s per-point workload
// results, the experiment tables — where each job is an independent
// exact-ILP fusion solve against immutable shared plans. fn must be
// safe for concurrent calls and should communicate through index-slotted
// results, keeping output order (and therefore every report) identical
// at any parallelism.
func ForEach(parallelism, n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	if parallelism == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
