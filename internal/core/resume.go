package core

// Durable, resumable studies.
//
// A study's search state is exactly its ask/tell transcript (see
// internal/search/snapshot.go), so checkpointing a study means recording
// every told batch, and resuming means rebuilding the optimizer from the
// recorded transcript and continuing with the remaining trial budget.
// Two Run options expose the seam:
//
//   - WithTranscript registers the checkpoint hook: every fully told
//     ask batch, in transcript order, from the driving goroutine.
//     internal/store appends each batch as one fsync'd JSON line.
//
//   - WithResume warm-starts a Run from a search.Snapshot: the optimizer
//     is restored by transcript replay, prior evaluations seed the
//     memoization cache, and the prior history is folded back into the
//     returned StudyResult — so an interrupted study resumed in a fresh
//     process returns a transcript (and Pareto front, which is a pure
//     fold of the history) bit-identical to an uninterrupted run's.
//
// Raising Study.Trials before a resumed Run warm-continues the search
// with more trials: the restored optimizer keeps its original annealing
// horizon (snapshot Budget), and the extra trials extend the transcript.
// The differential tests in resume_test.go pin the bit-identical claim
// per algorithm at parallelism 1 and 4.

import (
	"fmt"

	"fast/internal/search"
)

// WithTranscript registers f as the checkpoint hook of one Run: it
// observes every fully told ask batch, in transcript order, from the
// driving goroutine (no locking needed), immediately after the
// optimizer consumed the batch. Feeding the batches to
// (*search.Snapshot).Append — or persisting them with internal/store —
// captures everything needed to resume the study with WithResume.
//
// On a resumed Run, f observes only the batches evaluated by that Run;
// the caller already holds the prior ones.
func WithTranscript(f func(batch []search.Trial)) Option {
	return func(c *runConfig) { c.onBatch = f }
}

// WithResume warm-starts the Run from a checkpoint snapshot: the
// optimizer is rebuilt in its recorded state (search.Restore), the
// snapshot's trials seed the memoization cache and count toward
// Study.Trials, and the returned StudyResult's history contains the
// prior trials followed by the newly evaluated ones — bit-identical to
// an uninterrupted run of the same study. Set Study.Trials above the
// snapshot's trial count to warm-continue a completed study with more
// trials; with Trials at or below it, Run evaluates nothing new and
// only re-derives the final result (including the full-ILP per-workload
// re-simulation), which is how a restarted process re-materializes a
// finished study's report from its checkpoint.
//
// The snapshot must match the study: same algorithm (after defaulting)
// and seed, or Run fails rather than silently forking the search.
func WithResume(snap search.Snapshot) Option {
	return func(c *runConfig) { c.resume = &snap }
}

// buildRunner assembles the Run's engine, restoring the optimizer from
// a resume snapshot when one was given. The returned prior slice holds
// the resumed trials (nil on a fresh run); callers fold it back into
// the result with mergePrior.
func (s *Study) buildRunner(rc runConfig, alg search.Algorithm,
	obj search.Objective, bobj search.BatchObjective) (*Runner, []search.Trial, error) {

	var opt search.Optimizer
	var prior []search.Trial
	if rc.resume != nil {
		snap := *rc.resume
		if snap.Algorithm != alg {
			return nil, nil, fmt.Errorf("core: resume snapshot was taken with algorithm %q, study uses %q", snap.Algorithm, alg)
		}
		if snap.Seed != s.Seed {
			return nil, nil, fmt.Errorf("core: resume snapshot was taken with seed %d, study uses %d", snap.Seed, s.Seed)
		}
		restored, err := search.Restore(snap)
		if err != nil {
			return nil, nil, err
		}
		opt = restored
		prior = snap.Trials
	} else {
		opt = search.New(alg, s.Seed, s.Trials)
	}
	return &Runner{
		Optimizer:      opt,
		Objective:      obj,
		BatchObjective: bobj,
		Trials:         s.Trials,
		Parallelism:    rc.parallelism,
		BatchSize:      rc.batchSize,
		OnTrial:        rc.progress,
		OnBatch:        rc.onBatch,
		Completed:      len(prior),
		Warm:           prior,
	}, prior, nil
}

// mergePrior folds a resumed run's prior history in front of the new
// one, re-deriving Best through the same Observe rule every driver
// uses — so the merged result is indistinguishable from an
// uninterrupted run's.
func mergePrior(prior []search.Trial, sr search.Result) search.Result {
	if len(prior) == 0 {
		return sr
	}
	var out search.Result
	for _, t := range prior {
		out.Observe(t)
	}
	for _, t := range sr.History {
		out.Observe(t)
	}
	return out
}
