package experiments

import (
	"fast/internal/arch"
	"fast/internal/core"
	"fast/internal/sim"
	"fast/internal/tensor"
)

// decodePhases are the two serving phases the decode experiment
// co-optimizes: the compute-bound prefill pass and the
// cache-bandwidth-bound autoregressive step at the same context.
var decodePhases = []string{"gpt2-prefill-1024", "gpt2-decode-1024"}

// heldKVMiB sums the KV-cache bytes the fusion solution holds resident
// in Global Memory.
func heldKVMiB(r *sim.Result) float64 {
	var held int64
	for ri := range r.Regions {
		if r.Fusion.KVOnChip[ri] {
			held += r.Regions[ri].KVBytes
		}
	}
	return tensor.MiB(held)
}

// DecodeServing reports the decoder-inference workload axis: GPT-2-small
// prefill and decode throughput per design, the KV-cache residency the
// fusion pass buys, and a prefill×decode co-optimized search winner —
// the two-phase analogue of the paper's multi-workload protocol.
func DecodeServing(o Options) Table {
	o = o.withDefaults()
	t := Table{
		ID:    "decode",
		Title: "Decoder serving: GPT-2-small prefill/decode throughput and KV residency",
		Header: []string{"Design", "Prefill tok/s", "Decode tok/s",
			"KV held (MiB)", "Decode stall %"},
		Notes: "Prefill runs at context 1024 (one inference = 1024 tokens); decode is one " +
			"token per step over a 1024-entry cache (36 MiB at batch 1). Shape target: " +
			"decode is memory-stalled everywhere, large-GM designs hold cache slabs " +
			"on chip, and the co-optimized design balances both phases rather than " +
			"winning either outright.",
	}
	addRow := func(name string, prefill, decode *sim.Result) {
		t.Rows = append(t.Rows, []string{
			name,
			f1(prefill.QPS * 1024),
			f1(decode.QPS),
			f1(heldKVMiB(decode)),
			f1(decode.MemStallPost * 100),
		})
	}
	// Reference designs: the baseline software stack on TPU-v3, the FAST
	// stack on the published large design and the decode-tuned variant.
	tpu := arch.DieShrunkTPUv3()
	basePre, baseDec := simPhases(o, tpu, sim.BaselineOptions())
	addRow(tpu.Name+" (baseline)", basePre, baseDec)
	for _, cfg := range []*arch.Config{arch.FASTLarge(), arch.FASTDecode()} {
		pre, dec := simPhases(o, cfg, o.fullILP())
		addRow(cfg.Name, pre, dec)
	}
	// Prefill×decode co-optimization: one multi-workload study whose
	// objective is the geomean QPS across both phases.
	res := runStudy(o, decodePhases, core.Perf, o.SearchTrials, o.Seed+300)
	if res.Best != nil {
		wr, err := core.EvaluateDesign(res.Best, decodePhases, o.fullILP())
		if err != nil {
			panic(err)
		}
		addRow("searched (co-opt)", wr[0].Result, wr[1].Result)
	}
	return t
}

// simPhases simulates both serving phases on one design, each at the
// design's native batch.
func simPhases(o Options, cfg *arch.Config, opts sim.Options) (prefill, decode *sim.Result) {
	res := simAll(o.Parallelism, []simJob{
		{decodePhases[0], cfg, opts},
		{decodePhases[1], cfg, opts},
	})
	return res[0], res[1]
}
