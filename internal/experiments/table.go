// Package experiments regenerates every table and figure in the paper's
// evaluation (see DESIGN.md's per-experiment index). Each generator
// returns a Table with the same rows/series the paper reports;
// cmd/fast-experiments prints them and bench_test.go times them.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	// Notes records paper-vs-measured commentary for EXPERIMENTS.md.
	Notes string
}

// String renders the table as aligned text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

// Markdown renders the table as GitHub markdown.
func (t Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "\n_%s_\n", t.Notes)
	}
	return b.String()
}

// Options sizes the expensive experiments. Zero values select defaults
// suitable for the bench harness; cmd/fast-experiments raises them.
type Options struct {
	// SearchTrials per search study (default 120).
	SearchTrials int
	// ConvergenceTrials per Figure 11 curve (default 150).
	ConvergenceTrials int
	// Repeats per heuristic for Figure 11 (default 3; paper uses 5).
	Repeats int
	// Seed for determinism.
	Seed int64
	// Parallelism bounds concurrent candidate evaluations per study and
	// concurrent reporting simulations per table (0 = one worker per
	// CPU). Search trajectories are identical at any setting; reporting
	// cells are too unless a wall-clock ILPDeadline expires mid-solve
	// under contention (the cell then shows the greedy-seeded incumbent
	// instead of the proven optimum).
	Parallelism int
	// ILPDeadline bounds each exact fusion-ILP solve on the reporting
	// paths (default 1s). A deadline hit reports the greedy-seeded
	// incumbent with its optimality gap instead of failing the table.
	ILPDeadline time.Duration
}

func (o Options) withDefaults() Options {
	if o.SearchTrials == 0 {
		o.SearchTrials = 120
	}
	if o.ConvergenceTrials == 0 {
		o.ConvergenceTrials = 150
	}
	if o.Repeats == 0 {
		o.Repeats = 3
	}
	if o.ILPDeadline == 0 {
		o.ILPDeadline = time.Second
	}
	return o
}

// Registry maps experiment IDs to generators.
func Registry(o Options) map[string]func() Table {
	o = o.withDefaults()
	return map[string]func() Table{
		"table1":   Table1WorkingSets,
		"table2":   Table2OpBreakdown,
		"table4":   func() Table { return Table4ROIVolumes(o) },
		"table5":   func() Table { return Table5Designs(o) },
		"table6":   func() Table { return Table6Ablation(o) },
		"fig2":     Fig2StepTimeVsAccuracy,
		"fig3":     Fig3OpIntensity,
		"fig4":     Fig4PerLayerUtil,
		"fig5":     Fig5BERTBreakdown,
		"fig6":     Fig6ROICurves,
		"fig9":     func() Table { return Fig9Speedup(o) },
		"fig10":    func() Table { return Fig10PerfPerTDP(o) },
		"fig11":    func() Table { return Fig11Convergence(o) },
		"fig12":    func() Table { return Fig12Pareto(o) },
		"frontier": func() Table { return FrontierTradeoff(o) },
		"fig13":    func() Table { return Fig13FusionSweep(o) },
		"fig14":    func() Table { return Fig14PerLayerFAST(o) },
		"fig15":    func() Table { return Fig15Breakdown(o) },
		"decode":   func() Table { return DecodeServing(o) },
	}
}

// IDs lists the experiment identifiers in presentation order.
func IDs() []string {
	ids := []string{"table1", "table2", "fig2", "fig3", "fig4", "fig5", "fig6",
		"fig9", "fig10", "fig11", "fig12", "frontier", "fig13", "fig14", "fig15",
		"table4", "table5", "table6", "decode"}
	return ids
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// CSV renders the table as RFC-4180-ish CSV (fields with commas or
// quotes are quoted).
func (t Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
