package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"

	"fast/internal/arch"
	"fast/internal/core"
	"fast/internal/models"
	"fast/internal/power"
	"fast/internal/roi"
	"fast/internal/search"
	"fast/internal/sim"
)

// runStudy executes one FAST search study at the harness parallelism.
// The study's software stack carries the harness ILP deadline, so the
// final winner re-simulation (the study's exact-ILP pass) honours the
// same per-solve budget as the reporting tables.
func runStudy(o Options, workloads []string, obj core.ObjectiveKind, trials int, seed int64) *core.StudyResult {
	o = o.withDefaults()
	simOpts := sim.FASTOptions()
	simOpts.Fusion.Deadline = o.ILPDeadline
	res, err := (&core.Study{
		Workloads:  workloads,
		Objective:  obj,
		Algorithm:  search.AlgLCS,
		Trials:     trials,
		Seed:       seed,
		SimOptions: &simOpts,
	}).Run(context.Background(), core.WithParallelism(o.Parallelism))
	if err != nil {
		panic(err)
	}
	return res
}

// speedups runs the Figure 9/10 protocol: per-workload single-workload
// searches plus one multi-workload search, all measured against the
// die-shrunk TPU-v3 baseline with metric f.
type speedupRow struct {
	workload string
	schedOnly,
	single,
	multi float64
}

func searchSpeedups(o Options, obj core.ObjectiveKind, metric func(*sim.Result) float64) []speedupRow {
	suite := models.FullSuite()
	multiRes := runStudy(o, models.MultiWorkloadSuite(), obj, o.SearchTrials, o.Seed+1000)

	// Per-workload baseline and scheduling+fusion reporting sims: 2×|suite|
	// independent jobs (the sched column carries an exact-ILP fusion solve
	// on the TPU-v3 datapath), fanned out before the per-workload studies.
	tpu := arch.DieShrunkTPUv3()
	jobs := make([]simJob, 0, 2*len(suite))
	for _, w := range suite {
		jobs = append(jobs,
			simJob{w, tpu, sim.BaselineOptions()},
			simJob{w, tpu, o.fullILP()})
	}
	sims := simAll(o.Parallelism, jobs)

	// The multi-workload winner's per-workload exact-ILP evaluations are
	// independent too: one EvaluateDesign call over the whole suite fans
	// them out together instead of one serial solve per row.
	var multiWR []core.WorkloadResult
	if multiRes.Best != nil {
		var err error
		multiWR, err = core.EvaluateDesign(multiRes.Best, suite, o.fullILP())
		if err != nil {
			panic(err)
		}
	}

	var rows []speedupRow
	for i, w := range suite {
		base, sched := sims[2*i], sims[2*i+1]
		baseV := metric(base)

		// Single-workload search.
		single := runStudy(o, []string{w}, obj, o.SearchTrials, o.Seed+int64(i))
		singleV := 0.0
		if single.Best != nil {
			singleV = metric(single.PerWorkload[0].Result)
		}

		// Multi-workload design evaluated on this workload.
		multiV := 0.0
		if multiWR != nil && !multiWR[i].Result.ScheduleFailed {
			multiV = metric(multiWR[i].Result)
		}
		rows = append(rows, speedupRow{
			workload:  w,
			schedOnly: metric(sched) / baseV,
			single:    singleV / baseV,
			multi:     multiV / baseV,
		})
	}
	return rows
}

func geoMeanOf(rows []speedupRow, pick func(speedupRow) float64, subset map[string]bool) float64 {
	sum, n := 0.0, 0
	for _, r := range rows {
		if subset != nil && !subset[r.workload] {
			continue
		}
		v := pick(r)
		if v <= 0 {
			return 0
		}
		sum += math.Log(v)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

func speedupTable(id, title, note string, rows []speedupRow) Table {
	t := Table{
		ID:     id,
		Title:  title,
		Header: []string{"Workload", "FAST sched/fusion", "FAST search (single)", "FAST search (multi)"},
		Notes:  note,
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.workload, f2(r.schedOnly) + "x", f2(r.single) + "x", f2(r.multi) + "x",
		})
	}
	five := map[string]bool{}
	for _, w := range models.MultiWorkloadSuite() {
		five[w] = true
	}
	t.Rows = append(t.Rows, []string{"GeoMean",
		f2(geoMeanOf(rows, func(r speedupRow) float64 { return r.schedOnly }, nil)) + "x",
		f2(geoMeanOf(rows, func(r speedupRow) float64 { return r.single }, nil)) + "x",
		""})
	t.Rows = append(t.Rows, []string{"GeoMean-5",
		f2(geoMeanOf(rows, func(r speedupRow) float64 { return r.schedOnly }, five)) + "x",
		f2(geoMeanOf(rows, func(r speedupRow) float64 { return r.single }, five)) + "x",
		f2(geoMeanOf(rows, func(r speedupRow) float64 { return r.multi }, five)) + "x"})
	return t
}

// Fig9Speedup reproduces Figure 9: modeled inference throughput relative
// to TPU-v3 under the pure-performance objective.
func Fig9Speedup(o Options) Table {
	o = o.withDefaults()
	rows := searchSpeedups(o, core.Perf, func(r *sim.Result) float64 { return r.QPS })
	return speedupTable("fig9",
		"Throughput vs TPU-v3 (performance objective)",
		"Paper shape: scheduling/fusion alone ≈1.7x; single-workload search ≈3.8x "+
			"average with EfficientNets highest; multi-workload ≈3.1x on the 5-suite; "+
			"OCR stages gain least (already TPU-efficient).",
		rows)
}

// Fig10PerfPerTDP reproduces Figure 10: Perf/TDP relative to the
// die-shrunk TPU-v3 under the Perf/TDP objective.
func Fig10PerfPerTDP(o Options) Table {
	o = o.withDefaults()
	rows := searchSpeedups(o, core.PerfPerTDP, func(r *sim.Result) float64 { return r.PerfPerTDP })
	return speedupTable("fig10",
		"Perf/TDP vs die-shrunk TPU-v3 (Perf/TDP objective)",
		"Paper shape: 3.7x average across all workloads (EfficientNet 6.4x, BERT 2.7x), "+
			"2.4x for the multi-workload design on its 5-suite.",
		rows)
}

// Fig11Convergence reproduces Figure 11: best-so-far Perf/TDP on
// EfficientNet-B7 for the Bayesian, LCS and random heuristics (mean over
// repeats).
func Fig11Convergence(o Options) Table {
	o = o.withDefaults()
	t := Table{
		ID:     "fig11",
		Title:  "Search convergence on EfficientNet-B7 (mean best-so-far Perf/TDP vs TPU-v3)",
		Header: []string{"Trials", "Random", "LCS", "Bayesian"},
		Notes: "Paper shape: all heuristics converge; LCS overtakes beyond ~2000 trials " +
			"(here compressed into a smaller budget; LCS/Bayesian lead random).",
	}
	base := baselinePerfPerTDP("efficientnet-b7")
	algs := []search.Algorithm{search.AlgRandom, search.AlgLCS, search.AlgBayes}
	curves := make([][]float64, len(algs))
	for ai, alg := range algs {
		mean := make([]float64, o.ConvergenceTrials)
		for rep := 0; rep < o.Repeats; rep++ {
			res, err := (&core.Study{
				Workloads: []string{"efficientnet-b7"},
				Objective: core.PerfPerTDP,
				Algorithm: alg,
				Trials:    o.ConvergenceTrials,
				Seed:      o.Seed + int64(rep)*37,
			}).Run(context.Background(), core.WithParallelism(o.Parallelism))
			if err != nil {
				panic(err)
			}
			for i, v := range res.Search.BestSoFar() {
				if !math.IsNaN(v) {
					mean[i] += v / float64(o.Repeats)
				}
			}
		}
		curves[ai] = mean
	}
	points := []int{0, 1, 2, 3, 4, 6, 9} // fractions of the budget
	for _, p := range points {
		i := p * (o.ConvergenceTrials - 1) / 9
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", i+1),
			f2(curves[0][i] / base), f2(curves[1][i] / base), f2(curves[2][i] / base),
		})
	}
	return t
}

// Fig12Pareto reproduces Figure 12: the Pareto frontier of
// EfficientNet-B7 step time vs TDP and area, normalized to the die-shrunk
// TPU-v3 point (1.0, 1.0).
func Fig12Pareto(o Options) Table {
	o = o.withDefaults()
	t := Table{
		ID:     "fig12",
		Title:  "EfficientNet-B7 Pareto frontier: step time vs TDP / area (TPU-v3 = 1.0)",
		Header: []string{"Step time (rel)", "TDP (rel)", "Area (rel)"},
		Notes: "Paper shape: FAST finds a frontier strictly dominating the baseline " +
			"point, spanning embedded-class (tiny, slower) to datacenter-class designs.",
	}
	tpuCfg := arch.DieShrunkTPUv3()
	base, err := sim.Simulate(models.MustBuild("efficientnet-b7", tpuCfg.NativeBatch), tpuCfg, sim.BaselineOptions())
	if err != nil {
		panic(err)
	}
	baseStep := 1.0 / base.QPS

	// Sample the space and keep Pareto-optimal feasible points in the
	// (step time, TDP) plane.
	pm := power.Default()
	budget := power.DefaultBudget(pm)
	type point struct{ step, tdp, area float64 }
	var pts []point
	res, err := (&core.Study{
		Workloads: []string{"efficientnet-b7"},
		Objective: core.PerfPerTDP,
		Algorithm: search.AlgRandom,
		Trials:    o.SearchTrials * 2,
		Seed:      o.Seed + 5,
	}).Run(context.Background(), core.WithParallelism(o.Parallelism))
	if err != nil {
		panic(err)
	}
	space := arch.Space{}
	platform := core.DefaultPlatform()
	for _, tr := range res.Search.History {
		if !tr.Feasible {
			continue
		}
		cfg := space.Decode(tr.Index, platform)
		r, err := sim.Simulate(models.MustBuild("efficientnet-b7", cfg.NativeBatch), cfg, sim.FASTOptions())
		if err != nil || r.ScheduleFailed {
			continue
		}
		pts = append(pts, point{
			step: (1.0 / r.QPS) / baseStep,
			tdp:  r.TDPWatts / budget.MaxTDPW / (base.TDPWatts / budget.MaxTDPW),
			area: r.AreaMM2 / base.AreaMM2,
		})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].tdp < pts[j].tdp })
	bestStep := math.Inf(1)
	var frontier []point
	for _, p := range pts {
		if p.step < bestStep {
			bestStep = p.step
			frontier = append(frontier, p)
		}
	}
	for _, p := range frontier {
		t.Rows = append(t.Rows, []string{f3(p.step), f2(p.tdp), f2(p.area)})
	}
	t.Rows = append(t.Rows, []string{"1.000", "1.00", "1.00 (TPU-v3 baseline)"})
	return t
}

// FrontierTradeoff reproduces the paper's frontier reading of the
// Figure 12 / Table 5 data with one multi-objective study: the Pareto
// front of Perf/TDP against die area on EfficientNet-B7 (the FAST-Large
// / FAST-Small reference workload), normalized to the die-shrunk TPU-v3
// baseline, with the two published reference designs placed on the same
// axes. Unlike Fig12Pareto — which filters a scalar study's history
// after the fact — the frontier here is searched directly: NSGA-II
// keeps a non-dominated population, so the table is the study's
// Front(), not a post-hoc scan.
func FrontierTradeoff(o Options) Table {
	o = o.withDefaults()
	t := Table{
		ID:     "frontier",
		Title:  "Perf/TDP vs area Pareto frontier on EfficientNet-B7 (TPU-v3 = 1.0)",
		Header: []string{"Design", "Perf/TDP (rel)", "Area (rel)"},
		Notes: "Paper shape: the searched frontier dominates the baseline point and " +
			"brackets the published designs — FAST-Large near the big, fast end, " +
			"FAST-Small near the small end at higher efficiency per area.",
	}
	tpu := arch.DieShrunkTPUv3()
	base, err := sim.Simulate(models.MustBuild("efficientnet-b7", tpu.NativeBatch), tpu, sim.BaselineOptions())
	if err != nil {
		panic(err)
	}
	res, err := (&core.Study{
		Workloads:  []string{"efficientnet-b7"},
		Objectives: []core.ObjectiveKind{core.PerfPerTDP, core.Area},
		Trials:     o.SearchTrials,
		Seed:       o.Seed + 12,
		FrontCap:   8,
	}).Run(context.Background(), core.WithParallelism(o.Parallelism))
	if err != nil {
		panic(err)
	}
	for i, p := range res.Front() {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("front-%02d", i),
			f2(p.Values[0] / base.PerfPerTDP),
			f2(p.Values[1] / base.AreaMM2),
		})
	}
	for _, ref := range []*arch.Config{arch.FASTLarge(), arch.FASTSmall()} {
		r, err := sim.Simulate(models.MustBuild("efficientnet-b7", ref.NativeBatch), ref, sim.FASTOptions())
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{
			ref.Name,
			f2(r.PerfPerTDP / base.PerfPerTDP),
			f2(r.AreaMM2 / base.AreaMM2),
		})
	}
	t.Rows = append(t.Rows, []string{"tpu-v3-dieshrink (baseline)", "1.00", "1.00"})
	return t
}

// Fig6ROICurves reproduces Figure 6: ROI vs deployment volume for
// hypothetical Perf/TCO improvements.
func Fig6ROICurves() Table {
	t := Table{
		ID:     "fig6",
		Title:  "ROI vs deployment volume (A100-referenced cost model)",
		Header: []string{"Accelerators", "1.5x", "2x", "4x", "10x", "100x"},
		Notes: "Paper shape: volume dominates; every Perf/TCO > 1 becomes profitable " +
			"with enough units; returns diminish in S (8000 units at 1.5x beat 2000 at 100x).",
	}
	p := roi.Default()
	speedups := []float64{1.5, 2, 4, 10, 100}
	for _, n := range []float64{500, 1000, 2000, 4000, 8000, 16000, 32000} {
		row := []string{fmt.Sprintf("%.0f", n)}
		for _, s := range speedups {
			row = append(row, f2(p.ROI(s, n)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Table4ROIVolumes reproduces Table 4: deployment volumes required to
// reach 1x/2x/4x/8x ROI per workload, using the Figure 10 single-workload
// Perf/TDP speedups as the Perf/TCO proxy.
func Table4ROIVolumes(o Options) Table {
	o = o.withDefaults()
	t := Table{
		ID:     "table4",
		Title:  "Deployment volume for ROI targets (from searched Perf/TDP speedups)",
		Header: []string{"Target Workload", "Perf/TCO", "1x ROI", "2x ROI", "4x ROI", "8x ROI"},
		Notes: "Paper: break-even volumes 2,164-3,534 units for speedups 1.84-3.91x. " +
			"Speedups here come from this run's searches, so volumes shift with them; " +
			"the 1/(1-1/S) scaling and the 2-4k break-even band are the shape targets.",
	}
	p := roi.Default()
	workloads := []string{"efficientnet-b7", "resnet50", "ocr-rpn", "ocr-recognizer", "bert-128", "bert-1024"}
	addRow := func(name string, s float64) {
		row := []string{name, f2(s) + "x"}
		for _, target := range []float64{1, 2, 4, 8} {
			v := p.VolumeForROI(s, target)
			if math.IsInf(v, 1) {
				row = append(row, "∞")
			} else {
				row = append(row, fmt.Sprintf("%.0f", v))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	for i, w := range workloads {
		res := runStudy(o, []string{w}, core.PerfPerTDP, o.SearchTrials, o.Seed+int64(100+i))
		s := 0.0
		if res.Best != nil {
			s = res.PerWorkload[0].Result.PerfPerTDP / baselinePerfPerTDP(w)
		}
		addRow(w, s)
	}
	multi := runStudy(o, models.MultiWorkloadSuite(), core.PerfPerTDP, o.SearchTrials, o.Seed+200)
	if multi.Best != nil {
		s := core.GeoMean(multi.PerWorkload, func(r *sim.Result) float64 { return r.PerfPerTDP })
		baseGM := 1.0
		prod := 1.0
		for _, w := range models.MultiWorkloadSuite() {
			prod *= baselinePerfPerTDP(w)
		}
		baseGM = math.Pow(prod, 1.0/float64(len(models.MultiWorkloadSuite())))
		addRow("Multi-Workload", s/baseGM)
	}
	return t
}
