package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// tinyOpts compresses search budgets so the whole registry runs in test
// time.
var tinyOpts = Options{SearchTrials: 12, ConvergenceTrials: 12, Repeats: 1, Seed: 1,
	ILPDeadline: 200 * time.Millisecond}

func cell(t Table, row, col int) float64 {
	s := strings.Fields(t.Rows[row][col])[0]
	s = strings.TrimSuffix(s, "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		panic(err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry(tinyOpts)
	if len(reg) != len(IDs()) {
		t.Fatalf("registry has %d entries, IDs lists %d", len(reg), len(IDs()))
	}
	for _, id := range IDs() {
		if _, ok := reg[id]; !ok {
			t.Errorf("missing generator for %s", id)
		}
	}
}

func TestCheapExperimentsProduceRows(t *testing.T) {
	// Every non-search experiment must produce a non-empty, well-formed
	// table quickly.
	withTiny := func(gen func(Options) Table) func() Table {
		return func() Table { return gen(tinyOpts) }
	}
	cheap := []func() Table{
		Table1WorkingSets, Table2OpBreakdown, Fig2StepTimeVsAccuracy,
		Fig3OpIntensity, Fig4PerLayerUtil, Fig5BERTBreakdown,
		Fig6ROICurves, withTiny(Fig13FusionSweep), withTiny(Fig14PerLayerFAST),
		withTiny(Fig15Breakdown), withTiny(Table5Designs), withTiny(Table6Ablation),
	}
	for _, gen := range cheap {
		tab := gen()
		if len(tab.Rows) == 0 {
			t.Errorf("%s: no rows", tab.ID)
		}
		if tab.ID == "" || tab.Title == "" || tab.Notes == "" {
			t.Errorf("%s: missing metadata", tab.ID)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Header) {
				t.Errorf("%s: ragged row %v", tab.ID, row)
			}
		}
		if tab.String() == "" || tab.Markdown() == "" {
			t.Errorf("%s: renderers empty", tab.ID)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	tab := Table2OpBreakdown()
	// Row 0 is the largest runtime share; it must be depthwise with a
	// small FLOP share (Table 2's punchline).
	if tab.Rows[0][0] != "DepthwiseConv2dNative" {
		t.Fatalf("top runtime class = %s, want depthwise", tab.Rows[0][0])
	}
	if cell(tab, 0, 1) > 10 {
		t.Errorf("depthwise FLOP share = %s%%, want ~5%%", tab.Rows[0][1])
	}
	if cell(tab, 0, 2) < 35 {
		t.Errorf("depthwise runtime share = %s%%, want dominant", tab.Rows[0][2])
	}
}

func TestFig3Monotone(t *testing.T) {
	tab := Fig3OpIntensity()
	for _, row := range tab.Rows {
		var vals []float64
		for i := 2; i < len(row); i++ {
			v, err := strconv.ParseFloat(row[i], 64)
			if err != nil {
				t.Fatalf("bad cell %q", row[i])
			}
			vals = append(vals, v)
		}
		for i := 1; i < len(vals); i++ {
			if vals[i] < vals[i-1]-1e-6 {
				t.Errorf("%s batch %s: intensity not monotone across fusion levels: %v",
					row[0], row[1], vals)
			}
		}
	}
}

func TestFig5AttentionGrows(t *testing.T) {
	tab := Fig5BERTBreakdown()
	first := cell(tab, 0, 3) + cell(tab, 0, 4) // attention + softmax at seq 128
	last := cell(tab, len(tab.Rows)-1, 3) + cell(tab, len(tab.Rows)-1, 4)
	if last <= first {
		t.Errorf("attention share must grow with sequence length: %.1f → %.1f", first, last)
	}
	if last < 50 {
		t.Errorf("attention+softmax at seq 2048 = %.1f%%, want dominant", last)
	}
}

func TestFig13Directions(t *testing.T) {
	tab := Fig13FusionSweep(tinyOpts)
	// Within each row intensity must be non-decreasing in Global Memory;
	// within each (model, GM) column it must be non-increasing in batch.
	for _, row := range tab.Rows {
		prev := 0.0
		for i := 2; i < len(row); i++ {
			v, _ := strconv.ParseFloat(row[i], 64)
			if v < prev-1e-6 {
				t.Errorf("row %v: intensity decreased with more GM", row)
			}
			prev = v
		}
	}
	// Batch monotonicity holds in the capacity-constrained regime (the
	// paper's operating range): check the smallest GM column per model
	// and B7 at 128 MiB. Once every tensor fits, batching amortizes
	// weights instead and the trend legitimately flattens or reverses.
	checkCols := map[string]int{"efficientnet-b0": 2, "efficientnet-b7": 5}
	for model, col := range checkCols {
		prev := 1e18
		for _, row := range tab.Rows {
			if row[0] != model {
				continue
			}
			v, _ := strconv.ParseFloat(row[col], 64)
			if v > prev+1e-6 {
				t.Errorf("%s %s: intensity grew with batch in the constrained regime", model, tab.Header[col])
			}
			prev = v
		}
	}
}

func TestFig15AdditiveImprovements(t *testing.T) {
	tab := Fig15Breakdown(tinyOpts)
	prev := 0.0
	for i, row := range tab.Rows {
		v := cell(tab, i, 2)
		if v < prev-0.05 {
			t.Errorf("component %q regressed the stack: %.2f < %.2f", row[0], v, prev)
		}
		prev = v
	}
	// Fusion must be the large final jump.
	last := cell(tab, len(tab.Rows)-1, 2)
	beforeFusion := cell(tab, len(tab.Rows)-2, 2)
	if last < beforeFusion*1.5 {
		t.Errorf("fusion jump %.2f → %.2f too small", beforeFusion, last)
	}
}

func TestTable5Shape(t *testing.T) {
	tab := Table5Designs(tinyOpts)
	find := func(metric string) []string {
		for _, row := range tab.Rows {
			if row[0] == metric {
				return row
			}
		}
		t.Fatalf("missing row %q", metric)
		return nil
	}
	util := find("Compute Utilization")
	u := func(s string) float64 {
		v, _ := strconv.ParseFloat(s, 64)
		return v
	}
	if !(u(util[1]) < u(util[2]) && u(util[1]) < u(util[3])) {
		t.Errorf("FAST designs must out-utilize TPU-v3: %v", util)
	}
	perf := find("Normalized Perf/TDP")
	if u(perf[2]) < 2 || u(perf[3]) < 2 {
		t.Errorf("FAST designs must deliver ≥2x Perf/TDP: %v", perf)
	}
}

func TestTable6EveryComponentMatters(t *testing.T) {
	tab := Table6Ablation(tinyOpts)
	// Row 0 is unmodified FAST-Large; every later row must be worse on
	// EfficientNet-B7.
	base := cell(tab, 0, 1)
	for i := 1; i < len(tab.Rows); i++ {
		if v := cell(tab, i, 1); v >= base {
			t.Errorf("ablation %q did not hurt B7: %.2f >= %.2f", tab.Rows[i][0], v, base)
		}
	}
}

func TestDecodeServingShape(t *testing.T) {
	tab := DecodeServing(tinyOpts)
	if len(tab.Rows) < 3 {
		t.Fatalf("decode table has %d rows, want the baseline + 2 FAST designs", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		if cell(tab, i, 1) <= cell(tab, i, 2) {
			t.Errorf("%s: prefill tok/s %s not above decode tok/s %s", row[0], row[1], row[2])
		}
	}
	// Decode on the dense FAST designs is memory-stalled (the regime KV
	// residency targets), and the decode-tuned design holds cache slabs.
	if v := cell(tab, 1, 4); v < 50 {
		t.Errorf("fast-large decode stall = %.1f%%, want memory-bound", v)
	}
	if v := cell(tab, 2, 3); v <= 0 {
		t.Errorf("fast-decode holds %.1f MiB of KV cache, want > 0", v)
	}
}

func TestSearchExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("search experiments under -short")
	}
	reg := Registry(tinyOpts)
	for _, id := range []string{"fig9", "fig10", "fig11", "fig12", "frontier", "table4", "decode"} {
		tab := reg[id]()
		if len(tab.Rows) == 0 {
			t.Errorf("%s: no rows", id)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := Table{
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1,5", `say "hi"`}, {"plain", "x"}},
	}
	csv := tab.CSV()
	want := "a,b\n\"1,5\",\"say \"\"hi\"\"\"\nplain,x\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
	if got := Table1WorkingSets().CSV(); !strings.Contains(got, "EfficientNet-B7") {
		t.Error("real table CSV missing rows")
	}
}
