package experiments

import (
	"fmt"

	"fast/internal/arch"
	"fast/internal/hlo"
	"fast/internal/models"
	"fast/internal/sim"
	"fast/internal/tensor"
)

// Table1WorkingSets reproduces Table 1: EfficientNet on-chip storage
// requirements in bf16 at batch 1 — the largest op working set and the
// total weight footprint per variant.
func Table1WorkingSets() Table {
	t := Table{
		ID:     "table1",
		Title:  "EfficientNet on-chip storage requirements (bf16, batch 1)",
		Header: []string{"Model", "Max Working Set (MiB)", "Weights (MiB)"},
		Notes: "Paper: B0 2.87/12.7 MiB … B7 41.2/231 MiB. Shapes match published " +
			"EfficientNet parameter counts; the paper's weight column runs ~1.5-1.8x " +
			"larger than raw bf16 parameters (likely padded/layout-expanded tensors), " +
			"so absolute weights sit below the paper while the growth curve matches.",
	}
	for v := 0; v <= 7; v++ {
		g := models.EfficientNet(v, 1)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("EfficientNet-B%d", v),
			f2(tensor.MiB(hlo.MaxWorkingSetBytes(g))),
			f1(tensor.MiB(hlo.WeightBytes(g))),
		})
	}
	return t
}

// Table2OpBreakdown reproduces Table 2: EfficientNet-B7 per-op-class FLOP
// and runtime shares on the TPU-v3 baseline.
func Table2OpBreakdown() Table {
	cfg := arch.TPUv3()
	g := models.MustBuild("efficientnet-b7", cfg.NativeBatch)
	r, err := sim.Simulate(g, cfg, sim.BaselineOptions())
	if err != nil {
		panic(err)
	}
	t := Table{
		ID:     "table2",
		Title:  "EfficientNet-B7 per-op shares on TPU-v3",
		Header: []string{"Op Type", "FLOP %", "Runtime %"},
		Notes: "Paper: depthwise 5.00%/65.30%, Conv2D 94.67%/34.20%, other 0.33%/0.50%. " +
			"Shape target: depthwise consumes the majority of runtime at ~5% of FLOPs.",
	}
	for _, row := range r.ByClassRegion(sim.ClassifyCNN) {
		t.Rows = append(t.Rows, []string{
			row.Class,
			f2(row.FLOPShare * 100),
			f2(row.RuntimeShare * 100),
		})
	}
	t.Rows = append(t.Rows, []string{"(overall utilization)", "", f3(r.Utilization)})
	return t
}

// Fig2StepTimeVsAccuracy reproduces Figure 2: inference step time vs
// ImageNet top-1 accuracy for the EfficientNet family on FAST-Large and
// the TPU-v3 baseline.
func Fig2StepTimeVsAccuracy() Table {
	t := Table{
		ID:     "fig2",
		Title:  "EfficientNet family: step time vs ImageNet top-1",
		Header: []string{"Model", "Top-1 %", "TPU-v3 ms/img", "FAST-Large ms/img", "Speedup"},
		Notes: "Paper shape: FAST-Large shifts the whole latency/accuracy frontier left " +
			"by ~3-6x; accuracy is unchanged (FAST does not modify models).",
	}
	tpu := arch.TPUv3()
	fl := arch.FASTLarge()
	for v := 0; v <= 7; v++ {
		name := fmt.Sprintf("efficientnet-b%d", v)
		bt, err := sim.Simulate(models.MustBuild(name, tpu.NativeBatch), tpu, sim.BaselineOptions())
		if err != nil {
			panic(err)
		}
		bf, err := sim.Simulate(models.MustBuild(name, fl.NativeBatch), fl, sim.FASTOptions())
		if err != nil {
			panic(err)
		}
		perImgTPU := 1e3 / bt.QPS
		perImgFL := 1e3 / bf.QPS
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("B%d", v),
			f1(models.EfficientNetAccuracy[v]),
			f3(perImgTPU), f3(perImgFL), f2(perImgTPU/perImgFL) + "x",
		})
	}
	return t
}

// Fig3OpIntensity reproduces Figure 3: operational intensity under
// successively stronger fusion (none, XLA, depthwise-separable template,
// MBConv template, ideal weight pinning) across workloads and batch
// sizes.
func Fig3OpIntensity() Table {
	t := Table{
		ID:     "fig3",
		Title:  "Op fusion impact on operational intensity (FLOPs/byte)",
		Header: []string{"Workload", "Batch", "No fusion", "XLA", "DSConv tmpl", "MBConv tmpl", "Ideal (pinned)"},
		Notes: "Paper shape: EfficientNet sits at 13-35 FLOPs/B unfused, crosses 200 only " +
			"with MBConv-block fusion; batching rescues ResNet-50 and BERT-seq128 but not " +
			"EfficientNet or BERT-seq1024. TPU-v3 ridgepoint is 137, A100's 208.",
	}
	cases := []struct {
		name    string
		batches []int64
	}{
		{"efficientnet-b0", []int64{1, 8}},
		{"efficientnet-b7", []int64{1, 8}},
		{"resnet50", []int64{1, 8, 64}},
		{"bert-128", []int64{1, 8, 64}},
		{"bert-1024", []int64{1, 8}},
	}
	for _, c := range cases {
		for _, b := range c.batches {
			g := models.MustBuild(c.name, b)
			t.Rows = append(t.Rows, []string{
				c.name, fmt.Sprintf("%d", b),
				f1(hlo.PartitionNone(g).OpIntensity()),
				f1(hlo.PartitionXLA(g).OpIntensity()),
				f1(hlo.PartitionDSConv(g).OpIntensity()),
				f1(hlo.PartitionMBConv(g).OpIntensity()),
				f1(hlo.IdealOpIntensity(g)),
			})
		}
	}
	return t
}

// Fig4PerLayerUtil reproduces Figure 4: EfficientNet-B7 per-block
// fraction of peak FLOPs on TPU-v3.
func Fig4PerLayerUtil() Table {
	cfg := arch.TPUv3()
	g := models.MustBuild("efficientnet-b7", cfg.NativeBatch)
	r, err := sim.Simulate(g, cfg, sim.BaselineOptions())
	if err != nil {
		panic(err)
	}
	t := Table{
		ID:     "fig4",
		Title:  "EfficientNet-B7 per-layer fraction of peak FLOPs on TPU-v3",
		Header: []string{"Block", "Fraction of peak", "Time (ms)"},
		Notes: "Paper shape: early layers (few channels) run far below a good 0.7 " +
			"ratio; utilization improves with channel count; overall 14.8%.",
	}
	for _, b := range r.ByBlock() {
		t.Rows = append(t.Rows, []string{b.Block, f3(b.Utilization), f3(b.Sec * 1e3)})
	}
	return t
}

// Fig5BERTBreakdown reproduces Figure 5: BERT per-op-class runtime share
// on TPU-v3 as sequence length sweeps 128→2048.
func Fig5BERTBreakdown() Table {
	t := Table{
		ID:     "fig5",
		Title:  "BERT runtime share per op class on TPU-v3 vs sequence length",
		Header: []string{"Seq len", "QKV %", "Feed-forward %", "Self-attention %", "Softmax %", "Other %", "Util"},
		Notes: "Paper shape: QKV+FFN dominate at short sequences; the quadratically " +
			"scaling softmax and self-attention ops dominate beyond ~1024.",
	}
	cfg := arch.TPUv3().Clone("bert-sweep")
	cfg.NativeBatch = 8
	for _, seq := range []int64{128, 256, 512, 1024, 2048} {
		g := models.BERTBase(cfg.NativeBatch, seq)
		r, err := sim.Simulate(g, cfg, sim.BaselineOptions())
		if err != nil {
			panic(err)
		}
		shares := map[string]float64{}
		for _, row := range r.ByClass(sim.ClassifyBERT) {
			shares[row.Class] = row.RuntimeShare * 100
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", seq),
			f1(shares["QKV projection"]),
			f1(shares["Feed-forward"]),
			f1(shares["Self-attention"]),
			f1(shares["Softmax"]),
			f1(shares["Other"]),
			f3(r.Utilization),
		})
	}
	return t
}
