package experiments

import (
	"fmt"

	"fast/internal/arch"
	"fast/internal/core"
	"fast/internal/fusion"
	"fast/internal/power"
	"fast/internal/sim"
)

// baselinePerfPerTDP simulates the die-shrunk TPU-v3 baseline on a
// workload and returns its Perf/TDP; repeated calls across tables hit
// the process-wide plan cache.
func baselinePerfPerTDP(workload string) float64 {
	wr, err := core.EvaluateDesign(arch.DieShrunkTPUv3(), []string{workload}, sim.BaselineOptions())
	if err != nil {
		panic(err)
	}
	return wr[0].Result.PerfPerTDP
}

// Table5Designs reproduces Table 5: the modeled TPU-v3, FAST-Large and
// FAST-Small designs on EfficientNet-B7. The FAST columns use the
// exact-ILP fusion solve (deadline per Options), run concurrently.
func Table5Designs(o Options) Table {
	o = o.withDefaults()
	t := Table{
		ID:     "table5",
		Title:  "Example designs on EfficientNet-B7 (Table 5)",
		Header: []string{"Metric", "Modeled TPU-v3", "FAST-Large", "FAST-Small"},
		Notes: "Paper: TPU util 0.14 / FAST-Large 0.61 (stall 63%→9%, fusion eff 85%, " +
			"QPS 210→733, Perf/TDP 3.9x) / FAST-Small 0.74 with no fusion (8 MiB GM). " +
			"Shape targets: FAST designs trade array size for utilization; FAST-Large " +
			"relies on fusion, FAST-Small on a low compute:bandwidth ratio.",
	}
	pm := power.Default()
	budget := power.DefaultBudget(pm)
	type col struct {
		cfg  *arch.Config
		opts sim.Options
		res  *sim.Result
	}
	cols := []col{
		{cfg: arch.DieShrunkTPUv3(), opts: sim.BaselineOptions()},
		{cfg: arch.FASTLarge(), opts: o.fullILP()},
		{cfg: arch.FASTSmall(), opts: o.fullILP()},
	}
	jobs := make([]simJob, len(cols))
	for i := range cols {
		jobs[i] = simJob{"efficientnet-b7", cols[i].cfg, cols[i].opts}
	}
	for i, r := range simAll(o.Parallelism, jobs) {
		cols[i].res = r
	}
	row := func(metric string, f func(col) string) {
		t.Rows = append(t.Rows, []string{metric, f(cols[0]), f(cols[1]), f(cols[2])})
	}
	row("Normalized TDP", func(c col) string { return f2(c.res.TDPWatts / budget.MaxTDPW) })
	row("Normalized Area", func(c col) string { return f2(c.res.AreaMM2 / budget.MaxAreaMM2) })
	row("Peak Compute (TFLOPS)", func(c col) string { return f1(c.cfg.PeakFLOPs() / 1e12) })
	row("Peak Bandwidth (GB/s)", func(c col) string { return f1(c.cfg.PeakBandwidthGBs()) })
	row("Batch Size", func(c col) string { return fmt.Sprintf("%dx%d", c.cfg.Cores, c.cfg.NativeBatch) })
	row("Num PEs", func(c col) string { return fmt.Sprintf("%dx%d", c.cfg.Cores, c.cfg.NumPEs()) })
	row("PE Systolic Array", func(c col) string { return fmt.Sprintf("%dx%d", c.cfg.SAy, c.cfg.SAx) })
	row("PE Vector Width", func(c col) string { return fmt.Sprintf("%d", c.cfg.VPUWidth()) })
	row("PE L1 (KiB, i/w/o)", func(c col) string {
		return fmt.Sprintf("%d/%d/%d %s", c.cfg.L1InputKiB, c.cfg.L1WeightKiB, c.cfg.L1OutputKiB, c.cfg.L1Config)
	})
	row("L2 Config", func(c col) string { return c.cfg.L2Config.String() })
	row("Global Buffer (MiB)", func(c col) string { return fmt.Sprintf("%dx%d", c.cfg.Cores, c.cfg.GlobalMiB) })
	row("Compute Utilization", func(c col) string { return f2(c.res.Utilization) })
	row("Pre-fusion Mem Stall %", func(c col) string { return f1(c.res.MemStallPre * 100) })
	row("Fusion Efficiency %", func(c col) string { return f1(c.res.FusionEfficiency * 100) })
	row("OpInt Ridgepoint", func(c col) string { return f1(c.cfg.Ridgepoint()) })
	row("Fused Model OpInt", func(c col) string { return f1(c.res.OpIntensityPost) })
	row("B7 Performance (QPS)", func(c col) string { return f1(c.res.QPS) })
	row("B7 Latency (ms)", func(c col) string { return f1(c.res.LatencySec * 1e3) })
	base := cols[0].res.PerfPerTDP
	row("Normalized Perf/TDP", func(c col) string { return f2(c.res.PerfPerTDP / base) })
	return t
}

// Table6Ablation reproduces Table 6: FAST-Large with single components
// reverted to their TPU-v3 values, measured as Perf/TDP vs the die-shrunk
// baseline (and, in parentheses, vs unmodified FAST-Large). Every
// (variant, workload) cell is an exact-ILP simulation; the full cross
// product fans out across one worker pool.
func Table6Ablation(o Options) Table {
	o = o.withDefaults()
	t := Table{
		ID:     "table6",
		Title:  "FAST-Large ablation (Perf/TDP vs die-shrunk TPU-v3)",
		Header: []string{"Variant", "EfficientNet-B7", "ResNet50", "BERT-Seq1024"},
		Notes: "Paper: FAST-Large 4.27/2.95/2.39; 16MB GM 2.26/2.20/1.22; no fusion " +
			"1.91/1.74/1.05; 128x128 arrays 2.69/1.41/1.35; 32KB L1 3.20/2.26/1.83. " +
			"Shape targets: every reverted component costs substantial Perf/TDP; the " +
			"GM/fusion reverts hurt most on memory-bound EfficientNet.",
	}
	workloads := []string{"efficientnet-b7", "resnet50", "bert-1024"}
	base := map[string]float64{}
	for _, w := range workloads {
		base[w] = baselinePerfPerTDP(w)
	}

	variants := []struct {
		name string
		cfg  *arch.Config
		opts sim.Options
	}{
		{"FAST-Large", arch.FASTLarge(), o.fullILP()},
		{"With 16MB Global Mem", func() *arch.Config {
			c := arch.FASTLarge().Clone("fl-16mb")
			c.GlobalMiB = 16
			return c
		}(), o.fullILP()},
		{"Without FAST Fusion", arch.FASTLarge().Clone("fl-nofusion"), func() sim.Options {
			so := sim.FASTOptions()
			so.Fusion = fusion.Options{Disable: true}
			return so
		}()},
		{"With 128x128 systolic arrays", func() *arch.Config {
			// Keep peak FLOPS constant: 4 PEs of 128×128 = 64 PEs of 32×32.
			c := arch.FASTLarge().Clone("fl-128sa")
			c.SAx, c.SAy = 128, 128
			c.PEsX, c.PEsY = 2, 2
			c.L1WeightKiB = 64 // a 128x128 tile needs the TPU-sized buffer
			c.L1InputKiB, c.L1OutputKiB = 64, 64
			return c
		}(), o.fullILP()},
		{"With 64KB L1 scratchpads", func() *arch.Config {
			c := arch.FASTLarge().Clone("fl-64kl1")
			c.L1InputKiB, c.L1WeightKiB, c.L1OutputKiB = 64, 64, 64
			return c
		}(), o.fullILP()},
	}

	var jobs []simJob
	for _, v := range variants {
		for _, w := range workloads {
			jobs = append(jobs, simJob{w, v.cfg, v.opts})
		}
	}
	results := simAll(o.Parallelism, jobs)

	flRatio := map[string]float64{}
	for vi, v := range variants {
		row := []string{v.name}
		for wi, w := range workloads {
			r := results[vi*len(workloads)+wi]
			ratio := 0.0
			if !r.ScheduleFailed {
				ratio = r.PerfPerTDP / base[w]
			}
			cell := f2(ratio) + "x"
			if v.name == "FAST-Large" {
				flRatio[w] = ratio
				cell += " (1.00)"
			} else if flRatio[w] > 0 {
				cell += fmt.Sprintf(" (%.2f)", ratio/flRatio[w])
			}
			row = append(row, cell)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig13FusionSweep reproduces Figure 13: post-fusion operational
// intensity sweeping Global Memory capacity (columns) and batch size
// (rows) on an otherwise-fixed FAST-Large, for EfficientNet-B0 and B7.
// Every grid cell is an independent exact-ILP fusion solve; the whole
// 40-instance sweep fans out across one worker pool.
func Fig13FusionSweep(o Options) Table {
	o = o.withDefaults()
	t := Table{
		ID:     "fig13",
		Title:  "Post-fusion op intensity: Global Memory × batch (FAST-Large)",
		Header: []string{"Model", "Batch", "GM 16MiB", "GM 32MiB", "GM 64MiB", "GM 128MiB", "GM 256MiB"},
		Notes: "Paper shape: intensity rises with Global Memory and falls with batch " +
			"(bigger activations crowd out placements under the paper's whole-tensor " +
			"residency assumption, used here); B0 exceeds the 292 ridgepoint easily, " +
			"B7 needs small batches.",
	}
	gms := []int64{16, 32, 64, 128, 256}
	opts := o.fullILP()
	// Figure 13 uses the paper's conservative whole-tensor residency
	// assumption, which is what makes smaller batches win (§5.5).
	opts.WholeTensorFusion = true
	var jobs []simJob
	for _, model := range []string{"efficientnet-b0", "efficientnet-b7"} {
		for _, batch := range []int64{1, 8, 32, 64} {
			for _, gm := range gms {
				cfg := arch.FASTLarge().Clone(fmt.Sprintf("fl-gm%d-b%d", gm, batch))
				cfg.GlobalMiB = gm
				cfg.NativeBatch = batch
				jobs = append(jobs, simJob{model, cfg, opts})
			}
		}
	}
	results := simAll(o.Parallelism, jobs)
	k := 0
	for _, model := range []string{"efficientnet-b0", "efficientnet-b7"} {
		for _, batch := range []int64{1, 8, 32, 64} {
			row := []string{model, fmt.Sprintf("%d", batch)}
			for range gms {
				row = append(row, f1(results[k].OpIntensityPost))
				k++
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t
}

// Fig14PerLayerFAST reproduces Figure 14: EfficientNet-B7 per-block
// fraction of peak on FAST-Large, with and without fusion, against the
// TPU-v3 curve.
func Fig14PerLayerFAST(o Options) Table {
	o = o.withDefaults()
	t := Table{
		ID:     "fig14",
		Title:  "EfficientNet-B7 per-layer fraction of peak: TPU-v3 vs FAST-Large ± fusion",
		Header: []string{"Block", "TPU-v3", "FAST-Large no-fusion", "FAST-Large fused"},
		Notes: "Paper shape: 32x32 arrays lift compute utilization but stay memory-" +
			"bottlenecked until FAST fusion is enabled.",
	}
	tpuCfg := arch.TPUv3()
	fl := arch.FASTLarge()
	noFuseOpts := sim.FASTOptions()
	noFuseOpts.Fusion = fusion.Options{Disable: true}
	results := simAll(o.Parallelism, []simJob{
		{"efficientnet-b7", tpuCfg, sim.BaselineOptions()},
		{"efficientnet-b7", fl, noFuseOpts},
		{"efficientnet-b7", fl, o.fullILP()},
	})
	tpu, noFuse, fused := results[0], results[1], results[2]
	tpuBy := map[string]float64{}
	for _, b := range tpu.ByBlock() {
		tpuBy[b.Block] = b.Utilization
	}
	nfBy := map[string]float64{}
	for _, b := range noFuse.ByBlock() {
		nfBy[b.Block] = b.Utilization
	}
	for _, b := range fused.ByBlock() {
		t.Rows = append(t.Rows, []string{b.Block, f3(tpuBy[b.Block]), f3(nfBy[b.Block]), f3(b.Utilization)})
	}
	return t
}

// Fig15Breakdown reproduces Figure 15: the additive contribution of FAST
// scheduling, datapath, and fusion over a single TPU-v3 core on
// EfficientNet-B7 (comparing against a halved FAST-Large with 32 PEs).
func Fig15Breakdown(o Options) Table {
	o = o.withDefaults()
	t := Table{
		ID:     "fig15",
		Title:  "Component breakdown vs single TPU-v3 core (EfficientNet-B7 QPS)",
		Header: []string{"Configuration", "QPS", "Speedup vs baseline"},
		Notes: "Paper shape: scheduling alone is modest; datapath without fusion stalls " +
			"at the bandwidth wall (no benefit from a larger Global Memory); fusion " +
			"unlocks the datapath's utilization gains. Improvements are additive.",
	}
	// Single TPU-v3 core baseline.
	oneCore := arch.TPUv3().Clone("tpu-v3-1core")
	oneCore.Cores = 1
	oneCore.MemChannels = 2 // 450 GB/s for the single core

	// Halved FAST-Large: 32 PEs.
	halfFL := arch.FASTLarge().Clone("fast-large-half")
	halfFL.PEsX, halfFL.PEsY = 8, 4

	noFuse := func() sim.Options {
		so := sim.FASTOptions()
		so.Fusion = fusion.Options{Disable: true}
		return so
	}
	rows := []struct {
		name string
		cfg  *arch.Config
		opts sim.Options
	}{
		{"TPU-v3 core (production schedule)", oneCore, sim.BaselineOptions()},
		{"+ FAST scheduling", oneCore, noFuse()},
		{"+ datapath (32 PEs of 32x32, 128MiB GM), no fusion", halfFL, noFuse()},
		{"+ FAST fusion (full stack)", halfFL, o.fullILP()},
	}
	jobs := make([]simJob, len(rows))
	for i, rc := range rows {
		jobs[i] = simJob{"efficientnet-b7", rc.cfg, rc.opts}
	}
	results := simAll(o.Parallelism, jobs)
	baseQPS := results[0].QPS
	for i, rc := range rows {
		t.Rows = append(t.Rows, []string{rc.name, f1(results[i].QPS), f2(results[i].QPS/baseQPS) + "x"})
	}
	return t
}
