package experiments

// Parallel full-ILP reporting simulations.
//
// The design tables (Table 5/6, Figures 13-15) and the per-workload
// columns of the search figures report final design metrics, so they
// run the FAST stack with the exact fusion-ILP solve rather than the
// search loop's greedy-only stack. Each job is an independent
// branch-and-bound solve; simAll fans them across a bounded worker pool
// (Options.Parallelism, the same knob the studies use) with
// index-slotted results. Job order — and therefore table layout — is
// independent of parallelism; cell values are too, except that
// ILPDeadline is a wall-clock budget per solve, so a loaded or
// oversubscribed machine can demote a borderline cell from a proven
// optimum to the greedy-seeded incumbent (the same SCIP-timeout
// caveat every exact-ILP path in this repo carries).

import (
	"fast/internal/arch"
	"fast/internal/core"
	"fast/internal/sim"
)

// fullILP is the reporting software stack: the FAST stack with the
// exact ILP fusion solve enabled under o's per-solve deadline (a
// deadline hit keeps the greedy-seeded incumbent and reports its gap).
func (o Options) fullILP() sim.Options {
	s := sim.FASTOptions()
	s.Fusion.GreedyOnly = false
	s.Fusion.Deadline = o.ILPDeadline
	return s
}

// simJob is one reporting simulation: a workload on a design (at the
// design's native batch) under a software stack.
type simJob struct {
	model string
	cfg   *arch.Config
	opts  sim.Options
}

// simAll runs the jobs concurrently and returns results in job order.
// Each job goes through core.EvaluateDesign and therefore the
// process-wide compiled-plan cache: a (workload, design, options)
// simulation repeated across tables — Table 5's FAST-Large column is
// also Figure 14's fused row — pays its compile and exact-ILP solve
// once per fast-experiments run. Like the serial sim.Simulate call
// sites this replaces, an error (unknown model, invalid design) panics
// — these are table-generator programming errors, not runtime
// conditions.
func simAll(parallelism int, jobs []simJob) []*sim.Result {
	out := make([]*sim.Result, len(jobs))
	errs := make([]error, len(jobs))
	core.ForEach(parallelism, len(jobs), func(i int) {
		j := jobs[i]
		wr, err := core.EvaluateDesign(j.cfg, []string{j.model}, j.opts)
		if err != nil {
			errs[i] = err
			return
		}
		out[i] = wr[0].Result
	})
	for _, err := range errs {
		if err != nil {
			panic(err)
		}
	}
	return out
}
