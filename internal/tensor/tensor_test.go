package tensor

import (
	"testing"
	"testing/quick"
)

func TestDTypeSize(t *testing.T) {
	cases := []struct {
		d    DType
		want int64
	}{{BF16, 2}, {FP32, 4}, {INT8, 1}}
	for _, c := range cases {
		if got := c.d.Size(); got != c.want {
			t.Errorf("%v.Size() = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestDTypeString(t *testing.T) {
	if BF16.String() != "bf16" || FP32.String() != "f32" || INT8.String() != "s8" {
		t.Errorf("unexpected dtype names: %v %v %v", BF16, FP32, INT8)
	}
	if DType(99).String() != "dtype(99)" {
		t.Errorf("unknown dtype string = %q", DType(99).String())
	}
}

func TestUnknownDTypeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown dtype size")
		}
	}()
	_ = DType(42).Size()
}

func TestShapeElemsAndBytes(t *testing.T) {
	s := NewShape(BF16, 8, 224, 224, 3)
	if got := s.Elems(); got != 8*224*224*3 {
		t.Errorf("Elems = %d", got)
	}
	if got := s.Bytes(); got != 8*224*224*3*2 {
		t.Errorf("Bytes = %d", got)
	}
	scalar := Shape{Type: FP32}
	if scalar.Elems() != 1 || scalar.Bytes() != 4 {
		t.Errorf("scalar: elems=%d bytes=%d", scalar.Elems(), scalar.Bytes())
	}
}

func TestShapeDimOutOfRange(t *testing.T) {
	s := NewShape(BF16, 4, 5)
	if s.Dim(0) != 4 || s.Dim(1) != 5 {
		t.Errorf("in-range dims wrong")
	}
	if s.Dim(2) != 1 || s.Dim(-1) != 1 {
		t.Errorf("out-of-range dims should be 1")
	}
}

func TestWithBatch(t *testing.T) {
	s := NewShape(BF16, 1, 7, 7, 1280)
	b := s.WithBatch(64)
	if b.Dim(0) != 64 {
		t.Errorf("WithBatch dim0 = %d", b.Dim(0))
	}
	if s.Dim(0) != 1 {
		t.Errorf("WithBatch mutated the receiver")
	}
	scalar := Shape{Type: BF16}
	if got := scalar.WithBatch(4); len(got.Dims) != 0 {
		t.Errorf("scalar WithBatch should be a no-op")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := NewShape(FP32, 2, 3)
	c := s.Clone()
	c.Dims[0] = 99
	if s.Dims[0] != 2 {
		t.Error("Clone shares backing array")
	}
}

func TestEqual(t *testing.T) {
	a := NewShape(BF16, 2, 3)
	b := NewShape(BF16, 2, 3)
	b.Name = "other"
	if !a.Equal(b) {
		t.Error("names must not affect equality")
	}
	if a.Equal(NewShape(FP32, 2, 3)) {
		t.Error("dtype must affect equality")
	}
	if a.Equal(NewShape(BF16, 3, 2)) {
		t.Error("dims must affect equality")
	}
	if a.Equal(NewShape(BF16, 2, 3, 1)) {
		t.Error("rank must affect equality")
	}
}

func TestString(t *testing.T) {
	s := NewShape(BF16, 1, 224, 224, 3)
	if got := s.String(); got != "bf16[1,224,224,3]" {
		t.Errorf("String = %q", got)
	}
}

func TestValid(t *testing.T) {
	if !NewShape(BF16, 1, 2).Valid() {
		t.Error("positive dims should be valid")
	}
	if NewShape(BF16, 1, 0).Valid() {
		t.Error("zero dim should be invalid")
	}
	if NewShape(BF16, -1, 2).Valid() {
		t.Error("negative dim should be invalid")
	}
}

func TestCeilDivRoundUp(t *testing.T) {
	cases := []struct{ a, b, ceil, round int64 }{
		{10, 3, 4, 12}, {9, 3, 3, 9}, {1, 128, 1, 128}, {0, 4, 0, 0},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.ceil {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.ceil)
		}
		if got := RoundUp(c.a, c.b); got != c.round {
			t.Errorf("RoundUp(%d,%d) = %d, want %d", c.a, c.b, got, c.round)
		}
	}
}

func TestCeilDivPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CeilDiv(4, 0)
}

// Property: CeilDiv is the smallest q with q*b >= a.
func TestCeilDivProperty(t *testing.T) {
	f := func(a uint16, b uint8) bool {
		bb := int64(b%64) + 1
		aa := int64(a)
		q := CeilDiv(aa, bb)
		return q*bb >= aa && (q-1)*bb < aa
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Bytes == Elems * dtype size for random shapes.
func TestBytesProperty(t *testing.T) {
	f := func(d0, d1, d2 uint8) bool {
		s := NewShape(BF16, int64(d0)+1, int64(d1)+1, int64(d2)+1)
		return s.Bytes() == s.Elems()*2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMiB(t *testing.T) {
	if MiB(1<<20) != 1 {
		t.Errorf("MiB(1MiB) = %v", MiB(1<<20))
	}
	if MiB(3<<19) != 1.5 {
		t.Errorf("MiB(1.5MiB) = %v", MiB(3<<19))
	}
}
