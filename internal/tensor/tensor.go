// Package tensor provides the shape and data-type vocabulary shared by the
// HLO graph IR, the schedule mapper, and the simulator.
//
// The simulator is analytical: it never materializes tensor contents, only
// shapes and byte sizes. Shapes use the NHWC layout convention for image
// tensors and [batch, seq, feature] for sequence tensors, matching the
// convention the paper's XLA HLO graphs use.
package tensor

import (
	"fmt"
	"strings"
)

// DType identifies the element type of a tensor. The paper evaluates
// bfloat16 inference throughout; fp32 and int8 are provided so datapath
// experiments can model other precisions.
type DType int

const (
	// BF16 is the 2-byte brain floating-point format used by TPUs and by
	// every experiment in the paper.
	BF16 DType = iota
	// FP32 is IEEE 754 single precision.
	FP32
	// INT8 is 8-bit integer (quantized inference; out of the paper's scope
	// but supported by the datapath model).
	INT8
)

// Size returns the element size in bytes.
func (d DType) Size() int64 {
	switch d {
	case BF16:
		return 2
	case FP32:
		return 4
	case INT8:
		return 1
	}
	panic(fmt.Sprintf("tensor: unknown dtype %d", int(d)))
}

// String implements fmt.Stringer.
func (d DType) String() string {
	switch d {
	case BF16:
		return "bf16"
	case FP32:
		return "f32"
	case INT8:
		return "s8"
	}
	return fmt.Sprintf("dtype(%d)", int(d))
}

// Shape is a dense tensor shape. The zero value is a scalar.
type Shape struct {
	Dims []int64
	Type DType
	// Name optionally labels the tensor for reports (e.g. "weights").
	Name string
}

// NewShape builds a Shape with the given dtype and dimensions.
func NewShape(t DType, dims ...int64) Shape {
	d := make([]int64, len(dims))
	copy(d, dims)
	return Shape{Dims: d, Type: t}
}

// Rank returns the number of dimensions.
func (s Shape) Rank() int { return len(s.Dims) }

// Elems returns the number of elements (1 for a scalar).
func (s Shape) Elems() int64 {
	n := int64(1)
	for _, d := range s.Dims {
		n *= d
	}
	return n
}

// Bytes returns the dense size of the tensor in bytes.
func (s Shape) Bytes() int64 { return s.Elems() * s.Type.Size() }

// Dim returns dimension i, or 1 if the shape has fewer dimensions. This
// lets cost models treat missing leading dims as broadcast size-1 dims.
func (s Shape) Dim(i int) int64 {
	if i < 0 || i >= len(s.Dims) {
		return 1
	}
	return s.Dims[i]
}

// WithBatch returns a copy of the shape with dimension 0 replaced by b.
// For rank-0 shapes it returns the shape unchanged.
func (s Shape) WithBatch(b int64) Shape {
	if len(s.Dims) == 0 {
		return s
	}
	out := s.Clone()
	out.Dims[0] = b
	return out
}

// Clone returns a deep copy.
func (s Shape) Clone() Shape {
	d := make([]int64, len(s.Dims))
	copy(d, s.Dims)
	return Shape{Dims: d, Type: s.Type, Name: s.Name}
}

// Equal reports whether two shapes have identical dims and dtype (names
// are ignored).
func (s Shape) Equal(o Shape) bool {
	if s.Type != o.Type || len(s.Dims) != len(o.Dims) {
		return false
	}
	for i := range s.Dims {
		if s.Dims[i] != o.Dims[i] {
			return false
		}
	}
	return true
}

// String renders e.g. "bf16[1,224,224,3]".
func (s Shape) String() string {
	var b strings.Builder
	b.WriteString(s.Type.String())
	b.WriteByte('[')
	for i, d := range s.Dims {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", d)
	}
	b.WriteByte(']')
	return b.String()
}

// Valid reports whether every dimension is positive.
func (s Shape) Valid() bool {
	for _, d := range s.Dims {
		if d <= 0 {
			return false
		}
	}
	return true
}

// MiB converts a byte count to mebibytes.
func MiB(bytes int64) float64 { return float64(bytes) / (1024 * 1024) }

// CeilDiv returns ceil(a/b) for positive b.
func CeilDiv(a, b int64) int64 {
	if b <= 0 {
		panic("tensor: CeilDiv by non-positive divisor")
	}
	return (a + b - 1) / b
}

// RoundUp returns the smallest multiple of m that is >= a (m > 0).
func RoundUp(a, m int64) int64 { return CeilDiv(a, m) * m }
