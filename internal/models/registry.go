package models

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"fast/internal/hlo"
)

// Build constructs a workload graph by canonical name at the given batch
// size. Recognized names:
//
//	efficientnet-b0 .. efficientnet-b7
//	resnet50
//	bert-128, bert-1024 (or bert-<seq> for any sequence length)
//	ocr-rpn, ocr-recognizer
//	gpt2-prefill-<seq>, gpt2-decode-<ctx> (GPT-2-small serving phases)
//	gpt2-local-prefill-<seq>, gpt2-local-decode-<ctx> (block-local attention)
func Build(name string, batch int64) (*hlo.Graph, error) {
	b, err := builder(name)
	if err != nil {
		return nil, err
	}
	return b(batch), nil
}

// Validate reports whether name is a recognized workload, without
// constructing its graph (graph construction is the expensive part;
// callers that only need to fail fast on typos use this).
func Validate(name string) error {
	_, err := builder(name)
	return err
}

// builder resolves a workload name to its graph constructor.
func builder(name string) (func(batch int64) *hlo.Graph, error) {
	switch {
	case strings.HasPrefix(name, "efficientnet-b"):
		v, err := strconv.Atoi(strings.TrimPrefix(name, "efficientnet-b"))
		if err != nil || v < 0 || v > 7 {
			return nil, fmt.Errorf("models: bad EfficientNet variant in %q", name)
		}
		return func(batch int64) *hlo.Graph { return EfficientNet(v, batch) }, nil
	case name == "resnet50":
		return ResNet50v2, nil
	case strings.HasPrefix(name, "bert-"):
		seq, err := strconv.ParseInt(strings.TrimPrefix(name, "bert-"), 10, 64)
		if err != nil || seq < 1 {
			return nil, fmt.Errorf("models: bad BERT sequence length in %q", name)
		}
		return func(batch int64) *hlo.Graph { return BERTBase(batch, seq) }, nil
	case name == "ocr-rpn":
		return OCRRPN, nil
	case name == "ocr-recognizer":
		return OCRRecognizer, nil
	case name == "mobilenetv2":
		return MobileNetV2, nil
	case strings.HasPrefix(name, "gpt2-"):
		return gptBuilder(name)
	}
	return nil, fmt.Errorf("models: unknown workload %q (known: %s)",
		name, strings.Join(Names(), ", "))
}

// MustBuild is Build that panics on error; for tests and examples.
func MustBuild(name string, batch int64) *hlo.Graph {
	g, err := Build(name, batch)
	if err != nil {
		panic(err)
	}
	return g
}

// gptLocalWindow is the block width of the "local" (SPLAT-style
// block-local sparse attention) GPT workload variants.
const gptLocalWindow = 256

// gptBuilder parses gpt2-[local-]{prefill,decode}-<n> workload names.
func gptBuilder(name string) (func(batch int64) *hlo.Graph, error) {
	rest := strings.TrimPrefix(name, "gpt2-")
	var window int64
	if strings.HasPrefix(rest, "local-") {
		rest, window = strings.TrimPrefix(rest, "local-"), int64(gptLocalWindow)
	}
	phase, num, ok := strings.Cut(rest, "-")
	if !ok {
		return nil, fmt.Errorf("models: bad GPT workload %q (want gpt2-[local-]{prefill,decode}-<n>)", name)
	}
	n, err := strconv.ParseInt(num, 10, 64)
	if err != nil || n < 1 {
		return nil, fmt.Errorf("models: bad GPT context length in %q", name)
	}
	switch phase {
	case "prefill":
		if window > 0 && n%window != 0 {
			return nil, fmt.Errorf("models: %q needs a sequence length divisible by the %d-wide attention block", name, gptLocalWindow)
		}
		return func(batch int64) *hlo.Graph {
			cfg := GPT2SmallConfig(batch, n)
			cfg.LocalWindow = window
			return GPTPrefill(cfg)
		}, nil
	case "decode":
		return func(batch int64) *hlo.Graph {
			cfg := GPT2SmallConfig(batch, n)
			cfg.LocalWindow = window
			return GPTDecode(cfg)
		}, nil
	}
	return nil, fmt.Errorf("models: bad GPT phase in %q (want prefill or decode)", name)
}

// UsesKVCache reports whether the named workload's graph reads a
// persistent KV-cache (an autoregressive decode step). Such graphs
// carry a traffic class the pre-KV frozen reference simulator does not
// model, so differential suites that compare against it skip them;
// decode models are instead pinned by their own golden results.
func UsesKVCache(name string) bool {
	return strings.HasPrefix(name, "gpt2-") && strings.Contains(name, "decode")
}

// Names lists every canonical workload name.
func Names() []string {
	out := []string{
		"resnet50", "bert-128", "bert-1024", "ocr-rpn", "ocr-recognizer", "mobilenetv2",
		"gpt2-prefill-128", "gpt2-prefill-1024", "gpt2-decode-1024",
		"gpt2-local-prefill-1024", "gpt2-local-decode-1024",
	}
	for v := 0; v <= 7; v++ {
		out = append(out, fmt.Sprintf("efficientnet-b%d", v))
	}
	sort.Strings(out)
	return out
}

// FullSuite is the paper's complete benchmark list (Figures 9-10): the
// EfficientNet family, BERT at both sequence lengths, ResNet-50v2, and
// the two OCR stages.
func FullSuite() []string {
	return []string{
		"efficientnet-b0", "efficientnet-b1", "efficientnet-b2",
		"efficientnet-b3", "efficientnet-b4", "efficientnet-b5",
		"efficientnet-b6", "efficientnet-b7",
		"resnet50", "ocr-rpn", "ocr-recognizer",
		"bert-128", "bert-1024",
	}
}

// MultiWorkloadSuite is the 5-workload set the paper's multi-workload
// design optimizes over ("GeoMean-5"): EfficientNet-B7, ResNet-50,
// OCR-RPN, OCR-Recognizer, BERT-1024.
func MultiWorkloadSuite() []string {
	return []string{"efficientnet-b7", "resnet50", "ocr-rpn", "ocr-recognizer", "bert-1024"}
}
