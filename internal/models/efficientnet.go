// Package models is the workload zoo: programmatic HLO-graph builders for
// every model the paper evaluates (EfficientNet-B0..B7, ResNet-50v2,
// BERT-Base at arbitrary sequence length, and the two OCR pipeline
// stages). Shapes follow the published architectures so FLOP and byte
// accounting matches the real XLA graphs to first order.
package models

import (
	"fmt"
	"math"

	"fast/internal/hlo"
	"fast/internal/tensor"
)

// swishCost is the VPU op count per element for x·sigmoid(x): a
// table-lookup sigmoid (2 ops) plus the multiply.
const swishCost = 3

// mbBlockSpec is one stage of the EfficientNet-B0 baseline.
type mbBlockSpec struct {
	expand  int64 // expansion ratio
	kernel  int64
	stride  int64
	filters int64 // output channels before width scaling
	repeats int64 // layer count before depth scaling
}

// efficientNetB0Blocks is the MBConv stage table from Tan & Le (2019).
var efficientNetB0Blocks = []mbBlockSpec{
	{expand: 1, kernel: 3, stride: 1, filters: 16, repeats: 1},
	{expand: 6, kernel: 3, stride: 2, filters: 24, repeats: 2},
	{expand: 6, kernel: 5, stride: 2, filters: 40, repeats: 2},
	{expand: 6, kernel: 3, stride: 2, filters: 80, repeats: 3},
	{expand: 6, kernel: 5, stride: 1, filters: 112, repeats: 3},
	{expand: 6, kernel: 5, stride: 2, filters: 192, repeats: 4},
	{expand: 6, kernel: 3, stride: 1, filters: 320, repeats: 1},
}

// effNetScaling holds the compound-scaling coefficients per variant:
// width multiplier, depth multiplier, input resolution.
var effNetScaling = [8]struct {
	width float64
	depth float64
	res   int64
}{
	{1.0, 1.0, 224}, // B0
	{1.0, 1.1, 240}, // B1
	{1.1, 1.2, 260}, // B2
	{1.2, 1.4, 300}, // B3
	{1.4, 1.8, 380}, // B4
	{1.6, 2.2, 456}, // B5
	{1.8, 2.6, 528}, // B6
	{2.0, 3.1, 600}, // B7
}

// EfficientNetAccuracy is the published ImageNet top-1 accuracy per
// variant (Tan & Le 2019, Table 2). Used by the Figure 2 reproduction;
// FAST does not change model accuracy.
var EfficientNetAccuracy = [8]float64{77.1, 79.1, 80.1, 81.6, 82.9, 83.6, 84.0, 84.3}

// roundFilters applies the EfficientNet width-scaling rule: scale, round
// to the nearest multiple of 8, and never round down below 90%.
func roundFilters(filters int64, width float64) int64 {
	if width == 1.0 {
		return filters
	}
	const divisor = 8
	f := width * float64(filters)
	rounded := int64(f+float64(divisor)/2) / divisor * divisor
	if rounded < divisor {
		rounded = divisor
	}
	if float64(rounded) < 0.9*f {
		rounded += divisor
	}
	return rounded
}

// roundRepeats applies depth scaling: ceil(depth · repeats).
func roundRepeats(repeats int64, depth float64) int64 {
	return int64(math.Ceil(depth * float64(repeats)))
}

// seBlock appends a squeeze-and-excitation block: global pool → reduce FC
// → swish → expand FC → sigmoid → channelwise multiply. seCh is the
// bottleneck width (¼ of the block's unexpanded input channels).
func seBlock(g *hlo.Graph, name string, x *hlo.Op, seCh int64) *hlo.Op {
	pooled := g.GlobalPool(name+".se.squeeze", x)
	reduce := g.Conv2D(name+".se.reduce", pooled, seCh, 1, 1, 1, true)
	reduce = g.Activation(name+".se.swish", reduce, swishCost)
	expand := g.Conv2D(name+".se.expand", reduce, x.Output.Dim(3), 1, 1, 1, true)
	gate := g.Activation(name+".se.sigmoid", expand, 3)
	// Broadcast multiply of [B,1,1,C] gate over [B,H,W,C] activations: the
	// graph models it as an elementwise multiply on x's shape.
	return g.Mul(name+".se.excite", x, gate)
}

// mbConv appends one inverted-residual block (MBConv).
func mbConv(g *hlo.Graph, name string, x *hlo.Op, spec mbBlockSpec, outCh int64, stride int64) *hlo.Op {
	inCh := x.Output.Dim(3)
	block := x
	expanded := inCh * spec.expand
	if spec.expand != 1 {
		block = g.Conv2D(name+".expand", block, expanded, 1, 1, 1, true)
		block = g.BatchNorm(name+".expand.bn", block)
		block = g.Activation(name+".expand.swish", block, swishCost)
	}
	block = g.DepthwiseConv2D(name+".dwconv", block, spec.kernel, spec.kernel, stride, true)
	block = g.BatchNorm(name+".dwconv.bn", block)
	block = g.Activation(name+".dwconv.swish", block, swishCost)
	seCh := inCh / 4
	if seCh < 1 {
		seCh = 1
	}
	block = seBlock(g, name, block, seCh)
	block = g.Conv2D(name+".project", block, outCh, 1, 1, 1, true)
	block = g.BatchNorm(name+".project.bn", block)
	if stride == 1 && inCh == outCh {
		block = g.Add(name+".residual", block, x)
	}
	return block
}

// EfficientNet builds EfficientNet-B<variant> (0..7) at the given batch
// size in bf16.
func EfficientNet(variant int, batch int64) *hlo.Graph {
	if variant < 0 || variant > 7 {
		panic(fmt.Sprintf("models: EfficientNet variant B%d out of range", variant))
	}
	sc := effNetScaling[variant]
	g := hlo.NewGraph(fmt.Sprintf("efficientnet-b%d", variant))

	g.InBlock("stem")
	x := g.Input("images", tensor.NewShape(tensor.BF16, batch, sc.res, sc.res, 3))
	stemCh := roundFilters(32, sc.width)
	h := g.Conv2D("stem.conv", x, stemCh, 3, 3, 2, true)
	h = g.BatchNorm("stem.bn", h)
	h = g.Activation("stem.swish", h, swishCost)

	for si, spec := range efficientNetB0Blocks {
		outCh := roundFilters(spec.filters, sc.width)
		repeats := roundRepeats(spec.repeats, sc.depth)
		for r := int64(0); r < repeats; r++ {
			blockName := fmt.Sprintf("mbconv%d_%d", si+1, r)
			g.InBlock(blockName)
			stride := spec.stride
			if r > 0 {
				stride = 1
			}
			h = mbConv(g, blockName, h, spec, outCh, stride)
		}
	}

	g.InBlock("head")
	headCh := roundFilters(1280, sc.width)
	h = g.Conv2D("head.conv", h, headCh, 1, 1, 1, true)
	h = g.BatchNorm("head.bn", h)
	h = g.Activation("head.swish", h, swishCost)
	h = g.GlobalPool("head.pool", h)
	h = g.Reshape("head.flatten", h, tensor.NewShape(tensor.BF16, batch, headCh))
	h = g.MatMul("head.logits", h, 1000)
	g.Output(h)
	return g
}
