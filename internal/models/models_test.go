package models

import (
	"strings"
	"testing"

	"fast/internal/hlo"
	"fast/internal/tensor"
)

func TestAllWorkloadsValidate(t *testing.T) {
	for _, name := range FullSuite() {
		g := MustBuild(name, 1)
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if len(g.Outputs()) == 0 {
			t.Errorf("%s: no outputs", name)
		}
	}
}

func TestEfficientNetWeightFootprints(t *testing.T) {
	// Paper Table 1 gives bf16 weight sizes; our programmatic graphs must
	// land in the same ballpark (published EfficientNet parameter counts:
	// B0≈5.3M, B7≈66M → 10.1 MiB and 126 MiB in bf16). Allow ±25% to
	// absorb accounting differences (biases, BN folding).
	want := map[int]float64{0: 10.1, 3: 23, 7: 126}
	for v, wantMiB := range want {
		g := EfficientNet(v, 1)
		got := tensor.MiB(hlo.WeightBytes(g))
		if got < wantMiB*0.75 || got > wantMiB*1.25 {
			t.Errorf("B%d weights = %.1f MiB, want ≈%.1f MiB", v, got, wantMiB)
		}
	}
}

func TestEfficientNetWorkingSetsGrow(t *testing.T) {
	// Paper Table 1: working sets grow monotonically B0→B7, from ~2.9 MiB
	// to ~41 MiB at batch 1.
	prev := int64(0)
	for v := 0; v <= 7; v++ {
		g := EfficientNet(v, 1)
		ws := hlo.MaxWorkingSetBytes(g)
		if ws < prev {
			t.Errorf("B%d working set %d < B%d %d", v, ws, v-1, prev)
		}
		prev = ws
	}
	b0 := tensor.MiB(hlo.MaxWorkingSetBytes(EfficientNet(0, 1)))
	if b0 < 1 || b0 > 8 {
		t.Errorf("B0 working set = %.1f MiB, want a few MiB", b0)
	}
}

func TestEfficientNetDepthwiseFLOPShare(t *testing.T) {
	// Paper Table 2: depthwise convolutions are ~5% of B7 FLOPs while
	// Conv2D is ~95%.
	s := hlo.Stats(EfficientNet(7, 1))
	share := float64(s.DepthwiseFLOPs) / float64(s.FLOPs)
	if share < 0.02 || share > 0.10 {
		t.Errorf("B7 depthwise FLOP share = %.3f, want ~0.05", share)
	}
}

func TestEfficientNetScaling(t *testing.T) {
	// Compound scaling: FLOPs must grow strictly with variant, roughly 2×
	// per step of the compound coefficient.
	prev := int64(0)
	for v := 0; v <= 7; v++ {
		f := hlo.GraphFLOPs(EfficientNet(v, 1))
		if f <= prev {
			t.Errorf("B%d FLOPs %d not > B%d %d", v, f, v-1, prev)
		}
		prev = f
	}
	b0 := float64(hlo.GraphFLOPs(EfficientNet(0, 1)))
	// Published B0 ≈ 0.39 GFLOPs (0.78 GFLOP with 2×MAC convention).
	if b0 < 0.5e9 || b0 > 1.2e9 {
		t.Errorf("B0 FLOPs = %.2e, want ≈0.78e9 (2/MAC)", b0)
	}
	b7 := float64(hlo.GraphFLOPs(EfficientNet(7, 1)))
	if r := b7 / b0; r < 40 || r > 130 {
		t.Errorf("B7/B0 FLOP ratio = %.0f, want ~95 (37G vs 0.39G MACs)", r)
	}
}

func TestRoundFilters(t *testing.T) {
	cases := []struct {
		f    int64
		w    float64
		want int64
	}{
		{32, 1.0, 32},
		{32, 2.0, 64},
		{32, 1.1, 32}, // 35.2 → 32 (>=90% of 35.2=31.7)
		{24, 1.4, 32}, // 33.6 → 32
		{16, 1.8, 32}, // 28.8 → 32 (round 28.8+4=32.8/8*8=32)
		{3, 1.0, 3},   // width 1 passthrough
	}
	for _, c := range cases {
		if got := roundFilters(c.f, c.w); got != c.want {
			t.Errorf("roundFilters(%d, %.1f) = %d, want %d", c.f, c.w, got, c.want)
		}
	}
}

func TestRoundRepeats(t *testing.T) {
	if roundRepeats(4, 3.1) != 13 {
		t.Errorf("roundRepeats(4, 3.1) = %d, want 13", roundRepeats(4, 3.1))
	}
	if roundRepeats(1, 1.0) != 1 {
		t.Errorf("roundRepeats(1, 1.0) = %d, want 1", roundRepeats(1, 1.0))
	}
}

func TestResNet50Weights(t *testing.T) {
	// Published ResNet-50 ≈ 25.6M params → ~49 MiB bf16.
	got := tensor.MiB(hlo.WeightBytes(ResNet50v2(1)))
	if got < 40 || got > 60 {
		t.Errorf("ResNet50 weights = %.1f MiB, want ≈49", got)
	}
	// Published ≈ 4.1 GMACs → 8.2 GFLOPs.
	f := float64(hlo.GraphFLOPs(ResNet50v2(1)))
	if f < 7e9 || f > 10e9 {
		t.Errorf("ResNet50 FLOPs = %.2e, want ≈8.2e9", f)
	}
}

func TestBERTStructure(t *testing.T) {
	g := BERTBase(1, 128)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Published BERT-Base ≈ 110M params → ~210 MiB bf16.
	got := tensor.MiB(hlo.WeightBytes(g))
	if got < 180 || got > 240 {
		t.Errorf("BERT-Base weights = %.1f MiB, want ≈210", got)
	}
	// Attention einsums are act×act.
	actact := 0
	for _, op := range g.Ops {
		if op.Kind == hlo.KEinsum && op.Einsum.ActAct {
			actact++
		}
	}
	if actact != 24 { // 2 per layer × 12 layers
		t.Errorf("act×act einsums = %d, want 24", actact)
	}
}

func TestBERTQuadraticAttention(t *testing.T) {
	// Softmax + attention FLOPs scale quadratically with sequence length;
	// QKV/FFN scale linearly (§4.3).
	attnFLOPs := func(seq int64) (attn, linear int64) {
		g := BERTBase(1, seq)
		for _, op := range g.Ops {
			f := hlo.FLOPs(op)
			switch {
			case strings.Contains(op.Name, "attn.scores"),
				strings.Contains(op.Name, "attn.context"),
				strings.Contains(op.Name, "attn.softmax"):
				attn += f
			case strings.Contains(op.Name, "qkv"), strings.Contains(op.Name, "ffn"):
				linear += f
			}
		}
		return
	}
	a128, l128 := attnFLOPs(128)
	a1024, l1024 := attnFLOPs(1024)
	if r := float64(a1024) / float64(a128); r < 50 || r > 80 {
		t.Errorf("attention FLOP ratio 1024/128 = %.0f, want ≈64 (quadratic)", r)
	}
	if r := float64(l1024) / float64(l128); r < 7 || r > 9 {
		t.Errorf("linear FLOP ratio 1024/128 = %.0f, want 8 (linear)", r)
	}
}

func TestOCRRecognizerWeightSharing(t *testing.T) {
	g := OCRRecognizer(1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// 4 shared LSTM weight sets (2 layers × 2 directions); total model
	// weights must be far below the sum over unrolled steps.
	var unshared, shared int64
	for _, op := range g.Ops {
		if op.Kind == hlo.KLSTMCell {
			unshared += op.WeightBytes()
		}
	}
	shared = hlo.WeightBytes(g)
	if shared*10 > unshared {
		t.Errorf("weight sharing ineffective: shared=%d unrolled-sum=%d", shared, unshared)
	}
}

func TestOCRRPNOutputs(t *testing.T) {
	g := OCRRPN(1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Two outputs (objectness + boxes) per pyramid level, 4 levels.
	if len(g.Outputs()) != 8 {
		t.Errorf("RPN outputs = %d, want 8", len(g.Outputs()))
	}
}

func TestRegistry(t *testing.T) {
	if _, err := Build("nonexistent", 1); err == nil {
		t.Error("expected error for unknown workload")
	}
	if _, err := Build("efficientnet-b9", 1); err == nil {
		t.Error("expected error for B9")
	}
	if _, err := Build("bert-0", 1); err == nil {
		t.Error("expected error for bert-0")
	}
	g, err := Build("bert-512", 1)
	if err != nil || g == nil {
		t.Fatalf("bert-512: %v", err)
	}
	for _, n := range Names() {
		if _, err := Build(n, 1); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
	if len(MultiWorkloadSuite()) != 5 {
		t.Error("multi-workload suite must have 5 entries")
	}
}

func TestBatchScaling(t *testing.T) {
	for _, name := range []string{"efficientnet-b0", "resnet50", "bert-128"} {
		g1 := MustBuild(name, 1)
		g8 := MustBuild(name, 8)
		if hlo.GraphFLOPs(g8) != 8*hlo.GraphFLOPs(g1) {
			t.Errorf("%s: FLOPs not linear in batch", name)
		}
		if hlo.WeightBytes(g8) != hlo.WeightBytes(g1) {
			t.Errorf("%s: weights scale with batch", name)
		}
	}
}

func TestMobileNetV2(t *testing.T) {
	g := MobileNetV2(1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Published MobileNetV2: ≈3.5M params (~6.7 MiB bf16), ≈0.3 GMACs
	// (0.6 GFLOPs at 2/MAC).
	if got := tensor.MiB(hlo.WeightBytes(g)); got < 5 || got > 9 {
		t.Errorf("MobileNetV2 weights = %.1f MiB, want ≈6.7", got)
	}
	f := float64(hlo.GraphFLOPs(g))
	if f < 0.45e9 || f > 0.9e9 {
		t.Errorf("MobileNetV2 FLOPs = %.2e, want ≈0.6e9", f)
	}
	// Heavier on depthwise share than ResNet, like EfficientNet.
	s := hlo.Stats(g)
	if s.DepthwiseFLOPs == 0 {
		t.Error("MobileNetV2 must contain depthwise convolutions")
	}
}
