package models

import (
	"fmt"

	"fast/internal/hlo"
	"fast/internal/tensor"
)

// OCRRPN builds the first stage of the production OCR pipeline described
// in Qin et al. (2019): a standard Mask R-CNN region-proposal network — a
// ResNet-50 backbone over a 640×640 page image, an FPN, and the shared
// RPN head run at every pyramid level. This stage is convolution-heavy
// with large spatial extents and is already TPU-friendly (the paper's
// "worst case for FAST gains" workload).
func OCRRPN(batch int64) *hlo.Graph {
	g := hlo.NewGraph("ocr-rpn")
	g.InBlock("stem")
	x := g.Input("page", tensor.NewShape(tensor.BF16, batch, 640, 640, 3))
	h := g.Conv2D("stem.conv", x, 64, 7, 7, 2, true)
	h = g.BatchNorm("stem.bn", h)
	h = g.Activation("stem.relu", h, 1)
	h = g.Pool("stem.maxpool", h, 3, 2, true)

	// ResNet-50 backbone (v1-style blocks; cost-equivalent to v2),
	// keeping the C2..C5 stage outputs for the FPN.
	var stageOut []*hlo.Op
	for si, st := range resNetStages {
		for b := int64(0); b < st.blocks; b++ {
			name := fmt.Sprintf("backbone%d_block%d", si+2, b)
			g.InBlock(name)
			stride := int64(1)
			if b == 0 {
				stride = st.stride
			}
			h = bottleneckV2(g, name, h, st.mid, st.out, stride)
		}
		stageOut = append(stageOut, h)
	}

	// FPN: 1×1 lateral convs onto 256 channels plus 3×3 output convs.
	// Upsampling is modeled as a transpose-cost data movement.
	var pyramids []*hlo.Op
	for i := len(stageOut) - 1; i >= 0; i-- {
		name := fmt.Sprintf("fpn_p%d", i+2)
		g.InBlock(name)
		lat := g.Conv2D(name+".lateral", stageOut[i], 256, 1, 1, 1, true)
		out := g.Conv2D(name+".output", lat, 256, 3, 3, 1, true)
		pyramids = append(pyramids, out)
	}

	// RPN head: shared 3×3 conv then objectness (3 anchors) and box
	// regression (12) sibling 1×1 convs at every level.
	for i, p := range pyramids {
		name := fmt.Sprintf("rpn_p%d", len(pyramids)-i+1)
		g.InBlock(name)
		head := g.Conv2D(name+".conv", p, 256, 3, 3, 1, true)
		head = g.Activation(name+".relu", head, 1)
		obj := g.Conv2D(name+".objectness", head, 3, 1, 1, 1, true)
		box := g.Conv2D(name+".boxes", head, 12, 1, 1, 1, true)
		g.Output(obj)
		g.Output(box)
	}
	return g
}

// OCRRecognizer builds the LSTM-based text-line recognizer stage of the
// OCR pipeline: a small convolutional feature extractor over a 32×320
// line crop followed by a 2-layer bidirectional LSTM over 80 time steps
// and a character classifier. Sequential LSTM steps with small matmuls
// make it latency- rather than throughput-bound.
func OCRRecognizer(batch int64) *hlo.Graph {
	const (
		steps  = 80
		hidden = 256
		chars  = 128 // charset size
	)
	g := hlo.NewGraph("ocr-recognizer")
	g.InBlock("encoder")
	x := g.Input("line", tensor.NewShape(tensor.BF16, batch, 32, 320, 3))
	h := g.Conv2D("encoder.conv1", x, 64, 3, 3, 1, true)
	h = g.BatchNorm("encoder.bn1", h)
	h = g.Activation("encoder.relu1", h, 1)
	h = g.Pool("encoder.pool1", h, 2, 2, true)
	h = g.Conv2D("encoder.conv2", h, 128, 3, 3, 1, true)
	h = g.BatchNorm("encoder.bn2", h)
	h = g.Activation("encoder.relu2", h, 1)
	h = g.Pool("encoder.pool2", h, 2, 2, true)
	h = g.Conv2D("encoder.conv3", h, 256, 3, 3, 1, true)
	h = g.BatchNorm("encoder.bn3", h)
	h = g.Activation("encoder.relu3", h, 1)
	// Collapse height; the width axis becomes the sequence: [B, 80, 8·256].
	feat := g.Reshape("encoder.to-seq", h,
		tensor.NewShape(tensor.BF16, batch, steps, 8*256))

	// Two stacked bidirectional LSTM layers, unrolled over time — the form
	// the inference XLA graph takes. Every time step of a (layer,
	// direction) pair reuses one set of cell weights.
	stepIn := make([]*hlo.Op, steps)
	for t := 0; t < steps; t++ {
		stepIn[t] = g.SliceStep(fmt.Sprintf("encoder.step%02d", t), feat, int64(t))
	}
	for layer := 0; layer < 2; layer++ {
		fwd := make([]*hlo.Op, steps)
		bwd := make([]*hlo.Op, steps)
		for _, dir := range []string{"fwd", "bwd"} {
			g.InBlock(fmt.Sprintf("lstm%d_%s", layer, dir))
			key := fmt.Sprintf("lstm%d.%s.w", layer, dir)
			for i := 0; i < steps; i++ {
				t := i
				if dir == "bwd" {
					t = steps - 1 - i
				}
				cell := g.LSTMCell(fmt.Sprintf("lstm%d.%s.t%02d", layer, dir, t), stepIn[t], hidden)
				cell.WeightKey = key
				if dir == "fwd" {
					fwd[t] = cell
				} else {
					bwd[t] = cell
				}
			}
		}
		g.InBlock(fmt.Sprintf("lstm%d_merge", layer))
		for t := 0; t < steps; t++ {
			stepIn[t] = g.Concat(fmt.Sprintf("lstm%d.concat.t%02d", layer, t), 1, fwd[t], bwd[t])
		}
	}

	g.InBlock("classifier")
	seq := g.Concat("classifier.stack", 0, stepIn...)
	logits := g.MatMul("classifier.logits", seq, chars)
	sm := g.Softmax("classifier.softmax", logits)
	g.Output(sm)
	return g
}
