package models

import (
	"fmt"

	"fast/internal/hlo"
	"fast/internal/tensor"
)

// BERTConfig parameterizes a BERT encoder stack. Base() matches BERT-Base
// (Devlin et al. 2019).
type BERTConfig struct {
	Layers    int64
	Hidden    int64
	Heads     int64
	FFN       int64
	VocabSize int64
	SeqLen    int64
	Batch     int64
}

// BERTBaseConfig returns the BERT-Base hyperparameters at the given batch
// and sequence length.
func BERTBaseConfig(batch, seqLen int64) BERTConfig {
	return BERTConfig{
		Layers: 12, Hidden: 768, Heads: 12, FFN: 3072,
		VocabSize: 30522, SeqLen: seqLen, Batch: batch,
	}
}

// BERT builds a BERT encoder graph from the config. Op names prefix each
// component so per-op runtime breakdowns (Figure 5) can classify by
// substring: "qkv", "attn.scores", "attn.softmax", "attn.context",
// "attn.output", "ffn".
func BERT(cfg BERTConfig) *hlo.Graph {
	g := hlo.NewGraph(fmt.Sprintf("bert-seq%d", cfg.SeqLen))
	headDim := cfg.Hidden / cfg.Heads

	g.InBlock("embeddings")
	ids := g.Input("token-ids", tensor.NewShape(tensor.INT8, cfg.Batch, cfg.SeqLen, 1))
	// Embedding lookup reads the [vocab+positions+segments, hidden] table.
	x := g.Gather("embeddings.lookup", ids, cfg.VocabSize+512+2, cfg.Hidden)
	seq := g.LayerNorm("embeddings.layernorm", x)

	for l := int64(0); l < cfg.Layers; l++ {
		name := fmt.Sprintf("layer%d", l)
		g.InBlock(name)

		// --- Self-attention ---
		q := g.MatMul(name+".qkv.query", seq, cfg.Hidden)
		k := g.MatMul(name+".qkv.key", seq, cfg.Hidden)
		v := g.MatMul(name+".qkv.value", seq, cfg.Hidden)

		qh := g.Reshape(name+".q.split", q,
			tensor.NewShape(tensor.BF16, cfg.Batch*cfg.Heads, cfg.SeqLen, headDim))
		kh := g.Reshape(name+".k.split", k,
			tensor.NewShape(tensor.BF16, cfg.Batch*cfg.Heads, headDim, cfg.SeqLen))
		vh := g.Reshape(name+".v.split", v,
			tensor.NewShape(tensor.BF16, cfg.Batch*cfg.Heads, cfg.SeqLen, headDim))

		// QK^T: activation×activation, O(seq²) — the §4.3 bottleneck.
		scores := g.Einsum(name+".attn.scores", qh, kh,
			cfg.Batch*cfg.Heads, cfg.SeqLen, cfg.SeqLen, headDim)
		probs := g.Softmax(name+".attn.softmax", scores)
		ctx := g.Einsum(name+".attn.context", probs, vh,
			cfg.Batch*cfg.Heads, cfg.SeqLen, headDim, cfg.SeqLen)
		merged := g.Reshape(name+".attn.merge", ctx,
			tensor.NewShape(tensor.BF16, cfg.Batch, cfg.SeqLen, cfg.Hidden))
		attnOut := g.MatMul(name+".attn.output", merged, cfg.Hidden)
		res1 := g.Add(name+".attn.residual", attnOut, seq)
		norm1 := g.LayerNorm(name+".attn.layernorm", res1)

		// --- Feed-forward ---
		ff1 := g.MatMul(name+".ffn.intermediate", norm1, cfg.FFN)
		ff1 = g.Activation(name+".ffn.gelu", ff1, 6)
		ff2 := g.MatMul(name+".ffn.output", ff1, cfg.Hidden)
		res2 := g.Add(name+".ffn.residual", ff2, norm1)
		seq = g.LayerNorm(name+".ffn.layernorm", res2)
	}

	g.InBlock("pooler")
	pooled := g.Reshape("pooler.first-token", seq,
		tensor.NewShape(tensor.BF16, cfg.Batch*cfg.SeqLen, cfg.Hidden))
	logits := g.MatMul("pooler.dense", pooled, cfg.Hidden)
	g.Output(logits)
	return g
}

// BERTBase builds BERT-Base at the given batch and sequence length.
func BERTBase(batch, seqLen int64) *hlo.Graph {
	return BERT(BERTBaseConfig(batch, seqLen))
}
