package models

import (
	"fmt"

	"fast/internal/hlo"
	"fast/internal/tensor"
)

// GPTConfig parameterizes a GPT-style decoder-transformer stack.
// GPT2SmallConfig matches GPT-2 small (Radford et al. 2019).
//
// The same config builds two graphs for the two serving phases:
//
//   - GPTPrefill: the full-sequence pass over Context tokens that
//     populates the KV-cache (compute-bound, BERT-shaped).
//   - GPTDecode: one autoregressive step at sequence length 1 attending
//     over a KV-cache at occupancy Context (matvec- and
//     cache-bandwidth-bound — the regime that stresses residency).
type GPTConfig struct {
	Layers    int64
	Hidden    int64
	Heads     int64
	FFN       int64
	VocabSize int64
	// Context is the prefill sequence length, or the KV-cache occupancy
	// (including the current token) a decode step attends over.
	Context int64
	Batch   int64
	// LocalWindow, when > 0, selects SPLAT-style block-local sparse
	// attention: prefill attention is confined to diagonal blocks of
	// this width, and a decode step reads only the most recent
	// min(Context, LocalWindow) cache entries. Zero means dense
	// attention.
	LocalWindow int64
}

// GPT2SmallConfig returns GPT-2-small hyperparameters (12 layers, 768
// hidden, 12 heads, 50257 vocab) at the given batch and context length.
func GPT2SmallConfig(batch, context int64) GPTConfig {
	return GPTConfig{
		Layers: 12, Hidden: 768, Heads: 12, FFN: 3072,
		VocabSize: 50257, Context: context, Batch: batch,
	}
}

func (cfg GPTConfig) check(prefill bool) {
	if cfg.Layers < 1 || cfg.Heads < 1 || cfg.Hidden%cfg.Heads != 0 {
		panic(fmt.Sprintf("models: bad GPT config layers=%d heads=%d hidden=%d",
			cfg.Layers, cfg.Heads, cfg.Hidden))
	}
	if cfg.Context < 1 {
		panic(fmt.Sprintf("models: bad GPT context %d", cfg.Context))
	}
	if prefill && cfg.LocalWindow > 0 && cfg.Context%cfg.LocalWindow != 0 {
		panic(fmt.Sprintf("models: block-local prefill needs context %d divisible by window %d",
			cfg.Context, cfg.LocalWindow))
	}
}

// GPTPrefill builds the prefill graph: a causal-decoder stack evaluated
// at the full context length, plus the LM head over every position. Op
// names match BERT's component naming ("qkv", "attn.scores",
// "attn.softmax", "attn.context", "attn.output", "ffn") so per-op
// breakdowns classify both the same way, and match GPTDecode's names
// op-for-op so phase costs can be compared by name.
//
// Attention einsums are charged at the full seq×seq contraction (no
// causal discount), which keeps the prefill/decode marginal-cost
// identity exact: every linear op costs Context × its decode
// counterpart, and each attention einsum at context N costs N × the
// decode einsum at occupancy N.
func GPTPrefill(cfg GPTConfig) *hlo.Graph {
	cfg.check(true)
	variant := ""
	if cfg.LocalWindow > 0 {
		variant = fmt.Sprintf("-local%d", cfg.LocalWindow)
	}
	g := hlo.NewGraph(fmt.Sprintf("gpt-prefill-seq%d%s", cfg.Context, variant))
	headDim := cfg.Hidden / cfg.Heads
	seqLen := cfg.Context

	g.InBlock("embeddings")
	ids := g.Input("token-ids", tensor.NewShape(tensor.INT8, cfg.Batch, seqLen, 1))
	x := g.Gather("embeddings.lookup", ids, cfg.VocabSize+cfg.Context, cfg.Hidden)
	seq := g.LayerNorm("embeddings.layernorm", x)

	for l := int64(0); l < cfg.Layers; l++ {
		name := fmt.Sprintf("layer%d", l)
		g.InBlock(name)

		q := g.MatMul(name+".qkv.query", seq, cfg.Hidden)
		k := g.MatMul(name+".qkv.key", seq, cfg.Hidden)
		v := g.MatMul(name+".qkv.value", seq, cfg.Hidden)

		qh := g.Reshape(name+".q.split", q,
			tensor.NewShape(tensor.BF16, cfg.Batch*cfg.Heads, seqLen, headDim))
		kh := g.Reshape(name+".k.split", k,
			tensor.NewShape(tensor.BF16, cfg.Batch*cfg.Heads, headDim, seqLen))
		vh := g.Reshape(name+".v.split", v,
			tensor.NewShape(tensor.BF16, cfg.Batch*cfg.Heads, seqLen, headDim))

		// Contraction geometry: dense attends all-to-all; block-local
		// partitions the sequence into Context/Window diagonal blocks,
		// shrinking the act×act products Window/Context-fold (SPLAT's
		// structured-sparsity regime).
		eb, em, en := cfg.Batch*cfg.Heads, seqLen, seqLen
		if w := cfg.LocalWindow; w > 0 {
			eb, em, en = cfg.Batch*cfg.Heads*(seqLen/w), w, w
		}
		scores := g.Einsum(name+".attn.scores", qh, kh, eb, em, en, headDim)
		probs := g.Softmax(name+".attn.softmax", scores)
		ctx := g.Einsum(name+".attn.context", probs, vh, eb, em, headDim, en)
		merged := g.Reshape(name+".attn.merge", ctx,
			tensor.NewShape(tensor.BF16, cfg.Batch, seqLen, cfg.Hidden))
		attnOut := g.MatMul(name+".attn.output", merged, cfg.Hidden)
		res1 := g.Add(name+".attn.residual", attnOut, seq)
		norm1 := g.LayerNorm(name+".attn.layernorm", res1)

		ff1 := g.MatMul(name+".ffn.intermediate", norm1, cfg.FFN)
		ff1 = g.Activation(name+".ffn.gelu", ff1, 6)
		ff2 := g.MatMul(name+".ffn.output", ff1, cfg.Hidden)
		res2 := g.Add(name+".ffn.residual", ff2, norm1)
		seq = g.LayerNorm(name+".ffn.layernorm", res2)
	}

	g.InBlock("lm_head")
	flat := g.Reshape("lm_head.flatten", seq,
		tensor.NewShape(tensor.BF16, cfg.Batch*seqLen, cfg.Hidden))
	logits := g.MatMul("lm_head.proj", flat, cfg.VocabSize)
	g.Output(logits)
	return g
}

// GPTDecode builds one autoregressive decode step: sequence length 1
// over a KV-cache at occupancy cfg.Context. Each layer reads persistent
// kcache/vcache tensors (hlo.KVCache sources — residency candidates,
// not activations), and the step's freshly projected key/value rows are
// written back out as the cache append. With LocalWindow set, the
// attention reads only the most recent min(Context, LocalWindow) cache
// entries.
func GPTDecode(cfg GPTConfig) *hlo.Graph {
	cfg.check(false)
	variant := ""
	if cfg.LocalWindow > 0 {
		variant = fmt.Sprintf("-local%d", cfg.LocalWindow)
	}
	g := hlo.NewGraph(fmt.Sprintf("gpt-decode-ctx%d%s", cfg.Context, variant))
	headDim := cfg.Hidden / cfg.Heads
	width := cfg.Context // cache entries the step attends over
	if cfg.LocalWindow > 0 && cfg.LocalWindow < width {
		width = cfg.LocalWindow
	}

	g.InBlock("embeddings")
	ids := g.Input("token-ids", tensor.NewShape(tensor.INT8, cfg.Batch, 1, 1))
	x := g.Gather("embeddings.lookup", ids, cfg.VocabSize+cfg.Context, cfg.Hidden)
	seq := g.LayerNorm("embeddings.layernorm", x)

	for l := int64(0); l < cfg.Layers; l++ {
		name := fmt.Sprintf("layer%d", l)
		g.InBlock(name)

		q := g.MatMul(name+".qkv.query", seq, cfg.Hidden)
		k := g.MatMul(name+".qkv.key", seq, cfg.Hidden)
		v := g.MatMul(name+".qkv.value", seq, cfg.Hidden)
		// The new token's K/V rows are appended to the cache in DRAM.
		g.Output(k)
		g.Output(v)

		qh := g.Reshape(name+".q.split", q,
			tensor.NewShape(tensor.BF16, cfg.Batch*cfg.Heads, 1, headDim))
		kcache := g.KVCache(name+".kcache",
			tensor.NewShape(tensor.BF16, cfg.Batch*cfg.Heads, headDim, width))
		vcache := g.KVCache(name+".vcache",
			tensor.NewShape(tensor.BF16, cfg.Batch*cfg.Heads, width, headDim))

		scores := g.Einsum(name+".attn.scores", qh, kcache,
			cfg.Batch*cfg.Heads, 1, width, headDim)
		probs := g.Softmax(name+".attn.softmax", scores)
		ctx := g.Einsum(name+".attn.context", probs, vcache,
			cfg.Batch*cfg.Heads, 1, headDim, width)
		merged := g.Reshape(name+".attn.merge", ctx,
			tensor.NewShape(tensor.BF16, cfg.Batch, 1, cfg.Hidden))
		attnOut := g.MatMul(name+".attn.output", merged, cfg.Hidden)
		res1 := g.Add(name+".attn.residual", attnOut, seq)
		norm1 := g.LayerNorm(name+".attn.layernorm", res1)

		ff1 := g.MatMul(name+".ffn.intermediate", norm1, cfg.FFN)
		ff1 = g.Activation(name+".ffn.gelu", ff1, 6)
		ff2 := g.MatMul(name+".ffn.output", ff1, cfg.Hidden)
		res2 := g.Add(name+".ffn.residual", ff2, norm1)
		seq = g.LayerNorm(name+".ffn.layernorm", res2)
	}

	g.InBlock("lm_head")
	flat := g.Reshape("lm_head.flatten", seq,
		tensor.NewShape(tensor.BF16, cfg.Batch, cfg.Hidden))
	logits := g.MatMul("lm_head.proj", flat, cfg.VocabSize)
	g.Output(logits)
	return g
}
