package models

import (
	"fmt"

	"fast/internal/hlo"
	"fast/internal/tensor"
)

// mobileNetV2Stages is the inverted-residual table from Sandler et al.
// (2018): expansion t, output channels c, repeats n, first stride s.
var mobileNetV2Stages = []struct {
	t, c, n, s int64
}{
	{1, 16, 1, 1},
	{6, 24, 2, 2},
	{6, 32, 3, 2},
	{6, 64, 4, 2},
	{6, 96, 3, 1},
	{6, 160, 3, 2},
	{6, 320, 1, 1},
}

// MobileNetV2 builds MobileNetV2 (224×224, width 1.0) in bf16 — the
// architecture that introduced the inverted-residual (MBConv) block the
// paper's EfficientNet analysis builds on. Unlike EfficientNet it has no
// squeeze-excite blocks and uses ReLU6, so it isolates the pure
// depthwise-separable bottleneck.
func MobileNetV2(batch int64) *hlo.Graph {
	g := hlo.NewGraph("mobilenetv2")
	g.InBlock("stem")
	x := g.Input("images", tensor.NewShape(tensor.BF16, batch, 224, 224, 3))
	h := g.Conv2D("stem.conv", x, 32, 3, 3, 2, true)
	h = g.BatchNorm("stem.bn", h)
	h = g.Activation("stem.relu6", h, 1)

	for si, st := range mobileNetV2Stages {
		for rep := int64(0); rep < st.n; rep++ {
			name := fmt.Sprintf("bottleneck%d_%d", si+1, rep)
			g.InBlock(name)
			stride := int64(1)
			if rep == 0 {
				stride = st.s
			}
			inCh := h.Output.Dim(3)
			block := h
			if st.t != 1 {
				block = g.Conv2D(name+".expand", block, inCh*st.t, 1, 1, 1, true)
				block = g.BatchNorm(name+".expand.bn", block)
				block = g.Activation(name+".expand.relu6", block, 1)
			}
			block = g.DepthwiseConv2D(name+".dwconv", block, 3, 3, stride, true)
			block = g.BatchNorm(name+".dwconv.bn", block)
			block = g.Activation(name+".dwconv.relu6", block, 1)
			block = g.Conv2D(name+".project", block, st.c, 1, 1, 1, true)
			block = g.BatchNorm(name+".project.bn", block)
			if stride == 1 && inCh == st.c {
				block = g.Add(name+".residual", block, h)
			}
			h = block
		}
	}

	g.InBlock("head")
	h = g.Conv2D("head.conv", h, 1280, 1, 1, 1, true)
	h = g.BatchNorm("head.bn", h)
	h = g.Activation("head.relu6", h, 1)
	h = g.GlobalPool("head.pool", h)
	h = g.Reshape("head.flatten", h, tensor.NewShape(tensor.BF16, batch, 1280))
	h = g.MatMul("head.logits", h, 1000)
	g.Output(h)
	return g
}
