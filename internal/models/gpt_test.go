package models

import (
	"strings"
	"testing"

	"fast/internal/hlo"
	"fast/internal/tensor"
)

// findOp returns the unique op with the given name, or fails the test.
func findOp(t *testing.T, g *hlo.Graph, name string) *hlo.Op {
	t.Helper()
	for _, op := range g.Ops {
		if op.Name == name {
			return op
		}
	}
	t.Fatalf("%s: no op named %q", g.Name, name)
	return nil
}

// TestGPTGoldenPins pins the registry decoder workloads' structure: op
// counts, total FLOPs, KV-cache footprints, and weight bytes at batch 1.
// These are the decoder analogue of the encoder suite's frozen reference:
// any change to the builders must re-justify these numbers.
func TestGPTGoldenPins(t *testing.T) {
	pins := []struct {
		name            string
		ops             int
		flops, kv, wgts int64
	}{
		{"gpt2-prefill-128", 222, 32285491200, 0, 324798626},
		{"gpt2-prefill-1024", 222, 292767399936, 0, 326174882},
		{"gpt2-decode-1024", 246, 285905664, 37748736, 326174882},
		{"gpt2-local-prefill-1024", 222, 263210139648, 0, 326174882},
		{"gpt2-local-decode-1024", 246, 257041152, 9437184, 326174882},
	}
	for _, pin := range pins {
		g := MustBuild(pin.name, 1)
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", pin.name, err)
		}
		s := hlo.Stats(g)
		if s.Ops != pin.ops {
			t.Errorf("%s: %d ops, want %d", pin.name, s.Ops, pin.ops)
		}
		if s.FLOPs != pin.flops {
			t.Errorf("%s: %d FLOPs, want %d", pin.name, s.FLOPs, pin.flops)
		}
		if s.KVBytes != pin.kv {
			t.Errorf("%s: %d KV bytes, want %d", pin.name, s.KVBytes, pin.kv)
		}
		if w := hlo.WeightBytes(g); w != pin.wgts {
			t.Errorf("%s: %d weight bytes, want %d", pin.name, w, pin.wgts)
		}
	}
}

// TestGPTDecodeShapes pins the decode step's per-layer tensor geometry at
// GPT-2-small scale (12 heads × 64 head-dim over a 1024-entry cache).
func TestGPTDecodeShapes(t *testing.T) {
	g := MustBuild("gpt2-decode-1024", 1)
	kcache := findOp(t, g, "layer0.kcache")
	if kcache.Kind != hlo.KKVCache {
		t.Fatalf("layer0.kcache kind = %v, want kv-cache", kcache.Kind)
	}
	wantK := tensor.NewShape(tensor.BF16, 12, 64, 1024)
	if kcache.Output.String() != wantK.String() {
		t.Errorf("kcache shape = %v, want %v", kcache.Output, wantK)
	}
	vcache := findOp(t, g, "layer0.vcache")
	wantV := tensor.NewShape(tensor.BF16, 12, 1024, 64)
	if vcache.Output.String() != wantV.String() {
		t.Errorf("vcache shape = %v, want %v", vcache.Output, wantV)
	}
	scores := findOp(t, g, "layer0.attn.scores")
	wantS := tensor.NewShape(tensor.BF16, 12, 1, 1024)
	if scores.Output.String() != wantS.String() {
		t.Errorf("scores shape = %v, want %v", scores.Output, wantS)
	}
	logits := findOp(t, g, "lm_head.proj")
	if logits.Output.Dim(logits.Output.Rank()-1) != 50257 {
		t.Errorf("logits vocab dim = %d, want 50257", logits.Output.Dim(logits.Output.Rank()-1))
	}
	// The fresh K/V rows must be cache-append outputs of the graph.
	var appends int
	for _, out := range g.Outputs() {
		if strings.Contains(out.Name, ".qkv.key") || strings.Contains(out.Name, ".qkv.value") {
			appends++
		}
	}
	if appends != 24 {
		t.Errorf("%d cache-append outputs, want 24 (2 per layer)", appends)
	}
}

// TestGPTStructureScales checks the op-count and KV-footprint closed
// forms across (layers, heads, context): prefill is 18 ops per layer + 6
// fixed, decode is 20 per layer + 6, and the cache holds 2 bf16 tensors
// of batch·context·hidden elements per layer.
func TestGPTStructureScales(t *testing.T) {
	for _, tc := range []struct {
		layers, heads, hidden, context int64
	}{
		{1, 1, 64, 16},
		{2, 4, 128, 64},
		{4, 8, 512, 256},
	} {
		cfg := GPTConfig{
			Layers: tc.layers, Hidden: tc.hidden, Heads: tc.heads,
			FFN: 4 * tc.hidden, VocabSize: 1000,
			Context: tc.context, Batch: 2,
		}
		pre := GPTPrefill(cfg)
		if got, want := len(pre.Ops), int(18*tc.layers+6); got != want {
			t.Errorf("prefill(%+v): %d ops, want %d", tc, got, want)
		}
		dec := GPTDecode(cfg)
		if got, want := len(dec.Ops), int(20*tc.layers+6); got != want {
			t.Errorf("decode(%+v): %d ops, want %d", tc, got, want)
		}
		wantKV := tc.layers * 2 * cfg.Batch * tc.context * tc.hidden * 2
		if got := hlo.Stats(dec).KVBytes; got != wantKV {
			t.Errorf("decode(%+v): %d KV bytes, want %d", tc, got, wantKV)
		}
		if hlo.Stats(pre).KVBytes != 0 {
			t.Errorf("prefill(%+v): nonzero KV bytes", tc)
		}
	}
}

// TestGPTDecodeMarginalFLOPs is the phase-consistency differential: with
// the full (non-causal) prefill contraction, every costed op in the
// decode step at cache occupancy N must cost exactly 1/N of its
// same-named prefill op at sequence length N — the decode graph is the
// prefill graph's marginal token. Holds for dense and block-local
// attention alike.
func TestGPTDecodeMarginalFLOPs(t *testing.T) {
	for _, base := range []string{"gpt2", "gpt2-local"} {
		const n = 1024
		pre := MustBuild(base+"-prefill-1024", 4)
		dec := MustBuild(base+"-decode-1024", 4)
		preFLOPs := make(map[string]int64, len(pre.Ops))
		for _, op := range pre.Ops {
			preFLOPs[op.Name] = hlo.FLOPs(op)
		}
		var matched int
		for _, op := range dec.Ops {
			df := hlo.FLOPs(op)
			if df == 0 {
				continue
			}
			pf, ok := preFLOPs[op.Name]
			if !ok {
				t.Fatalf("%s: decode op %q has no prefill counterpart", base, op.Name)
			}
			if pf != n*df {
				t.Errorf("%s: op %q: prefill %d FLOPs != %d × decode %d", base, op.Name, pf, n, df)
			}
			matched++
		}
		// 6 matrix ops per layer + the LM head, plus the vector ops.
		if matched < 73 {
			t.Errorf("%s: only %d costed ops compared", base, matched)
		}
	}
}

// TestGPTLocalWindow: block-local attention shrinks the act×act
// contractions and the decode cache, and clamps to the context when the
// cache is shorter than the window.
func TestGPTLocalWindow(t *testing.T) {
	dense := hlo.Stats(MustBuild("gpt2-prefill-1024", 1))
	local := hlo.Stats(MustBuild("gpt2-local-prefill-1024", 1))
	if local.FLOPs >= dense.FLOPs {
		t.Errorf("local prefill FLOPs %d not below dense %d", local.FLOPs, dense.FLOPs)
	}
	if d, l := hlo.Stats(MustBuild("gpt2-decode-1024", 1)), hlo.Stats(MustBuild("gpt2-local-decode-1024", 1)); l.KVBytes*4 != d.KVBytes {
		t.Errorf("local decode KV %d, want 1/4 of dense %d (window 256 of context 1024)", l.KVBytes, d.KVBytes)
	}
	// Context shorter than the window: the local decode step degenerates
	// to the dense one.
	short := GPT2SmallConfig(1, 64)
	shortLocal := short
	shortLocal.LocalWindow = 256
	if a, b := hlo.Stats(GPTDecode(short)), hlo.Stats(GPTDecode(shortLocal)); a != b {
		t.Errorf("64-entry cache: local stats %+v != dense %+v", b, a)
	}
}

// TestGPTRegistryNames covers Validate and the registry parser over the
// decoder namespace: every advertised name resolves, malformed ones fail
// without panicking.
func TestGPTRegistryNames(t *testing.T) {
	for _, name := range Names() {
		if err := Validate(name); err != nil {
			t.Errorf("Validate(%q): %v", name, err)
		}
	}
	for _, bad := range []string{
		"gpt2-prefill",           // no length
		"gpt2-prefill-",          // empty length
		"gpt2-prefill-zero",      // non-numeric
		"gpt2-prefill-0",         // out of range
		"gpt2-train-128",         // unknown phase
		"gpt2-local-prefill-100", // not divisible by the 256-wide block
		"gpt2-local-decode-",     // empty length
	} {
		if err := Validate(bad); err == nil {
			t.Errorf("Validate(%q) accepted a malformed name", bad)
		}
	}
	if !UsesKVCache("gpt2-decode-1024") || !UsesKVCache("gpt2-local-decode-512") {
		t.Error("UsesKVCache misses decode workloads")
	}
	for _, enc := range []string{"gpt2-prefill-128", "bert-128", "resnet50"} {
		if UsesKVCache(enc) {
			t.Errorf("UsesKVCache(%q) = true for a cache-free workload", enc)
		}
	}
}
