package models

import (
	"fmt"

	"fast/internal/hlo"
	"fast/internal/tensor"
)

// bottleneckV2 appends one pre-activation bottleneck block (He et al.
// 2016, "Identity Mappings in Deep Residual Networks"): BN→ReLU precede
// each conv; the shortcut is projected on the first block of a stage.
func bottleneckV2(g *hlo.Graph, name string, x *hlo.Op, midCh, outCh, stride int64) *hlo.Op {
	pre := g.BatchNorm(name+".preact.bn", x)
	pre = g.Activation(name+".preact.relu", pre, 1)

	shortcut := x
	if x.Output.Dim(3) != outCh || stride != 1 {
		shortcut = g.Conv2D(name+".shortcut", pre, outCh, 1, 1, stride, true)
	}

	h := g.Conv2D(name+".conv1", pre, midCh, 1, 1, 1, true)
	h = g.BatchNorm(name+".bn1", h)
	h = g.Activation(name+".relu1", h, 1)
	h = g.Conv2D(name+".conv2", h, midCh, 3, 3, stride, true)
	h = g.BatchNorm(name+".bn2", h)
	h = g.Activation(name+".relu2", h, 1)
	h = g.Conv2D(name+".conv3", h, outCh, 1, 1, 1, true)
	return g.Add(name+".residual", h, shortcut)
}

// resNetStages is the ResNet-50 stage table: (mid channels, out channels,
// block count, first-block stride).
var resNetStages = []struct {
	mid, out, blocks, stride int64
}{
	{64, 256, 3, 1},
	{128, 512, 4, 2},
	{256, 1024, 6, 2},
	{512, 2048, 3, 2},
}

// ResNet50v2 builds ResNet-50v2 for 224×224 ImageNet inference in bf16.
func ResNet50v2(batch int64) *hlo.Graph {
	g := hlo.NewGraph("resnet50v2")
	g.InBlock("stem")
	x := g.Input("images", tensor.NewShape(tensor.BF16, batch, 224, 224, 3))
	h := g.Conv2D("stem.conv", x, 64, 7, 7, 2, true)
	h = g.Pool("stem.maxpool", h, 3, 2, true)

	for si, st := range resNetStages {
		for b := int64(0); b < st.blocks; b++ {
			name := fmt.Sprintf("stage%d_block%d", si+1, b)
			g.InBlock(name)
			stride := int64(1)
			if b == 0 {
				stride = st.stride
			}
			h = bottleneckV2(g, name, h, st.mid, st.out, stride)
		}
	}

	g.InBlock("head")
	h = g.BatchNorm("head.bn", h)
	h = g.Activation("head.relu", h, 1)
	h = g.GlobalPool("head.pool", h)
	h = g.Reshape("head.flatten", h, tensor.NewShape(tensor.BF16, batch, 2048))
	h = g.MatMul("head.logits", h, 1000)
	g.Output(h)
	return g
}
