package search

import (
	"math/rand"
	"testing"

	"fast/internal/arch"
)

// snapObjective is a cheap deterministic stand-in objective with a
// feasibility boundary, shared by the snapshot tests.
func snapObjective(idx [arch.NumParams]int) Evaluation {
	sum := 0
	for _, v := range idx {
		sum += v
	}
	if sum%5 == 0 {
		return Evaluation{} // infeasible band, exercises safe-search paths
	}
	v := float64(sum) + 0.25*float64(idx[0]-idx[3])
	return Evaluation{Value: v, Values: []float64{v, -float64(idx[1])}, Feasible: true}
}

// driveBatches pumps opt through ask/tell rounds of the given sizes,
// returning every told trial in order.
func driveBatches(t *testing.T, opt Optimizer, sizes []int) []Trial {
	t.Helper()
	var history []Trial
	for _, n := range sizes {
		asks := opt.Ask(n)
		if len(asks) != n {
			t.Fatalf("Ask(%d) returned %d proposals", n, len(asks))
		}
		batch := make([]Trial, n)
		for i, idx := range asks {
			batch[i] = Trial{Index: idx, Evaluation: snapObjective(idx)}
		}
		opt.Tell(batch)
		history = append(history, batch...)
	}
	return history
}

// TestSnapshotRestoreIdentity is the checkpoint round-trip property
// test: for every algorithm, at randomized mid-study points with
// randomized batch shapes, Snapshot → Restore must yield an optimizer
// whose future proposals are bit-identical to the original's — i.e.
// restoring is the identity on optimizer state.
func TestSnapshotRestoreIdentity(t *testing.T) {
	algs := []Algorithm{AlgRandom, AlgLCS, AlgBayes, AlgNSGA2}
	rng := rand.New(rand.NewSource(77))
	for _, alg := range algs {
		for trial := 0; trial < 5; trial++ {
			seed := rng.Int63n(1000)
			budget := 40 + rng.Intn(100)
			// Random batch-size schedule up to a random mid-study cut.
			var sizes []int
			total := 0
			cut := 1 + rng.Intn(60)
			for total < cut {
				n := 1 + rng.Intn(16)
				if total+n > cut {
					n = cut - total
				}
				sizes = append(sizes, n)
				total += n
			}

			orig := New(alg, seed, budget)
			driveBatches(t, orig, sizes)

			snap := orig.(Snapshotter).Snapshot()
			if err := snap.Validate(); err != nil {
				t.Fatalf("%s: snapshot invalid: %v", alg, err)
			}
			if len(snap.Trials) != total {
				t.Fatalf("%s: snapshot holds %d trials, drove %d", alg, len(snap.Trials), total)
			}
			restored, err := Restore(snap)
			if err != nil {
				t.Fatalf("%s: Restore: %v", alg, err)
			}

			// Both must now produce identical futures.
			futureSizes := []int{7, 16, 3, 16}
			a := driveBatches(t, orig, futureSizes)
			b := driveBatches(t, restored, futureSizes)
			for i := range a {
				if !a[i].Equal(b[i]) {
					t.Fatalf("%s seed=%d cut=%d: future trial %d diverged: %v vs %v",
						alg, seed, cut, i, a[i], b[i])
				}
			}
		}
	}
}

// TestSnapshotIsCopy verifies Snapshot shares no mutable state with the
// live optimizer: mutating the returned snapshot must not perturb the
// optimizer, and a second snapshot must be unaffected.
func TestSnapshotIsCopy(t *testing.T) {
	opt := New(AlgNSGA2, 3, 64)
	driveBatches(t, opt, []int{16, 16})
	snap := opt.(Snapshotter).Snapshot()
	for i := range snap.Trials {
		snap.Trials[i].Index[0] = 999
		for k := range snap.Trials[i].Values {
			snap.Trials[i].Values[k] = -1e18
		}
	}
	snap.AskSizes[0] = 999
	again := opt.(Snapshotter).Snapshot()
	if again.AskSizes[0] != 16 || again.Trials[0].Index[0] == 999 {
		t.Fatal("mutating a snapshot leaked into the optimizer state")
	}
	if again.Trials[0].Feasible && again.Trials[0].Values != nil && again.Trials[0].Values[0] == -1e18 {
		t.Fatal("snapshot shares Values storage with the optimizer")
	}
}

// TestRestoreRejectsMismatch verifies the replay verification: a
// snapshot replayed under the wrong seed must be rejected, not silently
// fork the search.
func TestRestoreRejectsMismatch(t *testing.T) {
	opt := New(AlgLCS, 5, 64)
	driveBatches(t, opt, []int{16})
	snap := opt.(Snapshotter).Snapshot()

	bad := snap
	bad.Seed = 6
	if _, err := Restore(bad); err == nil {
		t.Fatal("Restore accepted a snapshot under the wrong seed")
	}

	// Corrupt trial payloads must fail Validate or replay.
	short := snap
	short.Trials = short.Trials[:len(short.Trials)-1]
	if _, err := Restore(short); err == nil {
		t.Fatal("Restore accepted a snapshot with truncated trials")
	}
}

// TestRestoredSnapshotChains verifies a restored optimizer can itself be
// snapshotted and restored (checkpoint chains across many restarts).
func TestRestoredSnapshotChains(t *testing.T) {
	orig := New(AlgBayes, 11, 80)
	driveBatches(t, orig, []int{16, 16})
	r1, err := Restore(orig.(Snapshotter).Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	driveBatches(t, r1, []int{16})
	r2, err := Restore(r1.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	// And r2's future matches a never-restored reference.
	ref := New(AlgBayes, 11, 80)
	driveBatches(t, ref, []int{16, 16, 16})
	a := driveBatches(t, ref, []int{16})
	b := driveBatches(t, r2, []int{16})
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("trial %d diverged after chained restore", i)
		}
	}
}

// TestSnapshotAppendMatchesRecorder verifies the external checkpoint
// path (Snapshot.Append fed batch by batch, the shape
// core.WithTranscript produces) replays identically to the optimizer's
// own recording.
func TestSnapshotAppendMatchesRecorder(t *testing.T) {
	opt := New(AlgLCS, 13, 48)
	var ext Snapshot
	ext.Algorithm, ext.Seed, ext.Budget = AlgLCS, 13, 48
	for _, n := range []int{16, 16, 5} {
		asks := opt.Ask(n)
		batch := make([]Trial, n)
		for i, idx := range asks {
			batch[i] = Trial{Index: idx, Evaluation: snapObjective(idx)}
		}
		opt.Tell(batch)
		ext.Append(batch)
	}
	a, err := Restore(opt.(Snapshotter).Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Restore(ext)
	if err != nil {
		t.Fatal(err)
	}
	fa := driveBatches(t, a, []int{16})
	fb := driveBatches(t, b, []int{16})
	for i := range fa {
		if !fa[i].Equal(fb[i]) {
			t.Fatalf("trial %d diverged between recorder and Append snapshots", i)
		}
	}
}
