package search

import (
	"math"
	"math/rand"
	"testing"

	"fast/internal/arch"
)

// mt builds a feasible multi-objective trial whose first coordinates
// encode the point's identity.
func mt(id int, vals ...float64) Trial {
	var idx [arch.NumParams]int
	idx[0] = id % 9
	idx[1] = (id / 9) % 9
	idx[2] = (id / 81) % 9
	return Trial{Index: idx, Evaluation: Evaluation{Value: vals[0], Values: vals, Feasible: true}}
}

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{2, 2}, []float64{1, 1}, true},
		{[]float64{2, 1}, []float64{1, 1}, true},
		{[]float64{1, 1}, []float64{1, 1}, false}, // equal: no strict gain
		{[]float64{2, 0}, []float64{1, 1}, false}, // trade-off
		{[]float64{1, 1}, []float64{2, 2}, false},
	}
	for _, c := range cases {
		if got := Dominates(c.a, c.b); got != c.want {
			t.Errorf("Dominates(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestArchiveKeepsExactlyNonDominated(t *testing.T) {
	a := NewParetoArchive(0)
	a.Add(mt(1, 1, 4))
	a.Add(mt(2, 2, 3))
	a.Add(mt(3, 1, 3)) // dominated by #2
	a.Add(mt(4, 4, 1))
	a.Add(mt(5, 3, 3)) // dominates and evicts #2
	if got := a.Len(); got != 3 {
		t.Fatalf("archive size = %d, want 3", got)
	}
	front := a.Front()
	ids := map[float64]bool{}
	for _, tr := range front {
		ids[tr.Values[0]] = true
	}
	for _, want := range []float64{1, 3, 4} {
		if !ids[want] {
			t.Errorf("front missing the point with v1=%v: %+v", want, front)
		}
	}
}

func TestArchiveRejectsInfeasibleAndRevisits(t *testing.T) {
	a := NewParetoArchive(0)
	if a.Add(Trial{Evaluation: Evaluation{Values: []float64{9, 9}}}) {
		t.Error("infeasible trial entered the archive")
	}
	p := mt(7, 1, 1)
	if !a.Add(p) {
		t.Fatal("first observation rejected")
	}
	if a.Add(p) {
		t.Error("revisit of an archived index entered again")
	}
	if a.Len() != 1 {
		t.Errorf("archive size = %d, want 1", a.Len())
	}
}

func TestArchiveScalarFallback(t *testing.T) {
	// Feasible trials without a Values vector participate as {Value}.
	a := NewParetoArchive(0)
	a.Add(Trial{Index: [arch.NumParams]int{1}, Evaluation: Evaluation{Value: 1, Feasible: true}})
	a.Add(Trial{Index: [arch.NumParams]int{2}, Evaluation: Evaluation{Value: 3, Feasible: true}})
	a.Add(Trial{Index: [arch.NumParams]int{3}, Evaluation: Evaluation{Value: 2, Feasible: true}})
	if a.Len() != 1 || a.Front()[0].Value != 3 {
		t.Errorf("scalar archive should hold only the max: %+v", a.Front())
	}
}

func TestArchiveCrowdingPruneKeepsBoundaries(t *testing.T) {
	// A dense non-dominated line: pruning must evict interior points,
	// never the extremes of either objective.
	a := NewParetoArchive(4)
	n := 20
	for i := 0; i < n; i++ {
		a.Add(mt(i, float64(i), float64(n-1-i)))
	}
	if a.Len() != 4 {
		t.Fatalf("archive size = %d, want capacity 4", a.Len())
	}
	var hasMin, hasMax bool
	for _, tr := range a.Front() {
		if tr.Values[0] == 0 {
			hasMin = true
		}
		if tr.Values[0] == float64(n-1) {
			hasMax = true
		}
	}
	if !hasMin || !hasMax {
		t.Errorf("pruning evicted a boundary point: %+v", a.Front())
	}
}

func TestArchiveDeterministicUnderReplay(t *testing.T) {
	// The archive is a pure function of the Add sequence: replaying the
	// same trials yields the identical front, including prunes.
	trials := make([]Trial, 0, 64)
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 64; i++ {
		trials = append(trials, mt(i, math.Floor(r.Float64()*10), math.Floor(r.Float64()*10), math.Floor(r.Float64()*10)))
	}
	run := func() []Trial {
		a := NewParetoArchive(6)
		for _, tr := range trials {
			a.Add(tr)
		}
		return a.Front()
	}
	f1, f2 := run(), run()
	if len(f1) != len(f2) {
		t.Fatalf("front sizes differ: %d vs %d", len(f1), len(f2))
	}
	for i := range f1 {
		if !f1[i].Equal(f2[i]) {
			t.Fatalf("front point %d differs between replays", i)
		}
	}
}

// bruteNonDominated returns the non-dominated subset of the history:
// first observation per index vector, minus every trial strictly
// dominated by any other retained trial.
func bruteNonDominated(history []Trial) []Trial {
	var uniq []Trial
	seen := map[[arch.NumParams]int]bool{}
	for _, tr := range history {
		if !tr.Feasible || seen[tr.Index] {
			continue
		}
		seen[tr.Index] = true
		tr.Values = tr.ObjectiveVector()
		uniq = append(uniq, tr)
	}
	var out []Trial
	for i, tr := range uniq {
		dominated := false
		for j, other := range uniq {
			if i != j && Dominates(other.Values, tr.Values) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, tr)
		}
	}
	return out
}

// FuzzParetoArchive checks the archive's core contract on random trial
// streams: with no capacity bound, its contents are exactly the
// non-dominated subset of the history.
func FuzzParetoArchive(f *testing.F) {
	f.Add(int64(1), uint8(40), uint8(2))
	f.Add(int64(7), uint8(90), uint8(3))
	f.Add(int64(123), uint8(200), uint8(4))
	f.Add(int64(-5), uint8(13), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, n uint8, nObj uint8) {
		objs := int(nObj)%4 + 1
		r := rand.New(rand.NewSource(seed))
		history := make([]Trial, 0, int(n))
		for i := 0; i < int(n); i++ {
			var tr Trial
			// A tiny grid forces revisits; small value domains force
			// ties and duplicates.
			tr.Index[0] = r.Intn(4)
			tr.Index[1] = r.Intn(4)
			tr.Index[2] = r.Intn(4)
			if r.Intn(5) > 0 {
				vals := make([]float64, objs)
				for k := range vals {
					vals[k] = float64(r.Intn(5))
				}
				tr.Evaluation = Evaluation{Value: vals[0], Values: vals, Feasible: true}
			}
			history = append(history, tr)
		}
		// Memoization discipline: every revisit of an index replays the
		// first evaluation (the archive assumes this, like the Runner).
		firstEval := map[[arch.NumParams]int]Evaluation{}
		for i := range history {
			if ev, ok := firstEval[history[i].Index]; ok {
				history[i].Evaluation = ev
			} else {
				firstEval[history[i].Index] = history[i].Evaluation
			}
		}

		a := NewParetoArchive(0)
		for _, tr := range history {
			a.Add(tr)
		}
		want := bruteNonDominated(history)
		got := a.Front()
		if len(got) != len(want) {
			t.Fatalf("front size %d, brute force %d\n got: %+v\nwant: %+v", len(got), len(want), got, want)
		}
		wantBy := map[[arch.NumParams]int][]float64{}
		for _, tr := range want {
			wantBy[tr.Index] = tr.Values
		}
		for _, tr := range got {
			w, ok := wantBy[tr.Index]
			if !ok {
				t.Fatalf("archived point %v not in brute-force front", tr.Index)
			}
			for k := range w {
				if tr.Values[k] != w[k] {
					t.Fatalf("archived values %v differ from history values %v at %v", tr.Values, w, tr.Index)
				}
			}
		}
	})
}
