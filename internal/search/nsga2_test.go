package search

import (
	"testing"

	"fast/internal/arch"
)

// biobjective is a synthetic two-objective problem with a genuine
// conflict: v1 peaks when every coordinate is at its maximum, v2 when
// every coordinate is at its minimum, so the Pareto front spans the
// main diagonal of the space. The feasibility slab from quadratic is
// kept to exercise constraint handling.
func biobjective(idx [arch.NumParams]int) Evaluation {
	dims := arch.Space{}.Dims()
	if idx[0] == dims[0]-1 {
		return Evaluation{}
	}
	var up, down float64
	for d, card := range dims {
		x := float64(idx[d]) / float64(card-1)
		up += x
		down += 1 - x
	}
	vals := []float64{up / arch.NumParams, down / arch.NumParams}
	return Evaluation{Value: vals[0], Values: vals, Feasible: true}
}

// driveMulti pumps an optimizer through `trials` evaluations in batches
// of 16 and returns the full history.
func driveMulti(opt Optimizer, obj Objective, trials int) []Trial {
	var history []Trial
	for len(history) < trials {
		n := trials - len(history)
		if n > 16 {
			n = 16
		}
		asks := opt.Ask(n)
		batch := make([]Trial, len(asks))
		for i, idx := range asks {
			batch[i] = Trial{Index: idx, Evaluation: obj(idx)}
		}
		opt.Tell(batch)
		history = append(history, batch...)
	}
	return history
}

// TestNSGA2FindsSpreadFront: the front discovered on the conflicting
// objectives must contain genuine trade-offs — points strong on v1,
// points strong on v2, and a non-trivial interior.
func TestNSGA2FindsSpreadFront(t *testing.T) {
	history := driveMulti(NewNSGA2(3, 400), biobjective, 400)
	a := NewParetoArchive(0)
	for _, tr := range history {
		a.Add(tr)
	}
	front := a.Front()
	if len(front) < 5 {
		t.Fatalf("front has %d points, want a spread (>= 5)", len(front))
	}
	var bestV1, bestV2 float64
	for _, tr := range front {
		if tr.Values[0] > bestV1 {
			bestV1 = tr.Values[0]
		}
		if tr.Values[1] > bestV2 {
			bestV2 = tr.Values[1]
		}
	}
	// Random uniform coordinates average 0.5 per objective; an evolved
	// front must push both extremes well past that.
	if bestV1 < 0.75 || bestV2 < 0.75 {
		t.Errorf("front extremes (%.2f, %.2f) barely beat uniform random (0.5)", bestV1, bestV2)
	}
	// And the extremes must be different points: a single dominant
	// solution would mean the objectives were not actually in conflict.
	if bestV1+bestV2 > 1.9 {
		t.Errorf("one point nearly maximizes both objectives (%.2f + %.2f); conflict lost", bestV1, bestV2)
	}
}

// TestNSGA2ScalarStillConverges: with a scalar objective NSGA-II
// degenerates to an elitist GA and must still beat the uniform-random
// expectation on the smooth quadratic.
func TestNSGA2ScalarStillConverges(t *testing.T) {
	res := Run(AlgNSGA2, quadratic, 300, 7)
	if !res.Best.Feasible {
		t.Fatal("no feasible best")
	}
	if res.Best.Value < 99.0 {
		t.Errorf("best = %.3f, want > 99.0", res.Best.Value)
	}
}

// TestNSGA2TranscriptDeterminism: two instances fed the same transcript
// stay in lockstep even when ask and tell granularities disagree (the
// concurrent Runner may split batches arbitrarily around the population
// boundary).
func TestNSGA2TranscriptDeterminism(t *testing.T) {
	a := NewNSGA2(11, 0)
	b := NewNSGA2(11, 0)
	askA := func(n int) [][arch.NumParams]int { return a.Ask(n) }
	var pending []Trial
	for round := 0; round < 30; round++ {
		n := 3 + round%7 // deliberately misaligned with the population
		pa := askA(n)
		pb := b.Ask(n)
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("round %d proposal %d differs: %v vs %v", round, i, pa[i], pb[i])
			}
			pending = append(pending, Trial{Index: pa[i], Evaluation: biobjective(pa[i])})
		}
		// Tell in a different chunking than asked, but in ask order.
		for len(pending) >= 5 {
			a.Tell(pending[:5])
			b.Tell(pending[:5])
			pending = pending[5:]
		}
	}
}
