package search

import (
	"math"
	"testing"

	"fast/internal/arch"
)

// quadratic is a smooth synthetic objective with a known optimum at the
// center of every dimension, plus a feasibility region excluding a slab.
func quadratic(idx [arch.NumParams]int) Evaluation {
	dims := arch.Space{}.Dims()
	v := 0.0
	for d, card := range dims {
		x := float64(idx[d]) / float64(card-1)
		v -= (x - 0.5) * (x - 0.5)
	}
	// Infeasible slab: first coordinate at its maximum.
	if idx[0] == dims[0]-1 {
		return Evaluation{}
	}
	return Evaluation{Value: 100 + v, Feasible: true}
}

func TestRandomFindsFeasible(t *testing.T) {
	res := Random(quadratic, 200, 1)
	if !res.Best.Feasible {
		t.Fatal("random found no feasible point")
	}
	if len(res.History) != 200 {
		t.Errorf("history = %d", len(res.History))
	}
	if res.FeasibleRate() < 0.5 {
		t.Errorf("feasible rate = %.2f; the slab excludes only 1/9 of space", res.FeasibleRate())
	}
}

func TestOptimizersBeatTheMeanAndAreDeterministic(t *testing.T) {
	for _, alg := range []Algorithm{AlgRandom, AlgLCS, AlgBayes} {
		a := Run(alg, quadratic, 300, 7)
		b := Run(alg, quadratic, 300, 7)
		if !a.Best.Feasible {
			t.Fatalf("%s: no feasible best", alg)
		}
		if a.Best.Value != b.Best.Value || a.Best.Index != b.Best.Index {
			t.Errorf("%s: not deterministic", alg)
		}
		// Max possible = 100; a uniform point scores ≈98.7 in expectation,
		// so any working optimizer must land well above that.
		if a.Best.Value < 99.0 {
			t.Errorf("%s: best = %.3f, want > 99.0", alg, a.Best.Value)
		}
	}
}

func TestGuidedSearchBeatsRandom(t *testing.T) {
	// Figure 11's premise: at matched budget, guided optimizers converge
	// at least as well as random. Compare mean best over seeds on the
	// smooth objective.
	mean := func(alg Algorithm) float64 {
		var s float64
		for seed := int64(0); seed < 5; seed++ {
			s += Run(alg, quadratic, 250, seed).Best.Value
		}
		return s / 5
	}
	r := mean(AlgRandom)
	if l := mean(AlgLCS); l < r-0.05 {
		t.Errorf("LCS mean %.4f below random %.4f", l, r)
	}
	if b := mean(AlgBayes); b < r-0.05 {
		t.Errorf("Bayes mean %.4f below random %.4f", b, r)
	}
}

func TestBestSoFarMonotone(t *testing.T) {
	res := Run(AlgLCS, quadratic, 150, 3)
	curve := res.BestSoFar()
	prev := math.Inf(-1)
	seenFeasible := false
	for i, v := range curve {
		if math.IsNaN(v) {
			if seenFeasible {
				t.Fatalf("NaN after feasible at %d", i)
			}
			continue
		}
		seenFeasible = true
		if v < prev {
			t.Fatalf("best-so-far decreased at %d: %f < %f", i, v, prev)
		}
		prev = v
	}
	if !seenFeasible {
		t.Fatal("no feasible trial in curve")
	}
	if curve[len(curve)-1] != res.Best.Value {
		t.Error("curve end != best value")
	}
}

func TestAllInfeasible(t *testing.T) {
	never := func([arch.NumParams]int) Evaluation { return Evaluation{} }
	for _, alg := range []Algorithm{AlgRandom, AlgLCS, AlgBayes} {
		res := Run(alg, never, 50, 1)
		if res.Best.Feasible {
			t.Errorf("%s: claims feasible best on infeasible objective", alg)
		}
		if len(res.History) != 50 {
			t.Errorf("%s: history = %d", alg, len(res.History))
		}
		if res.FeasibleRate() != 0 {
			t.Errorf("%s: feasible rate must be 0", alg)
		}
	}
}

func TestTrialIndicesInDomain(t *testing.T) {
	dims := arch.Space{}.Dims()
	check := func(alg Algorithm) {
		res := Run(alg, quadratic, 200, 9)
		for _, tr := range res.History {
			for d, card := range dims {
				if tr.Index[d] < 0 || tr.Index[d] >= card {
					t.Fatalf("%s: index %d out of domain for param %d", alg, tr.Index[d], d)
				}
			}
		}
	}
	for _, alg := range []Algorithm{AlgRandom, AlgLCS, AlgBayes} {
		check(alg)
	}
}

func TestZeroTrials(t *testing.T) {
	for _, alg := range []Algorithm{AlgRandom, AlgLCS, AlgBayes} {
		res := Run(alg, quadratic, 0, 1)
		if len(res.History) != 0 || res.Best.Feasible {
			t.Errorf("%s: zero-trial run misbehaved", alg)
		}
	}
}

func TestMutateAlwaysChanges(t *testing.T) {
	res := Run(AlgBayes, quadratic, 40, 5)
	_ = res
	// mutate is exercised through Bayesian; direct property:
	r := newRand(11)
	var base [arch.NumParams]int
	for i := 0; i < 100; i++ {
		m := mutate(r, base, 0.0)
		if m == base {
			t.Fatal("mutate(p=0) must still change one coordinate")
		}
	}
}
