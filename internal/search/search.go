// Package search provides the black-box optimizers FAST drives its
// datapath exploration with — the Google Vizier substitute. Three
// heuristic families are implemented, matching the paper's Figure 11
// comparison: pure random sampling, Linear Combination Swarm (LCS, a
// bounded particle swarm over the ordinal hyperparameter space, after
// Golovin et al.), and a surrogate-model Bayesian optimizer (RBF
// regression with an upper-confidence-bound acquisition).
//
// All optimizers observe (value, feasible) pairs; infeasible trials
// (budget violations or schedule failures, Eq. 4-5) carry no value but
// still steer the search away — the "safe search" behaviour the paper
// enables in Vizier.
package search

import (
	"math"
	"math/rand"

	"fast/internal/arch"
)

// Evaluation is the outcome of one trial. The JSON tags are the durable
// checkpoint format (internal/store serializes trials line by line);
// float64 values round-trip bit-exactly through encoding/json's
// shortest-representation encoding.
type Evaluation struct {
	// Value is the objective (higher is better); meaningful only when
	// Feasible.
	Value float64 `json:"value"`
	// Values is the objective vector of a multi-objective trial, every
	// component oriented so that higher is better (callers negate
	// minimization metrics such as TDP or area before storing them).
	// Nil for scalar studies; meaningful only when Feasible. Drivers
	// treat a nil Values on a feasible trial as the 1-vector {Value},
	// which makes every scalar objective a degenerate multi-objective
	// one.
	Values []float64 `json:"values,omitempty"`
	// Feasible reports whether the design met every constraint.
	Feasible bool `json:"feasible"`
}

// Equal reports whether two evaluations are bit-identical (Evaluation
// is not ==-comparable because of the Values slice).
func (e Evaluation) Equal(u Evaluation) bool {
	if e.Value != u.Value || e.Feasible != u.Feasible || len(e.Values) != len(u.Values) {
		return false
	}
	for i := range e.Values {
		if e.Values[i] != u.Values[i] {
			return false
		}
	}
	return true
}

// ObjectiveVector returns the trial's maximize-oriented objective
// vector: Values when present, otherwise the 1-vector {Value}. Nil for
// infeasible evaluations.
func (e Evaluation) ObjectiveVector() []float64 {
	if !e.Feasible {
		return nil
	}
	if e.Values != nil {
		return e.Values
	}
	return []float64{e.Value}
}

// Objective evaluates a hyperparameter vector.
type Objective func(idx [arch.NumParams]int) Evaluation

// BatchObjective evaluates a whole slice of hyperparameter vectors at
// once, returning exactly one Evaluation per vector, positionally
// aligned. Drivers use it when the evaluator can amortize shared work
// across a batch (sim.Plan.EvaluateBatch memoizes per-stage results by
// parameter sub-key, so a batch of near-identical proposals — the shape
// adaptive optimizers emit — mostly hits warm caches). A BatchObjective
// must be equivalent to mapping Objective over the batch: same values,
// any evaluation order.
type BatchObjective func(idxs [][arch.NumParams]int) []Evaluation

// Trial records one evaluated point.
type Trial struct {
	Index [arch.NumParams]int `json:"index"`
	Evaluation
}

// Equal reports whether two trials are bit-identical: same index
// vector, scalar value, objective vector, and feasibility. (Trial is
// not ==-comparable because of the Values slice.)
func (t Trial) Equal(u Trial) bool {
	return t.Index == u.Index && t.Evaluation.Equal(u.Evaluation)
}

// Result is a completed study.
type Result struct {
	// Best is the best feasible trial (Feasible=false if none was found).
	Best Trial
	// History holds every trial in evaluation order.
	History []Trial
}

// Observe folds a trial into the result: appends it to the history and
// promotes it to Best when it is the best feasible trial so far. Every
// driver of an Optimizer (serial Drive, the concurrent engine in
// internal/core) accumulates through this one helper.
func (r *Result) Observe(t Trial) {
	r.History = append(r.History, t)
	if t.Feasible && (!r.Best.Feasible || t.Value > r.Best.Value) {
		r.Best = t
	}
}

// BestSoFar returns the running-best objective value after each trial
// (NaN until the first feasible trial) — the Figure 11 convergence curve.
func (r Result) BestSoFar() []float64 {
	out := make([]float64, len(r.History))
	best := math.NaN()
	for i, t := range r.History {
		if t.Feasible && (math.IsNaN(best) || t.Value > best) {
			best = t.Value
		}
		out[i] = best
	}
	return out
}

// FeasibleRate returns the fraction of feasible trials.
func (r Result) FeasibleRate() float64 {
	if len(r.History) == 0 {
		return 0
	}
	n := 0
	for _, t := range r.History {
		if t.Feasible {
			n++
		}
	}
	return float64(n) / float64(len(r.History))
}

// Algorithm names the optimizer families (Figure 11).
type Algorithm string

const (
	// AlgRandom is uniform random sampling.
	AlgRandom Algorithm = "random"
	// AlgLCS is Linear Combination Swarm.
	AlgLCS Algorithm = "lcs"
	// AlgBayes is the surrogate-model (Bayesian) optimizer, Vizier's
	// default family.
	AlgBayes Algorithm = "bayesian"
	// AlgNSGA2 is the elitist non-dominated-sorting genetic algorithm
	// for multi-objective (Pareto-front) studies. On scalar objectives
	// it degenerates to a plain elitist GA.
	AlgNSGA2 Algorithm = "nsga2"
)

// Optimizer is the batch ask/tell protocol every search family speaks.
// Ask proposes candidates from the current state; Tell folds evaluated
// trials back in. An optimizer's state evolves only through this
// transcript, so any driver that replays the same ask/tell sequence —
// serial loop or concurrent engine — reproduces the same search.
//
// Contract: trials passed to Tell must arrive in the order their index
// vectors were returned by Ask (batches may be told whole or split, but
// never reordered); adaptive families rely on that pairing to attribute
// evaluations to the internal state that proposed them.
type Optimizer interface {
	// Ask returns up to n candidate hyperparameter index vectors (the
	// built-in families always return exactly n; a finite optimizer may
	// return fewer, and an empty result tells drivers the optimizer is
	// exhausted — they end the search early with the partial result).
	// Proposals within one batch are generated from the same state
	// snapshot, so adaptive families may propose duplicates; drivers
	// are free to memoize the objective across them.
	Ask(n int) [][arch.NumParams]int
	// Tell reports evaluated trials back to the optimizer, in ask order.
	Tell(trials []Trial)
}

// New constructs a fresh optimizer for the algorithm with a
// deterministic seed. budget is the expected total trial count, used by
// annealing schedules (Bayesian exploration decay) and for sizing (LCS
// swarm); budget <= 0 selects family defaults.
func New(alg Algorithm, seed int64, budget int) Optimizer {
	switch alg {
	case AlgLCS:
		return NewLCS(seed, budget)
	case AlgBayes:
		return NewBayesian(seed, budget)
	case AlgNSGA2:
		return NewNSGA2(seed, budget)
	default:
		return NewRandom(seed)
	}
}

// Run executes `trials` evaluations of obj with the chosen algorithm and
// deterministic seed. It is a thin serial adapter over the ask/tell
// Optimizer protocol (ask-batch size one); concurrent drivers live in
// internal/core.
func Run(alg Algorithm, obj Objective, trials int, seed int64) Result {
	return Drive(New(alg, seed, trials), obj, trials)
}

// Drive pumps opt through `trials` serial ask/tell rounds of size one,
// evaluating each proposal with obj. An optimizer that runs out of
// proposals (empty Ask) ends the drive early with the partial result.
func Drive(opt Optimizer, obj Objective, trials int) Result {
	var res Result
	for i := 0; i < trials; i++ {
		asks := opt.Ask(1)
		if len(asks) == 0 {
			return res
		}
		t := Trial{Index: asks[0], Evaluation: obj(asks[0])}
		opt.Tell([]Trial{t})
		res.Observe(t)
	}
	return res
}

// randomOptimizer samples the space uniformly; Tell only records the
// transcript (uniform sampling is memoryless).
type randomOptimizer struct {
	transcript
	r    *rand.Rand
	dims [arch.NumParams]int
}

// NewRandom returns the uniform-sampling optimizer.
func NewRandom(seed int64) Optimizer {
	o := &randomOptimizer{r: rand.New(rand.NewSource(seed)), dims: arch.Space{}.Dims()}
	o.initTranscript(AlgRandom, seed, 0)
	return o
}

func (o *randomOptimizer) Ask(n int) [][arch.NumParams]int {
	out := make([][arch.NumParams]int, n)
	for i := range out {
		for d, card := range o.dims {
			out[i][d] = o.r.Intn(card)
		}
	}
	o.recordAsk(len(out))
	return out
}

func (o *randomOptimizer) Tell(trials []Trial) { o.recordTell(trials) }

// Random samples the space uniformly (serial adapter over NewRandom).
func Random(obj Objective, trials int, seed int64) Result {
	return Drive(NewRandom(seed), obj, trials)
}

// mutate returns a copy of idx with each coordinate re-sampled with
// probability p (at least one coordinate always changes).
func mutate(r *rand.Rand, idx [arch.NumParams]int, p float64) [arch.NumParams]int {
	dims := arch.Space{}.Dims()
	out := idx
	changed := false
	for d, card := range dims {
		if r.Float64() < p {
			out[d] = r.Intn(card)
			changed = true
		}
	}
	if !changed {
		d := r.Intn(arch.NumParams)
		// Force a genuinely different value.
		v := r.Intn(dims[d] - 1)
		if v >= out[d] {
			v++
		}
		out[d] = v
	}
	return out
}

// newRand returns a deterministic rand for tests.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
