// Package search provides the black-box optimizers FAST drives its
// datapath exploration with — the Google Vizier substitute. Three
// heuristic families are implemented, matching the paper's Figure 11
// comparison: pure random sampling, Linear Combination Swarm (LCS, a
// bounded particle swarm over the ordinal hyperparameter space, after
// Golovin et al.), and a surrogate-model Bayesian optimizer (RBF
// regression with an upper-confidence-bound acquisition).
//
// All optimizers observe (value, feasible) pairs; infeasible trials
// (budget violations or schedule failures, Eq. 4-5) carry no value but
// still steer the search away — the "safe search" behaviour the paper
// enables in Vizier.
package search

import (
	"math"
	"math/rand"

	"fast/internal/arch"
)

// Evaluation is the outcome of one trial.
type Evaluation struct {
	// Value is the objective (higher is better); meaningful only when
	// Feasible.
	Value float64
	// Feasible reports whether the design met every constraint.
	Feasible bool
}

// Objective evaluates a hyperparameter vector.
type Objective func(idx [arch.NumParams]int) Evaluation

// Trial records one evaluated point.
type Trial struct {
	Index [arch.NumParams]int
	Evaluation
}

// Result is a completed study.
type Result struct {
	// Best is the best feasible trial (Feasible=false if none was found).
	Best Trial
	// History holds every trial in evaluation order.
	History []Trial
}

// BestSoFar returns the running-best objective value after each trial
// (NaN until the first feasible trial) — the Figure 11 convergence curve.
func (r Result) BestSoFar() []float64 {
	out := make([]float64, len(r.History))
	best := math.NaN()
	for i, t := range r.History {
		if t.Feasible && (math.IsNaN(best) || t.Value > best) {
			best = t.Value
		}
		out[i] = best
	}
	return out
}

// FeasibleRate returns the fraction of feasible trials.
func (r Result) FeasibleRate() float64 {
	if len(r.History) == 0 {
		return 0
	}
	n := 0
	for _, t := range r.History {
		if t.Feasible {
			n++
		}
	}
	return float64(n) / float64(len(r.History))
}

// Algorithm names the optimizer families (Figure 11).
type Algorithm string

const (
	// AlgRandom is uniform random sampling.
	AlgRandom Algorithm = "random"
	// AlgLCS is Linear Combination Swarm.
	AlgLCS Algorithm = "lcs"
	// AlgBayes is the surrogate-model (Bayesian) optimizer, Vizier's
	// default family.
	AlgBayes Algorithm = "bayesian"
)

// Run executes `trials` evaluations of obj with the chosen algorithm and
// deterministic seed.
func Run(alg Algorithm, obj Objective, trials int, seed int64) Result {
	switch alg {
	case AlgLCS:
		return LCS(obj, trials, seed)
	case AlgBayes:
		return Bayesian(obj, trials, seed)
	default:
		return Random(obj, trials, seed)
	}
}

// observe folds a trial into the result.
func observe(res *Result, t Trial) {
	res.History = append(res.History, t)
	if t.Feasible && (!res.Best.Feasible || t.Value > res.Best.Value) {
		res.Best = t
	}
}

// Random samples the space uniformly.
func Random(obj Objective, trials int, seed int64) Result {
	r := rand.New(rand.NewSource(seed))
	dims := arch.Space{}.Dims()
	var res Result
	for i := 0; i < trials; i++ {
		var idx [arch.NumParams]int
		for d, card := range dims {
			idx[d] = r.Intn(card)
		}
		res.History = append(res.History, Trial{Index: idx})
		t := &res.History[len(res.History)-1]
		t.Evaluation = obj(idx)
		if t.Feasible && (!res.Best.Feasible || t.Value > res.Best.Value) {
			res.Best = *t
		}
	}
	return res
}

// mutate returns a copy of idx with each coordinate re-sampled with
// probability p (at least one coordinate always changes).
func mutate(r *rand.Rand, idx [arch.NumParams]int, p float64) [arch.NumParams]int {
	dims := arch.Space{}.Dims()
	out := idx
	changed := false
	for d, card := range dims {
		if r.Float64() < p {
			out[d] = r.Intn(card)
			changed = true
		}
	}
	if !changed {
		d := r.Intn(arch.NumParams)
		// Force a genuinely different value.
		v := r.Intn(dims[d] - 1)
		if v >= out[d] {
			v++
		}
		out[d] = v
	}
	return out
}

// newRand returns a deterministic rand for tests.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
