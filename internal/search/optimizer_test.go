package search

import (
	"testing"

	"fast/internal/arch"
)

// TestSerialAdapterMatchesDrive pins the refactor contract: Run is
// nothing but a size-one ask/tell loop over New, so driving the
// optimizer by hand must reproduce Run's history bit for bit.
func TestSerialAdapterMatchesDrive(t *testing.T) {
	for _, alg := range []Algorithm{AlgRandom, AlgLCS, AlgBayes, AlgNSGA2} {
		a := Run(alg, quadratic, 150, 21)

		opt := New(alg, 21, 150)
		var b Result
		for i := 0; i < 150; i++ {
			idx := opt.Ask(1)[0]
			tr := Trial{Index: idx, Evaluation: quadratic(idx)}
			opt.Tell([]Trial{tr})
			b.Observe(tr)
		}

		if len(a.History) != len(b.History) {
			t.Fatalf("%s: history lengths differ: %d vs %d", alg, len(a.History), len(b.History))
		}
		for i := range a.History {
			if !a.History[i].Equal(b.History[i]) {
				t.Fatalf("%s: trial %d differs: %+v vs %+v", alg, i, a.History[i], b.History[i])
			}
		}
		if !a.Best.Equal(b.Best) {
			t.Errorf("%s: best differs: %+v vs %+v", alg, a.Best, b.Best)
		}
	}
}

// TestBatchAskContract checks the Ask(n) side of the protocol: exact
// counts, in-domain proposals, and progress under batched tells.
func TestBatchAskContract(t *testing.T) {
	dims := arch.Space{}.Dims()
	for _, alg := range []Algorithm{AlgRandom, AlgLCS, AlgBayes, AlgNSGA2} {
		opt := New(alg, 3, 128)
		seen := 0
		for round := 0; round < 8; round++ {
			asks := opt.Ask(16)
			if len(asks) != 16 {
				t.Fatalf("%s: Ask(16) returned %d proposals", alg, len(asks))
			}
			trials := make([]Trial, len(asks))
			for i, idx := range asks {
				for d, card := range dims {
					if idx[d] < 0 || idx[d] >= card {
						t.Fatalf("%s: proposal %d out of domain for param %d: %d", alg, i, d, idx[d])
					}
				}
				trials[i] = Trial{Index: idx, Evaluation: quadratic(idx)}
			}
			opt.Tell(trials)
			seen += len(trials)
		}
		if seen != 128 {
			t.Fatalf("%s: told %d trials", alg, seen)
		}
	}
}

// TestBatchedDeterminism: two optimizers with the same seed fed the same
// transcript propose identical batches.
func TestBatchedDeterminism(t *testing.T) {
	for _, alg := range []Algorithm{AlgRandom, AlgLCS, AlgBayes, AlgNSGA2} {
		a := New(alg, 9, 96)
		b := New(alg, 9, 96)
		for round := 0; round < 6; round++ {
			pa := a.Ask(16)
			pb := b.Ask(16)
			for i := range pa {
				if pa[i] != pb[i] {
					t.Fatalf("%s: round %d proposal %d differs: %v vs %v", alg, round, i, pa[i], pb[i])
				}
			}
			trials := make([]Trial, len(pa))
			for i, idx := range pa {
				trials[i] = Trial{Index: idx, Evaluation: quadratic(idx)}
			}
			a.Tell(trials)
			b.Tell(trials)
		}
	}
}

// TestAskZero: an empty ask is legal and returns no proposals.
func TestAskZero(t *testing.T) {
	for _, alg := range []Algorithm{AlgRandom, AlgLCS, AlgBayes, AlgNSGA2} {
		if got := New(alg, 1, 10).Ask(0); len(got) != 0 {
			t.Errorf("%s: Ask(0) returned %d proposals", alg, len(got))
		}
	}
}

// TestBatchedSearchStillConverges: a 16-wide synchronous drive of the
// adaptive families must still beat uniform random's expected best on
// the smooth objective (the batch engine shouldn't cost convergence).
func TestBatchedSearchStillConverges(t *testing.T) {
	drive := func(alg Algorithm) Result {
		opt := New(alg, 5, 256)
		var res Result
		for told := 0; told < 256; told += 16 {
			asks := opt.Ask(16)
			trials := make([]Trial, len(asks))
			for i, idx := range asks {
				trials[i] = Trial{Index: idx, Evaluation: quadratic(idx)}
			}
			opt.Tell(trials)
			for _, tr := range trials {
				res.Observe(tr)
			}
		}
		return res
	}
	for _, alg := range []Algorithm{AlgLCS, AlgBayes} {
		res := drive(alg)
		if !res.Best.Feasible {
			t.Fatalf("%s: no feasible best", alg)
		}
		if res.Best.Value < 99.0 {
			t.Errorf("%s: batched best = %.3f, want > 99.0", alg, res.Best.Value)
		}
	}
}
