package search

// Durable optimizer state.
//
// Every built-in optimizer evolves only through its seeded generator and
// the ask/tell transcript (the Optimizer contract), so the transcript IS
// the state: rebuilding the optimizer with the same constructor
// parameters and replaying the same interaction log lands it in a
// bit-identical internal configuration. Snapshot captures exactly that —
// the constructor triple plus the transcript — which makes checkpoints
// small, trivially serializable (no rand.Rand internals, no float
// matrices), and immune to representation drift across versions of the
// optimizer implementations: a snapshot taken by an old binary restores
// correctly in a new one as long as the search trajectory itself is
// unchanged.

import (
	"fmt"
)

// Snapshot is a serializable capture of an optimizer mid-study: the
// constructor parameters (Algorithm, Seed, Budget as passed to New) and
// the full ask/tell interaction log so far. Restore rebuilds an
// optimizer in the exact state that produced the snapshot.
//
// AskSizes records the size of every Ask batch in order; Trials holds
// the told trials, concatenated in tell order. Snapshots assume the
// lockstep driving discipline every in-tree driver follows (each Ask
// batch is told in full before the next Ask): the i-th AskSizes entry
// pairs with the next AskSizes[i] entries of Trials.
type Snapshot struct {
	Algorithm Algorithm `json:"algorithm"`
	Seed      int64     `json:"seed"`
	Budget    int       `json:"budget"`
	AskSizes  []int     `json:"ask_sizes"`
	Trials    []Trial   `json:"trials"`
}

// Append records one fully told ask batch. It is the building block for
// external checkpointers (core.WithTranscript feeds it every told
// batch); optimizers themselves record internally and hand out complete
// snapshots via Snapshotter.
func (s *Snapshot) Append(batch []Trial) {
	s.AskSizes = append(s.AskSizes, len(batch))
	for _, t := range batch {
		s.Trials = append(s.Trials, t.clone())
	}
}

// Validate checks the snapshot's internal consistency: every ask size
// positive and the sizes summing to the trial count.
func (s Snapshot) Validate() error {
	sum := 0
	for _, n := range s.AskSizes {
		if n <= 0 {
			return fmt.Errorf("search: snapshot has non-positive ask size %d", n)
		}
		sum += n
	}
	if sum != len(s.Trials) {
		return fmt.Errorf("search: snapshot ask sizes sum to %d but it holds %d trials", sum, len(s.Trials))
	}
	return nil
}

// Snapshotter is an Optimizer whose state can be captured mid-study.
// Every built-in family implements it; Snapshot returns an independent
// copy, so callers may serialize it while the optimizer keeps running
// (from the driving goroutine — Snapshot is not synchronized against
// concurrent Ask/Tell, which no in-tree driver issues anyway).
type Snapshotter interface {
	Optimizer
	Snapshot() Snapshot
}

// Restore rebuilds an optimizer in the exact state captured by s: it
// constructs a fresh optimizer from the snapshot's constructor
// parameters and replays the recorded ask/tell transcript. The replayed
// proposals are verified against the recorded trials — a mismatch means
// the snapshot is corrupt or was taken under different constructor
// parameters (or optimizer code whose trajectory has since changed),
// and restoring it would silently fork the search.
func Restore(s Snapshot) (Snapshotter, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	opt, ok := New(s.Algorithm, s.Seed, s.Budget).(Snapshotter)
	if !ok {
		return nil, fmt.Errorf("search: optimizer %q does not support snapshots", s.Algorithm)
	}
	pos := 0
	for bi, n := range s.AskSizes {
		asks := opt.Ask(n)
		if len(asks) != n {
			return nil, fmt.Errorf("search: snapshot replay: batch %d asked %d proposals, optimizer returned %d", bi, n, len(asks))
		}
		batch := make([]Trial, n)
		for i, idx := range asks {
			rec := s.Trials[pos+i]
			if idx != rec.Index {
				return nil, fmt.Errorf("search: snapshot does not replay at trial %d: optimizer proposed %v, snapshot recorded %v (corrupt snapshot or mismatched algorithm/seed/budget)", pos+i, idx, rec.Index)
			}
			batch[i] = rec.clone()
		}
		opt.Tell(batch)
		pos += n
	}
	return opt, nil
}

// clone deep-copies a trial (the Values slice is the only reference).
func (t Trial) clone() Trial {
	if t.Values != nil {
		vals := make([]float64, len(t.Values))
		copy(vals, t.Values)
		t.Values = vals
	}
	return t
}

// transcript is the interaction recorder embedded in every built-in
// optimizer: Ask/Tell implementations log through it, and the promoted
// Snapshot method captures the log together with the constructor
// parameters. Recording costs one slice append per batch — noise next
// to a single design evaluation.
type transcript struct {
	alg    Algorithm
	seed   int64
	budget int

	askSizes []int
	trials   []Trial
}

// initTranscript stamps the constructor parameters Snapshot will report.
func (t *transcript) initTranscript(alg Algorithm, seed int64, budget int) {
	t.alg, t.seed, t.budget = alg, seed, budget
}

// recordAsk logs one non-empty Ask batch.
func (t *transcript) recordAsk(n int) {
	if n > 0 {
		t.askSizes = append(t.askSizes, n)
	}
}

// recordTell logs told trials.
func (t *transcript) recordTell(batch []Trial) {
	for _, tr := range batch {
		t.trials = append(t.trials, tr.clone())
	}
}

// Snapshot implements Snapshotter; the returned copy shares nothing
// with the live optimizer.
func (t *transcript) Snapshot() Snapshot {
	s := Snapshot{
		Algorithm: t.alg,
		Seed:      t.seed,
		Budget:    t.budget,
		AskSizes:  make([]int, len(t.askSizes)),
	}
	copy(s.AskSizes, t.askSizes)
	s.Trials = make([]Trial, 0, len(t.trials))
	for _, tr := range t.trials {
		s.Trials = append(s.Trials, tr.clone())
	}
	return s
}
