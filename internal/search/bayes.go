package search

import (
	"math"
	"math/rand"

	"fast/internal/arch"
)

// bayesOptimizer is a surrogate-model optimizer in the spirit of
// Vizier's default: a radial-basis-function regressor over normalized
// coordinates predicts the objective, a distance-based uncertainty term
// provides exploration, and each proposal maximizes the
// upper-confidence-bound acquisition over a sampled pool (random points
// plus mutations of the incumbents). Infeasible observations are kept
// with a pessimistic value so the surrogate learns the feasible region
// ("safe search").
//
// Ask proposes from the surrogate fitted to every trial told so far;
// proposals within one batch share that posterior and differ through
// the acquisition pool's random draws. Tell refits incrementally.
type bayesOptimizer struct {
	transcript
	r    *rand.Rand
	dims [arch.NumParams]int
	// budget is the expected total trial count, used by the warm-up and
	// exploration-annealing schedules.
	budget int
	warm   int

	data  []bayesSample
	worst float64 // running min feasible value, used to score infeasibles
	// res accumulates told trials through Result.Observe — the same
	// best-promotion rule every driver uses.
	res   Result
	asked int
}

type bayesSample struct {
	x [arch.NumParams]float64
	y float64
}

const bayesBandwidth = 0.35 // RBF kernel width in normalized space

// bayesDefaultBudget stands in for the annealing horizon when the
// caller gives no budget hint.
const bayesDefaultBudget = 300

// NewBayesian returns the surrogate-model optimizer. budget sizes the
// warm-up phase (max(8, budget/10) random trials) and the exploration
// decay; budget <= 0 uses a default horizon.
func NewBayesian(seed int64, budget int) Optimizer {
	rawBudget := budget
	if budget <= 0 {
		budget = bayesDefaultBudget
	}
	warm := budget / 10
	if warm < 8 {
		warm = 8
	}
	o := &bayesOptimizer{
		r:      rand.New(rand.NewSource(seed)),
		dims:   arch.Space{}.Dims(),
		budget: budget,
		warm:   warm,
	}
	// The transcript records the budget as passed (before defaulting),
	// so Restore reconstructs through the identical code path.
	o.initTranscript(AlgBayes, seed, rawBudget)
	return o
}

func (o *bayesOptimizer) normalize(idx [arch.NumParams]int) [arch.NumParams]float64 {
	var x [arch.NumParams]float64
	for d, card := range o.dims {
		if card > 1 {
			x[d] = float64(idx[d]) / float64(card-1)
		}
	}
	return x
}

func (o *bayesOptimizer) predict(x [arch.NumParams]float64) (mean, sigma float64) {
	if len(o.data) == 0 {
		return 0, 1
	}
	var wsum, vsum, nearest float64
	nearest = math.Inf(1)
	for _, s := range o.data {
		var d2 float64
		for d := range x {
			diff := x[d] - s.x[d]
			d2 += diff * diff
		}
		w := math.Exp(-d2 / (2 * bayesBandwidth * bayesBandwidth))
		wsum += w
		vsum += w * s.y
		if d2 < nearest {
			nearest = d2
		}
	}
	if wsum < 1e-12 {
		return 0, 1
	}
	// Uncertainty grows with distance to the nearest observation.
	return vsum / wsum, 1 - math.Exp(-nearest/(bayesBandwidth*bayesBandwidth))
}

func (o *bayesOptimizer) randomIdx() [arch.NumParams]int {
	var idx [arch.NumParams]int
	for d, card := range o.dims {
		idx[d] = o.r.Intn(card)
	}
	return idx
}

func (o *bayesOptimizer) Ask(n int) [][arch.NumParams]int {
	out := make([][arch.NumParams]int, 0, n)
	for i := 0; i < n; i++ {
		t := o.asked
		o.asked++
		if t < o.warm || !o.res.Best.Feasible {
			out = append(out, o.randomIdx())
			continue
		}
		// UCB acquisition over a candidate pool.
		frac := float64(t) / float64(o.budget)
		if frac > 1 {
			frac = 1
		}
		kappa := 1.5 * (1 - frac) // anneal exploration
		pool := 64
		bestAcq := math.Inf(-1)
		var bestIdx [arch.NumParams]int
		for c := 0; c < pool; c++ {
			var cand [arch.NumParams]int
			switch {
			case c < pool/3:
				cand = o.randomIdx()
			case c < 2*pool/3:
				cand = mutate(o.r, o.res.Best.Index, 0.25)
			default:
				// Mutate a random prior feasible incumbent.
				base := o.res.Best.Index
				if k := feasibleIn(o.res.History, o.r); k >= 0 {
					base = o.res.History[k].Index
				}
				cand = mutate(o.r, base, 0.4)
			}
			mean, sigma := o.predict(o.normalize(cand))
			spread := math.Abs(o.res.Best.Value)
			if spread == 0 {
				spread = 1
			}
			acq := mean + kappa*sigma*spread
			if acq > bestAcq {
				bestAcq = acq
				bestIdx = cand
			}
		}
		out = append(out, bestIdx)
	}
	o.recordAsk(len(out))
	return out
}

func (o *bayesOptimizer) Tell(trials []Trial) {
	o.recordTell(trials)
	for _, tr := range trials {
		o.res.Observe(tr)
		y := tr.Value
		if !tr.Feasible {
			// Pessimistic stand-in below the worst feasible value.
			y = o.worst - 1
		} else if y < o.worst || len(o.data) == 0 {
			o.worst = y
		}
		o.data = append(o.data, bayesSample{x: o.normalize(tr.Index), y: y})
	}
}

// Bayesian runs the surrogate-model optimizer serially (adapter over
// NewBayesian).
func Bayesian(obj Objective, trials int, seed int64) Result {
	if trials <= 0 {
		return Result{}
	}
	return Drive(NewBayesian(seed, trials), obj, trials)
}

// feasibleIn returns the index of a uniformly random feasible trial in
// the history (-1 if none).
func feasibleIn(hist []Trial, r *rand.Rand) int {
	count := 0
	pick := -1
	for i, t := range hist {
		if t.Feasible {
			count++
			if r.Intn(count) == 0 {
				pick = i
			}
		}
	}
	return pick
}
