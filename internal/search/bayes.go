package search

import (
	"math"
	"math/rand"

	"fast/internal/arch"
)

// Bayesian is a surrogate-model optimizer in the spirit of Vizier's
// default: a radial-basis-function regressor over normalized coordinates
// predicts the objective, a distance-based uncertainty term provides
// exploration, and each round proposes the candidate maximizing the
// upper-confidence-bound acquisition over a sampled pool (random points
// plus mutations of the incumbents). Infeasible observations are kept
// with a pessimistic value so the surrogate learns the feasible region
// ("safe search").
func Bayesian(obj Objective, trials int, seed int64) Result {
	r := rand.New(rand.NewSource(seed))
	dims := arch.Space{}.Dims()

	var res Result
	type sample struct {
		x [arch.NumParams]float64
		y float64
	}
	var data []sample
	worst := 0.0 // running min feasible value, used to score infeasibles

	normalize := func(idx [arch.NumParams]int) [arch.NumParams]float64 {
		var x [arch.NumParams]float64
		for d, card := range dims {
			if card > 1 {
				x[d] = float64(idx[d]) / float64(card-1)
			}
		}
		return x
	}

	const bandwidth = 0.35 // RBF kernel width in normalized space

	predict := func(x [arch.NumParams]float64) (mean, sigma float64) {
		if len(data) == 0 {
			return 0, 1
		}
		var wsum, vsum, nearest float64
		nearest = math.Inf(1)
		for _, s := range data {
			var d2 float64
			for d := range x {
				diff := x[d] - s.x[d]
				d2 += diff * diff
			}
			w := math.Exp(-d2 / (2 * bandwidth * bandwidth))
			wsum += w
			vsum += w * s.y
			if d2 < nearest {
				nearest = d2
			}
		}
		if wsum < 1e-12 {
			return 0, 1
		}
		// Uncertainty grows with distance to the nearest observation.
		return vsum / wsum, 1 - math.Exp(-nearest/(bandwidth*bandwidth))
	}

	// Warm-up: random exploration for the first max(8, trials/10) trials.
	warm := trials / 10
	if warm < 8 {
		warm = 8
	}

	evalPoint := func(idx [arch.NumParams]int) {
		ev := obj(idx)
		observe(&res, Trial{Index: idx, Evaluation: ev})
		y := ev.Value
		if !ev.Feasible {
			// Pessimistic stand-in below the worst feasible value.
			y = worst - 1
		} else if y < worst || len(data) == 0 {
			worst = y
		}
		data = append(data, sample{x: normalize(idx), y: y})
	}

	randomIdx := func() [arch.NumParams]int {
		var idx [arch.NumParams]int
		for d, card := range dims {
			idx[d] = r.Intn(card)
		}
		return idx
	}

	for t := 0; t < trials; t++ {
		if t < warm || !res.Best.Feasible {
			evalPoint(randomIdx())
			continue
		}
		// UCB acquisition over a candidate pool.
		kappa := 1.5 * (1 - float64(t)/float64(trials)) // anneal exploration
		pool := 64
		bestAcq := math.Inf(-1)
		var bestIdx [arch.NumParams]int
		for c := 0; c < pool; c++ {
			var cand [arch.NumParams]int
			switch {
			case c < pool/3:
				cand = randomIdx()
			case c < 2*pool/3:
				cand = mutate(r, res.Best.Index, 0.25)
			default:
				// Mutate a random prior feasible incumbent.
				base := res.Best.Index
				if k := feasibleAt(&res, r); k >= 0 {
					base = res.History[k].Index
				}
				cand = mutate(r, base, 0.4)
			}
			mean, sigma := predict(normalize(cand))
			spread := math.Abs(res.Best.Value)
			if spread == 0 {
				spread = 1
			}
			acq := mean + kappa*sigma*spread
			if acq > bestAcq {
				bestAcq = acq
				bestIdx = cand
			}
		}
		evalPoint(bestIdx)
	}
	return res
}

// feasibleAt returns the index of a uniformly random feasible trial in
// the history (-1 if none).
func feasibleAt(res *Result, r *rand.Rand) int {
	count := 0
	pick := -1
	for i, t := range res.History {
		if t.Feasible {
			count++
			if r.Intn(count) == 0 {
				pick = i
			}
		}
	}
	return pick
}
