package search

import (
	"math"
	"math/rand"

	"fast/internal/arch"
)

// LCS is the Linear Combination Swarm optimizer: a bounded particle swarm
// over the continuous relaxation of the ordinal space. Each particle's
// next position is a linear combination of its velocity, its personal
// best, and the global best (the "linear combination" of the name);
// positions are rounded to the ordinal grid for evaluation. Infeasible
// evaluations never update bests, which keeps the swarm inside the safe
// region.
func LCS(obj Objective, trials int, seed int64) Result {
	r := rand.New(rand.NewSource(seed))
	dims := arch.Space{}.Dims()

	particles := 16
	if trials < particles {
		particles = trials
	}
	if particles == 0 {
		return Result{}
	}

	const (
		inertia   = 0.65
		cPersonal = 1.2
		cGlobal   = 1.6
	)

	type particle struct {
		pos, vel  [arch.NumParams]float64
		best      [arch.NumParams]float64
		bestValue float64
		hasBest   bool
	}
	swarm := make([]particle, particles)
	for i := range swarm {
		for d, card := range dims {
			swarm[i].pos[d] = r.Float64() * float64(card-1)
			swarm[i].vel[d] = (r.Float64() - 0.5) * float64(card) / 2
		}
		swarm[i].bestValue = math.Inf(-1)
	}

	var res Result
	var gBest [arch.NumParams]float64
	gBestValue := math.Inf(-1)
	hasGlobal := false

	round := func(pos [arch.NumParams]float64) [arch.NumParams]int {
		var idx [arch.NumParams]int
		for d, card := range dims {
			v := int(math.Round(pos[d]))
			if v < 0 {
				v = 0
			}
			if v >= card {
				v = card - 1
			}
			idx[d] = v
		}
		return idx
	}

	for t := 0; t < trials; t++ {
		p := &swarm[t%particles]
		idx := round(p.pos)
		ev := obj(idx)
		observe(&res, Trial{Index: idx, Evaluation: ev})

		if ev.Feasible && ev.Value > p.bestValue {
			p.bestValue = ev.Value
			p.best = p.pos
			p.hasBest = true
		}
		if ev.Feasible && ev.Value > gBestValue {
			gBestValue = ev.Value
			gBest = p.pos
			hasGlobal = true
		}

		// Velocity/position update (applied after each evaluation so the
		// swarm state is deterministic in trial order).
		for d, card := range dims {
			v := inertia * p.vel[d]
			if p.hasBest {
				v += cPersonal * r.Float64() * (p.best[d] - p.pos[d])
			}
			if hasGlobal {
				v += cGlobal * r.Float64() * (gBest[d] - p.pos[d])
			}
			if !p.hasBest && !hasGlobal {
				// No feasible anchor yet: random restart drift.
				v = (r.Float64() - 0.5) * float64(card)
			}
			// Velocity clamp keeps particles inside a couple of grid
			// steps per iteration.
			limit := float64(card) / 2
			if v > limit {
				v = limit
			}
			if v < -limit {
				v = -limit
			}
			p.vel[d] = v
			p.pos[d] += v
			if p.pos[d] < 0 {
				p.pos[d] = 0
				p.vel[d] = math.Abs(p.vel[d]) / 2
			}
			if p.pos[d] > float64(card-1) {
				p.pos[d] = float64(card - 1)
				p.vel[d] = -math.Abs(p.vel[d]) / 2
			}
		}
		// Occasional mutation kick to escape local optima.
		if r.Float64() < 0.05 {
			d := r.Intn(arch.NumParams)
			p.pos[d] = r.Float64() * float64(dims[d]-1)
		}
	}
	return res
}
