package search

import (
	"math"
	"math/rand"

	"fast/internal/arch"
)

// lcsOptimizer is the Linear Combination Swarm optimizer: a bounded
// particle swarm over the continuous relaxation of the ordinal space.
// Each particle's next position is a linear combination of its velocity,
// its personal best, and the global best (the "linear combination" of
// the name); positions are rounded to the ordinal grid for evaluation.
// Infeasible evaluations never update bests, which keeps the swarm
// inside the safe region.
//
// Ask proposes the rounded positions of the next particles in
// round-robin order; Tell attributes each evaluation to the position
// snapshot that proposed it, then applies the velocity/position update —
// so a size-one ask/tell loop reproduces the classic asynchronous swarm,
// while batch asks give a synchronous generation.
type lcsOptimizer struct {
	transcript
	r    *rand.Rand
	dims [arch.NumParams]int

	swarm      []lcsParticle
	askCursor  int
	gBest      [arch.NumParams]float64
	gBestValue float64
	hasGlobal  bool
	// pending pairs each un-told Ask proposal with the particle and
	// position snapshot that generated it, in ask order.
	pending []lcsPending
}

type lcsParticle struct {
	pos, vel  [arch.NumParams]float64
	best      [arch.NumParams]float64
	bestValue float64
	hasBest   bool
}

type lcsPending struct {
	particle int
	pos      [arch.NumParams]float64
}

const (
	lcsInertia   = 0.65
	lcsPersonal  = 1.2
	lcsGlobal    = 1.6
	lcsSwarmSize = 16
)

// NewLCS returns a Linear Combination Swarm optimizer. budget caps the
// swarm size (a swarm larger than the trial budget never completes one
// generation); budget <= 0 uses the default swarm.
func NewLCS(seed int64, budget int) Optimizer {
	o := &lcsOptimizer{
		r:          rand.New(rand.NewSource(seed)),
		dims:       arch.Space{}.Dims(),
		gBestValue: math.Inf(-1),
	}
	o.initTranscript(AlgLCS, seed, budget)
	particles := lcsSwarmSize
	if budget > 0 && budget < particles {
		particles = budget
	}
	if particles < 1 {
		particles = 1
	}
	o.swarm = make([]lcsParticle, particles)
	for i := range o.swarm {
		for d, card := range o.dims {
			o.swarm[i].pos[d] = o.r.Float64() * float64(card-1)
			o.swarm[i].vel[d] = (o.r.Float64() - 0.5) * float64(card) / 2
		}
		o.swarm[i].bestValue = math.Inf(-1)
	}
	return o
}

func (o *lcsOptimizer) round(pos [arch.NumParams]float64) [arch.NumParams]int {
	var idx [arch.NumParams]int
	for d, card := range o.dims {
		v := int(math.Round(pos[d]))
		if v < 0 {
			v = 0
		}
		if v >= card {
			v = card - 1
		}
		idx[d] = v
	}
	return idx
}

func (o *lcsOptimizer) Ask(n int) [][arch.NumParams]int {
	out := make([][arch.NumParams]int, 0, n)
	for i := 0; i < n; i++ {
		p := o.askCursor % len(o.swarm)
		o.askCursor++
		o.pending = append(o.pending, lcsPending{particle: p, pos: o.swarm[p].pos})
		out = append(out, o.round(o.swarm[p].pos))
	}
	o.recordAsk(len(out))
	return out
}

func (o *lcsOptimizer) Tell(trials []Trial) {
	o.recordTell(trials)
	for _, tr := range trials {
		var pd lcsPending
		if len(o.pending) > 0 {
			pd = o.pending[0]
			o.pending = o.pending[1:]
		} else {
			// Foreign trial (e.g. a replayed transcript): attribute it to
			// the next particle at the trial's own grid position.
			pd.particle = o.askCursor % len(o.swarm)
			o.askCursor++
			for d := range tr.Index {
				pd.pos[d] = float64(tr.Index[d])
			}
		}
		p := &o.swarm[pd.particle]

		if tr.Feasible && tr.Value > p.bestValue {
			p.bestValue = tr.Value
			p.best = pd.pos
			p.hasBest = true
		}
		if tr.Feasible && tr.Value > o.gBestValue {
			o.gBestValue = tr.Value
			o.gBest = pd.pos
			o.hasGlobal = true
		}

		// Velocity/position update (applied per told trial so the swarm
		// state is deterministic in transcript order).
		for d, card := range o.dims {
			v := lcsInertia * p.vel[d]
			if p.hasBest {
				v += lcsPersonal * o.r.Float64() * (p.best[d] - p.pos[d])
			}
			if o.hasGlobal {
				v += lcsGlobal * o.r.Float64() * (o.gBest[d] - p.pos[d])
			}
			if !p.hasBest && !o.hasGlobal {
				// No feasible anchor yet: random restart drift.
				v = (o.r.Float64() - 0.5) * float64(card)
			}
			// Velocity clamp keeps particles inside a couple of grid
			// steps per iteration.
			limit := float64(card) / 2
			if v > limit {
				v = limit
			}
			if v < -limit {
				v = -limit
			}
			p.vel[d] = v
			p.pos[d] += v
			if p.pos[d] < 0 {
				p.pos[d] = 0
				p.vel[d] = math.Abs(p.vel[d]) / 2
			}
			if p.pos[d] > float64(card-1) {
				p.pos[d] = float64(card - 1)
				p.vel[d] = -math.Abs(p.vel[d]) / 2
			}
		}
		// Occasional mutation kick to escape local optima.
		if o.r.Float64() < 0.05 {
			d := o.r.Intn(arch.NumParams)
			p.pos[d] = o.r.Float64() * float64(o.dims[d]-1)
		}
	}
}

// LCS runs the Linear Combination Swarm serially (adapter over NewLCS).
func LCS(obj Objective, trials int, seed int64) Result {
	if trials <= 0 {
		return Result{}
	}
	return Drive(NewLCS(seed, trials), obj, trials)
}
