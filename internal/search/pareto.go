package search

import (
	"math"
	"sort"

	"fast/internal/arch"
)

// Dominates reports whether objective vector a Pareto-dominates b: a is
// at least as good on every objective and strictly better on one. Both
// vectors are maximize-oriented (Evaluation.Values convention) and must
// have the same length; extra components of the longer vector are
// ignored.
func Dominates(a, b []float64) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	better := false
	for m := 0; m < n; m++ {
		if a[m] < b[m] {
			return false
		}
		if a[m] > b[m] {
			better = true
		}
	}
	return better
}

// ParetoArchive maintains the non-dominated set of the feasible trials
// it has seen. Infeasible trials never enter — they are "dominated
// last", which is how budget-constrained searches keep Eq. 4 violations
// out of the frontier. The archive is fully deterministic: its contents
// are a pure function of the Add sequence, and when a capacity is set,
// pruning removes the most crowded point under a fixed tie-break — so
// two drivers replaying the same trial transcript (e.g. the same study
// at different parallelism) hold identical archives.
type ParetoArchive struct {
	// capacity bounds the archive size; <= 0 is unbounded. When an
	// insertion overflows the bound, the point with the smallest
	// crowding distance is evicted (ties evict the lexicographically
	// greatest index vector, so earlier grid points are preferred).
	capacity int
	points   []Trial
}

// NewParetoArchive returns an empty archive. capacity <= 0 is unbounded
// (the archive holds the exact non-dominated set of everything added).
func NewParetoArchive(capacity int) *ParetoArchive {
	return &ParetoArchive{capacity: capacity}
}

// Len returns the number of archived points.
func (a *ParetoArchive) Len() int { return len(a.points) }

// Add offers a trial to the archive and reports whether it entered.
// Infeasible trials, trials without an objective vector, dominated
// trials, and re-observations of an already-archived index vector are
// rejected; an accepted trial evicts every point it dominates, then the
// most crowded point if the capacity is exceeded.
func (a *ParetoArchive) Add(t Trial) bool {
	vals := t.ObjectiveVector()
	if vals == nil {
		return false
	}
	t.Values = vals
	for _, p := range a.points {
		if p.Index == t.Index {
			// Revisit of an archived design (drivers memoize, so the
			// evaluation is identical); the first observation stands.
			return false
		}
		if Dominates(p.Values, vals) {
			return false
		}
	}
	keep := a.points[:0]
	for _, p := range a.points {
		if !Dominates(vals, p.Values) {
			keep = append(keep, p)
		}
	}
	a.points = append(keep, t)
	if a.capacity > 0 && len(a.points) > a.capacity {
		a.evictMostCrowded()
	}
	return true
}

// Front returns the archived non-dominated set, sorted by index vector
// (lexicographically) so the order is canonical regardless of insertion
// history. The slice is a copy; callers may reorder it freely.
func (a *ParetoArchive) Front() []Trial {
	out := make([]Trial, len(a.points))
	copy(out, a.points)
	sort.Slice(out, func(i, j int) bool {
		return lessIndex(out[i].Index, out[j].Index)
	})
	return out
}

// evictMostCrowded removes the point with the smallest crowding
// distance; among ties it removes the lexicographically greatest index
// vector.
func (a *ParetoArchive) evictMostCrowded() {
	vals := make([][]float64, len(a.points))
	for i, p := range a.points {
		vals[i] = p.Values
	}
	crowd := crowdingDistances(vals)
	victim := 0
	for i := 1; i < len(a.points); i++ {
		switch {
		case crowd[i] < crowd[victim]:
			victim = i
		case crowd[i] == crowd[victim] &&
			lessIndex(a.points[victim].Index, a.points[i].Index):
			victim = i
		}
	}
	a.points = append(a.points[:victim], a.points[victim+1:]...)
}

// lessIndex orders hyperparameter index vectors lexicographically.
func lessIndex(a, b [arch.NumParams]int) bool {
	for d := 0; d < arch.NumParams; d++ {
		if a[d] != b[d] {
			return a[d] < b[d]
		}
	}
	return false
}

// crowdingDistances computes the NSGA-II crowding distance of each
// objective vector: per objective, points are sorted and each interior
// point accumulates the normalized gap between its neighbours; boundary
// points get +Inf. Ties within an objective sort by original position,
// so the result is deterministic for a deterministic input order.
func crowdingDistances(vals [][]float64) []float64 {
	n := len(vals)
	dist := make([]float64, n)
	if n == 0 {
		return dist
	}
	nObj := len(vals[0])
	order := make([]int, n)
	for m := 0; m < nObj; m++ {
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return vals[order[a]][m] < vals[order[b]][m]
		})
		lo, hi := vals[order[0]][m], vals[order[n-1]][m]
		if hi == lo {
			continue // no spread on this objective
		}
		dist[order[0]] = math.Inf(1)
		dist[order[n-1]] = math.Inf(1)
		for k := 1; k < n-1; k++ {
			dist[order[k]] += (vals[order[k+1]][m] - vals[order[k-1]][m]) / (hi - lo)
		}
	}
	return dist
}
