package search

import (
	"math/rand"
	"sort"

	"fast/internal/arch"
)

// nsga2Optimizer is an elitist non-dominated-sorting genetic algorithm
// (NSGA-II, Deb et al.) speaking the batch ask/tell protocol, so it
// inherits the concurrent Runner's worker pool, memoization, and
// EvaluateBatch for free.
//
// Ask serves proposals from a queue that refills one population at a
// time: the first refill is uniform random; later refills breed
// offspring from the current parent population by binary tournament
// (rank, then crowding distance), uniform crossover, and a single-site
// mutation. Tell accumulates evaluated trials and, every popSize
// trials, runs the environmental selection — non-dominated sort of
// parents ∪ children with crowding-distance truncation of the last
// front — to form the next parents. Constraint handling is
// "dominated last": feasible individuals always outrank infeasible
// ones, and infeasible ones form a single final front ordered by their
// tell sequence.
//
// All state evolves only through the ask/tell transcript and the
// seeded generator, so replaying a transcript (what the concurrent
// Runner does at any parallelism) reproduces the search exactly.
type nsga2Optimizer struct {
	transcript
	r    *rand.Rand
	dims [arch.NumParams]int
	pop  int

	// parents is the current population, annotated with the rank and
	// crowding distance computed by the selection that produced it.
	parents []nsga2Individual
	// queue holds generated-but-not-yet-asked proposals.
	queue [][arch.NumParams]int
	// told buffers evaluated trials until a full generation arrives.
	told []nsga2Individual
}

type nsga2Individual struct {
	idx   [arch.NumParams]int
	vals  []float64 // maximize-oriented; nil when infeasible
	rank  int
	crowd float64
}

// nsga2PopSize is the default population; it matches DefaultBatchSize,
// so the default concurrent driver advances exactly one generation per
// ask/tell round.
const nsga2PopSize = 16

// NewNSGA2 returns the multi-objective NSGA-II optimizer. budget caps
// the population size (a population larger than the trial budget never
// completes one generation); budget <= 0 uses the default.
func NewNSGA2(seed int64, budget int) Optimizer {
	o := &nsga2Optimizer{
		r:    rand.New(rand.NewSource(seed)),
		dims: arch.Space{}.Dims(),
		pop:  nsga2PopSize,
	}
	if budget > 0 && budget < o.pop {
		o.pop = budget
	}
	if o.pop < 2 {
		o.pop = 2 // tournament and crossover need two slots
	}
	o.initTranscript(AlgNSGA2, seed, budget)
	return o
}

func (o *nsga2Optimizer) Ask(n int) [][arch.NumParams]int {
	out := make([][arch.NumParams]int, 0, n)
	for len(out) < n {
		if len(o.queue) == 0 {
			o.refill()
		}
		out = append(out, o.queue[0])
		o.queue = o.queue[1:]
	}
	o.recordAsk(len(out))
	return out
}

func (o *nsga2Optimizer) Tell(trials []Trial) {
	o.recordTell(trials)
	for _, tr := range trials {
		o.told = append(o.told, nsga2Individual{
			idx:  tr.Index,
			vals: tr.ObjectiveVector(),
		})
	}
	for len(o.told) >= o.pop {
		gen := o.told[:o.pop:o.pop]
		o.told = o.told[o.pop:]
		o.parents = o.selectNext(append(o.parents, gen...))
	}
}

// refill queues one population worth of proposals: uniform random
// before the first selection, bred offspring after.
func (o *nsga2Optimizer) refill() {
	for i := 0; i < o.pop; i++ {
		if len(o.parents) == 0 {
			var idx [arch.NumParams]int
			for d, card := range o.dims {
				idx[d] = o.r.Intn(card)
			}
			o.queue = append(o.queue, idx)
			continue
		}
		a := o.tournament()
		b := o.tournament()
		child := a.idx
		for d := range child {
			if o.r.Float64() < 0.5 {
				child[d] = b.idx[d]
			}
		}
		o.queue = append(o.queue, mutate(o.r, child, 1.0/arch.NumParams))
	}
}

// tournament draws two parents and returns the one with the lower rank,
// breaking ties by larger crowding distance, then by draw order.
func (o *nsga2Optimizer) tournament() nsga2Individual {
	a := o.parents[o.r.Intn(len(o.parents))]
	b := o.parents[o.r.Intn(len(o.parents))]
	if b.rank < a.rank || (b.rank == a.rank && b.crowd > a.crowd) {
		return b
	}
	return a
}

// selectNext is the environmental selection: fast non-dominated sort of
// the combined population, then fill the next generation front by
// front, truncating the last front by descending crowding distance
// (ties keep the earlier individual, i.e. parents before children and
// tell order within a generation — both transcript-deterministic).
func (o *nsga2Optimizer) selectNext(combined []nsga2Individual) []nsga2Individual {
	fronts := nondominatedFronts(combined)
	next := make([]nsga2Individual, 0, o.pop)
	for rank, front := range fronts {
		vals := make([][]float64, len(front))
		for i, ci := range front {
			vals[i] = combined[ci].vals
		}
		crowd := crowdingDistances(vals)
		members := make([]nsga2Individual, len(front))
		for i, ci := range front {
			members[i] = combined[ci]
			members[i].rank = rank
			members[i].crowd = crowd[i]
		}
		if room := o.pop - len(next); len(members) > room {
			sort.SliceStable(members, func(a, b int) bool {
				return members[a].crowd > members[b].crowd
			})
			next = append(next, members[:room]...)
			break
		}
		next = append(next, members...)
		if len(next) == o.pop {
			break
		}
	}
	return next
}

// nondominatedFronts partitions individuals into Pareto fronts (indices
// into the input). Infeasible individuals (nil vals) form a single last
// front in input order — "dominated last".
func nondominatedFronts(pop []nsga2Individual) [][]int {
	var feas, infeas []int
	for i, ind := range pop {
		if ind.vals != nil {
			feas = append(feas, i)
		} else {
			infeas = append(infeas, i)
		}
	}
	var fronts [][]int
	remaining := feas
	for len(remaining) > 0 {
		var front, rest []int
		for _, i := range remaining {
			dominated := false
			for _, j := range remaining {
				if i != j && Dominates(pop[j].vals, pop[i].vals) {
					dominated = true
					break
				}
			}
			if dominated {
				rest = append(rest, i)
			} else {
				front = append(front, i)
			}
		}
		fronts = append(fronts, front)
		remaining = rest
	}
	if len(infeas) > 0 {
		fronts = append(fronts, infeas)
	}
	return fronts
}
