package fusion

import (
	"math/rand"
	"testing"
	"time"
)

// kvRegion builds a memory-bound decode-attention region: no pinnable
// weights (the stationary operand is the cache itself), a KV-cache slab
// whose residency saves TKVRead.
func kvRegion(kvBytes int64, tKV float64) RegionCost {
	return RegionCost{
		TMin: 1, TMax: 2 + tKV,
		EdgeProducer: -1,
		KVBytes:      kvBytes, TKVRead: tKV,
	}
}

func TestKVHeldUnderAmpleCapacity(t *testing.T) {
	rs := []RegionCost{kvRegion(4<<20, 1.5), kvRegion(4<<20, 1.5)}
	sol := Optimize(rs, 1<<30, Options{GreedyOnly: true})
	for i := range rs {
		if !sol.KVOnChip[i] {
			t.Errorf("region %d cache not held with ample capacity", i)
		}
		if sol.Times[i] != 2 {
			t.Errorf("region %d time = %f, want TMax - TKVRead = 2", i, sol.Times[i])
		}
	}
	// Held slabs charge GM like pins: both slabs, at every region.
	if sol.GMUsedPeak != 8<<20 {
		t.Errorf("peak = %d, want both slabs resident (%d)", sol.GMUsedPeak, int64(8<<20))
	}
}

func TestKVDroppedUnderTightCapacity(t *testing.T) {
	rs := []RegionCost{kvRegion(4<<20, 1.5), kvRegion(4<<20, 1.5)}
	// Room for exactly one slab: hold one, stream the other.
	sol := Optimize(rs, 4<<20, Options{GreedyOnly: true})
	var held int
	for i := range rs {
		if sol.KVOnChip[i] {
			held++
		}
	}
	if held != 1 {
		t.Errorf("%d slabs held in a one-slab capacity, want 1", held)
	}
	if sol.GMUsedPeak > 4<<20 {
		t.Errorf("peak %d exceeds capacity", sol.GMUsedPeak)
	}
	// No capacity at all: nothing held, times stay at TMax.
	none := Optimize(rs, 1<<20, Options{GreedyOnly: true})
	for i := range rs {
		if none.KVOnChip[i] {
			t.Errorf("region %d cache held beyond capacity", i)
		}
		if none.Times[i] != rs[i].TMax {
			t.Errorf("region %d time = %f, want TMax", i, none.Times[i])
		}
	}
}

func TestKVCompetesWithWeightsByDensity(t *testing.T) {
	// One slot: the weight pin saves 1.0/4MiB, the cache hold 2.0/4MiB.
	// The denser cache must win it.
	rs := []RegionCost{
		{TMin: 1, TMax: 3, TWeight: 1, DWeight: 4 << 20, PinnableWeights: true, EdgeProducer: -1},
		kvRegion(4<<20, 2),
	}
	sol := Optimize(rs, 4<<20, Options{GreedyOnly: true})
	if sol.PinWeight[0] || !sol.KVOnChip[1] {
		t.Errorf("pin=%v hold=%v: cache hold should out-rank the weight pin", sol.PinWeight[0], sol.KVOnChip[1])
	}
	// Double the capacity: both fit.
	both := Optimize(rs, 8<<20, Options{GreedyOnly: true})
	if !both.PinWeight[0] || !both.KVOnChip[1] {
		t.Errorf("pin=%v hold=%v: both placements fit in 8 MiB", both.PinWeight[0], both.KVOnChip[1])
	}
}

func TestKVDisabledNeverHolds(t *testing.T) {
	rs := []RegionCost{kvRegion(1<<20, 1)}
	sol := Optimize(rs, 1<<30, Options{Disable: true})
	if sol.KVOnChip == nil || sol.KVOnChip[0] {
		t.Errorf("disabled solve holds the cache: %v", sol.KVOnChip)
	}
}

// TestKVILPMatchesGreedyOrBetter extends the ILP-vs-greedy property to
// instances with all three residency classes (weights, edges, KV slabs):
// the exact solve must never be worse, and must respect capacity with
// held slabs charged at every region.
func TestKVILPMatchesGreedyOrBetter(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 25; trial++ {
		n := 3 + r.Intn(6)
		rs := make([]RegionCost, n)
		for i := range rs {
			tmin := 1 + r.Float64()
			rs[i] = RegionCost{
				TMin: tmin, TMax: tmin + r.Float64()*4,
				TWeight: r.Float64() * 2, DWeight: int64(1+r.Intn(8)) << 20,
				PinnableWeights: r.Intn(4) != 0,
				EdgeProducer:    i - 1 - r.Intn(2),
				EdgeBytes:       int64(1+r.Intn(4)) << 20,
				TEdgeRead:       r.Float64() * 2,
				TEdgeWrite:      r.Float64(),
			}
			if rs[i].EdgeProducer < 0 {
				rs[i].EdgeProducer = -1
			}
			if r.Intn(2) == 0 {
				rs[i].KVBytes = int64(1+r.Intn(6)) << 20
				rs[i].TKVRead = r.Float64() * 2
			}
		}
		capacity := int64(4+r.Intn(24)) << 20
		g := Optimize(rs, capacity, Options{GreedyOnly: true})
		x := Optimize(rs, capacity, Options{Deadline: 3 * time.Second})
		if x.Total > g.Total+1e-9 {
			t.Fatalf("trial %d: ILP total %.4f worse than greedy %.4f (method %s)",
				trial, x.Total, g.Total, x.Method)
		}
		for _, sol := range []Solution{g, x} {
			if sol.GMUsedPeak > capacity {
				t.Fatalf("trial %d: %s exceeded capacity: %d > %d", trial, sol.Method, sol.GMUsedPeak, capacity)
			}
		}
	}
}

// TestKVResolveRoundTrips: memoized Solve+Resolve must equal the direct
// solve on KV-bearing instances (the plan cache path sim uses).
func TestKVResolveRoundTrips(t *testing.T) {
	rs := []RegionCost{
		kvRegion(2<<20, 1.2),
		{TMin: 1, TMax: 3, TWeight: 1, DWeight: 2 << 20, PinnableWeights: true,
			EdgeProducer: 0, EdgeBytes: 1 << 20, TEdgeRead: 0.5,
			KVBytes: 3 << 20, TKVRead: 0.8},
	}
	producers := []int{-1, 0}
	usable := UsableEdges(producers, 0)
	opts := Options{GreedyOnly: true}
	capacity := int64(6 << 20)
	direct := OptimizePlanned(rs, usable, capacity, opts)
	asn := SolvePlanned(rs, usable, capacity, opts)
	resolved := ResolvePlanned(rs, capacity, asn)
	if direct.Total != resolved.Total || direct.GMUsedPeak != resolved.GMUsedPeak {
		t.Errorf("resolve diverged: total %v vs %v, peak %v vs %v",
			direct.Total, resolved.Total, direct.GMUsedPeak, resolved.GMUsedPeak)
	}
	for i := range rs {
		if direct.KVOnChip[i] != resolved.KVOnChip[i] {
			t.Errorf("region %d: hold %v vs %v", i, direct.KVOnChip[i], resolved.KVOnChip[i])
		}
	}
}
