package fusion

import (
	"math"
	"sync"
	"time"

	"fast/internal/ilp"
)

// heapCand is one greedy candidate (a weight pin or an edge residency)
// inside the lazy max-heap: val caches the candidate's value density at
// the time it was last scored, seq is its enumeration order for
// tie-breaking, idx the region, bytes the GM footprint.
type heapCand struct {
	val    float64
	seq    int32
	idx    int32
	isEdge bool
	// isKV marks a KV-cache hold candidate: capacity-wise it behaves
	// like a pin (charges every region), value-wise it saves TKVRead.
	isKV  bool
	bytes int64
}

// candBefore is the heap priority: higher cached density first; among
// equal densities, earlier enumeration order — exactly the candidate the
// reference's linear scan (first strict maximum) selects.
func candBefore(a, b heapCand) bool {
	if a.val != b.val {
		return a.val > b.val
	}
	return a.seq < b.seq
}

func candSiftDown(h []heapCand, i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		best := l
		if r := l + 1; r < len(h) && candBefore(h[r], h[l]) {
			best = r
		}
		if !candBefore(h[best], h[i]) {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

// greedyScratch pools the solver's per-call working memory; Plan.Evaluate
// runs one greedy per trial, so these buffers are the hottest transient
// allocations in a search.
type greedyScratch struct {
	saved []float64
	rb    []int64
	heap  []heapCand
}

var greedyPool = sync.Pool{New: func() any { return new(greedyScratch) }}

// greedy builds a density-ordered warm start: each candidate (weight pin
// or edge residency) is taken when its marginal time saving per GM byte
// is best and capacity allows. Savings saturate at each region's TMin, so
// marginal values are recomputed as items land.
//
// This is the design-dependent inner loop of every search trial. Two
// structural optimizations over the reference implementation, both
// selection-order preserving (the fuzz test against the frozen reference
// keeps that claim falsifiable):
//
//   - Peak tracking: pinned weights charge every region uniformly, so
//     peak GM usage decomposes as pinnedTotal + max_k(resident_k +
//     BaseGM_k) and each placement test needs only the candidate's own
//     residency interval, not a full sweep.
//
//   - Lazy selection: candidate values only ever shrink (saved[] grows
//     monotonically, so marginal() is non-increasing), which admits the
//     classic lazy-greedy heap. Candidates sit in a max-heap ordered by
//     cached density; on pop the top is re-scored — if it decayed it is
//     pushed back down with its fresh value, if it held it is the true
//     maximum, because every other cached value is an upper bound on its
//     own fresh value. Equal densities resolve by enumeration order,
//     matching the linear scan's first-strict-maximum rule, so the same
//     candidates land in the same sequence as the reference. This turns
//     the O(candidates) re-scan per selection into O(log candidates)
//     amortized.
func greedy(regions []RegionCost, usable []bool, capacity int64) (pin, keep, hold []bool) {
	n := len(regions)
	pin = make([]bool, n)
	keep = make([]bool, n)
	hold = make([]bool, n)
	gs := greedyPool.Get().(*greedyScratch)
	defer greedyPool.Put(gs)
	saved := resetF64(&gs.saved, n)

	marginal := func(i int, t float64) float64 {
		r := &regions[i]
		room := (r.TMax - r.TMin) - saved[i]
		if room <= 0 {
			return 0
		}
		return math.Min(t, room)
	}
	edgeValue := func(i int) float64 {
		v := marginal(i, regions[i].TEdgeRead)
		if p := regions[i].EdgeProducer; p >= 0 {
			v += marginal(p, regions[i].TEdgeWrite)
		}
		return v
	}
	// density mirrors the reference's scoring arithmetic exactly: raw
	// marginal first, the per-byte division only when positive.
	density := func(c heapCand) float64 {
		var v float64
		switch {
		case c.isEdge:
			v = edgeValue(int(c.idx))
		case c.isKV:
			v = marginal(int(c.idx), regions[c.idx].TKVRead)
		default:
			v = marginal(int(c.idx), regions[c.idx].TWeight)
		}
		if v <= 0 {
			return 0
		}
		if c.bytes > 0 {
			v /= float64(c.bytes)
		}
		return v
	}

	h := gs.heap[:0]
	for i := range regions {
		r := &regions[i]
		if r.PinnableWeights && r.DWeight > 0 && r.TWeight > 0 {
			h = append(h, heapCand{seq: int32(len(h)), idx: int32(i), bytes: r.DWeight})
		}
		if usable[i] && r.EdgeResidentBytes > 0 {
			h = append(h, heapCand{seq: int32(len(h)), idx: int32(i), isEdge: true, bytes: r.EdgeResidentBytes})
		}
		// Encoder workloads enumerate no KV candidates, so their
		// selection sequence — and hence the frozen-reference
		// differential — is untouched.
		if r.KVBytes > 0 && r.TKVRead > 0 {
			h = append(h, heapCand{seq: int32(len(h)), idx: int32(i), isKV: true, bytes: r.KVBytes})
		}
	}
	for i := range h {
		h[i].val = density(h[i])
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		candSiftDown(h, i)
	}

	// rb[k] = BaseGM_k plus the edge tensors resident across region k;
	// residentPeak = max rb[k]. Peak GM usage for any assignment is
	// pinnedTotal + residentPeak, maintained incrementally.
	rb := resetI64(&gs.rb, n)
	var residentPeak, pinnedTotal int64
	for k := range regions {
		rb[k] = regions[k].BaseGM
		if rb[k] > residentPeak {
			residentPeak = rb[k]
		}
	}

	for len(h) > 0 {
		if v := density(h[0]); v <= 0 {
			// Saved[] only grows: this candidate stays worthless forever.
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
			candSiftDown(h, 0)
			continue
		} else if v < h[0].val {
			// Stale upper bound: re-key and let the heap re-rank it.
			h[0].val = v
			candSiftDown(h, 0)
			continue
		}
		c := h[0]
		h[0] = h[len(h)-1]
		h = h[:len(h)-1]
		candSiftDown(h, 0)
		// Capacity test over the candidate's own footprint: an edge only
		// occupies its residency interval [producer, consumer]; a pin
		// charges every region.
		if c.isEdge {
			ci := int(c.idx)
			p := regions[ci].EdgeProducer
			var top int64
			for k := p; k <= ci; k++ {
				if rb[k] > top {
					top = rb[k]
				}
			}
			peakAfter := residentPeak
			if top+c.bytes > peakAfter {
				peakAfter = top + c.bytes
			}
			if pinnedTotal+peakAfter > capacity {
				continue
			}
			residentPeak = peakAfter
			for k := p; k <= ci; k++ {
				rb[k] += c.bytes
			}
			keep[ci] = true
			saved[ci] += marginal(ci, regions[ci].TEdgeRead)
			if p >= 0 {
				saved[p] += marginal(p, regions[ci].TEdgeWrite)
			}
		} else {
			ci := int(c.idx)
			if pinnedTotal+c.bytes+residentPeak > capacity {
				continue
			}
			pinnedTotal += c.bytes
			if c.isKV {
				hold[ci] = true
				saved[ci] += marginal(ci, regions[ci].TKVRead)
			} else {
				pin[ci] = true
				saved[ci] += marginal(ci, regions[ci].TWeight)
			}
		}
	}
	gs.heap = h[:0]
	return pin, keep, hold
}

// resetF64 grows *s to n and zeroes it.
func resetF64(s *[]float64, n int) []float64 {
	if cap(*s) < n {
		*s = make([]float64, n)
	}
	out := (*s)[:n]
	for i := range out {
		out[i] = 0
	}
	*s = out
	return out
}

// resetI64 grows *s to n and zeroes it.
func resetI64(s *[]int64, n int) []int64 {
	if cap(*s) < n {
		*s = make([]int64, n)
	}
	out := (*s)[:n]
	for i := range out {
		out[i] = 0
	}
	*s = out
	return out
}

// solveILP builds the reduced Figure 8 ILP and solves it with
// branch-and-bound. Variables: w_i (weight pin), e_i (edge residency,
// consumer-indexed), h_i (KV-cache hold, pin-like: charges every
// capacity row), and shifted continuous T'_i = T_i - TMin_i ≥ 0.
//
// The formulation is presolved before it reaches the dense simplex —
// whose per-pivot cost scales with rows × columns, so dead dimensions
// are pure overhead at cubic weight:
//
//   - fixed-zero binaries (non-pinnable or weightless regions, edges
//     outside the residency window) are dropped instead of carried as
//     columns with 0 upper-bound rows;
//   - T'_i for regions no live binary can affect is the constant
//     TMax-TMin, dropped from the objective (constants shift every
//     node's bound equally, so branching is unaffected);
//   - duplicate capacity rows (runs of regions spanned by the same pins
//     and edges) collapse to their tightest right-hand side.
//
// The reduction is exact: the feasible set over the live binaries and
// the optimal objective are unchanged, only tie-breaking among equally
// optimal assignments may differ from the unreduced formulation.
func solveILP(regions []RegionCost, usable []bool, capacity int64,
	warmPin, warmKeep, warmHold []bool, deadline time.Duration, dense bool) (Assignment, bool) {

	n := len(regions)
	if n == 0 {
		return Assignment{}, false
	}
	// Live binary variables, reduced-index maps.
	wIdx := make([]int, n)
	eIdx := make([]int, n)
	vars := 0
	for i := range regions {
		wIdx[i] = -1
		if regions[i].PinnableWeights && regions[i].DWeight > 0 {
			wIdx[i] = vars
			vars++
		}
	}
	for i := range regions {
		eIdx[i] = -1
		if usable[i] {
			eIdx[i] = vars
			vars++
		}
	}
	hIdx := make([]int, n)
	for i := range regions {
		hIdx[i] = -1
		if regions[i].KVBytes > 0 && regions[i].TKVRead > 0 {
			hIdx[i] = vars
			vars++
		}
	}
	if vars == 0 {
		return Assignment{}, false
	}
	// T'_i stays a variable only where a live binary can lower it.
	tIdx := make([]int, n)
	nv := vars
	for i := range regions {
		tIdx[i] = -1
		touched := wIdx[i] >= 0 || eIdx[i] >= 0 || hIdx[i] >= 0
		for j := range regions {
			if eIdx[j] >= 0 && regions[j].EdgeProducer == i {
				touched = true
			}
		}
		if touched {
			tIdx[i] = nv
			nv++
		}
	}

	c := make([]float64, nv)
	u := make([]float64, nv)
	bin := make([]bool, nv)
	for i := 0; i < vars; i++ {
		bin[i] = true
		u[i] = 1
	}
	for i := range regions {
		if ti := tIdx[i]; ti >= 0 {
			c[ti] = 1 // minimize Σ live T'
			u[ti] = math.Inf(1)
		}
	}

	var a [][]float64
	var b []float64

	// T'_i ≥ (TMax-TMin) - TWeight·w_i - TEdgeRead·e_i - Σ_{j: prod(j)=i} TEdgeWrite_j·e_j.
	for i, r := range regions {
		ti := tIdx[i]
		if ti < 0 {
			continue
		}
		row := make([]float64, nv)
		row[ti] = -1
		if wIdx[i] >= 0 {
			row[wIdx[i]] = -r.TWeight
		}
		if eIdx[i] >= 0 {
			row[eIdx[i]] -= r.TEdgeRead
		}
		if hIdx[i] >= 0 {
			row[hIdx[i]] -= r.TKVRead
		}
		for j, rj := range regions {
			if eIdx[j] >= 0 && rj.EdgeProducer == i {
				row[eIdx[j]] -= rj.TEdgeWrite
			}
		}
		a = append(a, row)
		b = append(b, -(r.TMax - r.TMin))
	}

	// Capacity per region k: Σ_j W_j w_j + Σ_{edges spanning k} bytes·e_j
	// ≤ C - B_k. Consecutive regions often see the identical left-hand
	// side (pins charge every row; an edge charges its whole residency
	// interval), so identical rows keep only their tightest bound.
	tight := make(map[string]int) // row signature → index into a/b
	sig := make([]byte, 0, vars*8)
	for k, rk := range regions {
		row := make([]float64, nv)
		for j, rj := range regions {
			if wIdx[j] >= 0 {
				row[wIdx[j]] = float64(rj.DWeight)
			}
			if hIdx[j] >= 0 {
				// Held caches persist across the step: every row.
				row[hIdx[j]] = float64(rj.KVBytes)
			}
			if eIdx[j] >= 0 && rj.EdgeProducer <= k && k <= j {
				row[eIdx[j]] += float64(rj.EdgeResidentBytes)
			}
		}
		rhs := float64(capacity - rk.BaseGM)
		sig = sig[:0]
		for i := 0; i < vars; i++ {
			bits := math.Float64bits(row[i])
			sig = append(sig, byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24),
				byte(bits>>32), byte(bits>>40), byte(bits>>48), byte(bits>>56))
		}
		if prev, dup := tight[string(sig)]; dup {
			if rhs < b[prev] {
				b[prev] = rhs
			}
			continue
		}
		tight[string(sig)] = len(a)
		a = append(a, row)
		b = append(b, rhs)
	}

	warm := make([]float64, nv)
	saved := savedByRegion(regions, warmPin, warmKeep, warmHold)
	for i, r := range regions {
		if warmPin[i] && wIdx[i] >= 0 {
			warm[wIdx[i]] = 1
		}
		if warmKeep[i] && eIdx[i] >= 0 {
			warm[eIdx[i]] = 1
		}
		if warmHold != nil && warmHold[i] && hIdx[i] >= 0 {
			warm[hIdx[i]] = 1
		}
		if ti := tIdx[i]; ti >= 0 {
			warm[ti] = math.Max(0, (r.TMax-r.TMin)-saved[i])
		}
	}

	res, err := ilp.Solve(ilp.Problem{C: c, A: a, B: b, U: u, Binary: bin}, ilp.Options{
		//fast:allow nondetsource sets the ILP budget deadline; a timeout falls back to the deterministic greedy placement
		Deadline:  time.Now().Add(deadline),
		WarmStart: warm,
		Dense:     dense,
	})
	if err != nil || !res.Feasible {
		return Assignment{}, false
	}
	asn := Assignment{
		Pin:    make([]bool, n),
		Keep:   make([]bool, n),
		Hold:   make([]bool, n),
		Method: "ilp-incumbent",
		Nodes:  res.Nodes,
	}
	for i := 0; i < n; i++ {
		asn.Pin[i] = wIdx[i] >= 0 && res.X[wIdx[i]] > 0.5
		asn.Keep[i] = eIdx[i] >= 0 && res.X[eIdx[i]] > 0.5
		asn.Hold[i] = hIdx[i] >= 0 && res.X[hIdx[i]] > 0.5
	}
	if res.Optimal {
		asn.Method = "ilp-optimal"
	} else {
		asn.Gap = res.Gap
	}
	return asn, true
}
