package fusion

import (
	"math"
	"time"

	"fast/internal/ilp"
)

// greedy builds a density-ordered warm start: each candidate (weight pin
// or edge residency) is taken when its marginal time saving per GM byte
// is best and capacity allows. Savings saturate at each region's TMin, so
// marginal values are recomputed as items land.
//
// This is the design-dependent inner loop of every search trial, so it
// avoids the naive implementation's per-test full peak sweep: pinned
// weights charge every region uniformly, so peak GM usage decomposes as
// pinnedTotal + max_k(resident_k + BaseGM_k) and each placement test
// needs only the candidate's own residency interval. Candidate values
// only ever shrink (saved[] grows monotonically), so zero-value
// candidates are pruned permanently. Both changes are selection-order
// preserving: the same candidates land in the same sequence as the
// reference implementation.
func greedy(regions []RegionCost, usable []bool, capacity int64) (pin, keep []bool) {
	n := len(regions)
	pin = make([]bool, n)
	keep = make([]bool, n)
	saved := make([]float64, n)

	marginal := func(i int, t float64) float64 {
		r := &regions[i]
		room := (r.TMax - r.TMin) - saved[i]
		if room <= 0 {
			return 0
		}
		return math.Min(t, room)
	}
	edgeValue := func(i int) float64 {
		v := marginal(i, regions[i].TEdgeRead)
		if p := regions[i].EdgeProducer; p >= 0 {
			v += marginal(p, regions[i].TEdgeWrite)
		}
		return v
	}

	type cand struct {
		isEdge bool
		idx    int
		bytes  int64
	}
	var cands []cand
	for i := range regions {
		r := &regions[i]
		if r.PinnableWeights && r.DWeight > 0 && r.TWeight > 0 {
			cands = append(cands, cand{false, i, r.DWeight})
		}
		if usable[i] && r.EdgeResidentBytes > 0 {
			cands = append(cands, cand{true, i, r.EdgeResidentBytes})
		}
	}

	// rb[k] = BaseGM_k plus the edge tensors resident across region k;
	// residentPeak = max rb[k]. Peak GM usage for any assignment is
	// pinnedTotal + residentPeak, maintained incrementally.
	rb := make([]int64, n)
	var residentPeak, pinnedTotal int64
	for k := range regions {
		rb[k] = regions[k].BaseGM
		if rb[k] > residentPeak {
			residentPeak = rb[k]
		}
	}

	for len(cands) > 0 {
		best, bestVal := -1, 0.0
		w := 0
		for _, c := range cands {
			var v float64
			if c.isEdge {
				v = edgeValue(c.idx)
			} else {
				v = marginal(c.idx, regions[c.idx].TWeight)
			}
			if v <= 0 {
				continue // saved[] only grows: this stays worthless forever
			}
			if c.bytes > 0 {
				v /= float64(c.bytes)
			}
			cands[w] = c
			if v > bestVal {
				bestVal, best = v, w
			}
			w++
		}
		cands = cands[:w]
		if best < 0 || bestVal <= 0 {
			break
		}
		c := cands[best]
		cands = append(cands[:best], cands[best+1:]...)
		// Capacity test over the candidate's own footprint: an edge only
		// occupies its residency interval [producer, consumer]; a pin
		// charges every region.
		if c.isEdge {
			p := regions[c.idx].EdgeProducer
			var top int64
			for k := p; k <= c.idx; k++ {
				if rb[k] > top {
					top = rb[k]
				}
			}
			peakAfter := residentPeak
			if top+c.bytes > peakAfter {
				peakAfter = top + c.bytes
			}
			if pinnedTotal+peakAfter > capacity {
				continue
			}
			residentPeak = peakAfter
			for k := p; k <= c.idx; k++ {
				rb[k] += c.bytes
			}
			keep[c.idx] = true
			saved[c.idx] += marginal(c.idx, regions[c.idx].TEdgeRead)
			if p >= 0 {
				saved[p] += marginal(p, regions[c.idx].TEdgeWrite)
			}
		} else {
			if pinnedTotal+c.bytes+residentPeak > capacity {
				continue
			}
			pinnedTotal += c.bytes
			pin[c.idx] = true
			saved[c.idx] += marginal(c.idx, regions[c.idx].TWeight)
		}
	}
	return pin, keep
}

// solveILP builds the reduced Figure 8 ILP and solves it with
// branch-and-bound. Variables: w_i (weight pin), e_i (edge residency,
// consumer-indexed), and shifted continuous T'_i = T_i - TMin_i ≥ 0.
func solveILP(regions []RegionCost, usable []bool, capacity int64,
	warmPin, warmKeep []bool, deadline time.Duration) (pin, keep []bool, method string, ok bool) {

	n := len(regions)
	nv := 2*n + n // w, e, T'
	decisions := 0
	for i, r := range regions {
		if r.PinnableWeights && r.DWeight > 0 {
			decisions++
		}
		if usable[i] {
			decisions++
		}
	}
	if n == 0 || decisions == 0 {
		return nil, nil, "", false
	}

	c := make([]float64, nv)
	u := make([]float64, nv)
	bin := make([]bool, nv)
	for i, r := range regions {
		bin[i] = true // w_i
		if r.PinnableWeights && r.DWeight > 0 {
			u[i] = 1
		}
		bin[n+i] = true // e_i
		if usable[i] {
			u[n+i] = 1
		}
		c[2*n+i] = 1 // minimize Σ T'
		u[2*n+i] = math.Inf(1)
	}

	var a [][]float64
	var b []float64

	// T'_i ≥ (TMax-TMin) - TWeight·w_i - TEdgeRead·e_i - Σ_{j: prod(j)=i} TEdgeWrite_j·e_j.
	for i, r := range regions {
		row := make([]float64, nv)
		row[2*n+i] = -1
		row[i] = -r.TWeight
		row[n+i] -= r.TEdgeRead
		for j, rj := range regions {
			if usable[j] && rj.EdgeProducer == i {
				row[n+j] -= rj.TEdgeWrite
			}
		}
		a = append(a, row)
		b = append(b, -(r.TMax - r.TMin))
	}

	// Capacity per region k: Σ_j W_j w_j + Σ_{edges spanning k} bytes·e_j ≤ C - B_k.
	for k, rk := range regions {
		row := make([]float64, nv)
		for j, rj := range regions {
			row[j] = float64(rj.DWeight)
			if usable[j] && rj.EdgeProducer <= k && k <= j {
				row[n+j] += float64(rj.EdgeResidentBytes)
			}
		}
		a = append(a, row)
		b = append(b, float64(capacity-rk.BaseGM))
	}

	warm := make([]float64, nv)
	for i := range regions {
		if warmPin[i] {
			warm[i] = 1
		}
		if warmKeep[i] {
			warm[n+i] = 1
		}
	}
	saved := savedByRegion(regions, warmPin, warmKeep)
	for i, r := range regions {
		warm[2*n+i] = math.Max(0, (r.TMax-r.TMin)-saved[i])
	}

	res, err := ilp.Solve(ilp.Problem{C: c, A: a, B: b, U: u, Binary: bin}, ilp.Options{
		Deadline:  time.Now().Add(deadline),
		WarmStart: warm,
	})
	if err != nil || !res.Feasible {
		return nil, nil, "", false
	}
	pin = make([]bool, n)
	keep = make([]bool, n)
	for i := 0; i < n; i++ {
		pin[i] = res.X[i] > 0.5
		keep[i] = res.X[n+i] > 0.5
	}
	method = "ilp-incumbent"
	if res.Optimal {
		method = "ilp-optimal"
	}
	return pin, keep, method, true
}
