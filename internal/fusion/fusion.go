// Package fusion implements FAST fusion (§5.5, Figure 8): a secondary
// pass over XLA-style fusion regions that decides which activation edges
// and weight tensors to place in leftover Global Memory, minimizing total
// execution time under the GM capacity constraint.
//
// The Figure 8 ILP is built faithfully and solved with internal/ilp
// (branch-and-bound with a deadline, returning the incumbent on timeout —
// the paper's SCIP contract). A density-greedy warm start with saturation
// handling seeds the incumbent, so even a zero deadline yields a sound,
// feasible solution.
//
// Two adaptations of the Fig. 8 formulation, documented in DESIGN.md:
//
//  1. The big-M adjacency constraint forces p_I(i)=0 unless region i
//     executes immediately after its producer, and the fan-out
//     constraints tie p_O(producer)=p_I(consumer); the free binaries are
//     therefore one weight-pinning decision per region plus one
//     edge-residency decision per producer→consumer pair, which is the
//     form solved here.
//  2. The paper's input graphs are pre-fused blobs (footnote 1) in which
//     a whole MBConv block, including its squeeze-excite detour, is
//     near-chain-like. Our XLA regions are finer, so strict order
//     adjacency would forbid keeping the dominant dwconv→excite tensors
//     on chip. Options.Window generalizes adjacency to "within W regions"
//     (W=1 reproduces the paper's constraint; default W=4 spans an SE
//     detour), with the tensor charged against GM capacity for every
//     region it stays resident across.
package fusion

import (
	"math"
	"sync"
	"time"
)

// DefaultWindow is the default residency window (see package comment).
const DefaultWindow = 4

// RegionCost is the simulator-provided timing/size data for one fusion
// region (one vertex of Fig. 8's graph), in execution order.
type RegionCost struct {
	// TMin is the region's execution time with all tensors on chip
	// (compute-bound floor), seconds.
	TMin float64
	// TMax is the execution time with inputs, outputs and weights all
	// streamed from DRAM.
	TMax float64
	// TWeight is the DRAM-time saving from pinning this region's weights
	// in Global Memory; DWeight is their size.
	TWeight float64
	DWeight int64
	// PinnableWeights is false for regions whose "stationary" operand is
	// itself an activation (attention scores) — nothing to pin.
	PinnableWeights bool

	// EdgeProducer is the region producing this region's primary external
	// activation input (-1 for none); EdgeBytes is that tensor's size.
	EdgeProducer int
	EdgeBytes    int64
	// KVBytes is the persistent key/value-cache bytes this region reads
	// (decode-step attention); TKVRead is the DRAM-time saving when that
	// cache slab is held resident in Global Memory. A held cache behaves
	// like a pinned weight for capacity purposes — the tensor persists
	// across inferences, so it charges GM for the whole step, not just a
	// producer→consumer interval. Zero for encoder workloads.
	KVBytes int64
	TKVRead float64

	// EdgeResidentBytes is the tensor's peak Global-Memory residency,
	// which may be below EdgeBytes when the scheduler applies inter-op
	// blocking (§5.5: "schedulers can use inter-op blocking to reduce
	// tensor working set sizes") — e.g. streaming one batch sample at a
	// time between adjacent regions. Zero means EdgeBytes.
	EdgeResidentBytes int64
	// TEdgeRead is the consumer-side DRAM-time saving when the edge
	// tensor is GM-resident (includes activation re-read extras).
	TEdgeRead float64
	// TEdgeWrite is the producer-side saving (its DRAM write), zero when
	// other consumers still force the tensor to DRAM.
	TEdgeWrite float64

	// BaseGM is B_i: the nominal Global Memory the scheduler already uses
	// for working tiles while this region runs.
	BaseGM int64
}

// Solution is the fusion assignment.
type Solution struct {
	// PinWeight[i] keeps region i's weights resident in GM across
	// inferences (weight pinning).
	PinWeight []bool
	// EdgeOnChip[i] keeps region i's primary input tensor in GM from its
	// producer until i runs.
	EdgeOnChip []bool
	// KVOnChip[i] holds region i's persistent KV-cache slab resident in
	// GM for the whole decode step (nil on solutions predating the KV
	// class; treated as all-false).
	KVOnChip []bool
	// Times[i] is the post-fusion execution-time estimate per region.
	Times []float64
	// Total is ΣTimes.
	Total float64
	// GMUsedPeak is the peak Global Memory residency in bytes.
	GMUsedPeak int64
	// Method records how the solution was obtained: "ilp-optimal",
	// "ilp-incumbent", "greedy", or "disabled".
	Method string
	// Gap is the relative optimality gap the ILP reported when the
	// deadline expired before optimality was proven (Method
	// "ilp-incumbent"); zero otherwise. +Inf means no usable bound
	// survived the early exit.
	Gap float64
	// Nodes is the number of branch-and-bound nodes the ILP explored
	// (zero for the non-ILP methods).
	Nodes int
}

// Options configures Optimize.
type Options struct {
	// Deadline bounds the ILP solve (default 2s). The paper uses a
	// 20-minute SCIP timeout; experiments here size deadlines to the
	// harness.
	Deadline time.Duration
	// Disable turns fusion off entirely (ablation): nothing is placed in
	// GM.
	Disable bool
	// GreedyOnly skips the ILP (used inside search loops where thousands
	// of trials run).
	GreedyOnly bool
	// Window is the residency window W (0 → DefaultWindow; 1 reproduces
	// the paper's strict adjacency).
	Window int
	// DenseILP routes the exact solve through the frozen dense-tableau
	// reference solver instead of the sparse revised-simplex core.
	// Retained for differential tests and dense-vs-sparse benchmarks.
	DenseILP bool
}

// regionTime evaluates max(TMin, TMax - saved).
func regionTime(r RegionCost, saved float64) float64 {
	t := r.TMax - saved
	if t < r.TMin {
		return r.TMin
	}
	return t
}

// savedByRegion accumulates each region's time savings for an assignment
// (hold may be nil: no KV-cache residency).
func savedByRegion(regions []RegionCost, pin, keep, hold []bool) []float64 {
	saved := make([]float64, len(regions))
	accumSaved(saved, regions, pin, keep, hold)
	return saved
}

// accumSaved adds each region's time savings into a caller-provided
// (zeroed) buffer. hold may be nil (no KV-cache residency).
func accumSaved(saved []float64, regions []RegionCost, pin, keep, hold []bool) {
	for i, r := range regions {
		if pin[i] {
			saved[i] += r.TWeight
		}
		if keep[i] {
			saved[i] += r.TEdgeRead
			if r.EdgeProducer >= 0 {
				saved[r.EdgeProducer] += r.TEdgeWrite
			}
		}
		if hold != nil && hold[i] {
			saved[i] += r.TKVRead
		}
	}
}

// UsableEdges is the design-independent half of the fusion pre-analysis:
// region i's primary edge is a placement candidate only when it has a
// producer within the residency window (window 0 uses DefaultWindow).
// The producers slice holds each region's EdgeProducer in execution
// order. The result depends only on the partition and the window, so
// callers evaluating one workload against many datapaths compute it once
// (sim.Compile) and pass it to OptimizePlanned for every design.
func UsableEdges(producers []int, window int) []bool {
	if window == 0 {
		window = DefaultWindow
	}
	usable := make([]bool, len(producers))
	for i, p := range producers {
		usable[i] = p >= 0 && i-p >= 1 && i-p <= window
	}
	return usable
}

// Assignment is the memoizable output of SolvePlanned: the placement
// decision plus the solve provenance. The slices are owned by the
// Assignment and treated as read-only by ResolvePlanned, so one
// Assignment can back many concurrent Solutions.
type Assignment struct {
	Pin, Keep []bool
	// Hold marks regions whose persistent KV-cache slab stays resident
	// in GM (always allocated, all-false for encoder workloads).
	Hold []bool
	// Method is "disabled", "greedy", "ilp-incumbent" or "ilp-optimal".
	Method string
	// Gap is the ILP's relative optimality gap on a deadline hit (see
	// Solution.Gap); Nodes its branch-and-bound node count.
	Gap   float64
	Nodes int
}

// Optimize solves the FAST fusion problem for the given regions and GM
// capacity (bytes).
func Optimize(regions []RegionCost, capacity int64, opts Options) Solution {
	producers := make([]int, len(regions))
	for i := range regions {
		producers[i] = regions[i].EdgeProducer
	}
	return OptimizePlanned(regions, UsableEdges(producers, opts.Window), capacity, opts)
}

// OptimizePlanned is Optimize with the window analysis precomputed (see
// UsableEdges). usable is read, never written, so one slice may be
// shared by concurrent solves over the same region structure.
func OptimizePlanned(regions []RegionCost, usable []bool, capacity int64, opts Options) Solution {
	// SolvePlanned hands over freshly allocated assignment slices, so the
	// solution adopts them instead of copying.
	return resolveOwned(regions, capacity, SolvePlanned(regions, usable, capacity, opts))
}

// SolvePlanned computes just the placement assignment — which regions pin
// weights and which keep their primary edge on chip — without the
// per-region time/peak roll-up. The assignment is the expensive,
// design-dependent part of the fusion stage (greedy selection, optional
// ILP); callers that memoize it across evaluations reconstruct full
// Solutions with ResolvePlanned.
func SolvePlanned(regions []RegionCost, usable []bool, capacity int64, opts Options) Assignment {
	n := len(regions)
	if opts.Disable || n == 0 || capacity <= 0 {
		return Assignment{Pin: make([]bool, n), Keep: make([]bool, n), Hold: make([]bool, n), Method: "disabled"}
	}
	normalizeResident(regions)
	pin, keep, hold := greedy(regions, usable, capacity)
	asn := Assignment{Pin: pin, Keep: keep, Hold: hold, Method: "greedy"}
	if !opts.GreedyOnly {
		deadline := opts.Deadline
		if deadline == 0 {
			deadline = 2 * time.Second
		}
		if ilpAsn, ok := solveILP(regions, usable, capacity, pin, keep, hold, deadline, opts.DenseILP); ok {
			asn = ilpAsn
		}
	}
	return asn
}

// ResolvePlanned reconstructs the full Solution for a known assignment
// (as returned by SolvePlanned, possibly from a cache): per-region
// post-fusion times, total, and peak GM usage, with the same defensive
// capacity repair as OptimizePlanned. The assignment slices are copied,
// never retained, so a memoized Assignment can be shared read-only
// across concurrent callers. ResolvePlanned(r, c, SolvePlanned(r, u,
// c, o)) ≡ OptimizePlanned(r, u, c, o).
func ResolvePlanned(regions []RegionCost, capacity int64, asn Assignment) Solution {
	cp := asn
	cp.Pin = append([]bool(nil), asn.Pin...)
	cp.Keep = append([]bool(nil), asn.Keep...)
	cp.Hold = append([]bool(nil), asn.Hold...)
	return resolveOwned(regions, capacity, cp)
}

// resolveOwned is ResolvePlanned taking ownership of the assignment
// slices.
func resolveOwned(regions []RegionCost, capacity int64, asn Assignment) Solution {
	sol := Solution{
		PinWeight:  asn.Pin,
		EdgeOnChip: asn.Keep,
		KVOnChip:   asn.Hold,
		Times:      make([]float64, len(regions)),
		Method:     asn.Method,
		Gap:        asn.Gap,
		Nodes:      asn.Nodes,
	}
	if sol.KVOnChip == nil {
		sol.KVOnChip = make([]bool, len(regions))
	}
	if asn.Method == "disabled" {
		for i, r := range regions {
			sol.Times[i] = r.TMax
			sol.Total += r.TMax
		}
		return sol
	}
	normalizeResident(regions)
	finalize(&sol, regions, capacity)
	return sol
}

// normalizeResident applies the EdgeResidentBytes-defaults-to-EdgeBytes
// convention in place (idempotent).
func normalizeResident(regions []RegionCost) {
	for i := range regions {
		if regions[i].EdgeResidentBytes == 0 {
			regions[i].EdgeResidentBytes = regions[i].EdgeBytes
		}
	}
}

// finalizeScratch pools finalize's non-escaping buffers (saved times and
// the residency sweep), which would otherwise be the last per-trial
// allocations of the fusion solve.
type finalizeScratch struct {
	saved []float64
	delta []int64
}

var finalizePool = sync.Pool{New: func() any { return new(finalizeScratch) }}

// finalize computes per-region times and peak GM usage for an assignment,
// repairing any capacity violation by dropping the lowest-density choices
// (defensive; greedy and ILP both respect capacity already).
func finalize(sol *Solution, regions []RegionCost, capacity int64) {
	fs := finalizePool.Get().(*finalizeScratch)
	defer finalizePool.Put(fs)
	delta := resetI64(&fs.delta, len(regions)+1)
	for repair := 0; ; repair++ {
		peak := peakUsageBuf(sol, regions, delta)
		if peak <= capacity || repair > 2*len(regions) {
			sol.GMUsedPeak = peak
			break
		}
		dropLowestDensity(sol, regions)
	}
	saved := resetF64(&fs.saved, len(regions))
	accumSaved(saved, regions, sol.PinWeight, sol.EdgeOnChip, sol.KVOnChip)
	sol.Total = 0
	for i, r := range regions {
		sol.Times[i] = regionTime(r, saved[i])
		sol.Total += sol.Times[i]
	}
}

// peakUsage computes max over regions k of B_k + pinned weights + edge
// tensors resident across k (an edge with producer p and consumer c
// occupies GM for every region in [p, c]).
func peakUsage(sol *Solution, regions []RegionCost) int64 {
	return peakUsageBuf(sol, regions, make([]int64, len(regions)+1))
}

// peakUsageBuf is peakUsage with a caller-provided sweep buffer of length
// len(regions)+1 (contents ignored; overwritten).
func peakUsageBuf(sol *Solution, regions []RegionCost, delta []int64) int64 {
	n := len(regions)
	var pinned int64
	for i, r := range regions {
		if sol.PinWeight[i] {
			pinned += r.DWeight
		}
		// Held KV-cache slabs persist across the whole step, so like
		// pins they charge every region uniformly.
		if sol.KVOnChip != nil && sol.KVOnChip[i] {
			pinned += r.KVBytes
		}
	}
	// Sweep: delta array over residency intervals.
	for i := range delta {
		delta[i] = 0
	}
	for i, r := range regions {
		if sol.EdgeOnChip[i] && r.EdgeProducer >= 0 {
			b := r.EdgeResidentBytes
			if b == 0 {
				b = r.EdgeBytes
			}
			delta[r.EdgeProducer] += b
			delta[i+1] -= b
		}
	}
	var peak, resident int64
	for k := 0; k < n; k++ {
		resident += delta[k]
		use := pinned + resident + regions[k].BaseGM
		if use > peak {
			peak = use
		}
	}
	return peak
}

func dropLowestDensity(sol *Solution, regions []RegionCost) {
	worstI, worstKind := -1, 0
	worst := math.Inf(1)
	for i, r := range regions {
		if sol.PinWeight[i] && r.DWeight > 0 {
			if d := r.TWeight / float64(r.DWeight); d < worst {
				worst, worstI, worstKind = d, i, 0
			}
		}
		if sol.EdgeOnChip[i] && r.EdgeResidentBytes > 0 {
			if d := (r.TEdgeRead + r.TEdgeWrite) / float64(r.EdgeResidentBytes); d < worst {
				worst, worstI, worstKind = d, i, 1
			}
		}
		if sol.KVOnChip != nil && sol.KVOnChip[i] && r.KVBytes > 0 {
			if d := r.TKVRead / float64(r.KVBytes); d < worst {
				worst, worstI, worstKind = d, i, 2
			}
		}
	}
	if worstI < 0 {
		return
	}
	switch worstKind {
	case 0:
		sol.PinWeight[worstI] = false
	case 1:
		sol.EdgeOnChip[worstI] = false
	default:
		sol.KVOnChip[worstI] = false
	}
}
