package fusion

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// memBoundRegion builds a memory-bound region: TMax far above TMin with
// savings split across weight pinning and the input edge.
func memBoundRegion(producer int, scale float64) RegionCost {
	return RegionCost{
		TMin: 1 * scale, TMax: 4 * scale,
		TWeight: 1 * scale, DWeight: 2 << 20, PinnableWeights: true,
		EdgeProducer: producer, EdgeBytes: 1 << 20,
		TEdgeRead: 1 * scale, TEdgeWrite: 1 * scale,
	}
}

func chain(n int) []RegionCost {
	rs := make([]RegionCost, n)
	for i := range rs {
		rs[i] = memBoundRegion(i-1, 1)
	}
	rs[0].EdgeProducer = -1
	rs[0].EdgeBytes = 0
	rs[0].TEdgeRead = 0
	return rs
}

func TestDisabled(t *testing.T) {
	rs := chain(4)
	sol := Optimize(rs, 1<<30, Options{Disable: true})
	if sol.Method != "disabled" {
		t.Errorf("method = %s", sol.Method)
	}
	if sol.Total != 16 {
		t.Errorf("disabled total = %f, want ΣTMax = 16", sol.Total)
	}
}

func TestAmpleCapacityReachesFloor(t *testing.T) {
	rs := chain(4)
	sol := Optimize(rs, 1<<40, Options{})
	for i := range rs {
		if !sol.PinWeight[i] {
			t.Errorf("region %d weights should be pinned", i)
		}
	}
	// Interior regions save weight+read+write = 3 → reach TMin = 1.
	if sol.Times[1] != 1 || sol.Times[2] != 1 {
		t.Errorf("interior times = %v, want TMin", sol.Times)
	}
	// Region 0 has no input edge: saves weight + write of its output
	// (edge of region 1) = 2 → time 2.
	if sol.Times[0] != 2 {
		t.Errorf("region 0 time = %f, want 2", sol.Times[0])
	}
	if sol.Total >= 16 {
		t.Error("fusion must improve on the unfused total")
	}
}

func TestZeroCapacityChangesNothing(t *testing.T) {
	rs := chain(4)
	sol := Optimize(rs, 0, Options{})
	if sol.Total != 16 {
		t.Errorf("total = %f, want 16", sol.Total)
	}
}

func TestCapacityRespected(t *testing.T) {
	rs := chain(6)
	capacity := int64(5 << 20)
	for _, o := range []Options{{GreedyOnly: true}, {}} {
		sol := Optimize(rs, capacity, o)
		if sol.GMUsedPeak > capacity {
			t.Errorf("%s: GM peak %d exceeds capacity %d", sol.Method, sol.GMUsedPeak, capacity)
		}
		if sol.Total >= 24 {
			t.Errorf("%s: no improvement with available capacity", sol.Method)
		}
	}
}

func TestComputeBoundRegionsUntouched(t *testing.T) {
	// §5.5: no benefit fusing compute-bound ops; greedy must not place
	// anything for TMax == TMin regions.
	rs := []RegionCost{
		{TMin: 5, TMax: 5, TWeight: 1, DWeight: 1 << 20, PinnableWeights: true,
			EdgeProducer: -1},
		{TMin: 5, TMax: 5, TWeight: 1, DWeight: 1 << 20, PinnableWeights: true,
			EdgeProducer: 0, EdgeBytes: 1 << 20, TEdgeRead: 1, TEdgeWrite: 1},
	}
	sol := Optimize(rs, 1<<30, Options{GreedyOnly: true})
	if sol.Total != 10 {
		t.Errorf("total = %f, want 10", sol.Total)
	}
	if sol.PinWeight[0] || sol.PinWeight[1] || sol.EdgeOnChip[1] {
		t.Errorf("greedy placed tensors with zero benefit: %+v", sol)
	}
}

func TestWindowLimitsEdges(t *testing.T) {
	// A producer 5 regions back is outside the default window (4) but
	// inside a window of 8.
	rs := chain(7)
	rs[6].EdgeProducer = 1
	far := Optimize(rs, 1<<40, Options{Window: 1})
	if far.EdgeOnChip[6] {
		t.Error("window 1 must reject a distance-5 edge")
	}
	wide := Optimize(rs, 1<<40, Options{Window: 8})
	if !wide.EdgeOnChip[6] {
		t.Error("window 8 must admit a distance-5 edge")
	}
}

func TestWindowOneMatchesPaperAdjacency(t *testing.T) {
	// Window=1 reproduces the strict Fig. 8 constraint: only immediate
	// successors keep activations.
	rs := chain(3)
	rs[2].EdgeProducer = 0 // skip connection at distance 2
	sol := Optimize(rs, 1<<40, Options{Window: 1})
	if sol.EdgeOnChip[2] {
		t.Error("distance-2 edge must be rejected at window 1")
	}
	if !sol.EdgeOnChip[1] {
		t.Error("adjacent edge must be kept")
	}
}

func TestResidencyCharged(t *testing.T) {
	// An edge spanning regions [0..3] must be charged against capacity in
	// every intermediate region: with capacity just below tensor+pins it
	// cannot coexist with pins in between.
	rs := chain(4)
	rs[3].EdgeProducer = 0
	rs[3].EdgeBytes = 10 << 20
	rs[3].TEdgeRead = 3 // very valuable
	capacity := int64(11 << 20)
	sol := Optimize(rs, capacity, Options{})
	if sol.GMUsedPeak > capacity {
		t.Fatalf("peak %d exceeds capacity", sol.GMUsedPeak)
	}
	if sol.EdgeOnChip[3] {
		// Taking the big edge leaves ≤1MiB: at most zero 2MiB pins.
		for i, p := range sol.PinWeight {
			if p {
				t.Errorf("region %d pinned alongside a capacity-filling edge", i)
			}
		}
	}
}

func TestUnpinnableWeights(t *testing.T) {
	rs := chain(2)
	rs[1].PinnableWeights = false
	sol := Optimize(rs, 1<<40, Options{})
	if sol.PinWeight[1] {
		t.Error("unpinnable region must not pin weights")
	}
}

func TestILPMatchesGreedyOrBetter(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		n := 3 + r.Intn(6)
		rs := make([]RegionCost, n)
		for i := range rs {
			tmin := 1 + r.Float64()
			rs[i] = RegionCost{
				TMin: tmin, TMax: tmin + r.Float64()*3,
				TWeight: r.Float64() * 2, DWeight: int64(1+r.Intn(8)) << 20,
				PinnableWeights: r.Intn(4) != 0,
				EdgeProducer:    i - 1 - r.Intn(2),
				EdgeBytes:       int64(1+r.Intn(4)) << 20,
				TEdgeRead:       r.Float64() * 2,
				TEdgeWrite:      r.Float64(),
			}
			if rs[i].EdgeProducer < 0 {
				rs[i].EdgeProducer = -1
			}
		}
		capacity := int64(4+r.Intn(20)) << 20
		g := Optimize(rs, capacity, Options{GreedyOnly: true})
		x := Optimize(rs, capacity, Options{Deadline: 3 * time.Second})
		if x.Total > g.Total+1e-9 {
			t.Fatalf("trial %d: ILP total %.4f worse than greedy %.4f (method %s)",
				trial, x.Total, g.Total, x.Method)
		}
		if x.GMUsedPeak > capacity {
			t.Fatalf("trial %d: ILP exceeded capacity", trial)
		}
	}
}

func TestILPBeatsGreedyOnSaturationTrap(t *testing.T) {
	// One item with great density but a saturating region (capped value)
	// vs two cheaper items that fill capacity better.
	rs := []RegionCost{
		{TMin: 1, TMax: 2, TWeight: 5, DWeight: 4 << 20, EdgeProducer: -1, PinnableWeights: true},
		{TMin: 1, TMax: 3, TWeight: 1.8, DWeight: 3 << 20, EdgeProducer: -1, PinnableWeights: true},
		{TMin: 1, TMax: 3, TWeight: 1.8, DWeight: 3 << 20, EdgeProducer: -1, PinnableWeights: true},
	}
	capacity := int64(6 << 20)
	g := Optimize(rs, capacity, Options{GreedyOnly: true})
	x := Optimize(rs, capacity, Options{Deadline: 3 * time.Second})
	if x.Total > g.Total {
		t.Errorf("ILP (%.2f) worse than greedy (%.2f)", x.Total, g.Total)
	}
	if math.Abs(x.Total-(2+1.2+1.2)) > 1e-6 {
		t.Errorf("ILP total = %.3f, want 4.4", x.Total)
	}
	if x.Method == "greedy" {
		t.Errorf("expected ILP method, got %s", x.Method)
	}
}

func TestTimesMonotoneInCapacity(t *testing.T) {
	rs := chain(8)
	prev := math.Inf(1)
	for capMiB := int64(0); capMiB <= 64; capMiB += 8 {
		sol := Optimize(rs, capMiB<<20, Options{Deadline: time.Second})
		if sol.Total > prev+1e-9 {
			t.Errorf("total time increased at capacity %d MiB: %.4f > %.4f", capMiB, sol.Total, prev)
		}
		prev = sol.Total
	}
}

func TestEmptyRegions(t *testing.T) {
	sol := Optimize(nil, 1<<20, Options{})
	if sol.Total != 0 || len(sol.Times) != 0 {
		t.Errorf("empty solve: %+v", sol)
	}
}
