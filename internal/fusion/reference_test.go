package fusion

// referenceGreedy is a frozen, verbatim copy of the pre-optimization
// greedy (full peakUsage sweep per placement test, no candidate
// pruning). It is the oracle for TestGreedyMatchesReference: the
// rewritten greedy in solve.go claims to be selection-order preserving,
// and this copy keeps that claim falsifiable. Do not "improve" it.

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func referenceGreedy(regions []RegionCost, usable []bool, capacity int64) (pin, keep []bool) {
	n := len(regions)
	pin = make([]bool, n)
	keep = make([]bool, n)
	saved := make([]float64, n)

	marginal := func(i int, t float64) float64 {
		r := regions[i]
		room := (r.TMax - r.TMin) - saved[i]
		if room <= 0 {
			return 0
		}
		return math.Min(t, room)
	}
	edgeValue := func(i int) float64 {
		v := marginal(i, regions[i].TEdgeRead)
		if p := regions[i].EdgeProducer; p >= 0 {
			v += marginal(p, regions[i].TEdgeWrite)
		}
		return v
	}

	type cand struct {
		isEdge bool
		idx    int
		bytes  int64
	}
	var cands []cand
	for i, r := range regions {
		if r.PinnableWeights && r.DWeight > 0 && r.TWeight > 0 {
			cands = append(cands, cand{false, i, r.DWeight})
		}
		if usable[i] && r.EdgeResidentBytes > 0 {
			cands = append(cands, cand{true, i, r.EdgeResidentBytes})
		}
	}

	var maxBase int64
	for _, r := range regions {
		if r.BaseGM > maxBase {
			maxBase = r.BaseGM
		}
	}
	budget := capacity - maxBase

	trialSol := Solution{PinWeight: pin, EdgeOnChip: keep}
	for len(cands) > 0 {
		best, bestVal := -1, 0.0
		for ci, c := range cands {
			var v float64
			if c.isEdge {
				v = edgeValue(c.idx)
			} else {
				v = marginal(c.idx, regions[c.idx].TWeight)
			}
			if c.bytes > 0 {
				v /= float64(c.bytes)
			}
			if v > bestVal {
				bestVal, best = v, ci
			}
		}
		if best < 0 || bestVal <= 0 {
			break
		}
		c := cands[best]
		cands = append(cands[:best], cands[best+1:]...)
		if c.isEdge {
			keep[c.idx] = true
		} else {
			pin[c.idx] = true
		}
		if peakUsage(&trialSol, regions) > budget+maxBase {
			if c.isEdge {
				keep[c.idx] = false
			} else {
				pin[c.idx] = false
			}
			continue
		}
		if c.isEdge {
			saved[c.idx] += marginal(c.idx, regions[c.idx].TEdgeRead)
			if p := regions[c.idx].EdgeProducer; p >= 0 {
				saved[p] += marginal(p, regions[c.idx].TEdgeWrite)
			}
		} else {
			saved[c.idx] += marginal(c.idx, regions[c.idx].TWeight)
		}
	}
	return pin, keep
}

// randomRegions synthesizes a plausible chain of fusion regions with
// randomized timings, weights, edges, and window distances.
func randomRegions(rng *rand.Rand, n int) ([]RegionCost, []bool) {
	regions := make([]RegionCost, n)
	for i := range regions {
		compute := rng.Float64() * 1e-4
		dram := compute * (0.5 + 2*rng.Float64())
		r := RegionCost{
			TMin:            compute,
			TMax:            math.Max(compute, dram),
			DWeight:         rng.Int63n(1 << 22),
			PinnableWeights: rng.Intn(4) != 0,
			EdgeProducer:    -1,
		}
		r.TWeight = float64(r.DWeight) * 1e-11
		if i > 0 && rng.Intn(3) != 0 {
			r.EdgeProducer = i - 1 - rng.Intn(min(i, 6))
			r.EdgeBytes = rng.Int63n(1 << 22)
			r.EdgeResidentBytes = r.EdgeBytes / int64(1+rng.Intn(8))
			r.TEdgeRead = float64(r.EdgeBytes) * 1e-11
			if rng.Intn(2) == 0 {
				r.TEdgeWrite = float64(r.EdgeBytes) * 1e-11
			}
		}
		if rng.Intn(8) == 0 {
			r.BaseGM = rng.Int63n(1 << 20)
		}
		regions[i] = r
	}
	producers := make([]int, n)
	for i := range regions {
		producers[i] = regions[i].EdgeProducer
	}
	return regions, UsableEdges(producers, 1+rng.Intn(6))
}

// TestGreedyMatchesReference fuzzes the optimized greedy against the
// frozen reference implementation: for every randomized instance both
// must pick the identical pin/keep assignment.
func TestGreedyMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(40)
		regions, usable := randomRegions(rng, n)
		// Normalize EdgeResidentBytes the way OptimizePlanned does before
		// calling greedy.
		for i := range regions {
			if regions[i].EdgeResidentBytes == 0 {
				regions[i].EdgeResidentBytes = regions[i].EdgeBytes
			}
		}
		capacity := rng.Int63n(1 << 24)
		wantPin, wantKeep := referenceGreedy(regions, usable, capacity)
		gotPin, gotKeep, _ := greedy(regions, usable, capacity)
		if !reflect.DeepEqual(wantPin, gotPin) || !reflect.DeepEqual(wantKeep, gotKeep) {
			t.Fatalf("trial %d (n=%d, cap=%d): greedy diverged from reference\nwant pin %v keep %v\ngot  pin %v keep %v",
				trial, n, capacity, wantPin, wantKeep, gotPin, gotKeep)
		}
	}
}

// TestGreedyMatchesReferenceTies stresses the lazy-heap's tie-breaking:
// instances built from a tiny set of quantized byte sizes and time
// constants produce many candidates with bit-identical value densities,
// where selection order is decided purely by enumeration order. The heap
// must still land the exact reference sequence.
func TestGreedyMatchesReferenceTies(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(30)
		regions := make([]RegionCost, n)
		for i := range regions {
			bytes := int64(1) << (10 + rng.Intn(3)) // three quantized sizes
			r := RegionCost{
				TMin:            1e-5,
				TMax:            1e-5 + float64(bytes)*1e-11*float64(1+rng.Intn(2)),
				DWeight:         bytes,
				PinnableWeights: rng.Intn(3) != 0,
				EdgeProducer:    -1,
			}
			r.TWeight = float64(bytes) * 1e-11 // identical density across regions
			if i > 0 && rng.Intn(2) == 0 {
				r.EdgeProducer = i - 1 - rng.Intn(min(i, 4))
				r.EdgeBytes = bytes
				r.EdgeResidentBytes = bytes
				r.TEdgeRead = float64(bytes) * 1e-11
				if rng.Intn(2) == 0 {
					r.TEdgeWrite = float64(bytes) * 1e-11
				}
			}
			regions[i] = r
		}
		producers := make([]int, n)
		for i := range regions {
			producers[i] = regions[i].EdgeProducer
		}
		usable := UsableEdges(producers, 1+rng.Intn(4))
		capacity := int64(1) << (11 + rng.Intn(5))
		wantPin, wantKeep := referenceGreedy(regions, usable, capacity)
		gotPin, gotKeep, _ := greedy(regions, usable, capacity)
		if !reflect.DeepEqual(wantPin, gotPin) || !reflect.DeepEqual(wantKeep, gotKeep) {
			t.Fatalf("tie trial %d (n=%d, cap=%d): greedy diverged from reference\nwant pin %v keep %v\ngot  pin %v keep %v",
				trial, n, capacity, wantPin, wantKeep, gotPin, gotKeep)
		}
	}
}

// BenchmarkGreedy times the search-trial inner loop on a synthetic
// 64-region chain (roughly EfficientNet-B7 shaped).
func BenchmarkGreedy(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	regions, usable := randomRegions(rng, 64)
	for i := range regions {
		if regions[i].EdgeResidentBytes == 0 {
			regions[i].EdgeResidentBytes = regions[i].EdgeBytes
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		greedy(regions, usable, 1<<23)
	}
}
