package fusion

// Differential coverage for the sparse exact solve behind the fusion
// pass: the sparse revised-simplex ILP against the frozen dense-tableau
// reference (Options.DenseILP) over randomized fusion instances, plus
// the Assignment provenance plumbing (Gap, Nodes).

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestSparseILPNeverWorseThanDense solves randomized fusion instances
// with both exact cores. The sparse solve must prove optimality and
// never land above the dense solve's total (the dense tableau's
// absolute tolerances can themselves lose exact optimality on
// fusion-scaled coefficients, so the comparison is one-sided), and on
// the instances where both report the identical assignment the whole
// Solution must match bit for bit.
func TestSparseILPNeverWorseThanDense(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	identical := 0
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(14)
		regions, usable := randomRegions(rng, n)
		capacity := rng.Int63n(1 << 24)
		sparse := OptimizePlanned(regions, usable, capacity, Options{Deadline: time.Minute})
		dense := OptimizePlanned(regions, usable, capacity, Options{Deadline: time.Minute, DenseILP: true})
		if sparse.Method == "disabled" || dense.Method == "disabled" {
			continue
		}
		if sparse.Method == "ilp-optimal" && dense.Method == "ilp-optimal" {
			if sparse.Total > dense.Total+1e-12*(1+math.Abs(dense.Total)) {
				t.Fatalf("trial %d: sparse total %.15g worse than dense %.15g", trial, sparse.Total, dense.Total)
			}
		}
		// An empty placement still occupies the scheduler's base working
		// tiles, so the peak floor is max BaseGM even above capacity.
		var basePeak int64
		for _, r := range regions {
			if r.BaseGM > basePeak {
				basePeak = r.BaseGM
			}
		}
		if limit := max(capacity, basePeak); sparse.GMUsedPeak > limit {
			t.Fatalf("trial %d: sparse peak %d exceeds %d", trial, sparse.GMUsedPeak, limit)
		}
		same := true
		for i := range regions {
			if sparse.PinWeight[i] != dense.PinWeight[i] || sparse.EdgeOnChip[i] != dense.EdgeOnChip[i] {
				same = false
				break
			}
		}
		if same {
			identical++
			if sparse.Total != dense.Total || sparse.GMUsedPeak != dense.GMUsedPeak {
				t.Fatalf("trial %d: identical assignment, different roll-up: %.15g vs %.15g",
					trial, sparse.Total, dense.Total)
			}
		}
	}
	if identical == 0 {
		t.Error("solvers never agreed on an assignment — differential has no teeth")
	}
}

// TestILPGapAndNodesPlumbed: an expired deadline must surface the
// greedy-seeded incumbent as "ilp-incumbent" with a reported gap, and
// node counts must flow through; a proven solve reports gap zero.
func TestILPGapAndNodesPlumbed(t *testing.T) {
	rs := chain(6)
	capacity := int64(5 << 20)

	proven := Optimize(rs, capacity, Options{Deadline: time.Minute})
	if proven.Method != "ilp-optimal" {
		t.Fatalf("method = %s, want ilp-optimal", proven.Method)
	}
	if proven.Gap != 0 {
		t.Errorf("proven solve gap = %g, want 0", proven.Gap)
	}
	if proven.Nodes < 1 {
		t.Errorf("proven solve nodes = %d, want ≥ 1", proven.Nodes)
	}

	rushed := Optimize(rs, capacity, Options{Deadline: time.Nanosecond})
	switch rushed.Method {
	case "ilp-incumbent":
		if !(rushed.Gap > 0) {
			t.Errorf("deadline-hit gap = %g, want > 0 (or +Inf)", rushed.Gap)
		}
		// The incumbent is greedy-seeded: never worse than pure greedy.
		greedy := Optimize(rs, capacity, Options{GreedyOnly: true})
		if rushed.Total > greedy.Total+1e-12 {
			t.Errorf("incumbent total %.15g worse than greedy %.15g", rushed.Total, greedy.Total)
		}
	case "ilp-optimal":
		// A nanosecond can, in principle, still be enough on this tiny
		// instance; then the gap must be zero.
		if rushed.Gap != 0 {
			t.Errorf("optimal-after-deadline gap = %g", rushed.Gap)
		}
	default:
		t.Fatalf("method = %s", rushed.Method)
	}

	g := Optimize(rs, capacity, Options{GreedyOnly: true})
	if g.Gap != 0 || g.Nodes != 0 {
		t.Errorf("greedy solution carries ILP provenance: gap=%g nodes=%d", g.Gap, g.Nodes)
	}
}

// TestResolvePlannedRoundTrips pins the SolvePlanned/ResolvePlanned
// contract with the Assignment type: resolving a solved assignment
// reproduces OptimizePlanned exactly, and the memoized slices are
// copied, not retained.
func TestResolvePlannedRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		regions, usable := randomRegions(rng, 1+rng.Intn(24))
		capacity := rng.Int63n(1 << 23)
		opts := Options{GreedyOnly: trial%2 == 0, Deadline: 10 * time.Second}
		want := OptimizePlanned(regions, usable, capacity, opts)
		asn := SolvePlanned(regions, usable, capacity, opts)
		got := ResolvePlanned(regions, capacity, asn)
		if got.Total != want.Total || got.GMUsedPeak != want.GMUsedPeak || got.Method != want.Method {
			t.Fatalf("trial %d: resolve mismatch: %+v vs %+v", trial, got, want)
		}
		for i := range regions {
			if got.PinWeight[i] != want.PinWeight[i] || got.EdgeOnChip[i] != want.EdgeOnChip[i] {
				t.Fatalf("trial %d: assignment mismatch at region %d", trial, i)
			}
		}
		// Mutating the resolved solution must not corrupt the assignment.
		if len(got.PinWeight) > 0 {
			got.PinWeight[0] = !got.PinWeight[0]
			if got.PinWeight[0] == asn.Pin[0] {
				t.Fatal("ResolvePlanned aliased the assignment slices")
			}
			got.PinWeight[0] = !got.PinWeight[0]
		}
	}
}
