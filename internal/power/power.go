// Package power is the analytical area and TDP model.
//
// The paper uses "analytical models correlated to production designs on
// an industry sub-10nm process"; those coefficients are proprietary, so
// this package uses public-ballpark per-component constants chosen so the
// modeled die-shrunk TPU-v3 lands at the paper's normalized operating
// point (TDP = 0.5× and area = 0.6× of the search constraint budget,
// Table 5) and FAST-Large/FAST-Small land near their published 0.4×/0.15×
// TDP and 0.7×/0.3× area. Only normalized ratios are ever reported, so
// any internally consistent linear component model preserves the paper's
// results.
//
// TDP follows the paper's power-virus definition: every component is
// charged at 100% utilization simultaneously.
package power

import (
	"math"

	"fast/internal/arch"
)

// Model carries the per-component coefficients. Use Default() unless an
// experiment explicitly perturbs a coefficient.
type Model struct {
	// MACPowerW is watts per multiply-accumulate unit at 1 GHz, 100%
	// toggle (bf16).
	MACPowerW float64
	// MACAreaMM2 is area per MAC in mm².
	MACAreaMM2 float64
	// VPULanePowerW / VPULaneAreaMM2 cost one vector lane (a full ALU
	// with transcendental support — several times a MAC).
	VPULanePowerW  float64
	VPULaneAreaMM2 float64
	// SRAMPowerWPerMiB / SRAMAreaMM2PerMiB cost on-chip SRAM (leakage +
	// continuous-access dynamic power under the power-virus assumption).
	SRAMPowerWPerMiB  float64
	SRAMAreaMM2PerMiB float64
	// SmallBufferPowerFactor scales SRAM power for the L1/L2 scratchpads,
	// which sustain full-width accesses every cycle (wide ports cost
	// power; this is why the paper notes enabling L2 raises TDP even when
	// it would cut dynamic energy).
	SmallBufferPowerFactor float64
	// HBMPowerWPerGBs / GDDR6PowerWPerGBs cost the DRAM interface per
	// GB/s of peak bandwidth (PHY + controller + device I/O at the
	// accelerator boundary).
	HBMPowerWPerGBs   float64
	GDDR6PowerWPerGBs float64
	// HBMAreaMM2PerGBs / GDDR6AreaMM2PerGBs cost PHY beachfront area.
	HBMAreaMM2PerGBs   float64
	GDDR6AreaMM2PerGBs float64
	// NoCPowerWPerPE / NoCAreaMM2PerPE cost the mesh interconnect.
	NoCPowerWPerPE  float64
	NoCAreaMM2PerPE float64
	// FixedPowerW / FixedAreaMM2 cover sequencers, host interface, PCIe,
	// clocking — per core.
	FixedPowerW  float64
	FixedAreaMM2 float64
	// AreaOverheadFactor accounts for floorplan white space and wiring.
	AreaOverheadFactor float64
}

// Default returns the calibrated sub-10nm model.
func Default() *Model {
	return &Model{
		MACPowerW:              1.5e-3,
		MACAreaMM2:             8e-4,
		VPULanePowerW:          6e-3,
		VPULaneAreaMM2:         4e-3,
		SRAMPowerWPerMiB:       0.30,
		SRAMAreaMM2PerMiB:      0.55,
		SmallBufferPowerFactor: 2.0,
		HBMPowerWPerGBs:        0.15,
		GDDR6PowerWPerGBs:      0.10,
		HBMAreaMM2PerGBs:       0.030,
		GDDR6AreaMM2PerGBs:     0.040,
		NoCPowerWPerPE:         0.10,
		NoCAreaMM2PerPE:        0.06,
		FixedPowerW:            15.0,
		FixedAreaMM2:           20.0,
		AreaOverheadFactor:     1.10,
	}
}

// Breakdown itemizes TDP and area per component (watts, mm²), aggregated
// over all cores.
type Breakdown struct {
	MACPower, VPUPower, SRAMPower, DRAMPower, NoCPower, FixedPower float64
	MACArea, VPUArea, SRAMArea, DRAMArea, NoCArea, FixedArea       float64
}

// TotalPower sums the power components (the design's TDP in watts).
func (b Breakdown) TotalPower() float64 {
	return b.MACPower + b.VPUPower + b.SRAMPower + b.DRAMPower + b.NoCPower + b.FixedPower
}

// TotalArea sums the area components in mm² (overhead already applied).
func (b Breakdown) TotalArea() float64 {
	return b.MACArea + b.VPUArea + b.SRAMArea + b.DRAMArea + b.NoCArea + b.FixedArea
}

// Evaluate computes the power-virus TDP and die area of a datapath.
func (m *Model) Evaluate(c *arch.Config) Breakdown {
	var b Breakdown
	clockScale := c.ClockGHz // dynamic power ∝ frequency (1 GHz reference)

	macs := float64(c.TotalMACs())
	b.MACPower = macs * m.MACPowerW * clockScale
	b.MACArea = macs * m.MACAreaMM2

	lanes := float64(c.TotalVPULanes())
	b.VPUPower = lanes * m.VPULanePowerW * clockScale
	b.VPUArea = lanes * m.VPULaneAreaMM2

	// SRAM: Global Memory at base cost; L1/L2 scratchpads at the wide-port
	// factor (full-width accesses every cycle under the power virus).
	globalMiB := float64(c.Cores*c.GlobalBytes()) / (1 << 20)
	bufMiB := float64(c.Cores*c.NumPEs()*(c.L1BytesPerPE()+c.L2BytesPerPE())) / (1 << 20)
	b.SRAMPower = (globalMiB + bufMiB*m.SmallBufferPowerFactor) * m.SRAMPowerWPerMiB * clockScale
	b.SRAMArea = (globalMiB + bufMiB) * m.SRAMAreaMM2PerMiB

	bw := c.PeakBandwidthGBs()
	switch c.Mem {
	case arch.HBM2:
		b.DRAMPower = bw * m.HBMPowerWPerGBs
		b.DRAMArea = bw * m.HBMAreaMM2PerGBs
	default:
		b.DRAMPower = bw * m.GDDR6PowerWPerGBs
		b.DRAMArea = bw * m.GDDR6AreaMM2PerGBs
	}

	pes := float64(c.Cores * c.NumPEs())
	// NoC power grows slightly superlinearly with mesh size (longer
	// average routes).
	b.NoCPower = pes * m.NoCPowerWPerPE * math.Sqrt(math.Max(1, pes/4)) * clockScale
	b.NoCArea = pes * m.NoCAreaMM2PerPE

	b.FixedPower = float64(c.Cores) * m.FixedPowerW
	b.FixedArea = float64(c.Cores) * m.FixedAreaMM2

	b.MACArea *= m.AreaOverheadFactor
	b.VPUArea *= m.AreaOverheadFactor
	b.SRAMArea *= m.AreaOverheadFactor
	b.NoCArea *= m.AreaOverheadFactor
	b.DRAMArea *= m.AreaOverheadFactor
	b.FixedArea *= m.AreaOverheadFactor
	return b
}

// TDP returns the design's thermal design power in watts.
func (m *Model) TDP(c *arch.Config) float64 { return m.Evaluate(c).TotalPower() }

// Area returns the design's die area in mm².
func (m *Model) Area(c *arch.Config) float64 { return m.Evaluate(c).TotalArea() }

// Budget is the search constraint envelope (Eq. 4). The paper gives FAST
// a budget "similar to the current-generation TPU-v3 but on a new process
// technology"; Table 5 then reports the die-shrunk TPU-v3 at 0.5× the TDP
// budget and 0.6× the area budget. DefaultBudget derives the absolute
// budget from the modeled baseline so those normalizations hold exactly.
type Budget struct {
	MaxTDPW    float64
	MaxAreaMM2 float64
}

// DefaultBudget returns the constraint envelope anchored to the die-shrunk
// TPU-v3 at (0.5 TDP, 0.6 area).
func DefaultBudget(m *Model) Budget {
	base := m.Evaluate(arch.DieShrunkTPUv3())
	return Budget{
		MaxTDPW:    base.TotalPower() / 0.5,
		MaxAreaMM2: base.TotalArea() / 0.6,
	}
}

// Within reports whether the design fits the budget.
func (b Budget) Within(m *Model, c *arch.Config) bool {
	eval := m.Evaluate(c)
	return eval.TotalPower() <= b.MaxTDPW && eval.TotalArea() <= b.MaxAreaMM2
}
