package power

import "fast/internal/arch"

// Energy model.
//
// TDP (power-virus peak) drives the paper's Perf/TDP metric, but related
// work it compares against (e.g. MAGNet's 1.75× Perf/W) reports energy
// per inference. This file adds the per-event dynamic-energy coefficients
// that, combined with a simulation's activity counts (MACs, vector ops,
// DRAM bytes) and its latency (for static power), give Joules per
// inference. Coefficients are public sub-10nm ballparks, consistent with
// the TDP model's component constants.

// EnergyCoeffs are per-event dynamic energies.
type EnergyCoeffs struct {
	// MACpJ is the energy of one bf16 multiply-accumulate including its
	// local register movement.
	MACpJ float64
	// VectorOpPJ is the energy of one VPU element op.
	VectorOpPJ float64
	// SRAMpJPerByte is the on-chip scratchpad/global-buffer access energy.
	SRAMpJPerByte float64
	// DRAMGDDR6pJPerByte / DRAMHBMpJPerByte are the off-chip access
	// energies per byte (device + PHY + controller); HBM's stacked,
	// short-reach links cost less per bit than GDDR6.
	DRAMGDDR6pJPerByte float64
	DRAMHBMpJPerByte   float64
	// StaticFraction is the share of the design's TDP drawn as
	// leakage/clocking regardless of activity.
	StaticFraction float64
}

// DefaultEnergy returns the calibrated coefficients.
func DefaultEnergy() EnergyCoeffs {
	return EnergyCoeffs{
		MACpJ:              0.5,
		VectorOpPJ:         1.5,
		SRAMpJPerByte:      1.0,
		DRAMGDDR6pJPerByte: 14,
		DRAMHBMpJPerByte:   6,
		StaticFraction:     0.20,
	}
}

// DRAMpJPerByte selects the coefficient for the design's memory
// technology.
func (e EnergyCoeffs) DRAMpJPerByte(c *arch.Config) float64 {
	if c.Mem == arch.HBM2 {
		return e.DRAMHBMpJPerByte
	}
	return e.DRAMGDDR6pJPerByte
}

// Activity is the activity summary of one simulated inference batch,
// produced by the simulator.
type Activity struct {
	// MACs is the multiply-accumulate count (FLOPs/2 of matrix work).
	MACs float64
	// VectorOps is the VPU element-op count.
	VectorOps float64
	// DRAMBytes is the post-fusion off-chip traffic.
	DRAMBytes float64
	// SRAMBytes approximates on-chip operand traffic.
	SRAMBytes float64
	// Seconds is the batch latency (for static energy).
	Seconds float64
}

// Energy evaluates Joules for the activity on a design whose TDP the
// model computed.
func (m *Model) Energy(c *arch.Config, e EnergyCoeffs, a Activity) float64 {
	dynamic := (a.MACs*e.MACpJ +
		a.VectorOps*e.VectorOpPJ +
		a.SRAMBytes*e.SRAMpJPerByte +
		a.DRAMBytes*e.DRAMpJPerByte(c)) * 1e-12
	static := e.StaticFraction * m.TDP(c) * a.Seconds
	return dynamic + static
}
