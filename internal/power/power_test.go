package power

import (
	"math/rand"
	"testing"

	"fast/internal/arch"
)

func TestCalibrationPoints(t *testing.T) {
	// Table 5 normalized points: TPU-v3 (0.5 TDP, 0.6 area), FAST-Large
	// (0.4, 0.7), FAST-Small (0.15, 0.3). The TPU point is exact by
	// construction of DefaultBudget; the FAST points must land within a
	// loose band (the paper reports one decimal place).
	m := Default()
	b := DefaultBudget(m)

	check := func(name string, c *arch.Config, wantTDP, wantArea, tol float64) {
		e := m.Evaluate(c)
		gotTDP := e.TotalPower() / b.MaxTDPW
		gotArea := e.TotalArea() / b.MaxAreaMM2
		if gotTDP < wantTDP-tol || gotTDP > wantTDP+tol {
			t.Errorf("%s normalized TDP = %.3f, want %.2f±%.2f", name, gotTDP, wantTDP, tol)
		}
		if gotArea < wantArea-tol || gotArea > wantArea+tol {
			t.Errorf("%s normalized area = %.3f, want %.2f±%.2f", name, gotArea, wantArea, tol)
		}
	}
	check("tpu-v3", arch.DieShrunkTPUv3(), 0.5, 0.6, 0.001)
	check("fast-large", arch.FASTLarge(), 0.4, 0.7, 0.12)
	check("fast-small", arch.FASTSmall(), 0.15, 0.3, 0.08)
}

func TestBreakdownSums(t *testing.T) {
	m := Default()
	e := m.Evaluate(arch.FASTLarge())
	sumP := e.MACPower + e.VPUPower + e.SRAMPower + e.DRAMPower + e.NoCPower + e.FixedPower
	if sumP != e.TotalPower() {
		t.Error("power breakdown does not sum")
	}
	sumA := e.MACArea + e.VPUArea + e.SRAMArea + e.DRAMArea + e.NoCArea + e.FixedArea
	if sumA != e.TotalArea() {
		t.Error("area breakdown does not sum")
	}
}

func TestMonotonicity(t *testing.T) {
	// Growing any resource must not decrease TDP or area.
	m := Default()
	base := arch.FASTLarge()
	grow := []func(*arch.Config){
		func(c *arch.Config) { c.PEsX *= 2 },
		func(c *arch.Config) { c.SAx *= 2 },
		func(c *arch.Config) { c.VectorMult *= 2 },
		func(c *arch.Config) { c.L1InputKiB *= 4 },
		func(c *arch.Config) { c.GlobalMiB *= 2 },
		func(c *arch.Config) {
			c.L2Config = arch.Shared
			c.L2InputMult, c.L2WeightMult, c.L2OutputMult = 8, 8, 8
		},
	}
	baseTDP, baseArea := m.TDP(base), m.Area(base)
	for i, g := range grow {
		c := base.Clone("grown")
		g(c)
		if m.TDP(c) < baseTDP {
			t.Errorf("grow[%d]: TDP decreased %.1f → %.1f", i, baseTDP, m.TDP(c))
		}
		if m.Area(c) < baseArea {
			t.Errorf("grow[%d]: area decreased", i)
		}
	}
}

func TestL2RaisesTDP(t *testing.T) {
	// §6.2.5: "although L2 buffers may reduce dynamic power ... they
	// increase overall TDP when assuming maximum buffer accesses per
	// cycle". Enabling L2 must strictly raise TDP.
	m := Default()
	base := arch.FASTLarge()
	withL2 := base.Clone("l2")
	withL2.L2Config = arch.Private
	withL2.L2InputMult, withL2.L2WeightMult, withL2.L2OutputMult = 2, 2, 2
	if m.TDP(withL2) <= m.TDP(base) {
		t.Error("enabling L2 must raise power-virus TDP")
	}
}

func TestHBMCostsMoreThanGDDR6(t *testing.T) {
	m := Default()
	g := arch.FASTLarge()
	h := g.Clone("hbm")
	h.Mem = arch.HBM2
	h.MemChannels = 2 // 450 GB/s, similar to 448 GB/s GDDR6
	eg, eh := m.Evaluate(g), m.Evaluate(h)
	if eh.DRAMPower <= eg.DRAMPower {
		t.Error("HBM at similar bandwidth should cost more interface power per the model")
	}
}

func TestBudgetWithin(t *testing.T) {
	m := Default()
	b := DefaultBudget(m)
	for _, name := range []string{"tpu-v3-dieshrink", "fast-large", "fast-small"} {
		if !b.Within(m, arch.ByName(name)) {
			t.Errorf("%s should fit the default budget", name)
		}
	}
	// A maxed-out design must exceed the budget.
	huge := arch.FASTLarge().Clone("huge")
	huge.PEsX, huge.PEsY, huge.SAx, huge.SAy = 256, 256, 256, 256
	if b.Within(m, huge) {
		t.Error("256×256 PEs of 256×256 arrays cannot fit any sane budget")
	}
}

func TestRandomDesignsPositive(t *testing.T) {
	// Property: every random design has positive TDP and area, and both
	// scale with core count.
	m := Default()
	s := arch.Space{}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		c := s.Random(r, arch.FASTLarge())
		e := m.Evaluate(c)
		if e.TotalPower() <= 0 || e.TotalArea() <= 0 {
			t.Fatalf("non-positive evaluation for %s", c)
		}
		dual := c.Clone("dual")
		dual.Cores = 2
		if m.TDP(dual) <= m.TDP(c) || m.Area(dual) <= m.Area(c) {
			t.Fatal("adding a core must increase TDP and area")
		}
	}
}
