package mapping

import (
	"fmt"
	"math"

	"fast/internal/arch"
	"fast/internal/tensor"
)

// Scheme identifies a mapping family (the "known-good mapping schemes"
// the paper's Vizier setup constrains the schedule space to, §5.3).
type Scheme int

const (
	// WeightStationary latches a K×N tile (K rows × N cols) and streams M.
	WeightStationary Scheme = iota
	// OutputStationary accumulates an M×N tile in place and streams K.
	OutputStationary
	// Conv1D latches K filter taps per column and streams outputs, one
	// independent output pixel per column (classic 1-D systolic
	// convolution); requires ConvLike problems.
	Conv1D
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case WeightStationary:
		return "weight-stationary"
	case OutputStationary:
		return "output-stationary"
	case Conv1D:
		return "conv-1d"
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// allSchemes is the fixed scheme universe; Best iterates it directly so
// the per-op hot path of Plan.Evaluate allocates nothing.
var allSchemes = [...]Scheme{WeightStationary, OutputStationary, Conv1D}

// AllSchemes lists every mapping scheme, in the order Best tries them.
func AllSchemes() []Scheme { return append([]Scheme(nil), allSchemes[:]...) }

// Options controls the mapper.
type Options struct {
	// DisablePadding forbids the tensor-padding pre-pass: dimensions that
	// do not divide the spatial tile evenly become schedule failures, the
	// raw-Timeloop behaviour the paper's padding pass fixes (§6.1).
	DisablePadding bool
	// Schemes restricts the mapping families searched (nil = all).
	Schemes []Scheme
}

// EffectiveSchemes returns the scheme sequence Best actually iterates:
// the full universe when Schemes is nil, Schemes otherwise (including a
// non-nil empty slice, which maps nothing). The result is a copy, safe
// to mutate; the hot paths use the non-copying effectiveSchemes.
func (o Options) EffectiveSchemes() []Scheme {
	return append([]Scheme(nil), o.effectiveSchemes()...)
}

// effectiveSchemes is EffectiveSchemes without the defensive copy; the
// result aliases package or caller state and must be treated read-only.
func (o Options) effectiveSchemes() []Scheme {
	if o.Schemes == nil {
		return allSchemes[:]
	}
	return o.Schemes
}

// SchemeKey fingerprints the effective scheme sequence for memoization:
// caches of mapper results keyed only by datapath parameters would let a
// restricted-scheme search (Options.Schemes) silently hit entries
// computed under the full universe, so any such cache must mix this key
// in. The encoding is order-sensitive (Best resolves equal-cycle ties to
// the earlier scheme) and distinguishes nil from a non-nil empty slice
// via a length prefix; nil deliberately shares the key of an explicit
// AllSchemes() list, which Best treats identically.
func (o Options) SchemeKey() uint64 {
	schemes := o.effectiveSchemes()
	k := uint64(len(schemes)) + 1 // +1 keeps "none" (0 schemes) distinct from a zero key
	for _, s := range schemes {
		k = k<<3 | (uint64(s) + 1)
	}
	return k
}

// Mapping is the mapper's result for one problem on one datapath.
type Mapping struct {
	Scheme Scheme
	// Cycles is the per-core compute cycle count (already divided across
	// the PE grid).
	Cycles float64
	// ArrayUtil is the spatial efficiency on the systolic array in (0,1]:
	// active MACs / total MACs during streaming.
	ArrayUtil float64
	// PEUtil is the PE-grid occupancy in (0,1].
	PEUtil float64
	// Failed marks an unschedulable problem; Reason explains why.
	Failed bool
	Reason string
}

// Utilization returns the end-to-end compute utilization (fraction of
// peak FLOPs) achieved during the op's compute phase.
func (m Mapping) Utilization() float64 { return m.ArrayUtil * m.PEUtil }

// paddedEff returns d / roundUp(d, tile): the utilization retained after
// the padding pre-pass pads dimension d up to a tile multiple.
func paddedEff(d, tile int64) float64 {
	if d <= 0 || tile <= 0 {
		return 0
	}
	return float64(d) / float64(tensor.RoundUp(d, tile))
}

// divisible reports whether d factorizes cleanly into the tile (or is
// smaller than it), the only shapes raw Timeloop accepts.
func divisible(d, tile int64) bool { return d <= tile || d%tile == 0 }

// minStreamChunk is the smallest temporal chunk (cycles) worth splitting
// across PEs; below this, sequencing overhead dominates.
const minStreamChunk = 64

// fillCycles approximates pipeline fill/drain per scheduled pass.
func fillCycles(c *arch.Config) float64 { return float64(c.SAx + c.SAy) }

// evalScheme costs one mapping scheme; returns a failed Mapping when the
// scheme cannot express the problem on this datapath.
func evalScheme(p Problem, c *arch.Config, s Scheme, o Options) Mapping {
	m := Mapping{Scheme: s}
	fail := func(format string, args ...any) Mapping {
		m.Failed = true
		m.Reason = fmt.Sprintf(format, args...)
		return m
	}

	// Tile geometry per scheme: rows/cols spatial dims, streamed dim.
	var rowDim, colDim, streamDim int64
	switch s {
	case WeightStationary:
		rowDim, colDim, streamDim = p.K, p.N, p.M
	case OutputStationary:
		rowDim, colDim, streamDim = p.M, p.N, p.K
	case Conv1D:
		if !p.ConvLike {
			return fail("conv-1d requires a convolution-like problem")
		}
		// K taps per column; columns hold independent output pixels; the
		// N output channels are temporal.
		rowDim, colDim, streamDim = p.K, p.M, p.M
	default:
		return fail("unknown scheme")
	}

	if o.DisablePadding && (!divisible(rowDim, c.SAy) || !divisible(colDim, c.SAx)) {
		return fail("dims %dx%d do not factorize into %dx%d array without padding",
			rowDim, colDim, c.SAy, c.SAx)
	}

	// Buffer feasibility: one latched tile (double-buffered) must fit the
	// weight scratchpad; streaming staging must fit input/output
	// scratchpads. Under a Shared L1 the PEs pool their banks.
	l1Scale := int64(1)
	if c.L1Config == arch.Shared {
		l1Scale = c.NumPEs()
	}
	tileBytes := c.SAx * c.SAy * p.Bytes * 2 // double buffer
	if s == Conv1D {
		tileBytes = c.SAy * c.SAx * p.Bytes // one tap set per column group
	}
	wBuf := (c.L1WeightKiB << 10) * l1Scale
	if s == OutputStationary {
		// Accumulators live in the output scratchpad instead.
		if (c.L1OutputKiB<<10)*l1Scale < c.SAx*c.SAy*4 { // fp32 accumulate
			return fail("output buffer %d KiB cannot hold %dx%d accumulators",
				c.L1OutputKiB*l1Scale, c.SAy, c.SAx)
		}
	} else if wBuf < tileBytes {
		return fail("weight buffer %d KiB cannot hold a %dx%d double-buffered tile",
			c.L1WeightKiB*l1Scale, c.SAy, c.SAx)
	}
	if (c.L1InputKiB<<10)*l1Scale < c.SAy*p.Bytes*2*8 {
		return fail("input buffer too small to stage %d-row operands", c.SAy)
	}
	if (c.L1OutputKiB<<10)*l1Scale < c.SAx*p.Bytes*2*8 {
		return fail("output buffer too small to stage %d-col results", c.SAx)
	}

	// Spatial efficiency from the padding pre-pass.
	rowEff := paddedEff(rowDim, min64(rowDim, c.SAy))
	colEff := paddedEff(colDim, min64(colDim, c.SAx))
	rowEff *= float64(min64(rowDim, c.SAy)) / float64(c.SAy)
	colEff *= float64(min64(colDim, c.SAx)) / float64(c.SAx)
	// Combined: fraction of array MACs doing real work while streaming.
	arrayUtil := rowEff * colEff
	if arrayUtil <= 0 {
		return fail("degenerate problem")
	}

	// Work decomposition: units = independent latched tiles; each unit
	// streams streamDim elements (one per cycle).
	tilesRow := tensor.CeilDiv(rowDim, c.SAy)
	tilesCol := tensor.CeilDiv(colDim, c.SAx)
	units := p.Indep * tilesRow * tilesCol
	if s == Conv1D {
		// SAx columns emit SAx output pixels per cycle, so one unit (one
		// K-tile of one instance and output channel) streams all M
		// outputs in ceil(M/SAx) cycles; output channels multiply the
		// unit count.
		units = p.Indep * p.N * tilesRow
		streamDim = tensor.CeilDiv(p.M, c.SAx)
	}

	// Latch floor: with double buffering a unit cannot finish faster than
	// the tile reload (SAy cycles).
	unitCycles := math.Max(float64(streamDim), float64(c.SAy))
	latchPenalty := unitCycles / float64(streamDim)

	// PE-grid parallelism: units are independent; long streams may also
	// be split at minStreamChunk granularity.
	splits := math.Max(1, math.Floor(unitCycles/minStreamChunk))
	maxPar := float64(units) * splits
	pes := float64(c.NumPEs())
	usable := math.Min(pes, maxPar)
	totalStream := float64(units) * unitCycles
	cycles := totalStream / usable
	if cycles < minStreamChunk {
		cycles = minStreamChunk
	}
	cycles += fillCycles(c)

	m.ArrayUtil = arrayUtil / latchPenalty
	m.PEUtil = usable / pes
	m.Cycles = cycles
	return m
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Best maps the problem with every permitted scheme and returns the one
// with the fewest cycles; the result is Failed only if every scheme
// fails.
func Best(p Problem, c *arch.Config, o Options) Mapping {
	schemes := o.effectiveSchemes()
	var best Mapping
	best.Failed = true
	best.Reason = "no schemes attempted"
	for _, s := range schemes {
		m := evalScheme(p, c, s, o)
		if m.Failed {
			if best.Failed && best.Reason == "no schemes attempted" {
				best.Reason = m.Reason
			}
			continue
		}
		if best.Failed || m.Cycles < best.Cycles {
			best = m
		}
	}
	return best
}

// TrafficFloor returns the minimum DRAM bytes for the problem given
// effective on-chip capacity capBytes, from the blocked-matmul I/O lower
// bound: ~2·M·N·K·b/√(S/b) words beyond the compulsory traffic when the
// working set exceeds capacity. The caller compares this floor with the
// fusion-region compulsory traffic and takes the max.
func TrafficFloor(p Problem, capBytes int64) int64 {
	if capBytes <= 0 {
		capBytes = 1 << 10
	}
	compulsory := p.ActivationBytes() + p.StationaryBytes() + p.OutputBytes()
	working := compulsory
	if working <= capBytes {
		return compulsory
	}
	words := float64(capBytes) / float64(p.Bytes)
	blocked := 2 * float64(p.Indep) * float64(p.M) * float64(p.N) * float64(p.K) *
		float64(p.Bytes) / math.Sqrt(words)
	if blocked < float64(compulsory) {
		return compulsory
	}
	return int64(blocked)
}
