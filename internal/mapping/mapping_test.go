package mapping

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fast/internal/arch"
	"fast/internal/hlo"
	"fast/internal/models"
	"fast/internal/tensor"
)

func bigConv() Problem {
	// A late-stage conv: M = B·OH·OW = 8·14·14, N = 512, K = 3·3·512.
	return Problem{M: 8 * 14 * 14, N: 512, K: 9 * 512, Indep: 1,
		WeightsStationary: true, ConvLike: true, Bytes: 2}
}

func depthwise(c int64) Problem {
	return Problem{M: 8 * 56 * 56, N: 1, K: 9, Indep: c,
		WeightsStationary: true, ConvLike: true, Bytes: 2}
}

func TestFromOp(t *testing.T) {
	g := hlo.NewGraph("t")
	in := g.Input("x", tensor.NewShape(tensor.BF16, 2, 28, 28, 64))
	conv := g.Conv2D("c", in, 128, 3, 3, 1, true)
	p, ok := FromOp(conv)
	if !ok {
		t.Fatal("conv is a matrix op")
	}
	if p.M != 2*28*28 || p.N != 128 || p.K != 9*64 || p.Indep != 1 || !p.ConvLike {
		t.Errorf("conv problem = %+v", p)
	}
	dw := g.DepthwiseConv2D("d", conv, 5, 5, 1, true)
	p, _ = FromOp(dw)
	if p.K != 25 || p.N != 1 || p.Indep != 128 {
		t.Errorf("dw problem = %+v", p)
	}
	if p.FLOPs() != hlo.FLOPs(dw) {
		t.Errorf("dw FLOPs mismatch: %d vs %d", p.FLOPs(), hlo.FLOPs(dw))
	}
	act := g.Activation("a", dw, 1)
	if _, ok := FromOp(act); ok {
		t.Error("activation is not a matrix op")
	}
}

func TestFromOpFLOPsMatchHLO(t *testing.T) {
	// Property: for every matrix op in every workload, the extracted
	// problem's FLOPs equal the HLO accounting (minus LSTM gate math).
	for _, name := range []string{"efficientnet-b0", "resnet50", "bert-128"} {
		g := models.MustBuild(name, 4)
		for _, op := range g.Ops {
			p, ok := FromOp(op)
			if !ok {
				continue
			}
			want := hlo.FLOPs(op)
			if op.Kind == hlo.KLSTMCell {
				want -= int64(op.VecOpsPerElem) * op.Output.Elems()
			}
			if p.FLOPs() != want {
				t.Fatalf("%s/%s: problem FLOPs %d != op FLOPs %d", name, op.Name, p.FLOPs(), want)
			}
		}
	}
}

func TestDepthwiseUtilizationCliff(t *testing.T) {
	// §3.2: a 3×3 depthwise conv on a 128×128 array peaks at 9/128
	// utilization; on a 32×32 array it reaches 9/32.
	tpu := arch.TPUv3()
	m := Best(depthwise(64), tpu, Options{})
	if m.Failed {
		t.Fatalf("depthwise failed on TPU: %s", m.Reason)
	}
	if got, want := m.ArrayUtil, 9.0/128; math.Abs(got-want) > 0.01 {
		t.Errorf("depthwise array util on 128x128 = %.4f, want %.4f", got, want)
	}
	fl := arch.FASTLarge()
	m2 := Best(depthwise(64), fl, Options{})
	if got, want := m2.ArrayUtil, 9.0/32; math.Abs(got-want) > 0.03 {
		t.Errorf("depthwise array util on 32x32 = %.4f, want %.4f", got, want)
	}
	if m2.Utilization() <= m.Utilization() {
		t.Error("smaller arrays must improve depthwise utilization")
	}
}

func TestConvUtilizationHigh(t *testing.T) {
	// A large conv must map efficiently on the TPU (paper: ~65-75% for
	// big matmuls; our compute-phase util should exceed 0.7).
	m := Best(bigConv(), arch.TPUv3(), Options{})
	if m.Failed {
		t.Fatalf("conv failed: %s", m.Reason)
	}
	if m.Utilization() < 0.7 {
		t.Errorf("big conv utilization = %.3f, want > 0.7", m.Utilization())
	}
}

func TestAttentionUtilizationDropsAtHeadDim(t *testing.T) {
	// BERT attention: head dim 64 on a 128-wide array wastes half the
	// array (§4.3); a 64-wide array fixes it.
	attn := Problem{M: 1024, N: 1024, K: 64, Indep: 12, Bytes: 2}
	tpu := Best(attn, arch.TPUv3(), Options{})
	small := arch.FASTSmall()
	fs := Best(attn, small, Options{})
	if tpu.Failed || fs.Failed {
		t.Fatalf("attention failed: %v %v", tpu.Reason, fs.Reason)
	}
	if tpu.ArrayUtil > 0.55 {
		t.Errorf("attention on 128x128 array util = %.3f, want <= ~0.5", tpu.ArrayUtil)
	}
	if fs.ArrayUtil < tpu.ArrayUtil {
		t.Error("smaller array must not hurt attention utilization")
	}
}

func TestSchemeSelection(t *testing.T) {
	// Depthwise must choose conv-1d; big convs weight-stationary or
	// output-stationary.
	m := Best(depthwise(64), arch.TPUv3(), Options{})
	if m.Scheme != Conv1D {
		t.Errorf("depthwise scheme = %s, want conv-1d", m.Scheme)
	}
	m2 := Best(Problem{M: 4096, N: 4096, K: 4096, WeightsStationary: true, Indep: 1, Bytes: 2},
		arch.TPUv3(), Options{})
	if m2.Scheme == Conv1D {
		t.Error("dense matmul must not choose conv-1d")
	}
}

func TestConv1DRequiresConvLike(t *testing.T) {
	p := Problem{M: 128, N: 128, K: 64, Indep: 1, Bytes: 2}
	m := evalScheme(p, arch.TPUv3(), Conv1D, Options{})
	if !m.Failed {
		t.Error("conv-1d must fail for non-conv problems")
	}
}

func TestScheduleFailureOnTinyBuffers(t *testing.T) {
	// A 256×256 array tile (128 KiB double-buffered 256 KiB) cannot fit
	// 1 KiB private L1 weight buffers → schedule failure (Eq. 5).
	c := arch.FASTLarge().Clone("tiny-l1")
	c.SAx, c.SAy = 256, 256
	c.PEsX, c.PEsY = 1, 1
	c.L1Config = arch.Private
	c.L1InputKiB, c.L1WeightKiB, c.L1OutputKiB = 1, 1, 1
	m := Best(bigConv(), c, Options{})
	if !m.Failed {
		t.Errorf("expected schedule failure, got %+v", m)
	}
	if m.Reason == "" {
		t.Error("failure must carry a reason")
	}
}

func TestSharedL1PoolsCapacity(t *testing.T) {
	// The same tiny per-PE buffers schedule when shared across 64 PEs.
	c := arch.FASTLarge().Clone("shared-l1")
	c.SAx, c.SAy = 128, 128
	c.L1InputKiB, c.L1WeightKiB, c.L1OutputKiB = 2, 2, 2
	c.L1Config = arch.Shared
	if m := Best(bigConv(), c, Options{}); m.Failed {
		t.Errorf("shared L1 should schedule: %s", m.Reason)
	}
	c.L1Config = arch.Private
	if m := Best(bigConv(), c, Options{}); !m.Failed {
		t.Error("private 2 KiB L1 must fail for a 128x128 tile")
	}
}

func TestDisablePadding(t *testing.T) {
	// A 113×113 output (M = 12769) with 300 output channels factorizes
	// into no 128-wide tile: raw Timeloop (no padding) fails on every
	// scheme; the padding pre-pass succeeds (§6.1).
	odd := Problem{M: 113 * 113, N: 300, K: 27, Indep: 1,
		WeightsStationary: true, ConvLike: true, Bytes: 2}
	with := Best(odd, arch.TPUv3(), Options{})
	if with.Failed {
		t.Fatalf("padded odd conv failed: %s", with.Reason)
	}
	without := Best(odd, arch.TPUv3(), Options{DisablePadding: true})
	if !without.Failed {
		t.Error("expected failure without the padding pass")
	}
	// Dimensions that already factorize must map identically either way.
	clean := Problem{M: 1 << 14, N: 256, K: 512, Indep: 1,
		WeightsStationary: true, Bytes: 2}
	a := Best(clean, arch.TPUv3(), Options{})
	b := Best(clean, arch.TPUv3(), Options{DisablePadding: true})
	if a.Failed || b.Failed || a.Cycles != b.Cycles {
		t.Errorf("clean dims should be unaffected by the padding option: %+v vs %+v", a, b)
	}
}

func TestUtilizationBounds(t *testing.T) {
	// Property: utilization ∈ (0,1], cycles > 0 for random problems and
	// designs.
	s := arch.Space{}
	r := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		c := s.Random(rr, arch.FASTLarge())
		p := Problem{
			M:     1 + rr.Int63n(1<<16),
			N:     1 + rr.Int63n(1<<12),
			K:     1 + rr.Int63n(1<<12),
			Indep: 1 + rr.Int63n(64),
			Bytes: 2, WeightsStationary: rr.Intn(2) == 0, ConvLike: rr.Intn(2) == 0,
		}
		m := Best(p, c, Options{})
		if m.Failed {
			return true // failures are legal; feasibility is design-dependent
		}
		u := m.Utilization()
		return u > 0 && u <= 1.0+1e-9 && m.Cycles > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: r}); err != nil {
		t.Error(err)
	}
}

func TestCyclesLowerBound(t *testing.T) {
	// Property: reported cycles × peak MACs ≥ real MAC work (no scheme
	// can exceed peak).
	r := rand.New(rand.NewSource(13))
	s := arch.Space{}
	for i := 0; i < 300; i++ {
		c := s.Random(r, arch.FASTLarge())
		p := Problem{
			M: 1 + r.Int63n(1<<15), N: 1 + r.Int63n(1<<11), K: 1 + r.Int63n(1<<11),
			Indep: 1 + r.Int63n(16), Bytes: 2,
			WeightsStationary: true, ConvLike: r.Intn(2) == 0,
		}
		m := Best(p, c, Options{})
		if m.Failed {
			continue
		}
		macSlots := m.Cycles * float64(c.NumPEs()*c.MACsPerPE())
		work := float64(p.Indep * p.M * p.N * p.K)
		if macSlots < work*(1-1e-9) {
			t.Fatalf("cycles %0.f provide %.3g MAC slots < %.3g work (%s on %s)",
				m.Cycles, macSlots, work, m.Scheme, c)
		}
	}
}

func TestTrafficFloor(t *testing.T) {
	p := bigConv()
	compulsory := p.ActivationBytes() + p.StationaryBytes() + p.OutputBytes()
	// Huge capacity → compulsory only.
	if got := TrafficFloor(p, 1<<30); got != compulsory {
		t.Errorf("traffic with huge cap = %d, want compulsory %d", got, compulsory)
	}
	// Tiny capacity → more than compulsory.
	small := TrafficFloor(p, 32<<10)
	if small <= compulsory {
		t.Errorf("traffic with 32KiB cap = %d, want > %d", small, compulsory)
	}
	// Monotone non-increasing in capacity.
	prev := int64(math.MaxInt64)
	for _, cap := range []int64{16 << 10, 256 << 10, 4 << 20, 64 << 20} {
		got := TrafficFloor(p, cap)
		if got > prev {
			t.Errorf("traffic floor not monotone at cap %d", cap)
		}
		prev = got
	}
	// Zero/negative capacity falls back safely.
	if TrafficFloor(p, 0) < compulsory {
		t.Error("zero capacity floor must still cover compulsory traffic")
	}
}

func TestSchemeString(t *testing.T) {
	if WeightStationary.String() != "weight-stationary" ||
		OutputStationary.String() != "output-stationary" ||
		Conv1D.String() != "conv-1d" {
		t.Error("scheme names wrong")
	}
}

func TestSchemesRestriction(t *testing.T) {
	m := Best(depthwise(64), arch.TPUv3(), Options{Schemes: []Scheme{WeightStationary}})
	if m.Failed {
		t.Fatalf("WS-only depthwise failed: %s", m.Reason)
	}
	if m.Scheme != WeightStationary {
		t.Error("restriction ignored")
	}
	// WS-only depthwise wastes the columns: far worse than conv-1d.
	free := Best(depthwise(64), arch.TPUv3(), Options{})
	if m.Utilization() > free.Utilization()/4 {
		t.Errorf("WS depthwise util %.4f should be ≪ conv-1d %.4f", m.Utilization(), free.Utilization())
	}
}
