package mapping

import "testing"

// TestSchemeKey pins the properties the sim stage cache relies on: nil
// and an explicit full-universe list share a key (Best treats them
// identically), every other restriction — including the non-nil empty
// slice and reorderings — gets its own key.
func TestSchemeKey(t *testing.T) {
	key := func(s []Scheme) uint64 { return Options{Schemes: s}.SchemeKey() }

	if key(nil) != key(AllSchemes()) {
		t.Error("nil and explicit AllSchemes() must share a SchemeKey")
	}
	distinct := [][]Scheme{
		nil,
		{},
		{WeightStationary},
		{OutputStationary},
		{Conv1D},
		{WeightStationary, OutputStationary},
		{OutputStationary, WeightStationary}, // order matters: ties resolve to the earlier scheme
		{WeightStationary, OutputStationary, Conv1D, Conv1D},
	}
	seen := map[uint64]int{}
	for i, s := range distinct {
		k := key(s)
		if prev, dup := seen[k]; dup {
			t.Errorf("scheme sets %d and %d collide on SchemeKey %x", prev, i, k)
		}
		seen[k] = i
	}
}

// TestEffectiveSchemes checks the nil/empty distinction survives.
func TestEffectiveSchemes(t *testing.T) {
	if got := (Options{}).EffectiveSchemes(); len(got) != len(allSchemes) {
		t.Errorf("nil Schemes: got %v, want full universe", got)
	}
	if got := (Options{Schemes: []Scheme{}}).EffectiveSchemes(); len(got) != 0 {
		t.Errorf("empty Schemes: got %v, want none", got)
	}
	restricted := []Scheme{OutputStationary}
	if got := (Options{Schemes: restricted}).EffectiveSchemes(); len(got) != 1 || got[0] != OutputStationary {
		t.Errorf("restricted Schemes: got %v", got)
	}
}
