// Package mapping is the Timeloop-equivalent schedule mapper: given a
// matrix operation and a datapath configuration it finds the best loop
// mapping (spatial unrolling onto the systolic arrays and PE grid,
// temporal streaming order) and reports utilization, compute cycles, and
// the DRAM-traffic floor implied by on-chip capacity.
//
// Differences from Timeloop, per DESIGN.md: instead of randomly sampling
// an unconstrained mapspace, the mapper enumerates the dominant mapping
// schemes (weight-stationary, output-stationary, 1-D convolution column
// streaming) with a tensor-padding pre-pass, which is deterministic and
// preserves the utilization cliffs the paper's analysis rests on (§3.1,
// §3.2). Designs whose buffers cannot hold a single tile fail to
// schedule, implementing the ScheduleFailures(h,w)=0 constraint (Eq. 5).
package mapping

import (
	"fast/internal/hlo"
)

// Problem is the canonical matrix problem extracted from an HLO op:
// Indep independent instances of C[M,N] = A[M,K] × B[K,N].
type Problem struct {
	M, N, K int64
	// Indep counts independent instances: depthwise channels, attention
	// batch×heads, LSTM steps (=1 for plain matmul/conv).
	Indep int64
	// WeightsStationary is true when operand B is a parameter tensor: one
	// latched tile serves every row of every instance and batch element.
	// Activation×activation products (self-attention) set this false, so
	// latch costs cannot be amortized across the batch (§4.3).
	WeightsStationary bool
	// ConvLike permits the 1-D convolution column-streaming scheme
	// (weights latched as taps; every array column computes an
	// independent output pixel), the mapping that rescues depthwise
	// convolutions (§3.2).
	ConvLike bool
	// Bytes is the element size.
	Bytes int64
}

// FLOPs returns the problem's multiply-accumulate work ×2.
func (p Problem) FLOPs() int64 { return 2 * p.Indep * p.M * p.N * p.K }

// FromOp converts a matrix HLO op into a Problem; ok is false for
// non-matrix ops.
func FromOp(op *hlo.Op) (p Problem, ok bool) {
	b := op.Output.Type.Size()
	switch op.Kind {
	case hlo.KConv2D:
		in := op.Inputs[0].Output
		out := op.Output
		return Problem{
			M:     out.Dim(0) * out.Dim(1) * out.Dim(2),
			N:     out.Dim(3),
			K:     op.Conv.KH * op.Conv.KW * in.Dim(3),
			Indep: 1, WeightsStationary: true, ConvLike: true, Bytes: b,
		}, true
	case hlo.KDepthwiseConv2D:
		out := op.Output
		// Each channel is an independent tiny contraction: K = KH·KW,
		// N = 1. FLOP count per §3.2 is 2·B·OH·OW·C·KH·KW.
		return Problem{
			M:     out.Dim(0) * out.Dim(1) * out.Dim(2),
			N:     1,
			K:     op.Conv.KH * op.Conv.KW,
			Indep: out.Dim(3), WeightsStationary: true, ConvLike: true, Bytes: b,
		}, true
	case hlo.KMatMul, hlo.KLSTMCell:
		e := op.Einsum
		return Problem{
			M: e.M, N: e.N, K: e.K, Indep: e.Batch,
			WeightsStationary: true, Bytes: b,
		}, true
	case hlo.KEinsum:
		e := op.Einsum
		return Problem{
			M: e.M, N: e.N, K: e.K, Indep: e.Batch,
			WeightsStationary: !e.ActAct, Bytes: b,
		}, true
	}
	return Problem{}, false
}

// ActivationBytes returns the A-operand footprint (per instance × Indep).
func (p Problem) ActivationBytes() int64 { return p.Indep * p.M * p.K * p.Bytes }

// StationaryBytes returns the B-operand footprint (each instance latches
// its own K×N tile set: depthwise channels have per-channel filters,
// attention heads have per-head score matrices).
func (p Problem) StationaryBytes() int64 { return p.Indep * p.K * p.N * p.Bytes }

// OutputBytes returns the C-operand footprint.
func (p Problem) OutputBytes() int64 { return p.Indep * p.M * p.N * p.Bytes }
