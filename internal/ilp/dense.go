package ilp

import (
	"math"
	"time"
)

// solveDense is the frozen PR-1 branch-and-bound over the dense
// two-phase tableau simplex (simplex.go): depth-first, tableau rebuilt
// from scratch at every node, upper bounds materialized as extra rows.
// It is retained verbatim as the reference oracle for the sparse
// revised-simplex solver — the differential and fuzz suites pin the new
// solver's objectives against it — and as the numerical fallback should
// the sparse path report an unrecoverable factorization failure. Do not
// "improve" it.
func solveDense(p Problem, o Options) (Result, error) {
	n := len(p.C)
	maxIter := o.MaxSimplexIters
	if maxIter == 0 {
		maxIter = 20000
	}

	// Materialize upper-bound rows (x ≤ u) once; branching appends
	// variable fixings as extra rows.
	baseA := make([][]float64, 0, len(p.A)+n)
	baseB := make([]float64, 0, len(p.B)+n)
	baseA = append(baseA, p.A...)
	baseB = append(baseB, p.B...)
	for i := 0; i < n; i++ {
		u := math.Inf(1)
		if p.U != nil {
			u = p.U[i]
		} else if p.Binary != nil && p.Binary[i] {
			u = 1
		}
		if !math.IsInf(u, 1) {
			row := make([]float64, n)
			row[i] = 1
			baseA = append(baseA, row)
			baseB = append(baseB, u)
		}
	}

	res := Result{Feasible: false, Objective: math.Inf(1)}
	if o.WarmStart != nil && integerFeasible(p, o.WarmStart) {
		res.Feasible = true
		res.Objective = dot(p.C, o.WarmStart)
		res.X = append([]float64(nil), o.WarmStart...)
	}

	expired := func() bool {
		//fast:allow nondetsource branch-and-bound deadline seam: time only truncates the search, never changes a returned incumbent's value
		return !o.Deadline.IsZero() && time.Now().After(o.Deadline)
	}

	// node fixes a subset of binary variables.
	type node struct {
		fixVar []int
		fixVal []float64
	}
	stack := []node{{}}
	provedOptimal := true

	for len(stack) > 0 {
		if expired() {
			provedOptimal = false
			break
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		res.Nodes++

		// Build this node's LP: base rows + fixings (x=v as two rows).
		a := baseA
		b := baseB
		if len(nd.fixVar) > 0 {
			a = append([][]float64(nil), baseA...)
			b = append([]float64(nil), baseB...)
			for k, v := range nd.fixVar {
				lo := make([]float64, n)
				hi := make([]float64, n)
				lo[v] = -1
				hi[v] = 1
				a = append(a, hi, lo)
				b = append(b, nd.fixVal[k], -nd.fixVal[k])
			}
		}
		lp := simplexDeadline(p.C, a, b, maxIter, o.Deadline)
		if !lp.feasible {
			continue
		}
		if lp.unbounded {
			// Unbounded relaxation with binaries still bounded: only
			// continuous directions can be unbounded, so the MILP is too.
			provedOptimal = false
			continue
		}
		if res.Feasible && lp.objective >= res.Objective-1e-9 {
			continue // bound: cannot beat incumbent
		}
		// Find the most fractional binary.
		branch := -1
		worst := 1e-6
		for i := 0; i < n; i++ {
			if p.Binary != nil && p.Binary[i] {
				f := math.Abs(lp.x[i] - math.Round(lp.x[i]))
				if f > worst {
					worst, branch = f, i
				}
			}
		}
		if branch < 0 {
			// Integer feasible (round off tiny fractional noise).
			x := append([]float64(nil), lp.x...)
			for i := range x {
				if p.Binary != nil && p.Binary[i] {
					x[i] = math.Round(x[i])
				}
			}
			obj := dot(p.C, x)
			if !res.Feasible || obj < res.Objective {
				res.Feasible = true
				res.Objective = obj
				res.X = x
			}
			continue
		}
		// Depth-first: explore the rounding nearer the LP value first
		// (pushed last).
		near := math.Round(lp.x[branch])
		far := 1 - near
		stack = append(stack,
			node{fixVar: append(append([]int(nil), nd.fixVar...), branch),
				fixVal: append(append([]float64(nil), nd.fixVal...), far)},
			node{fixVar: append(append([]int(nil), nd.fixVar...), branch),
				fixVal: append(append([]float64(nil), nd.fixVal...), near)},
		)
	}
	res.Optimal = res.Feasible && provedOptimal && len(stack) == 0
	if res.Optimal {
		res.BestBound = res.Objective
	} else {
		// The dense solver tracks no global bound; report the
		// uninformative one.
		res.BestBound = math.Inf(-1)
		if res.Feasible {
			res.Gap = math.Inf(1)
		}
	}
	return res, nil
}
