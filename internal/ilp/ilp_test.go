package ilp

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestSimplexBasicLP(t *testing.T) {
	// max x+y s.t. x+2y<=4, 3x+y<=6, x,y>=0 → min -(x+y); optimum at
	// (8/5, 6/5), objective -2.8.
	lp := simplex([]float64{-1, -1},
		[][]float64{{1, 2}, {3, 1}},
		[]float64{4, 6}, 1000)
	if !lp.feasible || lp.unbounded {
		t.Fatalf("lp: %+v", lp)
	}
	if math.Abs(lp.objective-(-2.8)) > 1e-6 {
		t.Errorf("objective = %f, want -2.8", lp.objective)
	}
}

func TestSimplexInfeasible(t *testing.T) {
	// x <= -1, x >= 0 is infeasible.
	lp := simplex([]float64{1}, [][]float64{{1}}, []float64{-1}, 1000)
	if lp.feasible {
		t.Error("expected infeasible")
	}
}

func TestSimplexUnbounded(t *testing.T) {
	// min -x with only x - y <= 1 (both free to grow) is unbounded.
	lp := simplex([]float64{-1, 0}, [][]float64{{1, -1}}, []float64{1}, 1000)
	if !lp.unbounded {
		t.Errorf("expected unbounded, got %+v", lp)
	}
}

func TestSimplexNegativeRHS(t *testing.T) {
	// x >= 2 expressed as -x <= -2; min x → 2.
	lp := simplex([]float64{1}, [][]float64{{-1}}, []float64{-2}, 1000)
	if !lp.feasible || math.Abs(lp.objective-2) > 1e-6 {
		t.Errorf("lp: %+v, want objective 2", lp)
	}
}

func TestSimplexDegenerate(t *testing.T) {
	// Degenerate vertex: several redundant constraints through origin.
	lp := simplex([]float64{-1, -1},
		[][]float64{{1, 0}, {1, 0}, {0, 1}, {1, 1}},
		[]float64{1, 1, 1, 1}, 1000)
	if !lp.feasible || math.Abs(lp.objective-(-1)) > 1e-6 {
		t.Errorf("objective = %f, want -1", lp.objective)
	}
}

func TestSolveKnapsack(t *testing.T) {
	// Classic 0/1 knapsack: values 60,100,120, weights 10,20,30, cap 50 →
	// best 220 (items 2,3). As min of negative value.
	p := Problem{
		C:      []float64{-60, -100, -120},
		A:      [][]float64{{10, 20, 30}},
		B:      []float64{50},
		Binary: []bool{true, true, true},
	}
	r, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible || !r.Optimal {
		t.Fatalf("result: %+v", r)
	}
	if math.Abs(r.Objective-(-220)) > 1e-6 {
		t.Errorf("objective = %f, want -220", r.Objective)
	}
	if r.X[0] != 0 || r.X[1] != 1 || r.X[2] != 1 {
		t.Errorf("x = %v", r.X)
	}
}

func TestSolveMixedIntegerWithContinuous(t *testing.T) {
	// min -3x1 - 2y s.t. x1 binary, 0<=y, x1 + y <= 1.5 → x1=1, y=0.5,
	// objective -4.
	p := Problem{
		C:      []float64{-3, -2},
		A:      [][]float64{{1, 1}},
		B:      []float64{1.5},
		U:      []float64{1, math.Inf(1)},
		Binary: []bool{true, false},
	}
	r, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Optimal || math.Abs(r.Objective-(-4)) > 1e-6 {
		t.Errorf("result: %+v", r)
	}
}

func TestSolveMatchesBruteForceRandom(t *testing.T) {
	// Property: on random small 0/1 problems, B&B matches brute force.
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 3 + r.Intn(5) // 3..7 binaries
		m := 1 + r.Intn(3)
		p := Problem{Binary: make([]bool, n)}
		for i := 0; i < n; i++ {
			p.C = append(p.C, math.Round(20*(r.Float64()-0.7)))
			p.Binary[i] = true
		}
		for j := 0; j < m; j++ {
			row := make([]float64, n)
			for i := range row {
				row[i] = math.Round(10 * r.Float64())
			}
			p.A = append(p.A, row)
			p.B = append(p.B, math.Round(5*float64(n)*r.Float64()))
		}
		got, err := Solve(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := BruteForce(p)
		if got.Feasible != want.Feasible {
			t.Fatalf("trial %d: feasible %v vs brute %v (p=%+v)", trial, got.Feasible, want.Feasible, p)
		}
		if got.Feasible && math.Abs(got.Objective-want.Objective) > 1e-6 {
			t.Fatalf("trial %d: objective %f vs brute %f (p=%+v)", trial, got.Objective, want.Objective, p)
		}
	}
}

func TestDeadlineReturnsIncumbent(t *testing.T) {
	// With an already-expired deadline and a warm start, Solve must
	// return the warm start as a non-optimal incumbent.
	p := Problem{
		C:      []float64{-60, -100, -120},
		A:      [][]float64{{10, 20, 30}},
		B:      []float64{50},
		Binary: []bool{true, true, true},
	}
	warm := []float64{1, 1, 0} // value 160, feasible
	r, err := Solve(p, Options{
		Deadline:  time.Now().Add(-time.Second),
		WarmStart: warm,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible || r.Optimal {
		t.Fatalf("expected non-optimal incumbent, got %+v", r)
	}
	if math.Abs(r.Objective-(-160)) > 1e-6 {
		t.Errorf("incumbent objective = %f, want -160", r.Objective)
	}
}

func TestWarmStartValidated(t *testing.T) {
	// An infeasible warm start must be ignored.
	p := Problem{
		C:      []float64{-1},
		A:      [][]float64{{1}},
		B:      []float64{0.5},
		Binary: []bool{true},
	}
	r, err := Solve(p, Options{WarmStart: []float64{1}}) // violates x<=0.5
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible || r.Objective != 0 {
		t.Errorf("expected x=0 optimum, got %+v", r)
	}
}

func TestValidateErrors(t *testing.T) {
	_, err := Solve(Problem{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}}, Options{})
	if err == nil {
		t.Error("expected dimension error")
	}
	_, err = Solve(Problem{C: []float64{1}, A: [][]float64{{1}}, B: []float64{1, 2}}, Options{})
	if err == nil {
		t.Error("expected rhs mismatch error")
	}
}

func TestGreedyKnapsack(t *testing.T) {
	chosen := GreedyKnapsack([]float64{60, 100, 120}, []float64{10, 20, 30}, 50)
	// Density order: 60/10=6, 100/20=5, 120/30=4 → picks 0,1 then 2
	// doesn't fit → {0,1}.
	if len(chosen) != 2 || chosen[0] != 0 || chosen[1] != 1 {
		t.Errorf("chosen = %v", chosen)
	}
	// Zero-value and zero-weight items.
	c2 := GreedyKnapsack([]float64{0, 5}, []float64{1, 0}, 0)
	if len(c2) != 1 || c2[0] != 1 {
		t.Errorf("free item must be taken: %v", c2)
	}
}

func TestSolveInfeasibleProblem(t *testing.T) {
	p := Problem{
		C:      []float64{1},
		A:      [][]float64{{1}, {-1}},
		B:      []float64{0.4, -0.6}, // 0.6 <= x <= 0.4: infeasible
		Binary: []bool{true},
	}
	r, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Feasible {
		t.Errorf("expected infeasible, got %+v", r)
	}
}

func TestNodesCounted(t *testing.T) {
	p := Problem{
		C:      []float64{-1, -1, -1},
		A:      [][]float64{{1, 1, 1}},
		B:      []float64{1.5},
		Binary: []bool{true, true, true},
	}
	r, _ := Solve(p, Options{})
	if r.Nodes < 1 {
		t.Error("node count missing")
	}
	if !r.Optimal || r.Objective != -1 {
		t.Errorf("result: %+v", r)
	}
}
