package ilp

import (
	"math"
	"sort"
	"time"
)

// Problem is min C·x subject to A·x ≤ B, 0 ≤ x ≤ U, and x[i] ∈ {0,1} for
// every i in Binary. Upper bounds default to 1 for binary variables and
// +inf for continuous ones when U is nil.
type Problem struct {
	C      []float64
	A      [][]float64
	B      []float64
	U      []float64
	Binary []bool
}

// Result reports the solve outcome.
type Result struct {
	X         []float64
	Objective float64
	// Feasible is false when no integer-feasible point was found.
	Feasible bool
	// Optimal is true when optimality was proven before the deadline.
	Optimal bool
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
}

// Options configures Solve.
type Options struct {
	// Deadline bounds the solve; zero means no limit. On expiry the best
	// incumbent is returned with Optimal=false (the SCIP-timeout contract
	// from §6.1).
	Deadline time.Time
	// MaxSimplexIters caps each LP solve (default 20000).
	MaxSimplexIters int
	// WarmStart optionally seeds the incumbent with a known integer-
	// feasible point.
	WarmStart []float64
}

// Solve runs branch-and-bound with LP-relaxation bounds.
func Solve(p Problem, o Options) (Result, error) {
	if err := validate(p.C, p.A, p.B); err != nil {
		return Result{}, err
	}
	n := len(p.C)
	maxIter := o.MaxSimplexIters
	if maxIter == 0 {
		maxIter = 20000
	}

	// Materialize upper-bound rows (x ≤ u) once; branching appends
	// variable fixings as extra rows.
	baseA := make([][]float64, 0, len(p.A)+n)
	baseB := make([]float64, 0, len(p.B)+n)
	baseA = append(baseA, p.A...)
	baseB = append(baseB, p.B...)
	for i := 0; i < n; i++ {
		u := math.Inf(1)
		if p.U != nil {
			u = p.U[i]
		} else if p.Binary != nil && p.Binary[i] {
			u = 1
		}
		if !math.IsInf(u, 1) {
			row := make([]float64, n)
			row[i] = 1
			baseA = append(baseA, row)
			baseB = append(baseB, u)
		}
	}

	res := Result{Feasible: false, Objective: math.Inf(1)}
	if o.WarmStart != nil && integerFeasible(p, o.WarmStart) {
		res.Feasible = true
		res.Objective = dot(p.C, o.WarmStart)
		res.X = append([]float64(nil), o.WarmStart...)
	}

	expired := func() bool {
		return !o.Deadline.IsZero() && time.Now().After(o.Deadline)
	}

	// node fixes a subset of binary variables.
	type node struct {
		fixVar []int
		fixVal []float64
	}
	stack := []node{{}}
	provedOptimal := true

	for len(stack) > 0 {
		if expired() {
			provedOptimal = false
			break
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		res.Nodes++

		// Build this node's LP: base rows + fixings (x=v as two rows).
		a := baseA
		b := baseB
		if len(nd.fixVar) > 0 {
			a = append([][]float64(nil), baseA...)
			b = append([]float64(nil), baseB...)
			for k, v := range nd.fixVar {
				lo := make([]float64, n)
				hi := make([]float64, n)
				lo[v] = -1
				hi[v] = 1
				a = append(a, hi, lo)
				b = append(b, nd.fixVal[k], -nd.fixVal[k])
			}
		}
		lp := simplexDeadline(p.C, a, b, maxIter, o.Deadline)
		if !lp.feasible {
			continue
		}
		if lp.unbounded {
			// Unbounded relaxation with binaries still bounded: only
			// continuous directions can be unbounded, so the MILP is too.
			provedOptimal = false
			continue
		}
		if res.Feasible && lp.objective >= res.Objective-1e-9 {
			continue // bound: cannot beat incumbent
		}
		// Find the most fractional binary.
		branch := -1
		worst := 1e-6
		for i := 0; i < n; i++ {
			if p.Binary != nil && p.Binary[i] {
				f := math.Abs(lp.x[i] - math.Round(lp.x[i]))
				if f > worst {
					worst, branch = f, i
				}
			}
		}
		if branch < 0 {
			// Integer feasible (round off tiny fractional noise).
			x := append([]float64(nil), lp.x...)
			for i := range x {
				if p.Binary != nil && p.Binary[i] {
					x[i] = math.Round(x[i])
				}
			}
			obj := dot(p.C, x)
			if !res.Feasible || obj < res.Objective {
				res.Feasible = true
				res.Objective = obj
				res.X = x
			}
			continue
		}
		// Depth-first: explore the rounding nearer the LP value first
		// (pushed last).
		near := math.Round(lp.x[branch])
		far := 1 - near
		stack = append(stack,
			node{fixVar: append(append([]int(nil), nd.fixVar...), branch),
				fixVal: append(append([]float64(nil), nd.fixVal...), far)},
			node{fixVar: append(append([]int(nil), nd.fixVar...), branch),
				fixVal: append(append([]float64(nil), nd.fixVal...), near)},
		)
	}
	res.Optimal = res.Feasible && provedOptimal && len(stack) == 0
	return res, nil
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// integerFeasible checks a candidate point against all constraints and
// integrality.
func integerFeasible(p Problem, x []float64) bool {
	if len(x) != len(p.C) {
		return false
	}
	for i, v := range x {
		if v < -feasEps {
			return false
		}
		if p.Binary != nil && p.Binary[i] && math.Abs(v-math.Round(v)) > feasEps {
			return false
		}
		if p.U != nil && v > p.U[i]+feasEps {
			return false
		}
	}
	for r, row := range p.A {
		if dot(row, x) > p.B[r]+feasEps*(1+math.Abs(p.B[r])) {
			return false
		}
	}
	return true
}

// BruteForce enumerates all binary assignments (continuous vars solved by
// LP for each) — for testing only; exponential.
func BruteForce(p Problem) Result {
	n := len(p.C)
	var binIdx []int
	for i := 0; i < n; i++ {
		if p.Binary != nil && p.Binary[i] {
			binIdx = append(binIdx, i)
		}
	}
	best := Result{Objective: math.Inf(1)}
	total := 1 << len(binIdx)
	for mask := 0; mask < total; mask++ {
		// Fix binaries, solve the continuous remainder by LP.
		a := append([][]float64(nil), p.A...)
		b := append([]float64(nil), p.B...)
		for k, v := range binIdx {
			val := float64((mask >> k) & 1)
			hi := make([]float64, n)
			lo := make([]float64, n)
			hi[v], lo[v] = 1, -1
			a = append(a, hi, lo)
			b = append(b, val, -val)
		}
		// Continuous upper bounds.
		for i := 0; i < n; i++ {
			if p.U != nil && !math.IsInf(p.U[i], 1) {
				row := make([]float64, n)
				row[i] = 1
				a = append(a, row)
				b = append(b, p.U[i])
			}
		}
		lp := simplex(p.C, a, b, 20000)
		if lp.feasible && !lp.unbounded && lp.objective < best.Objective {
			best = Result{X: lp.x, Objective: lp.objective, Feasible: true, Optimal: true}
		}
	}
	return best
}

// GreedyKnapsack solves max Σ v_i x_i s.t. Σ w_i x_i ≤ cap, x binary, by
// value-density with a final sweep; a helper used for warm starts.
// Returns the chosen index set.
func GreedyKnapsack(values, weights []float64, capacity float64) []int {
	type item struct {
		i       int
		density float64
	}
	items := make([]item, 0, len(values))
	for i := range values {
		if values[i] <= 0 {
			continue
		}
		w := weights[i]
		d := math.Inf(1)
		if w > 0 {
			d = values[i] / w
		}
		items = append(items, item{i, d})
	}
	sort.Slice(items, func(a, b int) bool { return items[a].density > items[b].density })
	var chosen []int
	var used float64
	for _, it := range items {
		if used+weights[it.i] <= capacity {
			used += weights[it.i]
			chosen = append(chosen, it.i)
		}
	}
	sort.Ints(chosen)
	return chosen
}
