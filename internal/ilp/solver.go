package ilp

import (
	"math"
	"sort"
	"sync"
	"time"
)

// Problem is min C·x subject to A·x ≤ B, 0 ≤ x ≤ U, and x[i] ∈ {0,1} for
// every i in Binary. Upper bounds default to 1 for binary variables and
// +inf for continuous ones when U is nil.
type Problem struct {
	C      []float64
	A      [][]float64
	B      []float64
	U      []float64
	Binary []bool
}

// Result reports the solve outcome.
type Result struct {
	X         []float64
	Objective float64
	// Feasible is false when no integer-feasible point was found.
	Feasible bool
	// Optimal is true when optimality was proven before the deadline.
	Optimal bool
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
	// BestBound is the proven lower bound on the optimal objective at
	// exit; equal to Objective when Optimal. The dense reference solver
	// tracks no global bound and reports -inf on early exit.
	BestBound float64
	// Gap is the relative optimality gap (Objective − BestBound) /
	// max(1, |Objective|): zero when optimality was proven, +inf when no
	// usable bound survives an early exit.
	Gap float64
}

// Options configures Solve.
type Options struct {
	// Deadline bounds the solve; zero means no limit. On expiry the best
	// incumbent is returned with Optimal=false and the optimality gap
	// filled in (the SCIP-timeout contract from §6.1).
	Deadline time.Time
	// MaxSimplexIters caps each LP solve (default 20000).
	MaxSimplexIters int
	// WarmStart optionally seeds the incumbent with a known integer-
	// feasible point (the fusion pass hands in its greedy solution, so
	// branch-and-bound starts with a bound instead of from scratch).
	WarmStart []float64
	// Dense routes the solve through the frozen dense-tableau reference
	// solver instead of the sparse revised-simplex core. Kept for
	// differential tests, benchmarks and as an escape hatch; the sparse
	// path also falls back to it on unrecoverable numerical failure.
	Dense bool
}

// Solve runs branch-and-bound with LP-relaxation bounds: best-first
// with depth-first plunging, dual-simplex warm starts from the parent
// basis, and pseudo-cost/most-fractional branching over the sparse
// revised-simplex core.
func Solve(p Problem, o Options) (Result, error) {
	if err := validate(p.C, p.A, p.B); err != nil {
		return Result{}, err
	}
	if o.Dense {
		return solveDense(p, o)
	}
	res, ok := solveSparse(p, o)
	if ok {
		return res, nil
	}
	// Unrecoverable numerical failure in the sparse path (singular
	// refactorization or a drifting pivot that a fresh LU cannot fix):
	// the dense tableau solver is slower but assumption-free. Any
	// incumbent the sparse search already found seeds the dense solve so
	// an improvement over the caller's warm start is never discarded.
	if res.Feasible {
		o.WarmStart = res.X
	}
	return solveDense(p, o)
}

// statePool recycles the revised-simplex working state (basis, LU
// factors, pricing buffers) across solves; the parallel full-ILP
// reporting paths run many instances concurrently and per-instance
// allocation of m×m factor storage would dominate.
var statePool = sync.Pool{New: func() any { return new(lpState) }}

// bbNode is one open branch-and-bound subproblem.
type bbNode struct {
	// bound is the parent's LP objective: a valid lower bound on every
	// integer point under this node.
	bound float64
	seq   int
	// fixVar/fixVal is the path of binary fixings from the root.
	fixVar []int32
	fixVal []int8
	// basis/atUp snapshot the parent's optimal basis for the dual warm
	// start; nil basis means start from the all-slack basis.
	basis []int32
	atUp  []uint64
	// branch bookkeeping for pseudo-cost updates.
	branchVar  int
	branchFrac float64
	branchUp   bool
	parentObj  float64
}

// nodeHeap is a best-first min-heap on (bound, depth desc, seq). The
// depth tie-break matters on flat bound landscapes (many fusion
// instances have near-identical LP bounds across subtrees): among
// equal bounds the deepest — most recently branched — node wins, so
// the search degrades to depth-first plunging instead of a
// breadth-first frontier explosion, while genuinely better bounds
// still jump the queue. seq keeps the order deterministic.
type nodeHeap []*bbNode

func (h nodeHeap) less(a, b int) bool {
	if h[a].bound != h[b].bound {
		return h[a].bound < h[b].bound
	}
	if da, db := len(h[a].fixVar), len(h[b].fixVar); da != db {
		return da > db
	}
	return h[a].seq > h[b].seq
}

func (h *nodeHeap) push(nd *bbNode) {
	*h = append(*h, nd)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			return
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (h *nodeHeap) pop() *bbNode {
	old := *h
	nd := old[0]
	last := len(old) - 1
	old[0] = old[last]
	old[last] = nil
	*h = old[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < last && h.less(l, best) {
			best = l
		}
		if r < last && h.less(r, best) {
			best = r
		}
		if best == i {
			return nd
		}
		(*h)[i], (*h)[best] = (*h)[best], (*h)[i]
		i = best
	}
}

// solveSparse is the sparse branch-and-bound; ok=false requests the
// dense fallback.
func solveSparse(p Problem, o Options) (Result, bool) {
	n := len(p.C)
	maxIter := o.MaxSimplexIters
	if maxIter == 0 {
		maxIter = 20000
	}
	ls := statePool.Get().(*lpState)
	defer statePool.Put(ls)
	ls.init(newCSC(p.A, n), p.C, p.B, p.U, p.Binary)

	res := Result{Feasible: false, Objective: math.Inf(1), BestBound: math.Inf(-1)}
	if o.WarmStart != nil && integerFeasible(p, o.WarmStart) {
		res.Feasible = true
		res.Objective = dot(p.C, o.WarmStart)
		res.X = append([]float64(nil), o.WarmStart...)
	}
	expired := func() bool {
		//fast:allow nondetsource branch-and-bound deadline seam: time only truncates the search, never changes a returned incumbent's value
		return !o.Deadline.IsZero() && time.Now().After(o.Deadline)
	}

	// Pseudo-costs: mean objective degradation per unit of fraction
	// rounded away, kept per binary and per direction.
	var pcDn, pcUp []float64
	var cntDn, cntUp []int32
	if p.Binary != nil {
		pcDn = make([]float64, n)
		pcUp = make([]float64, n)
		cntDn = make([]int32, n)
		cntUp = make([]int32, n)
	}

	var heap nodeHeap
	seq := 0
	heap.push(&bbNode{bound: math.Inf(-1), branchVar: -1})
	// dive, when non-nil, is a child whose bounds and warm basis are
	// already installed in ls (depth-first plunging): it skips the pop +
	// reinstall entirely, so consecutive nodes share LU factors.
	var dive *bbNode
	provedOptimal := true
	// openBound folds the bounds of nodes abandoned on early exit so
	// BestBound stays valid.
	openBound := math.Inf(1)

	for dive != nil || len(heap) > 0 {
		if expired() {
			provedOptimal = false
			break
		}
		var nd *bbNode
		if dive != nil {
			nd, dive = dive, nil
		} else {
			nd = heap.pop()
			if res.Feasible && nd.bound >= res.Objective-1e-9 {
				continue // cannot beat the incumbent
			}
			// Reinstall this subproblem: base bounds + path fixings,
			// parent basis (or the all-slack basis when the snapshot
			// fails to factorize).
			ls.resetBounds()
			for k, v := range nd.fixVar {
				ls.fixBinary(int(v), float64(nd.fixVal[k]))
			}
			if nd.basis == nil || !ls.installBasis(nd.basis, nd.atUp) {
				ls.installSlackBasis()
			}
			ls.computeXB()
			ls.computeDuals()
		}
		res.Nodes++

		switch ls.dualSimplex(maxIter, o.Deadline) {
		case lpDeadline:
			provedOptimal = false
			if nd.bound < openBound {
				openBound = nd.bound
			}
			// Abandon the search; the incumbent (if any) is the answer.
			goto done
		case lpFail:
			return res, false
		case lpInfeasible:
			continue
		}
		{
			obj := ls.extract()
			if ls.hitsArtificialBound() {
				// The relaxation is unbounded below through a continuous
				// direction; no finite certificate exists down this path.
				provedOptimal = false
				continue
			}
			if nd.branchVar >= 0 && pcDn != nil {
				// Pseudo-cost update: how much the LP bound degraded per
				// unit of fraction rounded away at the parent's branching.
				if deg := obj - nd.parentObj; deg > 0 && !math.IsInf(nd.parentObj, -1) {
					if nd.branchUp {
						f := 1 - nd.branchFrac
						pcUp[nd.branchVar] += (deg/f - pcUp[nd.branchVar]) / float64(cntUp[nd.branchVar]+1)
						cntUp[nd.branchVar]++
					} else {
						f := nd.branchFrac
						pcDn[nd.branchVar] += (deg/f - pcDn[nd.branchVar]) / float64(cntDn[nd.branchVar]+1)
						cntDn[nd.branchVar]++
					}
				}
			}
			if res.Feasible && obj >= res.Objective-1e-9 {
				continue // bound: cannot beat incumbent
			}
			branch := selectBranch(ls.x, p.Binary, pcDn, pcUp, cntDn, cntUp)
			if branch < 0 {
				// Integer feasible (round off tiny fractional noise).
				x := append([]float64(nil), ls.x[:n]...)
				for i := range x {
					if p.Binary != nil && p.Binary[i] {
						x[i] = math.Round(x[i])
					}
				}
				intObj := dot(p.C, x)
				if !res.Feasible || intObj < res.Objective {
					res.Feasible = true
					res.Objective = intObj
					res.X = x
				}
				continue
			}
			frac := ls.x[branch] - math.Floor(ls.x[branch])
			near := math.Round(ls.x[branch])
			far := 1 - near
			seq++
			heap.push(&bbNode{
				bound:     obj,
				seq:       seq,
				fixVar:    append(append([]int32(nil), nd.fixVar...), int32(branch)),
				fixVal:    append(append([]int8(nil), nd.fixVal...), int8(far)),
				basis:     append([]int32(nil), ls.basis...),
				atUp:      ls.snapshotAtUp(),
				branchVar: branch, branchFrac: frac, branchUp: far == 1,
				parentObj: obj,
			})
			// Plunge into the nearer rounding with the current basis and
			// factors still warm: only the branched variable's bounds
			// change, and the parent optimum stays dual feasible.
			ls.fixBinary(branch, near)
			dive = &bbNode{
				bound:     obj,
				fixVar:    append(append([]int32(nil), nd.fixVar...), int32(branch)),
				fixVal:    append(append([]int8(nil), nd.fixVal...), int8(near)),
				branchVar: branch, branchFrac: frac, branchUp: near == 1,
				parentObj: obj,
			}
		}
	}
done:
	if dive != nil && dive.bound < openBound {
		openBound = dive.bound
	}
	for _, nd := range heap {
		if nd.bound < openBound {
			openBound = nd.bound
		}
	}
	res.Optimal = res.Feasible && provedOptimal && len(heap) == 0 && dive == nil
	if res.Optimal {
		res.BestBound = res.Objective
	} else if !math.IsInf(openBound, 1) {
		res.BestBound = openBound
		if res.Feasible {
			res.Gap = (res.Objective - res.BestBound) / math.Max(1, math.Abs(res.Objective))
			if res.Gap < 0 {
				res.Gap = 0
			}
		}
	} else if res.Feasible && !provedOptimal {
		res.Gap = math.Inf(1)
	}
	return res, true
}

// selectBranch picks the branching variable among fractional binaries:
// pseudo-cost product scoring once both directions of every fractional
// candidate have been observed, most-fractional until then (which is
// also what initializes the pseudo-costs).
func selectBranch(x []float64, binary []bool, pcDn, pcUp []float64, cntDn, cntUp []int32) int {
	const fracEps = 1e-6
	branch := -1
	worst := fracEps
	reliable := true
	for i := range x {
		if binary == nil || !binary[i] {
			continue
		}
		f := math.Abs(x[i] - math.Round(x[i]))
		if f <= fracEps {
			continue
		}
		if cntDn[i] == 0 || cntUp[i] == 0 {
			reliable = false
		}
		if f > worst {
			worst, branch = f, i
		}
	}
	if branch < 0 || !reliable {
		return branch
	}
	best := -1.0
	for i := range x {
		if binary == nil || !binary[i] {
			continue
		}
		fd := x[i] - math.Floor(x[i])
		if fd <= fracEps || fd >= 1-fracEps {
			continue
		}
		score := math.Max(fd*pcDn[i], 1e-12) * math.Max((1-fd)*pcUp[i], 1e-12)
		if score > best {
			best, branch = score, i
		}
	}
	return branch
}

// resetBounds restores every structural column's base bounds (erasing
// branch-and-bound fixings).
func (s *lpState) resetBounds() {
	for j := 0; j < s.n; j++ {
		s.lo[j] = 0
		s.up[j] = s.baseUp[j]
	}
}

// fixBinary pins structural column j to v.
func (s *lpState) fixBinary(j int, v float64) {
	s.lo[j] = v
	s.up[j] = v
}

// snapshotAtUp packs the nonbasic at-upper flags into a bitset.
func (s *lpState) snapshotAtUp() []uint64 {
	out := make([]uint64, (s.N+63)/64)
	for j := 0; j < s.N; j++ {
		if s.pos[j] < 0 && s.atUp[j] {
			out[j>>6] |= 1 << (j & 63)
		}
	}
	return out
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// integerFeasible checks a candidate point against all constraints and
// integrality.
func integerFeasible(p Problem, x []float64) bool {
	if len(x) != len(p.C) {
		return false
	}
	for i, v := range x {
		if v < -feasEps {
			return false
		}
		if p.Binary != nil && p.Binary[i] && math.Abs(v-math.Round(v)) > feasEps {
			return false
		}
		if p.U != nil && v > p.U[i]+feasEps {
			return false
		}
	}
	for r, row := range p.A {
		if dot(row, x) > p.B[r]+feasEps*(1+math.Abs(p.B[r])) {
			return false
		}
	}
	return true
}

// BruteForce enumerates all binary assignments (continuous vars solved by
// LP for each) — for testing only; exponential.
func BruteForce(p Problem) Result {
	n := len(p.C)
	var binIdx []int
	for i := 0; i < n; i++ {
		if p.Binary != nil && p.Binary[i] {
			binIdx = append(binIdx, i)
		}
	}
	best := Result{Objective: math.Inf(1)}
	total := 1 << len(binIdx)
	for mask := 0; mask < total; mask++ {
		// Fix binaries, solve the continuous remainder by LP.
		a := append([][]float64(nil), p.A...)
		b := append([]float64(nil), p.B...)
		for k, v := range binIdx {
			val := float64((mask >> k) & 1)
			hi := make([]float64, n)
			lo := make([]float64, n)
			hi[v], lo[v] = 1, -1
			a = append(a, hi, lo)
			b = append(b, val, -val)
		}
		// Continuous upper bounds.
		for i := 0; i < n; i++ {
			if p.U != nil && !math.IsInf(p.U[i], 1) {
				row := make([]float64, n)
				row[i] = 1
				a = append(a, row)
				b = append(b, p.U[i])
			}
		}
		lp := simplex(p.C, a, b, 20000)
		if lp.feasible && !lp.unbounded && lp.objective < best.Objective {
			best = Result{X: lp.x, Objective: lp.objective, Feasible: true, Optimal: true}
		}
	}
	return best
}

// GreedyKnapsack solves max Σ v_i x_i s.t. Σ w_i x_i ≤ cap, x binary, by
// value-density with a final sweep; a helper used for warm starts.
// Returns the chosen index set.
func GreedyKnapsack(values, weights []float64, capacity float64) []int {
	type item struct {
		i       int
		density float64
	}
	items := make([]item, 0, len(values))
	for i := range values {
		if values[i] <= 0 {
			continue
		}
		w := weights[i]
		d := math.Inf(1)
		if w > 0 {
			d = values[i] / w
		}
		items = append(items, item{i, d})
	}
	sort.Slice(items, func(a, b int) bool { return items[a].density > items[b].density })
	var chosen []int
	var used float64
	for _, it := range items {
		if used+weights[it.i] <= capacity {
			used += weights[it.i]
			chosen = append(chosen, it.i)
		}
	}
	sort.Ints(chosen)
	return chosen
}
