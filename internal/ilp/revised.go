package ilp

import (
	"math"
	"time"
)

// Bounded-variable dual simplex over the sparse revised representation.
//
// Variables carry their bounds natively (0 ≤ x ≤ u for structural
// columns, 0 ≤ s for slacks), so upper bounds and branch-and-bound
// fixings are bound-array writes instead of appended rows. The dual
// simplex is the natural engine for this solver's two entry points:
//
//   - the root LP starts from the all-slack basis, which is dual
//     feasible once each nonbasic column is parked at the bound
//     matching its cost sign;
//   - a branch-and-bound child tightens one variable's bounds, which
//     preserves the parent basis's dual feasibility exactly — the
//     child re-solve is a handful of dual pivots from the parent
//     optimum rather than a from-scratch two-phase solve.
//
// Anti-cycling: after degenLimit consecutive degenerate pivots the
// solve switches to Bland's rule (smallest-index leaving and entering
// choices), which guarantees termination on the degenerate instances
// the tests construct.

const (
	// bigBound stands in for +inf on columns that must sit at an upper
	// bound for the initial basis to be dual feasible (negative cost,
	// unbounded above). A solution touching it means the LP is unbounded.
	bigBound = 1e13
)

// degenLimit is the consecutive-degenerate-pivot count that trips
// Bland's rule. A variable so the anti-cycling tests can force Bland
// mode from the first pivot and run whole solves under it.
var degenLimit = 40

type lpStatus int

const (
	lpOptimal lpStatus = iota
	lpInfeasible
	lpDeadline
	lpFail
)

// lpState is the mutable revised-simplex state for one Solve call. It
// is pooled: every slice is resized in place by init.
type lpState struct {
	c *csc
	m int // constraint rows
	n int // structural columns
	N int // n + m

	b      []float64 // row rhs
	cost   []float64 // len N; slack costs zero
	lo     []float64 // len N current bounds
	up     []float64
	baseUp []float64 // len n: problem upper bounds before any fixing
	art    []bool    // up[j] is the artificial bigBound

	basis []int32 // len m
	pos   []int32 // len N: basis row, or -1
	atUp  []bool  // len N: nonbasic at upper bound

	xB []float64 // len m: basic values
	d  []float64 // len N: reduced costs

	f factor

	// scratch
	rho, w, alpha, colBuf, x []float64
	touched                  []int32

	bland bool
	degen int
	iters int // simplex iterations across the whole Solve
}

// init sizes the state for a problem with m rows and n structural
// columns and loads costs/bounds/rhs. Bound arrays hold the *base*
// problem bounds; branch-and-bound overlays fixings on top.
func (s *lpState) init(c *csc, cvec, b, u []float64, binary []bool) {
	s.c = c
	s.m = c.m
	s.n = c.n
	s.N = c.n + c.m
	grow := func(p *[]float64, n int) []float64 {
		if cap(*p) < n {
			*p = make([]float64, n)
		}
		*p = (*p)[:n]
		return *p
	}
	s.b = grow(&s.b, s.m)
	copy(s.b, b)
	s.cost = grow(&s.cost, s.N)
	s.lo = grow(&s.lo, s.N)
	s.up = grow(&s.up, s.N)
	s.baseUp = grow(&s.baseUp, s.n)
	s.xB = grow(&s.xB, s.m)
	s.d = grow(&s.d, s.N)
	s.rho = grow(&s.rho, s.m)
	s.w = grow(&s.w, s.m)
	s.colBuf = grow(&s.colBuf, s.m)
	s.alpha = grow(&s.alpha, s.N)
	s.x = grow(&s.x, s.n)
	if cap(s.art) < s.N {
		s.art = make([]bool, s.N)
		s.atUp = make([]bool, s.N)
	}
	s.art = s.art[:s.N]
	s.atUp = s.atUp[:s.N]
	if cap(s.basis) < s.m {
		s.basis = make([]int32, s.m)
	}
	s.basis = s.basis[:s.m]
	if cap(s.pos) < s.N {
		s.pos = make([]int32, s.N)
	}
	s.pos = s.pos[:s.N]
	if cap(s.touched) < s.N {
		s.touched = make([]int32, 0, s.N)
	}

	for j := 0; j < s.N; j++ {
		s.art[j] = false
		if j < s.n {
			s.cost[j] = cvec[j]
			s.lo[j] = 0
			uj := math.Inf(1)
			if u != nil {
				uj = u[j]
			} else if binary != nil && binary[j] {
				uj = 1
			}
			if math.IsInf(uj, 1) && cvec[j] < 0 {
				// The all-slack basis is dual feasible only with this
				// column at an upper bound; give it an artificial one.
				uj = bigBound
				s.art[j] = true
			}
			s.up[j] = uj
			s.baseUp[j] = uj
		} else {
			s.cost[j] = 0
			s.lo[j] = 0
			s.up[j] = math.Inf(1)
		}
	}
	s.bland = false
	s.degen = 0
	s.iters = 0
}

// val returns nonbasic variable j's current value.
func (s *lpState) val(j int) float64 {
	if s.atUp[j] {
		return s.up[j]
	}
	return s.lo[j]
}

// installSlackBasis resets to the all-slack basis with every structural
// column at the bound matching its cost sign. Always factorizable.
func (s *lpState) installSlackBasis() {
	for j := 0; j < s.n; j++ {
		s.pos[j] = -1
		s.atUp[j] = s.cost[j] < 0 && !math.IsInf(s.up[j], 1)
		if s.lo[j] == s.up[j] {
			s.atUp[j] = false
		}
	}
	for i := 0; i < s.m; i++ {
		j := s.n + i
		s.basis[i] = int32(j)
		s.pos[j] = int32(i)
		s.atUp[j] = false
	}
	if !s.f.factorize(s.c, s.basis) {
		panic("ilp: slack basis must factorize")
	}
}

// installBasis adopts a snapshot basis and nonbasic bound flags (from a
// branch-and-bound node). Returns false when the snapshot is
// numerically singular, in which case the caller should fall back to
// installSlackBasis.
//
// Best-first pops usually land close to the previously solved node, so
// the snapshot differs from the in-state basis in a handful of columns.
// Those are swapped in as product-form updates (one FTRAN each) against
// the existing factors — the full O(m³) refactorization runs only when
// the diff is large, an update pivot is too small, or the factors are
// already carrying a long eta list.
func (s *lpState) installBasis(basis []int32, atUp []uint64) bool {
	repaired := s.repairBasis(basis)
	copy(s.basis, basis)
	for j := range s.pos {
		s.pos[j] = -1
		s.atUp[j] = atUp[j>>6]&(1<<(j&63)) != 0
	}
	for i, j := range s.basis {
		s.pos[j] = int32(i)
		s.atUp[j] = false
	}
	if repaired {
		return true
	}
	return s.f.factorize(s.c, s.basis)
}

// repairBasis tries to morph the current factorization into one for
// target by replacing differing columns one at a time (product-form
// updates). Returns false when a fresh factorization is the better or
// only option; s.basis is untouched either way.
func (s *lpState) repairBasis(target []int32) bool {
	if s.f.m != s.m {
		return false
	}
	diff := s.touched[:0]
	for i := range target {
		if s.basis[i] != target[i] {
			diff = append(diff, int32(i))
		}
	}
	s.touched = diff[:0]
	if len(diff) == 0 {
		return true
	}
	if len(diff) > maxEtas/4 || len(s.f.etas)+len(diff) > maxEtas {
		return false
	}
	// Replacement order matters (a pivot can be zero until another
	// column lands); retry deferred rows until no progress is made.
	pending := append([]int32(nil), diff...)
	for len(pending) > 0 {
		progress := false
		next := pending[:0]
		for _, r32 := range pending {
			r := int(r32)
			s.c.scatter(int(target[r]), s.colBuf)
			copy(s.w, s.colBuf)
			s.f.ftran(s.w)
			if math.Abs(s.w[r]) < 100*etaPivTol {
				next = append(next, r32)
				continue
			}
			s.f.update(r, s.w)
			s.basis[r] = target[r]
			progress = true
		}
		if !progress {
			return false
		}
		pending = next
	}
	return true
}

// computeXB recomputes the basic values from scratch:
// x_B = B⁻¹ (b − Σ_nonbasic A_j·val_j).
func (s *lpState) computeXB() {
	copy(s.xB, s.b)
	for j := 0; j < s.N; j++ {
		if s.pos[j] >= 0 {
			continue
		}
		v := s.val(j)
		if v == 0 {
			continue
		}
		if j < s.n {
			for k := s.c.ptr[j]; k < s.c.ptr[j+1]; k++ {
				s.xB[s.c.row[k]] -= s.c.val[k] * v
			}
		} else {
			s.xB[j-s.n] -= v
		}
	}
	s.f.ftran(s.xB)
}

// computeDuals recomputes reduced costs from scratch:
// y = B⁻ᵀ c_B, d_j = c_j − y·A_j.
func (s *lpState) computeDuals() {
	for i, j := range s.basis {
		s.rho[i] = s.cost[j]
	}
	s.f.btran(s.rho)
	for j := 0; j < s.N; j++ {
		if s.pos[j] >= 0 {
			s.d[j] = 0
		} else {
			s.d[j] = s.cost[j] - s.c.dot(j, s.rho)
		}
	}
}

// refresh refactorizes the current basis and recomputes xB and duals.
func (s *lpState) refresh() bool {
	if !s.f.factorize(s.c, s.basis) {
		return false
	}
	s.computeXB()
	s.computeDuals()
	return true
}

// feasTolFor scales the primal feasibility tolerance with the bound
// magnitude (capacity rows carry byte counts ~1e9).
func feasTolFor(bound float64) float64 {
	if math.IsInf(bound, 0) {
		return feasEps
	}
	return feasEps * (1 + math.Abs(bound))
}

// dualSimplex runs to primal feasibility (= optimality, since dual
// feasibility is an invariant) under the current bounds.
func (s *lpState) dualSimplex(maxIter int, deadline time.Time) lpStatus {
	justRefreshed := false
	start := s.iters
	for {
		if s.iters-start >= maxIter {
			return lpFail
		}
		s.iters++
		//fast:allow nondetsource simplex deadline seam: expiry aborts to the greedy fallback, it does not alter pivots
		if s.iters%64 == 0 && !deadline.IsZero() && time.Now().After(deadline) {
			return lpDeadline
		}

		// Leaving row: the basic variable with the largest bound
		// violation (Bland mode: the smallest variable index violated).
		r := -1
		var dir float64
		worst := 0.0
		for i := 0; i < s.m; i++ {
			j := s.basis[i]
			v := s.xB[i]
			if lo := s.lo[j]; v < lo-feasTolFor(lo) {
				if viol := lo - v; s.bland {
					if r < 0 || j < s.basis[r] {
						r, dir = i, -1
					}
				} else if viol > worst {
					r, dir, worst = i, -1, viol
				}
			} else if u := s.up[j]; v > u+feasTolFor(u) {
				if viol := v - u; s.bland {
					if r < 0 || j < s.basis[r] {
						r, dir = i, +1
					}
				} else if viol > worst {
					r, dir, worst = i, +1, viol
				}
			}
		}
		if r < 0 {
			return lpOptimal
		}
		jr := int(s.basis[r])

		// α row: ρ = B⁻ᵀ e_r, α_j = ρ·A_j for every nonbasic column.
		for i := range s.rho {
			s.rho[i] = 0
		}
		s.rho[r] = 1
		s.f.btran(s.rho)
		s.touched = s.touched[:0]
		q := -1
		bestRatio := math.Inf(1)
		bestAbs := 0.0
		for j := 0; j < s.N; j++ {
			if s.pos[j] >= 0 {
				continue
			}
			a := s.c.dot(j, s.rho)
			if a == 0 {
				continue
			}
			s.alpha[j] = a
			s.touched = append(s.touched, int32(j))
			if s.lo[j] == s.up[j] {
				continue // fixed: never enters
			}
			ab := dir * a
			var eligible bool
			var num float64
			if !s.atUp[j] {
				eligible = ab > etaPivTol
				num = math.Max(s.d[j], 0)
			} else {
				eligible = ab < -etaPivTol
				num = math.Max(-s.d[j], 0)
			}
			if !eligible {
				continue
			}
			ratio := num / math.Abs(a)
			if s.bland {
				// Smallest-index eligible column that keeps every other
				// reduced cost feasible, i.e. minimum ratio; ties break
				// toward the smaller index by scan order.
				if ratio < bestRatio-1e-12 {
					bestRatio, q = ratio, j
				}
			} else if ratio < bestRatio-1e-12 ||
				(ratio <= bestRatio+1e-12 && math.Abs(a) > bestAbs) {
				bestRatio, bestAbs, q = ratio, math.Abs(a), j
			}
		}
		if q < 0 {
			// No entering column can repair the violated row: the node's
			// primal problem is infeasible (dual unbounded).
			return lpInfeasible
		}

		aq := s.alpha[q]
		// Fresh FTRAN of the entering column; cross-check against the
		// BTRAN-derived pivot to catch factorization drift.
		s.c.scatter(q, s.colBuf)
		copy(s.w, s.colBuf)
		s.f.ftran(s.w)
		if math.Abs(s.w[r]-aq) > 1e-7*(1+math.Abs(aq)) || math.Abs(s.w[r]) < etaPivTol {
			if justRefreshed {
				return lpFail
			}
			if !s.refresh() {
				return lpFail
			}
			justRefreshed = true
			s.iters-- // retry this iteration against fresh factors
			continue
		}
		justRefreshed = false
		aq = s.w[r]

		// Dual update: θ keeps d_q at zero after entering.
		theta := s.d[q] / aq
		for _, j32 := range s.touched {
			j := int(j32)
			if j != q {
				s.d[j] -= theta * s.alpha[j]
			}
		}
		s.d[jr] = -theta
		s.d[q] = 0

		// Primal update: the leaving variable lands exactly on its
		// violated bound.
		target := s.lo[jr]
		if dir > 0 {
			target = s.up[jr]
		}
		delta := (s.xB[r] - target) / aq
		if delta != 0 {
			for i, wi := range s.w {
				if wi != 0 {
					s.xB[i] -= delta * wi
				}
			}
		}
		enterVal := s.val(q) + delta
		s.xB[r] = enterVal

		// Book-keeping: q becomes basic in row r, jr leaves to its bound.
		s.basis[r] = int32(q)
		s.pos[q] = int32(r)
		s.pos[jr] = -1
		s.atUp[jr] = dir > 0
		if s.lo[jr] == s.up[jr] {
			s.atUp[jr] = false
		}
		s.f.update(r, s.w)

		if math.Abs(delta) <= 1e-12 {
			s.degen++
			if s.degen > degenLimit {
				s.bland = true
			}
		} else {
			s.degen = 0
		}
		if len(s.f.etas) >= maxEtas {
			if !s.refresh() {
				return lpFail
			}
			justRefreshed = true
		}
	}
}

// extract writes the structural solution into s.x (clamped to bounds)
// and returns the objective c·x.
func (s *lpState) extract() float64 {
	for j := 0; j < s.n; j++ {
		var v float64
		if p := s.pos[j]; p >= 0 {
			v = s.xB[p]
			if v < s.lo[j] {
				v = s.lo[j]
			}
			if v > s.up[j] {
				v = s.up[j]
			}
		} else {
			v = s.val(j)
		}
		s.x[j] = v
	}
	var obj float64
	for j := 0; j < s.n; j++ {
		obj += s.cost[j] * s.x[j]
	}
	return obj
}

// hitsArtificialBound reports whether the current solution leans on an
// artificial bigBound upper bound, i.e. the true LP is unbounded in
// that direction.
func (s *lpState) hitsArtificialBound() bool {
	for j := 0; j < s.n; j++ {
		if !s.art[j] {
			continue
		}
		if s.pos[j] >= 0 {
			if s.xB[s.pos[j]] > bigBound/2 {
				return true
			}
		} else if s.atUp[j] {
			return true
		}
	}
	return false
}
