package ilp

// Sparse problem storage for the revised simplex.
//
// The fusion ILPs this package exists for are extremely sparse: a T'
// row touches its own shifted-time variable plus the handful of
// binaries that can lower it, and a capacity row touches the pinnable
// weights plus the edges spanning that region. The revised simplex
// prices columns against a dense row multiplier, so the constraint
// matrix is stored once in compressed-sparse-column form and every
// per-iteration pass costs O(nnz) instead of O(rows × cols).

// csc is the structural constraint matrix A (rows m × cols n) in
// compressed-sparse-column form. Slack columns (the identity appended
// by A·x + s = b) are implicit: variable j ≥ n is the slack of row
// j - n.
type csc struct {
	m, n int
	ptr  []int32 // len n+1: column j spans [ptr[j], ptr[j+1])
	row  []int32
	val  []float64
}

// newCSC compresses the dense row-major constraint matrix.
func newCSC(a [][]float64, n int) *csc {
	m := len(a)
	nnz := 0
	for _, r := range a {
		for _, v := range r {
			if v != 0 {
				nnz++
			}
		}
	}
	c := &csc{
		m:   m,
		n:   n,
		ptr: make([]int32, n+1),
		row: make([]int32, 0, nnz),
		val: make([]float64, 0, nnz),
	}
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			if v := a[i][j]; v != 0 {
				c.row = append(c.row, int32(i))
				c.val = append(c.val, v)
			}
		}
		c.ptr[j+1] = int32(len(c.row))
	}
	return c
}

// scatter writes full-system column j (structural or slack) into the
// dense buffer out (len m), zeroing it first.
func (c *csc) scatter(j int, out []float64) {
	for i := range out {
		out[i] = 0
	}
	if j < c.n {
		for k := c.ptr[j]; k < c.ptr[j+1]; k++ {
			out[c.row[k]] = c.val[k]
		}
	} else {
		out[j-c.n] = 1
	}
}

// dot returns ρ · A_j for full-system column j against a dense row
// multiplier ρ (len m).
func (c *csc) dot(j int, rho []float64) float64 {
	if j >= c.n {
		return rho[j-c.n]
	}
	var s float64
	for k := c.ptr[j]; k < c.ptr[j+1]; k++ {
		s += rho[c.row[k]] * c.val[k]
	}
	return s
}
