// Package ilp is a small exact solver for linear programs and 0/1
// mixed-integer programs, standing in for SCIP v7 in the FAST fusion
// pass. It implements a dense two-phase primal simplex for the LP
// relaxation and depth-first branch-and-bound over the binary variables,
// with the same operational contract the paper configures SCIP with: a
// deadline, after which the best incumbent found so far is returned
// (§6.1: "if an optimal solution is not found in that time the solver
// returns the best incumbent solution").
package ilp

import (
	"fmt"
	"math"
	"time"
)

// epsilon tolerances for the simplex.
const (
	eps     = 1e-9
	feasEps = 1e-7
)

// lpResult is the outcome of one LP solve.
type lpResult struct {
	x          []float64
	objective  float64
	feasible   bool
	unbounded  bool
	iterations int
}

// simplex minimizes c·x subject to A·x ≤ b, 0 ≤ x (upper bounds are
// expressed as extra rows by the caller). Two-phase tableau method with
// Bland's rule for anti-cycling.
func simplex(c []float64, a [][]float64, b []float64, maxIter int) lpResult {
	return simplexDeadline(c, a, b, maxIter, time.Time{})
}

// simplexDeadline is simplex with an optional wall-clock cutoff, checked
// every 64 iterations; on expiry the current point is returned as-is
// (callers treat it as a bound, not a certificate).
func simplexDeadline(c []float64, a [][]float64, b []float64, maxIter int, deadline time.Time) lpResult {
	m, n := len(a), len(c)
	// Tableau columns: n structural + m slacks + up to m artificials + rhs.
	// Normalize rows so b >= 0.
	rows := make([][]float64, m)
	rhs := make([]float64, m)
	needArt := make([]bool, m)
	nArt := 0
	for i := 0; i < m; i++ {
		rows[i] = make([]float64, n+m)
		copy(rows[i], a[i])
		rows[i] = rows[i][:n+m]
		rhs[i] = b[i]
		rows[i][n+i] = 1 // slack
		if rhs[i] < 0 {
			for j := range rows[i] {
				rows[i][j] = -rows[i][j]
			}
			rhs[i] = -rhs[i]
			needArt[i] = true
			nArt++
		}
	}
	total := n + m + nArt
	// Extend rows with artificial columns.
	artCol := n + m
	basis := make([]int, m)
	for i := 0; i < m; i++ {
		ext := make([]float64, total)
		copy(ext, rows[i])
		if needArt[i] {
			ext[artCol] = 1
			basis[i] = artCol
			artCol++
		} else {
			basis[i] = n + i
		}
		rows[i] = ext
	}

	iter := 0
	pivot := func(obj []float64, objVal *float64, pr, pc int) {
		pv := rows[pr][pc]
		inv := 1 / pv
		for j := range rows[pr] {
			rows[pr][j] *= inv
		}
		rhs[pr] *= inv
		for i := 0; i < m; i++ {
			if i == pr {
				continue
			}
			f := rows[i][pc]
			if f == 0 {
				continue
			}
			for j := range rows[i] {
				rows[i][j] -= f * rows[pr][j]
			}
			rhs[i] -= f * rhs[pr]
		}
		f := obj[pc]
		if f != 0 {
			for j := range obj {
				obj[j] -= f * rows[pr][j]
			}
			*objVal -= f * rhs[pr]
		}
		basis[pr] = pc
	}

	runPhase := func(obj []float64, objVal *float64, limit int) bool {
		for iter < maxIter {
			iter++
			//fast:allow nondetsource simplex deadline seam: expiry aborts to the greedy fallback, it does not alter pivots
			if iter%64 == 0 && !deadline.IsZero() && time.Now().After(deadline) {
				return true // treat as converged; caller re-checks deadline
			}
			// Bland's rule: smallest-index entering column with negative
			// reduced cost (within limit columns).
			pc := -1
			for j := 0; j < limit; j++ {
				if obj[j] < -eps {
					pc = j
					break
				}
			}
			if pc < 0 {
				return true // optimal
			}
			// Ratio test (Bland: smallest basis index ties).
			pr, best := -1, math.Inf(1)
			for i := 0; i < m; i++ {
				if rows[i][pc] > eps {
					r := rhs[i] / rows[i][pc]
					if r < best-eps || (r < best+eps && (pr < 0 || basis[i] < basis[pr])) {
						best, pr = r, i
					}
				}
			}
			if pr < 0 {
				return false // unbounded
			}
			pivot(obj, objVal, pr, pc)
		}
		return true // iteration cap: treat current point as final
	}

	// Phase 1: minimize sum of artificials.
	if nArt > 0 {
		obj1 := make([]float64, total)
		var v1 float64
		for j := n + m; j < total; j++ {
			obj1[j] = 1
		}
		// Price out basic artificials.
		for i := 0; i < m; i++ {
			if basis[i] >= n+m {
				for j := range obj1 {
					obj1[j] -= rows[i][j]
				}
				v1 -= rhs[i]
			}
		}
		if !runPhase(obj1, &v1, total) {
			return lpResult{feasible: false, iterations: iter}
		}
		if -v1 > feasEps {
			return lpResult{feasible: false, iterations: iter}
		}
		// Drive any remaining artificials out of the basis.
		for i := 0; i < m; i++ {
			if basis[i] >= n+m && rhs[i] < feasEps {
				for j := 0; j < n+m; j++ {
					if math.Abs(rows[i][j]) > eps {
						var dummy float64
						pivot(make([]float64, total), &dummy, i, j)
						break
					}
				}
			}
		}
	}

	// Phase 2: minimize c over structural + slack columns.
	obj2 := make([]float64, total)
	copy(obj2, c)
	var v2 float64
	for i := 0; i < m; i++ {
		if basis[i] < n && obj2[basis[i]] != 0 {
			f := obj2[basis[i]]
			for j := range obj2 {
				obj2[j] -= f * rows[i][j]
			}
			v2 -= f * rhs[i]
		}
		// Forbid re-entering artificials.
	}
	for j := n + m; j < total; j++ {
		obj2[j] = math.Inf(1)
	}
	if !runPhase(obj2, &v2, n+m) {
		return lpResult{unbounded: true, iterations: iter}
	}

	x := make([]float64, n)
	for i := 0; i < m; i++ {
		if basis[i] < n {
			x[basis[i]] = rhs[i]
		}
	}
	var objVal float64
	for j := 0; j < n; j++ {
		objVal += c[j] * x[j]
	}
	return lpResult{x: x, objective: objVal, feasible: true, iterations: iter}
}

// validate checks structural consistency of a problem definition.
func validate(c []float64, a [][]float64, b []float64) error {
	for i, row := range a {
		if len(row) != len(c) {
			return fmt.Errorf("ilp: row %d has %d coefficients, want %d", i, len(row), len(c))
		}
	}
	if len(a) != len(b) {
		return fmt.Errorf("ilp: %d rows but %d rhs entries", len(a), len(b))
	}
	return nil
}
