package ilp

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzILPSparseVsDense cross-checks the sparse revised-simplex solver
// against the frozen dense reference (and, when the binary count
// permits, brute-force enumeration) on randomized mixed 0/1 problems.
// The fuzz inputs seed the generator, so go test runs the corpus
// deterministically and `go test -fuzz` explores fresh instances.
func FuzzILPSparseVsDense(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(2))
	f.Add(int64(42), uint8(8), uint8(5))
	f.Add(int64(7), uint8(3), uint8(1))
	f.Add(int64(99), uint8(9), uint8(4))
	f.Fuzz(func(t *testing.T, seed int64, n, m uint8) {
		r := rand.New(rand.NewSource(seed))
		nv := 1 + int(n)%9
		nr := 1 + int(m)%6
		p := Problem{Binary: make([]bool, nv), U: make([]float64, nv)}
		for i := 0; i < nv; i++ {
			c := math.Round(20 * (r.Float64() - 0.6))
			switch r.Intn(3) {
			case 0:
				p.Binary[i] = true
				p.U[i] = 1
			case 1:
				p.U[i] = float64(1 + r.Intn(5))
			default:
				p.U[i] = math.Inf(1)
				if c < 0 {
					c = -c
				}
			}
			p.C = append(p.C, c)
		}
		for j := 0; j < nr; j++ {
			row := make([]float64, nv)
			for i := range row {
				if r.Intn(2) == 0 {
					row[i] = math.Round(10 * (r.Float64() - 0.2))
				}
			}
			p.A = append(p.A, row)
			p.B = append(p.B, math.Round(8*float64(nv)*(r.Float64()-0.1)))
		}

		sp, err := Solve(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		de, err := Solve(p, Options{Dense: true})
		if err != nil {
			t.Fatal(err)
		}
		if sp.Feasible != de.Feasible {
			t.Fatalf("feasible sparse=%v dense=%v (p=%+v)", sp.Feasible, de.Feasible, p)
		}
		if !sp.Feasible {
			return
		}
		tol := 1e-6 * (1 + math.Abs(de.Objective))
		if math.Abs(sp.Objective-de.Objective) > tol {
			t.Fatalf("objective sparse=%.12g dense=%.12g (p=%+v)", sp.Objective, de.Objective, p)
		}
		if !integerFeasible(p, sp.X) {
			t.Fatalf("sparse solution violates constraints: %v (p=%+v)", sp.X, p)
		}
		nBin := 0
		for _, b := range p.Binary {
			if b {
				nBin++
			}
		}
		if nBin <= 10 {
			want := BruteForce(p)
			if want.Feasible && math.Abs(sp.Objective-want.Objective) > tol {
				t.Fatalf("objective sparse=%.12g brute=%.12g (p=%+v)", sp.Objective, want.Objective, p)
			}
		}
	})
}
