package ilp

// Differential suite: the sparse revised-simplex solver against the
// frozen dense-tableau reference (dense.go) and brute force. The dense
// solver is only a sound oracle while no LP hits its iteration cap, so
// the generated instances stay small enough that it converges in a few
// hundred pivots.

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// randMixedProblem draws a random bounded mixed 0/1 problem: binaries,
// box-bounded continuous and unbounded continuous columns, sparse rows,
// and rhs values of both signs (negative rhs exercises the ≥ rows the
// fusion formulation builds).
func randMixedProblem(r *rand.Rand) Problem {
	n := 2 + r.Intn(8)
	m := 1 + r.Intn(5)
	p := Problem{Binary: make([]bool, n), U: make([]float64, n)}
	for i := 0; i < n; i++ {
		c := math.Round(20 * (r.Float64() - 0.6))
		switch r.Intn(3) {
		case 0:
			p.Binary[i] = true
			p.U[i] = 1
		case 1:
			p.U[i] = float64(1 + r.Intn(5))
		default:
			p.U[i] = math.Inf(1)
			if c < 0 {
				c = -c // keep the LP bounded
			}
		}
		p.C = append(p.C, c)
	}
	for j := 0; j < m; j++ {
		row := make([]float64, n)
		for i := range row {
			if r.Intn(2) == 0 {
				row[i] = math.Round(10 * (r.Float64() - 0.2))
			}
		}
		p.A = append(p.A, row)
		p.B = append(p.B, math.Round(8*float64(n)*(r.Float64()-0.1)))
	}
	return p
}

// checkAgainstDense solves p with both cores and fails the test on any
// disagreement in feasibility, optimality, or optimal objective.
func checkAgainstDense(t *testing.T, trial int, p Problem) {
	t.Helper()
	sp, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	de, err := Solve(p, Options{Dense: true})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Feasible != de.Feasible {
		t.Fatalf("trial %d: feasible sparse=%v dense=%v (p=%+v)", trial, sp.Feasible, de.Feasible, p)
	}
	if !sp.Feasible {
		return
	}
	if sp.Optimal != de.Optimal {
		t.Fatalf("trial %d: optimal sparse=%v dense=%v (p=%+v)", trial, sp.Optimal, de.Optimal, p)
	}
	tol := 1e-6 * (1 + math.Abs(de.Objective))
	if math.Abs(sp.Objective-de.Objective) > tol {
		t.Fatalf("trial %d: objective sparse=%.12g dense=%.12g (p=%+v)", trial, sp.Objective, de.Objective, p)
	}
	if !integerFeasible(p, sp.X) {
		t.Fatalf("trial %d: sparse solution infeasible: %v (p=%+v)", trial, sp.X, p)
	}
	if sp.Optimal && sp.Gap != 0 {
		t.Fatalf("trial %d: optimal result with gap %g", trial, sp.Gap)
	}
}

// TestSparseMatchesDenseRandom is the core differential property: on
// thousands of random mixed problems the sparse solver agrees with the
// frozen dense solver on feasibility and optimal objective.
func TestSparseMatchesDenseRandom(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 3000; trial++ {
		checkAgainstDense(t, trial, randMixedProblem(r))
	}
}

// TestSparseFusionShapedExact runs the sparse solver over instances
// with the exact structure (and the awkward coefficient scaling: costs
// ~1e-6 against byte columns ~1e5) the fusion pass emits, pinning its
// objective against brute-force enumeration. The dense solver is only
// a one-sided oracle here: its absolute tableau tolerances lose exact
// optimality on this scaling — hunting for this suite's divergences is
// how that was discovered — so the sparse result must never be worse
// than dense, and must match brute force exactly.
func TestSparseFusionShapedExact(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 150; trial++ {
		p, warm := fusionShapedProblem(r, 3+r.Intn(8), 4)
		nBin := 0
		for _, b := range p.Binary {
			if b {
				nBin++
			}
		}
		if nBin > 12 {
			continue // brute force is 2^nBin LP solves; keep the oracle cheap
		}
		want := BruteForce(p)
		for _, o := range []Options{{}, {WarmStart: warm}} {
			sp, err := Solve(p, o)
			if err != nil {
				t.Fatal(err)
			}
			if sp.Feasible != want.Feasible {
				t.Fatalf("trial %d: feasible sparse=%v brute=%v", trial, sp.Feasible, want.Feasible)
			}
			if !sp.Feasible {
				continue
			}
			if !sp.Optimal {
				t.Fatalf("trial %d: optimality not proven: %+v", trial, sp)
			}
			if math.Abs(sp.Objective-want.Objective) > 1e-9*(1+math.Abs(want.Objective)) {
				t.Fatalf("trial %d: objective sparse=%.15g brute=%.15g (warm=%v)",
					trial, sp.Objective, want.Objective, o.WarmStart != nil)
			}
			if !integerFeasible(p, sp.X) {
				t.Fatalf("trial %d: sparse solution infeasible", trial)
			}
			de, err := Solve(p, Options{Dense: true})
			if err != nil {
				t.Fatal(err)
			}
			if de.Feasible && sp.Objective > de.Objective+1e-9*(1+math.Abs(de.Objective)) {
				t.Fatalf("trial %d: sparse %.15g worse than dense %.15g", trial, sp.Objective, de.Objective)
			}
		}
	}
}

// TestBlandModeMatchesDense runs entire solves under Bland's rule
// (degenLimit 0 trips it on the first pivot) so the anti-cycling path
// is exercised end to end, not just on pathological instances.
func TestBlandModeMatchesDense(t *testing.T) {
	old := degenLimit
	degenLimit = 0
	defer func() { degenLimit = old }()
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		checkAgainstDense(t, trial, randMixedProblem(r))
	}
}

// TestDegenerateTiesTerminate builds instances saturated with ties —
// identical rows, identical costs, quantized coefficients — where a
// naive ratio test stalls in degenerate pivots. With the Bland trip
// point lowered to a few pivots, these solves run through the
// anti-cycling rule and must still terminate at the brute-force
// optimum.
func TestDegenerateTiesTerminate(t *testing.T) {
	old := degenLimit
	degenLimit = 3
	defer func() { degenLimit = old }()
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		n := 3 + r.Intn(5)
		p := Problem{Binary: make([]bool, n)}
		for i := 0; i < n; i++ {
			p.C = append(p.C, -1) // all costs tie
			p.Binary[i] = true
		}
		// Several copies of the same row plus per-variable rows with the
		// same rhs: a maximally degenerate vertex.
		row := make([]float64, n)
		for i := range row {
			row[i] = 1
		}
		rhs := float64(1 + r.Intn(n))
		for k := 0; k < 3; k++ {
			p.A = append(p.A, append([]float64(nil), row...))
			p.B = append(p.B, rhs)
		}
		for i := 0; i < n; i++ {
			one := make([]float64, n)
			one[i] = 1
			p.A = append(p.A, one)
			p.B = append(p.B, 1)
		}
		got, err := Solve(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := BruteForce(p)
		if !got.Feasible || !got.Optimal || math.Abs(got.Objective-want.Objective) > 1e-6 {
			t.Fatalf("trial %d: got %+v, want objective %g", trial, got, want.Objective)
		}
	}
}

// TestInfeasibleAfterBranching pins the dual-simplex infeasibility exit
// inside branch-and-bound: the root LP is feasible (fractional), but
// every integer completion violates the equality-like row pair, so
// child nodes must be pruned as infeasible and the whole solve must
// report infeasible after exploring more than the root.
func TestInfeasibleAfterBranching(t *testing.T) {
	p := Problem{
		C:      []float64{-1, -2},
		A:      [][]float64{{1, 1}, {-1, -1}},
		B:      []float64{1.5, -1.5}, // x1 + x2 = 1.5 exactly
		Binary: []bool{true, true},
	}
	r, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Feasible {
		t.Fatalf("expected integer infeasibility, got %+v", r)
	}
	if r.Nodes < 2 {
		t.Fatalf("expected branching before infeasibility proof, explored %d nodes", r.Nodes)
	}
}

// TestTightUpperBounds exercises native bound handling: continuous
// variables pinned at their box bounds and binaries forced to zero by
// U, with the optimum on the bound faces.
func TestTightUpperBounds(t *testing.T) {
	// min -3a -2y - z with a binary but U[a]=0 (forced off), y ≤ 2.5
	// active at optimum, z ≤ 4 active via the row z ≤ 4.
	p := Problem{
		C:      []float64{-3, -2, -1},
		A:      [][]float64{{1, 1, 0}, {0, 0, 1}},
		B:      []float64{10, 4},
		U:      []float64{0, 2.5, math.Inf(1)},
		Binary: []bool{true, false, false},
	}
	r, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Optimal {
		t.Fatalf("result: %+v", r)
	}
	want := -2*2.5 - 4.0
	if math.Abs(r.Objective-want) > 1e-9 {
		t.Errorf("objective = %g, want %g", r.Objective, want)
	}
	if r.X[0] != 0 || math.Abs(r.X[1]-2.5) > 1e-9 || math.Abs(r.X[2]-4) > 1e-9 {
		t.Errorf("x = %v", r.X)
	}
}

// TestDeadlineGapReported: an expired deadline with a warm incumbent
// must report a non-optimal result with a positive (possibly infinite)
// gap and the incumbent intact.
func TestDeadlineGapReported(t *testing.T) {
	p := Problem{
		C:      []float64{-60, -100, -120},
		A:      [][]float64{{10, 20, 30}},
		B:      []float64{50},
		Binary: []bool{true, true, true},
	}
	r, err := Solve(p, Options{
		Deadline:  time.Now().Add(-time.Second),
		WarmStart: []float64{1, 1, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible || r.Optimal {
		t.Fatalf("expected non-optimal incumbent, got %+v", r)
	}
	if !(r.Gap > 0) {
		t.Errorf("expected positive optimality gap, got %g", r.Gap)
	}
}

// fusionShapedProblem builds an instance with the reduced Figure 8
// structure solveILP emits: binaries w_i/e_i with T'_i ≥ (TMax−TMin) −
// savings rows and per-region capacity rows, plus a greedy-flavoured
// integer warm start.
func fusionShapedProblem(r *rand.Rand, nRegions, window int) (Problem, []float64) {
	type region struct {
		tmax, tw, te float64
		dw, de       int64
		prod         int
	}
	regs := make([]region, nRegions)
	for i := range regs {
		regs[i] = region{
			tmax: 1e-4 * (0.5 + r.Float64()),
			tw:   1e-5 * r.Float64(),
			te:   1e-5 * r.Float64(),
			dw:   int64(1+r.Intn(64)) << 12,
			de:   int64(1+r.Intn(64)) << 12,
			prod: -1,
		}
		if i > 0 && r.Intn(3) != 0 {
			regs[i].prod = i - 1 - r.Intn(min(i, window))
		}
	}
	// Variable layout mirrors solveILP: w vars, e vars, then T'.
	wIdx := make([]int, nRegions)
	eIdx := make([]int, nRegions)
	vars := 0
	for i := range regs {
		wIdx[i] = -1
		if regs[i].dw > 0 && r.Intn(4) != 0 {
			wIdx[i] = vars
			vars++
		}
	}
	for i := range regs {
		eIdx[i] = -1
		if regs[i].prod >= 0 {
			eIdx[i] = vars
			vars++
		}
	}
	nv := vars + nRegions
	p := Problem{C: make([]float64, nv), U: make([]float64, nv), Binary: make([]bool, nv)}
	for i := 0; i < vars; i++ {
		p.Binary[i] = true
		p.U[i] = 1
	}
	for i := 0; i < nRegions; i++ {
		p.C[vars+i] = 1
		p.U[vars+i] = math.Inf(1)
	}
	for i, rg := range regs {
		row := make([]float64, nv)
		row[vars+i] = -1
		if wIdx[i] >= 0 {
			row[wIdx[i]] = -rg.tw
		}
		if eIdx[i] >= 0 {
			row[eIdx[i]] -= rg.te
		}
		p.A = append(p.A, row)
		p.B = append(p.B, -rg.tmax)
	}
	capacity := int64(1+r.Intn(64)) << 14
	for k := range regs {
		row := make([]float64, nv)
		for j, rg := range regs {
			if wIdx[j] >= 0 {
				row[wIdx[j]] = float64(rg.dw)
			}
			if eIdx[j] >= 0 && rg.prod <= k && k <= j {
				row[eIdx[j]] += float64(rg.de)
			}
		}
		p.A = append(p.A, row)
		p.B = append(p.B, float64(capacity))
	}
	// Greedy-ish warm start: take binaries while capacity allows.
	warm := make([]float64, nv)
	var used int64
	for j := range regs {
		if wIdx[j] >= 0 && used+regs[j].dw <= capacity {
			warm[wIdx[j]] = 1
			used += regs[j].dw
		}
	}
	for i, rg := range regs {
		tp := rg.tmax
		if wIdx[i] >= 0 && warm[wIdx[i]] == 1 {
			tp -= rg.tw
		}
		warm[vars+i] = math.Max(0, tp)
	}
	return p, warm
}

// TestUnboundedRelaxation exercises the artificial-bound machinery the
// randomized suites deliberately avoid (they flip negative costs on
// unbounded columns to keep instances bounded): a negative-cost column
// with no upper bound makes the LP unbounded below, which the sparse
// core detects via its bigBound artificial bound. The MILP must come
// back infeasible/non-optimal — never a finite "optimum" leaning on the
// artificial bound — matching the frozen dense solver's contract.
func TestUnboundedRelaxation(t *testing.T) {
	// min -x0 + x1 with only -x0 + x1 ≤ 1: x0 grows without bound.
	p := Problem{
		C: []float64{-1, 1},
		A: [][]float64{{-1, 1}},
		B: []float64{1},
	}
	sp, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	de, err := Solve(p, Options{Dense: true})
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string]Result{"sparse": sp, "dense": de} {
		if r.Feasible || r.Optimal {
			t.Errorf("%s: unbounded LP reported a certificate: %+v", name, r)
		}
	}

	// With a binary riding along and a feasible warm start, the warm
	// incumbent survives but optimality still cannot be proven.
	p2 := Problem{
		C:      []float64{-1, -5},
		A:      [][]float64{{-1, 1}},
		B:      []float64{1},
		U:      []float64{math.Inf(1), 1},
		Binary: []bool{false, true},
	}
	warm := []float64{0, 1}
	sp2, err := Solve(p2, Options{WarmStart: warm})
	if err != nil {
		t.Fatal(err)
	}
	if !sp2.Feasible || sp2.Optimal {
		t.Errorf("warm-started unbounded MILP: %+v", sp2)
	}
	if sp2.Objective > -5+1e-9 {
		t.Errorf("warm incumbent lost: objective %g", sp2.Objective)
	}
}
