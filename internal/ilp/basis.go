package ilp

import "math"

// Basis factorization for the revised simplex: a dense LU of a
// reference basis plus a list of product-form (eta) rank-one updates.
// Each simplex pivot appends one eta instead of re-eliminating the
// whole tableau; the LU is recomputed only at refactorization points
// (eta list too long, basis installed from a branch-and-bound node, or
// numerical drift).
//
// FTRAN solves B x = v (apply LU, then etas in creation order); BTRAN
// solves Bᵀ y = v (apply eta transposes in reverse, then the LU
// transpose). The basis dimension m counts constraint rows only —
// variable upper bounds live in the bound arrays, never as rows — so
// for the fusion instances m is a fraction of the dense solver's
// tableau height.

const (
	// maxEtas bounds the product-form update list before the basis is
	// refactorized from scratch. Applying an eta costs O(m) against the
	// O(m²) triangular solves of the base LU, so a long list stays cheap;
	// the bound exists to limit accumulated numerical drift (and the
	// FTRAN/BTRAN cross-check forces an early refactorization when drift
	// shows up sooner).
	maxEtas = 192
	// luPivTol is the smallest acceptable LU pivot magnitude.
	luPivTol = 1e-11
	// etaPivTol is the smallest acceptable eta (simplex pivot) magnitude.
	etaPivTol = 1e-9
)

// eta is one product-form update: basis row r was replaced by a column
// whose FTRAN'd image was w (with pivot w[r]).
type eta struct {
	r   int32
	piv float64
	w   []float64
}

// factor is the LU + eta representation of the current basis inverse.
type factor struct {
	m    int
	lu   []float64 // m×m row-major; unit-L strictly below, U on/above
	ipiv []int32   // LAPACK-style row swaps
	etas []eta
	free [][]float64 // recycled eta buffers
}

func (f *factor) reset(m int) {
	f.m = m
	if cap(f.lu) < m*m {
		f.lu = make([]float64, m*m)
	}
	f.lu = f.lu[:m*m]
	if cap(f.ipiv) < m {
		f.ipiv = make([]int32, m)
	}
	f.ipiv = f.ipiv[:m]
	f.dropEtas()
}

func (f *factor) dropEtas() {
	for i := range f.etas {
		f.free = append(f.free, f.etas[i].w)
		f.etas[i].w = nil
	}
	f.etas = f.etas[:0]
}

func (f *factor) etaBuf() []float64 {
	if n := len(f.free); n > 0 {
		w := f.free[n-1]
		f.free = f.free[:n-1]
		if cap(w) >= f.m {
			return w[:f.m]
		}
	}
	return make([]float64, f.m)
}

// factorize builds the LU of the basis whose columns are the
// full-system columns basis[0..m) of c. Returns false on a (numerically)
// singular basis.
func (f *factor) factorize(c *csc, basis []int32) bool {
	m := len(basis)
	f.reset(m)
	lu := f.lu
	for i := range lu {
		lu[i] = 0
	}
	// Column k of the basis matrix lands in lu[:, k].
	for k, j := range basis {
		if int(j) < c.n {
			for p := c.ptr[j]; p < c.ptr[j+1]; p++ {
				lu[int(c.row[p])*m+k] = c.val[p]
			}
		} else {
			lu[(int(j)-c.n)*m+k] = 1
		}
	}
	for k := 0; k < m; k++ {
		// Partial pivoting.
		p, best := k, math.Abs(lu[k*m+k])
		for i := k + 1; i < m; i++ {
			if a := math.Abs(lu[i*m+k]); a > best {
				p, best = i, a
			}
		}
		if best < luPivTol {
			return false
		}
		f.ipiv[k] = int32(p)
		if p != k {
			rk, rp := lu[k*m:k*m+m], lu[p*m:p*m+m]
			for j := 0; j < m; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
		}
		inv := 1 / lu[k*m+k]
		for i := k + 1; i < m; i++ {
			l := lu[i*m+k] * inv
			if l == 0 {
				continue
			}
			lu[i*m+k] = l
			ri, rk := lu[i*m:i*m+m], lu[k*m:k*m+m]
			for j := k + 1; j < m; j++ {
				ri[j] -= l * rk[j]
			}
		}
	}
	return true
}

// ftran solves B x = v in place (v has length m).
func (f *factor) ftran(v []float64) {
	m := f.m
	lu := f.lu
	for k := 0; k < m; k++ {
		if p := int(f.ipiv[k]); p != k {
			v[k], v[p] = v[p], v[k]
		}
	}
	// L (unit lower) forward substitution.
	for i := 1; i < m; i++ {
		ri := lu[i*m : i*m+i]
		s := v[i]
		for j, l := range ri {
			if l != 0 {
				s -= l * v[j]
			}
		}
		v[i] = s
	}
	// U back substitution.
	for i := m - 1; i >= 0; i-- {
		ri := lu[i*m : i*m+m]
		s := v[i]
		for j := i + 1; j < m; j++ {
			if u := ri[j]; u != 0 {
				s -= u * v[j]
			}
		}
		v[i] = s / ri[i]
	}
	// Product-form updates in creation order.
	for k := range f.etas {
		e := &f.etas[k]
		t := v[e.r] / e.piv
		if t != 0 {
			for i, wi := range e.w {
				if wi != 0 {
					v[i] -= wi * t
				}
			}
		}
		v[e.r] = t
	}
}

// btran solves Bᵀ y = v in place (v has length m).
func (f *factor) btran(v []float64) {
	m := f.m
	// Eta transposes in reverse order.
	for k := len(f.etas) - 1; k >= 0; k-- {
		e := &f.etas[k]
		var s float64
		for i, wi := range e.w {
			if wi != 0 {
				s += wi * v[i]
			}
		}
		// s includes the pivot term piv·v[r]; remove it.
		v[e.r] = (v[e.r] - (s - e.piv*v[e.r])) / e.piv
	}
	lu := f.lu
	// Uᵀ forward substitution.
	for i := 0; i < m; i++ {
		s := v[i]
		for j := 0; j < i; j++ {
			if u := lu[j*m+i]; u != 0 {
				s -= u * v[j]
			}
		}
		v[i] = s / lu[i*m+i]
	}
	// Lᵀ (unit) back substitution.
	for i := m - 2; i >= 0; i-- {
		s := v[i]
		for j := i + 1; j < m; j++ {
			if l := lu[j*m+i]; l != 0 {
				s -= l * v[j]
			}
		}
		v[i] = s
	}
	for k := m - 1; k >= 0; k-- {
		if p := int(f.ipiv[k]); p != k {
			v[k], v[p] = v[p], v[k]
		}
	}
}

// update appends the product-form eta for a pivot that replaced basis
// row r with a column whose FTRAN'd image is w. w is copied.
func (f *factor) update(r int, w []float64) {
	buf := f.etaBuf()
	copy(buf, w)
	f.etas = append(f.etas, eta{r: int32(r), piv: w[r], w: buf})
}
